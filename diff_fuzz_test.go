package fits

// Fuzz coverage for the evolution diff: DiffContext over a fixed old
// version and an arbitrary (usually mangled) new image must never panic.
// When the mangled image fails to load, Diff reports the error; when it
// still parses, the differential oracle applies in full — the incremental
// new-side analysis and alerts must equal a cold run over the same bytes,
// and the reuse accounting must stay coherent. Seeds are real chain
// versions plus truncations of them.

import (
	"context"
	"reflect"
	"testing"

	"fits/internal/synth"
)

func FuzzDiff(f *testing.F) {
	c, err := synth.GenerateChain(synth.ChainDataset()[0])
	if err != nil {
		f.Fatalf("synth: %v", err)
	}
	old := c.Versions[0].Packed
	f.Add(c.Versions[1].Packed)
	f.Add(old)
	if len(old) > 512 {
		f.Add(old[:512]) // header plus a ragged tail
	}
	f.Add([]byte{})
	f.Add([]byte("FWIMG"))
	// One cache across all executions keeps the fixed old side warm — the
	// harness has already proven results are cache-state independent, and
	// without it every exec pays a full cold analysis of the old image.
	cache := NewCache(0, 0)
	f.Fuzz(func(t *testing.T, data []byte) {
		opts := DefaultDiffOptions()
		opts.Parallelism = 1
		opts.Cache = cache
		d, err := DiffContext(context.Background(), old, data, opts)
		if err != nil {
			// The mangled image must be the reason: a cold analysis of the
			// same bytes has to fail too.
			plain := opts.Options
			plain.Cache = nil
			if _, cerr := AnalyzeContext(context.Background(), data, plain); cerr == nil {
				t.Errorf("diff failed (%v) but cold analysis of the new image succeeded", err)
			}
			return
		}
		r := d.Report
		if r == nil {
			t.Fatal("successful diff without a report")
		}
		if r.ReuseRatio < 0 || r.ReuseRatio > 1 || r.ReusedFuncs > r.TotalFuncs {
			t.Fatalf("incoherent reuse accounting: %d/%d = %v", r.ReusedFuncs, r.TotalFuncs, r.ReuseRatio)
		}
		// The correctness contract holds for every input that loads: reuse
		// degrades (to zero on unrelated images), never the results.
		wantNorm, wantAlerts := coldTruth(t, data, opts)
		if got := normalize(d.New); !reflect.DeepEqual(got, wantNorm) {
			t.Errorf("incremental analysis differs from cold run over mutated image")
		}
		if !reflect.DeepEqual(d.NewAlerts, wantAlerts) {
			t.Errorf("incremental alerts differ from cold run over mutated image")
		}
	})
}
