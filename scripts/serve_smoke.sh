#!/bin/sh
# serve-smoke: the fitsd end-to-end CI gate. Boots the daemon on an
# ephemeral port, submits a generated example firmware image twice through
# fitsctl/the client package, and asserts:
#   - both jobs return HTTP 200 results and the result JSON is byte-identical
#   - the second run hit the shared model cache (visible in /metrics)
#   - a diff round-trip (image against itself) completes, reports full
#     function reuse, repeats byte-identically, and shows up in /metrics
#   - a corpus round-trip (fwgen -multibin tree through fitsctl corpus)
#     completes, repeats byte-identically, and counts in fitsd_corpus_*
#   - /metrics is non-empty and counts the completions
#   - SIGTERM drains the daemon cleanly within the deadline
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""

# Every exit path — success, fail(), set -e, or a delivered signal — must
# run through cleanup, or an aborted smoke leaks a fitsd listener that
# breaks the next `make ci`. The daemon gets a grace period to drain and
# release its socket before the hard kill, and is reaped so no zombie
# outlives the script.
cleanup() {
    status=$?
    if [ -n "${pid:-}" ] && kill -0 "$pid" 2>/dev/null; then
        kill -TERM "$pid" 2>/dev/null || true
        i=0
        while kill -0 "$pid" 2>/dev/null && [ "$i" -lt 20 ]; do
            i=$((i + 1))
            sleep 0.1
        done
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
    return "$status"
}
trap cleanup EXIT
# Convert signals into plain exits so the EXIT trap runs exactly once and
# the script still dies with the conventional 128+signo status.
trap 'exit 129' HUP
trap 'exit 130' INT
trap 'exit 143' TERM

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

echo "serve-smoke: building fitsd, fitsctl, fwgen"
$GO build -o "$tmp/bin/" ./cmd/fitsd ./cmd/fitsctl ./cmd/fwgen

"$tmp/bin/fwgen" -out "$tmp/corpus" -vendor NETGEAR >/dev/null
fw=$(ls "$tmp"/corpus/*.fw | head -n 1)
[ -n "$fw" ] || fail "fwgen produced no firmware"

"$tmp/bin/fitsd" -listen 127.0.0.1:0 -addr-file "$tmp/addr" -workers 2 -v &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "fitsd did not write its address within 10s"
    kill -0 "$pid" 2>/dev/null || fail "fitsd exited during startup"
    sleep 0.1
done
base="http://$(cat "$tmp/addr")"
echo "serve-smoke: fitsd up at $base, submitting $(basename "$fw") twice"

ctl() { "$tmp/bin/fitsctl" -addr "$base" "$@"; }

ctl submit -wait -its -scan -out "$tmp/r1.json" "$fw" || fail "first submission"
ctl submit -wait -its -scan -out "$tmp/r2.json" "$fw" || fail "second submission"
[ -s "$tmp/r1.json" ] || fail "first result is empty"
cmp -s "$tmp/r1.json" "$tmp/r2.json" || fail "resubmitted image produced different result JSON"

echo "serve-smoke: diffing $(basename "$fw") against itself twice"
ctl diff -wait -out "$tmp/d1.json" "$fw" "$fw" || fail "first diff submission"
ctl diff -wait -out "$tmp/d2.json" "$fw" "$fw" || fail "second diff submission"
[ -s "$tmp/d1.json" ] || fail "first diff result is empty"
cmp -s "$tmp/d1.json" "$tmp/d2.json" || fail "resubmitted diff produced different result JSON"
grep -q '"reuse_ratio":1' "$tmp/d1.json" \
    || fail "self-diff did not reuse every function: $(cat "$tmp/d1.json")"

echo "serve-smoke: corpus round trip over a generated multi-binary tree"
"$tmp/bin/fwgen" -multibin "$tmp/xtree" >/dev/null
ctl corpus -wait -out "$tmp/x1.json" "$tmp/xtree" || fail "first corpus submission"
ctl corpus -wait -out "$tmp/x2.json" "$tmp/xtree" || fail "second corpus submission"
[ -s "$tmp/x1.json" ] || fail "first corpus result is empty"
cmp -s "$tmp/x1.json" "$tmp/x2.json" || fail "resubmitted corpus produced different result JSON"
grep -q '"cross_alerts":' "$tmp/x1.json" || fail "corpus result has no cross_alerts field"

metrics=$(ctl metrics)
[ -n "$metrics" ] || fail "/metrics is empty"
echo "$metrics" | grep -q '^fitsd_jobs_completed_total 6$' \
    || fail "expected fitsd_jobs_completed_total 6, got: $(echo "$metrics" | grep jobs_completed)"
echo "$metrics" | grep -q '^fitsd_corpus_jobs_total 2$' \
    || fail "expected fitsd_corpus_jobs_total 2, got: $(echo "$metrics" | grep corpus_jobs)"
echo "$metrics" | grep -q '^fitsd_corpus_binaries_total [1-9]' \
    || fail "corpus jobs analyzed no binaries: $(echo "$metrics" | grep corpus_binaries)"
echo "$metrics" | grep -q '^fitsd_model_cache_hits_total [1-9]' \
    || fail "second submission recorded no model-cache hits"
echo "$metrics" | grep -q '^fits_diff_reuse_ratio 1$' \
    || fail "diff reuse-ratio gauge missing or not 1: $(echo "$metrics" | grep diff_reuse)"
echo "$metrics" | grep -q '^fitsd_diff_analyze_new_seconds_count 2$' \
    || fail "diff stage histograms missing: $(echo "$metrics" | grep diff_analyze)"

echo "serve-smoke: sending SIGTERM, expecting a clean drain"
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 300 ] || fail "fitsd did not drain within 30s of SIGTERM"
    sleep 0.1
done
wait "$pid" 2>/dev/null || fail "fitsd exited non-zero after SIGTERM"
pid=""

echo "serve-smoke: crash-recovery round trip with a persistent data dir"
"$tmp/bin/fitsd" -listen 127.0.0.1:0 -addr-file "$tmp/addr2" -workers 2 \
    -data-dir "$tmp/data" -v &
pid=$!
i=0
while [ ! -s "$tmp/addr2" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "persistent fitsd did not write its address within 10s"
    kill -0 "$pid" 2>/dev/null || fail "persistent fitsd exited during startup"
    sleep 0.1
done
base="http://$(cat "$tmp/addr2")"

ctl submit -wait -its -scan -out "$tmp/r3.json" "$fw" || fail "persistent submission"
[ -s "$tmp/r3.json" ] || fail "persistent result is empty"
cmp -s "$tmp/r1.json" "$tmp/r3.json" || fail "persistent run produced different result JSON"

# SIGKILL: no drain, no journal close — recovery must work from what was
# fsynced before the crash.
echo "serve-smoke: SIGKILL, restarting on the same -data-dir"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

"$tmp/bin/fitsd" -listen 127.0.0.1:0 -addr-file "$tmp/addr3" -workers 2 \
    -data-dir "$tmp/data" -v &
pid=$!
i=0
while [ ! -s "$tmp/addr3" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "restarted fitsd did not write its address within 10s"
    kill -0 "$pid" 2>/dev/null || fail "restarted fitsd exited during startup"
    sleep 0.1
done
base="http://$(cat "$tmp/addr3")"

# The pre-crash job must have been replayed from the journal...
ctl list | grep -q 'done' || fail "replayed job list lost the completed job: $(ctl list)"
# ...and resubmitting the same bytes+options must be served from disk,
# byte-identical, without re-running the analysis.
ctl submit -wait -its -scan -out "$tmp/r4.json" "$fw" || fail "post-restart submission"
cmp -s "$tmp/r3.json" "$tmp/r4.json" || fail "disk-served result differs from the pre-crash result"
ctl metrics | grep -q '^fitsd_disk_hits_total [1-9]' \
    || fail "resubmission after restart did not hit the disk store: $(ctl metrics | grep disk)"

echo "serve-smoke: draining the persistent fitsd"
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 300 ] || fail "persistent fitsd did not drain within 30s of SIGTERM"
    sleep 0.1
done
wait "$pid" 2>/dev/null || fail "persistent fitsd exited non-zero after SIGTERM"
pid=""

echo "serve-smoke: OK (identical results, cache hits, diff and corpus round-trips, clean drain, crash recovery)"
