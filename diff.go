package fits

import (
	"context"
	"runtime"
	"time"

	"fits/internal/evolve"
)

// DiffOptions configures Diff.
type DiffOptions struct {
	Options
	// TopK is how many top-ranked candidates per target form the inferred
	// ITS set carried through the churn computation. Zero means 3.
	TopK int
	// Engine and StringFilter configure the taint scans run on both
	// versions.
	Engine       Engine
	StringFilter bool
	// NoAlias / NoPathcheck disable the precision passes on both sides.
	NoAlias     bool
	NoPathcheck bool
}

// DefaultDiffOptions returns the paper's configuration with the static
// engine and the default candidate depth.
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{Options: DefaultOptions(), TopK: 3}
}

// DiffStageTimings breaks a diff's wall time into its pipeline stages.
type DiffStageTimings struct {
	AnalyzeOld time.Duration
	ScanOld    time.Duration
	AnalyzeNew time.Duration
	ScanNew    time.Duration
	Align      time.Duration
}

// DiffResult is the outcome of comparing two firmware versions.
type DiffResult struct {
	Old *Result
	New *Result
	// OldAlerts and NewAlerts are each version's scan results, in target
	// order, for callers that want the absolute picture next to the churn.
	OldAlerts [][]Alert
	NewAlerts [][]Alert
	Report    *evolve.DiffReport
	Timings   DiffStageTimings
	Elapsed   time.Duration
}

// Diff analyzes two versions of a firmware image and reports what changed:
// which alerts and inferred taint sources appeared, were fixed, or
// persisted, and how much of the new version's analysis was reused from the
// old one.
func Diff(oldRaw, newRaw []byte, opts DiffOptions) (*DiffResult, error) {
	return DiffContext(context.Background(), oldRaw, newRaw, opts)
}

// DiffContext is Diff with cancellation. The old version is analyzed and
// scanned first; the new version's analysis then runs with the old targets
// threaded through the loader, so unchanged functions are replayed, their
// feature vectors are reused, and unchanged binaries skip inference and
// scanning entirely. The new-version results are byte-identical to a cold
// Analyze of the same image: reuse only ever skips work whose output is
// proven unchanged. Without a cache in opts a private one is created for
// the call, since all reuse bookkeeping rides on content hashes.
func DiffContext(ctx context.Context, oldRaw, newRaw []byte, opts DiffOptions) (*DiffResult, error) {
	start := time.Now()
	if opts.Cache == nil {
		opts.Cache = NewCache(0, 0)
	}
	if opts.TopK <= 0 {
		opts.TopK = 3
	}

	stage := time.Now()
	oldRes, err := AnalyzeContext(ctx, oldRaw, opts.Options)
	if err != nil {
		return nil, err
	}
	out := &DiffResult{Old: oldRes}
	out.Timings.AnalyzeOld = time.Since(stage)

	stage = time.Now()
	oldAlerts, oldSide, err := scanSide(ctx, oldRes, opts)
	if err != nil {
		return nil, err
	}
	out.OldAlerts = oldAlerts
	out.Timings.ScanOld = time.Since(stage)

	stage = time.Now()
	newOpts := opts.Options
	for _, tr := range oldRes.Targets {
		newOpts.prev = append(newOpts.prev, tr.target)
	}
	newRes, err := AnalyzeContext(ctx, newRaw, newOpts)
	if err != nil {
		return nil, err
	}
	out.New = newRes
	out.Timings.AnalyzeNew = time.Since(stage)

	stage = time.Now()
	newAlerts, newSide, err := scanSide(ctx, newRes, opts)
	if err != nil {
		return nil, err
	}
	out.NewAlerts = newAlerts
	out.Timings.ScanNew = time.Since(stage)

	stage = time.Now()
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	report, err := evolve.BuildReport(ctx, oldSide, newSide, inferConfig(opts.Options, workers))
	if err != nil {
		return nil, err
	}
	out.Report = report
	out.Timings.Align = time.Since(stage)
	out.Elapsed = time.Since(start)
	return out, nil
}

// scanSide runs the taint scan on every target of one analyzed version and
// packages the results for alignment.
func scanSide(ctx context.Context, res *Result, opts DiffOptions) ([][]Alert, []evolve.TargetAnalysis, error) {
	alerts := make([][]Alert, len(res.Targets))
	side := make([]evolve.TargetAnalysis, len(res.Targets))
	for i, tr := range res.Targets {
		var its []uint32
		ta := evolve.TargetAnalysis{Target: tr.target}
		for _, c := range tr.TopCandidates(opts.TopK) {
			its = append(its, c.Entry)
			ta.ITS = append(ta.ITS, evolve.ITS{Entry: c.Entry, Score: c.Score})
		}
		got, err := tr.ScanContext(ctx, ScanOptions{
			Engine: opts.Engine, ITS: its, StringFilter: opts.StringFilter,
			NoAlias: opts.NoAlias, NoPathcheck: opts.NoPathcheck,
		})
		if err != nil {
			return nil, nil, err
		}
		alerts[i] = got
		for _, a := range got {
			ta.Alerts = append(ta.Alerts, evolve.Alert{
				Binary: a.Binary, Site: a.Site, Func: a.Func,
				Sink: a.Sink, Kind: a.Kind, Source: a.Source,
			})
		}
		side[i] = ta
	}
	return alerts, side, nil
}
