// Command fitsctl submits firmware to a running fitsd service and manages
// its jobs — the CLI face of the client package.
//
// Usage:
//
//	fitsctl [-addr URL] submit [-wait] [-engine E] [-its] [-top N] [-scan] [-out F] firmware.fw
//	fitsctl [-addr URL] diff [-wait] [-by-path] [-out F] old.fw new.fw
//	fitsctl [-addr URL] corpus [-wait] [-xmode M] [-out F] tree-dir
//	fitsctl [-addr URL] status <job-id>
//	fitsctl [-addr URL] result <job-id>
//	fitsctl [-addr URL] list
//	fitsctl [-addr URL] cancel <job-id>
//	fitsctl [-addr URL] health | metrics
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"fits"
	"fits/client"
	"fits/internal/optbuild"
	"fits/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fitsctl: ")
	addr := flag.String("addr", "http://127.0.0.1:8417", "base URL of the fitsd service")
	retries := flag.Int("retries", 1, "attempts per API call; >1 enables retry with backoff")
	callTimeout := flag.Duration("call-timeout", 0, "deadline per API call attempt (0 = none)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	c := client.New(*addr, nil)
	if *retries > 1 || *callTimeout > 0 {
		p := client.DefaultRetryPolicy()
		if *retries > 0 {
			p.MaxAttempts = *retries
		}
		p.CallTimeout = *callTimeout
		c = c.WithRetry(p)
	}
	ctx := context.Background()
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = runSubmit(ctx, c, args)
	case "diff":
		err = runDiff(ctx, c, args)
	case "corpus":
		err = runCorpus(ctx, c, args)
	case "status":
		err = runStatus(ctx, c, args)
	case "result":
		err = runResult(ctx, c, args)
	case "list":
		err = runList(ctx, c)
	case "cancel":
		err = runCancel(ctx, c, args)
	case "health":
		err = runHealth(ctx, c)
	case "metrics":
		err = runMetrics(ctx, c)
	default:
		log.Printf("unknown command %q", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fitsctl [-addr URL] [-retries N] [-call-timeout D] <command> [args]

-retries N enables client-side resilience: transient failures (connection
errors, 429/502/503/504) are retried up to N attempts with jittered
exponential backoff honoring the server's Retry-After, and a submission
interrupted mid-flight is recovered by content hash instead of re-posted.

commands:
  submit [-wait] [-engine E] [-its] [-scan] [-top N] [-j N] [-timeout D] [-by-path] [-out FILE] firmware.fw
  diff [-wait] [-engine E] [-top N] [-j N] [-timeout D] [-by-path] [-out FILE] old.fw new.fw
  corpus [-wait] [-xmode M] [-top N] [-j N] [-timeout D] [-out FILE] tree-dir|packed.fw
                       cross-binary taint scan over a firmware tree (a
                       directory is packed client-side; a file is sent as-is)
  status <job-id>      print one job's status JSON
  result <job-id>      print a done job's result JSON
  list                 list retained jobs
  cancel <job-id>      cancel a queued or running job
  health               print service health
  metrics              print the Prometheus metrics text`)
}

func runSubmit(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var spec optbuild.Spec
	spec.BindAnalyzeFlags(fs)
	spec.BindScanFlags(fs)
	scan := fs.Bool("scan", false, "run a taint scan after inference")
	wait := fs.Bool("wait", false, "block until the job finishes and print its result")
	byPath := fs.Bool("by-path", false, "send the file path instead of the bytes (server-local file)")
	out := fs.String("out", "", "with -wait: write the result JSON to this file")
	poll := fs.Duration("poll", 100*time.Millisecond, "with -wait: status poll interval")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("submit: want exactly one firmware file, got %d args", fs.NArg())
	}
	spec.Scan = *scan
	var (
		resp *server.SubmitResponse
		err  error
	)
	if *byPath {
		resp, err = c.SubmitPath(ctx, fs.Arg(0), spec)
	} else {
		raw, rerr := os.ReadFile(fs.Arg(0))
		if rerr != nil {
			return rerr
		}
		resp, err = c.Submit(ctx, raw, spec)
	}
	if err != nil {
		return err
	}
	fmt.Printf("job %s %s\n", resp.ID, resp.State)
	if !*wait {
		return nil
	}
	return awaitResult(ctx, c, resp.ID, *poll, *out)
}

// runDiff submits two firmware versions for an evolution diff.
func runDiff(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	var spec optbuild.Spec
	spec.BindAnalyzeFlags(fs)
	fs.StringVar(&spec.Engine, "engine", "static", `engine: "static" (STA) or "symbolic" (Karonte-style)`)
	wait := fs.Bool("wait", false, "block until the diff finishes and print its result")
	byPath := fs.Bool("by-path", false, "send the file paths instead of the bytes (server-local files)")
	out := fs.String("out", "", "with -wait: write the result JSON to this file")
	poll := fs.Duration("poll", 100*time.Millisecond, "with -wait: status poll interval")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want exactly two firmware files (old new), got %d args", fs.NArg())
	}
	var (
		resp *server.SubmitResponse
		err  error
	)
	if *byPath {
		resp, err = c.SubmitDiffPaths(ctx, fs.Arg(0), fs.Arg(1), spec)
	} else {
		oldRaw, rerr := os.ReadFile(fs.Arg(0))
		if rerr != nil {
			return rerr
		}
		newRaw, rerr := os.ReadFile(fs.Arg(1))
		if rerr != nil {
			return rerr
		}
		resp, err = c.SubmitDiff(ctx, oldRaw, newRaw, spec)
	}
	if err != nil {
		return err
	}
	fmt.Printf("job %s %s\n", resp.ID, resp.State)
	if !*wait {
		return nil
	}
	return awaitResult(ctx, c, resp.ID, *poll, *out)
}

// runCorpus submits an unpacked firmware tree (or an already-packed corpus
// container) for a cross-binary taint scan.
func runCorpus(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	var spec optbuild.Spec
	spec.BindAnalyzeFlags(fs)
	fs.StringVar(&spec.XMode, "xmode", "cross", "corpus seeding mode: cts, its or cross")
	wait := fs.Bool("wait", false, "block until the scan finishes and print its result")
	out := fs.String("out", "", "with -wait: write the result JSON to this file")
	poll := fs.Duration("poll", 100*time.Millisecond, "with -wait: status poll interval")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("corpus: want exactly one tree directory or packed corpus, got %d args", fs.NArg())
	}
	packed, err := packCorpusArg(fs.Arg(0))
	if err != nil {
		return err
	}
	resp, err := c.SubmitCorpus(ctx, packed, spec)
	if err != nil {
		return err
	}
	fmt.Printf("job %s %s\n", resp.ID, resp.State)
	if !*wait {
		return nil
	}
	return awaitResult(ctx, c, resp.ID, *poll, *out)
}

// packCorpusArg resolves the corpus argument: a directory is walked and
// packed client-side, a regular file is assumed already packed.
func packCorpusArg(path string) ([]byte, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return os.ReadFile(path)
	}
	var files []fits.CorpusFile
	err = filepath.WalkDir(path, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(path, p)
		if err != nil {
			return err
		}
		files = append(files, fits.CorpusFile{Path: filepath.ToSlash(rel), Data: data})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("corpus: no files under %s", path)
	}
	return fits.PackCorpus(files), nil
}

// awaitResult blocks until the job is done and prints (or writes) its
// result JSON.
func awaitResult(ctx context.Context, c *client.Client, id string, poll time.Duration, out string) error {
	st, err := c.Wait(ctx, id, poll)
	if err != nil {
		return err
	}
	if st.State != server.StateDone {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	elapsed := time.Duration(st.ElapsedMS) * time.Millisecond
	cacheNote := ""
	if st.Cache != nil {
		cacheNote = fmt.Sprintf(", models lifted %d / reused %d", st.Cache.Lifted, st.Cache.Reused)
	}
	fmt.Printf("job %s done in %s%s\n", st.ID, elapsed, cacheNote)
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		return err
	}
	if out != "" {
		return os.WriteFile(out, res, 0o644)
	}
	fmt.Println(string(res))
	return nil
}

func runStatus(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("status: want one job id")
	}
	st, err := c.Job(ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(st)
}

func runResult(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("result: want one job id")
	}
	b, err := c.Result(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

func runList(ctx context.Context, c *client.Client) error {
	jobs, err := c.Jobs(ctx)
	if err != nil {
		return err
	}
	for _, j := range jobs {
		elapsed := ""
		if j.ElapsedMS > 0 {
			elapsed = (time.Duration(j.ElapsedMS) * time.Millisecond).String()
		}
		fmt.Printf("%-10s %-9s %8d bytes  %-8s %s\n",
			j.ID, j.State, j.SizeBytes, elapsed, j.SubmittedAt.Format(time.RFC3339))
	}
	return nil
}

func runCancel(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("cancel: want one job id")
	}
	st, err := c.Cancel(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Printf("job %s %s\n", st.ID, st.State)
	return nil
}

func runHealth(ctx context.Context, c *client.Client) error {
	h, err := c.Health(ctx)
	if err != nil {
		return err
	}
	return printJSON(h)
}

func runMetrics(ctx context.Context, c *client.Client) error {
	m, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Print(m)
	return nil
}

func printJSON(v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}
