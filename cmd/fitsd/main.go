// Command fitsd runs the FITS analysis pipeline as a long-lived HTTP
// service: firmware images are submitted as jobs, flow through a bounded
// queue into a worker pool sharing one process-wide model cache, and
// finished results are retained in an LRU+TTL store.
//
// Usage:
//
//	fitsd                                  # listen on :8417
//	fitsd -listen 127.0.0.1:0 -addr-file a # ephemeral port, written to a
//	fitsd -workers 4 -queue 128 -job-timeout 2m
//
// Endpoints: POST/GET /v1/jobs, GET /v1/jobs/{id}[/result],
// DELETE /v1/jobs/{id}, GET /healthz, GET /metrics. SIGINT/SIGTERM drain
// gracefully: intake stops, queued jobs are canceled, in-flight jobs get
// -drain-timeout to finish before their contexts are canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fits/internal/optbuild"
	"fits/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("fitsd: ")
	listen := flag.String("listen", ":8417", "address to listen on (host:0 picks an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file (for scripts)")
	workers := flag.Int("workers", server.DefaultWorkers, "concurrent analysis jobs")
	queueDepth := flag.Int("queue", server.DefaultQueueDepth, "bounded job queue depth (full = HTTP 429)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock limit (0 = none)")
	storeCap := flag.Int("store-size", server.DefaultStoreCap, "finished jobs retained (LRU)")
	storeTTL := flag.Duration("store-ttl", server.DefaultStoreTTL, "finished job lifetime (0 = keep until evicted)")
	maxUpload := flag.Int64("max-upload", server.DefaultMaxUploadBytes, "largest accepted firmware body in bytes")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long in-flight jobs may finish on shutdown")
	dataDir := flag.String("data-dir", "", "directory for the crash-safe job journal and result store (empty = memory only)")
	noPersist := flag.Bool("no-persist", false, "ignore -data-dir and run memory-only")
	verbose := flag.Bool("v", false, "log each job transition")
	var cacheCfg optbuild.CacheConfig
	cacheCfg.BindFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		log.Fatal("usage: fitsd [-listen ADDR] [-workers N] [-queue N] [-job-timeout D] [-store-size N] [-store-ttl D] [-data-dir DIR] [-no-persist] [-cache-size N] [-no-cache] [-drain-timeout D] [-v]")
	}

	cfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		JobTimeout:     *jobTimeout,
		StoreCap:       *storeCap,
		StoreTTL:       *storeTTL,
		MaxUploadBytes: *maxUpload,
		Cache:          cacheCfg.New(),
		DataDir:        *dataDir,
	}
	if *noPersist {
		cfg.DataDir = ""
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(addr), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("listening on %s (%d workers, queue %d)", addr, *workers, *queueDepth)

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("draining (deadline %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain deadline hit; in-flight jobs were canceled: %v", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("bye")
}
