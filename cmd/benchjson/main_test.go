package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: fits
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipeline_SingleFirmware-8 	       1	  29471234 ns/op	18068904 B/op	   98282 allocs/op
BenchmarkPipeline_SingleFirmwareCached-8 	       1	   9120354 ns/op	        66.67 cache-hit-%	 6727568 B/op	    4429 allocs/op
PASS
ok  	fits	0.458s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Pkg != "fits" || rep.CPU == "" {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkPipeline_SingleFirmware" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", b.Name)
	}
	if b.Iterations != 1 || b.Metrics["ns/op"] != 29471234 || b.Metrics["allocs/op"] != 98282 {
		t.Errorf("benchmark 0 = %+v", b)
	}
	c := rep.Benchmarks[1]
	if c.Metrics["cache-hit-%"] != 66.67 {
		t.Errorf("cache-hit-%% = %v, want 66.67", c.Metrics["cache-hit-%"])
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	in := "BenchmarkGroup\nBenchmarkGroup/sub-4 	 2 	 100 ns/op\n"
	rep, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkGroup/sub" {
		t.Errorf("benchmarks = %+v", rep.Benchmarks)
	}
}
