package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: fits
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipeline_SingleFirmware-8 	       1	  29471234 ns/op	18068904 B/op	   98282 allocs/op
BenchmarkPipeline_SingleFirmwareCached-8 	       1	   9120354 ns/op	        66.67 cache-hit-%	 6727568 B/op	    4429 allocs/op
PASS
ok  	fits	0.458s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Pkg != "fits" || rep.CPU == "" {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkPipeline_SingleFirmware" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", b.Name)
	}
	if b.Iterations != 1 || b.Metrics["ns/op"] != 29471234 || b.Metrics["allocs/op"] != 98282 {
		t.Errorf("benchmark 0 = %+v", b)
	}
	c := rep.Benchmarks[1]
	if c.Metrics["cache-hit-%"] != 66.67 {
		t.Errorf("cache-hit-%% = %v, want 66.67", c.Metrics["cache-hit-%"])
	}
}

// TestParseToleratesMissingOptionalMetrics: cold-only runs carry no
// cache-hit metric and CI permutations can truncate a pair; the parser
// must keep what parsed instead of failing the bench-smoke step.
func TestParseToleratesMissingOptionalMetrics(t *testing.T) {
	in := "BenchmarkPipeline_SingleFirmware-8 \t 1 \t 123456 ns/op \t 52 B/op \t stray\n" +
		"BenchmarkPipeline_ColdOnly-8 \t 1 \t 999 ns/op\n"
	rep, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	b := rep.Benchmarks[0]
	if b.Metrics["ns/op"] != 123456 || b.Metrics["B/op"] != 52 || len(b.Metrics) != 2 {
		t.Errorf("truncated line metrics = %+v, want ns/op and B/op only", b.Metrics)
	}
	c := rep.Benchmarks[1]
	if _, ok := c.Metrics["cache-hit-%"]; ok {
		t.Errorf("cold-only run should simply lack cache-hit-%%: %+v", c.Metrics)
	}
	if c.Metrics["ns/op"] != 999 {
		t.Errorf("cold-only metrics = %+v", c.Metrics)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	in := "BenchmarkGroup\nBenchmarkGroup/sub-4 	 2 	 100 ns/op\n"
	rep, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkGroup/sub" {
		t.Errorf("benchmarks = %+v", rep.Benchmarks)
	}
}

func report(cpu string, benches ...Benchmark) *Report {
	return &Report{Goos: "linux", Goarch: "amd64", Pkg: "fits", CPU: cpu, Benchmarks: benches}
}

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 20, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func TestSingleIterationRejected(t *testing.T) {
	rep := report("cpu0",
		Benchmark{Name: "BenchmarkA", Iterations: 1, Metrics: map[string]float64{"ns/op": 1}},
		bench("BenchmarkB", 100, 10))
	bad := singleIteration(rep)
	if len(bad) != 1 || bad[0] != "BenchmarkA" {
		t.Errorf("singleIteration = %v, want [BenchmarkA]", bad)
	}
	if bad := singleIteration(report("cpu0", bench("BenchmarkB", 100, 10))); len(bad) != 0 {
		t.Errorf("multi-iteration samples flagged: %v", bad)
	}
}

func TestRegressionsGateNsAndAllocs(t *testing.T) {
	old := report("cpu0", bench("BenchmarkA", 1000, 100), bench("BenchmarkB", 1000, 100))
	cur := report("cpu0",
		bench("BenchmarkA", 1300, 100), // +30% ns/op: regression at 25
		bench("BenchmarkB", 1200, 135), // +20% ns ok, +35% allocs: regression
		bench("BenchmarkNew", 9e9, 9e9)) // absent from old: ignored
	regs := regressions(old, cur, 25)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2", regs)
	}
	if !strings.Contains(regs[0], "BenchmarkA ns/op") || !strings.Contains(regs[1], "BenchmarkB allocs/op") {
		t.Errorf("regressions = %v", regs)
	}
	if regs := regressions(old, cur, 40); len(regs) != 0 {
		t.Errorf("at 40%% tolerance want none, got %v", regs)
	}
	// Improvements never trip the gate.
	if regs := regressions(old, report("cpu0", bench("BenchmarkA", 10, 1)), 25); len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}
}

func TestCompareArgsTrailingTolerance(t *testing.T) {
	oldPath, newPath, tol := compareArgs([]string{"old.json", "new.json", "-tolerance", "10"}, 25)
	if oldPath != "old.json" || newPath != "new.json" || tol != 10 {
		t.Errorf("got (%q, %q, %v)", oldPath, newPath, tol)
	}
	oldPath, newPath, tol = compareArgs([]string{"a", "b"}, 25)
	if oldPath != "a" || newPath != "b" || tol != 25 {
		t.Errorf("got (%q, %q, %v)", oldPath, newPath, tol)
	}
}
