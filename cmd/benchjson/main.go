// Command benchjson converts `go test -bench` output on stdin into a JSON
// report on stdout, so CI can archive benchmark numbers (ns/op, allocs/op,
// custom metrics such as cache-hit-%) without extra tooling.
//
// Usage:
//
//	go test -run='^$' -bench=Pipeline -benchtime=1x -benchmem . | benchjson > BENCH_pipeline.json
package main

import (
	"bufio"
	"encoding/json"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value, e.g. "ns/op", "allocs/op"
}

// Report is the whole document, with the run's environment header.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b := parseLine(line); b != nil {
				rep.Benchmarks = append(rep.Benchmarks, *b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses a result line of the form
//
//	BenchmarkName-8   2   9120354 ns/op   66.67 cache-hit-%   6727568 B/op   4429 allocs/op
//
// Lines that merely start with "Benchmark" but carry no measurements (e.g. a
// sub-benchmark group header) are skipped by returning nil.
//
// Optional metrics are best-effort: a run may legitimately omit some (a
// cold-only run reports no cache-hit line) or emit a truncated pair, and
// archiving the metrics that did parse beats failing the bench-smoke step,
// so stray tokens are warned about on stderr and dropped.
func parseLine(line string) *Benchmark {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil // "BenchmarkFoo" used as a prose word, not a result line
	}
	b := &Benchmark{
		Name:       trimMaxprocs(fields[0]),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i < len(fields); {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil || i+1 >= len(fields) {
			log.Printf("ignoring stray token %q in %s result line", fields[i], b.Name)
			i++
			continue
		}
		b.Metrics[fields[i+1]] = v
		i += 2
	}
	return b
}

// trimMaxprocs strips the numeric -N GOMAXPROCS suffix `go test` appends to
// benchmark names; names without one pass through unchanged.
func trimMaxprocs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if n, err := strconv.Atoi(name[i+1:]); err != nil || n <= 0 {
		return name
	}
	return name[:i]
}
