// Command benchjson converts `go test -bench` output on stdin into a JSON
// report on stdout, so CI can archive benchmark numbers (ns/op, allocs/op,
// custom metrics such as cache-hit-%) without extra tooling.
//
// Usage:
//
//	go test -run='^$' -bench=Pipeline -benchtime=1x -benchmem . | benchjson > BENCH_pipeline.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value, e.g. "ns/op", "allocs/op"
}

// Report is the whole document, with the run's environment header.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if b != nil {
				rep.Benchmarks = append(rep.Benchmarks, *b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses a result line of the form
//
//	BenchmarkName-8   2   9120354 ns/op   66.67 cache-hit-%   6727568 B/op   4429 allocs/op
//
// Lines that merely start with "Benchmark" but carry no measurements (e.g. a
// sub-benchmark group header) are skipped by returning (nil, nil).
func parseLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return nil, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil // "BenchmarkFoo" used as a prose word, not a result line
	}
	b := &Benchmark{
		Name:       trimMaxprocs(fields[0]),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// trimMaxprocs strips the numeric -N GOMAXPROCS suffix `go test` appends to
// benchmark names; names without one pass through unchanged.
func trimMaxprocs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if n, err := strconv.Atoi(name[i+1:]); err != nil || n <= 0 {
		return name
	}
	return name[:i]
}
