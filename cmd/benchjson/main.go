// Command benchjson converts `go test -bench` output on stdin into a JSON
// report on stdout, so CI can archive benchmark numbers (ns/op, allocs/op,
// custom metrics such as cache-hit-%) without extra tooling, and compares
// two archived reports so CI can fail on performance regressions.
//
// Usage:
//
//	go test -run='^$' -bench=Pipeline -benchtime=20x -benchmem . | benchjson > BENCH_pipeline.json
//	benchjson -compare BENCH_pipeline.json BENCH_new.json -tolerance 25
//
// Conversion refuses single-iteration samples: with -benchtime=1x one GC
// pause or cache-cold run lands verbatim in the archive and every later
// comparison inherits the noise. Re-run with -benchtime=20x (or more).
//
// Compare mode checks every benchmark present in both reports and exits
// nonzero if new ns/op or allocs/op exceeds old by more than the tolerance
// percentage. When the two reports' cpu fields differ the numbers are not
// comparable as a gate — regressions are still printed, but as warnings.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value, e.g. "ns/op", "allocs/op"
}

// Report is the whole document, with the run's environment header.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	compareMode := flag.Bool("compare", false, "compare two report files instead of converting stdin")
	tolerance := flag.Float64("tolerance", 25, "regression tolerance in percent (compare mode)")
	flag.Parse()
	if *compareMode {
		oldPath, newPath, tol := compareArgs(flag.Args(), *tolerance)
		if err := compareFiles(oldPath, newPath, tol); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.NArg() != 0 {
		log.Fatal("usage: benchjson < bench.out  |  benchjson -compare old.json new.json [-tolerance pct]")
	}
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	if bad := singleIteration(rep); len(bad) > 0 {
		log.Fatalf("refusing single-iteration samples (one GC pause would be archived as truth): %s; re-run with -benchtime=20x or more",
			strings.Join(bad, ", "))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

// singleIteration lists benchmarks whose sample is a single iteration.
func singleIteration(rep *Report) []string {
	var bad []string
	for _, b := range rep.Benchmarks {
		if b.Iterations == 1 {
			bad = append(bad, b.Name)
		}
	}
	return bad
}

// compareArgs resolves compare-mode positionals, tolerating a trailing
// `-tolerance N` after the file names (the flag package stops parsing at
// the first positional, and both orders read naturally in a Makefile).
func compareArgs(args []string, tol float64) (oldPath, newPath string, tolerance float64) {
	tolerance = tol
	var files []string
	for i := 0; i < len(args); i++ {
		if (args[i] == "-tolerance" || args[i] == "--tolerance") && i+1 < len(args) {
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				log.Fatalf("invalid -tolerance %q", args[i+1])
			}
			tolerance = v
			i++
			continue
		}
		files = append(files, args[i])
	}
	if len(files) != 2 {
		log.Fatal("usage: benchjson -compare old.json new.json [-tolerance pct]")
	}
	return files[0], files[1], tolerance
}

// gatedUnits are the metrics compare mode treats as regressions when they
// grow; other units (B/op, cache-hit-%, stage breakdowns) are informational.
var gatedUnits = []string{"ns/op", "allocs/op"}

// compareFiles loads two reports and gates new against old. A non-nil error
// means the gate failed (regression beyond tolerance on comparable hosts).
func compareFiles(oldPath, newPath string, tolerance float64) error {
	old, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	cur, err := loadReport(newPath)
	if err != nil {
		return err
	}
	regs := regressions(old, cur, tolerance)
	if len(regs) == 0 {
		log.Printf("ok: no metric grew more than %g%% (%s vs %s)", tolerance, newPath, oldPath)
		return nil
	}
	if old.CPU != cur.CPU {
		log.Printf("warning: cpu differs (%q vs %q); numbers are not comparable, reporting without failing:", old.CPU, cur.CPU)
		for _, r := range regs {
			log.Print("  " + r)
		}
		return nil
	}
	for _, r := range regs {
		log.Print("  " + r)
	}
	return fmt.Errorf("%d metric(s) regressed more than %g%%", len(regs), tolerance)
}

// regressions lists every gated metric of a benchmark present in both
// reports whose new value exceeds the old by more than tolerance percent.
func regressions(old, cur *Report, tolerance float64) []string {
	prev := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		prev[b.Name] = b
	}
	var regs []string
	for _, b := range cur.Benchmarks {
		base, ok := prev[b.Name]
		if !ok {
			continue // new benchmark: nothing to gate against
		}
		for _, unit := range gatedUnits {
			ov, haveOld := base.Metrics[unit]
			nv, haveNew := b.Metrics[unit]
			if !haveOld || !haveNew || ov <= 0 {
				continue
			}
			if growth := 100 * (nv - ov) / ov; growth > tolerance {
				regs = append(regs, fmt.Sprintf("%s %s: %.0f -> %.0f (+%.1f%%)", b.Name, unit, ov, nv, growth))
			}
		}
	}
	sort.Strings(regs)
	return regs
}

func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b := parseLine(line); b != nil {
				rep.Benchmarks = append(rep.Benchmarks, *b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses a result line of the form
//
//	BenchmarkName-8   2   9120354 ns/op   66.67 cache-hit-%   6727568 B/op   4429 allocs/op
//
// Lines that merely start with "Benchmark" but carry no measurements (e.g. a
// sub-benchmark group header) are skipped by returning nil.
//
// Optional metrics are best-effort: a run may legitimately omit some (a
// cold-only run reports no cache-hit line) or emit a truncated pair, and
// archiving the metrics that did parse beats failing the bench-smoke step,
// so stray tokens are warned about on stderr and dropped.
func parseLine(line string) *Benchmark {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil // "BenchmarkFoo" used as a prose word, not a result line
	}
	b := &Benchmark{
		Name:       trimMaxprocs(fields[0]),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i < len(fields); {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil || i+1 >= len(fields) {
			log.Printf("ignoring stray token %q in %s result line", fields[i], b.Name)
			i++
			continue
		}
		b.Metrics[fields[i+1]] = v
		i += 2
	}
	return b
}

// trimMaxprocs strips the numeric -N GOMAXPROCS suffix `go test` appends to
// benchmark names; names without one pass through unchanged.
func trimMaxprocs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if n, err := strconv.Atoi(name[i+1:]); err != nil || n <= 0 {
		return name
	}
	return name[:i]
}
