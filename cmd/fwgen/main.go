// Command fwgen generates the synthetic firmware corpus: 59 packed firmware
// images across five vendor profiles, each with a ground-truth manifest.
//
// Usage:
//
//	fwgen -out corpus/            # write all 59 samples
//	fwgen -out corpus/ -vendor NETGEAR
//	fwgen -list                   # print the dataset without writing
//	fwgen -multibin tree/         # write one unpacked multi-binary corpus
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fits/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fwgen: ")
	out := flag.String("out", "", "output directory for firmware images and manifests")
	vendor := flag.String("vendor", "", "generate only this vendor's samples")
	list := flag.Bool("list", false, "list the dataset and exit")
	multibin := flag.String("multibin", "", "write a generated multi-binary corpus tree to this directory")
	seed := flag.Int64("seed", 1, "generation seed for -multibin")
	flag.Parse()

	if *multibin != "" {
		writeMultibin(*multibin, *seed)
		return
	}

	specs := synth.Dataset()
	if *list {
		for _, s := range specs {
			fail := s.FailureMode
			if fail == "" {
				fail = "-"
			}
			fmt.Printf("%-8s %-12s %-12s latest=%-5v failure=%s\n",
				s.Vendor, s.Product, s.Version, s.Latest, fail)
		}
		return
	}
	if *out == "" {
		log.Fatal("missing -out directory (or use -list)")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	n := 0
	for _, spec := range specs {
		if *vendor != "" && spec.Vendor != *vendor {
			continue
		}
		sample, err := synth.Generate(spec)
		if err != nil {
			log.Fatalf("%s %s: %v", spec.Vendor, spec.Product, err)
		}
		base := fmt.Sprintf("%s_%s_%s", spec.Vendor, spec.Product, spec.Version)
		img := filepath.Join(*out, base+".fw")
		if err := os.WriteFile(img, sample.Packed, 0o644); err != nil {
			log.Fatal(err)
		}
		man, err := json.MarshalIndent(sample.Manifest, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*out, base+".manifest.json"), man, 0o644); err != nil {
			log.Fatal(err)
		}
		n++
		fmt.Printf("wrote %s (%d bytes, %d planted bugs)\n", img, len(sample.Packed), sample.Manifest.TrueBugs())
	}
	fmt.Printf("generated %d firmware samples\n", n)
}

// writeMultibin materializes one generated multi-binary corpus as an
// unpacked firmware tree: back-end binaries under bin/, front-end artifacts
// under www/ and etc/, plus the ground-truth flow manifest.
func writeMultibin(dir string, seed int64) {
	x, err := synth.GenerateXCorpus(seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range x.Files {
		p := filepath.Join(dir, filepath.FromSlash(f.Path))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(p, f.Data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	man, err := json.MarshalIndent(x.Manifest, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	manPath := filepath.Join(dir, "xmanifest.json")
	if err := os.WriteFile(manPath, man, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d corpus files + %s (%d binaries, %d planted flows)\n",
		len(x.Files), manPath, len(x.Manifest.Binaries), len(x.Manifest.Flows))
}
