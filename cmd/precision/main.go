// Command precision runs the STA precision scoreboard: it scores the alias
// and path-feasibility passes against the baseline engine on planted
// ground truth across the three synth families (single-binary,
// version-chain, multibin), prints the before/after table, and exits
// nonzero unless the full configuration scores strictly better precision
// than the baseline at no loss of recall. `make precision-smoke` wires it
// into CI.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fits/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("precision: ")
	check := flag.Bool("check", true, "enforce the precision gate (exit nonzero on regression)")
	flag.Parse()

	rows, err := eval.RunPrecision()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(eval.FormatPrecision(rows))
	if *check {
		if err := eval.CheckPrecision(rows); err != nil {
			log.Fatal(err)
		}
		fmt.Println("precision gate: ok")
	}
	os.Exit(0)
}
