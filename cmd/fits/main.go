// Command fits runs intermediate-taint-source inference on a firmware image:
// it unpacks the image, selects the network binaries, and prints the ranked
// ITS candidates per binary.
//
// Usage:
//
//	fits -top 5 firmware.fw
//	fits -j 8 -timeout 30s firmware.fw  # 8 workers, abort after 30s
//	fits -unpack firmware.fw            # list the filesystem only
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"fits"
	"fits/internal/firmware"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fits: ")
	top := flag.Int("top", 3, "how many ranked candidates to print per binary")
	unpackOnly := flag.Bool("unpack", false, "only unpack and list the filesystem")
	jobs := flag.Int("j", 0, "worker goroutines for the analysis pipeline (0 = all CPUs)")
	timeout := flag.Duration("timeout", 0, "abort analysis after this duration (0 = no limit)")
	cacheSize := flag.Int64("cache-size", 0, "model cache byte budget (0 = default 1 GiB)")
	noCache := flag.Bool("no-cache", false, "disable the content-addressed model cache")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: fits [-top N] [-j N] [-timeout D] [-cache-size N] [-no-cache] [-unpack] firmware.fw")
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	if *unpackOnly {
		img, err := firmware.Unpack(raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %s %s (encoding: %s)\n", img.Vendor, img.Product, img.Version, firmware.DetectScheme(raw))
		for _, f := range img.Files {
			fmt.Printf("  %-30s %8d bytes\n", f.Path, len(f.Data))
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := fits.DefaultOptions()
	opts.Parallelism = *jobs
	if !*noCache {
		opts.Cache = fits.NewCache(0, *cacheSize)
	}
	res, err := fits.AnalyzeContext(ctx, raw, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %s %s — analyzed in %s\n", res.Vendor, res.Product, res.Version, res.Elapsed.Round(1e6))
	for _, t := range res.Targets {
		fmt.Printf("\n%s (%s): %d custom functions\n", t.Path, t.Binary, t.NumFuncs)
		for i, c := range t.TopCandidates(*top) {
			fmt.Printf("  %d. %#x  score %.4f\n", i+1, c.Entry, c.Score)
		}
	}
}
