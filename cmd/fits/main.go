// Command fits runs intermediate-taint-source inference on a firmware image:
// it unpacks the image, selects the network binaries, and prints the ranked
// ITS candidates per binary.
//
// Usage:
//
//	fits -top 5 firmware.fw
//	fits -j 8 -timeout 30s firmware.fw  # 8 workers, abort after 30s
//	fits -unpack firmware.fw            # list the filesystem only
//	fits diff old.fw new.fw             # alert/ITS churn between versions
//	fits xscan tree/                    # cross-binary corpus taint (JSON)
//	fits -xmode its xscan tree/         # single-binary baseline mode
//
// Option plumbing is shared with cmd/fwscan and fitsd via
// internal/optbuild.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fits"
	"fits/internal/firmware"
	"fits/internal/optbuild"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fits: ")
	var spec optbuild.Spec
	spec.BindAnalyzeFlags(flag.CommandLine)
	var cacheCfg optbuild.CacheConfig
	cacheCfg.BindFlags(flag.CommandLine)
	unpackOnly := flag.Bool("unpack", false, "only unpack and list the filesystem")
	xmode := flag.String("xmode", "cross", "corpus seeding mode for xscan: cts, its or cross")
	flag.Parse()
	if flag.NArg() == 3 && flag.Arg(0) == "diff" {
		runDiff(spec, cacheCfg, flag.Arg(1), flag.Arg(2))
		return
	}
	if flag.NArg() == 2 && flag.Arg(0) == "xscan" {
		runXScan(spec, cacheCfg, *xmode, flag.Arg(1))
		return
	}
	if flag.NArg() != 1 {
		log.Fatal("usage: fits [-top N] [-j N] [-timeout D] [-cache-size N] [-no-cache] [-unpack] firmware.fw\n" +
			"       fits diff old.fw new.fw\n" +
			"       fits [-xmode cts|its|cross] xscan corpus-dir/")
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	if *unpackOnly {
		img, err := firmware.Unpack(raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %s %s (encoding: %s)\n", img.Vendor, img.Product, img.Version, firmware.DetectScheme(raw))
		for _, f := range img.Files {
			fmt.Printf("  %-30s %8d bytes\n", f.Path, len(f.Data))
		}
		return
	}

	aopts, err := spec.AnalyzeOptions(cacheCfg.New())
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := spec.Context(context.Background())
	defer cancel()
	res, err := fits.AnalyzeContext(ctx, raw, aopts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %s %s — analyzed in %s\n", res.Vendor, res.Product, res.Version, res.Elapsed.Round(1e6))
	for _, t := range res.Targets {
		fmt.Printf("\n%s (%s): %d custom functions\n", t.Path, t.Binary, t.NumFuncs)
		for i, c := range t.TopCandidates(spec.TopK) {
			fmt.Printf("  %d. %#x  score %.4f\n", i+1, c.Entry, c.Score)
		}
	}
}

// runXScan analyzes an unpacked firmware tree as one corpus and prints the
// report as JSON. The output is byte-identical across worker counts and
// cache temperature.
func runXScan(spec optbuild.Spec, cacheCfg optbuild.CacheConfig, mode, dir string) {
	files, err := readCorpusDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := spec.Context(context.Background())
	defer cancel()
	rep, err := fits.XScanContext(ctx, files, fits.XScanOptions{
		Mode:         mode,
		TopK:         spec.TopK,
		StringFilter: true,
		Parallelism:  spec.Parallelism,
		Cache:        cacheCfg.New(),
		Progress:     func(msg string) { fmt.Fprintln(os.Stderr, "xscan: "+msg) },
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}

// readCorpusDir collects every regular file under dir with slash-separated
// relative paths, in deterministic walk order.
func readCorpusDir(dir string) ([]fits.CorpusFile, error) {
	var files []fits.CorpusFile
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		files = append(files, fits.CorpusFile{Path: filepath.ToSlash(rel), Data: data})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return files, nil
}

// runDiff analyzes two versions of an image incrementally and prints the
// alert and taint-source churn between them.
func runDiff(spec optbuild.Spec, cacheCfg optbuild.CacheConfig, oldPath, newPath string) {
	oldRaw, err := os.ReadFile(oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newRaw, err := os.ReadFile(newPath)
	if err != nil {
		log.Fatal(err)
	}
	dopts, err := spec.DiffOptions(cacheCfg.New())
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := spec.Context(context.Background())
	defer cancel()
	d, err := fits.DiffContext(ctx, oldRaw, newRaw, dopts)
	if err != nil {
		log.Fatal(err)
	}
	r := d.Report
	fmt.Printf("%s %s: %s -> %s — diffed in %s\n",
		d.New.Vendor, d.New.Product, d.Old.Version, d.New.Version, d.Elapsed.Round(1e6))
	fmt.Printf("functions reused: %d/%d (%.1f%%)\n", r.ReusedFuncs, r.TotalFuncs, 100*r.ReuseRatio)
	fmt.Printf("alerts:  %d appeared, %d fixed, %d persisted\n", r.AlertsAppeared, r.AlertsFixed, r.AlertsPersisted)
	fmt.Printf("sources: %d appeared, %d fixed, %d persisted\n", r.ITSAppeared, r.ITSFixed, r.ITSPersisted)
	for _, td := range r.Targets {
		if len(td.Appeared)+len(td.Fixed)+len(td.Renames) == 0 {
			continue
		}
		fmt.Printf("\n%s\n", td.Path)
		for _, a := range td.Appeared {
			fmt.Printf("  + %s %s at %#x (func %#x), source %s\n", a.Kind, a.Sink, a.Site, a.Func, a.Source)
		}
		for _, a := range td.Fixed {
			fmt.Printf("  - %s %s at %#x (func %#x), source %s\n", a.Kind, a.Sink, a.Site, a.Func, a.Source)
		}
		for _, rn := range td.Renames {
			fmt.Printf("  ~ %s renamed to %s (similarity %.3f)\n", rn.OldName, rn.NewName, rn.Similarity)
		}
	}
}
