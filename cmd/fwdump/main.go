// Command fwdump inspects binaries inside a firmware image the way objdump
// inspects ELF files: sections, dynamic symbols, recovered functions, and
// per-block disassembly with call and jump-table annotations. With -ir it
// prints the lifted VEX-like IR instead of assembly.
//
// Usage:
//
//	fwdump firmware.fw                       # summary of every binary
//	fwdump -bin bin/httpd firmware.fw        # full disassembly of one binary
//	fwdump -bin bin/httpd -fn 0x10640 -ir firmware.fw
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/firmware"
	"fits/internal/isa"
	"fits/internal/ucse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fwdump: ")
	binPath := flag.String("bin", "", "disassemble this binary (firmware path)")
	fnAddr := flag.String("fn", "", "limit output to the function at this entry (hex)")
	showIR := flag.Bool("ir", false, "print lifted IR instead of assembly")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: fwdump [-bin PATH [-fn ADDR] [-ir]] firmware.fw")
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	img, err := firmware.Unpack(raw)
	if err != nil {
		log.Fatal(err)
	}

	if *binPath == "" {
		summarize(img)
		return
	}
	f, ok := img.Lookup(*binPath)
	if !ok {
		log.Fatalf("no file %q in image", *binPath)
	}
	bin, err := binimg.Decode(f.Data)
	if err != nil {
		log.Fatal(err)
	}
	model, err := cfg.Build(bin, cfg.Options{
		Resolver:     ucse.Resolver(),
		JumpResolver: ucse.JumpResolver(),
	})
	if err != nil {
		log.Fatal(err)
	}

	var only uint32
	if *fnAddr != "" {
		v, err := strconv.ParseUint(strings.TrimPrefix(*fnAddr, "0x"), 16, 32)
		if err != nil {
			log.Fatalf("bad -fn address: %v", err)
		}
		only = uint32(v)
	}
	dump(bin, model, only, *showIR)
}

func summarize(img *firmware.Image) {
	fmt.Printf("%s %s %s\n\n", img.Vendor, img.Product, img.Version)
	for _, f := range img.Files {
		if !binimg.IsBinary(f.Data) {
			fmt.Printf("%-28s %8d bytes\n", f.Path, len(f.Data))
			continue
		}
		b, err := binimg.Decode(f.Data)
		if err != nil {
			fmt.Printf("%-28s %8d bytes (corrupt binary: %v)\n", f.Path, len(f.Data), err)
			continue
		}
		stripped := ""
		if b.Stripped {
			stripped = ", stripped"
		}
		fmt.Printf("%-28s %8d bytes  %s binary%s\n", f.Path, len(f.Data), b.Arch, stripped)
		fmt.Printf("%30s text %#x+%d rodata %#x+%d data %#x+%d bss %#x+%d\n", "",
			b.Text.Addr, len(b.Text.Data), b.Rodata.Addr, len(b.Rodata.Data),
			b.Data.Addr, len(b.Data.Data), b.BssAddr, b.BssSize)
		if len(b.Needed) > 0 {
			fmt.Printf("%30s needs %s; %d imports, %d exports\n", "",
				strings.Join(b.Needed, " "), len(b.Imports), len(b.Exports))
		}
	}
}

func dump(bin *binimg.Binary, m *cfg.Model, only uint32, showIR bool) {
	for _, fn := range m.FuncsInOrder() {
		if only != 0 && fn.Entry != only {
			continue
		}
		kind := ""
		if fn.ImportStub {
			kind = " (import stub)"
		}
		fmt.Printf("\n%08x <%s>%s  blocks=%d loops=%d params=%d\n",
			fn.Entry, fn.Name, kind, fn.NumBlocks(), len(fn.Loops), fn.Params)
		for _, blk := range fn.BlocksInOrder() {
			fmt.Printf("  block %08x -> %s\n", blk.Start, succsString(blk))
			for i, in := range blk.Instrs {
				addr := blk.Start + uint32(i*isa.Width)
				note := annotate(bin, m, fn, addr, in)
				if showIR {
					for _, s := range blk.IR[i].Stmts {
						fmt.Printf("    %08x   %s%s\n", addr, s, note)
						note = "" // annotate only the first line
					}
				} else {
					fmt.Printf("    %08x   %-34s%s\n", addr, in.String(), note)
				}
			}
		}
	}
}

func succsString(blk *cfg.BasicBlock) string {
	if len(blk.Succs) == 0 {
		return "(terminal)"
	}
	parts := make([]string, len(blk.Succs))
	for i, s := range blk.Succs {
		parts[i] = fmt.Sprintf("%08x", s)
	}
	return strings.Join(parts, " ")
}

// annotate explains call targets, strings and jump tables on the margin.
func annotate(bin *binimg.Binary, m *cfg.Model, fn *cfg.Function, addr uint32, in isa.Instr) string {
	switch in.Op {
	case isa.OpCall:
		if callee, ok := m.FuncAt(uint32(in.Imm)); ok {
			return "  ; call " + callee.Name
		}
	case isa.OpCallr:
		var names []string
		for _, cs := range fn.Calls {
			if cs.Addr == addr && cs.Target != 0 {
				if callee, ok := m.FuncAt(cs.Target); ok {
					names = append(names, callee.Name)
				}
			}
		}
		if len(names) > 0 {
			return "  ; resolves to " + strings.Join(names, ", ")
		}
		return "  ; unresolved indirect call"
	case isa.OpJr:
		if ts := fn.JumpTables[addr]; len(ts) > 0 {
			return fmt.Sprintf("  ; jump table, %d cases", len(ts))
		}
		return "  ; unresolved computed jump"
	case isa.OpMovi:
		if s, ok := bin.CString(uint32(in.Imm)); ok && bin.SectionOf(uint32(in.Imm)) == "rodata" && printable(s) {
			return fmt.Sprintf("  ; %q", s)
		}
	}
	return ""
}

func printable(s string) bool {
	if len(s) == 0 || len(s) > 40 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] > 0x7e {
			return false
		}
	}
	return true
}
