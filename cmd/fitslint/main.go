// Command fitslint is the repo's invariant checker: a multichecker that
// runs every analyzer registered in internal/lint over the given package
// patterns and exits non-zero on findings. `make lint` wires it into the
// CI chain.
//
// Usage:
//
//	fitslint [-analyzers] [packages ...]   # default pattern ./...
//
// Findings print as file:line:col: message (analyzer). Suppress a
// deliberate violation with `//fitslint:ignore <analyzer> <reason>` on the
// flagged line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fits/internal/lint"
	"fits/internal/lint/loader"
)

func main() {
	listOnly := flag.Bool("analyzers", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fitslint [-analyzers] [packages ...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *listOnly {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(cwd, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(cwd, file); err == nil {
				file = rel
			}
			fmt.Printf("%s:%d:%d: %s (%s)\n", file, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
		total += len(diags)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "fitslint: %d finding(s)\n", total)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fitslint:", err)
	os.Exit(1)
}
