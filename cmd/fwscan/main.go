// Command fwscan runs taint analysis over a firmware image, optionally
// seeding inferred intermediate taint sources.
//
// Usage:
//
//	fwscan firmware.fw                     # static engine, classical sources
//	fwscan -its firmware.fw                # infer ITSs first, then seed top-3
//	fwscan -engine symbolic -its firmware.fw
//	fwscan -j 8 -timeout 1m firmware.fw    # 8 workers, abort after a minute
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"fits"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fwscan: ")
	useITS := flag.Bool("its", false, "infer intermediate taint sources and seed the top-3")
	engineName := flag.String("engine", "static", `engine: "static" (STA) or "symbolic" (Karonte-style)`)
	filter := flag.Bool("filter", true, "filter alerts keyed on system-data fields")
	jobs := flag.Int("j", 0, "worker goroutines for the analysis pipeline (0 = all CPUs)")
	timeout := flag.Duration("timeout", 0, "abort analysis after this duration (0 = no limit)")
	cacheSize := flag.Int64("cache-size", 0, "model cache byte budget (0 = default 1 GiB)")
	noCache := flag.Bool("no-cache", false, "disable the content-addressed model cache")
	verbose := flag.Bool("v", false, "print model-cache diagnostics")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: fwscan [-its] [-engine static|symbolic] [-j N] [-timeout D] [-cache-size N] [-no-cache] [-v] firmware.fw")
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	var engine fits.Engine
	switch *engineName {
	case "static":
		engine = fits.EngineStatic
	case "symbolic":
		engine = fits.EngineSymbolic
	default:
		log.Fatalf("unknown engine %q", *engineName)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	aopts := fits.DefaultOptions()
	aopts.Parallelism = *jobs
	if !*noCache {
		aopts.Cache = fits.NewCache(0, *cacheSize)
	}
	res, err := fits.AnalyzeContext(ctx, raw, aopts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %s %s\n", res.Vendor, res.Product, res.Version)
	if *verbose {
		s := res.Cache.Stats
		fmt.Printf("models: lifted %d, reused %d (cache: %d hits, %d misses, %d evictions, %d bytes)\n",
			res.Cache.Lifted, res.Cache.Reused, s.Hits, s.Misses, s.Evictions, s.Bytes)
	}
	total := 0
	for _, t := range res.Targets {
		if err := ctx.Err(); err != nil {
			log.Fatal(err)
		}
		opts := fits.ScanOptions{Engine: engine, StringFilter: *filter}
		if *useITS {
			for _, c := range t.TopCandidates(3) {
				opts.ITS = append(opts.ITS, c.Entry)
			}
		}
		alerts, err := t.Scan(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d alerts\n", t.Path, len(alerts))
		for _, a := range alerts {
			fmt.Printf("  [%s] %s at %#x (in func %#x, via %s)\n",
				a.Kind, a.Sink, a.Site, a.Func, a.Source)
		}
		total += len(alerts)
	}
	fmt.Printf("\n%d alerts total\n", total)
}
