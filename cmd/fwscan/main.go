// Command fwscan runs taint analysis over one or more firmware images,
// optionally seeding inferred intermediate taint sources.
//
// Usage:
//
//	fwscan firmware.fw                     # static engine, classical sources
//	fwscan -its firmware.fw                # infer ITSs first, then seed top-3
//	fwscan -engine symbolic -its firmware.fw
//	fwscan -j 8 -timeout 1m firmware.fw    # 8 workers, abort after a minute
//	fwscan -j 8 v1.fw v2.fw v3.fw          # batch: one shared worker budget
//
// With several images the batch is analyzed under one corpus scheduler, so
// model building and inference across images share a single worker budget
// and per-image output is printed in argument order, identical to running
// the images one at a time.
//
// All option plumbing is shared with cmd/fits and the fitsd service via
// internal/optbuild, so a flag here and the matching JSON job option mean
// exactly the same thing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"fits"
	"fits/internal/optbuild"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fwscan: ")
	var spec optbuild.Spec
	spec.BindAnalyzeFlags(flag.CommandLine)
	spec.BindScanFlags(flag.CommandLine)
	var cacheCfg optbuild.CacheConfig
	cacheCfg.BindFlags(flag.CommandLine)
	verbose := flag.Bool("v", false, "print model-cache diagnostics")
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("usage: fwscan [-its] [-engine static|symbolic] [-top N] [-j N] [-timeout D] [-cache-size N] [-no-cache] [-v] firmware.fw [more.fw ...]")
	}
	images := make([][]byte, flag.NArg())
	for i, name := range flag.Args() {
		raw, err := os.ReadFile(name)
		if err != nil {
			log.Fatal(err)
		}
		images[i] = raw
	}
	aopts, err := spec.AnalyzeOptions(cacheCfg.New())
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := spec.Context(context.Background())
	defer cancel()
	// One image goes straight through Analyze; a batch shares one scheduler,
	// intern table and cache across images via the corpus entry point.
	var results []*fits.Result
	if len(images) == 1 {
		res, err := fits.AnalyzeContext(ctx, images[0], aopts)
		if err != nil {
			log.Fatal(err)
		}
		results = []*fits.Result{res}
	} else {
		results, err = fits.AnalyzeCorpus(ctx, images, aopts)
		if err != nil {
			log.Fatal(err)
		}
	}
	total := 0
	for i, res := range results {
		if len(results) > 1 {
			fmt.Printf("== %s ==\n", flag.Arg(i))
		}
		fmt.Printf("%s %s %s\n", res.Vendor, res.Product, res.Version)
		if *verbose {
			s := res.Cache.Stats
			fmt.Printf("models: lifted %d, reused %d (cache: %d hits, %d misses, %d evictions, %d bytes)\n",
				res.Cache.Lifted, res.Cache.Reused, s.Hits, s.Misses, s.Evictions, s.Bytes)
		}
		for _, t := range res.Targets {
			opts, err := spec.ScanOptions(t)
			if err != nil {
				log.Fatal(err)
			}
			alerts, err := t.ScanContext(ctx, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n%s: %d alerts\n", t.Path, len(alerts))
			for _, a := range alerts {
				fmt.Printf("  [%s] %s at %#x (in func %#x, via %s)\n",
					a.Kind, a.Sink, a.Site, a.Func, a.Source)
			}
			total += len(alerts)
		}
		if len(results) > 1 && i < len(results)-1 {
			fmt.Println()
		}
	}
	fmt.Printf("\n%d alerts total\n", total)
}
