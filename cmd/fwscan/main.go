// Command fwscan runs taint analysis over a firmware image, optionally
// seeding inferred intermediate taint sources.
//
// Usage:
//
//	fwscan firmware.fw                     # static engine, classical sources
//	fwscan -its firmware.fw                # infer ITSs first, then seed top-3
//	fwscan -engine symbolic -its firmware.fw
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fits"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fwscan: ")
	useITS := flag.Bool("its", false, "infer intermediate taint sources and seed the top-3")
	engineName := flag.String("engine", "static", `engine: "static" (STA) or "symbolic" (Karonte-style)`)
	filter := flag.Bool("filter", true, "filter alerts keyed on system-data fields")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: fwscan [-its] [-engine static|symbolic] firmware.fw")
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	var engine fits.Engine
	switch *engineName {
	case "static":
		engine = fits.EngineStatic
	case "symbolic":
		engine = fits.EngineSymbolic
	default:
		log.Fatalf("unknown engine %q", *engineName)
	}

	res, err := fits.Analyze(raw, fits.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %s %s\n", res.Vendor, res.Product, res.Version)
	total := 0
	for _, t := range res.Targets {
		opts := fits.ScanOptions{Engine: engine, StringFilter: *filter}
		if *useITS {
			for _, c := range t.TopCandidates(3) {
				opts.ITS = append(opts.ITS, c.Entry)
			}
		}
		alerts, err := t.Scan(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d alerts\n", t.Path, len(alerts))
		for _, a := range alerts {
			fmt.Printf("  [%s] %s at %#x (in func %#x, via %s)\n",
				a.Kind, a.Sink, a.Site, a.Func, a.Source)
		}
		total += len(alerts)
	}
	fmt.Printf("\n%d alerts total\n", total)
}
