package fits

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"fits/internal/firmware"
	"fits/internal/synth"
)

func xcorpusFiles(t testing.TB) []CorpusFile {
	t.Helper()
	x, err := synth.GenerateXCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	files := make([]CorpusFile, len(x.Files))
	for i, f := range x.Files {
		files[i] = CorpusFile{Path: f.Path, Data: f.Data}
	}
	return files
}

func xscanJSON(t *testing.T, files []CorpusFile, opts XScanOptions) []byte {
	t.Helper()
	rep, err := XScan(files, opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestXScanDeterministicJSON pins the corpus report's serialized bytes
// across worker counts and cache temperature — the property `fits xscan`
// output inherits.
func TestXScanDeterministicJSON(t *testing.T) {
	files := xcorpusFiles(t)
	base := xscanJSON(t, files, XScanOptions{Parallelism: 1})
	for _, par := range []int{2, 4, 8} {
		if got := xscanJSON(t, files, XScanOptions{Parallelism: par}); !bytes.Equal(base, got) {
			t.Fatalf("parallelism %d output differs from 1", par)
		}
	}
	cache := NewCache(0, 0)
	cold := xscanJSON(t, files, XScanOptions{Parallelism: 4, Cache: cache})
	warm := xscanJSON(t, files, XScanOptions{Parallelism: 4, Cache: cache})
	if !bytes.Equal(cold, warm) {
		t.Fatal("cold and warm cache outputs differ")
	}
	if !bytes.Equal(base, cold) {
		t.Fatal("cached output differs from uncached")
	}
}

// TestXScanSharedScheduler runs the corpus under an externally shared worker
// budget, the way fitsd jobs do, and requires identical output.
func TestXScanSharedScheduler(t *testing.T) {
	files := xcorpusFiles(t)
	base := xscanJSON(t, files, XScanOptions{Parallelism: 1})
	sched := NewScheduler(3)
	got := xscanJSON(t, files, XScanOptions{Parallelism: 4, Scheduler: sched})
	if !bytes.Equal(base, got) {
		t.Fatal("shared-scheduler output differs")
	}
}

func TestXScanModeValidation(t *testing.T) {
	if _, err := XScan(nil, XScanOptions{Mode: "bogus"}); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestPackCorpusRoundTrip(t *testing.T) {
	files := xcorpusFiles(t)
	packed := PackCorpus(files)
	img, err := firmware.Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Files) != len(files) {
		t.Fatalf("round trip: %d files, want %d", len(img.Files), len(files))
	}
	for i, f := range img.Files {
		if f.Path != files[i].Path || !bytes.Equal(f.Data, files[i].Data) {
			t.Fatalf("file %s corrupted in transport", files[i].Path)
		}
	}
	// The packed corpus feeds the same analysis server-side.
	rep1, err := XScan(files, XScanOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	fromImg := make([]CorpusFile, len(img.Files))
	for i, f := range img.Files {
		fromImg[i] = CorpusFile{Path: f.Path, Data: f.Data}
	}
	rep2, err := XScanContext(context.Background(), fromImg, XScanOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(rep1)
	b2, _ := json.Marshal(rep2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("packed-corpus analysis differs from direct analysis")
	}
}
