package client

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fits/internal/optbuild"
	"fits/internal/server"
)

// testPolicy returns a retry policy whose sleeps are recorded instead of
// waited out, and whose jitter is the identity so delays are exact.
func testPolicy(attempts int, slept *[]time.Duration) RetryPolicy {
	p := RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    800 * time.Millisecond,
	}
	p.jitter = func(d time.Duration) time.Duration { return d }
	p.sleep = func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return ctx.Err()
	}
	return p
}

func specWithTopK(k int) optbuild.Spec {
	s := optbuild.Spec{TopK: k}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

// TestRetryHonorsRetryAfter: a 429 with Retry-After must be retried
// after exactly the advertised delay, not the exponential schedule.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"job queue is full"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j000001","location":"/v1/jobs/j000001","state":"queued"}`)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, nil).WithRetry(testPolicy(5, &slept))
	resp, err := c.Submit(context.Background(), []byte("fw"), optbuild.Spec{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.ID != "j000001" {
		t.Fatalf("ID = %q, want j000001", resp.ID)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	want := []time.Duration{2 * time.Second, 2 * time.Second}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
}

// TestRetryExhaustionPreservesErrQueueFull: when every attempt is
// refused, the final error must still be the sentinel callers branch on.
func TestRetryExhaustionPreservesErrQueueFull(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"job queue is full"}`)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, nil).WithRetry(testPolicy(3, &slept))
	_, err := c.Submit(context.Background(), []byte("fw"), optbuild.Spec{})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (3 attempts)", len(slept))
	}
}

// TestNoRetryByDefault: a client without WithRetry performs exactly one
// attempt, so existing backpressure handling (immediate ErrQueueFull)
// keeps working.
func TestNoRetryByDefault(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"job queue is full"}`)
	}))
	defer ts.Close()

	c := New(ts.URL, nil)
	_, err := c.Submit(context.Background(), []byte("fw"), optbuild.Spec{})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

// TestBackoffGrowthAndCap: without a Retry-After hint the delays double
// from BaseDelay and clamp at MaxDelay.
func TestBackoffGrowthAndCap(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"upstream flaked"}`)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, nil).WithRetry(testPolicy(6, &slept))
	_, err := c.Job(context.Background(), "j000001")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond,
		800 * time.Millisecond, // capped
	}
	if len(slept) != len(want) {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep[%d] = %s, want %s (all: %v)", i, slept[i], want[i], slept)
		}
	}
}

// TestTransientThenSuccess: one 503 then a 200 — the call recovers
// transparently.
func TestTransientThenSuccess(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"warming up"}`)
			return
		}
		json.NewEncoder(w).Encode(server.JobStatus{ID: "j000007", State: server.StateDone})
	}))
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, nil).WithRetry(testPolicy(3, &slept))
	st, err := c.Job(context.Background(), "j000007")
	if err != nil {
		t.Fatalf("Job: %v", err)
	}
	if st.State != server.StateDone {
		t.Fatalf("state = %q, want done", st.State)
	}
}

// TestIdempotentSubmitRecovery: the server accepts the job but the
// response never reaches the client (connection killed mid-reply). The
// retry layer must find the accepted job by content hash instead of
// posting the same firmware again.
func TestIdempotentSubmitRecovery(t *testing.T) {
	firmware := []byte("the firmware bytes")
	sum := sha256.Sum256(firmware)
	sha := hex.EncodeToString(sum[:])
	spec := specWithTopK(7)

	var posts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			posts.Add(1)
			// Accept the job server-side, then kill the connection so the
			// client sees a transport error instead of the 202.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("response writer cannot hijack")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
		case r.URL.Path == "/v1/jobs" && r.URL.Query().Get("sha") == sha:
			json.NewEncoder(w).Encode(server.ListResponse{Jobs: []server.JobStatus{
				{ID: "j000042", State: server.StateQueued, SHA256: sha, Options: spec},
			}})
		default:
			t.Errorf("unexpected request %s %s", r.Method, r.URL)
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, nil).WithRetry(testPolicy(2, &slept))
	resp, err := c.Submit(context.Background(), firmware, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.ID != "j000042" {
		t.Fatalf("recovered ID = %q, want j000042", resp.ID)
	}
	if resp.Location != "/v1/jobs/j000042" {
		t.Fatalf("Location = %q", resp.Location)
	}
	// Both configured attempts fail at transport level; recovery then
	// finds the job without a third POST.
	if got := posts.Load(); got != 2 {
		t.Fatalf("POST attempts = %d, want 2", got)
	}
}

// TestIdempotentRecoveryRejectsOtherOptions: a job with the same bytes
// but a different spec is NOT ours; recovery must refuse it and surface
// the transport error.
func TestIdempotentRecoveryRejectsOtherOptions(t *testing.T) {
	firmware := []byte("the firmware bytes")
	sum := sha256.Sum256(firmware)
	sha := hex.EncodeToString(sum[:])

	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			hj := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		json.NewEncoder(w).Encode(server.ListResponse{Jobs: []server.JobStatus{
			{ID: "j000001", State: server.StateQueued, SHA256: sha, Options: specWithTopK(3)},
		}})
	}))
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, nil).WithRetry(testPolicy(2, &slept))
	_, err := c.Submit(context.Background(), firmware, specWithTopK(9))
	if err == nil {
		t.Fatal("Submit succeeded; want the transport error surfaced")
	}
}

// TestCallTimeoutBoundsAttempt: a hung server must not hang the call
// when the policy carries a per-attempt deadline.
func TestCallTimeoutBoundsAttempt(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	// Unblock the handler before Close waits on it (defers run LIFO).
	defer ts.Close()
	defer close(block)

	c := New(ts.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 1, CallTimeout: 50 * time.Millisecond})
	start := time.Now()
	_, err := c.Job(context.Background(), "j000001")
	if err == nil {
		t.Fatal("Job succeeded against a hung server")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("call took %s; per-attempt timeout did not apply", elapsed)
	}
}

// TestHealthSingleAttempt: /healthz must not retry a 503 — "draining" is
// the answer, not a transient.
func TestHealthSingleAttempt(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(server.HealthResponse{Status: "draining", Draining: true})
	}))
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, nil).WithRetry(testPolicy(5, &slept))
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if !h.Draining {
		t.Fatal("Draining = false, want true")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

// TestDiffPairHashMatchesServer pins the client's diff pair identity to
// the server's: sha256(sha256(old) || sha256(new)).
func TestDiffPairHashMatchesServer(t *testing.T) {
	oldFw, newFw := []byte("v1"), []byte("v2")
	oldSum := sha256.Sum256(oldFw)
	newSum := sha256.Sum256(newFw)
	pair := sha256.Sum256(append(oldSum[:], newSum[:]...))
	wantSHA := hex.EncodeToString(pair[:])

	var gotSHA atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			hj := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		gotSHA.Store(r.URL.Query().Get("sha"))
		json.NewEncoder(w).Encode(server.ListResponse{})
	}))
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, nil).WithRetry(testPolicy(2, &slept))
	if _, err := c.SubmitDiff(context.Background(), oldFw, newFw, optbuild.Spec{}); err == nil {
		t.Fatal("SubmitDiff succeeded; want transport error (no recovery match)")
	}
	if got, _ := gotSHA.Load().(string); got != wantSHA {
		t.Fatalf("recovery queried sha=%q, want %q", got, wantSHA)
	}
}
