// Package client is the typed Go client of the fitsd analysis service. It
// speaks the job API of fits/internal/server: submit firmware, poll or
// wait for completion, fetch the byte-stable result JSON, cancel, and
// scrape health and metrics. cmd/fitsctl and the serve-smoke CI gate are
// built on it.
//
// With a RetryPolicy attached (WithRetry), every call survives transient
// failures: transport errors and 429/502/503/504 responses are retried
// with jittered exponential backoff, the server's Retry-After hint is
// honored, each attempt can carry its own deadline, and a submission
// interrupted by a transport error is recovered by its content hash
// rather than re-posted — one submission never becomes two jobs.
package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"time"

	"fits/internal/optbuild"
	"fits/internal/server"
)

// ErrQueueFull is returned by Submit when the server applied backpressure
// (HTTP 429); callers should back off and retry.
var ErrQueueFull = errors.New("fitsd: job queue is full")

// APIError is any other non-2xx response.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fitsd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// RetryPolicy controls how the client survives transient failures. The
// zero value performs exactly one attempt per call — no retries, no
// per-attempt deadline — which is also what New configures.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call; values <= 1
	// disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// retry up to MaxDelay, then a jitter in [d/2, d] spreads concurrent
	// clients apart. Defaults (when retrying at all): 200ms and 5s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// CallTimeout bounds each individual attempt, but only when the
	// caller's context carries no deadline of its own; 0 leaves attempts
	// unbounded.
	CallTimeout time.Duration

	// sleep and jitter are injection points so tests can observe backoff
	// decisions without waiting them out.
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func(d time.Duration) time.Duration
}

// DefaultRetryPolicy is a production-reasonable policy: 5 attempts,
// 200ms doubling to a 5s cap, 30s per attempt.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   200 * time.Millisecond,
		MaxDelay:    5 * time.Second,
		CallTimeout: 30 * time.Second,
	}
}

// Client talks to one fitsd instance.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// New returns a client for the service at base (e.g.
// "http://127.0.0.1:8417"). hc may be nil for http.DefaultClient. The
// client does not retry; attach a policy with WithRetry.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// WithRetry returns a copy of the client that applies the policy to
// every call.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cp := *c
	cp.retry = p
	return &cp
}

// retryableStatus reports whether a response status is worth retrying:
// backpressure and the transient gateway errors.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// attempt executes one HTTP exchange: per-attempt deadline (when the
// caller brought none), full body read, and the parsed Retry-After hint
// of a refusal.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, contentType string) (status int, respBody []byte, retryAfter time.Duration, err error) {
	actx := ctx
	if c.retry.CallTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(ctx, c.retry.CallTimeout)
			defer cancel()
		}
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, 0, err
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, b, retryAfter, nil
}

// backoffDelay picks the wait before retry number retries (0-based): the
// server's Retry-After verbatim when given, else jittered exponential.
func (c *Client) backoffDelay(retries int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	base := c.retry.BaseDelay
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	maxd := c.retry.MaxDelay
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	d := base
	for i := 0; i < retries && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	if c.retry.jitter != nil {
		return c.retry.jitter(d)
	}
	// Jitter into [d/2, d] so a burst of refused clients does not retry
	// in lockstep.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleepRetry waits out one backoff, abandoning it if ctx dies first.
func (c *Client) sleepRetry(ctx context.Context, retries int, retryAfter time.Duration) error {
	d := c.backoffDelay(retries, retryAfter)
	if c.retry.sleep != nil {
		return c.retry.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// call executes one API exchange under the retry policy and returns the
// final status and body; the caller classifies non-2xx. Transport errors
// and retryable statuses are retried until the policy is exhausted, then
// surfaced as-is (so a final 429 still maps to ErrQueueFull).
func (c *Client) call(ctx context.Context, method, path string, body []byte, contentType string) (int, []byte, error) {
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		status, respBody, retryAfter, err := c.attempt(ctx, method, path, body, contentType)
		if err == nil && !retryableStatus(status) {
			return status, respBody, nil
		}
		if err != nil && ctx.Err() != nil {
			return 0, nil, err
		}
		if attempt >= attempts {
			if err != nil {
				return 0, nil, err
			}
			return status, respBody, nil
		}
		if serr := c.sleepRetry(ctx, attempt-1, retryAfter); serr != nil {
			return 0, nil, serr
		}
	}
}

// Submit posts firmware bytes with the given options and returns the
// accepted job. A full queue surfaces as ErrQueueFull.
func (c *Client) Submit(ctx context.Context, firmware []byte, opts optbuild.Spec) (*server.SubmitResponse, error) {
	body, err := json.Marshal(server.SubmitRequest{Firmware: firmware, Options: opts})
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(firmware)
	return c.submitTo(ctx, "/v1/jobs", body, hex.EncodeToString(sum[:]), opts)
}

// SubmitPath asks the server to read the firmware from a path on *its*
// filesystem — the cheap route for co-located callers. The client never
// sees the bytes, so no content hash is available for idempotent
// recovery of an interrupted submission.
func (c *Client) SubmitPath(ctx context.Context, path string, opts optbuild.Spec) (*server.SubmitResponse, error) {
	body, err := json.Marshal(server.SubmitRequest{Path: path, Options: opts})
	if err != nil {
		return nil, err
	}
	return c.submitTo(ctx, "/v1/jobs", body, "", opts)
}

// SubmitCorpus posts a packed firmware corpus (fits.PackCorpus bytes) for
// a cross-binary taint scan and returns the accepted job; its result is the
// CorpusReport JSON of fits.XScan.
func (c *Client) SubmitCorpus(ctx context.Context, packed []byte, opts optbuild.Spec) (*server.SubmitResponse, error) {
	body, err := json.Marshal(server.CorpusSubmitRequest{Corpus: packed, Options: opts})
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(packed)
	return c.submitTo(ctx, "/v1/corpora", body, hex.EncodeToString(sum[:]), opts)
}

// SubmitCorpusPath asks the server to read a packed corpus from a path on
// its own filesystem.
func (c *Client) SubmitCorpusPath(ctx context.Context, path string, opts optbuild.Spec) (*server.SubmitResponse, error) {
	body, err := json.Marshal(server.CorpusSubmitRequest{Path: path, Options: opts})
	if err != nil {
		return nil, err
	}
	return c.submitTo(ctx, "/v1/corpora", body, "", opts)
}

// SubmitDiff posts two firmware versions for an evolution diff and returns
// the accepted job; its result is the server's DiffJobResult JSON.
func (c *Client) SubmitDiff(ctx context.Context, oldFw, newFw []byte, opts optbuild.Spec) (*server.SubmitResponse, error) {
	body, err := json.Marshal(server.DiffSubmitRequest{OldFirmware: oldFw, NewFirmware: newFw, Options: opts})
	if err != nil {
		return nil, err
	}
	// Mirror the server's pair identity: both sides hashed separately,
	// then the concatenated digests hashed again.
	oldSum := sha256.Sum256(oldFw)
	newSum := sha256.Sum256(newFw)
	pair := sha256.Sum256(append(oldSum[:], newSum[:]...))
	return c.submitTo(ctx, "/v1/diffs", body, hex.EncodeToString(pair[:]), opts)
}

// SubmitDiffPaths asks the server to read both versions from paths on its
// own filesystem.
func (c *Client) SubmitDiffPaths(ctx context.Context, oldPath, newPath string, opts optbuild.Spec) (*server.SubmitResponse, error) {
	body, err := json.Marshal(server.DiffSubmitRequest{OldPath: oldPath, NewPath: newPath, Options: opts})
	if err != nil {
		return nil, err
	}
	return c.submitTo(ctx, "/v1/diffs", body, "", opts)
}

// submitTo posts a submission. A POST whose response is lost may still
// have been accepted by the server, so a plain retry could run the same
// firmware twice; instead, when a transport error interrupts a
// hash-carrying submission, the client looks the job up by content hash
// and adopts the server's copy if one matches.
func (c *Client) submitTo(ctx context.Context, path string, body []byte, sha string, opts optbuild.Spec) (*server.SubmitResponse, error) {
	status, respBody, err := c.call(ctx, http.MethodPost, path, body, "application/json")
	if err != nil {
		if sha != "" && ctx.Err() == nil && c.retry.MaxAttempts > 1 {
			if resp, rerr := c.recoverSubmitted(ctx, sha, opts); rerr == nil && resp != nil {
				return resp, nil
			}
		}
		return nil, err
	}
	if status < 200 || status > 299 {
		return nil, asAPIError(status, respBody)
	}
	var resp server.SubmitResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// recoverSubmitted checks whether a submission that died mid-flight was
// in fact accepted: it lists the server's jobs for the content hash and
// adopts the newest one whose options match what we posted. A nil, nil
// return means no match — the caller surfaces the original error.
func (c *Client) recoverSubmitted(ctx context.Context, sha string, opts optbuild.Spec) (*server.SubmitResponse, error) {
	norm := opts
	if err := norm.Normalize(); err != nil {
		return nil, err
	}
	jobs, err := c.JobsBySHA(ctx, sha)
	if err != nil {
		return nil, err
	}
	for i := len(jobs) - 1; i >= 0; i-- {
		st := jobs[i]
		if reflect.DeepEqual(st.Options, norm) {
			return &server.SubmitResponse{
				ID: st.ID, Location: "/v1/jobs/" + st.ID, State: st.State,
			}, nil
		}
	}
	return nil, nil
}

// Job fetches one job's status, result included once done.
func (c *Client) Job(ctx context.Context, id string) (*server.JobStatus, error) {
	var st server.JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every retained job, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]server.JobStatus, error) {
	var resp server.ListResponse
	if err := c.getJSON(ctx, "/v1/jobs", &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// JobsBySHA lists the retained jobs whose content hash is sha — for a
// diff job, the hash of both versions' digests. This is the idempotency
// index: it answers "did my earlier submission of these bytes land?".
func (c *Client) JobsBySHA(ctx context.Context, sha string) ([]server.JobStatus, error) {
	var resp server.ListResponse
	if err := c.getJSON(ctx, "/v1/jobs?sha="+url.QueryEscape(sha), &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Result fetches the raw result JSON of a done job, byte-for-byte as the
// server stored it.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	status, b, err := c.call(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, "")
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, asAPIError(status, b)
	}
	return b, nil
}

// Cancel aborts a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (*server.JobStatus, error) {
	status, b, err := c.call(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, "")
	if err != nil {
		return nil, err
	}
	if status < 200 || status > 299 {
		return nil, asAPIError(status, b)
	}
	var st server.JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls a job every interval (default 100ms) until it is terminal or
// ctx expires, and returns the final status.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (*server.JobStatus, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if server.TerminalState(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Health reads /healthz; a draining server returns its status with a nil
// error only when the HTTP exchange itself succeeded. Health is a
// deliberate single attempt — a 503 here *is* the answer ("draining"),
// not a transient to retry through.
func (c *Client) Health(ctx context.Context) (*server.HealthResponse, error) {
	_, b, _, err := c.attempt(ctx, http.MethodGet, "/healthz", nil, "")
	if err != nil {
		return nil, err
	}
	var h server.HealthResponse
	if err := json.Unmarshal(b, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Metrics scrapes /metrics and returns the Prometheus text body.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	status, b, err := c.call(ctx, http.MethodGet, "/metrics", nil, "")
	if err != nil {
		return "", err
	}
	if status != http.StatusOK {
		return "", asAPIError(status, b)
	}
	return string(b), nil
}

// getJSON executes a retried GET expecting a 2xx JSON body decoded into
// out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	status, b, err := c.call(ctx, http.MethodGet, path, nil, "")
	if err != nil {
		return err
	}
	if status < 200 || status > 299 {
		return asAPIError(status, b)
	}
	return json.Unmarshal(b, out)
}

func asAPIError(code int, body []byte) error {
	if code == http.StatusTooManyRequests {
		return ErrQueueFull
	}
	var e server.ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &APIError{StatusCode: code, Message: e.Error}
	}
	return &APIError{StatusCode: code, Message: strings.TrimSpace(string(body))}
}
