// Package client is the typed Go client of the fitsd analysis service. It
// speaks the job API of fits/internal/server: submit firmware, poll or
// wait for completion, fetch the byte-stable result JSON, cancel, and
// scrape health and metrics. cmd/fitsctl and the serve-smoke CI gate are
// built on it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"fits/internal/optbuild"
	"fits/internal/server"
)

// ErrQueueFull is returned by Submit when the server applied backpressure
// (HTTP 429); callers should back off and retry.
var ErrQueueFull = errors.New("fitsd: job queue is full")

// APIError is any other non-2xx response.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fitsd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Client talks to one fitsd instance.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the service at base (e.g.
// "http://127.0.0.1:8417"). hc may be nil for http.DefaultClient.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Submit posts firmware bytes with the given options and returns the
// accepted job. A full queue surfaces as ErrQueueFull.
func (c *Client) Submit(ctx context.Context, firmware []byte, opts optbuild.Spec) (*server.SubmitResponse, error) {
	body, err := json.Marshal(server.SubmitRequest{Firmware: firmware, Options: opts})
	if err != nil {
		return nil, err
	}
	return c.submit(ctx, body)
}

// SubmitPath asks the server to read the firmware from a path on *its*
// filesystem — the cheap route for co-located callers.
func (c *Client) SubmitPath(ctx context.Context, path string, opts optbuild.Spec) (*server.SubmitResponse, error) {
	body, err := json.Marshal(server.SubmitRequest{Path: path, Options: opts})
	if err != nil {
		return nil, err
	}
	return c.submit(ctx, body)
}

// SubmitDiff posts two firmware versions for an evolution diff and returns
// the accepted job; its result is the server's DiffJobResult JSON.
func (c *Client) SubmitDiff(ctx context.Context, oldFw, newFw []byte, opts optbuild.Spec) (*server.SubmitResponse, error) {
	body, err := json.Marshal(server.DiffSubmitRequest{OldFirmware: oldFw, NewFirmware: newFw, Options: opts})
	if err != nil {
		return nil, err
	}
	return c.submitTo(ctx, "/v1/diffs", body)
}

// SubmitDiffPaths asks the server to read both versions from paths on its
// own filesystem.
func (c *Client) SubmitDiffPaths(ctx context.Context, oldPath, newPath string, opts optbuild.Spec) (*server.SubmitResponse, error) {
	body, err := json.Marshal(server.DiffSubmitRequest{OldPath: oldPath, NewPath: newPath, Options: opts})
	if err != nil {
		return nil, err
	}
	return c.submitTo(ctx, "/v1/diffs", body)
}

func (c *Client) submit(ctx context.Context, body []byte) (*server.SubmitResponse, error) {
	return c.submitTo(ctx, "/v1/jobs", body)
}

func (c *Client) submitTo(ctx context.Context, path string, body []byte) (*server.SubmitResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp server.SubmitResponse
	if err := c.do(req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Job fetches one job's status, result included once done.
func (c *Client) Job(ctx context.Context, id string) (*server.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	var st server.JobStatus
	if err := c.do(req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every retained job, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]server.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs", nil)
	if err != nil {
		return nil, err
	}
	var resp server.ListResponse
	if err := c.do(req, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Result fetches the raw result JSON of a done job, byte-for-byte as the
// server stored it.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, asAPIError(resp.StatusCode, b)
	}
	return b, nil
}

// Cancel aborts a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (*server.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	var st server.JobStatus
	if err := c.do(req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls a job every interval (default 100ms) until it is terminal or
// ctx expires, and returns the final status.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (*server.JobStatus, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if server.TerminalState(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Health reads /healthz; a draining server returns its status with a nil
// error only when the HTTP exchange itself succeeded.
func (c *Client) Health(ctx context.Context) (*server.HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h server.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Metrics scrapes /metrics and returns the Prometheus text body.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", asAPIError(resp.StatusCode, b)
	}
	return string(b), nil
}

// do executes a request expecting a 2xx JSON body decoded into out.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return asAPIError(resp.StatusCode, b)
	}
	return json.Unmarshal(b, out)
}

func asAPIError(code int, body []byte) error {
	if code == http.StatusTooManyRequests {
		return ErrQueueFull
	}
	var e server.ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &APIError{StatusCode: code, Message: e.Error}
	}
	return &APIError{StatusCode: code, Message: strings.TrimSpace(string(body))}
}
