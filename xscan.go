package fits

import (
	"context"

	"fits/internal/corpustaint"
	"fits/internal/firmware"
)

// CorpusFile is one file of an unpacked firmware tree handed to XScan:
// binaries, front-end artifacts and configuration alike, with
// slash-separated paths relative to the filesystem root ("bin/httpd",
// "www/index.html").
type CorpusFile struct {
	Path string
	Data []byte
}

// CorpusReport is the deterministic outcome of a corpus scan: per-binary
// summaries, the front-end keyword set, the tainted channel endpoints the
// fixpoint discovered, and alerts with full cross-binary provenance.
type CorpusReport = corpustaint.Report

// CorpusAlert is one corpus finding; see CorpusReport.Alerts.
type CorpusAlert = corpustaint.Alert

// XScanOptions configures a corpus scan.
type XScanOptions struct {
	// Mode seeds the per-binary analyses: "cts" (classical sources only),
	// "its" (plus each binary's top-ranked inferred intermediate sources) or
	// "cross" (plus front-end keyword seeding and the cross-binary channel
	// fixpoint). Empty means "cross".
	Mode string
	// TopK bounds inferred sources per binary in "its" mode (0 = 3).
	TopK int
	// StringFilter drops alerts keyed on system-data fields.
	StringFilter bool
	// NoAlias disables the bounded points-to pass; NoPathcheck disables the
	// path-feasibility pass. Both precision passes are on by default.
	NoAlias     bool
	NoPathcheck bool
	// Parallelism bounds worker goroutines (0 = all CPUs); the report is
	// byte-identical at every setting.
	Parallelism int
	// Cache memoizes models, rankings and per-round scan results across
	// calls; reports are byte-identical with and without one.
	Cache *Cache
	// Scheduler, when non-nil, draws every fan-out from a shared budget.
	Scheduler *Scheduler
	// Stages accumulates per-stage costs; nil disables.
	Stages *StageTimer
	// Progress, when non-nil, receives coarse progress lines (load, fixpoint
	// rounds, completion); long-running services surface them per job.
	Progress func(string)
}

// XScan analyzes an unpacked firmware corpus as one system: front-end
// artifacts name the request parameters, border binaries fetching those
// parameters become seeded, and taint crosses binaries over nvram-style
// store, environment and spawned-helper channels until a fixpoint.
func XScan(files []CorpusFile, opts XScanOptions) (*CorpusReport, error) {
	return XScanContext(context.Background(), files, opts)
}

// XScanContext is XScan with cancellation: the context is checked per
// binary inside every fixpoint round, so scanning a large corpus can be
// aborted mid-flight.
func XScanContext(ctx context.Context, files []CorpusFile, opts XScanOptions) (*CorpusReport, error) {
	mode, err := corpustaint.ParseMode(opts.Mode)
	if err != nil {
		return nil, err
	}
	fw := make([]firmware.File, len(files))
	for i, f := range files {
		fw[i] = firmware.File{Path: f.Path, Data: f.Data}
	}
	return corpustaint.Run(ctx, fw, corpustaint.Options{
		Mode:         mode,
		TopK:         opts.TopK,
		StringFilter: opts.StringFilter,
		NoAlias:      opts.NoAlias,
		NoPathcheck:  opts.NoPathcheck,
		Parallelism:  opts.Parallelism,
		Cache:        opts.Cache,
		Scheduler:    opts.Scheduler,
		Stages:       opts.Stages,
		Progress:     opts.Progress,
	})
}

// PackCorpus wraps a corpus file set in the firmware container format for
// transport (fitsctl ships packed corpora to fitsd's /v1/corpora). The
// packing is unencrypted and deterministic; Unpack on the service side
// recovers the identical file set.
func PackCorpus(files []CorpusFile) []byte {
	img := &firmware.Image{Vendor: "corpus", Product: "tree", Files: make([]firmware.File, len(files))}
	for i, f := range files {
		img.Files[i] = firmware.File{Path: f.Path, Data: f.Data}
	}
	return img.Pack(firmware.PackOptions{Scheme: firmware.SchemeNone})
}
