package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fits/internal/bfv"
)

// mkPoints builds two well-separated groups: "complex" memory-operation-like
// vectors and "simple" arithmetic helpers.
func mkPoints() []Point {
	var pts []Point
	id := uint32(0x1000)
	add := func(v bfv.Vector, n int) {
		for i := 0; i < n; i++ {
			w := v
			w[bfv.FBasicBlocks] += float64(i % 3) // slight in-group variation
			pts = append(pts, Point{Entry: id, Vec: w})
			id += 0x10
		}
	}
	add(bfv.Vector{15, 1, 3, 3, 4, 6, 1, 1, 1, 1, 3}, 6) // complex group
	add(bfv.Vector{2, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0}, 8)  // simple group
	return pts
}

func TestDBSCANSeparatesGroups(t *testing.T) {
	classes := DBSCAN(mkPoints(), DefaultParams)
	var real []Class
	for _, c := range classes {
		if !c.Noise {
			real = append(real, c)
		}
	}
	if len(real) < 2 {
		t.Fatalf("classes = %d, want >= 2", len(real))
	}
	// No class may mix the two groups (complex members have anchors > 0).
	for _, c := range real {
		anchored := 0
		for _, p := range c.Members {
			if p.Vec[bfv.FAnchorCalls] > 0 {
				anchored++
			}
		}
		if anchored != 0 && anchored != len(c.Members) {
			t.Errorf("mixed class: %d/%d anchored", anchored, len(c.Members))
		}
	}
}

func TestDBSCANAllPointsAccounted(t *testing.T) {
	pts := mkPoints()
	classes := DBSCAN(pts, DefaultParams)
	total := 0
	seen := map[uint32]bool{}
	for _, c := range classes {
		for _, p := range c.Members {
			if seen[p.Entry] {
				t.Errorf("point %#x in two classes", p.Entry)
			}
			seen[p.Entry] = true
			total++
		}
	}
	if total != len(pts) {
		t.Errorf("clustered %d of %d points", total, len(pts))
	}
}

func TestNoisePointsBecomeSingletons(t *testing.T) {
	pts := mkPoints()
	// An extreme outlier becomes noise.
	pts = append(pts, Point{Entry: 0x9999, Vec: bfv.Vector{500, 1, 400, 4, 90, 99, 1, 1, 1, 1, 50}})
	classes := DBSCAN(pts, DefaultParams)
	var noise int
	for _, c := range classes {
		if c.Noise {
			noise++
			if len(c.Members) != 1 {
				t.Errorf("noise class size = %d", len(c.Members))
			}
		}
	}
	if noise == 0 {
		t.Error("no noise singletons produced")
	}
}

func TestComplexityFilterKeepsComplexClass(t *testing.T) {
	pts := mkPoints()
	cands := Candidates(pts, DefaultParams)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	byEntry := map[uint32]bfv.Vector{}
	for _, p := range pts {
		byEntry[p.Entry] = p.Vec
	}
	for _, e := range cands {
		if byEntry[e][bfv.FAnchorCalls] == 0 {
			t.Errorf("simple function %#x survived the complexity filter", e)
		}
	}
	// All complex-group members survive.
	kept := map[uint32]bool{}
	for _, e := range cands {
		kept[e] = true
	}
	for _, p := range pts {
		if p.Vec[bfv.FAnchorCalls] > 0 && !kept[p.Entry] {
			t.Errorf("complex function %#x filtered out", p.Entry)
		}
	}
}

func TestComplexityEquationNormalized(t *testing.T) {
	pts := []Point{
		{Entry: 1, Vec: bfv.Vector{10, 0, 10, 0, 10, 10, 0, 0, 0, 0, 0}},
		{Entry: 2, Vec: bfv.Vector{5, 0, 5, 0, 5, 5, 0, 0, 0, 0, 0}},
	}
	classes := []Class{{Members: pts[:1]}, {Members: pts[1:]}}
	avg := Complexities(classes, pts)
	// First class: all four dims at max -> 4.0; second: all at half -> 2.0.
	if math.Abs(classes[0].Complexity-4) > 1e-9 || math.Abs(classes[1].Complexity-2) > 1e-9 {
		t.Errorf("complexities = %v %v", classes[0].Complexity, classes[1].Complexity)
	}
	if math.Abs(avg-3) > 1e-9 {
		t.Errorf("avg = %v", avg)
	}
}

func TestCandidatesEmptyInput(t *testing.T) {
	if got := Candidates(nil, DefaultParams); got != nil {
		t.Errorf("got %v", got)
	}
}

func TestStandardize(t *testing.T) {
	vecs := []bfv.Vector{{2, 0, 4}, {4, 0, 8}}
	out := Standardize(vecs)
	// Constant dimension stays zero; others become +-1.
	if out[0][1] != 0 || out[1][1] != 0 {
		t.Error("constant dim not zeroed")
	}
	if math.Abs(out[0][0]+1) > 1e-9 || math.Abs(out[1][0]-1) > 1e-9 {
		t.Errorf("standardize = %v", out)
	}
	if Standardize(nil) != nil {
		t.Error("nil input should yield nil")
	}
}

func TestNormalize(t *testing.T) {
	vecs := []bfv.Vector{{2, 10}, {4, 5}}
	out := Normalize(vecs)
	if out[0][0] != 0.5 || out[1][0] != 1 || out[0][1] != 1 || out[1][1] != 0.5 {
		t.Errorf("normalize = %v", out)
	}
}

func TestPCAVarianceOrdering(t *testing.T) {
	// Points vary strongly along dim 0, weakly along dim 5.
	r := rand.New(rand.NewSource(1))
	var vecs []bfv.Vector
	for i := 0; i < 40; i++ {
		var v bfv.Vector
		v[0] = r.Float64() * 100
		v[5] = r.Float64()
		vecs = append(vecs, v)
	}
	out := PCA(vecs, 2)
	if len(out) != len(vecs) {
		t.Fatalf("len = %d", len(out))
	}
	var var0, var1 float64
	for _, v := range out {
		var0 += v[0] * v[0]
		var1 += v[1] * v[1]
	}
	if var0 <= var1 {
		t.Errorf("first component variance %g <= second %g", var0, var1)
	}
	// Trailing dims zero.
	for _, v := range out {
		for d := 2; d < bfv.Dim; d++ {
			if v[d] != 0 {
				t.Fatalf("dim %d not zero", d)
			}
		}
	}
	if PCA(nil, 2) != nil || PCA(vecs, 0) != nil {
		t.Error("degenerate inputs should yield nil")
	}
}

// Property: DBSCAN is a partition for random inputs and Candidates is a
// subset of the input entries.
func TestQuickPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			var v bfv.Vector
			for d := 0; d < bfv.Dim; d++ {
				v[d] = float64(r.Intn(20))
			}
			pts[i] = Point{Entry: uint32(i + 1), Vec: v}
		}
		classes := DBSCAN(pts, DefaultParams)
		seen := map[uint32]bool{}
		for _, c := range classes {
			for _, p := range c.Members {
				if seen[p.Entry] {
					return false
				}
				seen[p.Entry] = true
			}
		}
		if len(seen) != n {
			return false
		}
		for _, e := range Candidates(pts, DefaultParams) {
			if !seen[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
