package cluster

import (
	"math"

	"fits/internal/bfv"
)

// The functions below implement the alternative strategies the paper
// evaluates in RQ4 as replacements for the clustering stage: principal
// component analysis, z-score standardization and max normalization applied
// to the feature vectors before direct scoring.

// Standardize z-scores every dimension across the set (zero mean, unit
// variance). Dimensions with zero variance become zero.
func Standardize(vecs []bfv.Vector) []bfv.Vector {
	n := len(vecs)
	if n == 0 {
		return nil
	}
	var mean, std [bfv.Dim]float64
	for _, v := range vecs {
		for d := 0; d < bfv.Dim; d++ {
			mean[d] += v[d]
		}
	}
	for d := 0; d < bfv.Dim; d++ {
		mean[d] /= float64(n)
	}
	for _, v := range vecs {
		for d := 0; d < bfv.Dim; d++ {
			diff := v[d] - mean[d]
			std[d] += diff * diff
		}
	}
	out := make([]bfv.Vector, n)
	for d := 0; d < bfv.Dim; d++ {
		std[d] = math.Sqrt(std[d] / float64(n))
	}
	for i, v := range vecs {
		for d := 0; d < bfv.Dim; d++ {
			if std[d] > 0 {
				out[i][d] = (v[d] - mean[d]) / std[d]
			}
		}
	}
	return out
}

// Normalize scales every dimension by its maximum absolute value.
func Normalize(vecs []bfv.Vector) []bfv.Vector {
	var maxes [bfv.Dim]float64
	for _, v := range vecs {
		for d := 0; d < bfv.Dim; d++ {
			if a := math.Abs(v[d]); a > maxes[d] {
				maxes[d] = a
			}
		}
	}
	out := make([]bfv.Vector, len(vecs))
	for i, v := range vecs {
		for d := 0; d < bfv.Dim; d++ {
			if maxes[d] > 0 {
				out[i][d] = v[d] / maxes[d]
			}
		}
	}
	return out
}

// PCA projects the vectors onto their top-k principal components using
// covariance power iteration with deflation. The result keeps bfv.Vector
// shape with trailing dimensions zeroed, so downstream scoring code is
// unchanged.
func PCA(vecs []bfv.Vector, k int) []bfv.Vector {
	n := len(vecs)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > bfv.Dim {
		k = bfv.Dim
	}
	// Center.
	var mean [bfv.Dim]float64
	for _, v := range vecs {
		for d := 0; d < bfv.Dim; d++ {
			mean[d] += v[d]
		}
	}
	for d := 0; d < bfv.Dim; d++ {
		mean[d] /= float64(n)
	}
	centered := make([][bfv.Dim]float64, n)
	for i, v := range vecs {
		for d := 0; d < bfv.Dim; d++ {
			centered[i][d] = v[d] - mean[d]
		}
	}
	// Covariance matrix.
	var cov [bfv.Dim][bfv.Dim]float64
	for _, c := range centered {
		for i := 0; i < bfv.Dim; i++ {
			for j := 0; j < bfv.Dim; j++ {
				cov[i][j] += c[i] * c[j]
			}
		}
	}
	for i := 0; i < bfv.Dim; i++ {
		for j := 0; j < bfv.Dim; j++ {
			cov[i][j] /= float64(n)
		}
	}
	// Power iteration with deflation for the top-k eigenvectors.
	comps := make([][bfv.Dim]float64, 0, k)
	work := cov
	for c := 0; c < k; c++ {
		var v [bfv.Dim]float64
		// Deterministic start vector.
		for d := 0; d < bfv.Dim; d++ {
			v[d] = 1 / float64(d+1)
		}
		var lambda float64
		for iter := 0; iter < 200; iter++ {
			var nv [bfv.Dim]float64
			for i := 0; i < bfv.Dim; i++ {
				for j := 0; j < bfv.Dim; j++ {
					nv[i] += work[i][j] * v[j]
				}
			}
			norm := 0.0
			for d := 0; d < bfv.Dim; d++ {
				norm += nv[d] * nv[d]
			}
			norm = math.Sqrt(norm)
			if norm < 1e-12 {
				break
			}
			for d := 0; d < bfv.Dim; d++ {
				nv[d] /= norm
			}
			lambda = norm
			v = nv
		}
		comps = append(comps, v)
		// Deflate.
		for i := 0; i < bfv.Dim; i++ {
			for j := 0; j < bfv.Dim; j++ {
				work[i][j] -= lambda * v[i] * v[j]
			}
		}
	}
	// Project.
	out := make([]bfv.Vector, n)
	for i, c := range centered {
		for ci, comp := range comps {
			s := 0.0
			for d := 0; d < bfv.Dim; d++ {
				s += c[d] * comp[d]
			}
			out[i][ci] = s
		}
	}
	return out
}
