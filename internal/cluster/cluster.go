// Package cluster implements the behavior-clustering stage of the inference
// pipeline: DBSCAN over behavioral feature vectors, class complexity
// calculation per the paper's equation (1), and candidate selection keeping
// only classes more complex than average. It also provides the
// dimensionality-reduction and preprocessing baselines that the paper
// compares against in RQ4.
package cluster

import (
	"math"
	"sort"

	"fits/internal/bfv"
)

// Point is one custom function with its feature vector.
type Point struct {
	Entry uint32
	Vec   bfv.Vector
}

// Params configures DBSCAN.
type Params struct {
	Eps    float64 // neighborhood radius over max-normalized vectors
	MinPts int     // core point density threshold
}

// DefaultParams are the parameters used throughout the evaluation.
var DefaultParams = Params{Eps: 0.35, MinPts: 3}

// Class is one cluster of functions.
type Class struct {
	Members []Point
	// Complexity is filled by Complexities (equation 1).
	Complexity float64
	// Noise marks singleton classes formed from DBSCAN noise points.
	Noise bool
}

// maxNormalize scales every dimension by its maximum over the set, so that
// distance comparisons are not dominated by large-magnitude features.
func maxNormalize(points []Point) [][bfv.Dim]float64 {
	var maxes [bfv.Dim]float64
	for _, p := range points {
		for d := 0; d < bfv.Dim; d++ {
			if v := math.Abs(p.Vec[d]); v > maxes[d] {
				maxes[d] = v
			}
		}
	}
	out := make([][bfv.Dim]float64, len(points))
	for i, p := range points {
		for d := 0; d < bfv.Dim; d++ {
			if maxes[d] > 0 {
				out[i][d] = p.Vec[d] / maxes[d]
			}
		}
	}
	return out
}

func dist(a, b [bfv.Dim]float64) float64 {
	s := 0.0
	for d := 0; d < bfv.Dim; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return math.Sqrt(s)
}

// DBSCAN clusters points with the classic density-based algorithm. Noise
// points become singleton classes marked Noise so that the complexity filter
// still considers them.
func DBSCAN(points []Point, params Params) []Class {
	if params.MinPts <= 0 {
		params = DefaultParams
	}
	n := len(points)
	norm := maxNormalize(points)

	// neighbors reuses one scratch buffer across queries: both call sites
	// copy the result into the expansion queue before the next query, and a
	// point has at most n neighbors, so the append below never reallocates.
	scratch := make([]int, 0, n)
	neighbors := func(i int) []int {
		out := scratch[:0]
		for j := 0; j < n; j++ {
			if dist(norm[i], norm[j]) <= params.Eps {
				out = append(out, j)
			}
		}
		return out
	}

	const (
		unvisited = 0
		noise     = -1
	)
	labels := make([]int, n) // 0 unvisited, -1 noise, >0 cluster id
	next := 1
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nb := neighbors(i)
		if len(nb) < params.MinPts {
			labels[i] = noise
			continue
		}
		id := next
		next++
		labels[i] = id
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == noise {
				labels[j] = id // border point
				continue
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = id
			jn := neighbors(j)
			if len(jn) >= params.MinPts {
				queue = append(queue, jn...)
			}
		}
	}

	byID := map[int][]Point{}
	var noiseClasses []Class
	for i, p := range points {
		if labels[i] == noise {
			noiseClasses = append(noiseClasses, Class{Members: []Point{p}, Noise: true})
			continue
		}
		byID[labels[i]] = append(byID[labels[i]], p)
	}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Class, 0, len(ids)+len(noiseClasses))
	for _, id := range ids {
		members := byID[id]
		sort.Slice(members, func(a, b int) bool { return members[a].Entry < members[b].Entry })
		out = append(out, Class{Members: members})
	}
	sort.Slice(noiseClasses, func(a, b int) bool {
		return noiseClasses[a].Members[0].Entry < noiseClasses[b].Members[0].Entry
	})
	return append(out, noiseClasses...)
}

// Complexities fills each class's complexity per equation (1): the mean of
// normalized basic-block count, caller count, library-call count and
// anchor-call count over the class members, and returns the average over
// classes.
func Complexities(classes []Class, all []Point) float64 {
	dims := []int{bfv.FBasicBlocks, bfv.FCallers, bfv.FLibCalls, bfv.FAnchorCalls}
	var maxes [bfv.Dim]float64
	for _, p := range all {
		for _, d := range dims {
			if p.Vec[d] > maxes[d] {
				maxes[d] = p.Vec[d]
			}
		}
	}
	total := 0.0
	for i := range classes {
		c := &classes[i]
		sum := 0.0
		for _, p := range c.Members {
			for _, d := range dims {
				if maxes[d] > 0 {
					sum += p.Vec[d] / maxes[d]
				}
			}
		}
		if len(c.Members) > 0 {
			c.Complexity = sum / float64(len(c.Members))
		}
		total += c.Complexity
	}
	if len(classes) == 0 {
		return 0
	}
	return total / float64(len(classes))
}

// Candidates runs the full clustering stage: cluster, compute complexities,
// and keep the members of classes whose complexity exceeds the average.
// The returned entries are sorted.
func Candidates(points []Point, params Params) []uint32 {
	if len(points) == 0 {
		return nil
	}
	classes := DBSCAN(points, params)
	avg := Complexities(classes, points)
	var out []uint32
	for _, c := range classes {
		if c.Complexity > avg {
			for _, p := range c.Members {
				out = append(out, p.Entry)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
