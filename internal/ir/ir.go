// Package ir defines the VEX-like intermediate representation all analyses
// operate on, and the lifter that translates decoded machine instructions
// into it.
//
// The expression grammar follows Table 2 of the paper exactly: PUT(r) = t,
// t = GET(r), t = Binop(t, t|const), t = Load(t), Store(t) = t, so the
// backtracking rules of the call-site analysis can be stated verbatim.
package ir

import (
	"fmt"
	"strings"

	"fits/internal/isa"
)

// Temp is a single-assignment temporary introduced by the lifter.
type Temp int

func (t Temp) String() string { return fmt.Sprintf("t%d", int(t)) }

// Expr is an IR expression: Const, RdTmp, Get, Load or Binop. Expressions
// are held as pointers (only *Const etc. implement Expr): the lifter carves
// nodes out of typed arenas, so building a function costs a handful of chunk
// allocations instead of one interface box per node. Nodes are immutable
// after construction — several expressions may share one node (small
// constants, register reads), and cached models share nodes across analyses.
type Expr interface {
	isExpr()
	String() string
}

// Const is an integer literal or absolute address.
type Const struct{ V int64 }

// RdTmp reads a temporary.
type RdTmp struct{ T Temp }

// Get reads a guest register.
type Get struct{ R isa.Reg }

// Load reads memory at the address given by an expression.
type Load struct {
	Addr Expr
	Size int // bytes: 1 or isa.WordSize
}

// BinOp is the operator of a Binop expression.
type BinOp uint8

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	And
	Or
	Xor
	Shl
	Shr
	CmpEQ
	CmpNE
	CmpLT
	CmpGE
)

var binopNames = [...]string{
	Add: "Add", Sub: "Sub", Mul: "Mul", Div: "Div", And: "And", Or: "Or",
	Xor: "Xor", Shl: "Shl", Shr: "Shr", CmpEQ: "CmpEQ", CmpNE: "CmpNE",
	CmpLT: "CmpLT", CmpGE: "CmpGE",
}

func (o BinOp) String() string {
	if int(o) < len(binopNames) {
		return binopNames[o]
	}
	return fmt.Sprintf("BinOp(%d)", uint8(o))
}

// Binop combines two expressions.
type Binop struct {
	Op   BinOp
	L, R Expr
}

func (*Const) isExpr() {}
func (*RdTmp) isExpr() {}
func (*Get) isExpr()   {}
func (*Load) isExpr()  {}
func (*Binop) isExpr() {}

func (c *Const) String() string { return fmt.Sprintf("0x%x", uint64(c.V)) }
func (r *RdTmp) String() string { return r.T.String() }
func (g *Get) String() string   { return fmt.Sprintf("GET(%s)", g.R) }
func (l *Load) String() string  { return fmt.Sprintf("Load%d(%s)", l.Size*8, l.Addr) }
func (b *Binop) String() string { return fmt.Sprintf("%s(%s,%s)", b.Op, b.L, b.R) }

// Stmt is an IR statement. Like Expr, statements are pointer-implemented
// arena nodes; see the Expr comment for the ownership rules.
type Stmt interface {
	isStmt()
	String() string
}

// WrTmp assigns an expression to a fresh temporary: t = expr.
type WrTmp struct {
	T Temp
	E Expr
}

// Put writes a guest register: PUT(r) = expr.
type Put struct {
	R isa.Reg
	E Expr
}

// Store writes memory: Store(addr) = val.
type Store struct {
	Addr Expr
	Val  Expr
	Size int
}

// Exit is a conditional transfer: if cond goto Target.
type Exit struct {
	Cond   Expr
	Target uint32
}

// Jump is an unconditional transfer. Target may be nil for computed jumps,
// in which case Dyn holds the address expression.
type Jump struct {
	Target uint32
	Dyn    Expr
}

// CallKind distinguishes direct, indirect and trampoline calls.
type CallKind uint8

// Call kinds.
const (
	CallDirect CallKind = iota
	CallIndirect
	CallTramp
)

// Call transfers to a function and returns. Target is set for direct calls;
// Dyn holds the address expression for indirect calls; GOT holds the GOT
// slot address for trampolines.
type Call struct {
	Kind   CallKind
	Target uint32
	Dyn    Expr
	GOT    uint32
}

// Ret returns from the current function.
type Ret struct{}

// Sys invokes a system primitive (terminal library behaviour).
type Sys struct{ Num int32 }

func (*WrTmp) isStmt() {}
func (*Put) isStmt()   {}
func (*Store) isStmt() {}
func (*Exit) isStmt()  {}
func (*Jump) isStmt()  {}
func (*Call) isStmt()  {}
func (*Ret) isStmt()   {}
func (*Sys) isStmt()   {}

func (s *WrTmp) String() string { return fmt.Sprintf("%s = %s", s.T, s.E) }
func (s *Put) String() string   { return fmt.Sprintf("PUT(%s) = %s", s.R, s.E) }
func (s *Store) String() string {
	return fmt.Sprintf("Store%d(%s) = %s", s.Size*8, s.Addr, s.Val)
}
func (s *Exit) String() string { return fmt.Sprintf("if (%s) goto 0x%x", s.Cond, s.Target) }
func (s *Jump) String() string {
	if s.Dyn != nil {
		return fmt.Sprintf("goto %s", s.Dyn)
	}
	return fmt.Sprintf("goto 0x%x", s.Target)
}
func (s *Call) String() string {
	switch s.Kind {
	case CallIndirect:
		return fmt.Sprintf("call %s", s.Dyn)
	case CallTramp:
		return fmt.Sprintf("call [got:0x%x]", s.GOT)
	default:
		return fmt.Sprintf("call 0x%x", s.Target)
	}
}
func (*Ret) String() string   { return "ret" }
func (s *Sys) String() string { return fmt.Sprintf("sys %d", s.Num) }

// Block is the lifted form of a single machine instruction: a short list of
// statements sharing one temporary namespace with the rest of the function.
type Block struct {
	Addr  uint32
	Raw   isa.Instr
	Stmts []Stmt
}

func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "0x%x: %s\n", b.Addr, b.Raw)
	for _, s := range b.Stmts {
		fmt.Fprintf(&sb, "    %s\n", s)
	}
	return sb.String()
}
