package ir

import (
	"fmt"

	"fits/internal/isa"
)

// Lifter translates machine instructions into IR blocks. Temporaries are
// numbered per lifter so that a whole function lifted by one Lifter has a
// single temporary namespace, which the dataflow analyses rely on.
//
// Blocks, statements, and IR nodes are carved out of chunked arenas owned by
// the lifter, so lifting a function costs a handful of chunk allocations
// instead of one heap object per node. Chunks are append-only and never
// reallocated (a fresh chunk starts before one could grow), so returned
// pointers and subslices stay valid for the lifter's lifetime. Register
// reads, Ret, and small constants resolve to shared immutable package-level
// nodes and allocate nothing at all.
type Lifter struct {
	next   Temp
	blocks []Block
	stmts  []Stmt

	wrtmps arena[WrTmp]
	puts   arena[Put]
	stores arena[Store]
	exits  arena[Exit]
	jumps  arena[Jump]
	calls  arena[Call]
	syss   arena[Sys]
	consts arena[Const]
	rdtmps arena[RdTmp]
	binops arena[Binop]
	loads  arena[Load]
	gets   arena[Get]
}

const (
	blockChunk = 32
	stmtChunk  = 128
	// nodeChunk sizes the typed node arenas' chunks.
	nodeChunk = 128
	// maxLiftStmts is the most statements one instruction can lift to
	// (push/pop emit five); a new stmt chunk starts when fewer remain.
	maxLiftStmts = 8
)

// arena hands out stable pointers to values of one node type. A fresh chunk
// starts whenever the current one is full; existing elements are never moved,
// so previously returned pointers stay valid. Chunks grow geometrically from
// a small first chunk, keeping the per-function waste bounded for the many
// tiny functions a binary contains while large functions amortize to one
// allocation per nodeChunk nodes.
type arena[T any] struct {
	chunk []T
	size  int
}

// reserve sizes the arena's next chunk for about n nodes, so a caller that
// can estimate a function's node count up front pays one chunk allocation
// instead of walking the geometric growth ladder. Allocation stays lazy: an
// arena that ends up unused costs nothing.
func (a *arena[T]) reserve(n int) {
	if n > a.size {
		a.size = n
	}
}

func (a *arena[T]) new(v T) *T {
	if len(a.chunk) == cap(a.chunk) {
		switch {
		case a.size == 0:
			a.size = 8
		case a.size < nodeChunk:
			a.size *= 4
		}
		a.chunk = make([]T, 0, a.size)
	}
	a.chunk = append(a.chunk, v)
	return &a.chunk[len(a.chunk)-1]
}

// Shared immutable nodes: one Get per guest register, one Ret, and the small
// non-negative constants (section offsets, word sizes, return-address bases
// all hit this range). Nothing may ever write through these pointers.
var (
	getNodes    [isa.NumRegs]Get
	retNode     Ret
	smallConsts [256]Const
)

func init() {
	for r := range getNodes {
		getNodes[r] = Get{R: isa.Reg(r)}
	}
	for v := range smallConsts {
		smallConsts[v] = Const{V: int64(v)}
	}
}

// GetExpr returns the canonical node reading register r (shared for
// in-range registers, so it never allocates on the decode-validated path).
func (l *Lifter) GetExpr(r isa.Reg) *Get {
	if r >= 0 && int(r) < len(getNodes) {
		return &getNodes[r]
	}
	return l.gets.new(Get{R: r})
}

func (l *Lifter) cnst(v int64) *Const {
	if v >= 0 && v < int64(len(smallConsts)) {
		return &smallConsts[v]
	}
	return l.consts.new(Const{V: v})
}

// Reserve sizes the block and statement arenas for about n instructions, so
// a caller that knows the function's extent up front (the CFG builder) pays
// one allocation per arena instead of one per chunk. Instructions average
// about three statements; the arenas fall back to chunking if the estimate
// runs short.
func (l *Lifter) Reserve(n int) {
	if n <= 0 {
		return
	}
	if cap(l.blocks)-len(l.blocks) < n {
		l.blocks = make([]Block, 0, n)
	}
	if want := 3*n + maxLiftStmts; cap(l.stmts)-len(l.stmts) < want {
		l.stmts = make([]Stmt, 0, want)
	}
	// Pre-size the hot node arenas from the instruction count. The ratios
	// come from the lift templates: most instructions read one or two
	// registers (a WrTmp/RdTmp pair each) and write one (a Put), and ALU and
	// memory ops add a Binop. Overshoot is bounded by one chunk per arena
	// and undershoot falls back to geometric chunking.
	l.wrtmps.reserve(n + n/2)
	l.rdtmps.reserve(n + n/2)
	l.puts.reserve(n)
	l.binops.reserve(n)
	l.consts.reserve(n / 2)
	l.loads.reserve(n / 4)
	l.stores.reserve(n / 4)
}

// NewLifter returns a lifter with a fresh temporary namespace.
func NewLifter() *Lifter { return &Lifter{} }

func (l *Lifter) tmp() Temp {
	t := l.next
	l.next++
	return t
}

// NumTemps returns the number of temporaries allocated so far.
func (l *Lifter) NumTemps() int { return int(l.next) }

// Instruction-to-IR operator tables, hoisted to package level so Lift does
// not materialize a fresh map per lifted instruction (these two literals
// dominated the lift path's allocation profile).
var binOpFor = map[isa.Op]BinOp{
	isa.OpAdd: Add, isa.OpSub: Sub, isa.OpMul: Mul, isa.OpDiv: Div,
	isa.OpAnd: And, isa.OpOr: Or, isa.OpXor: Xor, isa.OpShl: Shl,
	isa.OpShr: Shr,
}

var cmpOpFor = map[isa.Op]BinOp{
	isa.OpBeq: CmpEQ, isa.OpBne: CmpNE, isa.OpBlt: CmpLT, isa.OpBge: CmpGE,
}

func (l *Lifter) emit(s Stmt) { l.stmts = append(l.stmts, s) }

// read loads a register into a fresh temporary and returns it.
func (l *Lifter) read(r isa.Reg) Expr {
	t := l.tmp()
	l.emit(l.wrtmps.new(WrTmp{T: t, E: l.GetExpr(r)}))
	return l.rdtmps.new(RdTmp{T: t})
}

func (l *Lifter) bin(op BinOp, x, y Expr) Expr {
	t := l.tmp()
	l.emit(l.wrtmps.new(WrTmp{T: t, E: l.binops.new(Binop{Op: op, L: x, R: y})}))
	return l.rdtmps.new(RdTmp{T: t})
}

// Lift translates one instruction at the given address. The address is
// needed to resolve fall-through targets of conditional branches.
func (l *Lifter) Lift(addr uint32, in isa.Instr) (*Block, error) {
	if len(l.blocks) == cap(l.blocks) {
		l.blocks = make([]Block, 0, blockChunk)
	}
	if cap(l.stmts)-len(l.stmts) < maxLiftStmts {
		l.stmts = make([]Stmt, 0, stmtChunk)
	}
	l.blocks = append(l.blocks, Block{Addr: addr, Raw: in})
	b := &l.blocks[len(l.blocks)-1]
	start := len(l.stmts)

	switch in.Op {
	case isa.OpNop:
		// no statements

	case isa.OpMovi:
		l.emit(l.puts.new(Put{R: in.Rd, E: l.cnst(int64(in.Imm))}))

	case isa.OpMov:
		l.emit(l.puts.new(Put{R: in.Rd, E: l.read(in.Rs1)}))

	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpShl, isa.OpShr:
		l.emit(l.puts.new(Put{R: in.Rd, E: l.bin(binOpFor[in.Op], l.read(in.Rs1), l.read(in.Rs2))}))

	case isa.OpAddi:
		l.emit(l.puts.new(Put{R: in.Rd, E: l.bin(Add, l.read(in.Rs1), l.cnst(int64(in.Imm)))}))

	case isa.OpLdb, isa.OpLdw:
		size := 1
		if in.Op == isa.OpLdw {
			size = isa.WordSize
		}
		addrE := l.bin(Add, l.read(in.Rs1), l.cnst(int64(in.Imm)))
		t := l.tmp()
		l.emit(l.wrtmps.new(WrTmp{T: t, E: l.loads.new(Load{Addr: addrE, Size: size})}))
		l.emit(l.puts.new(Put{R: in.Rd, E: l.rdtmps.new(RdTmp{T: t})}))

	case isa.OpStb, isa.OpStw:
		size := 1
		if in.Op == isa.OpStw {
			size = isa.WordSize
		}
		val := l.read(in.Rs2)
		addrE := l.bin(Add, l.read(in.Rs1), l.cnst(int64(in.Imm)))
		l.emit(l.stores.new(Store{Addr: addrE, Val: val, Size: size}))

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		cond := l.bin(cmpOpFor[in.Op], l.read(in.Rs1), l.read(in.Rs2))
		l.emit(l.exits.new(Exit{Cond: cond, Target: uint32(in.Imm)}))

	case isa.OpJmp:
		l.emit(l.jumps.new(Jump{Target: uint32(in.Imm)}))

	case isa.OpJr:
		l.emit(l.jumps.new(Jump{Dyn: l.read(in.Rs1)}))

	case isa.OpCall:
		l.emit(l.puts.new(Put{R: isa.LR, E: l.cnst(int64(addr) + isa.Width)}))
		l.emit(l.calls.new(Call{Kind: CallDirect, Target: uint32(in.Imm)}))

	case isa.OpCallr:
		target := l.read(in.Rs1)
		l.emit(l.puts.new(Put{R: isa.LR, E: l.cnst(int64(addr) + isa.Width)}))
		l.emit(l.calls.new(Call{Kind: CallIndirect, Dyn: target}))

	case isa.OpRet:
		l.emit(&retNode)

	case isa.OpPush:
		val := l.read(in.Rs1)
		sp := l.bin(Sub, l.read(isa.SP), l.cnst(isa.WordSize))
		l.emit(l.puts.new(Put{R: isa.SP, E: sp}))
		l.emit(l.stores.new(Store{Addr: sp, Val: val, Size: isa.WordSize}))

	case isa.OpPop:
		sp := l.read(isa.SP)
		t := l.tmp()
		l.emit(l.wrtmps.new(WrTmp{T: t, E: l.loads.new(Load{Addr: sp, Size: isa.WordSize})}))
		l.emit(l.puts.new(Put{R: in.Rd, E: l.rdtmps.new(RdTmp{T: t})}))
		l.emit(l.puts.new(Put{R: isa.SP, E: l.bin(Add, sp, l.cnst(isa.WordSize))}))

	case isa.OpSys:
		l.emit(l.syss.new(Sys{Num: in.Imm}))

	case isa.OpTramp:
		l.emit(l.calls.new(Call{Kind: CallTramp, GOT: uint32(in.Imm)}))
		l.emit(&retNode)

	default:
		l.blocks = l.blocks[:len(l.blocks)-1]
		return nil, fmt.Errorf("ir: cannot lift %v at 0x%x", in.Op, addr)
	}
	if end := len(l.stmts); end > start {
		b.Stmts = l.stmts[start:end:end]
	}
	return b, nil
}

// LiftAll lifts a contiguous run of instructions starting at base.
func (l *Lifter) LiftAll(base uint32, ins []isa.Instr) ([]*Block, error) {
	out := make([]*Block, 0, len(ins))
	for i, in := range ins {
		b, err := l.Lift(base+uint32(i*isa.Width), in)
		if err != nil {
			return out, err
		}
		out = append(out, b)
	}
	return out, nil
}
