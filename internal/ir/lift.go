package ir

import (
	"fmt"

	"fits/internal/isa"
)

// Lifter translates machine instructions into IR blocks. Temporaries are
// numbered per lifter so that a whole function lifted by one Lifter has a
// single temporary namespace, which the dataflow analyses rely on.
//
// Blocks and statements are carved out of chunked arenas owned by the
// lifter, so lifting a function costs a handful of chunk allocations instead
// of one Block plus one Stmts slice per instruction. Chunks are append-only
// and never reallocated (a fresh chunk starts before one could grow), so
// returned pointers and subslices stay valid for the lifter's lifetime.
type Lifter struct {
	next   Temp
	blocks []Block
	stmts  []Stmt
}

const (
	blockChunk = 32
	stmtChunk  = 128
	// maxLiftStmts is the most statements one instruction can lift to
	// (push/pop emit five); a new stmt chunk starts when fewer remain.
	maxLiftStmts = 8
)

// Reserve sizes the arenas for about n instructions, so a caller that knows
// the function's extent up front (the CFG builder) pays one allocation per
// arena instead of one per chunk. Instructions average about three
// statements; the arena falls back to chunking if the estimate runs short.
func (l *Lifter) Reserve(n int) {
	if n <= 0 {
		return
	}
	if cap(l.blocks)-len(l.blocks) < n {
		l.blocks = make([]Block, 0, n)
	}
	if want := 3*n + maxLiftStmts; cap(l.stmts)-len(l.stmts) < want {
		l.stmts = make([]Stmt, 0, want)
	}
}

// NewLifter returns a lifter with a fresh temporary namespace.
func NewLifter() *Lifter { return &Lifter{} }

func (l *Lifter) tmp() Temp {
	t := l.next
	l.next++
	return t
}

// NumTemps returns the number of temporaries allocated so far.
func (l *Lifter) NumTemps() int { return int(l.next) }

// Instruction-to-IR operator tables, hoisted to package level so Lift does
// not materialize a fresh map per lifted instruction (these two literals
// dominated the lift path's allocation profile).
var binOpFor = map[isa.Op]BinOp{
	isa.OpAdd: Add, isa.OpSub: Sub, isa.OpMul: Mul, isa.OpDiv: Div,
	isa.OpAnd: And, isa.OpOr: Or, isa.OpXor: Xor, isa.OpShl: Shl,
	isa.OpShr: Shr,
}

var cmpOpFor = map[isa.Op]BinOp{
	isa.OpBeq: CmpEQ, isa.OpBne: CmpNE, isa.OpBlt: CmpLT, isa.OpBge: CmpGE,
}

func (l *Lifter) emit(s Stmt) { l.stmts = append(l.stmts, s) }

// read loads a register into a fresh temporary and returns it.
func (l *Lifter) read(r isa.Reg) Expr {
	t := l.tmp()
	l.emit(WrTmp{T: t, E: Get{R: r}})
	return RdTmp{T: t}
}

func (l *Lifter) bin(op BinOp, x, y Expr) Expr {
	t := l.tmp()
	l.emit(WrTmp{T: t, E: Binop{Op: op, L: x, R: y}})
	return RdTmp{T: t}
}

// Lift translates one instruction at the given address. The address is
// needed to resolve fall-through targets of conditional branches.
func (l *Lifter) Lift(addr uint32, in isa.Instr) (*Block, error) {
	if len(l.blocks) == cap(l.blocks) {
		l.blocks = make([]Block, 0, blockChunk)
	}
	if cap(l.stmts)-len(l.stmts) < maxLiftStmts {
		l.stmts = make([]Stmt, 0, stmtChunk)
	}
	l.blocks = append(l.blocks, Block{Addr: addr, Raw: in})
	b := &l.blocks[len(l.blocks)-1]
	start := len(l.stmts)

	switch in.Op {
	case isa.OpNop:
		// no statements

	case isa.OpMovi:
		l.emit(Put{R: in.Rd, E: Const{V: int64(in.Imm)}})

	case isa.OpMov:
		l.emit(Put{R: in.Rd, E: l.read(in.Rs1)})

	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpShl, isa.OpShr:
		l.emit(Put{R: in.Rd, E: l.bin(binOpFor[in.Op], l.read(in.Rs1), l.read(in.Rs2))})

	case isa.OpAddi:
		l.emit(Put{R: in.Rd, E: l.bin(Add, l.read(in.Rs1), Const{V: int64(in.Imm)})})

	case isa.OpLdb, isa.OpLdw:
		size := 1
		if in.Op == isa.OpLdw {
			size = isa.WordSize
		}
		addrE := l.bin(Add, l.read(in.Rs1), Const{V: int64(in.Imm)})
		t := l.tmp()
		l.emit(WrTmp{T: t, E: Load{Addr: addrE, Size: size}})
		l.emit(Put{R: in.Rd, E: RdTmp{T: t}})

	case isa.OpStb, isa.OpStw:
		size := 1
		if in.Op == isa.OpStw {
			size = isa.WordSize
		}
		val := l.read(in.Rs2)
		addrE := l.bin(Add, l.read(in.Rs1), Const{V: int64(in.Imm)})
		l.emit(Store{Addr: addrE, Val: val, Size: size})

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		cond := l.bin(cmpOpFor[in.Op], l.read(in.Rs1), l.read(in.Rs2))
		l.emit(Exit{Cond: cond, Target: uint32(in.Imm)})

	case isa.OpJmp:
		l.emit(Jump{Target: uint32(in.Imm)})

	case isa.OpJr:
		l.emit(Jump{Dyn: l.read(in.Rs1)})

	case isa.OpCall:
		l.emit(Put{R: isa.LR, E: Const{V: int64(addr) + isa.Width}})
		l.emit(Call{Kind: CallDirect, Target: uint32(in.Imm)})

	case isa.OpCallr:
		target := l.read(in.Rs1)
		l.emit(Put{R: isa.LR, E: Const{V: int64(addr) + isa.Width}})
		l.emit(Call{Kind: CallIndirect, Dyn: target})

	case isa.OpRet:
		l.emit(Ret{})

	case isa.OpPush:
		val := l.read(in.Rs1)
		sp := l.bin(Sub, l.read(isa.SP), Const{V: isa.WordSize})
		l.emit(Put{R: isa.SP, E: sp})
		l.emit(Store{Addr: sp, Val: val, Size: isa.WordSize})

	case isa.OpPop:
		sp := l.read(isa.SP)
		t := l.tmp()
		l.emit(WrTmp{T: t, E: Load{Addr: sp, Size: isa.WordSize}})
		l.emit(Put{R: in.Rd, E: RdTmp{T: t}})
		l.emit(Put{R: isa.SP, E: l.bin(Add, sp, Const{V: isa.WordSize})})

	case isa.OpSys:
		l.emit(Sys{Num: in.Imm})

	case isa.OpTramp:
		l.emit(Call{Kind: CallTramp, GOT: uint32(in.Imm)})
		l.emit(Ret{})

	default:
		l.blocks = l.blocks[:len(l.blocks)-1]
		return nil, fmt.Errorf("ir: cannot lift %v at 0x%x", in.Op, addr)
	}
	if end := len(l.stmts); end > start {
		b.Stmts = l.stmts[start:end:end]
	}
	return b, nil
}

// LiftAll lifts a contiguous run of instructions starting at base.
func (l *Lifter) LiftAll(base uint32, ins []isa.Instr) ([]*Block, error) {
	out := make([]*Block, 0, len(ins))
	for i, in := range ins {
		b, err := l.Lift(base+uint32(i*isa.Width), in)
		if err != nil {
			return out, err
		}
		out = append(out, b)
	}
	return out, nil
}
