package ir

import (
	"fmt"

	"fits/internal/isa"
)

// Lifter translates machine instructions into IR blocks. Temporaries are
// numbered per lifter so that a whole function lifted by one Lifter has a
// single temporary namespace, which the dataflow analyses rely on.
type Lifter struct {
	next Temp
}

// NewLifter returns a lifter with a fresh temporary namespace.
func NewLifter() *Lifter { return &Lifter{} }

func (l *Lifter) tmp() Temp {
	t := l.next
	l.next++
	return t
}

// NumTemps returns the number of temporaries allocated so far.
func (l *Lifter) NumTemps() int { return int(l.next) }

// Lift translates one instruction at the given address. The address is
// needed to resolve fall-through targets of conditional branches.
func (l *Lifter) Lift(addr uint32, in isa.Instr) (*Block, error) {
	b := &Block{Addr: addr, Raw: in}
	emit := func(s Stmt) { b.Stmts = append(b.Stmts, s) }
	// read loads a register into a fresh temporary and returns it.
	read := func(r isa.Reg) Expr {
		t := l.tmp()
		emit(WrTmp{T: t, E: Get{R: r}})
		return RdTmp{T: t}
	}
	bin := func(op BinOp, x, y Expr) Expr {
		t := l.tmp()
		emit(WrTmp{T: t, E: Binop{Op: op, L: x, R: y}})
		return RdTmp{T: t}
	}

	switch in.Op {
	case isa.OpNop:
		// no statements

	case isa.OpMovi:
		emit(Put{R: in.Rd, E: Const{V: int64(in.Imm)}})

	case isa.OpMov:
		emit(Put{R: in.Rd, E: read(in.Rs1)})

	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpShl, isa.OpShr:
		op := map[isa.Op]BinOp{
			isa.OpAdd: Add, isa.OpSub: Sub, isa.OpMul: Mul, isa.OpDiv: Div,
			isa.OpAnd: And, isa.OpOr: Or, isa.OpXor: Xor, isa.OpShl: Shl,
			isa.OpShr: Shr,
		}[in.Op]
		emit(Put{R: in.Rd, E: bin(op, read(in.Rs1), read(in.Rs2))})

	case isa.OpAddi:
		emit(Put{R: in.Rd, E: bin(Add, read(in.Rs1), Const{V: int64(in.Imm)})})

	case isa.OpLdb, isa.OpLdw:
		size := 1
		if in.Op == isa.OpLdw {
			size = isa.WordSize
		}
		addrE := bin(Add, read(in.Rs1), Const{V: int64(in.Imm)})
		t := l.tmp()
		emit(WrTmp{T: t, E: Load{Addr: addrE, Size: size}})
		emit(Put{R: in.Rd, E: RdTmp{T: t}})

	case isa.OpStb, isa.OpStw:
		size := 1
		if in.Op == isa.OpStw {
			size = isa.WordSize
		}
		val := read(in.Rs2)
		addrE := bin(Add, read(in.Rs1), Const{V: int64(in.Imm)})
		emit(Store{Addr: addrE, Val: val, Size: size})

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		op := map[isa.Op]BinOp{
			isa.OpBeq: CmpEQ, isa.OpBne: CmpNE, isa.OpBlt: CmpLT, isa.OpBge: CmpGE,
		}[in.Op]
		cond := bin(op, read(in.Rs1), read(in.Rs2))
		emit(Exit{Cond: cond, Target: uint32(in.Imm)})

	case isa.OpJmp:
		emit(Jump{Target: uint32(in.Imm)})

	case isa.OpJr:
		emit(Jump{Dyn: read(in.Rs1)})

	case isa.OpCall:
		emit(Put{R: isa.LR, E: Const{V: int64(addr) + isa.Width}})
		emit(Call{Kind: CallDirect, Target: uint32(in.Imm)})

	case isa.OpCallr:
		target := read(in.Rs1)
		emit(Put{R: isa.LR, E: Const{V: int64(addr) + isa.Width}})
		emit(Call{Kind: CallIndirect, Dyn: target})

	case isa.OpRet:
		emit(Ret{})

	case isa.OpPush:
		val := read(in.Rs1)
		sp := bin(Sub, read(isa.SP), Const{V: isa.WordSize})
		emit(Put{R: isa.SP, E: sp})
		emit(Store{Addr: sp, Val: val, Size: isa.WordSize})

	case isa.OpPop:
		sp := read(isa.SP)
		t := l.tmp()
		emit(WrTmp{T: t, E: Load{Addr: sp, Size: isa.WordSize}})
		emit(Put{R: in.Rd, E: RdTmp{T: t}})
		emit(Put{R: isa.SP, E: bin(Add, sp, Const{V: isa.WordSize})})

	case isa.OpSys:
		emit(Sys{Num: in.Imm})

	case isa.OpTramp:
		emit(Call{Kind: CallTramp, GOT: uint32(in.Imm)})
		emit(Ret{})

	default:
		return nil, fmt.Errorf("ir: cannot lift %v at 0x%x", in.Op, addr)
	}
	return b, nil
}

// LiftAll lifts a contiguous run of instructions starting at base.
func (l *Lifter) LiftAll(base uint32, ins []isa.Instr) ([]*Block, error) {
	out := make([]*Block, 0, len(ins))
	for i, in := range ins {
		b, err := l.Lift(base+uint32(i*isa.Width), in)
		if err != nil {
			return out, err
		}
		out = append(out, b)
	}
	return out, nil
}
