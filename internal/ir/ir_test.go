package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fits/internal/isa"
)

func lift1(t *testing.T, in isa.Instr) *Block {
	t.Helper()
	b, err := NewLifter().Lift(0x1000, in)
	if err != nil {
		t.Fatalf("lift %v: %v", in, err)
	}
	return b
}

func TestLiftMovi(t *testing.T) {
	b := lift1(t, isa.Instr{Op: isa.OpMovi, Rd: isa.R2, Imm: 77})
	if len(b.Stmts) != 1 {
		t.Fatalf("got %d stmts", len(b.Stmts))
	}
	p, ok := b.Stmts[0].(*Put)
	if !ok || p.R != isa.R2 {
		t.Fatalf("stmt = %v", b.Stmts[0])
	}
	if c, ok := p.E.(*Const); !ok || c.V != 77 {
		t.Fatalf("value = %v", p.E)
	}
}

func TestLiftAdd(t *testing.T) {
	b := lift1(t, isa.Instr{Op: isa.OpAdd, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2})
	// Expect: t0=GET(r1); t1=GET(r2); t2=Binop(Add,t0,t1); PUT(r0)=t2
	if len(b.Stmts) != 4 {
		t.Fatalf("got %d stmts: %v", len(b.Stmts), b)
	}
	w, ok := b.Stmts[2].(*WrTmp)
	if !ok {
		t.Fatalf("stmt 2 = %v", b.Stmts[2])
	}
	bo, ok := w.E.(*Binop)
	if !ok || bo.Op != Add {
		t.Fatalf("expr = %v", w.E)
	}
	p := b.Stmts[3].(*Put)
	if p.R != isa.R0 {
		t.Errorf("dest = %v", p.R)
	}
}

func TestLiftLoadStore(t *testing.T) {
	b := lift1(t, isa.Instr{Op: isa.OpLdw, Rd: isa.R4, Rs1: isa.R5, Imm: 12})
	var foundLoad bool
	for _, s := range b.Stmts {
		if w, ok := s.(*WrTmp); ok {
			if l, ok := w.E.(*Load); ok {
				foundLoad = true
				if l.Size != isa.WordSize {
					t.Errorf("load size = %d", l.Size)
				}
			}
		}
	}
	if !foundLoad {
		t.Error("no Load lifted for ldw")
	}

	b = lift1(t, isa.Instr{Op: isa.OpStb, Rs1: isa.R5, Rs2: isa.R6, Imm: 3})
	var foundStore bool
	for _, s := range b.Stmts {
		if st, ok := s.(*Store); ok {
			foundStore = true
			if st.Size != 1 {
				t.Errorf("store size = %d", st.Size)
			}
		}
	}
	if !foundStore {
		t.Error("no Store lifted for stb")
	}
}

func TestLiftBranch(t *testing.T) {
	b := lift1(t, isa.Instr{Op: isa.OpBne, Rs1: isa.R0, Rs2: isa.R1, Imm: 0x2000})
	last := b.Stmts[len(b.Stmts)-1]
	e, ok := last.(*Exit)
	if !ok {
		t.Fatalf("last stmt = %v", last)
	}
	if e.Target != 0x2000 {
		t.Errorf("target = %#x", e.Target)
	}
	// Condition must be a CmpNE binop temporary.
	w := b.Stmts[len(b.Stmts)-2].(*WrTmp)
	if bo := w.E.(*Binop); bo.Op != CmpNE {
		t.Errorf("cond op = %v", bo.Op)
	}
}

func TestLiftCalls(t *testing.T) {
	b := lift1(t, isa.Instr{Op: isa.OpCall, Imm: 0x3000})
	var c *Call
	var found bool
	for _, s := range b.Stmts {
		if cs, ok := s.(*Call); ok {
			c, found = cs, true
		}
	}
	if !found || c.Kind != CallDirect || c.Target != 0x3000 {
		t.Fatalf("call = %+v found=%v", c, found)
	}
	// LR must receive the return address.
	p, ok := b.Stmts[0].(*Put)
	if !ok || p.R != isa.LR {
		t.Fatalf("first stmt = %v", b.Stmts[0])
	}
	if cv := p.E.(*Const); cv.V != 0x1000+isa.Width {
		t.Errorf("return addr = %#x", cv.V)
	}

	b = lift1(t, isa.Instr{Op: isa.OpCallr, Rs1: isa.R7})
	found = false
	for _, s := range b.Stmts {
		if cs, ok := s.(*Call); ok && cs.Kind == CallIndirect {
			found = true
		}
	}
	if !found {
		t.Error("no indirect call lifted")
	}

	b = lift1(t, isa.Instr{Op: isa.OpTramp, Imm: 0x9000})
	cs, ok := b.Stmts[0].(*Call)
	if !ok || cs.Kind != CallTramp || cs.GOT != 0x9000 {
		t.Fatalf("tramp = %v", b.Stmts[0])
	}
	if _, ok := b.Stmts[1].(*Ret); !ok {
		t.Error("tramp must be followed by ret")
	}
}

func TestLiftPushPop(t *testing.T) {
	b := lift1(t, isa.Instr{Op: isa.OpPush, Rs1: isa.LR})
	var gotStore, gotSPPut bool
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *Store:
			gotStore = true
		case *Put:
			if s.R == isa.SP {
				gotSPPut = true
			}
		}
	}
	if !gotStore || !gotSPPut {
		t.Errorf("push lifting incomplete: %v", b)
	}

	b = lift1(t, isa.Instr{Op: isa.OpPop, Rd: isa.R9})
	var gotLoad, gotDest bool
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *WrTmp:
			if _, ok := s.E.(*Load); ok {
				gotLoad = true
			}
		case *Put:
			if s.R == isa.R9 {
				gotDest = true
			}
		}
	}
	if !gotLoad || !gotDest {
		t.Errorf("pop lifting incomplete: %v", b)
	}
}

func TestLiftAllTempsUnique(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.OpAdd, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpLdw, Rd: isa.R3, Rs1: isa.R0, Imm: 4},
		{Op: isa.OpBeq, Rs1: isa.R3, Rs2: isa.R0, Imm: 0x40},
		{Op: isa.OpRet},
	}
	l := NewLifter()
	blocks, err := l.LiftAll(0x100, ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != len(ins) {
		t.Fatalf("got %d blocks", len(blocks))
	}
	seen := map[Temp]bool{}
	for _, b := range blocks {
		for _, s := range b.Stmts {
			if w, ok := s.(*WrTmp); ok {
				if seen[w.T] {
					t.Fatalf("temp %v assigned twice", w.T)
				}
				seen[w.T] = true
			}
		}
	}
	if l.NumTemps() != len(seen) {
		t.Errorf("NumTemps = %d, seen %d", l.NumTemps(), len(seen))
	}
	if blocks[1].Addr != 0x100+isa.Width {
		t.Errorf("block addr = %#x", blocks[1].Addr)
	}
}

// Property: every instruction lifts without error, temporaries are written
// before use, and every statement prints.
func TestQuickLiftWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := isa.Instr{
			Op:  isa.Op(r.Intn(30)),
			Rd:  isa.Reg(r.Intn(isa.NumRegs)),
			Rs1: isa.Reg(r.Intn(isa.NumRegs)),
			Rs2: isa.Reg(r.Intn(isa.NumRegs)),
			Imm: int32(r.Uint32()),
		}
		if !in.Op.Valid() {
			return true
		}
		b, err := NewLifter().Lift(0x400, in)
		if err != nil {
			return false
		}
		defined := map[Temp]bool{}
		var useOK func(e Expr) bool
		useOK = func(e Expr) bool {
			switch e := e.(type) {
			case *RdTmp:
				return defined[e.T]
			case *Load:
				return useOK(e.Addr)
			case *Binop:
				return useOK(e.L) && useOK(e.R)
			default:
				return true
			}
		}
		for _, s := range b.Stmts {
			switch s := s.(type) {
			case *WrTmp:
				if !useOK(s.E) {
					return false
				}
				defined[s.T] = true
			case *Put:
				if !useOK(s.E) {
					return false
				}
			case *Store:
				if !useOK(s.Addr) || !useOK(s.Val) {
					return false
				}
			case *Exit:
				if !useOK(s.Cond) {
					return false
				}
			}
			if s.String() == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	b := lift1(t, isa.Instr{Op: isa.OpAdd, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2})
	s := b.String()
	for _, want := range []string{"0x1000", "GET(r1)", "PUT(r0)"} {
		if !strings.Contains(s, want) {
			t.Errorf("block string missing %q:\n%s", want, s)
		}
	}
	if Temp(3).String() != "t3" {
		t.Error("temp stringer")
	}
	if (&Jump{Dyn: &Get{R: isa.R1}}).String() != "goto GET(r1)" {
		t.Errorf("dyn jump stringer: %s", &Jump{Dyn: &Get{R: isa.R1}})
	}
	if !strings.Contains((&Sys{Num: 4}).String(), "4") {
		t.Error("sys stringer")
	}
	if !strings.Contains(BinOp(99).String(), "99") {
		t.Error("invalid binop stringer")
	}
}
