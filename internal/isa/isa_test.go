package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{R0: "r0", R11: "r11", GP: "gp", SP: "sp", LR: "lr", AT: "at"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestOpStringAndValid(t *testing.T) {
	if OpMovi.String() != "movi" {
		t.Errorf("OpMovi.String() = %q", OpMovi.String())
	}
	if !OpTramp.Valid() {
		t.Error("OpTramp should be valid")
	}
	if Op(200).Valid() {
		t.Error("Op(200) should be invalid")
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Errorf("invalid op string: %q", Op(200).String())
	}
}

func TestArchProperties(t *testing.T) {
	for _, a := range []Arch{ArchARM, ArchAARCH, ArchMIPS} {
		if !a.Valid() {
			t.Errorf("%v should be valid", a)
		}
		if a.Base() == 0 {
			t.Errorf("%v base is zero", a)
		}
	}
	if Arch(0).Valid() || Arch(9).Valid() {
		t.Error("invalid arch reported valid")
	}
	if ArchARM.Base() == ArchMIPS.Base() {
		t.Error("arm and mips should have distinct bases")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := []Instr{
		{Op: OpNop},
		{Op: OpMovi, Rd: R3, Imm: -42},
		{Op: OpAdd, Rd: R0, Rs1: R1, Rs2: R2},
		{Op: OpLdw, Rd: R4, Rs1: SP, Imm: 16},
		{Op: OpStb, Rs1: R5, Rs2: R6, Imm: -8},
		{Op: OpBeq, Rs1: R0, Rs2: R1, Imm: 0x10040},
		{Op: OpCall, Imm: 0x7fffffff},
		{Op: OpTramp, Imm: 0x20000},
		{Op: OpRet},
	}
	for _, a := range []Arch{ArchARM, ArchAARCH, ArchMIPS} {
		for _, in := range ins {
			var buf [Width]byte
			a.Encode(in, buf[:])
			got, err := a.Decode(buf[:])
			if err != nil {
				t.Fatalf("%v decode %v: %v", a, in, err)
			}
			if got != in {
				t.Errorf("%v round trip: got %v, want %v", a, got, in)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := ArchARM.Decode([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for truncated input")
	}
	// Undefined opcode for ARM (identity map): a large byte.
	bad := [Width]byte{0: 0xff}
	if _, err := ArchARM.Decode(bad[:]); err == nil {
		t.Error("expected error for undefined opcode")
	}
	// Register out of range.
	var buf [Width]byte
	ArchARM.Encode(Instr{Op: OpMov, Rd: R0, Rs1: R1}, buf[:])
	buf[1] = 99
	if _, err := ArchARM.Decode(buf[:]); err == nil {
		t.Error("expected error for out-of-range register")
	}
	// AArch64 opcode bytes below the rotation offset are undefined.
	var ab [Width]byte
	ab[4] = 0x05
	if _, err := ArchAARCH.Decode(ab[:]); err == nil {
		t.Error("expected error for aarch64 low opcode byte")
	}
}

func TestArchEncodingsDiffer(t *testing.T) {
	in := Instr{Op: OpCall, Imm: 0x1234}
	var a, b, c [Width]byte
	ArchARM.Encode(in, a[:])
	ArchAARCH.Encode(in, b[:])
	ArchMIPS.Encode(in, c[:])
	if a == b || a == c || b == c {
		t.Error("architecture encodings should differ for the same instruction")
	}
}

func TestEncodeDecodeAll(t *testing.T) {
	ins := []Instr{{Op: OpMovi, Rd: R0, Imm: 7}, {Op: OpRet}}
	for _, a := range []Arch{ArchARM, ArchAARCH, ArchMIPS} {
		raw := a.EncodeAll(ins)
		if len(raw) != len(ins)*Width {
			t.Fatalf("%v: encoded length %d", a, len(raw))
		}
		got, err := a.DecodeAll(raw)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if len(got) != len(ins) || got[0] != ins[0] || got[1] != ins[1] {
			t.Errorf("%v: decode all mismatch: %v", a, got)
		}
	}
}

func TestDecodeAllStopsAtError(t *testing.T) {
	raw := ArchARM.EncodeAll([]Instr{{Op: OpNop}, {Op: OpNop}})
	raw[Width] = 0xee // corrupt second opcode
	got, err := ArchARM.DecodeAll(raw)
	if err == nil {
		t.Fatal("expected error")
	}
	if len(got) != 1 {
		t.Errorf("got %d instructions before error, want 1", len(got))
	}
}

// randInstr builds a structurally valid random instruction.
func randInstr(r *rand.Rand) Instr {
	return Instr{
		Op:  Op(r.Intn(int(numOps))),
		Rd:  Reg(r.Intn(NumRegs)),
		Rs1: Reg(r.Intn(NumRegs)),
		Rs2: Reg(r.Intn(NumRegs)),
		Imm: int32(r.Uint32()),
	}
}

func TestQuickRoundTrip(t *testing.T) {
	for _, a := range []Arch{ArchARM, ArchAARCH, ArchMIPS} {
		a := a
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			in := randInstr(r)
			var buf [Width]byte
			a.Encode(in, buf[:])
			got, err := a.Decode(buf[:])
			return err == nil && got == in
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v: %v", a, err)
		}
	}
}

func TestInstrStringCoversAllOps(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		in := Instr{Op: op, Rd: R1, Rs1: R2, Rs2: R3, Imm: 5}
		if s := in.String(); s == "" {
			t.Errorf("empty string for %v", op)
		}
	}
}

func TestInstrClassifiers(t *testing.T) {
	if !(Instr{Op: OpBeq}).IsBranch() || (Instr{Op: OpJmp}).IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !(Instr{Op: OpCall}).IsCall() || !(Instr{Op: OpCallr}).IsCall() || (Instr{Op: OpRet}).IsCall() {
		t.Error("IsCall misclassifies")
	}
	ends := []Op{OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpJr, OpRet, OpTramp}
	for _, op := range ends {
		if !(Instr{Op: op}).EndsBlock() {
			t.Errorf("%v should end a block", op)
		}
	}
	for _, op := range []Op{OpAdd, OpCall, OpPush, OpSys} {
		if (Instr{Op: op}).EndsBlock() {
			t.Errorf("%v should not end a block", op)
		}
	}
}
