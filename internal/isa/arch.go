package isa

import (
	"encoding/binary"
	"fmt"
)

// Arch identifies one of the three supported architecture encodings.
type Arch uint8

// Supported architectures. They stand in for the ARM, AArch64 and MIPS
// firmware of the paper's dataset.
const (
	ArchARM   Arch = iota + 1 // little-endian, identity opcode map
	ArchAARCH                 // little-endian, rotated opcode map, swapped fields
	ArchMIPS                  // big-endian, XOR-scrambled opcode map
)

func (a Arch) String() string {
	switch a {
	case ArchARM:
		return "arm"
	case ArchAARCH:
		return "aarch64"
	case ArchMIPS:
		return "mips"
	default:
		return fmt.Sprintf("arch(%d)", uint8(a))
	}
}

// Valid reports whether a is a known architecture.
func (a Arch) Valid() bool { return a >= ArchARM && a <= ArchMIPS }

// Base returns the conventional load address for text sections of the
// architecture, mirroring the distinct image bases seen across real firmware.
func (a Arch) Base() uint32 {
	switch a {
	case ArchMIPS:
		return 0x400000
	case ArchAARCH:
		return 0x20000
	default:
		return 0x10000
	}
}

// opcode scrambles an abstract Op into the architecture's opcode byte.
func (a Arch) opcode(op Op) uint8 {
	switch a {
	case ArchAARCH:
		return uint8(op) + 0x20
	case ArchMIPS:
		return uint8(op) ^ 0x5a
	default:
		return uint8(op)
	}
}

// unopcode inverts opcode. The boolean is false for undecodable bytes.
func (a Arch) unopcode(b uint8) (Op, bool) {
	var op Op
	switch a {
	case ArchAARCH:
		if b < 0x20 {
			return 0, false
		}
		op = Op(b - 0x20)
	case ArchMIPS:
		op = Op(b ^ 0x5a)
	default:
		op = Op(b)
	}
	return op, op.Valid()
}

// Encode writes the architecture encoding of in into dst, which must be at
// least Width bytes.
func (a Arch) Encode(in Instr, dst []byte) {
	_ = dst[Width-1]
	var bo binary.ByteOrder = binary.LittleEndian
	if a == ArchMIPS {
		bo = binary.BigEndian
	}
	if a == ArchAARCH {
		// AArch64 flavor stores the immediate first.
		bo.PutUint32(dst[0:4], uint32(in.Imm))
		dst[4] = a.opcode(in.Op)
		dst[5] = uint8(in.Rd)
		dst[6] = uint8(in.Rs1)
		dst[7] = uint8(in.Rs2)
		return
	}
	dst[0] = a.opcode(in.Op)
	dst[1] = uint8(in.Rd)
	dst[2] = uint8(in.Rs1)
	dst[3] = uint8(in.Rs2)
	bo.PutUint32(dst[4:8], uint32(in.Imm))
}

// Decode decodes one instruction from src. It reports an error for undefined
// opcodes or out-of-range registers, as a disassembler must when walking
// stripped code.
func (a Arch) Decode(src []byte) (Instr, error) {
	if len(src) < Width {
		return Instr{}, fmt.Errorf("isa: truncated instruction: %d bytes", len(src))
	}
	var bo binary.ByteOrder = binary.LittleEndian
	if a == ArchMIPS {
		bo = binary.BigEndian
	}
	var in Instr
	var opByte uint8
	if a == ArchAARCH {
		in.Imm = int32(bo.Uint32(src[0:4]))
		opByte = src[4]
		in.Rd = Reg(src[5])
		in.Rs1 = Reg(src[6])
		in.Rs2 = Reg(src[7])
	} else {
		opByte = src[0]
		in.Rd = Reg(src[1])
		in.Rs1 = Reg(src[2])
		in.Rs2 = Reg(src[3])
		in.Imm = int32(bo.Uint32(src[4:8]))
	}
	op, ok := a.unopcode(opByte)
	if !ok {
		return Instr{}, fmt.Errorf("isa: %s: undefined opcode %#02x", a, opByte)
	}
	in.Op = op
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return Instr{}, fmt.Errorf("isa: %s: register out of range in %#02x", a, opByte)
	}
	return in, nil
}

// EncodeAll encodes a sequence of instructions back to back.
func (a Arch) EncodeAll(ins []Instr) []byte {
	out := make([]byte, len(ins)*Width)
	for i, in := range ins {
		a.Encode(in, out[i*Width:])
	}
	return out
}

// DecodeAll decodes len(src)/Width instructions. Decoding stops at the first
// undecodable instruction and returns what was decoded with the error.
func (a Arch) DecodeAll(src []byte) ([]Instr, error) {
	n := len(src) / Width
	out := make([]Instr, 0, n)
	for i := 0; i < n; i++ {
		in, err := a.Decode(src[i*Width:])
		if err != nil {
			return out, err
		}
		out = append(out, in)
	}
	return out, nil
}
