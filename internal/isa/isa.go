// Package isa defines the instruction set used by all binaries in the
// synthetic firmware corpus, together with per-architecture binary encodings.
//
// The instruction set is a small fixed-width RISC: 16 general-purpose
// registers, 8-byte instructions, load/store architecture. Three
// "architectures" encode the same abstract instructions with different byte
// layouts and opcode numberings, standing in for the ARM, AArch64 and MIPS
// firmware of the paper's dataset: the analysis pipeline must carry a decoder
// per architecture exactly as a real firmware analyzer must.
package isa

import "fmt"

// Reg is a register number. R0..R3 carry arguments and R0 the return value;
// SP is the stack pointer, LR the link register, AT an assembler scratch.
type Reg uint8

// Register assignments of the calling convention.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	GP      // global pointer, reserved
	SP      // stack pointer
	LR      // link register
	AT      // assembler temporary
	NumRegs = 16
)

func (r Reg) String() string {
	switch r {
	case GP:
		return "gp"
	case SP:
		return "sp"
	case LR:
		return "lr"
	case AT:
		return "at"
	default:
		return fmt.Sprintf("r%d", int(r))
	}
}

// Op is an abstract operation, independent of architecture encoding.
type Op uint8

// Operations. Control flow uses absolute addresses in Imm.
const (
	OpNop   Op = iota
	OpMovi     // Rd = Imm
	OpMov      // Rd = Rs1
	OpAdd      // Rd = Rs1 + Rs2
	OpSub      // Rd = Rs1 - Rs2
	OpMul      // Rd = Rs1 * Rs2
	OpDiv      // Rd = Rs1 / Rs2 (0 if divisor 0)
	OpAnd      // Rd = Rs1 & Rs2
	OpOr       // Rd = Rs1 | Rs2
	OpXor      // Rd = Rs1 ^ Rs2
	OpShl      // Rd = Rs1 << (Rs2 & 63)
	OpShr      // Rd = Rs1 >> (Rs2 & 63)
	OpAddi     // Rd = Rs1 + Imm
	OpLdb      // Rd = mem8[Rs1 + Imm]
	OpLdw      // Rd = mem32[Rs1 + Imm]
	OpStb      // mem8[Rs1 + Imm] = Rs2
	OpStw      // mem32[Rs1 + Imm] = Rs2
	OpBeq      // if Rs1 == Rs2 goto Imm
	OpBne      // if Rs1 != Rs2 goto Imm
	OpBlt      // if Rs1 <  Rs2 goto Imm (signed)
	OpBge      // if Rs1 >= Rs2 goto Imm (signed)
	OpJmp      // goto Imm
	OpJr       // goto Rs1 (jump tables)
	OpCall     // LR = next; goto Imm
	OpCallr    // LR = next; goto Rs1 (function pointers)
	OpRet      // goto LR
	OpPush     // SP -= 4; mem32[SP] = Rs1
	OpPop      // Rd = mem32[SP]; SP += 4
	OpSys      // system/library primitive, number in Imm
	OpTramp    // PLT trampoline: goto mem32[Imm] (GOT slot)
	numOps
)

var opNames = [...]string{
	OpNop: "nop", OpMovi: "movi", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpAddi: "addi", OpLdb: "ldb", OpLdw: "ldw",
	OpStb: "stb", OpStw: "stw", OpBeq: "beq", OpBne: "bne", OpBlt: "blt",
	OpBge: "bge", OpJmp: "jmp", OpJr: "jr", OpCall: "call", OpCallr: "callr",
	OpRet: "ret", OpPush: "push", OpPop: "pop", OpSys: "sys", OpTramp: "tramp",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o < numOps }

// Width is the fixed encoded size of every instruction, in bytes.
const Width = 8

// WordSize is the machine word and pointer size in bytes.
const WordSize = 4

// Instr is one decoded instruction. Imm holds absolute addresses for control
// flow, displacements for memory operations, and literals for OpMovi/OpAddi.
type Instr struct {
	Op       Op
	Rd       Reg
	Rs1, Rs2 Reg
	Imm      int32
}

func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpRet:
		return in.Op.String()
	case OpMovi:
		return fmt.Sprintf("movi %s, %d", in.Rd, in.Imm)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", in.Rd, in.Rs1)
	case OpAddi:
		return fmt.Sprintf("addi %s, %s, %d", in.Rd, in.Rs1, in.Imm)
	case OpLdb, OpLdw:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpStb, OpStw:
		return fmt.Sprintf("%s [%s%+d], %s", in.Op, in.Rs1, in.Imm, in.Rs2)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s %s, %s, 0x%x", in.Op, in.Rs1, in.Rs2, uint32(in.Imm))
	case OpJmp, OpCall:
		return fmt.Sprintf("%s 0x%x", in.Op, uint32(in.Imm))
	case OpJr, OpCallr, OpPush:
		return fmt.Sprintf("%s %s", in.Op, in.Rs1)
	case OpPop:
		return fmt.Sprintf("pop %s", in.Rd)
	case OpSys:
		return fmt.Sprintf("sys %d", in.Imm)
	case OpTramp:
		return fmt.Sprintf("tramp [0x%x]", uint32(in.Imm))
	default:
		return fmt.Sprintf("%s %s, %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm)
	}
}

// IsBranch reports whether the instruction is a conditional branch.
func (in Instr) IsBranch() bool {
	switch in.Op {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsCall reports whether the instruction transfers control to a function.
func (in Instr) IsCall() bool { return in.Op == OpCall || in.Op == OpCallr }

// EndsBlock reports whether the instruction terminates a basic block.
func (in Instr) EndsBlock() bool {
	switch in.Op {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpJr, OpRet, OpTramp:
		return true
	}
	return false
}
