// Package emu executes binaries of the synthetic corpus instruction by
// instruction. It is the reproduction's stand-in for firmware rehosting
// (paper Appendix A): generated binaries are run under emulation both to
// validate the compiler and to verify inferred intermediate taint sources
// dynamically, by observing what a candidate function reads and returns.
package emu

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fits/internal/binimg"
	"fits/internal/isa"
)

// Execution limits and the emulated stack placement.
const (
	DefaultMaxSteps = 1 << 20
	StackTop        = 0xff000000
	stackSize       = 1 << 20
)

// Execution errors.
var (
	ErrMaxSteps  = errors.New("emu: step limit exceeded")
	ErrBadAccess = errors.New("emu: bad memory access")
	ErrBadPC     = errors.New("emu: program counter outside text")
	ErrNoHandler = errors.New("emu: unhandled import")
	ErrHalted    = errors.New("emu: machine halted")
)

// ImportFunc emulates one library function natively: it may read and write
// machine state and must leave any result in r0.
type ImportFunc func(m *Machine) error

// Machine is a single-binary execution context with natively emulated
// imports.
type Machine struct {
	Bin      *binimg.Binary
	Regs     [isa.NumRegs]uint32
	PC       uint32
	MaxSteps int
	Steps    int

	// Imports maps import names to native implementations.
	Imports map[string]ImportFunc
	// Sys handles OpSys primitives by number.
	Sys func(m *Machine, num int32) error

	mem     map[uint32]byte
	halted  bool
	retSent uint32 // sentinel return address that terminates execution
}

// New prepares a machine for bin with an empty import table.
func New(bin *binimg.Binary) *Machine {
	m := &Machine{
		Bin:      bin,
		MaxSteps: DefaultMaxSteps,
		Imports:  map[string]ImportFunc{},
		mem:      map[uint32]byte{},
		retSent:  0xdeadbeec,
	}
	m.Regs[isa.SP] = StackTop
	return m
}

// LoadByte reads one byte of emulated memory, falling back to section
// contents for addresses never written.
func (m *Machine) LoadByte(addr uint32) (byte, error) {
	if b, ok := m.mem[addr]; ok {
		return b, nil
	}
	if b, ok := m.Bin.ByteAt(addr); ok {
		return b, nil
	}
	// bss and stack read as zero.
	if m.Bin.SectionOf(addr) == "bss" || m.inStack(addr) {
		return 0, nil
	}
	return 0, fmt.Errorf("%w: read 0x%x", ErrBadAccess, addr)
}

func (m *Machine) inStack(addr uint32) bool {
	return addr > StackTop-stackSize && addr <= StackTop
}

// StoreByte writes one byte of emulated memory.
func (m *Machine) StoreByte(addr uint32, v byte) error {
	switch {
	case m.Bin.SectionOf(addr) == "text", m.Bin.SectionOf(addr) == "rodata":
		return fmt.Errorf("%w: write to read-only 0x%x", ErrBadAccess, addr)
	case m.Bin.SectionOf(addr) != "" || m.inStack(addr):
		m.mem[addr] = v
		return nil
	}
	return fmt.Errorf("%w: write 0x%x", ErrBadAccess, addr)
}

// LoadWord reads a little-endian word.
func (m *Machine) LoadWord(addr uint32) (uint32, error) {
	var buf [isa.WordSize]byte
	for i := range buf {
		b, err := m.LoadByte(addr + uint32(i))
		if err != nil {
			return 0, err
		}
		buf[i] = b
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// StoreWord writes a little-endian word.
func (m *Machine) StoreWord(addr uint32, v uint32) error {
	var buf [isa.WordSize]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	for i := range buf {
		if err := m.StoreByte(addr+uint32(i), buf[i]); err != nil {
			return err
		}
	}
	return nil
}

// StoreBytes copies a buffer into emulated memory.
func (m *Machine) StoreBytes(addr uint32, data []byte) error {
	for i, b := range data {
		if err := m.StoreByte(addr+uint32(i), b); err != nil {
			return err
		}
	}
	return nil
}

// ReadCString reads a NUL-terminated string from emulated memory, bounded.
func (m *Machine) ReadCString(addr uint32, max int) (string, error) {
	var out []byte
	for i := 0; i < max; i++ {
		b, err := m.LoadByte(addr + uint32(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out), nil
}

// CallFunction runs the function at addr with up to four arguments and
// returns r0 on completion. Machine state persists across calls, so globals
// written by one call are visible to the next.
func (m *Machine) CallFunction(addr uint32, args ...uint32) (uint32, error) {
	if len(args) > 4 {
		return 0, fmt.Errorf("emu: %d args; max 4", len(args))
	}
	for i, a := range args {
		m.Regs[i] = a
	}
	m.Regs[isa.LR] = m.retSent
	m.PC = addr
	m.halted = false
	if err := m.run(); err != nil {
		return 0, err
	}
	return m.Regs[isa.R0], nil
}

func (m *Machine) run() error {
	for {
		if m.PC == m.retSent {
			return nil
		}
		if m.halted {
			return ErrHalted
		}
		if m.Steps >= m.MaxSteps {
			return ErrMaxSteps
		}
		m.Steps++
		in, err := m.Bin.InstrAt(m.PC)
		if err != nil {
			return fmt.Errorf("%w: 0x%x", ErrBadPC, m.PC)
		}
		if err := m.step(in); err != nil {
			return fmt.Errorf("at 0x%x (%v): %w", m.PC, in, err)
		}
	}
}

// Halt stops execution after the current instruction.
func (m *Machine) Halt() { m.halted = true }

func (m *Machine) step(in isa.Instr) error {
	next := m.PC + isa.Width
	r := &m.Regs
	switch in.Op {
	case isa.OpNop:
	case isa.OpMovi:
		r[in.Rd] = uint32(in.Imm)
	case isa.OpMov:
		r[in.Rd] = r[in.Rs1]
	case isa.OpAdd:
		r[in.Rd] = r[in.Rs1] + r[in.Rs2]
	case isa.OpSub:
		r[in.Rd] = r[in.Rs1] - r[in.Rs2]
	case isa.OpMul:
		r[in.Rd] = r[in.Rs1] * r[in.Rs2]
	case isa.OpDiv:
		if r[in.Rs2] == 0 {
			r[in.Rd] = 0
		} else {
			r[in.Rd] = uint32(int32(r[in.Rs1]) / int32(r[in.Rs2]))
		}
	case isa.OpAnd:
		r[in.Rd] = r[in.Rs1] & r[in.Rs2]
	case isa.OpOr:
		r[in.Rd] = r[in.Rs1] | r[in.Rs2]
	case isa.OpXor:
		r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
	case isa.OpShl:
		r[in.Rd] = r[in.Rs1] << (r[in.Rs2] & 31)
	case isa.OpShr:
		r[in.Rd] = r[in.Rs1] >> (r[in.Rs2] & 31)
	case isa.OpAddi:
		r[in.Rd] = r[in.Rs1] + uint32(in.Imm)
	case isa.OpLdb:
		b, err := m.LoadByte(r[in.Rs1] + uint32(in.Imm))
		if err != nil {
			return err
		}
		r[in.Rd] = uint32(b)
	case isa.OpLdw:
		w, err := m.LoadWord(r[in.Rs1] + uint32(in.Imm))
		if err != nil {
			return err
		}
		r[in.Rd] = w
	case isa.OpStb:
		if err := m.StoreByte(r[in.Rs1]+uint32(in.Imm), byte(r[in.Rs2])); err != nil {
			return err
		}
	case isa.OpStw:
		if err := m.StoreWord(r[in.Rs1]+uint32(in.Imm), r[in.Rs2]); err != nil {
			return err
		}
	case isa.OpBeq:
		if r[in.Rs1] == r[in.Rs2] {
			next = uint32(in.Imm)
		}
	case isa.OpBne:
		if r[in.Rs1] != r[in.Rs2] {
			next = uint32(in.Imm)
		}
	case isa.OpBlt:
		if int32(r[in.Rs1]) < int32(r[in.Rs2]) {
			next = uint32(in.Imm)
		}
	case isa.OpBge:
		if int32(r[in.Rs1]) >= int32(r[in.Rs2]) {
			next = uint32(in.Imm)
		}
	case isa.OpJmp:
		next = uint32(in.Imm)
	case isa.OpJr:
		next = r[in.Rs1]
	case isa.OpCall:
		r[isa.LR] = next
		next = uint32(in.Imm)
	case isa.OpCallr:
		r[isa.LR] = next
		next = r[in.Rs1]
	case isa.OpRet:
		next = r[isa.LR]
	case isa.OpPush:
		r[isa.SP] -= isa.WordSize
		if err := m.StoreWord(r[isa.SP], r[in.Rs1]); err != nil {
			return err
		}
	case isa.OpPop:
		w, err := m.LoadWord(r[isa.SP])
		if err != nil {
			return err
		}
		r[in.Rd] = w
		r[isa.SP] += isa.WordSize
	case isa.OpSys:
		if m.Sys == nil {
			return fmt.Errorf("emu: no sys handler for %d", in.Imm)
		}
		if err := m.Sys(m, in.Imm); err != nil {
			return err
		}
	case isa.OpTramp:
		im, ok := m.Bin.ImportForGOT(uint32(in.Imm))
		if !ok {
			return fmt.Errorf("%w: no import for GOT 0x%x", ErrNoHandler, in.Imm)
		}
		fn, ok := m.Imports[im.Name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoHandler, im.Name)
		}
		if err := fn(m); err != nil {
			return err
		}
		next = r[isa.LR] // trampoline returns directly to the caller
	default:
		return fmt.Errorf("emu: cannot execute %v", in.Op)
	}
	m.PC = next
	return nil
}
