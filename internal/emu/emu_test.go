package emu

import (
	"errors"
	"testing"

	"fits/internal/binimg"
	"fits/internal/isa"
)

// makeBin assembles a tiny ARM-flavor binary from instructions.
func makeBin(ins []isa.Instr) *binimg.Binary {
	return &binimg.Binary{
		Name:    "t",
		Arch:    isa.ArchARM,
		Text:    binimg.Section{Addr: 0x1000, Data: isa.ArchARM.EncodeAll(ins)},
		Rodata:  binimg.Section{Addr: 0x2000, Data: []byte("hi\x00")},
		Data:    binimg.Section{Addr: 0x3000, Data: make([]byte, 8)},
		BssAddr: 0x4000,
		BssSize: 32,
	}
}

func TestSimpleExecution(t *testing.T) {
	m := New(makeBin([]isa.Instr{
		{Op: isa.OpMovi, Rd: isa.R1, Imm: 20},
		{Op: isa.OpMovi, Rd: isa.R2, Imm: 22},
		{Op: isa.OpAdd, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpRet},
	}))
	got, err := m.CallFunction(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("got %d", got)
	}
	if m.Steps != 4 {
		t.Errorf("steps = %d", m.Steps)
	}
}

func TestMemoryRules(t *testing.T) {
	m := New(makeBin([]isa.Instr{{Op: isa.OpRet}}))
	// Rodata readable, not writable.
	if b, err := m.LoadByte(0x2000); err != nil || b != 'h' {
		t.Errorf("rodata read = %v, %v", b, err)
	}
	if err := m.StoreByte(0x2000, 1); err == nil {
		t.Error("rodata write should fail")
	}
	if err := m.StoreByte(0x1000, 1); err == nil {
		t.Error("text write should fail")
	}
	// Bss reads as zero, then remembers writes.
	if b, err := m.LoadByte(0x4000); err != nil || b != 0 {
		t.Errorf("bss read = %v, %v", b, err)
	}
	if err := m.StoreByte(0x4000, 9); err != nil {
		t.Fatal(err)
	}
	if b, _ := m.LoadByte(0x4000); b != 9 {
		t.Errorf("bss readback = %d", b)
	}
	// Stack works.
	if err := m.StoreWord(StackTop-8, 0x12345678); err != nil {
		t.Fatal(err)
	}
	if w, _ := m.LoadWord(StackTop - 8); w != 0x12345678 {
		t.Errorf("stack readback = %#x", w)
	}
	// Unmapped fails both ways.
	if _, err := m.LoadByte(0x900000); err == nil {
		t.Error("unmapped read should fail")
	}
	if err := m.StoreByte(0x900000, 1); err == nil {
		t.Error("unmapped write should fail")
	}
}

func TestStepLimit(t *testing.T) {
	m := New(makeBin([]isa.Instr{{Op: isa.OpJmp, Imm: 0x1000}}))
	m.MaxSteps = 100
	_, err := m.CallFunction(0x1000)
	if !errors.Is(err, ErrMaxSteps) {
		t.Errorf("err = %v", err)
	}
}

func TestBadPC(t *testing.T) {
	m := New(makeBin([]isa.Instr{{Op: isa.OpJmp, Imm: 0x7777}}))
	if _, err := m.CallFunction(0x1000); !errors.Is(err, ErrBadPC) {
		t.Errorf("err = %v", err)
	}
}

func TestUnhandledImport(t *testing.T) {
	bin := makeBin([]isa.Instr{{Op: isa.OpTramp, Imm: 0x3000}})
	bin.Imports = []binimg.Import{{Name: "recv", Stub: 0x1000, GOT: 0x3000}}
	m := New(bin)
	if _, err := m.CallFunction(0x1000); !errors.Is(err, ErrNoHandler) {
		t.Errorf("err = %v", err)
	}
	// Unknown GOT slot also fails.
	bin2 := makeBin([]isa.Instr{{Op: isa.OpTramp, Imm: 0x3004}})
	bin2.Imports = []binimg.Import{{Name: "recv", Stub: 0x1000, GOT: 0x3000}}
	if _, err := New(bin2).CallFunction(0x1000); !errors.Is(err, ErrNoHandler) {
		t.Errorf("err = %v", err)
	}
}

func TestImportDispatch(t *testing.T) {
	bin := makeBin([]isa.Instr{
		{Op: isa.OpPush, Rs1: isa.LR},
		{Op: isa.OpMovi, Rd: isa.R0, Imm: 5},
		{Op: isa.OpCall, Imm: 0x1000 + 5*isa.Width}, // stub
		{Op: isa.OpPop, Rd: isa.LR},
		{Op: isa.OpRet},
		{Op: isa.OpTramp, Imm: 0x3000},
	})
	bin.Imports = []binimg.Import{{Name: "double", Stub: 0x1000 + 5*isa.Width, GOT: 0x3000}}
	m := New(bin)
	m.Imports["double"] = func(m *Machine) error {
		m.Regs[isa.R0] *= 2
		return nil
	}
	got, err := m.CallFunction(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("got %d", got)
	}
}

func TestSysHandler(t *testing.T) {
	m := New(makeBin([]isa.Instr{{Op: isa.OpSys, Imm: 7}, {Op: isa.OpRet}}))
	if _, err := m.CallFunction(0x1000); err == nil {
		t.Error("sys without handler should fail")
	}
	m = New(makeBin([]isa.Instr{{Op: isa.OpSys, Imm: 7}, {Op: isa.OpRet}}))
	var gotNum int32
	m.Sys = func(m *Machine, num int32) error {
		gotNum = num
		m.Regs[isa.R0] = 1
		return nil
	}
	v, err := m.CallFunction(0x1000)
	if err != nil || v != 1 || gotNum != 7 {
		t.Errorf("v=%d num=%d err=%v", v, gotNum, err)
	}
}

func TestHalt(t *testing.T) {
	m := New(makeBin([]isa.Instr{{Op: isa.OpSys, Imm: 1}, {Op: isa.OpJmp, Imm: 0x1000}}))
	m.Sys = func(m *Machine, num int32) error {
		m.Halt()
		return nil
	}
	if _, err := m.CallFunction(0x1000); !errors.Is(err, ErrHalted) {
		t.Errorf("err = %v", err)
	}
}

func TestReadCString(t *testing.T) {
	m := New(makeBin([]isa.Instr{{Op: isa.OpRet}}))
	s, err := m.ReadCString(0x2000, 64)
	if err != nil || s != "hi" {
		t.Errorf("s=%q err=%v", s, err)
	}
	// Bounded read stops at max.
	s, err = m.ReadCString(0x2000, 1)
	if err != nil || s != "h" {
		t.Errorf("bounded s=%q err=%v", s, err)
	}
}

func TestStoreBytesAndDivByZero(t *testing.T) {
	m := New(makeBin([]isa.Instr{
		{Op: isa.OpMovi, Rd: isa.R1, Imm: 10},
		{Op: isa.OpMovi, Rd: isa.R2, Imm: 0},
		{Op: isa.OpDiv, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.OpRet},
	}))
	if err := m.StoreBytes(0x4000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if b, _ := m.LoadByte(0x4002); b != 3 {
		t.Errorf("byte = %d", b)
	}
	got, err := m.CallFunction(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("div by zero = %d, want 0", got)
	}
}

func TestTooManyArgs(t *testing.T) {
	m := New(makeBin([]isa.Instr{{Op: isa.OpRet}}))
	if _, err := m.CallFunction(0x1000, 1, 2, 3, 4, 5); err == nil {
		t.Error("expected error for 5 args")
	}
}
