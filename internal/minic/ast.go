// Package minic is a small compiled language used to author the programs of
// the synthetic firmware corpus. It compiles structured code (functions,
// loops, branches, memory access, direct and table-indirect calls) to the
// corpus ISA and links executables and shared libraries in the binimg
// container format.
//
// The language exists so that every binary the analysis pipeline sees was
// genuinely produced by a compiler: function boundaries, calling conventions,
// string placement and pointer tables all arise from code generation, not
// from hand-written analysis-friendly fixtures.
package minic

import "fmt"

// Program is a compilation unit: one executable or shared library.
type Program struct {
	Name    string // output file name, e.g. "httpd" or "libc.so"
	Library bool   // libraries export every function marked Exported
	Funcs   []*Func
	Globals []*Global
}

// Func is a function definition. Parameters arrive in r0..r3 and are spilled
// to stack slots by the prologue; the return value leaves in r0.
type Func struct {
	Name     string
	NParams  int
	Exported bool // emitted as a dynamic symbol
	Body     []Stmt
}

// Global is a data or bss object. When Init is nil the object is placed in
// bss; otherwise in the data section. Ptrs patches link-time addresses
// (function pointers for dispatch tables, string addresses) into Init.
type Global struct {
	Name string
	Size int
	Init []byte
	Ptrs []PtrInit
}

// PtrInit patches one pointer slot of a global at link time. Exactly one of
// FuncName and Str must be set.
type PtrInit struct {
	Off      int
	FuncName string
	Str      string
}

// Stmt is a statement.
type Stmt interface{ isStmt() }

// Let declares a local variable and initializes it.
type Let struct {
	Name string
	E    Expr
}

// Assign overwrites a local or parameter.
type Assign struct {
	Name string
	E    Expr
}

// StoreStmt writes Size bytes (1 or the word size) of Val to Addr.
type StoreStmt struct {
	Size int
	Addr Expr
	Val  Expr
}

// If branches on a comparison.
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// While loops on a comparison.
type While struct {
	Cond Cond
	Body []Stmt
}

// Switch dispatches on a dense 0..len(Cases)-1 selector through a jump
// table materialized in rodata; out-of-range selectors fall to Default.
// Compiles to an indirect jump (jr), the pattern that forces CFG recovery
// to resolve jump tables.
type Switch struct {
	E       Expr
	Cases   [][]Stmt
	Default []Stmt
}

// Return leaves the function; E may be nil to preserve r0 (used by
// primitives whose result is produced by a sys instruction).
type Return struct{ E Expr }

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct{ E Expr }

// Syscall emits a system primitive; the result is left in r0 by convention.
type Syscall struct{ Num int32 }

func (Let) isStmt()       {}
func (Switch) isStmt()    {}
func (Assign) isStmt()    {}
func (StoreStmt) isStmt() {}
func (If) isStmt()        {}
func (While) isStmt()     {}
func (Return) isStmt()    {}
func (ExprStmt) isStmt()  {}
func (Syscall) isStmt()   {}

// CmpOp is a comparison operator for conditions.
type CmpOp uint8

// Comparison operators (signed).
const (
	Eq CmpOp = iota
	Ne
	Lt
	Ge
	Gt // compiled as swapped Lt
	Le // compiled as swapped Ge
)

// Cond is a branch condition comparing two expressions.
type Cond struct {
	Op   CmpOp
	L, R Expr
}

// Truthy builds the condition e != 0.
func Truthy(e Expr) Cond { return Cond{Op: Ne, L: e, R: Int(0)} }

// Expr is an expression.
type Expr interface{ isExpr() }

// Int is an integer literal.
type Int int32

// Str is the address of an interned NUL-terminated rodata string.
type Str string

// Var reads a local or parameter.
type Var string

// GlobalRef is the address of a global object.
type GlobalRef string

// FuncAddr is the link-time address of a function (for pointer tables built
// at runtime; static tables use Global.Ptrs).
type FuncAddr string

// LoadExpr reads Size bytes at Addr.
type LoadExpr struct {
	Size int
	Addr Expr
}

// BinKind is an arithmetic operator.
type BinKind uint8

// Arithmetic operators.
const (
	OpAdd BinKind = iota
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
)

// Bin combines two expressions arithmetically.
type Bin struct {
	Op   BinKind
	L, R Expr
}

// Call invokes a function by name. Names not defined in the program become
// imports resolved through PLT stubs at link time.
type Call struct {
	Name string
	Args []Expr
}

// CallInd loads a function pointer from a global table and calls it:
// (*table[Index])(Args...). This is the dispatch pattern whose resolution
// requires the under-constrained symbolic execution stage.
type CallInd struct {
	Table string
	Index Expr
	Args  []Expr
}

func (Int) isExpr()       {}
func (Str) isExpr()       {}
func (Var) isExpr()       {}
func (GlobalRef) isExpr() {}
func (FuncAddr) isExpr()  {}
func (LoadExpr) isExpr()  {}
func (Bin) isExpr()       {}
func (Call) isExpr()      {}
func (CallInd) isExpr()   {}

// Convenience constructors keep generator code readable.

// Add returns l + r.
func Add(l, r Expr) Expr { return Bin{Op: OpAdd, L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return Bin{Op: OpSub, L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return Bin{Op: OpMul, L: l, R: r} }

// LoadW reads a word at addr.
func LoadW(addr Expr) Expr { return LoadExpr{Size: 4, Addr: addr} }

// LoadB reads a byte at addr.
func LoadB(addr Expr) Expr { return LoadExpr{Size: 1, Addr: addr} }

// Validate checks structural invariants of the program before compilation.
func (p *Program) Validate() error {
	seen := map[string]bool{}
	for _, f := range p.Funcs {
		if f.Name == "" {
			return fmt.Errorf("minic: %s: function with empty name", p.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("minic: %s: duplicate function %q", p.Name, f.Name)
		}
		seen[f.Name] = true
		if f.NParams < 0 || f.NParams > 4 {
			return fmt.Errorf("minic: %s: %s has %d params; max 4", p.Name, f.Name, f.NParams)
		}
	}
	gseen := map[string]bool{}
	for _, g := range p.Globals {
		if gseen[g.Name] {
			return fmt.Errorf("minic: %s: duplicate global %q", p.Name, g.Name)
		}
		gseen[g.Name] = true
		if g.Init != nil && len(g.Init) != g.Size {
			return fmt.Errorf("minic: %s: global %q init size %d != size %d", p.Name, g.Name, len(g.Init), g.Size)
		}
		for _, pi := range g.Ptrs {
			if pi.Off < 0 || pi.Off+4 > g.Size {
				return fmt.Errorf("minic: %s: global %q pointer offset %d out of range", p.Name, g.Name, pi.Off)
			}
			if (pi.FuncName == "") == (pi.Str == "") {
				return fmt.Errorf("minic: %s: global %q pointer init must set exactly one of func/str", p.Name, g.Name)
			}
		}
	}
	return nil
}
