package minic

import (
	"fmt"

	"fits/internal/isa"
)

// relInstr is an instruction with unresolved references. Exactly one of the
// reference fields may be set; the linker patches Imm accordingly.
type relInstr struct {
	in isa.Instr

	// localTarget is a body-relative instruction index for branches and
	// jumps within the function; -1 when unused.
	localTarget int

	callRef string // call target by name: local function or import
	fnRef   string // movi of a function address
	strRef  string // movi of an interned string address
	glbRef  string // movi of a global object address
	// jtRef1 is a 1-based jump-table id whose rodata address patches Imm;
	// 0 means unused.
	jtRef1 int
}

// compiledFunc is the output of code generation for one function.
type compiledFunc struct {
	fn  *Func
	ins []relInstr
	// tables holds switch jump tables: per table, the instruction indexes
	// (function-relative) of each case entry.
	tables [][]int
}

// funcCompiler holds per-function code generation state.
type funcCompiler struct {
	prog    *Program
	fn      *Func
	body    []relInstr
	tables  [][]int          // body-relative case entry indexes per switch
	slots   map[string]int32 // local/param name -> frame offset
	nextOff int32
	maxEval isa.Reg // highest evaluation register used
	strs    map[string]bool
	err     error
}

const (
	evalBase = isa.R4 // first evaluation register
	evalTop  = isa.R11
)

func (fc *funcCompiler) fail(format string, args ...any) {
	if fc.err == nil {
		fc.err = fmt.Errorf("minic: %s: %s: %s", fc.prog.Name, fc.fn.Name, fmt.Sprintf(format, args...))
	}
}

func (fc *funcCompiler) emit(in isa.Instr) int {
	fc.body = append(fc.body, relInstr{in: in, localTarget: -1})
	return len(fc.body) - 1
}

func (fc *funcCompiler) emitRel(ri relInstr) int {
	fc.body = append(fc.body, ri)
	return len(fc.body) - 1
}

func (fc *funcCompiler) slot(name string) (int32, bool) {
	off, ok := fc.slots[name]
	return off, ok
}

func (fc *funcCompiler) addSlot(name string) int32 {
	off := fc.nextOff
	fc.slots[name] = off
	fc.nextOff += isa.WordSize
	return off
}

// evalReg returns the evaluation register for a depth, failing on overflow.
func (fc *funcCompiler) evalReg(depth int) isa.Reg {
	r := evalBase + isa.Reg(depth)
	if r > evalTop {
		fc.fail("expression too deep (depth %d)", depth)
		return evalTop
	}
	if r > fc.maxEval {
		fc.maxEval = r
	}
	return r
}

var binOpMap = map[BinKind]isa.Op{
	OpAdd: isa.OpAdd, OpSub: isa.OpSub, OpMul: isa.OpMul, OpDiv: isa.OpDiv,
	OpAnd: isa.OpAnd, OpOr: isa.OpOr, OpXor: isa.OpXor, OpShl: isa.OpShl,
	OpShr: isa.OpShr,
}

// expr generates code leaving the value of e in the evaluation register for
// depth, and returns that register.
func (fc *funcCompiler) expr(e Expr, depth int) isa.Reg {
	rd := fc.evalReg(depth)
	if fc.err != nil {
		return rd
	}
	switch e := e.(type) {
	case Int:
		fc.emit(isa.Instr{Op: isa.OpMovi, Rd: rd, Imm: int32(e)})

	case Str:
		fc.strs[string(e)] = true
		fc.emitRel(relInstr{in: isa.Instr{Op: isa.OpMovi, Rd: rd}, localTarget: -1, strRef: string(e)})

	case Var:
		off, ok := fc.slot(string(e))
		if !ok {
			fc.fail("undefined variable %q", string(e))
			return rd
		}
		fc.emit(isa.Instr{Op: isa.OpLdw, Rd: rd, Rs1: isa.SP, Imm: off})

	case GlobalRef:
		fc.emitRel(relInstr{in: isa.Instr{Op: isa.OpMovi, Rd: rd}, localTarget: -1, glbRef: string(e)})

	case FuncAddr:
		fc.emitRel(relInstr{in: isa.Instr{Op: isa.OpMovi, Rd: rd}, localTarget: -1, fnRef: string(e)})

	case LoadExpr:
		fc.expr(e.Addr, depth)
		op := isa.OpLdw
		if e.Size == 1 {
			op = isa.OpLdb
		}
		fc.emit(isa.Instr{Op: op, Rd: rd, Rs1: rd})

	case Bin:
		fc.expr(e.L, depth)
		rr := fc.expr(e.R, depth+1)
		op, ok := binOpMap[e.Op]
		if !ok {
			fc.fail("unknown binary op %d", e.Op)
			return rd
		}
		fc.emit(isa.Instr{Op: op, Rd: rd, Rs1: rd, Rs2: rr})

	case Call:
		fc.call(e.Name, e.Args, depth)

	case CallInd:
		fc.callInd(e, depth)

	default:
		fc.fail("unknown expression %T", e)
	}
	return rd
}

// call generates a direct call, leaving the result in the depth register.
func (fc *funcCompiler) call(name string, args []Expr, depth int) {
	if len(args) > 4 {
		fc.fail("call %s with %d args; max 4", name, len(args))
		return
	}
	for i, a := range args {
		fc.expr(a, depth+i)
	}
	for i := range args {
		fc.emit(isa.Instr{Op: isa.OpMov, Rd: isa.Reg(i), Rs1: fc.evalReg(depth + i)})
	}
	fc.emitRel(relInstr{in: isa.Instr{Op: isa.OpCall}, localTarget: -1, callRef: name})
	fc.emit(isa.Instr{Op: isa.OpMov, Rd: fc.evalReg(depth), Rs1: isa.R0})
}

// callInd generates a table-indirect call: (*table[index])(args...).
func (fc *funcCompiler) callInd(e CallInd, depth int) {
	if len(e.Args) > 4 {
		fc.fail("indirect call with %d args; max 4", len(e.Args))
		return
	}
	rd := fc.evalReg(depth)
	fc.expr(e.Index, depth)
	// rd = table + index*WordSize; then load the pointer.
	fc.emit(isa.Instr{Op: isa.OpMovi, Rd: isa.AT, Imm: 2})
	fc.emit(isa.Instr{Op: isa.OpShl, Rd: rd, Rs1: rd, Rs2: isa.AT})
	fc.emitRel(relInstr{in: isa.Instr{Op: isa.OpMovi, Rd: isa.AT}, localTarget: -1, glbRef: e.Table})
	fc.emit(isa.Instr{Op: isa.OpAdd, Rd: rd, Rs1: rd, Rs2: isa.AT})
	fc.emit(isa.Instr{Op: isa.OpLdw, Rd: rd, Rs1: rd})
	for i, a := range e.Args {
		fc.expr(a, depth+1+i)
	}
	for i := range e.Args {
		fc.emit(isa.Instr{Op: isa.OpMov, Rd: isa.Reg(i), Rs1: fc.evalReg(depth + 1 + i)})
	}
	fc.emit(isa.Instr{Op: isa.OpCallr, Rs1: rd})
	fc.emit(isa.Instr{Op: isa.OpMov, Rd: rd, Rs1: isa.R0})
}

// branchOps maps a comparison to the branch taken when the comparison is
// FALSE (the usual if-not-goto-else encoding), plus an operand swap flag.
func negBranch(op CmpOp) (isa.Op, bool, error) {
	switch op {
	case Eq:
		return isa.OpBne, false, nil
	case Ne:
		return isa.OpBeq, false, nil
	case Lt:
		return isa.OpBge, false, nil
	case Ge:
		return isa.OpBlt, false, nil
	case Gt: // l > r  <=>  r < l; false-branch: r >= l
		return isa.OpBge, true, nil
	case Le: // l <= r <=>  r >= l; false-branch: r < l
		return isa.OpBlt, true, nil
	}
	return 0, false, fmt.Errorf("unknown comparison %d", op)
}

// cond emits the condition and a branch to a placeholder taken when the
// condition is false; the returned index must be patched with the target.
func (fc *funcCompiler) cond(c Cond) int {
	rl := fc.expr(c.L, 0)
	rr := fc.expr(c.R, 1)
	op, swap, err := negBranch(c.Op)
	if err != nil {
		fc.fail("%v", err)
		return fc.emit(isa.Instr{Op: isa.OpNop})
	}
	if swap {
		rl, rr = rr, rl
	}
	return fc.emitRel(relInstr{in: isa.Instr{Op: op, Rs1: rl, Rs2: rr}, localTarget: 0})
}

// epiloguePlaceholder marks jumps to the shared function epilogue.
const epiloguePlaceholder = -2

func (fc *funcCompiler) stmts(list []Stmt) {
	for _, s := range list {
		fc.stmt(s)
		if fc.err != nil {
			return
		}
	}
}

func (fc *funcCompiler) stmt(s Stmt) {
	switch s := s.(type) {
	case Let:
		if _, exists := fc.slots[s.Name]; exists {
			fc.fail("redeclared variable %q", s.Name)
			return
		}
		r := fc.expr(s.E, 0)
		off := fc.addSlot(s.Name)
		fc.emit(isa.Instr{Op: isa.OpStw, Rs1: isa.SP, Rs2: r, Imm: off})

	case Assign:
		off, ok := fc.slot(s.Name)
		if !ok {
			fc.fail("assignment to undefined variable %q", s.Name)
			return
		}
		r := fc.expr(s.E, 0)
		fc.emit(isa.Instr{Op: isa.OpStw, Rs1: isa.SP, Rs2: r, Imm: off})

	case StoreStmt:
		rv := fc.expr(s.Val, 0)
		ra := fc.expr(s.Addr, 1)
		op := isa.OpStw
		if s.Size == 1 {
			op = isa.OpStb
		}
		fc.emit(isa.Instr{Op: op, Rs1: ra, Rs2: rv})

	case If:
		falseBr := fc.cond(s.Cond)
		fc.stmts(s.Then)
		if len(s.Else) > 0 {
			skipElse := fc.emitRel(relInstr{in: isa.Instr{Op: isa.OpJmp}, localTarget: 0})
			fc.body[falseBr].localTarget = len(fc.body)
			fc.stmts(s.Else)
			fc.body[skipElse].localTarget = len(fc.body)
		} else {
			fc.body[falseBr].localTarget = len(fc.body)
		}

	case While:
		head := len(fc.body)
		exitBr := fc.cond(s.Cond)
		fc.stmts(s.Body)
		back := fc.emitRel(relInstr{in: isa.Instr{Op: isa.OpJmp}, localTarget: 0})
		fc.body[back].localTarget = head
		fc.body[exitBr].localTarget = len(fc.body)

	case Switch:
		n := len(s.Cases)
		if n == 0 {
			fc.stmts(s.Default)
			return
		}
		rd := fc.expr(s.E, 0)
		rb := fc.evalReg(1)
		// Out-of-range selectors take the default.
		fc.emit(isa.Instr{Op: isa.OpMovi, Rd: rb, Imm: 0})
		defBr1 := fc.emitRel(relInstr{in: isa.Instr{Op: isa.OpBlt, Rs1: rd, Rs2: rb}, localTarget: 0})
		fc.emit(isa.Instr{Op: isa.OpMovi, Rd: rb, Imm: int32(n)})
		defBr2 := fc.emitRel(relInstr{in: isa.Instr{Op: isa.OpBge, Rs1: rd, Rs2: rb}, localTarget: 0})
		// Indirect dispatch through the rodata jump table.
		tid := len(fc.tables)
		fc.tables = append(fc.tables, nil)
		fc.emitRel(relInstr{in: isa.Instr{Op: isa.OpMovi, Rd: isa.AT}, localTarget: -1, jtRef1: tid + 1})
		fc.emit(isa.Instr{Op: isa.OpMovi, Rd: rb, Imm: 2})
		fc.emit(isa.Instr{Op: isa.OpShl, Rd: rd, Rs1: rd, Rs2: rb})
		fc.emit(isa.Instr{Op: isa.OpAdd, Rd: rd, Rs1: rd, Rs2: isa.AT})
		fc.emit(isa.Instr{Op: isa.OpLdw, Rd: rd, Rs1: rd})
		fc.emit(isa.Instr{Op: isa.OpJr, Rs1: rd})
		entries := make([]int, n)
		var exits []int
		for k, body := range s.Cases {
			entries[k] = len(fc.body)
			fc.stmts(body)
			if fc.err != nil {
				return
			}
			exits = append(exits, fc.emitRel(relInstr{in: isa.Instr{Op: isa.OpJmp}, localTarget: 0}))
		}
		defaultIdx := len(fc.body)
		fc.body[defBr1].localTarget = defaultIdx
		fc.body[defBr2].localTarget = defaultIdx
		fc.stmts(s.Default)
		end := len(fc.body)
		for _, x := range exits {
			fc.body[x].localTarget = end
		}
		fc.tables[tid] = entries

	case Return:
		if s.E != nil {
			r := fc.expr(s.E, 0)
			fc.emit(isa.Instr{Op: isa.OpMov, Rd: isa.R0, Rs1: r})
		}
		fc.emitRel(relInstr{in: isa.Instr{Op: isa.OpJmp}, localTarget: epiloguePlaceholder})

	case ExprStmt:
		fc.expr(s.E, 0)

	case Syscall:
		fc.emit(isa.Instr{Op: isa.OpSys, Imm: s.Num})

	default:
		fc.fail("unknown statement %T", s)
	}
}

// compileFunc generates the complete instruction list for one function:
// prologue, parameter spills, body, epilogue.
func compileFunc(p *Program, f *Func, strs map[string]bool) (*compiledFunc, error) {
	fc := &funcCompiler{
		prog:  p,
		fn:    f,
		slots: map[string]int32{},
		strs:  strs,
	}
	// Parameters get the first frame slots.
	paramNames := make([]string, f.NParams)
	for i := 0; i < f.NParams; i++ {
		name := fmt.Sprintf("p%d", i)
		paramNames[i] = name
		fc.addSlot(name)
	}
	fc.stmts(f.Body)
	if fc.err != nil {
		return nil, fc.err
	}

	// Prologue: save LR, save used callee-saved registers, open the frame,
	// spill parameters.
	var pro []relInstr
	emitPro := func(in isa.Instr) {
		pro = append(pro, relInstr{in: in, localTarget: -1})
	}
	emitPro(isa.Instr{Op: isa.OpPush, Rs1: isa.LR})
	var saved []isa.Reg
	if fc.maxEval >= evalBase {
		for r := evalBase; r <= fc.maxEval; r++ {
			saved = append(saved, r)
		}
	}
	for _, r := range saved {
		emitPro(isa.Instr{Op: isa.OpPush, Rs1: r})
	}
	frame := fc.nextOff
	if frame > 0 {
		emitPro(isa.Instr{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: -frame})
	}
	for i := range paramNames {
		off := fc.slots[paramNames[i]]
		emitPro(isa.Instr{Op: isa.OpStw, Rs1: isa.SP, Rs2: isa.Reg(i), Imm: off})
	}

	// Epilogue mirrors the prologue.
	var epi []relInstr
	emitEpi := func(in isa.Instr) {
		epi = append(epi, relInstr{in: in, localTarget: -1})
	}
	if frame > 0 {
		emitEpi(isa.Instr{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: frame})
	}
	for i := len(saved) - 1; i >= 0; i-- {
		emitEpi(isa.Instr{Op: isa.OpPop, Rd: saved[i]})
	}
	emitEpi(isa.Instr{Op: isa.OpPop, Rd: isa.LR})
	emitEpi(isa.Instr{Op: isa.OpRet})

	// Assemble: shift body-relative targets past the prologue and bind
	// epilogue jumps.
	ins := make([]relInstr, 0, len(pro)+len(fc.body)+len(epi))
	ins = append(ins, pro...)
	epiStart := len(pro) + len(fc.body)
	for _, ri := range fc.body {
		switch ri.localTarget {
		case -1:
		case epiloguePlaceholder:
			ri.localTarget = epiStart
		default:
			ri.localTarget += len(pro)
		}
		ins = append(ins, ri)
	}
	ins = append(ins, epi...)
	tables := make([][]int, len(fc.tables))
	for i, tb := range fc.tables {
		tables[i] = make([]int, len(tb))
		for j, e := range tb {
			tables[i][j] = e + len(pro)
		}
	}
	ins, tables = peephole(ins, tables)
	return &compiledFunc{fn: f, ins: ins, tables: tables}, nil
}

// peephole removes unconditional jumps to the immediately following
// instruction (the common "return at end of function" pattern), remapping
// branch targets and jump-table entries. Runs to a fixed point since
// removals create new adjacency.
func peephole(ins []relInstr, tables [][]int) ([]relInstr, [][]int) {
	for {
		removed := -1
		for i, ri := range ins {
			if ri.in.Op == isa.OpJmp && ri.localTarget == i+1 {
				removed = i
				break
			}
		}
		if removed < 0 {
			return ins, tables
		}
		out := make([]relInstr, 0, len(ins)-1)
		// newIndex counts kept instructions before an original index; a
		// target equal to the removed index maps to the next kept one.
		newIndex := func(t int) int {
			if t > removed {
				return t - 1
			}
			return t
		}
		for i, ri := range ins {
			if i == removed {
				continue
			}
			if ri.localTarget >= 0 {
				ri.localTarget = newIndex(ri.localTarget)
			}
			out = append(out, ri)
		}
		for _, tb := range tables {
			for j := range tb {
				tb[j] = newIndex(tb[j])
			}
		}
		ins = out
	}
}
