package minic

import (
	"testing"

	"fits/internal/binimg"
	"fits/internal/emu"
	"fits/internal/isa"
)

// buildAndRun links a program for each architecture, runs fn under emulation
// with args, and checks every architecture agrees on the result.
func buildAndRun(t *testing.T, p *Program, fn string, want uint32, args ...uint32) {
	t.Helper()
	for _, arch := range []isa.Arch{isa.ArchARM, isa.ArchAARCH, isa.ArchMIPS} {
		bin, err := Link(p, arch, nil)
		if err != nil {
			t.Fatalf("%v: link: %v", arch, err)
		}
		addr, ok := findFunc(bin, fn)
		if !ok {
			t.Fatalf("%v: function %q not found", arch, fn)
		}
		m := emu.New(bin)
		m.Imports["external"] = func(m *emu.Machine) error {
			m.Regs[isa.R0] = m.Regs[isa.R0] + 1000
			return nil
		}
		got, err := m.CallFunction(addr, args...)
		if err != nil {
			t.Fatalf("%v: run %s: %v", arch, fn, err)
		}
		if got != want {
			t.Errorf("%v: %s(%v) = %d, want %d", arch, fn, args, got, want)
		}
	}
}

func findFunc(bin *binimg.Binary, name string) (uint32, bool) {
	return func() (uint32, bool) {
		for _, f := range bin.Funcs {
			if f.Name == name {
				return f.Addr, true
			}
		}
		return 0, false
	}()
}

func TestReturnConstant(t *testing.T) {
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f", Body: []Stmt{Return{E: Int(41)}},
	}}}
	buildAndRun(t, p, "f", 41)
}

func TestArithmetic(t *testing.T) {
	// (2+3)*4 - 6/2 = 17
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f",
		Body: []Stmt{Return{E: Sub(
			Mul(Add(Int(2), Int(3)), Int(4)),
			Bin{Op: OpDiv, L: Int(6), R: Int(2)},
		)}},
	}}}
	buildAndRun(t, p, "f", 17)
}

func TestBitOps(t *testing.T) {
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f", NParams: 2,
		Body: []Stmt{Return{E: Bin{Op: OpXor,
			L: Bin{Op: OpAnd, L: Var("p0"), R: Var("p1")},
			R: Bin{Op: OpOr, L: Var("p0"), R: Var("p1")},
		}}},
	}}}
	buildAndRun(t, p, "f", 0b0110, 0b1100, 0b1010)
}

func TestShifts(t *testing.T) {
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f", NParams: 1,
		Body: []Stmt{Return{E: Bin{Op: OpShr,
			L: Bin{Op: OpShl, L: Var("p0"), R: Int(4)}, R: Int(2)}}},
	}}}
	buildAndRun(t, p, "f", 20, 5)
}

func TestParamsAndLocals(t *testing.T) {
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f", NParams: 3,
		Body: []Stmt{
			Let{Name: "x", E: Add(Var("p0"), Var("p1"))},
			Let{Name: "y", E: Mul(Var("x"), Var("p2"))},
			Assign{Name: "x", E: Add(Var("x"), Var("y"))},
			Return{E: Var("x")},
		},
	}}}
	// x=1+2=3; y=3*4=12; x=3+12=15
	buildAndRun(t, p, "f", 15, 1, 2, 4)
}

func condFunc(op CmpOp) *Program {
	return &Program{Name: "t", Funcs: []*Func{{
		Name: "f", NParams: 2,
		Body: []Stmt{
			If{Cond: Cond{Op: op, L: Var("p0"), R: Var("p1")},
				Then: []Stmt{Return{E: Int(1)}},
				Else: []Stmt{Return{E: Int(0)}}},
		},
	}}}
}

func TestAllComparisons(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b uint32
		want uint32
	}{
		{Eq, 5, 5, 1}, {Eq, 5, 6, 0},
		{Ne, 5, 6, 1}, {Ne, 5, 5, 0},
		{Lt, 4, 5, 1}, {Lt, 5, 5, 0}, {Lt, 6, 5, 0},
		{Ge, 5, 5, 1}, {Ge, 6, 5, 1}, {Ge, 4, 5, 0},
		{Gt, 6, 5, 1}, {Gt, 5, 5, 0}, {Gt, 4, 5, 0},
		{Le, 5, 5, 1}, {Le, 4, 5, 1}, {Le, 6, 5, 0},
	}
	for _, c := range cases {
		buildAndRun(t, condFunc(c.op), "f", c.want, c.a, c.b)
	}
}

func TestSignedComparison(t *testing.T) {
	// -1 < 1 must hold with signed semantics.
	buildAndRun(t, condFunc(Lt), "f", 1, 0xffffffff, 1)
}

func TestIfWithoutElse(t *testing.T) {
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f", NParams: 1,
		Body: []Stmt{
			Let{Name: "r", E: Int(10)},
			If{Cond: Cond{Op: Gt, L: Var("p0"), R: Int(5)},
				Then: []Stmt{Assign{Name: "r", E: Int(20)}}},
			Return{E: Var("r")},
		},
	}}}
	buildAndRun(t, p, "f", 20, 9)
	buildAndRun(t, p, "f", 10, 3)
}

func TestWhileSum(t *testing.T) {
	// sum of 1..p0
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f", NParams: 1,
		Body: []Stmt{
			Let{Name: "i", E: Int(1)},
			Let{Name: "s", E: Int(0)},
			While{Cond: Cond{Op: Le, L: Var("i"), R: Var("p0")},
				Body: []Stmt{
					Assign{Name: "s", E: Add(Var("s"), Var("i"))},
					Assign{Name: "i", E: Add(Var("i"), Int(1))},
				}},
			Return{E: Var("s")},
		},
	}}}
	buildAndRun(t, p, "f", 55, 10)
	buildAndRun(t, p, "f", 0, 0)
}

func TestRecursionAndCalleeSaved(t *testing.T) {
	// fact(n) = n<=1 ? 1 : n*fact(n-1). The multiplication needs n to
	// survive the recursive call, exercising callee-saved registers.
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "fact", NParams: 1,
		Body: []Stmt{
			If{Cond: Cond{Op: Le, L: Var("p0"), R: Int(1)},
				Then: []Stmt{Return{E: Int(1)}}},
			Return{E: Mul(Var("p0"), Call{Name: "fact", Args: []Expr{Sub(Var("p0"), Int(1))}})},
		},
	}}}
	buildAndRun(t, p, "fact", 120, 5)
}

func TestCrossFunctionCalls(t *testing.T) {
	p := &Program{Name: "t", Funcs: []*Func{
		{Name: "twice", NParams: 1, Body: []Stmt{Return{E: Mul(Var("p0"), Int(2))}}},
		{Name: "f", NParams: 2, Body: []Stmt{
			Return{E: Add(
				Call{Name: "twice", Args: []Expr{Var("p0")}},
				Call{Name: "twice", Args: []Expr{Var("p1")}},
			)},
		}},
	}}
	buildAndRun(t, p, "f", 2*3+2*4, 3, 4)
}

func TestGlobalsDataAndBss(t *testing.T) {
	p := &Program{
		Name: "t",
		Globals: []*Global{
			{Name: "counter", Size: 4}, // bss
			{Name: "table", Size: 8, Init: []byte{7, 0, 0, 0, 9, 0, 0, 0}},
		},
		Funcs: []*Func{{
			Name: "f", NParams: 1,
			Body: []Stmt{
				StoreStmt{Size: 4, Addr: GlobalRef("counter"), Val: Int(5)},
				Return{E: Add(
					LoadW(GlobalRef("counter")),
					LoadW(Add(GlobalRef("table"), Mul(Var("p0"), Int(4)))),
				)},
			},
		}},
	}
	buildAndRun(t, p, "f", 12, 0) // 5 + table[0]=7
	buildAndRun(t, p, "f", 14, 1) // 5 + table[1]=9
}

func TestStringsAndByteAccess(t *testing.T) {
	// strlen over an interned rodata string.
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "strlen_lit",
		Body: []Stmt{
			Let{Name: "s", E: Str("hello")},
			Let{Name: "n", E: Int(0)},
			While{Cond: Truthy(LoadB(Add(Var("s"), Var("n")))),
				Body: []Stmt{Assign{Name: "n", E: Add(Var("n"), Int(1))}}},
			Return{E: Var("n")},
		},
	}}}
	buildAndRun(t, p, "strlen_lit", 5)
}

func TestByteStoreToBss(t *testing.T) {
	p := &Program{
		Name:    "t",
		Globals: []*Global{{Name: "buf", Size: 16}},
		Funcs: []*Func{{
			Name: "f",
			Body: []Stmt{
				StoreStmt{Size: 1, Addr: GlobalRef("buf"), Val: Int('A')},
				StoreStmt{Size: 1, Addr: Add(GlobalRef("buf"), Int(1)), Val: Int('B')},
				Return{E: Add(
					LoadB(GlobalRef("buf")),
					LoadB(Add(GlobalRef("buf"), Int(1))),
				)},
			},
		}},
	}
	buildAndRun(t, p, "f", 'A'+'B')
}

func TestIndirectCallThroughTable(t *testing.T) {
	p := &Program{
		Name: "t",
		Globals: []*Global{{
			Name: "handlers", Size: 8,
			Init: make([]byte, 8),
			Ptrs: []PtrInit{{Off: 0, FuncName: "h0"}, {Off: 4, FuncName: "h1"}},
		}},
		Funcs: []*Func{
			{Name: "h0", NParams: 1, Body: []Stmt{Return{E: Add(Var("p0"), Int(100))}}},
			{Name: "h1", NParams: 1, Body: []Stmt{Return{E: Add(Var("p0"), Int(200))}}},
			{Name: "dispatch", NParams: 2, Body: []Stmt{
				Return{E: CallInd{Table: "handlers", Index: Var("p0"), Args: []Expr{Var("p1")}}},
			}},
		},
	}
	buildAndRun(t, p, "dispatch", 107, 0, 7)
	buildAndRun(t, p, "dispatch", 207, 1, 7)
}

func TestImportCallViaPLT(t *testing.T) {
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f", NParams: 1,
		Body: []Stmt{Return{E: Call{Name: "external", Args: []Expr{Var("p0")}}}},
	}}}
	// The test harness installs "external" as r0+1000.
	buildAndRun(t, p, "f", 1007, 7)

	bin, err := Link(p, isa.ArchARM, []string{"libext.so"})
	if err != nil {
		t.Fatal(err)
	}
	if len(bin.Imports) != 1 || bin.Imports[0].Name != "external" {
		t.Fatalf("imports = %+v", bin.Imports)
	}
	if len(bin.Needed) != 1 || bin.Needed[0] != "libext.so" {
		t.Fatalf("needed = %v", bin.Needed)
	}
	// The stub must be a trampoline through the import's GOT slot.
	in, err := bin.InstrAt(bin.Imports[0].Stub)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.OpTramp || uint32(in.Imm) != bin.Imports[0].GOT {
		t.Errorf("stub = %v", in)
	}
}

func TestFuncAddrOfImportAndLocal(t *testing.T) {
	p := &Program{Name: "t", Funcs: []*Func{
		{Name: "g", Body: []Stmt{Return{E: Int(1)}}},
		{Name: "f", Body: []Stmt{
			Let{Name: "a", E: FuncAddr("g")},
			Let{Name: "b", E: FuncAddr("external")},
			Return{E: Sub(Var("b"), Var("a"))},
		}},
	}}
	bin, err := Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin.Imports) != 1 {
		t.Fatalf("imports = %+v", bin.Imports)
	}
}

func TestSyscallStmt(t *testing.T) {
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f",
		Body: []Stmt{Syscall{Num: 42}, Return{E: nil}},
	}}}
	bin, err := Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(bin)
	m.Sys = func(m *emu.Machine, num int32) error {
		m.Regs[isa.R0] = uint32(num) * 2
		return nil
	}
	addr, _ := findFunc(bin, "f")
	got, err := m.CallFunction(addr)
	if err != nil {
		t.Fatal(err)
	}
	if got != 84 {
		t.Errorf("got %d", got)
	}
}

func TestExportsAndEntry(t *testing.T) {
	p := &Program{Name: "lib", Library: true, Funcs: []*Func{
		{Name: "helper", Exported: false, Body: []Stmt{Return{E: Int(0)}}},
		{Name: "api", Exported: true, Body: []Stmt{Return{E: Int(0)}}},
		{Name: "main", Body: []Stmt{Return{E: Int(0)}}},
	}}
	bin, err := Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin.Exports) != 1 || bin.Exports[0].Name != "api" {
		t.Errorf("exports = %+v", bin.Exports)
	}
	mainAddr, _ := findFunc(bin, "main")
	if bin.Entry != mainAddr {
		t.Errorf("entry = %#x, want main %#x", bin.Entry, mainAddr)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []*Program{
		// undefined variable
		{Name: "t", Funcs: []*Func{{Name: "f", Body: []Stmt{Return{E: Var("nope")}}}}},
		// assignment to undefined variable
		{Name: "t", Funcs: []*Func{{Name: "f", Body: []Stmt{Assign{Name: "x", E: Int(1)}}}}},
		// redeclared variable
		{Name: "t", Funcs: []*Func{{Name: "f", Body: []Stmt{
			Let{Name: "x", E: Int(1)}, Let{Name: "x", E: Int(2)},
		}}}},
		// duplicate function
		{Name: "t", Funcs: []*Func{{Name: "f"}, {Name: "f"}}},
		// too many params
		{Name: "t", Funcs: []*Func{{Name: "f", NParams: 5}}},
		// global init size mismatch
		{Name: "t", Globals: []*Global{{Name: "g", Size: 8, Init: []byte{1}}},
			Funcs: []*Func{{Name: "f"}}},
		// global pointer out of range
		{Name: "t", Globals: []*Global{{Name: "g", Size: 4, Init: make([]byte, 4),
			Ptrs: []PtrInit{{Off: 2, FuncName: "f"}}}},
			Funcs: []*Func{{Name: "f"}}},
		// undefined global reference
		{Name: "t", Funcs: []*Func{{Name: "f", Body: []Stmt{Return{E: LoadW(GlobalRef("gone"))}}}}},
		// pointer init with both fields
		{Name: "t", Globals: []*Global{{Name: "g", Size: 4, Init: make([]byte, 4),
			Ptrs: []PtrInit{{Off: 0, FuncName: "f", Str: "s"}}}},
			Funcs: []*Func{{Name: "f"}}},
		// unknown function in pointer table
		{Name: "t", Globals: []*Global{{Name: "g", Size: 4, Init: make([]byte, 4),
			Ptrs: []PtrInit{{Off: 0, FuncName: "ghost_with_no_call"}}}},
			Funcs: []*Func{{Name: "f"}}},
	}
	for i, p := range cases {
		if _, err := Link(p, isa.ArchARM, nil); err == nil {
			t.Errorf("case %d: expected link error", i)
		}
	}
}

func TestExpressionTooDeep(t *testing.T) {
	deep := Expr(Int(1))
	for i := 0; i < 12; i++ {
		deep = Add(Int(1), deep)
	}
	p := &Program{Name: "t", Funcs: []*Func{{Name: "f", Body: []Stmt{Return{E: deep}}}}}
	if _, err := Link(p, isa.ArchARM, nil); err == nil {
		t.Error("expected depth error")
	}
}

func TestDeterministicLink(t *testing.T) {
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f",
		Body: []Stmt{
			ExprStmt{E: Call{Name: "zeta", Args: nil}},
			ExprStmt{E: Call{Name: "alpha", Args: nil}},
			Let{Name: "s", E: Str("bb")},
			Let{Name: "q", E: Str("aa")},
			Return{E: Int(0)},
		},
	}}}
	a, err := Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Encode()) != string(b.Encode()) {
		t.Error("link output not deterministic")
	}
	// Imports sorted by name.
	if a.Imports[0].Name != "alpha" || a.Imports[1].Name != "zeta" {
		t.Errorf("imports not sorted: %+v", a.Imports)
	}
}

func TestStringInterningViaGlobalPtrs(t *testing.T) {
	p := &Program{
		Name: "t",
		Globals: []*Global{{
			Name: "keys", Size: 4, Init: make([]byte, 4),
			Ptrs: []PtrInit{{Off: 0, Str: "username"}},
		}},
		Funcs: []*Func{{Name: "f", Body: []Stmt{
			// Return the first byte of the string the table points at.
			Return{E: LoadB(LoadW(GlobalRef("keys")))},
		}}},
	}
	buildAndRun(t, p, "f", 'u')
}

func TestSwitchJumpTable(t *testing.T) {
	// switch p0 { case 0: 100; case 1: 200; case 2: p0*7 } default: -1
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "sel", NParams: 1,
		Body: []Stmt{
			Switch{
				E: Var("p0"),
				Cases: [][]Stmt{
					{Return{E: Int(100)}},
					{Return{E: Int(200)}},
					{Return{E: Mul(Var("p0"), Int(7))}},
				},
				Default: []Stmt{Return{E: Int(0xffff)}},
			},
		},
	}}}
	buildAndRun(t, p, "sel", 100, 0)
	buildAndRun(t, p, "sel", 200, 1)
	buildAndRun(t, p, "sel", 14, 2)
	buildAndRun(t, p, "sel", 0xffff, 3)          // past the table
	buildAndRun(t, p, "sel", 0xffff, 0x80000000) // negative selector
}

func TestSwitchFallThroughCases(t *testing.T) {
	// Cases without Return jump to the end of the switch.
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f", NParams: 1,
		Body: []Stmt{
			Let{Name: "x", E: Int(1)},
			Switch{
				E: Var("p0"),
				Cases: [][]Stmt{
					{Assign{Name: "x", E: Int(10)}},
					{Assign{Name: "x", E: Int(20)}},
				},
				Default: []Stmt{Assign{Name: "x", E: Int(30)}},
			},
			Return{E: Add(Var("x"), Int(5))},
		},
	}}}
	buildAndRun(t, p, "f", 15, 0)
	buildAndRun(t, p, "f", 25, 1)
	buildAndRun(t, p, "f", 35, 9)
}

func TestEmptySwitch(t *testing.T) {
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f", NParams: 1,
		Body: []Stmt{
			Switch{E: Var("p0"), Default: []Stmt{Return{E: Int(7)}}},
			Return{E: Int(0)},
		},
	}}}
	buildAndRun(t, p, "f", 7, 3)
}

func TestNestedSwitch(t *testing.T) {
	p := &Program{Name: "t", Funcs: []*Func{{
		Name: "f", NParams: 2,
		Body: []Stmt{
			Switch{
				E: Var("p0"),
				Cases: [][]Stmt{
					{Switch{
						E: Var("p1"),
						Cases: [][]Stmt{
							{Return{E: Int(11)}},
							{Return{E: Int(12)}},
						},
						Default: []Stmt{Return{E: Int(19)}},
					}},
					{Return{E: Int(2)}},
				},
				Default: []Stmt{Return{E: Int(9)}},
			},
		},
	}}}
	buildAndRun(t, p, "f", 11, 0, 0)
	buildAndRun(t, p, "f", 12, 0, 1)
	buildAndRun(t, p, "f", 19, 0, 5)
	buildAndRun(t, p, "f", 2, 1, 0)
	buildAndRun(t, p, "f", 9, 4, 0)
}
