package minic

import (
	"fmt"
	"sort"

	"fits/internal/binimg"
	"fits/internal/isa"
)

const sectionAlign = 0x100

func align(v uint32, a uint32) uint32 {
	return (v + a - 1) &^ (a - 1)
}

// Link compiles every function of p and lays out a complete binary image for
// the given architecture: text (functions then PLT stubs), rodata (interned
// strings), data (initialized globals then the GOT), and bss.
//
// Function names invoked by Call but not defined in p become imports with
// PLT stubs; needed lists the libraries expected to provide them.
func Link(p *Program, arch isa.Arch, needed []string) (*binimg.Binary, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !arch.Valid() {
		return nil, fmt.Errorf("minic: %s: invalid architecture %d", p.Name, arch)
	}

	strs := map[string]bool{}
	compiled := make([]*compiledFunc, 0, len(p.Funcs))
	defined := map[string]bool{}
	for _, f := range p.Funcs {
		defined[f.Name] = true
	}
	for _, f := range p.Funcs {
		cf, err := compileFunc(p, f, strs)
		if err != nil {
			return nil, err
		}
		compiled = append(compiled, cf)
	}
	// Strings referenced from global pointer tables are interned too.
	for _, g := range p.Globals {
		for _, pi := range g.Ptrs {
			if pi.Str != "" {
				strs[pi.Str] = true
			}
		}
	}

	// Collect imports: call targets and address-taken functions not defined
	// here. Sorted for deterministic layout.
	importSet := map[string]bool{}
	for _, cf := range compiled {
		for _, ri := range cf.ins {
			if ri.callRef != "" && !defined[ri.callRef] {
				importSet[ri.callRef] = true
			}
			if ri.fnRef != "" && !defined[ri.fnRef] {
				importSet[ri.fnRef] = true
			}
		}
	}
	imports := make([]string, 0, len(importSet))
	for name := range importSet {
		imports = append(imports, name)
	}
	sort.Strings(imports)

	// Lay out text: functions in order, then one trampoline per import.
	textBase := arch.Base()
	funcAddr := map[string]uint32{}
	addr := textBase
	for _, cf := range compiled {
		funcAddr[cf.fn.Name] = addr
		addr += uint32(len(cf.ins) * isa.Width)
	}
	stubAddr := map[string]uint32{}
	for _, name := range imports {
		stubAddr[name] = addr
		addr += isa.Width
	}
	textEnd := addr

	// Lay out rodata: interned strings, NUL-terminated, sorted, followed
	// by switch jump tables (case-entry addresses).
	rodataBase := align(textEnd, sectionAlign)
	strList := make([]string, 0, len(strs))
	for s := range strs {
		strList = append(strList, s)
	}
	sort.Strings(strList)
	strAddr := map[string]uint32{}
	var rodata []byte
	for _, s := range strList {
		strAddr[s] = rodataBase + uint32(len(rodata))
		rodata = append(rodata, s...)
		rodata = append(rodata, 0)
	}
	// Word-align the jump tables.
	for len(rodata)%isa.WordSize != 0 {
		rodata = append(rodata, 0)
	}
	type tableKey struct {
		fn  string
		tid int
	}
	tableAddr := map[tableKey]uint32{}
	for _, cf := range compiled {
		base := funcAddr[cf.fn.Name]
		for tid, entries := range cf.tables {
			tableAddr[tableKey{fn: cf.fn.Name, tid: tid}] = rodataBase + uint32(len(rodata))
			for _, idx := range entries {
				abs := base + uint32(idx*isa.Width)
				rodata = append(rodata, byte(abs), byte(abs>>8), byte(abs>>16), byte(abs>>24))
			}
		}
	}

	// Lay out data: initialized globals, then the GOT.
	dataBase := align(rodataBase+uint32(len(rodata)), sectionAlign)
	globalAddr := map[string]uint32{}
	var data []byte
	for _, g := range p.Globals {
		if g.Init == nil {
			continue
		}
		globalAddr[g.Name] = dataBase + uint32(len(data))
		data = append(data, g.Init...)
	}
	gotAddr := map[string]uint32{}
	for _, name := range imports {
		gotAddr[name] = dataBase + uint32(len(data))
		data = append(data, 0, 0, 0, 0) // filled by the dynamic linker at runtime
	}

	// Lay out bss: uninitialized globals.
	bssBase := align(dataBase+uint32(len(data)), sectionAlign)
	bssOff := uint32(0)
	for _, g := range p.Globals {
		if g.Init != nil {
			continue
		}
		globalAddr[g.Name] = bssBase + bssOff
		bssOff += uint32(align(uint32(g.Size), isa.WordSize))
	}

	// Patch global pointer tables now that addresses are known.
	for _, g := range p.Globals {
		if g.Init == nil {
			continue
		}
		base := globalAddr[g.Name] - dataBase
		for _, pi := range g.Ptrs {
			var v uint32
			switch {
			case pi.FuncName != "":
				if a, ok := funcAddr[pi.FuncName]; ok {
					v = a
				} else if a, ok := stubAddr[pi.FuncName]; ok {
					v = a
				} else {
					return nil, fmt.Errorf("minic: %s: global %q references unknown function %q", p.Name, g.Name, pi.FuncName)
				}
			case pi.Str != "":
				v = strAddr[pi.Str]
			}
			off := base + uint32(pi.Off)
			data[off] = byte(v)
			data[off+1] = byte(v >> 8)
			data[off+2] = byte(v >> 16)
			data[off+3] = byte(v >> 24)
		}
	}

	// Resolve instruction references and encode.
	resolve := func(cf *compiledFunc) ([]isa.Instr, error) {
		base := funcAddr[cf.fn.Name]
		out := make([]isa.Instr, len(cf.ins))
		for i, ri := range cf.ins {
			in := ri.in
			switch {
			case ri.localTarget >= 0:
				in.Imm = int32(base + uint32(ri.localTarget*isa.Width))
			case ri.callRef != "":
				if a, ok := funcAddr[ri.callRef]; ok {
					in.Imm = int32(a)
				} else {
					in.Imm = int32(stubAddr[ri.callRef])
				}
			case ri.fnRef != "":
				if a, ok := funcAddr[ri.fnRef]; ok {
					in.Imm = int32(a)
				} else if a, ok := stubAddr[ri.fnRef]; ok {
					in.Imm = int32(a)
				} else {
					return nil, fmt.Errorf("minic: %s: unknown function reference %q", p.Name, ri.fnRef)
				}
			case ri.strRef != "":
				in.Imm = int32(strAddr[ri.strRef])
			case ri.jtRef1 > 0:
				in.Imm = int32(tableAddr[tableKey{fn: cf.fn.Name, tid: ri.jtRef1 - 1}])
			case ri.glbRef != "":
				a, ok := globalAddr[ri.glbRef]
				if !ok {
					return nil, fmt.Errorf("minic: %s: %s references undefined global %q", p.Name, cf.fn.Name, ri.glbRef)
				}
				in.Imm = int32(a)
			}
			out[i] = in
		}
		return out, nil
	}

	var text []byte
	for _, cf := range compiled {
		ins, err := resolve(cf)
		if err != nil {
			return nil, err
		}
		text = append(text, arch.EncodeAll(ins)...)
	}
	for _, name := range imports {
		var buf [isa.Width]byte
		arch.Encode(isa.Instr{Op: isa.OpTramp, Imm: int32(gotAddr[name])}, buf[:])
		text = append(text, buf[:]...)
	}

	bin := &binimg.Binary{
		Name:    p.Name,
		Arch:    arch,
		Text:    binimg.Section{Addr: textBase, Data: text},
		Rodata:  binimg.Section{Addr: rodataBase, Data: rodata},
		Data:    binimg.Section{Addr: dataBase, Data: data},
		BssAddr: bssBase,
		BssSize: bssOff,
		Needed:  append([]string(nil), needed...),
	}
	for _, name := range imports {
		bin.Imports = append(bin.Imports, binimg.Import{Name: name, Stub: stubAddr[name], GOT: gotAddr[name]})
	}
	for _, f := range p.Funcs {
		bin.Funcs = append(bin.Funcs, binimg.Sym{Name: f.Name, Addr: funcAddr[f.Name]})
		if f.Exported {
			bin.Exports = append(bin.Exports, binimg.Sym{Name: f.Name, Addr: funcAddr[f.Name]})
		}
	}
	if a, ok := funcAddr["main"]; ok {
		bin.Entry = a
	} else if len(p.Funcs) > 0 {
		bin.Entry = funcAddr[p.Funcs[0].Name]
	}
	return bin, nil
}
