package faultinj

import (
	"errors"
	"testing"
	"time"
)

func TestNilSetIsInert(t *testing.T) {
	var s *Set
	s.Fail("x", errors.New("boom"))
	s.FailOnce("x", errors.New("boom"))
	s.FailAfter("x", 2, errors.New("boom"))
	s.Delay("x", time.Millisecond)
	s.Disarm("x")
	s.Reset()
	if err := s.Hit("x"); err != nil {
		t.Fatalf("nil set injected %v", err)
	}
	if n := s.Hits("x"); n != 0 {
		t.Fatalf("nil set counted %d hits", n)
	}
}

func TestFailEveryHit(t *testing.T) {
	s := NewSet()
	boom := errors.New("boom")
	s.Fail("p", boom)
	for i := 0; i < 3; i++ {
		if err := s.Hit("p"); !errors.Is(err, boom) {
			t.Fatalf("hit %d: %v", i, err)
		}
	}
	s.Disarm("p")
	if err := s.Hit("p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if got := s.Hits("p"); got != 4 {
		t.Fatalf("Hits = %d, want 4", got)
	}
}

func TestFailOnce(t *testing.T) {
	s := NewSet()
	boom := errors.New("boom")
	s.FailOnce("p", boom)
	if err := s.Hit("p"); !errors.Is(err, boom) {
		t.Fatalf("first hit: %v", err)
	}
	if err := s.Hit("p"); err != nil {
		t.Fatalf("second hit: %v", err)
	}
}

func TestFailAfter(t *testing.T) {
	s := NewSet()
	boom := errors.New("boom")
	s.FailAfter("p", 2, boom)
	for i := 0; i < 2; i++ {
		if err := s.Hit("p"); err != nil {
			t.Fatalf("skipped hit %d fired: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := s.Hit("p"); !errors.Is(err, boom) {
			t.Fatalf("armed hit %d: %v", i, err)
		}
	}
}

func TestUnknownPointPassesThrough(t *testing.T) {
	s := NewSet()
	if err := s.Hit("nope"); err != nil {
		t.Fatal(err)
	}
	if got := s.Hits("nope"); got != 1 {
		t.Fatalf("Hits = %d, want 1", got)
	}
}

func TestResetClearsEverything(t *testing.T) {
	s := NewSet()
	s.Fail("p", errors.New("boom"))
	s.Hit("p")
	s.Reset()
	if err := s.Hit("p"); err != nil {
		t.Fatalf("reset point fired: %v", err)
	}
	if got := s.Hits("p"); got != 1 {
		t.Fatalf("Hits after reset = %d, want 1 (post-reset hit only)", got)
	}
}
