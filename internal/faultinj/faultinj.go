// Package faultinj is the repo's failpoint layer: named injection points
// compiled into durability-critical code paths (diskstore writes, journal
// appends, fsyncs) that tests arm with errors, delays, or one-shot
// "crash here" outcomes. Production code carries a nil *Set, and every
// method on a nil receiver is a no-op, so the hooks cost one nil check
// when disabled.
//
// A failpoint simulates the observable result of a real fault, not the
// fault itself: "crash after write, before rename" is modeled by making
// the rename step return an error and abandoning the operation — exactly
// the on-disk state a power cut at that instant leaves behind. The
// crash-recovery tests then reopen the directory and assert the replay
// invariants.
package faultinj

import (
	"fmt"
	"sync"
	"time"
)

// Set is a collection of armed failpoints keyed by name. The zero value
// and the nil pointer are both valid and inert.
type Set struct {
	mu     sync.Mutex
	points map[string]*point // guarded by mu
	hits   map[string]int    // guarded by mu; counts every Hit, armed or not
}

// point is one armed failpoint.
type point struct {
	err   error         // returned when the point fires; nil = fire without error
	delay time.Duration // slept before returning, modeling a slow fsync/disk
	skip  int           // hits to pass through before firing
	count int           // remaining firings; negative = unlimited
}

// NewSet returns an empty, disarmed set.
func NewSet() *Set { return &Set{} }

func (s *Set) arm(name string, p *point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.points == nil {
		s.points = map[string]*point{}
	}
	s.points[name] = p
}

// Fail arms name to return err on every hit until disarmed.
func (s *Set) Fail(name string, err error) {
	if s == nil {
		return
	}
	s.arm(name, &point{err: err, count: -1})
}

// FailOnce arms name to return err exactly once, then disarm itself.
// It models a transient fault or a single crash point.
func (s *Set) FailOnce(name string, err error) {
	if s == nil {
		return
	}
	s.arm(name, &point{err: err, count: 1})
}

// FailAfter arms name to pass through n hits and then return err on every
// later hit — "the k-th write is where the machine died".
func (s *Set) FailAfter(name string, n int, err error) {
	if s == nil {
		return
	}
	s.arm(name, &point{err: err, skip: n, count: -1})
}

// Delay arms name to sleep d on every hit and then succeed, modeling a
// slow or contended fsync without failing it.
func (s *Set) Delay(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.arm(name, &point{delay: d, count: -1})
}

// Disarm removes the failpoint at name; unknown names are ignored.
func (s *Set) Disarm(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.points, name)
}

// Reset disarms every point and clears the hit counters.
func (s *Set) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.points = nil
	s.hits = nil
}

// Hit is the call sites' entry: it records the visit and returns the
// injected error (or sleeps) when the named point is armed and due. A nil
// Set, unknown name, or still-skipping point returns nil immediately.
func (s *Set) Hit(name string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.hits == nil {
		s.hits = map[string]int{}
	}
	s.hits[name]++
	p := s.points[name]
	if p == nil {
		s.mu.Unlock()
		return nil
	}
	if p.skip > 0 {
		p.skip--
		s.mu.Unlock()
		return nil
	}
	if p.count == 0 {
		s.mu.Unlock()
		return nil
	}
	if p.count > 0 {
		p.count--
		if p.count == 0 {
			delete(s.points, name)
		}
	}
	err, delay := p.err, p.delay
	s.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// Hits reports how many times the named point was visited (armed or not),
// for test assertions that a code path actually crossed the failpoint.
func (s *Set) Hits(name string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[name]
}

// Crash is a sentinel-style error constructor for crash-simulation points:
// the returned error marks the operation as abandoned mid-flight, which
// callers treat exactly like any injected I/O error.
func Crash(name string) error {
	return fmt.Errorf("faultinj: simulated crash at %s", name)
}
