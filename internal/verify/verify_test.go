package verify

import (
	"testing"

	"fits/internal/infer"
	"fits/internal/loader"
	"fits/internal/synth"
)

func TestPlantedITSVerifies(t *testing.T) {
	for _, idx := range []int{0, 20, 30, 42} {
		spec := synth.Dataset()[idx]
		s, err := synth.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := loader.Load(s.Packed, loader.Options{})
		if err != nil {
			t.Fatal(err)
		}
		targets := map[string]*loader.Target{}
		for _, tg := range res.Targets {
			targets[tg.Bin.Name] = tg
		}
		for _, its := range s.Manifest.ITS {
			target := targets[its.Binary]
			if target == nil {
				t.Fatalf("no target for binary %q", its.Binary)
			}
			o := Candidate(target.Bin, target.Model, its.Entry)
			if !o.Verified {
				t.Errorf("%s %s: planted ITS %s not verified: %v (returned %q)",
					spec.Vendor, spec.Product, its.FuncName, o.Err, o.Returned)
				continue
			}
			if o.TaintOrigin != "r0" {
				t.Errorf("taint origin = %q, want r0", o.TaintOrigin)
			}
		}
	}
}

func TestNonFetchersRejected(t *testing.T) {
	s, err := synth.Generate(synth.Dataset()[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := loader.Load(s.Packed, loader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	target := res.Targets[0]
	truth := map[uint32]bool{}
	for _, its := range s.Manifest.ITS {
		truth[its.Entry] = true
	}
	// Handlers, loggers, parsers: none should verify.
	rejected := 0
	for _, h := range s.Manifest.Handlers {
		o := Candidate(target.Bin, target.Model, h.Entry)
		if o.Verified {
			t.Errorf("handler %s verified as ITS", h.FuncName)
		} else {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no handlers tested")
	}
}

func TestVerificationFiltersRankedCandidates(t *testing.T) {
	// The workflow of §4.2: infer, verify the top ranks, keep confirmed
	// fetchers. At least one of the top-3 must verify on a success sample.
	s, err := synth.Generate(synth.Dataset()[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := loader.Load(s.Packed, loader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	target := res.Targets[0]
	r := infer.InferTarget(target, infer.DefaultConfig())
	confirmed := 0
	for _, c := range r.Top(3) {
		if Candidate(target.Bin, target.Model, c.Entry).Verified {
			confirmed++
		}
	}
	if confirmed == 0 {
		t.Error("no top-3 candidate verified dynamically")
	}
}

func TestRejectsStubsAndBadEntries(t *testing.T) {
	s, err := synth.Generate(synth.Dataset()[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := loader.Load(s.Packed, loader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	target := res.Targets[0]
	if o := Candidate(target.Bin, target.Model, 0xdead); o.Verified || o.Err == nil {
		t.Error("bogus entry should fail")
	}
	for _, f := range target.Model.FuncsInOrder() {
		if f.ImportStub {
			if o := Candidate(target.Bin, target.Model, f.Entry); o.Verified {
				t.Error("stub verified")
			}
			break
		}
	}
}
