package verify

import (
	"fmt"
	"testing"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/isa"
	"fits/internal/minic"
	"fits/internal/synth"
)

// TestAllFetchVariantsVerify checks the verification oracle against every
// code-structural variant of the keyed fetch body the corpus can emit.
func TestAllFetchVariantsVerify(t *testing.T) {
	for variant := 0; variant < 4; variant++ {
		p := &minic.Program{Name: "t", Funcs: []*minic.Func{
			{Name: "fetch", NParams: 3, Body: synth.KeyedFetchBodyForTest(variant)},
		}}
		bin, err := minic.Link(p, isa.ArchARM, []string{"libc.so"})
		if err != nil {
			t.Fatal(err)
		}
		m, err := cfg.Build(bin, cfg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var entry uint32
		for _, f := range bin.Funcs {
			if f.Name == "fetch" {
				entry = f.Addr
			}
		}
		o := Candidate(bin, m, entry)
		if !o.Verified {
			t.Errorf("variant %d not verified: %v (returned %q)", variant, o.Err, o.Returned)
		}
	}
	_ = binimg.Magic
	_ = fmt.Sprintf
}
