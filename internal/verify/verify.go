// Package verify implements the reproduction's analog of the paper's
// Appendix A: confirming that an inferred candidate really behaves as an
// intermediate taint source, and identifying its taint origin.
//
// The paper verifies candidates by firmware rehosting, real-device debugging
// or cross-version symbol analysis — all manual. Here the check is
// automated with the instruction-level emulator: the candidate is executed
// with a synthetic request store planted in memory (a keyed field holding a
// marker value), library imports emulated natively, and the candidate is
// confirmed when it returns a pointer to the marker — i.e. it fetched part
// of the stored user input and passed it out through the return register,
// which then becomes the taint origin.
//
// The check establishes *capability*: a confirmed function extracts keyed
// data from a caller-supplied store. Distinguishing request fetchers from
// behaviorally identical configuration fetchers additionally requires
// observing what store the firmware passes at runtime, which is what the
// corpus manifests record.
package verify

import (
	"errors"
	"fmt"
	"strings"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/emu"
	"fits/internal/isa"
)

// Marker values planted in the synthetic store.
const (
	probeKey    = "username"
	probeMarker = "MARKER_VALUE_1337"
)

// Outcome reports one candidate's dynamic verification.
type Outcome struct {
	Entry    uint32
	Verified bool
	// TaintOrigin names where the extracted data leaves the function;
	// the return register for confirmed candidates.
	TaintOrigin string
	// Returned is the string found at the returned pointer (diagnostic).
	Returned string
	Err      error
}

// Scratch memory layout inside the emulated stack region.
const (
	scratchBase = emu.StackTop - 1<<20 + 0x1000
	keyAddr     = scratchBase
	storeAddr   = scratchBase + 0x100
	heapBase    = scratchBase + 0x1000
	heapLimit   = scratchBase + 0x8000
)

var errNoReturn = errors.New("verify: candidate returned no data pointer")

// Candidate executes the function at entry under emulation and checks the
// extract-and-return behaviour.
func Candidate(bin *binimg.Binary, model *cfg.Model, entry uint32) Outcome {
	out := Outcome{Entry: entry}
	fn, ok := model.FuncAt(entry)
	if !ok || fn.ImportStub {
		out.Err = fmt.Errorf("verify: 0x%x is not a custom function", entry)
		return out
	}

	m := emu.New(bin)
	m.MaxSteps = 200_000
	installLibc(m)
	m.Sys = func(m *emu.Machine, num int32) error {
		// Raw system primitives inside a candidate (I/O, exec) mean it is
		// not a pure fetcher; stop the run.
		m.Halt()
		return nil
	}

	// Plant the probe: key string and a store holding decoy fields plus
	// the keyed marker.
	if err := m.StoreBytes(keyAddr, append([]byte(probeKey), 0)); err != nil {
		out.Err = err
		return out
	}
	// The keyed field leads the store: fetchers treat an interior NUL at
	// the scan cursor as end-of-input, exactly as the firmware's own
	// field separators delimit the first record.
	store := probeKey + "\x00" + probeMarker + "\x00" + "lang\x00en\x00"
	if err := m.StoreBytes(storeAddr, append([]byte(store), 0)); err != nil {
		out.Err = err
		return out
	}

	// A fourth argument offers an output buffer so that pointer-output
	// fetchers (which write the field instead of returning it) verify too.
	outBuf := uint32(scratchBase + 0x800)
	ret, err := m.CallFunction(entry, keyAddr, storeAddr, uint32(len(store)), outBuf)
	if err != nil {
		out.Err = err
		return out
	}
	if ret != 0 {
		s, err := m.ReadCString(ret, 64)
		if err == nil && strings.Contains(s, probeMarker) {
			out.Returned = s
			out.Verified = true
			out.TaintOrigin = isa.R0.String()
			return out
		}
		out.Returned = s
	}
	if s, err := m.ReadCString(outBuf, 64); err == nil && strings.Contains(s, probeMarker) {
		out.Returned = s
		out.Verified = true
		out.TaintOrigin = "param3 pointee"
		return out
	}
	if out.Returned == "" {
		out.Err = errNoReturn
	} else {
		out.Err = fmt.Errorf("verify: returned %q, not the planted field", out.Returned)
	}
	return out
}

// installLibc provides native implementations for the library imports the
// corpus binaries use, sufficient to run fetch functions standalone.
func installLibc(m *emu.Machine) {
	heap := uint32(heapBase)
	cstr := func(addr uint32) (string, error) { return m.ReadCString(addr, 256) }

	handlers := map[string]emu.ImportFunc{
		"strlen": func(m *emu.Machine) error {
			s, err := cstr(m.Regs[0])
			if err != nil {
				return err
			}
			m.Regs[0] = uint32(len(s))
			return nil
		},
		"strcmp": func(m *emu.Machine) error {
			a, err := cstr(m.Regs[0])
			if err != nil {
				return err
			}
			b, err := cstr(m.Regs[1])
			if err != nil {
				return err
			}
			m.Regs[0] = uint32(int32(strings.Compare(a, b)))
			return nil
		},
		"strncmp": func(m *emu.Machine) error {
			n := int(m.Regs[2])
			a, err := readN(m, m.Regs[0], n)
			if err != nil {
				return err
			}
			b, err := readN(m, m.Regs[1], n)
			if err != nil {
				return err
			}
			m.Regs[0] = uint32(int32(strings.Compare(cut(a), cut(b))))
			return nil
		},
		"memcpy": func(m *emu.Machine) error {
			dst, src, n := m.Regs[0], m.Regs[1], m.Regs[2]
			for i := uint32(0); i < n; i++ {
				b, err := m.LoadByte(src + i)
				if err != nil {
					return err
				}
				if err := m.StoreByte(dst+i, b); err != nil {
					return err
				}
			}
			return nil
		},
		"malloc": func(m *emu.Machine) error {
			n := (m.Regs[0] + 7) &^ 7
			if heap+n >= heapLimit {
				m.Regs[0] = 0
				return nil
			}
			m.Regs[0] = heap
			heap += n
			return nil
		},
		"free": func(m *emu.Machine) error { m.Regs[0] = 0; return nil },
		"strcpy": func(m *emu.Machine) error {
			s, err := cstr(m.Regs[1])
			if err != nil {
				return err
			}
			if err := m.StoreBytes(m.Regs[0], append([]byte(s), 0)); err != nil {
				return err
			}
			return nil
		},
		"strstr": func(m *emu.Machine) error {
			h, err := cstr(m.Regs[0])
			if err != nil {
				return err
			}
			nd, err := cstr(m.Regs[1])
			if err != nil {
				return err
			}
			if i := strings.Index(h, nd); i >= 0 {
				m.Regs[0] = m.Regs[0] + uint32(i)
			} else {
				m.Regs[0] = 0
			}
			return nil
		},
	}
	// Everything else behaves as a harmless no-op returning zero; a
	// candidate relying on it cannot produce the marker.
	fallback := func(m *emu.Machine) error { m.Regs[0] = 0; return nil }
	for _, im := range m.Bin.Imports {
		if h, ok := handlers[im.Name]; ok {
			m.Imports[im.Name] = h
		} else {
			m.Imports[im.Name] = fallback
		}
	}
}

func readN(m *emu.Machine, addr uint32, n int) (string, error) {
	if n > 256 {
		n = 256
	}
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		b, err := m.LoadByte(addr + uint32(i))
		if err != nil {
			return "", err
		}
		buf[i] = b
	}
	return string(buf), nil
}

// cut truncates at the first NUL, mirroring strncmp's early stop.
func cut(s string) string {
	if i := strings.IndexByte(s, 0); i >= 0 {
		return s[:i+1]
	}
	return s
}
