package synth

import (
	"fmt"
	"math/rand"

	"fits/internal/firmware"
	"fits/internal/isa"
	"fits/internal/know"
	"fits/internal/minic"
)

// XHopTruth is one planted cross-binary channel hop: FromBinary publishes
// tainted data on (Chan, Key).
type XHopTruth struct {
	FromBinary string
	Chan       know.ChanKind
	Key        string
}

// XFlowTruth is the ground truth for one planted corpus flow, from a
// front-end parameter (when FrontKey is non-empty) through zero or more
// channel hops to a sink call.
type XFlowTruth struct {
	Name      string
	FrontKey  string // request parameter named by a front-end artifact
	FrontFile string // artifact naming the parameter
	Hops      []XHopTruth
	// SinkBinary is the image path of the binary containing the sink;
	// SinkFunc/SinkEntry locate the function whose body calls it.
	SinkBinary string
	SinkFunc   string
	SinkEntry  uint32
	Sink       string
	Kind       know.SinkKind
	// CrossBinary marks flows whose sink lives in a different binary than
	// the border binary — invisible to any single-binary analysis.
	CrossBinary bool
	// Vulnerable: an alert at the sink is a true positive.
	Vulnerable bool
}

// XManifest is the ground truth of one generated multi-binary corpus.
type XManifest struct {
	Arch isa.Arch
	// Binaries are the image paths of all executables, in path order. The
	// first is the border binary (the only one importing network
	// interfaces).
	Binaries   []string
	FrontFiles []string
	// Keywords are the parameter names the front-end artifacts carry.
	Keywords []string
	Flows    []XFlowTruth
}

// CrossFlows returns the planted flows whose sink binary differs from the
// border binary.
func (m *XManifest) CrossFlows() []XFlowTruth {
	var out []XFlowTruth
	for _, f := range m.Flows {
		if f.CrossBinary {
			out = append(out, f)
		}
	}
	return out
}

// FlowBySink resolves the flow whose sink call lives at (binary, entry, sink).
func (m *XManifest) FlowBySink(binary string, entry uint32, sink string) (XFlowTruth, bool) {
	for _, f := range m.Flows {
		if f.SinkBinary == binary && f.SinkEntry == entry && f.Sink == sink {
			return f, true
		}
	}
	return XFlowTruth{}, false
}

// XCorpus is one generated multi-binary firmware tree with its ground truth.
type XCorpus struct {
	Files    []firmware.File
	Manifest XManifest
}

// Image wraps the corpus files as a packable firmware image.
func (x *XCorpus) Image() *firmware.Image {
	return &firmware.Image{Vendor: "synth", Product: "xcorpus", Files: x.Files}
}

// Front-end artifacts. The parameter vocabulary deliberately overlaps the
// border binary's fetch keys and nothing else: username/comment drive local
// handlers, wifi_pass/timezone/ping_host drive channel writers.
const xIndexHTML = `<html><body>
<form action="/apply.cgi" method="post">
  <input type="text" name="username" value="admin">
  <textarea name="comment" rows="4"></textarea>
  <input type="submit" value="Apply">
</form>
</body></html>
`

const xAppJS = `function apply(v, h) {
  fetch("/apply.cgi?wifi_pass=" + encodeURIComponent(v));
  var fd = new FormData();
  fd.append("ping_host", h);
  return fd;
}
`

const xWebParamsConf = `# defaults rendered into the settings page
timezone=UTC
`

// xhandler couples a generated border-binary handler with its flow truth.
type xhandler struct {
	fn   string
	body func(b *xbuilder) []minic.Stmt
}

// xbuilder accumulates one corpus program.
type xbuilder struct {
	p *minic.Program
}

func (b *xbuilder) fn(name string, nparams int, body []minic.Stmt) {
	b.p.Funcs = append(b.p.Funcs, &minic.Func{Name: name, NParams: nparams, Body: body})
}

// fetch builds the border binary's keyed request-field fetch.
func xfetch(key string) minic.Expr {
	return minic.Call{Name: "get_param", Args: []minic.Expr{
		minic.Str(key), minic.GlobalRef("g_kvstore"), i32(1024)}}
}

// guarded wraps a fetched value: bail out when the key is absent, then run
// the use statements on "val".
func xguarded(key string, use ...minic.Stmt) []minic.Stmt {
	body := []minic.Stmt{
		minic.Let{Name: "val", E: xfetch(key)},
		minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("val"), R: i32(0)},
			Then: []minic.Stmt{minic.Return{E: i32(0)}}},
	}
	body = append(body, use...)
	return append(body, minic.Return{E: i32(0)})
}

// xhttpdProgram builds the border binary: the only corpus executable with
// network imports. It parses requests into g_kvstore, fetches fields through
// get_param, and either sinks them locally or publishes them on a channel.
func xhttpdProgram() *minic.Program {
	b := &xbuilder{p: &minic.Program{Name: "httpd", Globals: []*minic.Global{
		{Name: "g_reqbuf", Size: 1024},
		{Name: "g_kvstore", Size: 1024},
		{Name: "g_outbuf", Size: 256},
	}}}
	b.fn("get_param", 3, keyedFetchBody(0))

	// Local flows: visible to single-binary analysis.
	b.fn("h_local_vuln", 0, xguarded("username",
		minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
			minic.GlobalRef("g_outbuf"), v("val")}}}))
	b.fn("h_local_safe", 0, xguarded("comment",
		minic.Let{Name: "n", E: minic.Call{Name: "strlen", Args: []minic.Expr{v("val")}}},
		minic.If{Cond: minic.Cond{Op: minic.Lt, L: v("n"), R: i32(32)},
			Then: []minic.Stmt{minic.ExprStmt{E: minic.Call{Name: "strncpy", Args: []minic.Expr{
				minic.GlobalRef("g_outbuf"), v("val"), i32(512)}}}}}))
	b.fn("h_raw_vuln", 0, []minic.Stmt{
		minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
			minic.GlobalRef("g_outbuf"), minic.GlobalRef("g_reqbuf")}}},
		minic.Return{E: i32(0)},
	})

	// Channel writers: tainted request fields leave the binary here.
	b.fn("h_set_wl", 0, xguarded("wifi_pass",
		minic.ExprStmt{E: minic.Call{Name: "nvram_set", Args: []minic.Expr{
			minic.Str("wl_key"), v("val")}}}))
	b.fn("h_set_tz", 0, xguarded("timezone",
		minic.ExprStmt{E: minic.Call{Name: "env_set", Args: []minic.Expr{
			minic.Str("TZ_OFF"), v("val")}}}))
	b.fn("h_spawn", 0, xguarded("ping_host",
		minic.ExprStmt{E: minic.Call{Name: "fw_spawn", Args: []minic.Expr{
			minic.Str("bin/nettool"), v("val")}}}))
	// Constant write: the key is written but never tainted, so readers of
	// boardnum must stay silent.
	b.fn("h_set_const", 0, []minic.Stmt{
		minic.ExprStmt{E: minic.Call{Name: "nvram_set", Args: []minic.Expr{
			minic.Str("boardnum"), minic.Str("A100")}}},
		minic.Return{E: i32(0)},
	})

	// parse_req copies the raw request into the key-value store.
	b.fn("parse_req", 2, []minic.Stmt{
		minic.Let{Name: "i", E: i32(0)},
		minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p1")}, Body: []minic.Stmt{
			minic.Let{Name: "c", E: minic.LoadB(minic.Add(v("p0"), v("i")))},
			minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("c"), R: i32('&')},
				Then: []minic.Stmt{minic.StoreStmt{Size: 1,
					Addr: minic.Add(minic.GlobalRef("g_kvstore"), v("i")), Val: i32(0)}},
				Else: []minic.Stmt{minic.StoreStmt{Size: 1,
					Addr: minic.Add(minic.GlobalRef("g_kvstore"), v("i")), Val: v("c")}}},
			minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
		}},
		minic.Return{E: i32(0)},
	})

	b.fn("main", 0, []minic.Stmt{
		minic.Let{Name: "fd", E: minic.Call{Name: "socket", Args: []minic.Expr{i32(2), i32(1), i32(0)}}},
		minic.ExprStmt{E: minic.Call{Name: "bind", Args: []minic.Expr{v("fd"), i32(0), i32(0)}}},
		minic.ExprStmt{E: minic.Call{Name: "listen", Args: []minic.Expr{v("fd"), i32(8)}}},
		minic.ExprStmt{E: minic.Call{Name: "accept", Args: []minic.Expr{v("fd"), i32(0), i32(0)}}},
		minic.Let{Name: "n", E: minic.Call{Name: "recv", Args: []minic.Expr{
			v("fd"), minic.GlobalRef("g_reqbuf"), i32(1024), i32(0)}}},
		minic.ExprStmt{E: minic.Call{Name: "parse_req", Args: []minic.Expr{
			minic.GlobalRef("g_reqbuf"), v("n")}}},
		minic.ExprStmt{E: minic.Call{Name: "h_local_vuln"}},
		minic.ExprStmt{E: minic.Call{Name: "h_local_safe"}},
		minic.ExprStmt{E: minic.Call{Name: "h_raw_vuln"}},
		minic.ExprStmt{E: minic.Call{Name: "h_set_wl"}},
		minic.ExprStmt{E: minic.Call{Name: "h_set_tz"}},
		minic.ExprStmt{E: minic.Call{Name: "h_spawn"}},
		minic.ExprStmt{E: minic.Call{Name: "h_set_const"}},
		minic.Return{E: i32(0)},
	})
	return b.p
}

// xgetterHandler builds a reader function: load a channel value, bail when
// absent, run the use statements on "val".
func xgetterHandler(b *xbuilder, name, getter string, keyArg minic.Expr, use ...minic.Stmt) {
	body := []minic.Stmt{
		minic.Let{Name: "val", E: minic.Call{Name: getter, Args: []minic.Expr{keyArg}}},
		minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("val"), R: i32(0)},
			Then: []minic.Stmt{minic.Return{E: i32(0)}}},
	}
	body = append(body, use...)
	b.fn(name, 0, append(body, minic.Return{E: i32(0)}))
}

// xwifidProgram: nvram reader. No network imports, no classical sources —
// single-binary analysis has nothing to seed here.
func xwifidProgram() *minic.Program {
	b := &xbuilder{p: &minic.Program{Name: "wifid", Globals: []*minic.Global{
		{Name: "g_outbuf", Size: 256},
	}}}
	xgetterHandler(b, "w_apply", "nvram_get", minic.Str("wl_key"),
		minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{v("val")}}})
	// Second-order hop: republish the nvram value as an environment variable.
	xgetterHandler(b, "w_state", "nvram_get", minic.Str("wl_key"),
		minic.ExprStmt{E: minic.Call{Name: "env_set", Args: []minic.Expr{
			minic.Str("WL_STATE"), v("val")}}})
	// Reads a key only ever written untainted; must never alert.
	xgetterHandler(b, "w_board", "nvram_get", minic.Str("boardnum"),
		minic.ExprStmt{E: minic.Call{Name: "sprintf", Args: []minic.Expr{
			minic.GlobalRef("g_outbuf"), minic.Str("board=%s"), v("val"), i32(0)}}})
	b.fn("main", 0, []minic.Stmt{
		minic.ExprStmt{E: minic.Call{Name: "w_apply"}},
		minic.ExprStmt{E: minic.Call{Name: "w_state"}},
		minic.ExprStmt{E: minic.Call{Name: "w_board"}},
		minic.Return{E: i32(0)},
	})
	return b.p
}

// xenvdProgram: environment reader.
func xenvdProgram() *minic.Program {
	b := &xbuilder{p: &minic.Program{Name: "envd", Globals: []*minic.Global{
		{Name: "g_outbuf", Size: 256},
	}}}
	xgetterHandler(b, "e_apply", "env_get", minic.Str("TZ_OFF"),
		minic.ExprStmt{E: minic.Call{Name: "sprintf", Args: []minic.Expr{
			minic.GlobalRef("g_outbuf"), minic.Str("tz=%s"), v("val"), i32(0)}}})
	b.fn("main", 0, []minic.Stmt{
		minic.ExprStmt{E: minic.Call{Name: "e_apply"}},
		minic.Return{E: i32(0)},
	})
	return b.p
}

// xnettoolProgram: spawned helper consuming its argument vector.
func xnettoolProgram() *minic.Program {
	b := &xbuilder{p: &minic.Program{Name: "nettool", Globals: []*minic.Global{
		{Name: "g_outbuf", Size: 256},
	}}}
	xgetterHandler(b, "n_run", "fw_getarg", minic.Int(1),
		minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{v("val")}}})
	b.fn("main", 0, []minic.Stmt{
		minic.ExprStmt{E: minic.Call{Name: "n_run"}},
		minic.Return{E: i32(0)},
	})
	return b.p
}

// xstatusdProgram: reads the environment variable wifid republishes — its
// flow needs two fixpoint rounds.
func xstatusdProgram() *minic.Program {
	b := &xbuilder{p: &minic.Program{Name: "statusd", Globals: []*minic.Global{
		{Name: "g_outbuf", Size: 256},
	}}}
	xgetterHandler(b, "s_show", "env_get", minic.Str("WL_STATE"),
		minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
			minic.GlobalRef("g_outbuf"), v("val")}}})
	b.fn("main", 0, []minic.Stmt{
		minic.ExprStmt{E: minic.Call{Name: "s_show"}},
		minic.Return{E: i32(0)},
	})
	return b.p
}

// GenerateXCorpus builds a deterministic multi-binary corpus: one border
// binary (bin/httpd) publishing request fields over nvram, environment and
// spawn channels; four back-end binaries consuming them; front-end artifacts
// naming exactly the border binary's request parameters; and a ground-truth
// manifest of every planted flow. The same seed always yields the same
// bytes.
func GenerateXCorpus(seed int64) (*XCorpus, error) {
	r := rand.New(rand.NewSource(seed))
	arch := isa.ArchARM

	libcBin, err := minic.Link(LibcProgram(r), arch, nil)
	if err != nil {
		return nil, fmt.Errorf("synth: xcorpus libc: %w", err)
	}

	progs := []struct {
		path string
		prog *minic.Program
	}{
		{"bin/envd", xenvdProgram()},
		{"bin/httpd", xhttpdProgram()},
		{"bin/nettool", xnettoolProgram()},
		{"bin/statusd", xstatusdProgram()},
		{"bin/wifid", xwifidProgram()},
	}

	man := XManifest{
		Arch:       arch,
		FrontFiles: []string{"etc/webparams.conf", "www/app.js", "www/index.html"},
		Keywords:   []string{"comment", "ping_host", "timezone", "username", "wifi_pass"},
	}
	entry := map[string]uint32{} // "path/func" -> entry
	files := []firmware.File{
		{Path: "etc/webparams.conf", Data: []byte(xWebParamsConf)},
		{Path: "lib/libc.so", Data: nil}, // filled below
		{Path: "www/app.js", Data: []byte(xAppJS)},
		{Path: "www/index.html", Data: []byte(xIndexHTML)},
	}
	for _, p := range progs {
		bin, err := minic.Link(p.prog, arch, []string{"libc.so"})
		if err != nil {
			return nil, fmt.Errorf("synth: xcorpus %s: %w", p.path, err)
		}
		for _, f := range bin.Funcs {
			entry[p.path+"/"+f.Name] = f.Addr
		}
		bin.Strip()
		files = append(files, firmware.File{Path: p.path, Data: bin.Encode()})
		man.Binaries = append(man.Binaries, p.path)
	}
	libcBin.Strip()
	files[1].Data = libcBin.Encode()

	hopHTTPD := func(ch know.ChanKind, key string) XHopTruth {
		return XHopTruth{FromBinary: "bin/httpd", Chan: ch, Key: key}
	}
	flow := func(f XFlowTruth) {
		f.SinkEntry = entry[f.SinkBinary+"/"+f.SinkFunc]
		if f.SinkEntry == 0 {
			panic("synth: xcorpus flow names unknown function " + f.SinkBinary + "/" + f.SinkFunc)
		}
		man.Flows = append(man.Flows, f)
	}
	flow(XFlowTruth{Name: "local-vuln", FrontKey: "username", FrontFile: "www/index.html",
		SinkBinary: "bin/httpd", SinkFunc: "h_local_vuln", Sink: "strcpy",
		Kind: know.SinkOverflow, Vulnerable: true})
	flow(XFlowTruth{Name: "local-safe", FrontKey: "comment", FrontFile: "www/index.html",
		SinkBinary: "bin/httpd", SinkFunc: "h_local_safe", Sink: "strncpy",
		Kind: know.SinkOverflow, Vulnerable: false})
	flow(XFlowTruth{Name: "raw-vuln",
		SinkBinary: "bin/httpd", SinkFunc: "h_raw_vuln", Sink: "strcpy",
		Kind: know.SinkOverflow, Vulnerable: true})
	flow(XFlowTruth{Name: "wl-system", FrontKey: "wifi_pass", FrontFile: "www/app.js",
		Hops:       []XHopTruth{hopHTTPD(know.ChanNVRAM, "wl_key")},
		SinkBinary: "bin/wifid", SinkFunc: "w_apply", Sink: "system",
		Kind: know.SinkCommand, CrossBinary: true, Vulnerable: true})
	flow(XFlowTruth{Name: "wl-state", FrontKey: "wifi_pass", FrontFile: "www/app.js",
		Hops: []XHopTruth{hopHTTPD(know.ChanNVRAM, "wl_key"),
			{FromBinary: "bin/wifid", Chan: know.ChanEnv, Key: "WL_STATE"}},
		SinkBinary: "bin/statusd", SinkFunc: "s_show", Sink: "strcpy",
		Kind: know.SinkOverflow, CrossBinary: true, Vulnerable: true})
	flow(XFlowTruth{Name: "tz-format", FrontKey: "timezone", FrontFile: "etc/webparams.conf",
		Hops:       []XHopTruth{hopHTTPD(know.ChanEnv, "TZ_OFF")},
		SinkBinary: "bin/envd", SinkFunc: "e_apply", Sink: "sprintf",
		Kind: know.SinkOverflow, CrossBinary: true, Vulnerable: true})
	flow(XFlowTruth{Name: "spawn-exec", FrontKey: "ping_host", FrontFile: "www/app.js",
		Hops:       []XHopTruth{hopHTTPD(know.ChanSpawn, "bin/nettool")},
		SinkBinary: "bin/nettool", SinkFunc: "n_run", Sink: "system",
		Kind: know.SinkCommand, CrossBinary: true, Vulnerable: true})
	flow(XFlowTruth{Name: "benign-board",
		SinkBinary: "bin/wifid", SinkFunc: "w_board", Sink: "sprintf",
		Kind: know.SinkOverflow, CrossBinary: true, Vulnerable: false})

	return &XCorpus{Files: files, Manifest: man}, nil
}
