// Package synth generates the synthetic firmware corpus. Every sample is a
// complete firmware image — a packed, optionally vendor-encrypted filesystem
// holding a stripped network daemon, CGI binaries and a libc — authored in
// the minic language and compiled for one of three architectures.
//
// The generator reproduces the structural regularities the paper observed in
// Internet-connected IoT firmware: interface functions receive structured
// requests, a parser stores fields into memory, and keyed fetch functions
// (the intermediate taint sources) extract fields for handler logic. It also
// plants the confounders that limit top-1 precision (error printers,
// duplicating string utilities) and taint-style bugs at graded call depths,
// and emits a ground-truth manifest so that inference precision and taint
// analysis results can be scored mechanically — the machine-checkable
// substitute for the paper's manual verification (Appendix A).
package synth

import (
	"fits/internal/firmware"
	"fits/internal/isa"
	"fits/internal/know"
)

// HandlerCategory classifies each generated sink-reaching handler for
// alert scoring.
type HandlerCategory uint8

// Handler categories.
const (
	// VulnShallow is a true bug: user data reaches the sink unchecked,
	// one or two calls below the ITS.
	VulnShallow HandlerCategory = iota
	// VulnDeep is a true bug buried under additional wrapper layers;
	// budgeted engines starting at classical sources miss it.
	VulnDeep
	// SafeSanitized bounds-checks the fetched data before the sink; an
	// alert here is a false positive.
	SafeSanitized
	// BenignSystemData feeds configuration data (MAC, IP, subnet) to the
	// sink; an alert here is a false positive of coarse taint tracking.
	BenignSystemData
	// SystemKeyFetch calls the ITS with a system-data key; the paper's
	// string filter removes these alerts.
	SystemKeyFetch
	// VulnRaw is a true bug on the raw request buffer: the sink consumes
	// the receive buffer directly, the only flow shape the classical
	// region-level analysis can see.
	VulnRaw
	// SafeRaw length-checks the raw buffer before the sink; engines that
	// cannot see the check (region-level STA, path-insensitive symbolic
	// taint) report it anyway — a classical-source false positive.
	SafeRaw
	// SafeInfeasible guards the sink behind contradictory branch
	// conditions (x < 4 nested inside x >= 100): the sink is dead code and
	// any alert is a false positive only path-feasibility checking removes.
	SafeInfeasible
	// VulnAliased is a true bug where the fetched field travels through a
	// store/load pair on a pointer table: only the alias pass connects the
	// tainted store to the sink's load.
	VulnAliased
)

func (c HandlerCategory) String() string {
	switch c {
	case VulnShallow:
		return "vuln-shallow"
	case VulnDeep:
		return "vuln-deep"
	case SafeSanitized:
		return "safe-sanitized"
	case BenignSystemData:
		return "benign-system-data"
	case SystemKeyFetch:
		return "system-key-fetch"
	case VulnRaw:
		return "vuln-raw"
	case SafeRaw:
		return "safe-raw"
	case SafeInfeasible:
		return "safe-infeasible"
	case VulnAliased:
		return "vuln-aliased"
	}
	return "unknown"
}

// Vulnerable reports whether an alert on this handler is a true positive.
func (c HandlerCategory) Vulnerable() bool {
	return c == VulnShallow || c == VulnDeep || c == VulnRaw || c == VulnAliased
}

// HandlerTruth is the ground truth for one generated handler function.
type HandlerTruth struct {
	Binary   string
	FuncName string
	Entry    uint32 // function entry after linking
	Category HandlerCategory
	Sink     string // sink library function name
	Kind     know.SinkKind
	// CTSDepth is the call-graph distance from the classical source to
	// the sink; ITSDepth from the intermediate source.
	CTSDepth int
	ITSDepth int
	// Key is the request field the handler fetches ("" for benign flows).
	Key string
	// SinkFuncName/SinkEntry locate the function containing the sink call
	// (an inner wrapper for deep flows, the handler itself otherwise).
	SinkFuncName string
	SinkEntry    uint32
	// Filterable marks system-key fetches whose key the string filter
	// recognizes.
	Filterable bool
}

// ITSTruth records one planted intermediate taint source.
type ITSTruth struct {
	Binary   string
	FuncName string
	Entry    uint32
	// TaintsReturn: the extracted field leaves via the return register.
	TaintsReturn bool
}

// Manifest is the ground truth of one firmware sample.
type Manifest struct {
	Vendor  string
	Product string
	Version string
	Series  string
	Arch    isa.Arch
	Scheme  firmware.Scheme
	// Latest marks the new-version half of the dataset.
	Latest bool

	// NetBinaries are the filesystem paths of binaries exporting network
	// services (the intended pre-processing selection).
	NetBinaries []string

	// FailureMode is non-empty for samples engineered to defeat inference,
	// mirroring the paper's six failures: "preprocess-miss" (the network
	// binary hides its interface imports behind a shim library) or
	// "offset-indexed" (fields are fetched by fixed offsets; no ITS
	// exists).
	FailureMode string

	ITS      []ITSTruth
	Handlers []HandlerTruth
}

// TrueBugs counts handlers whose alerts are true positives.
func (m *Manifest) TrueBugs() int {
	n := 0
	for _, h := range m.Handlers {
		if h.Category.Vulnerable() {
			n++
		}
	}
	return n
}

// ITSIn reports the planted ITS entries for one binary name.
func (m *Manifest) ITSIn(binary string) []ITSTruth {
	var out []ITSTruth
	for _, s := range m.ITS {
		if s.Binary == binary {
			out = append(out, s)
		}
	}
	return out
}

// HandlerAt returns the handler truth containing the function entry.
func (m *Manifest) HandlerAt(binary string, entry uint32) (HandlerTruth, bool) {
	for _, h := range m.Handlers {
		if h.Binary == binary && h.Entry == entry {
			return h, true
		}
	}
	return HandlerTruth{}, false
}

// HandlerBySink resolves the handler whose sink call lives in the function
// at entry (the flow's innermost wrapper for deep bugs).
func (m *Manifest) HandlerBySink(binary string, entry uint32) (HandlerTruth, bool) {
	for _, h := range m.Handlers {
		if h.Binary == binary && h.SinkEntry == entry {
			return h, true
		}
	}
	return HandlerTruth{}, false
}

// Sample is one generated firmware with its packaging and ground truth.
type Sample struct {
	Image    *firmware.Image
	Packed   []byte
	Manifest Manifest
}
