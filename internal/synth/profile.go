package synth

import (
	"fmt"
	"hash/fnv"

	"fits/internal/firmware"
	"fits/internal/isa"
)

// rng ranges are [lo, hi] inclusive.
type span [2]int

// VendorProfile captures how one vendor's firmware is structured: sizes,
// architecture, encryption, request-buffer placement, and the mix of
// handlers and confounders. The knobs are chosen so the corpus reproduces
// the per-vendor contrasts of the paper's Tables 3 and 5.
type VendorProfile struct {
	Name      string
	Series    []string
	Archs     []isa.Arch
	Scheme    firmware.Scheme
	BinName   string // network binary file name
	BinDir    string
	HeapReq   bool // request buffer on the heap (TP-Link-style)
	RecvDepth span
	DeepExtra span
	ITSCount  span
	// StrongChoices is the distribution of ITS-like confounder counts: one
	// entry is drawn per sample. LatestStrong, when non-empty, overrides it
	// for latest-firmware samples. Each confounder present outranks the
	// true ITS with high probability, shaping the top-1/2/3 split.
	StrongChoices []int
	LatestStrong  []int
	Weak          span
	Loggers       span
	Filler        span
	// Handler counts by category.
	VulnShallowN span
	VulnDeepN    span
	SanitizedN   span
	BenignN      span
	SysKeyN      span
	RawN         span
	SafeRawN     span
}

// Profiles are the five vendors of the dataset.
var Profiles = map[string]VendorProfile{
	"NETGEAR": {
		Name: "NETGEAR", Series: []string{"R", "XR", "WNR"},
		Archs:  []isa.Arch{isa.ArchARM, isa.ArchAARCH},
		Scheme: firmware.SchemeNone, BinName: "httpd", BinDir: "bin",
		RecvDepth: span{4, 6}, DeepExtra: span{2, 3},
		ITSCount: span{1, 2}, StrongChoices: []int{0, 0, 0, 0, 0, 1, 1}, LatestStrong: []int{0},
		Weak: span{3, 5}, Loggers: span{1, 2},
		Filler:       span{260, 420},
		VulnShallowN: span{4, 6}, VulnDeepN: span{2, 4},
		SanitizedN: span{2, 3}, BenignN: span{6, 10}, SysKeyN: span{1, 2},
		RawN: span{1, 1}, SafeRawN: span{0, 1},
	},
	"D-Link": {
		Name: "D-Link", Series: []string{"DIR", "DWR", "DCS", "DAP"},
		Archs:  []isa.Arch{isa.ArchMIPS, isa.ArchARM},
		Scheme: firmware.SchemeXOR, BinName: "prog.cgi", BinDir: "bin",
		RecvDepth: span{3, 5}, DeepExtra: span{2, 4},
		ITSCount: span{1, 1}, StrongChoices: []int{0, 0, 2, 2, 2}, LatestStrong: []int{0, 2, 2},
		Weak: span{2, 4}, Loggers: span{2, 3},
		Filler:       span{120, 300},
		VulnShallowN: span{1, 2}, VulnDeepN: span{1, 2},
		SanitizedN: span{1, 2}, BenignN: span{0, 1}, SysKeyN: span{1, 1},
		RawN: span{1, 2}, SafeRawN: span{0, 1},
	},
	"TP-Link": {
		Name: "TP-Link", Series: []string{"TD", "WA", "WR", "TX", "KC", "AP", "C"},
		Archs:  []isa.Arch{isa.ArchMIPS, isa.ArchAARCH},
		Scheme: firmware.SchemeStream, BinName: "httpd", BinDir: "usr/bin",
		HeapReq:   true,
		RecvDepth: span{3, 5}, DeepExtra: span{2, 3},
		ITSCount: span{1, 1}, StrongChoices: []int{0, 0, 1, 1, 2}, LatestStrong: []int{2, 2},
		Weak: span{2, 4}, Loggers: span{1, 3},
		Filler:       span{80, 320},
		VulnShallowN: span{0, 1}, VulnDeepN: span{0, 1},
		SanitizedN: span{2, 4}, BenignN: span{1, 2}, SysKeyN: span{1, 2},
		RawN: span{0, 1}, SafeRawN: span{0, 1},
	},
	"Tenda": {
		Name: "Tenda", Series: []string{"AC", "WH", "FH", "G"},
		Archs:  []isa.Arch{isa.ArchARM},
		Scheme: firmware.SchemeXOR, BinName: "httpd", BinDir: "bin",
		RecvDepth: span{2, 4}, DeepExtra: span{2, 3},
		ITSCount: span{1, 2}, StrongChoices: []int{0, 0, 0, 0, 2, 2, 2}, LatestStrong: []int{0, 2},
		Weak: span{2, 3}, Loggers: span{1, 2},
		Filler:       span{200, 380},
		VulnShallowN: span{6, 9}, VulnDeepN: span{3, 4},
		SanitizedN: span{1, 2}, BenignN: span{0, 1}, SysKeyN: span{1, 2},
		RawN: span{1, 1}, SafeRawN: span{0, 1},
	},
	"Cisco": {
		Name: "Cisco", Series: []string{"RV"},
		Archs:  []isa.Arch{isa.ArchARM},
		Scheme: firmware.SchemeStream, BinName: "httpd", BinDir: "usr/sbin",
		HeapReq:   true,
		RecvDepth: span{5, 6}, DeepExtra: span{3, 4},
		ITSCount: span{1, 1}, StrongChoices: []int{2}, LatestStrong: []int{2},
		Weak: span{3, 4}, Loggers: span{1, 1},
		Filler:       span{300, 380},
		VulnShallowN: span{22, 26}, VulnDeepN: span{10, 14},
		SanitizedN: span{3, 4}, BenignN: span{4, 6}, SysKeyN: span{2, 3},
		RawN: span{0, 0}, SafeRawN: span{0, 0},
	},
}

// SampleSpec identifies one firmware sample of the dataset.
type SampleSpec struct {
	Vendor  string
	Series  string
	Product string
	Version string
	Latest  bool
	// FailureMode: "", "preprocess-miss" or "offset-indexed".
	FailureMode string
	Seed        int64
	// ExtraHandlers plants additional handlers of the given categories in
	// the main network binary, on top of the vendor profile's mix. The
	// precision evaluation uses this to plant SafeInfeasible and
	// VulnAliased cases; Dataset() leaves it nil so the standard corpus is
	// byte-identical.
	ExtraHandlers map[HandlerCategory]int
}

func specSeed(vendor, product, version string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s", vendor, product, version)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Dataset returns the 59 sample specifications: the 49 Karonte-dataset
// samples and the 10 latest-firmware samples, with the six engineered
// failures distributed as in the paper (four pre-processing misses, two
// offset-indexed designs).
func Dataset() []SampleSpec {
	var out []SampleSpec
	add := func(vendor string, count int, latest bool, failures map[int]string) {
		p := Profiles[vendor]
		for i := 0; i < count; i++ {
			series := p.Series[i%len(p.Series)]
			gen := 1000 + 37*i
			version := fmt.Sprintf("V1.%d.%d.%d", i%4, i%10, 10+i)
			suffix := ""
			if latest {
				suffix = "N"
				version = fmt.Sprintf("V2.%d.%d.%d", i%3, i%8, 20+i)
			}
			product := fmt.Sprintf("%s%d%s", series, gen, suffix)
			out = append(out, SampleSpec{
				Vendor:      vendor,
				Series:      series,
				Product:     product,
				Version:     version,
				Latest:      latest,
				FailureMode: failures[i],
				Seed:        specSeed(vendor, product, version),
			})
		}
	}
	// Karonte dataset: 49 samples.
	add("NETGEAR", 17, false, nil)
	add("D-Link", 9, false, map[int]string{2: "preprocess-miss", 6: "offset-indexed"})
	add("TP-Link", 16, false, map[int]string{3: "preprocess-miss", 9: "preprocess-miss", 13: "offset-indexed"})
	add("Tenda", 7, false, map[int]string{4: "preprocess-miss"})
	// Latest firmware: 10 samples.
	add("NETGEAR", 2, true, nil)
	add("D-Link", 3, true, nil)
	add("TP-Link", 2, true, nil)
	add("Tenda", 2, true, nil)
	add("Cisco", 1, true, nil)
	return out
}

func pick(r interface{ Intn(int) int }, s span) int {
	if s[1] <= s[0] {
		return s[0]
	}
	return s[0] + r.Intn(s[1]-s[0]+1)
}
