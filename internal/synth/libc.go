package synth

import (
	"fmt"
	"math/rand"

	"fits/internal/minic"
)

// System primitive numbers used by libc implementations. The emulator's
// support handler (package emu users) and the generated code agree on them.
const (
	SysRecv = iota + 1
	SysRead
	SysRecvfrom
	SysFgets
	SysGets
	SysGetenv
	SysBIORead
	SysFread
	SysSocket
	SysBind
	SysListen
	SysAccept
	SysSprintf
	SysSnprintf
	SysPrintf
	SysFprintf
	SysSystem
	SysExecve
	SysPopen
	SysExit
	SysNvramGet
	SysNvramSet
	SysEnvGet
	SysEnvSet
	SysSpawn
	SysGetArg
)

// sysFuncs are the libc functions implemented as system primitives: the
// interface functions (sources), the risky functions (sinks) and odds and
// ends. Arity is the parameter count.
var sysFuncs = []struct {
	name  string
	arity int
	num   int32
}{
	{"recv", 4, SysRecv},
	{"read", 3, SysRead},
	{"recvfrom", 4, SysRecvfrom},
	{"fgets", 3, SysFgets},
	{"gets", 1, SysGets},
	{"getenv", 1, SysGetenv},
	{"BIO_read", 3, SysBIORead},
	{"fread", 4, SysFread},
	{"socket", 3, SysSocket},
	{"bind", 3, SysBind},
	{"listen", 2, SysListen},
	{"accept", 3, SysAccept},
	{"sprintf", 4, SysSprintf},
	{"snprintf", 4, SysSnprintf},
	{"printf", 3, SysPrintf},
	{"fprintf", 4, SysFprintf},
	{"system", 1, SysSystem},
	{"execve", 3, SysExecve},
	{"popen", 2, SysPopen},
	{"exit", 1, SysExit},
	// Cross-binary channel accessors: the nvram-like configuration store,
	// the process environment, and spawned-helper argv. Deliberately not
	// getenv/setenv — getenv is already a classical taint source, and the
	// corpus evaluation needs channels the single-binary engines are blind
	// to.
	{"nvram_get", 1, SysNvramGet},
	{"nvram_set", 2, SysNvramSet},
	{"env_get", 1, SysEnvGet},
	{"env_set", 2, SysEnvSet},
	{"fw_spawn", 2, SysSpawn},
	{"fw_getarg", 1, SysGetArg},
}

// LibcProgram builds the shared C library of a firmware sample. Anchor
// functions are implemented as genuine loops over memory so that their
// behavioral feature vectors are extracted from real code, exactly as the
// paper extracts anchors from the firmware's own dependency libraries.
// r varies incidental details so that every vendor ships a slightly
// different libc build.
func LibcProgram(r *rand.Rand) *minic.Program {
	p := &minic.Program{
		Name:    "libc.so",
		Library: true,
		Globals: []*minic.Global{
			{Name: "__heap", Size: 1 << 16},
			{Name: "__brk", Size: 4},
			{Name: "__errstr", Size: 4, Init: make([]byte, 4),
				Ptrs: []minic.PtrInit{{Off: 0, Str: "libc: internal error"}}},
		},
	}
	exp := func(name string, nparams int, body []minic.Stmt) {
		p.Funcs = append(p.Funcs, &minic.Func{Name: name, NParams: nparams, Exported: true, Body: body})
	}
	intern := func(name string, nparams int, body []minic.Stmt) {
		p.Funcs = append(p.Funcs, &minic.Func{Name: name, NParams: nparams, Body: body})
	}

	v := func(name string) minic.Expr { return minic.Var(name) }
	i32 := func(x int32) minic.Expr { return minic.Int(x) }

	// strlen(s): scan for NUL.
	exp("strlen", 1, []minic.Stmt{
		minic.Let{Name: "n", E: i32(0)},
		minic.While{Cond: minic.Truthy(minic.LoadB(minic.Add(v("p0"), v("n")))),
			Body: []minic.Stmt{minic.Assign{Name: "n", E: minic.Add(v("n"), i32(1))}}},
		minic.Return{E: v("n")},
	})

	// strcpy(dst, src): copy through NUL, return dst.
	exp("strcpy", 2, []minic.Stmt{
		minic.Let{Name: "i", E: i32(0)},
		minic.Let{Name: "c", E: minic.LoadB(v("p1"))},
		minic.While{Cond: minic.Truthy(v("c")), Body: []minic.Stmt{
			minic.StoreStmt{Size: 1, Addr: minic.Add(v("p0"), v("i")), Val: v("c")},
			minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
			minic.Assign{Name: "c", E: minic.LoadB(minic.Add(v("p1"), v("i")))},
		}},
		minic.StoreStmt{Size: 1, Addr: minic.Add(v("p0"), v("i")), Val: i32(0)},
		minic.Return{E: v("p0")},
	})

	// strncpy(dst, src, n).
	exp("strncpy", 3, []minic.Stmt{
		minic.Let{Name: "i", E: i32(0)},
		minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p2")}, Body: []minic.Stmt{
			minic.Let{Name: "c", E: minic.LoadB(minic.Add(v("p1"), v("i")))},
			minic.StoreStmt{Size: 1, Addr: minic.Add(v("p0"), v("i")), Val: v("c")},
			minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("c"), R: i32(0)},
				Then: []minic.Stmt{minic.Return{E: v("p0")}}},
			minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
		}},
		minic.Return{E: v("p0")},
	})

	// strcat(dst, src): append, using strlen.
	exp("strcat", 2, []minic.Stmt{
		minic.Let{Name: "n", E: minic.Call{Name: "strlen", Args: []minic.Expr{v("p0")}}},
		minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{minic.Add(v("p0"), v("n")), v("p1")}}},
		minic.Return{E: v("p0")},
	})

	// strncat(dst, src, n).
	exp("strncat", 3, []minic.Stmt{
		minic.Let{Name: "n", E: minic.Call{Name: "strlen", Args: []minic.Expr{v("p0")}}},
		minic.ExprStmt{E: minic.Call{Name: "strncpy", Args: []minic.Expr{minic.Add(v("p0"), v("n")), v("p1"), v("p2")}}},
		minic.Return{E: v("p0")},
	})

	// strcmp(a, b).
	exp("strcmp", 2, []minic.Stmt{
		minic.Let{Name: "i", E: i32(0)},
		minic.Let{Name: "ca", E: minic.LoadB(v("p0"))},
		minic.Let{Name: "cb", E: minic.LoadB(v("p1"))},
		minic.While{Cond: minic.Cond{Op: minic.Eq, L: v("ca"), R: v("cb")}, Body: []minic.Stmt{
			minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("ca"), R: i32(0)},
				Then: []minic.Stmt{minic.Return{E: i32(0)}}},
			minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
			minic.Assign{Name: "ca", E: minic.LoadB(minic.Add(v("p0"), v("i")))},
			minic.Assign{Name: "cb", E: minic.LoadB(minic.Add(v("p1"), v("i")))},
		}},
		minic.Return{E: minic.Sub(v("ca"), v("cb"))},
	})

	// strncmp(a, b, n).
	exp("strncmp", 3, []minic.Stmt{
		minic.Let{Name: "i", E: i32(0)},
		minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p2")}, Body: []minic.Stmt{
			minic.Let{Name: "ca", E: minic.LoadB(minic.Add(v("p0"), v("i")))},
			minic.Let{Name: "cb", E: minic.LoadB(minic.Add(v("p1"), v("i")))},
			minic.If{Cond: minic.Cond{Op: minic.Ne, L: v("ca"), R: v("cb")},
				Then: []minic.Stmt{minic.Return{E: minic.Sub(v("ca"), v("cb"))}}},
			minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("ca"), R: i32(0)},
				Then: []minic.Stmt{minic.Return{E: i32(0)}}},
			minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
		}},
		minic.Return{E: i32(0)},
	})

	// strchr(s, c).
	exp("strchr", 2, []minic.Stmt{
		minic.Let{Name: "i", E: i32(0)},
		minic.Let{Name: "ch", E: minic.LoadB(v("p0"))},
		minic.While{Cond: minic.Truthy(v("ch")), Body: []minic.Stmt{
			minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("ch"), R: v("p1")},
				Then: []minic.Stmt{minic.Return{E: minic.Add(v("p0"), v("i"))}}},
			minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
			minic.Assign{Name: "ch", E: minic.LoadB(minic.Add(v("p0"), v("i")))},
		}},
		minic.Return{E: i32(0)},
	})

	// strstr(haystack, needle): scan with strncmp, as in Figure 2.
	exp("strstr", 2, []minic.Stmt{
		minic.Let{Name: "nl", E: minic.Call{Name: "strlen", Args: []minic.Expr{v("p1")}}},
		minic.Let{Name: "i", E: i32(0)},
		minic.While{Cond: minic.Truthy(minic.LoadB(minic.Add(v("p0"), v("i")))), Body: []minic.Stmt{
			minic.If{Cond: minic.Cond{Op: minic.Eq,
				L: minic.Call{Name: "strncmp", Args: []minic.Expr{minic.Add(v("p0"), v("i")), v("p1"), v("nl")}},
				R: i32(0)},
				Then: []minic.Stmt{minic.Return{E: minic.Add(v("p0"), v("i"))}}},
			minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
		}},
		minic.Return{E: i32(0)},
	})

	// memcpy(dst, src, n) / memmove.
	copyBody := func() []minic.Stmt {
		return []minic.Stmt{
			minic.Let{Name: "i", E: i32(0)},
			minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p2")}, Body: []minic.Stmt{
				minic.StoreStmt{Size: 1, Addr: minic.Add(v("p0"), v("i")),
					Val: minic.LoadB(minic.Add(v("p1"), v("i")))},
				minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
			}},
			minic.Return{E: v("p0")},
		}
	}
	exp("memcpy", 3, copyBody())
	exp("memmove", 3, copyBody())

	// memcmp(a, b, n).
	exp("memcmp", 3, []minic.Stmt{
		minic.Let{Name: "i", E: i32(0)},
		minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p2")}, Body: []minic.Stmt{
			minic.Let{Name: "d", E: minic.Sub(minic.LoadB(minic.Add(v("p0"), v("i"))),
				minic.LoadB(minic.Add(v("p1"), v("i"))))},
			minic.If{Cond: minic.Truthy(v("d")), Then: []minic.Stmt{minic.Return{E: v("d")}}},
			minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
		}},
		minic.Return{E: i32(0)},
	})

	// memchr(s, c, n).
	exp("memchr", 3, []minic.Stmt{
		minic.Let{Name: "i", E: i32(0)},
		minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p2")}, Body: []minic.Stmt{
			minic.If{Cond: minic.Cond{Op: minic.Eq, L: minic.LoadB(minic.Add(v("p0"), v("i"))), R: v("p1")},
				Then: []minic.Stmt{minic.Return{E: minic.Add(v("p0"), v("i"))}}},
			minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
		}},
		minic.Return{E: i32(0)},
	})

	// memset(s, c, n).
	exp("memset", 3, []minic.Stmt{
		minic.Let{Name: "i", E: i32(0)},
		minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p2")}, Body: []minic.Stmt{
			minic.StoreStmt{Size: 1, Addr: minic.Add(v("p0"), v("i")), Val: v("p1")},
			minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
		}},
		minic.Return{E: v("p0")},
	})

	// atoi(s): digit loop.
	exp("atoi", 1, []minic.Stmt{
		minic.Let{Name: "n", E: i32(0)},
		minic.Let{Name: "i", E: i32(0)},
		minic.Let{Name: "c", E: minic.LoadB(v("p0"))},
		minic.While{Cond: minic.Cond{Op: minic.Ge, L: v("c"), R: i32('0')}, Body: []minic.Stmt{
			minic.If{Cond: minic.Cond{Op: minic.Gt, L: v("c"), R: i32('9')},
				Then: []minic.Stmt{minic.Return{E: v("n")}}},
			minic.Assign{Name: "n", E: minic.Add(minic.Mul(v("n"), i32(10)), minic.Sub(v("c"), i32('0')))},
			minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
			minic.Assign{Name: "c", E: minic.LoadB(minic.Add(v("p0"), v("i")))},
		}},
		minic.Return{E: v("n")},
	})

	// malloc(n): bump allocator over the library heap, word-aligned.
	exp("malloc", 1, []minic.Stmt{
		minic.Let{Name: "p", E: minic.LoadW(minic.GlobalRef("__brk"))},
		minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("p"), R: i32(0)},
			Then: []minic.Stmt{minic.Assign{Name: "p", E: minic.GlobalRef("__heap")}}},
		minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("__brk"),
			Val: minic.Add(v("p"), minic.Bin{Op: minic.OpAnd, L: minic.Add(v("p0"), i32(7)), R: i32(-8)})},
		minic.Return{E: v("p")},
	})
	exp("calloc", 2, []minic.Stmt{
		minic.Let{Name: "p", E: minic.Call{Name: "malloc", Args: []minic.Expr{minic.Mul(v("p0"), v("p1"))}}},
		minic.ExprStmt{E: minic.Call{Name: "memset", Args: []minic.Expr{v("p"), i32(0), minic.Mul(v("p0"), v("p1"))}}},
		minic.Return{E: v("p")},
	})
	exp("free", 1, []minic.Stmt{minic.Return{E: i32(0)}})

	// System-primitive functions.
	for _, sf := range sysFuncs {
		exp(sf.name, sf.arity, []minic.Stmt{
			minic.Syscall{Num: sf.num},
			minic.Return{E: nil},
		})
	}

	// Internal helpers that call anchors with string literals, so the
	// anchors' interprocedural features (callers, string arguments) are
	// populated from real call sites inside the library.
	intern("__assert_fail", 1, []minic.Stmt{
		minic.ExprStmt{E: minic.Call{Name: "strlen", Args: []minic.Expr{v("p0")}}},
		minic.ExprStmt{E: minic.Call{Name: "fprintf", Args: []minic.Expr{i32(2), minic.Str("assertion failed: %s"), v("p0")}}},
		minic.ExprStmt{E: minic.Call{Name: "exit", Args: []minic.Expr{i32(1)}}},
		minic.Return{E: i32(0)},
	})
	intern("__locale_is", 1, []minic.Stmt{
		minic.Return{E: minic.Call{Name: "strcmp", Args: []minic.Expr{v("p0"), minic.Str("en_US")}}},
	})
	intern("__find_proto", 1, []minic.Stmt{
		minic.Return{E: minic.Call{Name: "strstr", Args: []minic.Expr{v("p0"), minic.Str("http://")}}},
	})
	intern("__copy_default", 1, []minic.Stmt{
		minic.Return{E: minic.Call{Name: "strcpy", Args: []minic.Expr{v("p0"), minic.Str("admin")}}},
	})
	intern("__check_magic", 1, []minic.Stmt{
		minic.Return{E: minic.Call{Name: "strncmp", Args: []minic.Expr{v("p0"), minic.Str("HDR1"), i32(4)}}},
	})
	intern("__dup_small", 1, []minic.Stmt{
		minic.Let{Name: "n", E: minic.Call{Name: "strlen", Args: []minic.Expr{v("p0")}}},
		minic.Let{Name: "q", E: minic.Call{Name: "malloc", Args: []minic.Expr{minic.Add(v("n"), i32(1))}}},
		minic.ExprStmt{E: minic.Call{Name: "memcpy", Args: []minic.Expr{v("q"), v("p0"), minic.Add(v("n"), i32(1))}}},
		minic.Return{E: v("q")},
	})
	// Entry that exercises the internal helpers.
	intern("__libc_init", 0, []minic.Stmt{
		minic.ExprStmt{E: minic.Call{Name: "__locale_is", Args: []minic.Expr{minic.Str("en_US")}}},
		minic.ExprStmt{E: minic.Call{Name: "__find_proto", Args: []minic.Expr{minic.Str("http://device.local")}}},
		minic.ExprStmt{E: minic.Call{Name: "__check_magic", Args: []minic.Expr{minic.Str("HDR1")}}},
		minic.ExprStmt{E: minic.Call{Name: "__dup_small", Args: []minic.Expr{minic.Str("admin")}}},
		minic.ExprStmt{E: minic.Call{Name: "memchr", Args: []minic.Expr{minic.Str("abc"), i32('b'), i32(3)}}},
		minic.ExprStmt{E: minic.Call{Name: "memmove", Args: []minic.Expr{minic.GlobalRef("__heap"), minic.Str("seed"), i32(4)}}},
		minic.ExprStmt{E: minic.Call{Name: "strncat", Args: []minic.Expr{minic.GlobalRef("__heap"), minic.Str("x"), i32(1)}}},
		minic.ExprStmt{E: minic.Call{Name: "strcat", Args: []minic.Expr{minic.GlobalRef("__heap"), minic.Str("y")}}},
		minic.ExprStmt{E: minic.Call{Name: "strchr", Args: []minic.Expr{minic.Str("path/x"), i32('/')}}},
		minic.ExprStmt{E: minic.Call{Name: "strncpy", Args: []minic.Expr{minic.GlobalRef("__heap"), minic.Str("dflt"), i32(4)}}},
		minic.ExprStmt{E: minic.Call{Name: "memcmp", Args: []minic.Expr{minic.GlobalRef("__heap"), minic.Str("dflt"), i32(4)}}},
		minic.ExprStmt{E: minic.Call{Name: "atoi", Args: []minic.Expr{minic.Str("8080")}}},
		minic.ExprStmt{E: minic.Call{Name: "calloc", Args: []minic.Expr{i32(4), i32(8)}}},
		minic.Return{E: i32(0)},
	})

	// Vendor variation: a few extra internal helpers in random order.
	extra := 2 + r.Intn(4)
	for i := 0; i < extra; i++ {
		name := fmt.Sprintf("__aux_%d", i)
		intern(name, 1, []minic.Stmt{
			minic.Let{Name: "x", E: minic.Mul(v("p0"), i32(int32(3+r.Intn(9))))},
			minic.Return{E: minic.Add(v("x"), i32(int32(r.Intn(100))))},
		})
	}
	return p
}
