package synth

import (
	"fmt"
	"math/rand"

	"fits/internal/binimg"
	"fits/internal/firmware"
	"fits/internal/minic"
)

// pickStrong draws the ITS-like confounder count from the vendor's
// distribution, using the latest-firmware override when present.
func pickStrong(r *rand.Rand, p VendorProfile, latest bool) int {
	choices := p.StrongChoices
	if latest && len(p.LatestStrong) > 0 {
		choices = p.LatestStrong
	}
	if len(choices) == 0 {
		return 0
	}
	return choices[r.Intn(len(choices))]
}

// shimProgram builds the network shim library used by the pre-processing
// failure mode: it exports shim_* wrappers so the application binary never
// imports the interface functions directly.
func shimProgram() *minic.Program {
	p := &minic.Program{Name: "libnetshim.so", Library: true}
	wrap := func(name string, arity int) {
		args := make([]minic.Expr, arity)
		for i := range args {
			args[i] = minic.Var(fmt.Sprintf("p%d", i))
		}
		p.Funcs = append(p.Funcs, &minic.Func{
			Name: "shim_" + name, NParams: arity, Exported: true,
			Body: []minic.Stmt{minic.Return{E: minic.Call{Name: name, Args: args}}},
		})
	}
	wrap("socket", 3)
	wrap("bind", 3)
	wrap("listen", 2)
	wrap("accept", 3)
	wrap("recv", 4)
	return p
}

// Generate builds one complete firmware sample from its specification.
func Generate(spec SampleSpec) (*Sample, error) {
	profile, ok := Profiles[spec.Vendor]
	if !ok {
		return nil, fmt.Errorf("synth: unknown vendor %q", spec.Vendor)
	}
	r := rand.New(rand.NewSource(spec.Seed))
	arch := profile.Archs[r.Intn(len(profile.Archs))]

	knobs := appKnobs{
		Name:       profile.BinName,
		HeapReqbuf: profile.HeapReq,
		RecvDepth:  pick(r, profile.RecvDepth),
		ITSCount:   pick(r, profile.ITSCount),
		Strong:     pickStrong(r, profile, spec.Latest),
		Weak:       pick(r, profile.Weak),
		Loggers:    pick(r, profile.Loggers),
		Filler:     pick(r, profile.Filler),
		DeepExtra:  pick(r, profile.DeepExtra),
		Handlers: map[HandlerCategory]int{
			VulnShallow:      pick(r, profile.VulnShallowN),
			VulnDeep:         pick(r, profile.VulnDeepN),
			SafeSanitized:    pick(r, profile.SanitizedN),
			BenignSystemData: pick(r, profile.BenignN),
			SystemKeyFetch:   pick(r, profile.SysKeyN),
			VulnRaw:          pick(r, profile.RawN),
			SafeRaw:          pick(r, profile.SafeRawN),
		},
	}
	// Latest firmware carries more functionality (and more bugs), as the
	// newest NETGEAR/Tenda/Cisco samples do in the paper.
	if spec.Latest && spec.Vendor != "TP-Link" && spec.Vendor != "D-Link" {
		knobs.Handlers[VulnShallow] += 4 + r.Intn(4)
		knobs.Handlers[VulnDeep] += 2 + r.Intn(2)
	}
	for cat, n := range spec.ExtraHandlers {
		knobs.Handlers[cat] += n
	}
	switch spec.FailureMode {
	case "preprocess-miss":
		knobs.ShimNet = true
	case "offset-indexed":
		knobs.OffsetIndexed = true
		knobs.Filler = 40 + r.Intn(40) // simple devices are small
	}

	// Build and link the programs.
	libcProg := LibcProgram(r)
	libcBin, err := minic.Link(libcProg, arch, nil)
	if err != nil {
		return nil, fmt.Errorf("synth: libc: %w", err)
	}

	app := buildApp(r, knobs)
	// NETGEAR-profile firmware carries a second network binary — a CGI
	// helper the web server delegates to — reproducing the paper's
	// multi-binary input handling (its Table 4 lists netcgi targets). The
	// helper has its own fetch function and a clone-confounder pair, so it
	// does not perturb the per-sample top-k outcome of the main binary.
	var cgi appResult
	hasCGI := spec.Vendor == "NETGEAR" && spec.FailureMode == ""
	if hasCGI {
		cgi = buildApp(r, appKnobs{
			Name:      "netcgi",
			RecvDepth: 2 + r.Intn(2),
			ITSCount:  1,
			Strong:    2,
			Weak:      1,
			Loggers:   1,
			Filler:    60 + r.Intn(60),
			DeepExtra: 2,
			Handlers: map[HandlerCategory]int{
				VulnShallow:      1,
				SafeSanitized:    1,
				BenignSystemData: 1,
			},
		})
	}
	needed := []string{"libc.so"}
	var shimBin *binimg.Binary
	if knobs.ShimNet {
		shimProg := shimProgram()
		shimBin, err = minic.Link(shimProg, arch, []string{"libc.so"})
		if err != nil {
			return nil, fmt.Errorf("synth: shim: %w", err)
		}
		needed = []string{"libnetshim.so", "libc.so"}
	}
	appBin, err := minic.Link(app.Prog, arch, needed)
	if err != nil {
		return nil, fmt.Errorf("synth: app: %w", err)
	}

	// Fill manifest entries from the pre-strip symbol table.
	man := Manifest{
		Vendor:      spec.Vendor,
		Product:     spec.Product,
		Version:     spec.Version,
		Series:      spec.Series,
		Arch:        arch,
		Scheme:      profile.Scheme,
		Latest:      spec.Latest,
		FailureMode: spec.FailureMode,
	}
	var cgiBin *binimg.Binary
	if hasCGI {
		cgiBin, err = minic.Link(cgi.Prog, arch, needed)
		if err != nil {
			return nil, fmt.Errorf("synth: cgi: %w", err)
		}
	}

	binPath := profile.BinDir + "/" + profile.BinName
	man.NetBinaries = []string{binPath}
	recordTruth := func(res appResult, bin *binimg.Binary, name string) {
		addrOf := map[string]uint32{}
		for _, s := range bin.Funcs {
			addrOf[s.Name] = s.Addr
		}
		for _, fn := range res.ITSNames {
			man.ITS = append(man.ITS, ITSTruth{
				Binary: name, FuncName: fn, Entry: addrOf[fn], TaintsReturn: true,
			})
		}
		for _, h := range res.Handlers {
			h.Binary = name
			h.Entry = addrOf[h.FuncName]
			h.SinkEntry = addrOf[h.SinkFuncName]
			man.Handlers = append(man.Handlers, h)
		}
	}
	recordTruth(app, appBin, profile.BinName)
	if hasCGI {
		man.NetBinaries = append(man.NetBinaries, "bin/netcgi")
		recordTruth(cgi, cgiBin, "netcgi")
	}

	// Production firmware ships stripped.
	appBin.Strip()
	libcBin.Strip()
	if shimBin != nil {
		shimBin.Strip()
	}
	if cgiBin != nil {
		cgiBin.Strip()
	}

	// Assemble the filesystem.
	img := &firmware.Image{
		Vendor:  spec.Vendor,
		Product: spec.Product,
		Version: spec.Version,
		Files: []firmware.File{
			{Path: binPath, Data: appBin.Encode()},
			{Path: "lib/libc.so", Data: libcBin.Encode()},
			{Path: "etc/version", Data: []byte(spec.Version + "\n")},
			{Path: "etc/board.info", Data: []byte(fmt.Sprintf("vendor=%s\nmodel=%s\narch=%s\n", spec.Vendor, spec.Product, arch))},
			{Path: "www/index.html", Data: []byte("<html><body>" + spec.Product + "</body></html>")},
		},
	}
	if shimBin != nil {
		img.Files = append(img.Files, firmware.File{Path: "lib/libnetshim.so", Data: shimBin.Encode()})
	}
	if cgiBin != nil {
		img.Files = append(img.Files, firmware.File{Path: "bin/netcgi", Data: cgiBin.Encode()})
	}

	packed := img.Pack(firmware.PackOptions{
		Scheme:  profile.Scheme,
		Key:     r.Uint32(),
		Padding: 256 + r.Intn(2048),
		PadSeed: byte(r.Uint32()),
	})
	return &Sample{Image: img, Packed: packed, Manifest: man}, nil
}

// GenerateCorpus builds the full 59-sample dataset.
func GenerateCorpus() ([]*Sample, error) {
	specs := Dataset()
	out := make([]*Sample, 0, len(specs))
	for _, spec := range specs {
		s, err := Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", spec.Vendor, spec.Product, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// Sample accessors used by tests and examples.

// AppBinary decodes the network binary of a sample.
func (s *Sample) AppBinary() (*binimg.Binary, error) {
	f, ok := s.Image.Lookup(s.Manifest.NetBinaries[0])
	if !ok {
		return nil, fmt.Errorf("synth: network binary missing")
	}
	return binimg.Decode(f.Data)
}

// LibcBinary decodes the sample's libc.
func (s *Sample) LibcBinary() (*binimg.Binary, error) {
	f, ok := s.Image.Lookup("lib/libc.so")
	if !ok {
		return nil, fmt.Errorf("synth: libc missing")
	}
	return binimg.Decode(f.Data)
}
