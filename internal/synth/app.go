package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"fits/internal/minic"
)

// appKnobs parameterizes one generated network binary.
type appKnobs struct {
	Name       string
	HeapReqbuf bool // request buffer on the heap (defeats coarse CTS taint)
	RecvDepth  int  // wrapper layers between the interface call and parsing
	ITSCount   int
	Strong     int // ITS-like confounders (duplicators, token finders)
	Weak       int // simple confounders (checksums, table lookups)
	Loggers    int // error-output confounders with many callers
	Filler     int
	Handlers   map[HandlerCategory]int
	DeepExtra  int // wrapper layers added to deep-bug handlers
	// OffsetIndexed replaces keyed fetching with fixed offsets (no ITS).
	OffsetIndexed bool
	// ShimNet routes interface functions through a shim library, hiding
	// the network imports from the selection heuristic.
	ShimNet bool
}

// appResult carries the program plus the ground-truth fragments that depend
// on generated names; entry addresses are filled in after linking.
type appResult struct {
	Prog     *minic.Program
	ITSNames []string
	Handlers []HandlerTruth // Entry filled later
	// FetchVariant is the keyed-fetch body shape the ITS functions use;
	// evolution chains need it to refactor an ITS into a different shape.
	FetchVariant int
}

// Request field keys seen in device web interfaces.
var userKeys = []string{
	"username", "password", "ssid", "passphrase", "hostname", "url",
	"lang", "timezone", "email", "portfwd", "filename", "comment",
	"nickname", "domain", "ntp_server", "share_name", "dev_alias",
	"wps_pin", "ddns_user", "ddns_pass",
}

// System-data keys; fetches of these are filtered by the alert string
// filter, as in the paper's STA-ITS setup.
var SystemKeys = []string{"mac_addr", "lan_ip", "subnet_mask", "gateway", "dns_server"}

// hiddenSystemKeys are system-data fields whose names the string filter does
// not recognize; fetches of these survive filtering and remain false
// positives, the residue the paper reports after filtering.
var hiddenSystemKeys = []string{"fw_build", "board_id", "wl_country", "hw_rev", "serial_no"}

// anchorLits are the configuration strings filler code hands to anchor
// functions; real firmware passes paths, interface names, headers and MIME
// types to libc string routines all over the binary.
var anchorLits = []string{
	"admin", "guest", "wan", "lan", "dhcp", "pppoe", "wpa2-psk", "8.8.8.8",
	"/etc/passwd", "/var/run/httpd.pid", "/tmp/upload", "/proc/net/dev",
	"Content-Type", "Content-Length", "Authorization", "Cookie", "Host",
	"text/html", "application/json", "multipart/form-data", "keep-alive",
	"GET", "POST", "HTTP/1.1", "index.html", "login.cgi", "status.xml",
	"br0", "eth0", "ath0", "ra0", "usb0", "ipv6", "ntp.pool.org",
	"firmware.bin", "nvram", "reboot", "factory-reset", "syslog", "telnetd",
}

var logMessages = []string{
	"socket create failed", "bind failed", "listen failed", "accept failed",
	"read timeout", "parse error", "auth required", "session expired",
	"upload too large", "bad content length", "unsupported method",
	"config locked", "nvram write failed", "wan link down", "dhcp renew failed",
}

// appBuilder accumulates one program.
type appBuilder struct {
	r     *rand.Rand
	knobs appKnobs
	p     *minic.Program
	res   appResult

	fetchVariant int
	loggers      []string // error logger function names
	fillers      []string // filler function names (call forest leaves first)
	handlers     []string // handler function names in table order
}

func v(name string) minic.Expr { return minic.Var(name) }
func i32(x int32) minic.Expr   { return minic.Int(x) }

func (b *appBuilder) fn(name string, nparams int, body []minic.Stmt) {
	b.p.Funcs = append(b.p.Funcs, &minic.Func{Name: name, NParams: nparams, Body: body})
}

// netCall builds a call to an interface function, optionally through the
// shim library naming.
func (b *appBuilder) netCall(name string, args ...minic.Expr) minic.Expr {
	if b.knobs.ShimNet {
		name = "shim_" + name
	}
	return minic.Call{Name: name, Args: args}
}

// logCall returns a statement invoking a random error logger with a fresh
// message, or a no-op arithmetic statement when no loggers exist.
func (b *appBuilder) logCall() minic.Stmt {
	if len(b.loggers) == 0 {
		return minic.ExprStmt{E: minic.Add(i32(1), i32(2))}
	}
	lg := b.loggers[b.r.Intn(len(b.loggers))]
	msg := logMessages[b.r.Intn(len(logMessages))]
	return minic.ExprStmt{E: minic.Call{Name: lg, Args: []minic.Expr{minic.Str(msg)}}}
}

// reqStore is the expression for the parsed key-value store base address.
func (b *appBuilder) reqStore() minic.Expr {
	return minic.GlobalRef("g_kvstore")
}

// rawBuf is the expression for the raw receive buffer.
func (b *appBuilder) rawBuf() minic.Expr {
	if b.knobs.HeapReqbuf {
		return minic.LoadW(minic.GlobalRef("g_reqptr"))
	}
	return minic.GlobalRef("g_reqbuf")
}

// buildApp generates the program for one network binary.
func buildApp(r *rand.Rand, knobs appKnobs) appResult {
	b := &appBuilder{r: r, knobs: knobs, p: &minic.Program{Name: knobs.Name}}
	b.fetchVariant = r.Intn(4)
	b.globals()
	b.errorLoggers()
	b.confounders()
	b.itsFunctions()
	b.handlerFunctions()
	b.dispatchTable()
	b.recvChain()
	b.fillerForest()
	b.mainFunc()
	b.res.Prog = b.p
	b.res.FetchVariant = b.fetchVariant
	return b.res
}

func (b *appBuilder) globals() {
	g := func(gl *minic.Global) { b.p.Globals = append(b.p.Globals, gl) }
	g(&minic.Global{Name: "g_kvstore", Size: 1024})
	if b.knobs.HeapReqbuf {
		g(&minic.Global{Name: "g_reqptr", Size: 4})
	} else {
		g(&minic.Global{Name: "g_reqbuf", Size: 1024})
	}
	g(&minic.Global{Name: "g_outbuf", Size: 256})
	g(&minic.Global{Name: "g_logbuf", Size: 256})
	g(&minic.Global{Name: "g_sockfd", Size: 4})
	// g_stats sits in the data section: the parser stores request metadata
	// here, which coarse region-level taint smears over the whole section.
	g(&minic.Global{Name: "g_stats", Size: 16, Init: make([]byte, 16)})
	cfg := func(name, val string, size int) {
		init := make([]byte, size)
		copy(init, val)
		g(&minic.Global{Name: name, Size: size, Init: init})
	}
	cfg("g_cfg_mac", "00:11:22:33:44:55", 20)
	cfg("g_cfg_ip", "192.168.1.1", 16)
	cfg("g_cfg_mask", "255.255.255.0", 16)
	cfg("g_cfg_gw", "192.168.1.254", 16)
	cfg("g_version", "v2.17.4", 12)
	if b.knobs.Handlers[VulnAliased] > 0 {
		// Pointer table the aliased-flow handlers store fetched values
		// through; only samples that plant VulnAliased carry it, so the
		// rest of the corpus is byte-identical with or without the feature.
		g(&minic.Global{Name: "g_ptrtab", Size: 32})
	}
}

func (b *appBuilder) errorLoggers() {
	for i := 0; i < b.knobs.Loggers; i++ {
		name := fmt.Sprintf("log_error_%d", i)
		b.loggers = append(b.loggers, name)
		b.fn(name, 1, []minic.Stmt{
			minic.Let{Name: "n", E: minic.Call{Name: "strlen", Args: []minic.Expr{v("p0")}}},
			minic.If{Cond: minic.Cond{Op: minic.Gt, L: v("n"), R: i32(200)},
				Then: []minic.Stmt{minic.Assign{Name: "n", E: i32(200)}}},
			minic.ExprStmt{E: minic.Call{Name: "strncpy", Args: []minic.Expr{
				minic.GlobalRef("g_logbuf"), v("p0"), v("n")}}},
			minic.ExprStmt{E: minic.Call{Name: "printf", Args: []minic.Expr{
				minic.Str("[err] %s"), minic.GlobalRef("g_logbuf"), i32(0)}}},
			minic.Return{E: v("n")},
		})
	}
}

// nvramKeys are configuration-store keys; fetches of these look exactly
// like request-field fetches, which is why nvram-style accessors are the
// hardest confounders for ITS inference.
var nvramKeys = []string{
	"wan_proto", "wan_dns1", "wan_mtu", "lan_ipaddr", "lan_netmask",
	"wl0_channel", "wl0_country", "wl1_txpower", "fw_region", "boardnum",
	"qos_enable", "upnp_ttl", "ddns_provider", "ntp_zone", "led_mode",
	"vpn_mode", "ipv6_mode", "bridge_stp", "telnet_en", "log_level",
	"usb_mode", "guest_isolate", "wps_mode", "radius_port", "dmz_host",
	"wl1_channel", "wan_gateway", "lan_dhcp_start", "lan_dhcp_end",
	"fw_auto_update", "cloud_enable", "tz_offset", "igmp_snoop",
	"wl0_bw", "wl1_bw", "mac_clone", "port_trigger", "ssh_en",
	"http_port", "https_port", "remote_mgmt", "ping_wan", "sntp_server",
}

// confounders generates the ITS-like and simple non-ITS functions.
func (b *appBuilder) confounders() {
	if b.knobs.Strong > 0 {
		// Configuration store scanned by the nvram-style accessors.
		nv := make([]byte, 512)
		copy(nv, "wan_proto\x00dhcp\x00lan_ipaddr\x00192.168.0.1\x00wl0_channel\x00auto\x00")
		b.p.Globals = append(b.p.Globals, &minic.Global{Name: "g_nvram", Size: 512, Init: nv})
	}
	// Expected callers per true fetch function, used to size the
	// confounders' caller sets comparably.
	nonBenign := 0
	for cat, n := range b.knobs.Handlers {
		if cat != BenignSystemData {
			nonBenign += n
		}
	}
	perITS := nonBenign
	if b.knobs.ITSCount > 1 {
		perITS = (nonBenign + b.knobs.ITSCount - 1) / b.knobs.ITSCount
	}
	for i := 0; i < b.knobs.Strong; i++ {
		name := fmt.Sprintf("cfg_get_%d", i)
		// cfg_get(key, store, len): byte-for-byte the same keyed-scan code
		// as the true fetch functions, but over the configuration store —
		// behaviorally indistinguishable without knowing where the stored
		// data came from.
		b.fn(name, 3, keyedFetchBody(b.fetchVariant))
		// More call sites than the request fetcher, but over a smaller key
		// vocabulary: configuration keys repeat across the firmware.
		ncallers := perITS + 3 + b.r.Intn(3)
		distinct := perITS/2 + 2
		for c := 0; c < ncallers; c++ {
			callerName := fmt.Sprintf("cfg_user_%d_%d", i, c)
			key := nvramKeys[(i*31+c%distinct)%len(nvramKeys)]
			b.fn(callerName, 0, []minic.Stmt{
				minic.Let{Name: "val", E: minic.Call{Name: name, Args: []minic.Expr{
					minic.Str(key), minic.GlobalRef("g_nvram"), i32(512)}}},
				minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("val"), R: i32(0)},
					Then: []minic.Stmt{b.logCall(), minic.Return{E: i32(0)}}},
				minic.Return{E: minic.Call{Name: "strlen", Args: []minic.Expr{v("val")}}},
			})
			b.fillers = append(b.fillers, callerName)
		}
	}
	for i := 0; i < b.knobs.Weak; i++ {
		name := fmt.Sprintf("util_%d", i)
		switch b.r.Intn(2) {
		case 0:
			// Checksum over a buffer.
			b.fn(name, 2, []minic.Stmt{
				minic.Let{Name: "s", E: i32(0)},
				minic.Let{Name: "i", E: i32(0)},
				minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p1")}, Body: []minic.Stmt{
					minic.Assign{Name: "s", E: minic.Add(v("s"), minic.LoadB(minic.Add(v("p0"), v("i"))))},
					minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
				}},
				minic.Return{E: v("s")},
			})
		default:
			// Bit mixer.
			b.fn(name, 1, []minic.Stmt{
				minic.Let{Name: "x", E: minic.Bin{Op: minic.OpXor, L: v("p0"), R: i32(0x5bd1)}},
				minic.Return{E: minic.Bin{Op: minic.OpOr,
					L: minic.Bin{Op: minic.OpShl, L: v("x"), R: i32(3)},
					R: minic.Bin{Op: minic.OpShr, L: v("x"), R: i32(5)}}},
			})
		}
		b.fillers = append(b.fillers, "")
		b.fillers[len(b.fillers)-1] = name
	}
}

// keyedFetchBody builds a keyed-scan fetch function: scan the store for the
// key, allocate, copy the value out and return it (Figure 1b of the paper).
// The variant selects one of several code-structurally different
// implementations of the same behaviour — vendors write these by hand, so
// their instruction mix varies widely even though the behavioral profile
// (loops over memory, anchors on the parameters, derived return) is
// constant. This is precisely what separates behavioral from code-level
// similarity (RQ3).
func keyedFetchBody(variant int) []minic.Stmt {
	hit := func() []minic.Stmt {
		return []minic.Stmt{
			minic.Let{Name: "val", E: minic.Add(minic.Add(v("p1"), v("i")), minic.Add(v("klen"), i32(1)))},
			minic.Let{Name: "vlen", E: minic.Call{Name: "strlen", Args: []minic.Expr{v("val")}}},
			minic.Let{Name: "out", E: minic.Call{Name: "malloc", Args: []minic.Expr{minic.Add(v("vlen"), i32(1))}}},
			minic.ExprStmt{E: minic.Call{Name: "memcpy", Args: []minic.Expr{v("out"), v("val"), minic.Add(v("vlen"), i32(1))}}},
			minic.Return{E: v("out")},
		}
	}
	match := func(then []minic.Stmt) minic.Stmt {
		return minic.If{Cond: minic.Cond{Op: minic.Eq,
			L: minic.Call{Name: "strncmp", Args: []minic.Expr{v("p0"), minic.Add(v("p1"), v("i")), v("klen")}},
			R: i32(0)},
			Then: then}
	}
	switch variant % 4 {
	case 1:
		// Hash-accumulating variant: tracks a rolling checksum of the
		// scanned bytes (used elsewhere for cache validation).
		return []minic.Stmt{
			minic.Let{Name: "klen", E: minic.Call{Name: "strlen", Args: []minic.Expr{v("p0")}}},
			minic.Let{Name: "i", E: i32(0)},
			minic.Let{Name: "h", E: i32(5381)},
			minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p2")}, Body: []minic.Stmt{
				minic.Let{Name: "c", E: minic.LoadB(minic.Add(v("p1"), v("i")))},
				minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("c"), R: i32(0)},
					Then: []minic.Stmt{minic.Return{E: i32(0)}}},
				minic.Assign{Name: "h", E: minic.Bin{Op: minic.OpXor,
					L: minic.Add(minic.Mul(v("h"), i32(33)), v("c")),
					R: minic.Bin{Op: minic.OpShr, L: v("h"), R: i32(7)}}},
				match(hit()),
				minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
			}},
			minic.Return{E: i32(0)},
		}
	case 2:
		// Separator-seeking variant: hops between NUL-separated fields
		// rather than probing every byte.
		return []minic.Stmt{
			minic.Let{Name: "klen", E: minic.Call{Name: "strlen", Args: []minic.Expr{v("p0")}}},
			minic.Let{Name: "i", E: i32(0)},
			minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p2")}, Body: []minic.Stmt{
				minic.If{Cond: minic.Cond{Op: minic.Eq, L: minic.LoadB(minic.Add(v("p1"), v("i"))), R: i32(0)},
					Then: []minic.Stmt{minic.Return{E: i32(0)}}},
				match(hit()),
				minic.Let{Name: "c", E: minic.LoadB(minic.Add(v("p1"), v("i")))},
				minic.While{Cond: minic.Cond{Op: minic.Ne, L: v("c"), R: i32(0)}, Body: []minic.Stmt{
					minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
					minic.If{Cond: minic.Cond{Op: minic.Ge, L: v("i"), R: v("p2")},
						Then: []minic.Stmt{minic.Return{E: i32(0)}}},
					minic.Assign{Name: "c", E: minic.LoadB(minic.Add(v("p1"), v("i")))},
				}},
				minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
			}},
			minic.Return{E: i32(0)},
		}
	case 3:
		// Masked-stride variant: realigns the cursor with bit arithmetic
		// between probes (word-aligned record layout).
		return []minic.Stmt{
			minic.Let{Name: "klen", E: minic.Call{Name: "strlen", Args: []minic.Expr{v("p0")}}},
			minic.Let{Name: "i", E: i32(0)},
			minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p2")}, Body: []minic.Stmt{
				minic.If{Cond: minic.Cond{Op: minic.Eq, L: minic.LoadB(minic.Add(v("p1"), v("i"))), R: i32(0)},
					Then: []minic.Stmt{minic.Return{E: i32(0)}}},
				match(hit()),
				// Cursor advance through mask-and-merge arithmetic; the
				// net effect is i+1 but the instruction mix differs.
				minic.Assign{Name: "i", E: minic.Bin{Op: minic.OpAnd,
					L: minic.Bin{Op: minic.OpOr,
						L: minic.Add(v("i"), i32(1)),
						R: minic.Bin{Op: minic.OpAnd, L: minic.Add(v("i"), i32(1)), R: i32(0x7fff)}},
					R: i32(0xffffff)}},
			}},
			minic.Return{E: i32(0)},
		}
	default:
		// Canonical byte-scan variant.
		return []minic.Stmt{
			minic.Let{Name: "klen", E: minic.Call{Name: "strlen", Args: []minic.Expr{v("p0")}}},
			minic.Let{Name: "i", E: i32(0)},
			minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p2")}, Body: []minic.Stmt{
				minic.If{Cond: minic.Cond{Op: minic.Eq, L: minic.LoadB(minic.Add(v("p1"), v("i"))), R: i32(0)},
					Then: []minic.Stmt{minic.Return{E: i32(0)}}},
				match(hit()),
				minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
			}},
			minic.Return{E: i32(0)},
		}
	}
}

// itsFunctions generates the keyed fetch functions — the planted ITSs.
func (b *appBuilder) itsFunctions() {
	if b.knobs.OffsetIndexed {
		return
	}
	for i := 0; i < b.knobs.ITSCount; i++ {
		name := fmt.Sprintf("get_field_%d", i)
		b.res.ITSNames = append(b.res.ITSNames, name)
		b.fn(name, 3, keyedFetchBody(b.fetchVariant))
	}
}

// sinkStmt builds a call to the chosen sink with val in a dangerous
// position.
func sinkStmt(sink string, val minic.Expr) minic.Stmt {
	switch sink {
	case "sprintf":
		return minic.ExprStmt{E: minic.Call{Name: "sprintf", Args: []minic.Expr{
			minic.GlobalRef("g_outbuf"), minic.Str("resp=%s"), val, i32(0)}}}
	case "strcpy":
		return minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
			minic.GlobalRef("g_outbuf"), val}}}
	case "strcat":
		return minic.ExprStmt{E: minic.Call{Name: "strcat", Args: []minic.Expr{
			minic.GlobalRef("g_outbuf"), val}}}
	case "strncpy":
		return minic.ExprStmt{E: minic.Call{Name: "strncpy", Args: []minic.Expr{
			minic.GlobalRef("g_outbuf"), val, i32(512)}}}
	case "system":
		return minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{val}}}
	case "popen":
		return minic.ExprStmt{E: minic.Call{Name: "popen", Args: []minic.Expr{val, minic.Str("r")}}}
	case "execve":
		return minic.ExprStmt{E: minic.Call{Name: "execve", Args: []minic.Expr{val, i32(0), i32(0)}}}
	}
	return minic.ExprStmt{E: minic.Call{Name: "sprintf", Args: []minic.Expr{
		minic.GlobalRef("g_outbuf"), minic.Str("%s"), val, i32(0)}}}
}

var overflowSinks = []string{"sprintf", "strcpy", "strcat", "strncpy"}
var commandSinks = []string{"system", "popen", "execve"}

// fetchExpr builds the handler's fetch of a request field.
func (b *appBuilder) fetchExpr(key string) minic.Expr {
	if b.knobs.OffsetIndexed {
		// Fixed-offset indexing: no intermediate fetch function exists.
		off := int32(16 * (1 + b.r.Intn(32)))
		return minic.Add(b.reqStore(), i32(off))
	}
	its := b.res.ITSNames[b.r.Intn(len(b.res.ITSNames))]
	return minic.Call{Name: its, Args: []minic.Expr{minic.Str(key), b.reqStore(), i32(1024)}}
}

func (b *appBuilder) handlerFunctions() {
	kinds := make([]HandlerCategory, 0, 16)
	for cat, n := range b.knobs.Handlers {
		for i := 0; i < n; i++ {
			kinds = append(kinds, cat)
		}
	}
	// Deterministic order before the seeded shuffle: map iteration order
	// must not leak into output.
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	b.r.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	usedKeys := map[string]bool{}
	freshKey := func(pool []string) string {
		for tries := 0; tries < 64; tries++ {
			k := pool[b.r.Intn(len(pool))]
			if !usedKeys[k] {
				usedKeys[k] = true
				return k
			}
		}
		k := fmt.Sprintf("field_%d", b.r.Intn(1000))
		usedKeys[k] = true
		return k
	}

	for idx, cat := range kinds {
		name := fmt.Sprintf("handle_%02d", idx)
		truth := HandlerTruth{Binary: b.knobs.Name, FuncName: name, Category: cat}
		var key string
		switch cat {
		case SystemKeyFetch:
			if b.r.Intn(3) == 0 {
				key = hiddenSystemKeys[b.r.Intn(len(hiddenSystemKeys))]
			} else {
				key = SystemKeys[b.r.Intn(len(SystemKeys))]
				truth.Filterable = true
			}
		case BenignSystemData, VulnRaw, SafeRaw:
			// no field fetch
		default:
			key = freshKey(userKeys)
		}
		truth.Key = key

		sink := overflowSinks[b.r.Intn(len(overflowSinks))]
		if cat != VulnRaw && cat != SafeRaw && b.r.Intn(4) == 0 {
			sink = commandSinks[b.r.Intn(len(commandSinks))]
		}
		truth.Sink = sink

		wrappers := 0
		if cat == VulnDeep {
			wrappers = 1 + b.knobs.DeepExtra + b.r.Intn(2)
		}
		truth.ITSDepth = wrappers + 1
		truth.CTSDepth = b.knobs.RecvDepth + 3 + wrappers

		// Innermost wrapper performs the sink call; outer wrappers pass
		// the value through.
		sinkFn := name
		if wrappers > 0 {
			for w := wrappers - 1; w >= 0; w-- {
				wname := fmt.Sprintf("%s_w%d", name, w)
				var body []minic.Stmt
				if w == wrappers-1 {
					body = []minic.Stmt{sinkStmt(sink, v("p0")), minic.Return{E: i32(0)}}
				} else {
					body = []minic.Stmt{
						b.logCall(),
						minic.Return{E: minic.Call{Name: fmt.Sprintf("%s_w%d", name, w+1), Args: []minic.Expr{v("p0")}}},
					}
				}
				b.fn(wname, 1, body)
			}
			sinkFn = name + "_w0"
		}

		truth.SinkFuncName = name
		if wrappers > 0 {
			truth.SinkFuncName = fmt.Sprintf("%s_w%d", name, wrappers-1)
		}

		var body []minic.Stmt
		switch cat {
		case VulnRaw:
			body = []minic.Stmt{
				sinkStmt(sink, b.rawBuf()),
				minic.Return{E: i32(0)},
			}
		case SafeRaw:
			body = []minic.Stmt{
				minic.Let{Name: "n", E: minic.Call{Name: "strlen", Args: []minic.Expr{b.rawBuf()}}},
				minic.If{Cond: minic.Cond{Op: minic.Lt, L: v("n"), R: i32(64)},
					Then: []minic.Stmt{sinkStmt(sink, b.rawBuf())}},
				minic.Return{E: i32(0)},
			}
		case BenignSystemData:
			cfgs := []string{"g_cfg_mac", "g_cfg_ip", "g_cfg_mask", "g_cfg_gw"}
			body = []minic.Stmt{
				sinkStmt(sink, minic.GlobalRef(cfgs[b.r.Intn(len(cfgs))])),
				minic.Return{E: i32(0)},
			}
		case SafeSanitized:
			body = []minic.Stmt{
				minic.Let{Name: "val", E: b.fetchExpr(key)},
				minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("val"), R: i32(0)},
					Then: []minic.Stmt{minic.Return{E: i32(0)}}},
				minic.Let{Name: "n", E: minic.Call{Name: "strlen", Args: []minic.Expr{v("val")}}},
				minic.If{Cond: minic.Cond{Op: minic.Lt, L: v("n"), R: i32(32)},
					Then: []minic.Stmt{sinkStmt(sink, v("val"))}},
				minic.Return{E: i32(0)},
			}
		case SafeInfeasible:
			// The sink is guarded by contradictory bounds on an untainted
			// unknown (the firmware version string's length is both < 4 and
			// >= 100): statically reachable, semantically dead. A
			// path-insensitive engine alerts; the feasibility pass refutes.
			body = []minic.Stmt{
				minic.Let{Name: "val", E: b.fetchExpr(key)},
				minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("val"), R: i32(0)},
					Then: []minic.Stmt{minic.Return{E: i32(0)}}},
				minic.Let{Name: "mode", E: minic.Call{Name: "strlen", Args: []minic.Expr{minic.GlobalRef("g_version")}}},
				minic.If{Cond: minic.Cond{Op: minic.Lt, L: v("mode"), R: i32(4)},
					Then: []minic.Stmt{
						minic.If{Cond: minic.Cond{Op: minic.Ge, L: v("mode"), R: i32(100)},
							Then: []minic.Stmt{sinkStmt(sink, v("val"))}},
					}},
				minic.Return{E: i32(0)},
			}
		case VulnAliased:
			// The fetched value travels through a pointer-table slot whose
			// index is unknown: the store and load addresses are symbolic,
			// so value-level propagation loses the flow unless the alias
			// pass connects the table's abstract location.
			body = []minic.Stmt{
				minic.Let{Name: "val", E: b.fetchExpr(key)},
				minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("val"), R: i32(0)},
					Then: []minic.Stmt{minic.Return{E: i32(0)}}},
				minic.Let{Name: "slot", E: minic.Bin{Op: minic.OpAnd,
					L: minic.Call{Name: "strlen", Args: []minic.Expr{minic.GlobalRef("g_version")}},
					R: i32(3)}},
				minic.StoreStmt{Size: 4,
					Addr: minic.Add(minic.GlobalRef("g_ptrtab"), minic.Mul(v("slot"), i32(4))),
					Val:  v("val")},
				minic.Let{Name: "p", E: minic.LoadW(
					minic.Add(minic.GlobalRef("g_ptrtab"), minic.Mul(v("slot"), i32(4))))},
				sinkStmt(sink, v("p")),
				minic.Return{E: i32(0)},
			}
		default: // VulnShallow, VulnDeep, SystemKeyFetch
			use := sinkStmt(sink, v("val"))
			if wrappers > 0 {
				use = minic.ExprStmt{E: minic.Call{Name: sinkFn, Args: []minic.Expr{v("val")}}}
			}
			body = []minic.Stmt{
				minic.Let{Name: "val", E: b.fetchExpr(key)},
				minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("val"), R: i32(0)},
					Then: []minic.Stmt{minic.Return{E: i32(0)}}},
				use,
				minic.Return{E: i32(0)},
			}
		}
		b.fn(name, 0, body)
		b.handlers = append(b.handlers, name)
		b.res.Handlers = append(b.res.Handlers, truth)
	}
}

// dispatchTable emits the handler pointer table and the indirect dispatcher.
func (b *appBuilder) dispatchTable() {
	n := len(b.handlers)
	if n == 0 {
		return
	}
	// Pad to a power of two so the index can be masked.
	size := 1
	for size < n {
		size *= 2
	}
	g := &minic.Global{Name: "g_handlers", Size: 4 * size, Init: make([]byte, 4*size)}
	for i := 0; i < size; i++ {
		g.Ptrs = append(g.Ptrs, minic.PtrInit{Off: 4 * i, FuncName: b.handlers[i%n]})
	}
	b.p.Globals = append(b.p.Globals, g)
	b.fn("dispatch_req", 1, []minic.Stmt{
		minic.ExprStmt{E: minic.CallInd{Table: "g_handlers",
			Index: minic.Bin{Op: minic.OpAnd, L: v("p0"), R: i32(int32(size - 1))}}},
		minic.Return{E: i32(0)},
	})
	// A couple of handlers also have direct callers (route shortcuts),
	// giving caller-count variance.
	for i := 0; i < n && i < 2; i++ {
		rname := fmt.Sprintf("route_fast_%d", i)
		b.fn(rname, 0, []minic.Stmt{
			minic.ExprStmt{E: minic.Call{Name: b.handlers[b.r.Intn(n)]}},
			minic.Return{E: i32(0)},
		})
		b.fillers = append(b.fillers, rname)
	}
}

// recvChain emits the interface wrappers and the request parser.
func (b *appBuilder) recvChain() {
	// Innermost wrapper invokes the interface function.
	b.fn("io_read_0", 2, []minic.Stmt{
		minic.Return{E: b.netCall("recv", minic.LoadW(minic.GlobalRef("g_sockfd")), v("p0"), v("p1"), i32(0))},
	})
	for i := 1; i < b.knobs.RecvDepth; i++ {
		prev := fmt.Sprintf("io_read_%d", i-1)
		body := []minic.Stmt{
			minic.Let{Name: "n", E: minic.Call{Name: prev, Args: []minic.Expr{v("p0"), v("p1")}}},
		}
		if b.r.Intn(2) == 0 {
			body = append(body, minic.If{Cond: minic.Cond{Op: minic.Lt, L: v("n"), R: i32(0)},
				Then: []minic.Stmt{b.logCall(), minic.Return{E: i32(-1)}}})
		}
		body = append(body, minic.Return{E: v("n")})
		b.fn(fmt.Sprintf("io_read_%d", i), 2, body)
	}

	// route_method(m) classifies the request method through a jump table —
	// the switch-dispatch pattern whose recovery needs jump-table
	// resolution.
	b.fn("route_method", 1, []minic.Stmt{
		minic.Let{Name: "r", E: i32(0)},
		minic.Switch{
			E: v("p0"),
			Cases: [][]minic.Stmt{
				{minic.Assign{Name: "r", E: i32(1)}},                     // GET
				{minic.Assign{Name: "r", E: i32(2)}},                     // POST
				{b.logCall(), minic.Assign{Name: "r", E: i32(3)}},        // HEAD
				{minic.Assign{Name: "r", E: minic.Add(v("p0"), i32(4))}}, // OPTIONS
			},
			Default: []minic.Stmt{b.logCall(), minic.Assign{Name: "r", E: i32(-1)}},
		},
		minic.Return{E: v("r")},
	})

	// parse_req(buf, n): method routing and format check, then copy fields
	// into the store and record metadata in the data section.
	b.fn("parse_req", 2, []minic.Stmt{
		minic.ExprStmt{E: minic.Call{Name: "route_method", Args: []minic.Expr{
			minic.Bin{Op: minic.OpAnd, L: minic.LoadB(v("p0")), R: i32(3)}}}},
		minic.If{Cond: minic.Cond{Op: minic.Lt, L: v("p1"), R: i32(4)},
			Then: []minic.Stmt{b.logCall(), minic.Return{E: i32(-1)}}},
		minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("g_stats"), Val: v("p1")},
		minic.Let{Name: "i", E: i32(0)},
		minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: v("p1")}, Body: []minic.Stmt{
			minic.Let{Name: "c", E: minic.LoadB(minic.Add(v("p0"), v("i")))},
			minic.If{Cond: minic.Cond{Op: minic.Eq, L: v("c"), R: i32('&')},
				Then: []minic.Stmt{minic.StoreStmt{Size: 1,
					Addr: minic.Add(minic.GlobalRef("g_kvstore"), v("i")), Val: i32(0)}},
				Else: []minic.Stmt{minic.StoreStmt{Size: 1,
					Addr: minic.Add(minic.GlobalRef("g_kvstore"), v("i")), Val: v("c")}}},
			minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
		}},
		minic.Return{E: i32(0)},
	})

	// Server loop: socket/bind/listen/accept, then read + parse + dispatch.
	top := fmt.Sprintf("io_read_%d", b.knobs.RecvDepth-1)
	setup := []minic.Stmt{
		minic.Let{Name: "fd", E: b.netCall("socket", i32(2), i32(1), i32(0))},
		minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("g_sockfd"), Val: v("fd")},
		minic.ExprStmt{E: b.netCall("bind", v("fd"), i32(0), i32(0))},
		minic.ExprStmt{E: b.netCall("listen", v("fd"), i32(8))},
	}
	if b.knobs.HeapReqbuf {
		setup = append(setup, minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("g_reqptr"),
			Val: minic.Call{Name: "malloc", Args: []minic.Expr{i32(1024)}}})
	}
	loop := minic.While{Cond: minic.Cond{Op: minic.Ge, L: i32(1), R: i32(0)}, Body: []minic.Stmt{
		minic.ExprStmt{E: b.netCall("accept", v("fd"), i32(0), i32(0))},
		minic.Let{Name: "n", E: minic.Call{Name: top, Args: []minic.Expr{b.rawBuf(), i32(1024)}}},
		minic.If{Cond: minic.Cond{Op: minic.Gt, L: v("n"), R: i32(0)}, Then: []minic.Stmt{
			minic.ExprStmt{E: minic.Call{Name: "parse_req", Args: []minic.Expr{b.rawBuf(), v("n")}}},
			minic.ExprStmt{E: minic.Call{Name: "dispatch_req", Args: []minic.Expr{v("n")}}},
		}, Else: []minic.Stmt{b.logCall()}},
	}}
	body := append(setup, loop, minic.Return{E: i32(0)})
	b.fn("serve_forever", 0, body)
}

// fillerForest emits arithmetic and utility filler functions forming a call
// forest; later fillers call earlier ones.
func (b *appBuilder) fillerForest() {
	for i := 0; i < b.knobs.Filler; i++ {
		name := fmt.Sprintf("sub_fn_%03d", i)
		var body []minic.Stmt
		switch b.r.Intn(8) {
		case 5, 6: // string handling over configuration data
			anchor := []string{"strlen", "strcmp", "strcpy", "memcpy", "strchr", "strstr"}[b.r.Intn(6)]
			var call minic.Expr
			lit := minic.Str(anchorLits[b.r.Intn(len(anchorLits))])
			switch anchor {
			case "strlen":
				call = minic.Call{Name: anchor, Args: []minic.Expr{lit}}
			case "memcpy":
				call = minic.Call{Name: anchor, Args: []minic.Expr{minic.GlobalRef("g_outbuf"), lit, i32(4)}}
			case "strcpy":
				call = minic.Call{Name: anchor, Args: []minic.Expr{minic.GlobalRef("g_outbuf"), lit}}
			case "strchr":
				call = minic.Call{Name: anchor, Args: []minic.Expr{lit, i32('.')}}
			default:
				call = minic.Call{Name: anchor, Args: []minic.Expr{minic.GlobalRef("g_version"), lit}}
			}
			body = []minic.Stmt{
				minic.Let{Name: "x", E: call},
				minic.Return{E: v("x")},
			}
		case 7: // formats a status line (sink usage on constant data)
			body = []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "snprintf", Args: []minic.Expr{
					minic.GlobalRef("g_outbuf"), i32(64), minic.Str("up %d"), v("p0")}}},
				minic.Return{E: i32(0)},
			}
		case 0: // arithmetic chain
			body = []minic.Stmt{
				minic.Let{Name: "x", E: minic.Mul(v("p0"), i32(int32(2+b.r.Intn(7))))},
				minic.Return{E: minic.Add(v("x"), i32(int32(b.r.Intn(64))))},
			}
		case 1: // calls a previous filler
			callee := name
			if len(b.fillers) > 0 {
				callee = b.fillers[b.r.Intn(len(b.fillers))]
			}
			arity := b.fillerArity(callee)
			args := make([]minic.Expr, arity)
			for j := range args {
				args[j] = i32(int32(b.r.Intn(100)))
			}
			body = []minic.Stmt{
				minic.Let{Name: "x", E: minic.Call{Name: callee, Args: args}},
				minic.Return{E: minic.Add(v("x"), v("p0"))},
			}
		case 2: // small loop over an immediate bound
			bound := int32(4 + b.r.Intn(12))
			body = []minic.Stmt{
				minic.Let{Name: "s", E: i32(0)},
				minic.Let{Name: "i", E: i32(0)},
				minic.While{Cond: minic.Cond{Op: minic.Lt, L: v("i"), R: i32(bound)}, Body: []minic.Stmt{
					minic.Assign{Name: "s", E: minic.Add(v("s"), v("i"))},
					minic.Assign{Name: "i", E: minic.Add(v("i"), i32(1))},
				}},
				minic.Return{E: v("s")},
			}
		case 3: // logs an error, sometimes via a state switch
			if b.r.Intn(3) == 0 {
				body = []minic.Stmt{
					minic.Let{Name: "r", E: i32(0)},
					minic.Switch{
						E: minic.Bin{Op: minic.OpAnd, L: v("p0"), R: i32(1)},
						Cases: [][]minic.Stmt{
							{minic.Assign{Name: "r", E: i32(1)}},
							{b.logCall(), minic.Assign{Name: "r", E: i32(2)}},
						},
						Default: []minic.Stmt{minic.Assign{Name: "r", E: i32(3)}},
					},
					minic.Return{E: v("r")},
				}
			} else {
				body = []minic.Stmt{
					b.logCall(),
					minic.Return{E: v("p0")},
				}
			}
		default: // compares a config string
			lits := []string{"on", "off", "auto", "wpa2", "bridge", "router"}
			body = []minic.Stmt{
				minic.Return{E: minic.Call{Name: "strcmp", Args: []minic.Expr{
					minic.GlobalRef("g_version"), minic.Str(lits[b.r.Intn(len(lits))])}}},
			}
		}
		b.fn(name, 1, body)
		b.fillers = append(b.fillers, name)
	}
}

// fillerArity looks up a generated function's parameter count.
func (b *appBuilder) fillerArity(name string) int {
	for _, f := range b.p.Funcs {
		if f.Name == name {
			return f.NParams
		}
	}
	return 1
}

func (b *appBuilder) mainFunc() {
	var body []minic.Stmt
	// Exercise a sample of fillers so most code is reachable from main.
	for i := 0; i < len(b.fillers); i += 3 {
		arity := b.fillerArity(b.fillers[i])
		args := make([]minic.Expr, arity)
		for j := range args {
			args[j] = i32(int32(i + j))
		}
		body = append(body, minic.ExprStmt{E: minic.Call{Name: b.fillers[i], Args: args}})
	}
	body = append(body,
		minic.ExprStmt{E: minic.Call{Name: "serve_forever"}},
		minic.Return{E: i32(0)},
	)
	b.fn("main", 0, body)
}

// KeyedFetchBodyForTest exposes the fetch-body variants to verification
// tests in other packages.
func KeyedFetchBodyForTest(variant int) []minic.Stmt { return keyedFetchBody(variant) }
