package synth

import (
	"strings"
	"testing"

	"fits/internal/binimg"
	"fits/internal/emu"
)

// dynamicHarness wires a generated network binary into the emulator with
// native libc implementations, so planted flows can be driven for real.
type dynamicHarness struct {
	m *emu.Machine
	// sinkArgs records every string that reached a sink's dangerous
	// parameter, keyed by sink name.
	sinkArgs map[string][]string
	heap     uint32
}

const harnessHeap = emu.StackTop - 1<<20 + 0x2000

func newHarness(t *testing.T, bin *binimg.Binary) *dynamicHarness {
	t.Helper()
	h := &dynamicHarness{m: emu.New(bin), sinkArgs: map[string][]string{}, heap: harnessHeap}
	h.m.MaxSteps = 2_000_000
	cstr := func(a uint32) string {
		s, err := h.m.ReadCString(a, 256)
		if err != nil {
			return ""
		}
		return s
	}
	record := func(sink string, arg uint32) {
		h.sinkArgs[sink] = append(h.sinkArgs[sink], cstr(arg))
	}
	handlers := map[string]emu.ImportFunc{
		"strlen": func(m *emu.Machine) error {
			m.Regs[0] = uint32(len(cstr(m.Regs[0])))
			return nil
		},
		"strncmp": func(m *emu.Machine) error {
			n := m.Regs[2]
			eq := uint32(0)
			for i := uint32(0); i < n; i++ {
				a, err := m.LoadByte(m.Regs[0] + i)
				if err != nil {
					return err
				}
				b, err := m.LoadByte(m.Regs[1] + i)
				if err != nil {
					return err
				}
				if a != b {
					eq = 1
					break
				}
				if a == 0 {
					break
				}
			}
			m.Regs[0] = eq
			return nil
		},
		"memcpy": func(m *emu.Machine) error {
			for i := uint32(0); i < m.Regs[2]; i++ {
				b, err := m.LoadByte(m.Regs[1] + i)
				if err != nil {
					return err
				}
				if err := m.StoreByte(m.Regs[0]+i, b); err != nil {
					return err
				}
			}
			return nil
		},
		"malloc": func(m *emu.Machine) error {
			n := (m.Regs[0] + 7) &^ 7
			m.Regs[0] = h.heap
			h.heap += n
			return nil
		},
		"strcpy": func(m *emu.Machine) error {
			record("strcpy", m.Regs[1])
			s := cstr(m.Regs[1])
			return m.StoreBytes(m.Regs[0], append([]byte(s), 0))
		},
		"strncpy": func(m *emu.Machine) error {
			record("strncpy", m.Regs[1])
			return nil
		},
		"strcat": func(m *emu.Machine) error {
			record("strcat", m.Regs[1])
			return nil
		},
		"sprintf": func(m *emu.Machine) error {
			record("sprintf", m.Regs[2]) // the %s argument
			return nil
		},
		"system": func(m *emu.Machine) error {
			record("system", m.Regs[0])
			return nil
		},
		"popen": func(m *emu.Machine) error {
			record("popen", m.Regs[0])
			return nil
		},
		"execve": func(m *emu.Machine) error {
			record("execve", m.Regs[0])
			return nil
		},
	}
	fallback := func(m *emu.Machine) error { m.Regs[0] = 0; return nil }
	for _, im := range bin.Imports {
		if fn, ok := handlers[im.Name]; ok {
			h.m.Imports[im.Name] = fn
		} else {
			h.m.Imports[im.Name] = fallback
		}
	}
	return h
}

// TestPlantedBugsTriggerDynamically drives a generated firmware's real code:
// inject a request through parse_req, call a vulnerable handler, and observe
// the injected payload arriving at the sink's dangerous parameter. This
// proves the corpus's "bugs" are genuine dynamic flows, not static patterns.
func TestPlantedBugsTriggerDynamically(t *testing.T) {
	spec := Dataset()[0] // NETGEAR: global request buffer
	sample, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}

	bin, err := sample.AppBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Pick a shallow vulnerable handler of the primary binary.
	var target HandlerTruth
	for _, h := range sample.Manifest.Handlers {
		if h.Category == VulnShallow && h.Binary == bin.Name {
			target = h
			break
		}
	}
	if target.FuncName == "" {
		t.Skip("sample has no shallow bug")
	}

	h := newHarness(t, bin)

	// Plant the parsed request record at the key-value store, which the
	// generator lays out as the first bss object, then drive the handler:
	// its own code fetches the field and forwards it to the sink.
	payload := "PWNED_BY_TEST"
	record := target.Key + "\x00" + payload + "\x00"
	if err := h.m.StoreBytes(bin.BssAddr, append([]byte(record), 0)); err != nil {
		t.Fatal(err)
	}

	if _, err := h.m.CallFunction(target.Entry); err != nil {
		t.Fatalf("handler execution: %v", err)
	}
	got := strings.Join(h.sinkArgs[target.Sink], " | ")
	if !strings.Contains(got, payload) {
		t.Fatalf("payload did not reach sink %s; observed %q", target.Sink, got)
	}
}

// TestSanitizedHandlerBlocksLongPayload checks the other side: a sanitized
// handler forwards short values but refuses over-long ones.
func TestSanitizedHandlerBlocksLongPayload(t *testing.T) {
	spec := Dataset()[0]
	sample, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := sample.AppBinary()
	if err != nil {
		t.Fatal(err)
	}
	var target HandlerTruth
	for _, hh := range sample.Manifest.Handlers {
		if hh.Category == SafeSanitized && hh.Binary == bin.Name {
			target = hh
			break
		}
	}
	if target.FuncName == "" {
		t.Skip("sample has no sanitized handler")
	}

	run := func(payload string) []string {
		h := newHarness(t, bin)
		record := target.Key + "\x00" + payload + "\x00"
		if err := h.m.StoreBytes(bin.BssAddr, append([]byte(record), 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := h.m.CallFunction(target.Entry); err != nil {
			t.Fatalf("handler execution: %v", err)
		}
		return h.sinkArgs[target.Sink]
	}

	short := run("ok")
	if len(short) == 0 || !strings.Contains(strings.Join(short, ""), "ok") {
		t.Errorf("short value blocked by sanitizer: %q", short)
	}
	long := run(strings.Repeat("A", 64))
	for _, s := range long {
		if strings.Contains(s, "AAAA") {
			t.Errorf("over-long value passed the sanitizer: %q", s)
		}
	}
}

// TestEmulatedITSExtraction drives the planted fetch function directly on
// all architectures, confirming cross-architecture behavioural equivalence
// of the generated code.
func TestEmulatedITSExtraction(t *testing.T) {
	for _, idx := range []int{0, 17, 26} { // arm, mips, aarch-ish mix
		sample, err := Generate(Dataset()[idx])
		if err != nil {
			t.Fatal(err)
		}
		if len(sample.Manifest.ITS) == 0 {
			continue
		}
		bin, err := sample.AppBinary()
		if err != nil {
			t.Fatal(err)
		}
		h := newHarness(t, bin)
		key := "probe_key"
		val := "extracted_value"
		keyAddr := uint32(harnessHeap + 0x4000)
		storeAddr := uint32(harnessHeap + 0x4100)
		if err := h.m.StoreBytes(keyAddr, append([]byte(key), 0)); err != nil {
			t.Fatal(err)
		}
		rec := key + "\x00" + val + "\x00"
		if err := h.m.StoreBytes(storeAddr, append([]byte(rec), 0)); err != nil {
			t.Fatal(err)
		}
		ret, err := h.m.CallFunction(sample.Manifest.ITS[0].Entry, keyAddr, storeAddr, uint32(len(rec)))
		if err != nil {
			t.Fatalf("%s: %v", sample.Manifest.Arch, err)
		}
		if ret == 0 {
			t.Fatalf("%s: fetch returned nil", sample.Manifest.Arch)
		}
		got, err := h.m.ReadCString(ret, 64)
		if err != nil || got != val {
			t.Errorf("%s: fetched %q, want %q (err %v)", sample.Manifest.Arch, got, val, err)
		}
	}
}
