package synth

import (
	"bytes"
	"testing"
)

func TestChainDatasetGenerates(t *testing.T) {
	for _, spec := range ChainDataset() {
		c, err := GenerateChain(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", spec.Seed, err)
		}
		if len(c.Versions) != len(spec.Steps)+1 {
			t.Fatalf("seed %d: %d versions for %d steps", spec.Seed, len(c.Versions), len(spec.Steps))
		}
		if len(c.Steps) != len(spec.Steps) {
			t.Fatalf("seed %d: %d step records for %d steps", spec.Seed, len(c.Steps), len(spec.Steps))
		}
		for vi, s := range c.Versions {
			if len(s.Packed) == 0 {
				t.Fatalf("seed %d v%d: empty image", spec.Seed, vi)
			}
			if len(s.Manifest.ITS) == 0 {
				t.Fatalf("seed %d v%d: no ITS truth", spec.Seed, vi)
			}
			for _, its := range s.Manifest.ITS {
				if its.Entry == 0 {
					t.Errorf("seed %d v%d: ITS %s entry unresolved", spec.Seed, vi, its.FuncName)
				}
			}
			for _, h := range s.Manifest.Handlers {
				if h.Entry == 0 || h.SinkEntry == 0 {
					t.Errorf("seed %d v%d: handler %s entries unresolved", spec.Seed, vi, h.FuncName)
				}
			}
			bin, err := s.AppBinary()
			if err != nil {
				t.Fatalf("seed %d v%d: %v", spec.Seed, vi, err)
			}
			if !bin.Stripped {
				t.Errorf("seed %d v%d: app binary not stripped", spec.Seed, vi)
			}
			lf, ok := s.Image.Lookup("lib/libc.so")
			if !ok {
				t.Fatalf("seed %d v%d: libc missing", spec.Seed, vi)
			}
			l0, _ := c.Versions[0].Image.Lookup("lib/libc.so")
			if !bytes.Equal(lf.Data, l0.Data) {
				t.Errorf("seed %d v%d: libc bytes differ from v0", spec.Seed, vi)
			}
		}
	}
}

func TestChainDeterministic(t *testing.T) {
	spec := ChainDataset()[5] // the combined multi-step chain
	a, err := GenerateChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range a.Versions {
		if !bytes.Equal(a.Versions[vi].Packed, b.Versions[vi].Packed) {
			t.Errorf("version %d not deterministic", vi)
		}
	}
}

func TestChainStepTruthTransitions(t *testing.T) {
	c, err := GenerateChain(ChainSpec{Seed: 7006, Steps: []ChainStepKind{
		StepTuneConst, StepPatchBug, StepAddFeature, StepRenameExport,
	}})
	if err != nil {
		t.Fatal(err)
	}

	// Step 0 (tune-const): binaries differ, truth identical up to entries.
	if len(c.Steps[0].Appeared)+len(c.Steps[0].Fixed) != 0 {
		t.Error("tune-const step claims churn")
	}
	b0, _ := c.Versions[0].Image.Lookup("bin/httpd")
	b1, _ := c.Versions[1].Image.Lookup("bin/httpd")
	if bytes.Equal(b0.Data, b1.Data) {
		t.Error("tune-const produced an identical binary")
	}

	// Step 1 (patch-bug): exactly one fixed alert, handler reclassified.
	if len(c.Steps[1].Fixed) != 1 || len(c.Steps[1].Appeared) != 0 {
		t.Fatalf("patch-bug churn = %+v", c.Steps[1])
	}
	fixedFn := c.Steps[1].Fixed[0].SinkFuncName
	var before, after *HandlerTruth
	for i := range c.Versions[1].Manifest.Handlers {
		if c.Versions[1].Manifest.Handlers[i].SinkFuncName == fixedFn {
			before = &c.Versions[1].Manifest.Handlers[i]
		}
	}
	for i := range c.Versions[2].Manifest.Handlers {
		if c.Versions[2].Manifest.Handlers[i].SinkFuncName == fixedFn {
			after = &c.Versions[2].Manifest.Handlers[i]
		}
	}
	if before == nil || after == nil {
		t.Fatal("patched handler missing from manifests")
	}
	if before.Category != VulnShallow || after.Category != SafeSanitized {
		t.Errorf("patch transition %v -> %v", before.Category, after.Category)
	}

	// Step 2 (add-feature): new handler appears in the later manifest only.
	if len(c.Steps[2].Appeared) != 1 {
		t.Fatalf("add-feature churn = %+v", c.Steps[2])
	}
	addedFn := c.Steps[2].Appeared[0].SinkFuncName
	if _, ok := handlerTruthByName(&c.Versions[2].Manifest, addedFn); ok {
		t.Error("added handler present before the step")
	}
	h, ok := handlerTruthByName(&c.Versions[3].Manifest, addedFn)
	if !ok {
		t.Fatal("added handler missing after the step")
	}
	if !h.Category.Vulnerable() {
		t.Error("added handler not vulnerable")
	}

	// Step 3 (rename-export): truth follows the new name; the old name is
	// gone; no churn.
	st := c.Steps[3]
	if st.RenamedFrom == "" || st.RenamedTo != st.RenamedFrom+"_v2" {
		t.Fatalf("rename record = %+v", st)
	}
	if len(st.Appeared)+len(st.Fixed) != 0 {
		t.Error("rename step claims churn")
	}
	if _, ok := handlerTruthByName(&c.Versions[4].Manifest, st.RenamedFrom); ok {
		t.Error("old name still in manifest after rename")
	}
	if _, ok := handlerTruthByName(&c.Versions[4].Manifest, st.RenamedTo); !ok {
		t.Error("new name missing from manifest after rename")
	}
	// The renamed function is still a dynamic export under its new name.
	bin, err := c.Versions[4].AppBinary()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range bin.Exports {
		if e.Name == st.RenamedTo {
			found = true
		}
	}
	if !found {
		t.Error("renamed function not exported under new name")
	}
}

func handlerTruthByName(m *Manifest, name string) (HandlerTruth, bool) {
	for _, h := range m.Handlers {
		if h.FuncName == name {
			return h, true
		}
	}
	return HandlerTruth{}, false
}
