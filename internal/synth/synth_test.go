package synth

import (
	"math/rand"
	"testing"

	"fits/internal/cfg"
	"fits/internal/firmware"
	"fits/internal/isa"
	"fits/internal/know"
	"fits/internal/minic"
)

func TestLibcProgramLinksOnAllArches(t *testing.T) {
	p := LibcProgram(rand.New(rand.NewSource(1)))
	for _, arch := range []isa.Arch{isa.ArchARM, isa.ArchAARCH, isa.ArchMIPS} {
		bin, err := minic.Link(p, arch, nil)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		// All anchors must be exported.
		for name := range know.Anchors {
			if _, ok := bin.ExportAddr(name); !ok {
				t.Errorf("%v: anchor %s not exported", arch, name)
			}
		}
		for name := range know.Sources {
			if _, ok := bin.ExportAddr(name); !ok {
				t.Errorf("%v: source %s not exported", arch, name)
			}
		}
	}
}

func TestLibcVariesByRand(t *testing.T) {
	a, _ := minic.Link(LibcProgram(rand.New(rand.NewSource(1))), isa.ArchARM, nil)
	b, _ := minic.Link(LibcProgram(rand.New(rand.NewSource(99))), isa.ArchARM, nil)
	if string(a.Encode()) == string(b.Encode()) {
		t.Error("libc builds identical across seeds")
	}
}

func TestDatasetShape(t *testing.T) {
	specs := Dataset()
	if len(specs) != 59 {
		t.Fatalf("dataset size = %d, want 59", len(specs))
	}
	counts := map[string]int{}
	latest := 0
	failures := map[string]int{}
	for _, s := range specs {
		counts[s.Vendor]++
		if s.Latest {
			latest++
		}
		if s.FailureMode != "" {
			failures[s.FailureMode]++
		}
	}
	if counts["NETGEAR"] != 19 || counts["D-Link"] != 12 || counts["TP-Link"] != 18 ||
		counts["Tenda"] != 9 || counts["Cisco"] != 1 {
		t.Errorf("vendor counts = %v", counts)
	}
	if latest != 10 {
		t.Errorf("latest = %d, want 10", latest)
	}
	if failures["preprocess-miss"] != 4 || failures["offset-indexed"] != 2 {
		t.Errorf("failures = %v", failures)
	}
	// Seeds must be unique and deterministic.
	seen := map[int64]bool{}
	for _, s := range specs {
		if seen[s.Seed] {
			t.Errorf("duplicate seed for %s %s", s.Vendor, s.Product)
		}
		seen[s.Seed] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Dataset()[0]
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Packed) != string(b.Packed) {
		t.Error("generation not deterministic")
	}
}

func TestGeneratedSampleStructure(t *testing.T) {
	spec := Dataset()[0] // NETGEAR
	s, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	man := s.Manifest

	// Firmware must unpack from the packed bytes.
	img, err := firmware.Unpack(s.Packed)
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if img.Vendor != "NETGEAR" {
		t.Errorf("vendor = %q", img.Vendor)
	}

	app, err := s.AppBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !app.Stripped || len(app.Funcs) != 0 {
		t.Error("network binary must be stripped")
	}
	libc, err := s.LibcBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(libc.Exports) == 0 {
		t.Error("libc must export dynamic symbols")
	}

	// The app must import network interface functions.
	var hasNet bool
	for _, im := range app.Imports {
		if know.NetworkImports[im.Name] {
			hasNet = true
		}
	}
	if !hasNet {
		t.Error("no network imports in app binary")
	}

	// Manifest ITS entries must have resolvable entry addresses inside the
	// recovered function set.
	m, err := cfg.Build(app, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(man.ITS) == 0 {
		t.Fatal("no ITS in manifest")
	}
	for _, its := range man.ITS {
		if its.Entry == 0 {
			t.Fatalf("ITS %s has zero entry", its.FuncName)
		}
		if its.Binary != app.Name {
			continue // lives in a secondary network binary
		}
		if _, ok := m.FuncAt(its.Entry); !ok {
			t.Errorf("ITS %s entry %#x not a recovered function", its.FuncName, its.Entry)
		}
	}
	for _, h := range man.Handlers {
		if h.Entry == 0 {
			t.Errorf("handler %s has zero entry", h.FuncName)
		}
	}
	if man.TrueBugs() == 0 {
		t.Error("no vulnerable handlers planted")
	}

	// Function count should be substantial (hundreds).
	if n := len(m.CustomFuncs()); n < 150 {
		t.Errorf("custom functions = %d, want >= 150", n)
	}
}

func TestFailureModes(t *testing.T) {
	var miss, offset *SampleSpec
	for i, s := range Dataset() {
		switch s.FailureMode {
		case "preprocess-miss":
			if miss == nil {
				miss = &Dataset()[i]
			}
		case "offset-indexed":
			if offset == nil {
				offset = &Dataset()[i]
			}
		}
	}
	if miss == nil || offset == nil {
		t.Fatal("failure specs missing")
	}

	s, err := Generate(*miss)
	if err != nil {
		t.Fatal(err)
	}
	app, err := s.AppBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range app.Imports {
		if know.NetworkImports[im.Name] {
			t.Errorf("preprocess-miss app still imports %s", im.Name)
		}
	}
	if _, ok := s.Image.Lookup("lib/libnetshim.so"); !ok {
		t.Error("shim library missing")
	}

	s2, err := Generate(*offset)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Manifest.ITS) != 0 {
		t.Error("offset-indexed sample should have no ITS")
	}
}

func TestHandlerCategories(t *testing.T) {
	if !VulnShallow.Vulnerable() || !VulnDeep.Vulnerable() {
		t.Error("vuln categories must be vulnerable")
	}
	for _, c := range []HandlerCategory{SafeSanitized, BenignSystemData, SystemKeyFetch} {
		if c.Vulnerable() {
			t.Errorf("%v must not be vulnerable", c)
		}
	}
	for c := VulnShallow; c <= SafeRaw; c++ {
		if c.String() == "unknown" {
			t.Errorf("category %d unnamed", c)
		}
	}
	if !VulnRaw.Vulnerable() || SafeRaw.Vulnerable() {
		t.Error("raw categories misclassified")
	}
}

func TestManifestQueries(t *testing.T) {
	m := Manifest{
		ITS: []ITSTruth{{Binary: "httpd", FuncName: "a", Entry: 1}},
		Handlers: []HandlerTruth{
			{Binary: "httpd", FuncName: "h1", Entry: 2, Category: VulnShallow},
			{Binary: "httpd", FuncName: "h2", Entry: 3, Category: SafeSanitized},
		},
	}
	if len(m.ITSIn("httpd")) != 1 || len(m.ITSIn("other")) != 0 {
		t.Error("ITSIn wrong")
	}
	if h, ok := m.HandlerAt("httpd", 2); !ok || h.FuncName != "h1" {
		t.Error("HandlerAt wrong")
	}
	if _, ok := m.HandlerAt("httpd", 99); ok {
		t.Error("HandlerAt false positive")
	}
	if m.TrueBugs() != 1 {
		t.Errorf("TrueBugs = %d", m.TrueBugs())
	}
}
