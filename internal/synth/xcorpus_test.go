package synth

import (
	"bytes"
	"reflect"
	"testing"

	"fits/internal/binimg"
	"fits/internal/frontend"
)

func TestGenerateXCorpusDeterministic(t *testing.T) {
	a, err := GenerateXCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateXCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Manifest, b.Manifest) {
		t.Fatal("manifest not deterministic")
	}
	if len(a.Files) != len(b.Files) {
		t.Fatalf("file counts differ: %d vs %d", len(a.Files), len(b.Files))
	}
	for i := range a.Files {
		if a.Files[i].Path != b.Files[i].Path || !bytes.Equal(a.Files[i].Data, b.Files[i].Data) {
			t.Fatalf("file %s not byte-identical", a.Files[i].Path)
		}
	}
}

func TestXCorpusShape(t *testing.T) {
	x, err := GenerateXCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	m := x.Manifest

	// Every listed binary decodes; only the border binary imports network
	// interfaces — the basis of the claim that single-binary analysis
	// cannot see the back-end flows.
	netImports := map[string]bool{"socket": true, "bind": true, "listen": true,
		"accept": true, "recv": true, "recvfrom": true, "read": true}
	for _, p := range m.Binaries {
		var data []byte
		for _, f := range x.Files {
			if f.Path == p {
				data = f.Data
			}
		}
		if data == nil {
			t.Fatalf("manifest binary %s missing from files", p)
		}
		bin, err := binimg.Decode(data)
		if err != nil {
			t.Fatalf("decode %s: %v", p, err)
		}
		hasNet := false
		for _, im := range bin.Imports {
			if netImports[im.Name] {
				hasNet = true
			}
		}
		if wantNet := p == "bin/httpd"; hasNet != wantNet {
			t.Errorf("%s network imports = %v, want %v", p, hasNet, wantNet)
		}
	}

	// The front-end artifacts yield exactly the manifest keywords.
	var kws []frontend.Keyword
	for _, f := range x.Files {
		kws = append(kws, frontend.Extract(f.Path, f.Data)...)
	}
	if got := frontend.Names(kws); !reflect.DeepEqual(got, m.Keywords) {
		t.Errorf("front-end keywords = %v, want %v", got, m.Keywords)
	}

	// Flow truths reference real functions and include both orders of
	// cross-binary hops.
	cross, twoHop := 0, 0
	for _, f := range m.Flows {
		if f.SinkEntry == 0 {
			t.Errorf("flow %s has no sink entry", f.Name)
		}
		if f.CrossBinary {
			cross++
		}
		if len(f.Hops) == 2 {
			twoHop++
		}
	}
	if cross < 4 || twoHop < 1 {
		t.Errorf("cross flows = %d (want >= 4), two-hop = %d (want >= 1)", cross, twoHop)
	}
}
