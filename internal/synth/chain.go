package synth

// Version-chain generation for evolution analysis: a chain is a sequence of
// firmware versions of the same product, each derived from the previous one
// by a single realistic maintenance edit — a tuned constant, a patched bug, a
// refactored fetch function, an added vendor feature, or a renamed export.
// Every version carries a full ground-truth manifest, and every step records
// exactly which alerts must appear and disappear across it, so that delta
// analysis can be scored mechanically.

import (
	"fmt"
	"math/rand"

	"fits/internal/firmware"
	"fits/internal/isa"
	"fits/internal/minic"
)

// ChainStepKind names one evolution edit.
type ChainStepKind uint8

// Chain step kinds.
const (
	// StepTuneConst bumps one loop-bound immediate in a filler function:
	// a code change with no analysis-visible effect, the minimal-churn case.
	StepTuneConst ChainStepKind = iota
	// StepPatchBug rewrites a shallow vulnerable handler into the sanitized
	// shape, fixing its alert.
	StepPatchBug
	// StepRefactorITS swaps the keyed fetch function's body for a different
	// structural variant of the same behaviour; no alert churn, but the
	// function can no longer be structurally matched across versions.
	StepRefactorITS
	// StepAddFeature adds a new vulnerable handler wired into the dispatch
	// table, introducing a new alert.
	StepAddFeature
	// StepRenameExport renames the exported handler and perturbs its body,
	// exercising the similarity-fallback alignment path.
	StepRenameExport
)

func (k ChainStepKind) String() string {
	switch k {
	case StepTuneConst:
		return "tune-const"
	case StepPatchBug:
		return "patch-bug"
	case StepRefactorITS:
		return "refactor-its"
	case StepAddFeature:
		return "add-feature"
	case StepRenameExport:
		return "rename-export"
	}
	return "unknown"
}

// ExpectedAlert identifies one alert by its stable coordinates: the binary,
// the function containing the sink call (by ground-truth name), and the sink.
type ExpectedAlert struct {
	Binary       string
	SinkFuncName string
	Sink         string
}

// ChainStep describes the edit between two consecutive versions and the alert
// churn it must cause.
type ChainStep struct {
	Kind ChainStepKind
	Desc string
	// Appeared/Fixed list the alerts that must be new in / gone from the
	// later version.
	Appeared []ExpectedAlert
	Fixed    []ExpectedAlert
	// RenamedFrom/RenamedTo record the function pair a rename step aligned.
	RenamedFrom, RenamedTo string
}

// ChainSpec specifies one version chain.
type ChainSpec struct {
	Seed  int64
	Steps []ChainStepKind
	// ExtraHandlers plants additional handlers of the given categories in
	// every version's binary (see SampleSpec.ExtraHandlers); ChainDataset()
	// leaves it nil so the standard chains are byte-identical.
	ExtraHandlers map[HandlerCategory]int
}

// Chain is a generated version chain: len(Steps)+1 versions, where Steps[i]
// transformed Versions[i] into Versions[i+1].
type Chain struct {
	Versions []*Sample
	Steps    []ChainStep
}

// ChainDataset returns the standard chain specifications used by the
// differential and churn test suites: one chain per step kind plus a combined
// multi-step chain.
func ChainDataset() []ChainSpec {
	return []ChainSpec{
		{Seed: 7001, Steps: []ChainStepKind{StepTuneConst}},
		{Seed: 7002, Steps: []ChainStepKind{StepPatchBug}},
		{Seed: 7003, Steps: []ChainStepKind{StepRefactorITS}},
		{Seed: 7004, Steps: []ChainStepKind{StepAddFeature}},
		{Seed: 7005, Steps: []ChainStepKind{StepRenameExport}},
		{Seed: 7006, Steps: []ChainStepKind{
			StepTuneConst, StepPatchBug, StepAddFeature, StepRenameExport, StepRefactorITS,
		}},
	}
}

// chainBuilder mutates one program across versions while keeping the
// name-level ground truth in step.
type chainBuilder struct {
	prog     *minic.Program
	binName  string
	its      []string
	truths   []HandlerTruth
	variant  int // current keyed-fetch body variant
	exported string
	diagN    int
}

// GenerateChain builds the versions of one chain. The base version uses fixed
// generation knobs so every chain carries the same handler mix; the seed
// varies architecture, handler order, keys and sinks.
func GenerateChain(spec ChainSpec) (*Chain, error) {
	r := rand.New(rand.NewSource(spec.Seed))
	arches := []isa.Arch{isa.ArchARM, isa.ArchAARCH, isa.ArchMIPS}
	arch := arches[r.Intn(len(arches))]

	// The libc is linked, stripped and encoded once: shared libraries do not
	// change across patch releases, which is what makes their cached models
	// fully reusable.
	libcBin, err := minic.Link(LibcProgram(r), arch, nil)
	if err != nil {
		return nil, fmt.Errorf("synth: chain libc: %w", err)
	}
	libcBin.Strip()
	libcBytes := libcBin.Encode()

	knobs := appKnobs{
		Name:      "httpd",
		RecvDepth: 3,
		ITSCount:  1,
		Strong:    1,
		Weak:      2,
		Loggers:   2,
		Filler:    80,
		DeepExtra: 2,
		Handlers: map[HandlerCategory]int{
			VulnShallow:      3,
			VulnDeep:         1,
			SafeSanitized:    2,
			BenignSystemData: 2,
			SystemKeyFetch:   1,
			VulnRaw:          1,
			SafeRaw:          1,
		},
	}
	for cat, n := range spec.ExtraHandlers {
		knobs.Handlers[cat] += n
	}
	app := buildApp(r, knobs)
	if len(app.ITSNames) == 0 {
		return nil, fmt.Errorf("synth: chain app has no ITS")
	}
	cb := &chainBuilder{
		prog:    app.Prog,
		binName: knobs.Name,
		its:     append([]string(nil), app.ITSNames...),
		truths:  append([]HandlerTruth(nil), app.Handlers...),
		variant: app.FetchVariant,
	}
	// Reserve the first shallow vulnerable handler for the rename step: it
	// becomes a dynamic export, the anchor the name-match alignment tier
	// loses when the rename lands.
	for _, h := range cb.truths {
		if h.Category == VulnShallow {
			cb.exported = h.FuncName
			break
		}
	}
	if cb.exported == "" {
		return nil, fmt.Errorf("synth: chain app has no shallow vulnerable handler")
	}
	for _, f := range cb.prog.Funcs {
		if f.Name == cb.exported {
			f.Exported = true
		}
	}

	chain := &Chain{}
	for vi := 0; ; vi++ {
		version := fmt.Sprintf("v1.0.%d", vi)
		sample, err := cb.emit(spec.Seed, vi, arch, version, libcBytes)
		if err != nil {
			return nil, err
		}
		chain.Versions = append(chain.Versions, sample)
		if vi == len(spec.Steps) {
			break
		}
		step, err := cb.apply(spec.Steps[vi])
		if err != nil {
			return nil, fmt.Errorf("synth: chain step %d (%s): %w", vi, spec.Steps[vi], err)
		}
		chain.Steps = append(chain.Steps, step)
	}
	return chain, nil
}

// emit links, records truth, strips and packs the current program state as
// one version of the chain.
func (cb *chainBuilder) emit(seed int64, vi int, arch isa.Arch, version string, libcBytes []byte) (*Sample, error) {
	appBin, err := minic.Link(cb.prog, arch, []string{"libc.so"})
	if err != nil {
		return nil, fmt.Errorf("synth: chain app %s: %w", version, err)
	}

	binPath := "bin/" + cb.binName
	man := Manifest{
		Vendor:      "ChainWorks",
		Product:     "CW-1000",
		Version:     version,
		Series:      "CW",
		Arch:        arch,
		Scheme:      firmware.SchemeNone,
		NetBinaries: []string{binPath},
	}
	addrOf := map[string]uint32{}
	for _, s := range appBin.Funcs {
		addrOf[s.Name] = s.Addr
	}
	for _, fn := range cb.its {
		man.ITS = append(man.ITS, ITSTruth{
			Binary: cb.binName, FuncName: fn, Entry: addrOf[fn], TaintsReturn: true,
		})
	}
	for _, h := range cb.truths {
		h.Binary = cb.binName
		h.Entry = addrOf[h.FuncName]
		h.SinkEntry = addrOf[h.SinkFuncName]
		man.Handlers = append(man.Handlers, h)
	}

	appBin.Strip()
	img := &firmware.Image{
		Vendor:  man.Vendor,
		Product: man.Product,
		Version: version,
		Files: []firmware.File{
			{Path: binPath, Data: appBin.Encode()},
			{Path: "lib/libc.so", Data: libcBytes},
			{Path: "etc/version", Data: []byte(version + "\n")},
			{Path: "etc/board.info", Data: []byte(fmt.Sprintf("vendor=%s\nmodel=%s\narch=%s\n", man.Vendor, man.Product, arch))},
			{Path: "www/index.html", Data: []byte("<html><body>" + man.Product + "</body></html>")},
		},
	}
	vr := rand.New(rand.NewSource(seed*1_000_000 + int64(vi)))
	packed := img.Pack(firmware.PackOptions{
		Scheme:  firmware.SchemeNone,
		Key:     vr.Uint32(),
		Padding: 256 + vr.Intn(2048),
		PadSeed: byte(vr.Uint32()),
	})
	return &Sample{Image: img, Packed: packed, Manifest: man}, nil
}

// apply performs one evolution edit in place and returns its churn record.
func (cb *chainBuilder) apply(kind ChainStepKind) (ChainStep, error) {
	switch kind {
	case StepTuneConst:
		return cb.tuneConst()
	case StepPatchBug:
		return cb.patchBug()
	case StepRefactorITS:
		return cb.refactorITS()
	case StepAddFeature:
		return cb.addFeature()
	case StepRenameExport:
		return cb.renameExport()
	}
	return ChainStep{}, fmt.Errorf("unknown step kind %d", kind)
}

// tuneConst bumps the loop bound of the first counting-loop filler: one Movi
// immediate changes, nothing else moves.
func (cb *chainBuilder) tuneConst() (ChainStep, error) {
	for _, f := range cb.prog.Funcs {
		if len(f.Name) < 7 || f.Name[:7] != "sub_fn_" || len(f.Body) != 4 {
			continue
		}
		w, ok := f.Body[2].(minic.While)
		if !ok || w.Cond.Op != minic.Lt {
			continue
		}
		bound, ok := w.Cond.R.(minic.Int)
		if !ok {
			continue
		}
		w.Cond.R = minic.Int(int32(bound) + 1)
		f.Body[2] = w
		return ChainStep{
			Kind: StepTuneConst,
			Desc: fmt.Sprintf("bump loop bound in %s from %d to %d", f.Name, int32(bound), int32(bound)+1),
		}, nil
	}
	return ChainStep{}, fmt.Errorf("no counting-loop filler found")
}

// patchBug rewrites a shallow vulnerable handler into the sanitized shape —
// the fix a vendor security release ships.
func (cb *chainBuilder) patchBug() (ChainStep, error) {
	for i := range cb.truths {
		h := &cb.truths[i]
		if h.Category != VulnShallow || h.FuncName == cb.exported {
			continue
		}
		f := cb.funcByName(h.FuncName)
		if f == nil {
			return ChainStep{}, fmt.Errorf("handler %s missing from program", h.FuncName)
		}
		fetch := minic.Call{Name: cb.its[0], Args: []minic.Expr{
			minic.Str(h.Key), minic.GlobalRef("g_kvstore"), minic.Int(1024)}}
		f.Body = []minic.Stmt{
			minic.Let{Name: "val", E: fetch},
			minic.If{Cond: minic.Cond{Op: minic.Eq, L: minic.Var("val"), R: minic.Int(0)},
				Then: []minic.Stmt{minic.Return{E: minic.Int(0)}}},
			minic.Let{Name: "n", E: minic.Call{Name: "strlen", Args: []minic.Expr{minic.Var("val")}}},
			minic.If{Cond: minic.Cond{Op: minic.Lt, L: minic.Var("n"), R: minic.Int(32)},
				Then: []minic.Stmt{sinkStmt(h.Sink, minic.Var("val"))}},
			minic.Return{E: minic.Int(0)},
		}
		fixed := ExpectedAlert{Binary: cb.binName, SinkFuncName: h.SinkFuncName, Sink: h.Sink}
		h.Category = SafeSanitized
		return ChainStep{
			Kind:  StepPatchBug,
			Desc:  fmt.Sprintf("sanitize %s before %s", h.FuncName, h.Sink),
			Fixed: []ExpectedAlert{fixed},
		}, nil
	}
	return ChainStep{}, fmt.Errorf("no patchable shallow vulnerable handler left")
}

// refactorITS swaps the fetch function's body for the next structural
// variant: same behaviour, different code shape.
func (cb *chainBuilder) refactorITS() (ChainStep, error) {
	f := cb.funcByName(cb.its[0])
	if f == nil {
		return ChainStep{}, fmt.Errorf("ITS %s missing from program", cb.its[0])
	}
	cb.variant = (cb.variant + 1) % 4
	f.Body = keyedFetchBody(cb.variant)
	return ChainStep{
		Kind: StepRefactorITS,
		Desc: fmt.Sprintf("rewrite %s as fetch variant %d", cb.its[0], cb.variant),
	}, nil
}

// addFeature adds a new vulnerable handler and repoints a wraparound
// dispatch-table slot at it, the way vendor feature drops extend existing
// tables.
func (cb *chainBuilder) addFeature() (ChainStep, error) {
	var tbl *minic.Global
	for _, g := range cb.prog.Globals {
		if g.Name == "g_handlers" {
			tbl = g
		}
	}
	if tbl == nil {
		return ChainStep{}, fmt.Errorf("no dispatch table")
	}
	// Every handler's primary slot is its table index; slots past the handler
	// count wrap around as duplicates. Repointing the first duplicate slot
	// wires the new handler in without unrouting an existing one.
	slot := len(cb.chainHandlers())
	if slot >= len(tbl.Ptrs) {
		return ChainStep{}, fmt.Errorf("dispatch table full (%d slots)", len(tbl.Ptrs))
	}
	name := fmt.Sprintf("handle_diag_%d", cb.diagN)
	cb.diagN++
	key := "diag_cmd"
	sink := "strcpy"
	fetch := minic.Call{Name: cb.its[0], Args: []minic.Expr{
		minic.Str(key), minic.GlobalRef("g_kvstore"), minic.Int(1024)}}
	cb.prog.Funcs = append(cb.prog.Funcs, &minic.Func{
		Name: name,
		Body: []minic.Stmt{
			minic.Let{Name: "val", E: fetch},
			minic.If{Cond: minic.Cond{Op: minic.Eq, L: minic.Var("val"), R: minic.Int(0)},
				Then: []minic.Stmt{minic.Return{E: minic.Int(0)}}},
			sinkStmt(sink, minic.Var("val")),
			minic.Return{E: minic.Int(0)},
		},
	})
	tbl.Ptrs[slot] = minic.PtrInit{Off: 4 * slot, FuncName: name}
	cb.truths = append(cb.truths, HandlerTruth{
		Binary:       cb.binName,
		FuncName:     name,
		Category:     VulnShallow,
		Sink:         sink,
		Key:          key,
		ITSDepth:     1,
		CTSDepth:     6,
		SinkFuncName: name,
	})
	return ChainStep{
		Kind:     StepAddFeature,
		Desc:     fmt.Sprintf("add handler %s on slot %d", name, slot),
		Appeared: []ExpectedAlert{{Binary: cb.binName, SinkFuncName: name, Sink: sink}},
	}, nil
}

// renameExport renames the exported handler and prepends a harmless
// statement: the body shift defeats structural matching while the behavioral
// vector stays put, which is exactly the case the similarity fallback exists
// for. The alert inside persists across the rename.
func (cb *chainBuilder) renameExport() (ChainStep, error) {
	oldName := cb.exported
	newName := oldName + "_v2"
	f := cb.funcByName(oldName)
	if f == nil {
		return ChainStep{}, fmt.Errorf("exported handler %s missing", oldName)
	}
	f.Body = append([]minic.Stmt{
		minic.Let{Name: "z0", E: minic.Add(minic.Int(1), minic.Int(2))},
	}, f.Body...)
	renameFuncRefs(cb.prog, oldName, newName)
	for i := range cb.truths {
		if cb.truths[i].FuncName == oldName {
			cb.truths[i].FuncName = newName
		}
		if cb.truths[i].SinkFuncName == oldName {
			cb.truths[i].SinkFuncName = newName
		}
	}
	cb.exported = newName
	return ChainStep{
		Kind:        StepRenameExport,
		Desc:        fmt.Sprintf("rename %s to %s", oldName, newName),
		RenamedFrom: oldName,
		RenamedTo:   newName,
	}, nil
}

func (cb *chainBuilder) funcByName(name string) *minic.Func {
	for _, f := range cb.prog.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// chainHandlers returns the handler function names in original table order,
// plus any added features (which consumed their own slots).
func (cb *chainBuilder) chainHandlers() []string {
	var out []string
	for _, h := range cb.truths {
		out = append(out, h.FuncName)
	}
	return out
}

// renameFuncRefs rewrites every reference to a function name across the
// program: definitions, calls, address-of expressions and pointer-table
// initializers.
func renameFuncRefs(p *minic.Program, from, to string) {
	for _, f := range p.Funcs {
		if f.Name == from {
			f.Name = to
		}
		f.Body = renameStmts(f.Body, from, to)
	}
	for _, g := range p.Globals {
		for i := range g.Ptrs {
			if g.Ptrs[i].FuncName == from {
				g.Ptrs[i].FuncName = to
			}
		}
	}
}

func renameStmts(body []minic.Stmt, from, to string) []minic.Stmt {
	out := make([]minic.Stmt, len(body))
	for i, s := range body {
		out[i] = renameStmt(s, from, to)
	}
	return out
}

func renameStmt(s minic.Stmt, from, to string) minic.Stmt {
	switch s := s.(type) {
	case minic.Let:
		s.E = renameExpr(s.E, from, to)
		return s
	case minic.Assign:
		s.E = renameExpr(s.E, from, to)
		return s
	case minic.StoreStmt:
		s.Addr = renameExpr(s.Addr, from, to)
		s.Val = renameExpr(s.Val, from, to)
		return s
	case minic.If:
		s.Cond = renameCond(s.Cond, from, to)
		s.Then = renameStmts(s.Then, from, to)
		s.Else = renameStmts(s.Else, from, to)
		return s
	case minic.While:
		s.Cond = renameCond(s.Cond, from, to)
		s.Body = renameStmts(s.Body, from, to)
		return s
	case minic.Switch:
		s.E = renameExpr(s.E, from, to)
		cases := make([][]minic.Stmt, len(s.Cases))
		for i, c := range s.Cases {
			cases[i] = renameStmts(c, from, to)
		}
		s.Cases = cases
		s.Default = renameStmts(s.Default, from, to)
		return s
	case minic.Return:
		if s.E != nil {
			s.E = renameExpr(s.E, from, to)
		}
		return s
	case minic.ExprStmt:
		s.E = renameExpr(s.E, from, to)
		return s
	default:
		return s
	}
}

func renameCond(c minic.Cond, from, to string) minic.Cond {
	c.L = renameExpr(c.L, from, to)
	c.R = renameExpr(c.R, from, to)
	return c
}

func renameExpr(e minic.Expr, from, to string) minic.Expr {
	switch e := e.(type) {
	case minic.FuncAddr:
		if string(e) == from {
			return minic.FuncAddr(to)
		}
		return e
	case minic.LoadExpr:
		e.Addr = renameExpr(e.Addr, from, to)
		return e
	case minic.Bin:
		e.L = renameExpr(e.L, from, to)
		e.R = renameExpr(e.R, from, to)
		return e
	case minic.Call:
		if e.Name == from {
			e.Name = to
		}
		args := make([]minic.Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = renameExpr(a, from, to)
		}
		e.Args = args
		return e
	case minic.CallInd:
		e.Index = renameExpr(e.Index, from, to)
		args := make([]minic.Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = renameExpr(a, from, to)
		}
		e.Args = args
		return e
	default:
		return e
	}
}
