package cfg

import "slices"

// findLoops computes natural loops from back edges using dominators.
func findLoops(f *Function) []Loop {
	idom := Dominators(f)
	preds := predecessors(f)
	_ = preds
	var loops []Loop
	for _, ba := range f.Order {
		b := f.Blocks[ba]
		for _, succ := range b.Succs {
			if _, ok := f.Blocks[succ]; !ok {
				continue
			}
			if dominates(idom, succ, ba) {
				loops = append(loops, naturalLoop(f, preds, succ, ba))
			}
		}
	}
	slices.SortFunc(loops, func(a, b Loop) int { return int(a.Head) - int(b.Head) })
	return loops
}

// Dominators computes the immediate dominator of every reachable block with
// the iterative dataflow algorithm (Cooper/Harvey/Kennedy). The entry block
// maps to itself.
func Dominators(f *Function) map[uint32]uint32 {
	order := reversePostorder(f)
	index := map[uint32]int{}
	for i, a := range order {
		index[a] = i
	}
	preds := predecessors(f)
	idom := map[uint32]uint32{f.Entry: f.Entry}

	intersect := func(a, b uint32) uint32 {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == f.Entry {
				continue
			}
			var newIdom uint32
			found := false
			for _, p := range preds[b] {
				if _, ok := idom[p]; !ok {
					continue
				}
				if !found {
					newIdom = p
					found = true
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if !found {
				continue
			}
			if cur, ok := idom[b]; !ok || cur != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// dominates reports whether a dominates b under the idom map.
func dominates(idom map[uint32]uint32, a, b uint32) bool {
	for {
		if a == b {
			return true
		}
		next, ok := idom[b]
		if !ok || next == b {
			return false
		}
		b = next
	}
}

// naturalLoop collects the body of the loop with the given head and back
// edge source (tail), walking predecessors from the tail until the head.
func naturalLoop(f *Function, preds map[uint32][]uint32, head, tail uint32) Loop {
	body := map[uint32]bool{head: true}
	stack := []uint32{tail}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if body[n] {
			continue
		}
		body[n] = true
		stack = append(stack, preds[n]...)
	}
	return Loop{Head: head, Body: body}
}

// predecessors builds the reverse edge map, restricted to in-function blocks.
func predecessors(f *Function) map[uint32][]uint32 {
	preds := map[uint32][]uint32{}
	for _, ba := range f.Order {
		for _, s := range f.Blocks[ba].Succs {
			if _, ok := f.Blocks[s]; ok {
				preds[s] = append(preds[s], ba)
			}
		}
	}
	return preds
}

// reversePostorder returns block addresses in reverse postorder of a DFS
// from the entry.
func reversePostorder(f *Function) []uint32 {
	var post []uint32
	visited := map[uint32]bool{}
	var dfs func(uint32)
	dfs = func(a uint32) {
		if visited[a] {
			return
		}
		visited[a] = true
		b, ok := f.Blocks[a]
		if !ok {
			return
		}
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, a)
	}
	dfs(f.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
