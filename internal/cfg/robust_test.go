package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fits/internal/binimg"
	"fits/internal/isa"
)

// randomTextBinary builds a binary whose text is arbitrary (decodable or
// not) bytes, as an adversarial input for function recovery.
func randomTextBinary(r *rand.Rand) *binimg.Binary {
	n := isa.Width * (1 + r.Intn(64))
	text := make([]byte, n)
	if r.Intn(2) == 0 {
		// Valid-looking instructions with random fields.
		for i := 0; i < n/isa.Width; i++ {
			in := isa.Instr{
				Op:  isa.Op(r.Intn(30)),
				Rd:  isa.Reg(r.Intn(isa.NumRegs)),
				Rs1: isa.Reg(r.Intn(isa.NumRegs)),
				Rs2: isa.Reg(r.Intn(isa.NumRegs)),
				// Bias immediates toward in-text addresses so branches and
				// calls mostly land inside the section.
				Imm: int32(0x10000 + isa.Width*r.Intn(n/isa.Width+8)),
			}
			if !in.Op.Valid() {
				in.Op = isa.OpNop
			}
			isa.ArchARM.Encode(in, text[i*isa.Width:])
		}
	} else {
		r.Read(text)
	}
	data := make([]byte, r.Intn(64))
	r.Read(data)
	return &binimg.Binary{
		Name:    "fuzz",
		Arch:    isa.ArchARM,
		Entry:   0x10000,
		Text:    binimg.Section{Addr: 0x10000, Data: text},
		Rodata:  binimg.Section{Addr: 0x20000, Data: []byte("s\x00")},
		Data:    binimg.Section{Addr: 0x30000, Data: data},
		BssAddr: 0x40000, BssSize: 64,
	}
}

// Property: Build never panics on adversarial text; every recovered block
// stays inside the text section and all call-graph edges point at recovered
// functions or import stubs.
func TestQuickBuildOnAdversarialText(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		bin := randomTextBinary(r)
		m, err := Build(bin, Options{})
		if err != nil {
			return true
		}
		for _, fn := range m.Funcs {
			for _, b := range fn.Blocks {
				if !bin.Text.Contains(b.Start) || b.End() > bin.Text.End() {
					return false
				}
			}
		}
		for callee := range m.Callers {
			if _, ok := m.Funcs[callee]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every function's blocks partition its instruction addresses
// (no overlaps within a function).
func TestQuickBlocksDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bin := randomTextBinary(r)
		m, err := Build(bin, Options{})
		if err != nil {
			return true
		}
		for _, fn := range m.Funcs {
			seen := map[uint32]bool{}
			for _, b := range fn.Blocks {
				for a := b.Start; a < b.End(); a += isa.Width {
					if seen[a] {
						return false
					}
					seen[a] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: loops found always contain their head and a back edge into it.
func TestQuickLoopInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bin := randomTextBinary(r)
		m, err := Build(bin, Options{})
		if err != nil {
			return true
		}
		for _, fn := range m.Funcs {
			for _, lp := range fn.Loops {
				if !lp.Body[lp.Head] {
					return false
				}
				backEdge := false
				for ba := range lp.Body {
					b, ok := fn.Blocks[ba]
					if !ok {
						return false
					}
					for _, s := range b.Succs {
						if s == lp.Head {
							backEdge = true
						}
					}
				}
				if !backEdge {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
