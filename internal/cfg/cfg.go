// Package cfg recovers functions, control flow graphs and the call graph
// from stripped binaries.
//
// Discovery is recursive descent from seeds (the entry point, dynamic
// exports, and function pointers found in the data section), followed by a
// prologue scan for unreached code. Indirect call sites are resolved through
// a pluggable resolver, which the ucse package implements with
// under-constrained symbolic execution — the division of labor the paper
// describes for its CFG/CG construction stage.
package cfg

import (
	"fmt"
	"sort"

	"fits/internal/binimg"
	"fits/internal/ir"
	"fits/internal/isa"
)

// CallSite is one call instruction inside a function.
type CallSite struct {
	Caller   uint32 // entry address of the calling function
	Addr     uint32 // address of the call instruction
	Block    uint32 // block containing the call
	Target   uint32 // callee entry; 0 while unresolved
	Indirect bool
	// ImportName is set when the callee is a PLT stub (directly or after
	// resolution), identifying the library function called.
	ImportName string
}

// BasicBlock is a straight-line run of instructions with its lifted IR.
type BasicBlock struct {
	Start  uint32
	Instrs []isa.Instr
	IR     []*ir.Block
	Succs  []uint32
}

// End returns the first address past the block.
func (b *BasicBlock) End() uint32 {
	return b.Start + uint32(len(b.Instrs)*isa.Width)
}

// Loop is a natural loop identified from a back edge.
type Loop struct {
	Head uint32
	Body map[uint32]bool // block start addresses, including Head
}

// Function is a recovered function with CFG, loops and call sites.
type Function struct {
	Entry  uint32
	Name   string // debug name when available, else sub_<addr>
	Blocks map[uint32]*BasicBlock
	Order  []uint32 // block start addresses in ascending order
	Calls  []CallSite
	Loops  []Loop
	// Params is the estimated parameter count: argument registers read
	// before being written.
	Params int
	// ImportStub marks PLT trampolines; ImportName is the library function.
	ImportStub bool
	ImportName string
	// DynJumps lists the addresses of computed jumps (jump tables) in the
	// function; JumpTables holds their resolved intra-function targets.
	DynJumps   []uint32
	JumpTables map[uint32][]uint32
}

// NumBlocks returns the basic block count.
func (f *Function) NumBlocks() int { return len(f.Blocks) }

// HasLoop reports whether the function contains any natural loop.
func (f *Function) HasLoop() bool { return len(f.Loops) > 0 }

// Size returns the function's footprint in bytes (sum of block sizes).
func (f *Function) Size() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs) * isa.Width
	}
	return n
}

// BlocksInOrder returns blocks by ascending start address.
func (f *Function) BlocksInOrder() []*BasicBlock {
	out := make([]*BasicBlock, 0, len(f.Order))
	for _, a := range f.Order {
		out = append(out, f.Blocks[a])
	}
	return out
}

// Model is the whole-binary analysis result.
type Model struct {
	Bin   *binimg.Binary
	Funcs map[uint32]*Function
	// Callers maps a callee entry to every call site reaching it, the
	// reverse call graph used by interprocedural feature extraction.
	Callers map[uint32][]CallSite
}

// FuncAt returns the function with the given entry.
func (m *Model) FuncAt(entry uint32) (*Function, bool) {
	f, ok := m.Funcs[entry]
	return f, ok
}

// FuncsInOrder returns functions by ascending entry address.
func (m *Model) FuncsInOrder() []*Function {
	out := make([]*Function, 0, len(m.Funcs))
	for _, f := range m.Funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entry < out[j].Entry })
	return out
}

// CustomFuncs returns the non-stub functions, the candidate set from which
// intermediate taint sources are inferred.
func (m *Model) CustomFuncs() []*Function {
	var out []*Function
	for _, f := range m.FuncsInOrder() {
		if !f.ImportStub {
			out = append(out, f)
		}
	}
	return out
}

// Callees returns resolved callee entries of f in deterministic order.
func (m *Model) Callees(f *Function) []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, cs := range f.Calls {
		if cs.Target != 0 && !seen[cs.Target] {
			seen[cs.Target] = true
			out = append(out, cs.Target)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *Model) String() string {
	return fmt.Sprintf("model(%s: %d funcs)", m.Bin.Name, len(m.Funcs))
}
