package cfg

// Differential tests for the ReusePlan contract: a Build guided by a reuse
// plan must produce a model deep-equal to a cold Build of the same binary,
// whether the new version is identical, tweaked in place, or shifted by an
// inserted function.

import (
	"reflect"
	"testing"

	"fits/internal/binimg"
	"fits/internal/isa"
	"fits/internal/minic"
)

// evoProg builds a small program with an exported leaf, a loop worker using
// imports, and an if/else main; extra inserts a function ahead of the others,
// shifting every later entry.
func evoProg(bound int32, extra bool) *minic.Program {
	var funcs []*minic.Func
	if extra {
		funcs = append(funcs, &minic.Func{
			Name: "wedge", NParams: 1,
			Body: []minic.Stmt{minic.Return{E: minic.Add(minic.Var("p0"), minic.Int(7))}},
		})
	}
	funcs = append(funcs,
		&minic.Func{
			Name: "leaf", Exported: true, NParams: 1,
			Body: []minic.Stmt{minic.Return{E: minic.Add(minic.Var("p0"), minic.Int(1))}},
		},
		&minic.Func{
			Name: "worker", NParams: 1,
			Body: []minic.Stmt{
				minic.Let{Name: "i", E: minic.Int(0)},
				minic.While{
					Cond: minic.Cond{Op: minic.Lt, L: minic.Var("i"), R: minic.Int(bound)},
					Body: []minic.Stmt{
						minic.Assign{Name: "i", E: minic.Add(minic.Var("i"), minic.Int(1))},
					},
				},
				minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{minic.Var("p0"), minic.Var("i")}}},
				minic.Return{E: minic.Call{Name: "leaf", Args: []minic.Expr{minic.Var("i")}}},
			},
		},
		&minic.Func{
			Name: "main", NParams: 1,
			Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "recv", Args: []minic.Expr{minic.Int(0)}}},
				minic.If{
					Cond: minic.Cond{Op: minic.Gt, L: minic.Var("p0"), R: minic.Int(0)},
					Then: []minic.Stmt{minic.Return{E: minic.Call{Name: "worker", Args: []minic.Expr{minic.Var("p0")}}}},
				},
				minic.Return{E: minic.Int(0)},
			},
		},
	)
	return &minic.Program{Name: "evo", Funcs: funcs}
}

func buildIncremental(t *testing.T, oldBin *binimg.Binary, oldModel *Model, newBin *binimg.Binary, opts Options) (*Model, *ReusePlan) {
	t.Helper()
	plan := NewReusePlan(oldBin, oldModel, newBin)
	opts.FuncSource = plan.Source
	m, err := Build(newBin, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan.Finalize(m)
	return m, plan
}

func countCustoms(m *Model) int {
	n := 0
	for _, f := range m.Funcs {
		if !f.ImportStub {
			n++
		}
	}
	return n
}

func TestReuseIdenticalBinary(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchARM, isa.ArchMIPS} {
		bin := link(t, evoProg(5, false), arch)
		cold := build(t, bin)
		inc, plan := buildIncremental(t, bin, cold, bin, Options{})
		if !reflect.DeepEqual(cold.Funcs, inc.Funcs) {
			t.Fatalf("arch %v: incremental model differs from cold build", arch)
		}
		if !reflect.DeepEqual(cold.Callers, inc.Callers) {
			t.Fatalf("arch %v: incremental callers differ from cold build", arch)
		}
		customs := countCustoms(cold)
		if plan.Reused != customs {
			t.Errorf("arch %v: reused %d of %d custom funcs", arch, plan.Reused, customs)
		}
		if plan.Total != customs {
			t.Errorf("arch %v: total = %d, want %d", arch, plan.Total, customs)
		}
		for entry, f := range inc.Funcs {
			if f.ImportStub {
				continue
			}
			if !plan.RawIdentical(entry) {
				t.Errorf("arch %v: %s not raw-identical on identical binary", arch, f.Name)
			}
			if !plan.BFVSafe[entry] {
				t.Errorf("arch %v: %s not BFV-safe on identical binary", arch, f.Name)
			}
		}
		if !plan.AnchorsSafe {
			t.Errorf("arch %v: anchors not safe on identical binary", arch)
		}
	}
}

func TestReuseTweakedConstant(t *testing.T) {
	// Changing only a loop bound rewrites one Movi immediate in place: every
	// function still validates (non-control immediates are free), the output
	// must still equal a cold build, and only the tweaked function loses its
	// raw-identical status.
	oldBin := link(t, evoProg(5, false), isa.ArchARM)
	newBin := link(t, evoProg(9, false), isa.ArchARM)
	oldModel := build(t, oldBin)
	cold := build(t, newBin)
	inc, plan := buildIncremental(t, oldBin, oldModel, newBin, Options{})
	if !reflect.DeepEqual(cold.Funcs, inc.Funcs) {
		t.Fatal("incremental model differs from cold build after constant tweak")
	}
	if plan.Reused != countCustoms(cold) {
		t.Errorf("reused %d of %d after in-place tweak", plan.Reused, countCustoms(cold))
	}
	worker := funcByName(t, inc, "worker")
	if plan.RawIdentical(worker.Entry) {
		t.Error("tweaked function reported raw-identical")
	}
	if plan.BFVSafe[worker.Entry] {
		t.Error("tweaked function reported BFV-safe")
	}
	leaf := funcByName(t, inc, "leaf")
	if !plan.RawIdentical(leaf.Entry) {
		t.Error("untouched leaf not raw-identical")
	}
}

func TestReuseShiftedByInsertedFunction(t *testing.T) {
	// Inserting a function ahead of the others shifts every later entry and
	// every stub; shared import/export deltas must recover the unchanged
	// functions at their new addresses.
	oldBin := link(t, evoProg(5, false), isa.ArchARM)
	newBin := link(t, evoProg(5, true), isa.ArchARM)
	oldModel := build(t, oldBin)
	cold := build(t, newBin)
	inc, plan := buildIncremental(t, oldBin, oldModel, newBin, Options{})
	if !reflect.DeepEqual(cold.Funcs, inc.Funcs) {
		t.Fatal("incremental model differs from cold build after shift")
	}
	if !reflect.DeepEqual(cold.Callers, inc.Callers) {
		t.Fatal("incremental callers differ from cold build after shift")
	}
	// leaf, worker and main exist unchanged, just relocated.
	if plan.Reused < 3 {
		t.Errorf("reused %d funcs, want >= 3", plan.Reused)
	}
	// Relocated code can never be raw-identical, so no BFV reuse.
	leaf := funcByName(t, inc, "leaf")
	if plan.RawIdentical(leaf.Entry) {
		t.Error("shifted function reported raw-identical")
	}
	if len(plan.BFVSafe) != 0 {
		t.Errorf("BFVSafe = %d entries on shifted binary, want 0", len(plan.BFVSafe))
	}
}

func TestReuseWithIndirectResolution(t *testing.T) {
	// Reused functions carry pre-resolution call sites; the indirect
	// resolution fixed point must converge to the same answer either way.
	prog := func() *minic.Program {
		return &minic.Program{
			Name: "t",
			Globals: []*minic.Global{{
				Name: "tbl", Size: 4, Init: make([]byte, 4),
				Ptrs: []minic.PtrInit{{Off: 0, FuncName: "h"}},
			}},
			Funcs: []*minic.Func{
				{Name: "h", NParams: 1, Body: []minic.Stmt{minic.Return{E: minic.Var("p0")}}},
				{Name: "main", Body: []minic.Stmt{
					minic.Return{E: minic.CallInd{Table: "tbl", Index: minic.Int(0), Args: []minic.Expr{minic.Int(3)}}},
				}},
			},
		}
	}
	bin := link(t, prog(), isa.ArchARM)
	var hAddr uint32
	for _, f := range bin.Funcs {
		if f.Name == "h" {
			hAddr = f.Addr
		}
	}
	resolver := func(b *binimg.Binary, f *Function, site CallSite) []uint32 {
		return []uint32{hAddr}
	}
	cold, err := Build(bin, Options{Resolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	inc, plan := buildIncremental(t, bin, cold, bin, Options{Resolver: resolver})
	if !reflect.DeepEqual(cold.Funcs, inc.Funcs) {
		t.Fatal("incremental model differs from cold build with resolver")
	}
	if plan.Reused != countCustoms(cold) {
		t.Errorf("reused %d of %d with resolver", plan.Reused, countCustoms(cold))
	}
}

func TestReuseSkipsJumpTableFunctions(t *testing.T) {
	// Functions holding computed jumps depend on resolver state; they must be
	// rebuilt cold, and the result must still match.
	prog := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "out", Size: 16}},
		Funcs: []*minic.Func{{
			Name: "router", NParams: 1,
			Body: []minic.Stmt{
				minic.Switch{
					E: minic.Var("p0"),
					Cases: [][]minic.Stmt{
						{minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("out"), Val: minic.Int(1)}},
						{minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("out"), Val: minic.Int(2)}},
					},
					Default: []minic.Stmt{minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("out"), Val: minic.Int(9)}},
				},
				minic.Return{E: minic.Int(0)},
			},
		}, {
			Name: "plain", NParams: 1,
			Body: []minic.Stmt{minic.Return{E: minic.Add(minic.Var("p0"), minic.Int(2))}},
		}},
	}
	bin := link(t, prog, isa.ArchARM)
	resolver := func(b *binimg.Binary, f *Function, addr uint32) []uint32 {
		var out []uint32
		base := b.Rodata.Addr
		for off := uint32(0); off+4 <= uint32(len(b.Rodata.Data)); off += 4 {
			if w, ok := b.WordAt(base + off); ok && b.Text.Contains(w) && (w-b.Text.Addr)%isa.Width == 0 {
				out = append(out, w)
			}
		}
		return out
	}
	cold, err := Build(bin, Options{JumpResolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	inc, plan := buildIncremental(t, bin, cold, bin, Options{JumpResolver: resolver})
	if !reflect.DeepEqual(cold.Funcs, inc.Funcs) {
		t.Fatal("incremental model differs from cold build with jump tables")
	}
	router := funcByName(t, inc, "router")
	if _, reused := plan.FuncMap[router.Entry]; reused {
		t.Error("jump-table function was reused")
	}
	plain := funcByName(t, inc, "plain")
	if _, reused := plan.FuncMap[plain.Entry]; !reused {
		t.Error("plain function was not reused")
	}
}
