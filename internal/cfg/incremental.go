package cfg

// Incremental model construction for firmware evolution chains: a ReusePlan
// carries the recovered model of an old version of a binary into the Build of
// a new version, skipping from-scratch recovery for functions whose code is
// unchanged (possibly relocated by a constant shift).
//
// The reuse contract is exact equality, not approximation: a candidate old
// function is accepted only if every one of its instructions re-validates
// against the new binary at the shifted address, with control-flow immediates
// (conditional branches and direct jumps) required to be exactly the old
// target plus the shift. Under that check, recursive descent from the new
// entry would reach exactly the old instruction set shifted, with the same
// leaders — so replaying the old block structure over freshly decoded new
// instructions, through a fresh lifter in the same flat address order,
// reproduces byte-for-byte what a cold buildFunction would have produced.
// Functions containing computed jumps are never reused: their recovery
// depends on jump-table resolver state a plan cannot reproduce.

import (
	"bytes"
	"slices"
	"sort"
	"strconv"

	"fits/internal/binimg"
	"fits/internal/ir"
	"fits/internal/isa"
)

// ReusePlan guides the incremental rebuild of one binary against its previous
// version. Install its Source method as Options.FuncSource, then call
// Finalize with the completed model to compute the vector-reuse tiers.
// A plan is not safe for concurrent use; Build is single-threaded per binary,
// which is the only consumer during construction.
type ReusePlan struct {
	oldBin   *binimg.Binary
	oldModel *Model
	newBin   *binimg.Binary

	// deltas are the candidate entry shifts to probe, zero first, then the
	// distinct shifts observed between shared imports and exports.
	deltas []int64
	// hints pairs a new-version entry with its best old-version candidate:
	// seeded from entry points and shared export names, then propagated
	// through the direct call sites of every reused function.
	hints map[uint32]uint32

	// FuncMap maps each reused new-function entry to the old entry it was
	// validated against.
	FuncMap map[uint32]uint32
	// rawEq marks reused functions that are fully identical to the old
	// version at an unchanged address: zero shift and equal raw instructions,
	// immediates included.
	rawEq map[uint32]bool

	// BFVSafe, filled by Finalize, marks reused functions whose behavioral
	// feature vector is provably equal to the old version's: the function and
	// all its callers are raw-identical in place, its callee-name profile is
	// unchanged, and the data sections the string features read are unchanged.
	BFVSafe map[uint32]bool
	// AnchorsSafe, filled by Finalize, reports that the binary's anchor
	// call-site profile (which import is called from where) is unchanged and
	// every calling function is raw-identical, so anchor feature extraction
	// over the new model must reproduce the old result.
	AnchorsSafe bool

	// Reused counts functions installed by Source; Total counts the custom
	// (non-stub) functions of the finished new model.
	Reused, Total int
}

// NewReusePlan prepares a plan for rebuilding newBin against the recovered
// model of oldBin.
func NewReusePlan(oldBin *binimg.Binary, oldModel *Model, newBin *binimg.Binary) *ReusePlan {
	p := &ReusePlan{
		oldBin:   oldBin,
		oldModel: oldModel,
		newBin:   newBin,
		hints:    map[uint32]uint32{},
		FuncMap:  map[uint32]uint32{},
		rawEq:    map[uint32]bool{},
		BFVSafe:  map[uint32]bool{},
	}
	if oldBin.Text.Contains(oldBin.Entry) && newBin.Text.Contains(newBin.Entry) {
		p.hints[newBin.Entry] = oldBin.Entry
	}
	deltaSet := map[int64]bool{}
	oldExports := map[string]uint32{}
	for _, e := range oldBin.Exports {
		oldExports[e.Name] = e.Addr
	}
	for _, e := range newBin.Exports {
		if oa, ok := oldExports[e.Name]; ok {
			p.hints[e.Addr] = oa
			deltaSet[int64(e.Addr)-int64(oa)] = true
		}
	}
	oldStubs := map[string]uint32{}
	for _, im := range oldBin.Imports {
		oldStubs[im.Name] = im.Stub
	}
	for _, im := range newBin.Imports {
		if os, ok := oldStubs[im.Name]; ok {
			deltaSet[int64(im.Stub)-int64(os)] = true
		}
	}
	p.deltas = []int64{0}
	var rest []int64
	for d := range deltaSet {
		if d != 0 {
			rest = append(rest, d)
		}
	}
	slices.Sort(rest)
	p.deltas = append(p.deltas, rest...)
	return p
}

// Source implements Options.FuncSource: it tries the pairing hint for the
// entry first, then every candidate shift, returning the first old function
// that re-validates exactly against the new binary.
func (p *ReusePlan) Source(entry uint32) (*Function, bool) {
	tried := map[uint32]bool{}
	if old, ok := p.hints[entry]; ok {
		tried[old] = true
		if f := p.tryReuse(entry, old); f != nil {
			return f, true
		}
	}
	for _, d := range p.deltas {
		old := uint32(int64(entry) - d)
		if tried[old] {
			continue
		}
		tried[old] = true
		if f := p.tryReuse(entry, old); f != nil {
			return f, true
		}
	}
	return nil, false
}

// tryReuse validates the old function at oldEntry against the new binary at
// newEntry and, on success, returns the replayed function with bookkeeping
// recorded. Any mismatch returns nil and costs nothing but the scan.
func (p *ReusePlan) tryReuse(newEntry, oldEntry uint32) *Function {
	oldF, newInstrs, raw, ok := p.validate(newEntry, oldEntry)
	if !ok {
		return nil
	}
	f := p.relift(oldF, newEntry, int64(newEntry)-int64(oldEntry), newInstrs)
	if f == nil {
		return nil
	}
	p.record(oldF, newEntry, newInstrs, raw)
	return f
}

// validate checks that every instruction of the old function re-validates
// against the new binary at the shifted address; on success it returns the
// new instructions in the old flat block order and whether the function is
// raw-identical (zero shift, equal raw instructions).
func (p *ReusePlan) validate(newEntry, oldEntry uint32) (oldF *Function, newInstrs []isa.Instr, raw, ok bool) {
	oldF, found := p.oldModel.Funcs[oldEntry]
	if !found || oldF.ImportStub || len(oldF.DynJumps) > 0 {
		return nil, nil, false, false
	}
	nb := p.newBin
	if !nb.Text.Contains(newEntry) || (newEntry-nb.Text.Addr)%isa.Width != 0 {
		return nil, nil, false, false
	}
	if _, stub := nb.ImportAtStub(newEntry); stub {
		return nil, nil, false, false
	}
	delta := int64(newEntry) - int64(oldEntry)

	total := 0
	for _, b := range oldF.Blocks {
		total += len(b.Instrs)
	}
	newInstrs = make([]isa.Instr, 0, total)
	raw = delta == 0
	for _, ba := range oldF.Order {
		ob := oldF.Blocks[ba]
		for i, oin := range ob.Instrs {
			oldAddr := ob.Start + uint32(i*isa.Width)
			nin, err := nb.InstrAt(uint32(int64(oldAddr) + delta))
			if err != nil {
				return nil, nil, false, false
			}
			if nin.Op != oin.Op || nin.Rd != oin.Rd || nin.Rs1 != oin.Rs1 || nin.Rs2 != oin.Rs2 {
				return nil, nil, false, false
			}
			switch {
			case oin.Op == isa.OpJr:
				return nil, nil, false, false
			case oin.IsBranch() || oin.Op == isa.OpJmp:
				// Control-flow immediates must be exactly the old target
				// shifted; every other immediate (calls, loads, constants)
				// is taken from the new bytes.
				if uint32(nin.Imm) != uint32(int64(uint32(oin.Imm))+delta) {
					return nil, nil, false, false
				}
			}
			if nin != oin {
				raw = false
			}
			newInstrs = append(newInstrs, nin)
		}
	}
	return oldF, newInstrs, raw, true
}

// record books a successful validation: the function map, raw-identity, the
// reuse counter, and hint propagation — the callee of each old direct call
// is the natural candidate for the callee of the matching new call.
func (p *ReusePlan) record(oldF *Function, newEntry uint32, newInstrs []isa.Instr, raw bool) {
	p.FuncMap[newEntry] = oldF.Entry
	if raw {
		p.rawEq[newEntry] = true
	}
	p.Reused++
	k := 0
	for _, ba := range oldF.Order {
		for _, oin := range oldF.Blocks[ba].Instrs {
			nin := newInstrs[k]
			k++
			if oin.Op != isa.OpCall {
				continue
			}
			nt := uint32(nin.Imm)
			if _, seen := p.hints[nt]; !seen {
				p.hints[nt] = uint32(oin.Imm)
			}
		}
	}
}

// Align populates the plan's bookkeeping against an already built model of
// the new binary without relifting anything: every custom function is
// validated against its old-version candidates exactly as a guided Build
// consults Source. Loads that get the new model whole from the cache use
// this, so downstream alignment and reuse accounting are independent of
// cache state. Functions whose recovery involved computed jumps are skipped,
// mirroring the guided build.
func (p *ReusePlan) Align(newModel *Model) {
	for _, f := range newModel.FuncsInOrder() {
		if f.ImportStub || len(f.JumpTables) > 0 || len(f.DynJumps) > 0 {
			continue
		}
		entry := f.Entry
		if _, done := p.FuncMap[entry]; done {
			continue
		}
		tried := map[uint32]bool{}
		if old, ok := p.hints[entry]; ok {
			tried[old] = true
			if p.alignOne(entry, old) {
				continue
			}
		}
		for _, d := range p.deltas {
			old := uint32(int64(entry) - d)
			if tried[old] {
				continue
			}
			tried[old] = true
			if p.alignOne(entry, old) {
				break
			}
		}
	}
}

func (p *ReusePlan) alignOne(newEntry, oldEntry uint32) bool {
	oldF, newInstrs, raw, ok := p.validate(newEntry, oldEntry)
	if !ok {
		return false
	}
	p.record(oldF, newEntry, newInstrs, raw)
	return true
}

// relift replays the old function's recovery over the new binary: old block
// structure, new instruction bytes, a fresh lifter fed in flat ascending
// address order — the exact order a cold buildFunction uses, so temporaries
// number identically and the result is deep-equal to a cold build.
func (p *ReusePlan) relift(oldF *Function, newEntry uint32, delta int64, newInstrs []isa.Instr) *Function {
	nb := p.newBin
	f := &Function{Entry: newEntry, Blocks: map[uint32]*BasicBlock{}}
	if name, ok := nb.FuncName(newEntry); ok {
		f.Name = name
	} else {
		f.Name = "sub_" + strconv.FormatUint(uint64(newEntry), 16)
	}
	lifter := ir.NewLifter()
	lifter.Reserve(len(newInstrs))
	k := 0
	for _, ba := range oldF.Order {
		ob := oldF.Blocks[ba]
		newStart := uint32(int64(ob.Start) + delta)
		blk := &BasicBlock{Start: newStart}
		for i := range ob.Instrs {
			nin := newInstrs[k]
			k++
			a := newStart + uint32(i*isa.Width)
			irb, err := lifter.Lift(a, nin)
			if err != nil {
				return nil
			}
			blk.Instrs = append(blk.Instrs, nin)
			blk.IR = append(blk.IR, irb)
			if nin.IsCall() {
				cs := CallSite{Caller: newEntry, Addr: a, Block: newStart}
				if nin.Op == isa.OpCall {
					cs.Target = uint32(nin.Imm)
					if name, ok := stubName(nb, cs.Target); ok {
						cs.ImportName = name
					}
				} else {
					cs.Indirect = true
				}
				f.Calls = append(f.Calls, cs)
			}
		}
		for _, s := range ob.Succs {
			blk.Succs = append(blk.Succs, uint32(int64(s)+delta))
		}
		f.Blocks[newStart] = blk
		f.Order = append(f.Order, newStart)
	}
	slices.Sort(f.Order)
	f.Loops = findLoops(f)
	f.Params = estimateParams(f)
	return f
}

// Finalize computes the vector-reuse tiers over the finished new model. Both
// tiers require the data sections to be unchanged, because string features
// read rodata through call-site constants.
func (p *ReusePlan) Finalize(newModel *Model) {
	p.Total = 0
	for _, f := range newModel.Funcs {
		if !f.ImportStub {
			p.Total++
		}
	}
	dataOK := sectionEqual(p.oldBin.Rodata, p.newBin.Rodata) &&
		sectionEqual(p.oldBin.Data, p.newBin.Data) &&
		p.oldBin.BssAddr == p.newBin.BssAddr &&
		p.oldBin.BssSize == p.newBin.BssSize
	if !dataOK {
		return
	}
	for entry := range p.rawEq {
		if p.vectorSafe(entry, newModel) {
			p.BFVSafe[entry] = true
		}
	}
	p.AnchorsSafe = p.anchorProfileUnchanged(newModel)
}

// RawIdentical reports whether the function at entry was reused fully
// unchanged in place (zero shift, identical raw instructions).
func (p *ReusePlan) RawIdentical(entry uint32) bool { return p.rawEq[entry] }

type reuseSite struct {
	caller, addr uint32
}

// vectorSafe decides whether the feature vector of a raw-identical reused
// function is guaranteed equal to its old version's: the post-resolution
// callee-name profile must match site for site, and every caller must itself
// be raw-identical with the same caller-site multiset (caller bodies feed the
// call-site string features).
func (p *ReusePlan) vectorSafe(entry uint32, newModel *Model) bool {
	newF, ok := newModel.Funcs[entry]
	if !ok {
		return false
	}
	oldF, ok := p.oldModel.Funcs[entry]
	if !ok {
		return false
	}
	if len(newF.Calls) != len(oldF.Calls) {
		return false
	}
	for i := range newF.Calls {
		ncs, ocs := &newF.Calls[i], &oldF.Calls[i]
		if ncs.Addr != ocs.Addr || ncs.Indirect != ocs.Indirect {
			return false
		}
		if reuseCalleeName(p.newBin, ncs) != reuseCalleeName(p.oldBin, ocs) {
			return false
		}
	}
	nc, oc := newModel.Callers[entry], p.oldModel.Callers[entry]
	if len(nc) != len(oc) {
		return false
	}
	ns := make([]reuseSite, len(nc))
	for i, cs := range nc {
		if !p.rawEq[cs.Caller] {
			return false
		}
		ns[i] = reuseSite{cs.Caller, cs.Addr}
	}
	os := make([]reuseSite, len(oc))
	for i, cs := range oc {
		os[i] = reuseSite{cs.Caller, cs.Addr}
	}
	sortReuseSites(ns)
	sortReuseSites(os)
	return slices.Equal(ns, os)
}

// anchorProfileUnchanged compares the multiset of import call sites
// (import name, caller, site address) between the two models and requires
// every calling function to be raw-identical: under that condition anchor
// feature extraction reads exactly the same instructions, names and strings
// in both versions.
func (p *ReusePlan) anchorProfileUnchanged(newModel *Model) bool {
	type importSite struct {
		name         string
		caller, addr uint32
	}
	collect := func(m *Model) []importSite {
		var out []importSite
		for _, f := range m.FuncsInOrder() {
			for _, cs := range f.Calls {
				if cs.ImportName != "" {
					out = append(out, importSite{cs.ImportName, cs.Caller, cs.Addr})
				}
			}
		}
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.name != b.name {
				return a.name < b.name
			}
			if a.caller != b.caller {
				return a.caller < b.caller
			}
			return a.addr < b.addr
		})
		return out
	}
	ns, os := collect(newModel), collect(p.oldModel)
	if !slices.Equal(ns, os) {
		return false
	}
	for _, s := range ns {
		if !p.rawEq[s.caller] {
			return false
		}
	}
	return true
}

func sortReuseSites(s []reuseSite) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].caller != s[j].caller {
			return s[i].caller < s[j].caller
		}
		return s[i].addr < s[j].addr
	})
}

func reuseCalleeName(bin *binimg.Binary, cs *CallSite) string {
	if cs.ImportName != "" {
		return cs.ImportName
	}
	if cs.Target != 0 {
		if name, ok := bin.ExportAt(cs.Target); ok {
			return name
		}
	}
	return ""
}

func sectionEqual(a, b binimg.Section) bool {
	return a.Addr == b.Addr && bytes.Equal(a.Data, b.Data)
}
