package cfg

import (
	"encoding/binary"
	"fmt"
	"slices"
	"strconv"
	"sync/atomic"

	"fits/internal/binimg"
	"fits/internal/ir"
	"fits/internal/isa"
)

// IndirectResolver resolves the possible targets of an indirect call site.
// The ucse package provides the production implementation.
type IndirectResolver func(bin *binimg.Binary, f *Function, site CallSite) []uint32

// JumpTableResolver resolves a computed jump's possible targets (switch
// jump tables). The ucse package provides the production implementation.
type JumpTableResolver func(bin *binimg.Binary, f *Function, addr uint32) []uint32

// Options configures model construction.
type Options struct {
	// Resolver handles indirect call sites; nil leaves them unresolved.
	Resolver IndirectResolver
	// JumpResolver handles computed jumps; nil leaves switch-case blocks
	// unrecovered.
	JumpResolver JumpTableResolver
	// SkipPrologueScan disables the linear sweep for unreached functions.
	SkipPrologueScan bool
	// MaxFuncs bounds discovery as a runaway guard.
	MaxFuncs int
	// FuncSource, when set, is consulted before recovering a function from
	// scratch; a hit installs the supplied function verbatim. A ReusePlan
	// provides the production implementation for incremental rebuilds. The
	// source is bypassed for functions with resolved jump tables, whose
	// recovery depends on resolver state the source cannot reproduce.
	FuncSource func(entry uint32) (*Function, bool)
	// Clock and Stats, when both set, split the build's cost between
	// function recovery/lifting and the rest of model construction
	// (resolution passes, call-graph assembly). AllocCount additionally
	// attributes heap-object counts the same way. This package never reads a
	// clock itself — impure callers inject one (the nondet invariant).
	Clock      func() int64
	AllocCount func() int64
	Stats      *BuildStats
}

// BuildStats accumulates where Build's time and allocations go: the lift
// counters cover buildFunction (instruction recovery and IR lifting), the
// total counters the whole Build call. Fields are atomic so one BuildStats
// may be shared by concurrent builds; a corpus's loader aggregates them into
// per-stage timers.
type BuildStats struct {
	LiftNanos   atomic.Int64
	LiftAllocs  atomic.Int64
	TotalNanos  atomic.Int64
	TotalAllocs atomic.Int64
}

const defaultMaxFuncs = 1 << 16

// Build recovers the whole-binary model: functions, CFGs, loops, parameter
// estimates, and the (reverse) call graph, iterating discovery and indirect
// resolution to a fixed point.
func Build(bin *binimg.Binary, opts Options) (*Model, error) {
	if opts.MaxFuncs == 0 {
		opts.MaxFuncs = defaultMaxFuncs
	}
	instrumented := opts.Clock != nil && opts.Stats != nil
	if instrumented {
		t0 := opts.Clock()
		var a0 int64
		if opts.AllocCount != nil {
			a0 = opts.AllocCount()
		}
		defer func() {
			opts.Stats.TotalNanos.Add(opts.Clock() - t0)
			if opts.AllocCount != nil {
				opts.Stats.TotalAllocs.Add(opts.AllocCount() - a0)
			}
		}()
	}
	// lift wraps buildFunction with the per-function cost attribution.
	lift := func(entry uint32, extraJumps map[uint32][]uint32) (*Function, error) {
		if !instrumented {
			return buildFunction(bin, entry, extraJumps)
		}
		t0 := opts.Clock()
		var a0 int64
		if opts.AllocCount != nil {
			a0 = opts.AllocCount()
		}
		f, err := buildFunction(bin, entry, extraJumps)
		opts.Stats.LiftNanos.Add(opts.Clock() - t0)
		if opts.AllocCount != nil {
			opts.Stats.LiftAllocs.Add(opts.AllocCount() - a0)
		}
		return f, err
	}
	m := &Model{Bin: bin, Funcs: map[uint32]*Function{}, Callers: map[uint32][]CallSite{}}

	// Resolved jump-table targets per function entry, applied on (re)build.
	jumpTables := map[uint32]map[uint32][]uint32{}
	worklist := seeds(bin)
	process := func() error {
		for len(worklist) > 0 {
			entry := worklist[len(worklist)-1]
			worklist = worklist[:len(worklist)-1]
			if _, done := m.Funcs[entry]; done {
				continue
			}
			if len(m.Funcs) >= opts.MaxFuncs {
				return fmt.Errorf("cfg: %s: function limit %d exceeded", bin.Name, opts.MaxFuncs)
			}
			if opts.FuncSource != nil && jumpTables[entry] == nil {
				if f, ok := opts.FuncSource(entry); ok {
					m.Funcs[entry] = f
					for _, cs := range f.Calls {
						if cs.Target != 0 {
							worklist = append(worklist, cs.Target)
						}
					}
					continue
				}
			}
			f, err := lift(entry, jumpTables[entry])
			if err != nil {
				// Unparseable seed (e.g. a data word that happened to look
				// like a code pointer): skip it, as real tools do.
				continue
			}
			m.Funcs[entry] = f
			for _, cs := range f.Calls {
				if cs.Target != 0 {
					worklist = append(worklist, cs.Target)
				}
			}
		}
		return nil
	}

	// resolveJumpTables runs one pass over unresolved computed jumps; newly
	// resolved functions are rebuilt with their switch-case blocks. Functions
	// are visited in ascending entry order and rebuilds are deferred past the
	// sweep: clipJumpTargets bounds each table by the neighboring function
	// entries, so resolving against a mid-sweep mutated function set would
	// make recovered CFGs depend on map iteration order.
	resolveJumpTables := func() bool {
		var rebuild []uint32
		for _, f := range m.FuncsInOrder() {
			entry := f.Entry
			resolvedAny := false
			for _, addr := range f.DynJumps {
				if _, done := f.JumpTables[addr]; done {
					continue
				}
				targets := opts.JumpResolver(bin, f, addr)
				targets = clipJumpTargets(m, f, targets)
				if len(targets) == 0 {
					continue
				}
				if jumpTables[entry] == nil {
					jumpTables[entry] = map[uint32][]uint32{}
				}
				jumpTables[entry][addr] = targets
				resolvedAny = true
			}
			if resolvedAny {
				rebuild = append(rebuild, entry)
			}
		}
		for _, entry := range rebuild {
			delete(m.Funcs, entry)
			worklist = append(worklist, entry)
		}
		return len(rebuild) > 0
	}
	// resolveIndirect runs one resolution pass over every unresolved
	// indirect site, reporting whether anything changed.
	resolveIndirect := func() bool {
		changed := false
		for _, f := range m.FuncsInOrder() {
			var extras []CallSite
			for i := range f.Calls {
				cs := &f.Calls[i]
				if !cs.Indirect || cs.Target != 0 {
					continue
				}
				targets := opts.Resolver(bin, f, *cs)
				if len(targets) == 0 {
					continue
				}
				slices.Sort(targets)
				// First target fills the site; extra targets become
				// additional synthetic sites at the same instruction.
				cs.Target = targets[0]
				if name, ok := stubName(bin, targets[0]); ok {
					cs.ImportName = name
				}
				for _, t := range targets[1:] {
					extra := *cs
					extra.Target = t
					if name, ok := stubName(bin, t); ok {
						extra.ImportName = name
					} else {
						extra.ImportName = ""
					}
					extras = append(extras, extra)
				}
				for _, t := range targets {
					worklist = append(worklist, t)
				}
				changed = true
			}
			f.Calls = append(f.Calls, extras...)
		}
		return changed
	}

	// prologueScan seeds functions for unclaimed code that starts with the
	// standard prologue, reporting whether any seed was added.
	prologueScan := func() bool {
		covered := map[uint32]bool{}
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for a := b.Start; a < b.End(); a += isa.Width {
					covered[a] = true
				}
			}
		}
		added := false
		text := bin.Text
		for off := 0; off+isa.Width <= len(text.Data); off += isa.Width {
			addr := text.Addr + uint32(off)
			if covered[addr] {
				continue
			}
			if _, claimed := m.Funcs[addr]; claimed {
				continue
			}
			in, err := bin.Arch.Decode(text.Data[off:])
			if err != nil {
				continue
			}
			if in.Op == isa.OpPush && in.Rs1 == isa.LR {
				worklist = append(worklist, addr)
				added = true
			}
		}
		return added
	}

	// Iterate discovery, indirect resolution and the prologue scan to a
	// fixed point: resolved targets expose new functions, newly scanned
	// functions contain new indirect sites.
	for round := 0; ; round++ {
		if err := process(); err != nil {
			return nil, err
		}
		changed := false
		if opts.Resolver != nil && resolveIndirect() {
			changed = true
		}
		if opts.JumpResolver != nil && resolveJumpTables() {
			changed = true
		}
		if !opts.SkipPrologueScan && prologueScan() {
			changed = true
		}
		if !changed || round > 16 {
			break
		}
	}

	// Reverse call graph, restricted to successfully recovered callees
	// (a call target that failed to parse is a rejected seed, not a node).
	for _, f := range m.FuncsInOrder() {
		for _, cs := range f.Calls {
			if cs.Target == 0 {
				continue
			}
			if _, ok := m.Funcs[cs.Target]; ok {
				m.Callers[cs.Target] = append(m.Callers[cs.Target], cs)
			}
		}
	}
	return m, nil
}

// clipJumpTargets keeps only targets inside the jumping function's extent:
// past its entry and before the next known function. A scanned table can
// over-read into a neighboring function's table; layout bounds discard the
// overshoot.
func clipJumpTargets(m *Model, f *Function, targets []uint32) []uint32 {
	bound := f.Entry + uint32(len(m.Bin.Text.Data)) // text end fallback
	for entry := range m.Funcs {
		if entry > f.Entry && entry < bound {
			bound = entry
		}
	}
	var out []uint32
	for _, t := range targets {
		if t > f.Entry && t < bound {
			out = append(out, t)
		}
	}
	return out
}

// seeds returns initial function entries: program entry, exports, and
// instruction-aligned text pointers found in the data section.
func seeds(bin *binimg.Binary) []uint32 {
	var out []uint32
	if bin.Text.Contains(bin.Entry) {
		out = append(out, bin.Entry)
	}
	for _, e := range bin.Exports {
		if bin.Text.Contains(e.Addr) {
			out = append(out, e.Addr)
		}
	}
	d := bin.Data.Data
	for off := 0; off+isa.WordSize <= len(d); off += isa.WordSize {
		v := binary.LittleEndian.Uint32(d[off:])
		if bin.Text.Contains(v) && (v-bin.Text.Addr)%isa.Width == 0 {
			out = append(out, v)
		}
	}
	return out
}

func stubName(bin *binimg.Binary, addr uint32) (string, bool) {
	im, ok := bin.ImportAtStub(addr)
	if !ok {
		return "", false
	}
	return im.Name, true
}

// buildFunction recovers one function by recursive descent from entry.
// extraJumps supplies resolved targets for computed jumps, letting
// switch-case blocks join the CFG on rebuild.
func buildFunction(bin *binimg.Binary, entry uint32, extraJumps map[uint32][]uint32) (*Function, error) {
	if !bin.Text.Contains(entry) || (entry-bin.Text.Addr)%isa.Width != 0 {
		return nil, fmt.Errorf("cfg: bad entry 0x%x", entry)
	}

	// Import stubs are single-trampoline functions.
	if im, ok := bin.ImportAtStub(entry); ok {
		in, err := bin.InstrAt(entry)
		if err != nil {
			return nil, err
		}
		lifter := ir.NewLifter()
		irb, err := lifter.Lift(entry, in)
		if err != nil {
			return nil, err
		}
		blk := &BasicBlock{Start: entry, Instrs: []isa.Instr{in}, IR: []*ir.Block{irb}}
		return &Function{
			Entry:      entry,
			Name:       im.Name + "@plt",
			Blocks:     map[uint32]*BasicBlock{entry: blk},
			Order:      []uint32{entry},
			ImportStub: true,
			ImportName: im.Name,
		}, nil
	}

	// Pass 1: reachable instructions and leaders.
	reach := make(map[uint32]isa.Instr, 64)
	leaders := make(map[uint32]bool, 8)
	leaders[entry] = true
	work := []uint32{entry}
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		for {
			if _, seen := reach[addr]; seen {
				break
			}
			in, err := bin.InstrAt(addr)
			if err != nil {
				return nil, fmt.Errorf("cfg: at 0x%x: %w", addr, err)
			}
			reach[addr] = in
			next := addr + isa.Width
			if in.IsBranch() {
				t := uint32(in.Imm)
				leaders[t] = true
				leaders[next] = true
				work = append(work, t)
				addr = next
				continue
			}
			switch in.Op {
			case isa.OpJmp:
				t := uint32(in.Imm)
				leaders[t] = true
				work = append(work, t)
			case isa.OpJr:
				for _, t := range extraJumps[addr] {
					leaders[t] = true
					work = append(work, t)
				}
			case isa.OpRet, isa.OpTramp:
				// terminal for this path
			default:
				addr = next
				continue
			}
			break
		}
	}

	// Pass 2: form blocks from leaders.
	addrs := make([]uint32, 0, len(reach))
	for a := range reach {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)

	f := &Function{
		Entry:  entry,
		Blocks: make(map[uint32]*BasicBlock, len(leaders)),
	}
	if name, ok := bin.FuncName(entry); ok {
		f.Name = name
	} else {
		f.Name = "sub_" + strconv.FormatUint(uint64(entry), 16)
	}

	// Count block boundaries up front so the block array and the shared
	// instruction/IR backing arrays are allocated exactly once; every block's
	// Instrs and IR are then contiguous subslices of those arrays. The block
	// array is never appended to beyond its exact capacity, so *BasicBlock
	// pointers stay stable.
	nblocks := 0
	for i, a := range addrs {
		if i == 0 || leaders[a] || addrs[i-1]+isa.Width != a {
			nblocks++
			continue
		}
		if prev := reach[addrs[i-1]]; prev.EndsBlock() {
			nblocks++
		}
	}
	blockArr := make([]BasicBlock, 0, nblocks)
	instrArr := make([]isa.Instr, 0, len(addrs))
	irArr := make([]*ir.Block, 0, len(addrs))

	lifter := ir.NewLifter()
	lifter.Reserve(len(addrs))
	var cur *BasicBlock
	curStart := 0 // index into instrArr/irArr where cur's run begins
	flush := func() {
		if cur != nil {
			cur.Instrs = instrArr[curStart:len(instrArr):len(instrArr)]
			cur.IR = irArr[curStart:len(irArr):len(irArr)]
			f.Blocks[cur.Start] = cur
			cur = nil
		}
	}
	for i, a := range addrs {
		in := reach[a]
		if leaders[a] || cur == nil || (i > 0 && addrs[i-1]+isa.Width != a) {
			flush()
			blockArr = append(blockArr, BasicBlock{Start: a})
			cur = &blockArr[len(blockArr)-1]
			curStart = len(instrArr)
		}
		irb, err := lifter.Lift(a, in)
		if err != nil {
			return nil, err
		}
		instrArr = append(instrArr, in)
		irArr = append(irArr, irb)
		if in.IsCall() {
			cs := CallSite{Caller: entry, Addr: a, Block: cur.Start}
			if in.Op == isa.OpCall {
				cs.Target = uint32(in.Imm)
				if name, ok := stubName(bin, cs.Target); ok {
					cs.ImportName = name
				}
			} else {
				cs.Indirect = true
			}
			f.Calls = append(f.Calls, cs)
		}
		terminal := in.EndsBlock()
		nextIsLeader := i+1 < len(addrs) && (leaders[addrs[i+1]] || addrs[i+1] != a+isa.Width)
		if terminal || nextIsLeader {
			// Successors.
			next := a + isa.Width
			switch {
			case in.IsBranch():
				cur.Succs = append(cur.Succs, uint32(in.Imm))
				if _, ok := reach[next]; ok {
					cur.Succs = append(cur.Succs, next)
				}
			case in.Op == isa.OpJmp:
				cur.Succs = append(cur.Succs, uint32(in.Imm))
			case in.Op == isa.OpJr:
				cur.Succs = append(cur.Succs, extraJumps[a]...)
			case in.Op == isa.OpRet, in.Op == isa.OpTramp:
				// no static successors
			default:
				if _, ok := reach[next]; ok {
					cur.Succs = append(cur.Succs, next)
				}
			}
			flush()
		}
	}
	flush()

	f.Order = make([]uint32, 0, len(f.Blocks))
	for a := range f.Blocks {
		f.Order = append(f.Order, a)
	}
	slices.Sort(f.Order)

	// Record computed jumps and any resolutions applied. JumpTables stays
	// nil (all reads are nil-safe) unless a resolution actually landed:
	// computed jumps are rare and most functions have none.
	for _, ba := range f.Order {
		b := f.Blocks[ba]
		for i, in := range b.Instrs {
			if in.Op == isa.OpJr {
				addr := b.Start + uint32(i*isa.Width)
				f.DynJumps = append(f.DynJumps, addr)
				if ts := extraJumps[addr]; len(ts) > 0 {
					if f.JumpTables == nil {
						f.JumpTables = map[uint32][]uint32{}
					}
					f.JumpTables[addr] = append([]uint32(nil), ts...)
				}
			}
		}
	}
	slices.Sort(f.DynJumps)

	f.Loops = findLoops(f)
	f.Params = estimateParams(f)
	return f, nil
}

// estimateParams counts argument registers (r0..r3) read before written,
// scanning blocks in address order — the standard stripped-binary heuristic.
func estimateParams(f *Function) int {
	// Only r0..r3 matter, so two tiny arrays beat two heap maps on a path
	// that runs once per recovered function.
	var written, used [4]bool
	var scanExpr func(e ir.Expr)
	scanExpr = func(e ir.Expr) {
		switch e := e.(type) {
		case *ir.Get:
			if e.R < 4 && !written[e.R] {
				used[e.R] = true
			}
		case *ir.Load:
			scanExpr(e.Addr)
		case *ir.Binop:
			scanExpr(e.L)
			scanExpr(e.R)
		}
	}
	for _, ba := range f.Order {
		for _, irb := range f.Blocks[ba].IR {
			for _, s := range irb.Stmts {
				switch s := s.(type) {
				case *ir.WrTmp:
					scanExpr(s.E)
				case *ir.Put:
					scanExpr(s.E)
					if s.R < 4 {
						written[s.R] = true
					}
				case *ir.Store:
					scanExpr(s.Addr)
					scanExpr(s.Val)
				case *ir.Exit:
					scanExpr(s.Cond)
				case *ir.Call:
					// Calls clobber r0..r3; stop attributing later reads.
					for r := isa.Reg(0); r < 4; r++ {
						written[r] = true
					}
				}
			}
		}
	}
	// Parameters are passed in order, so the count is the highest used
	// argument register plus one.
	n := 0
	for r := isa.Reg(0); r < 4; r++ {
		if used[r] {
			n = int(r) + 1
		}
	}
	return n
}
