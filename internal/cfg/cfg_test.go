package cfg

import (
	"strings"
	"testing"

	"fits/internal/binimg"
	"fits/internal/isa"
	"fits/internal/minic"
)

func link(t *testing.T, p *minic.Program, arch isa.Arch) *binimg.Binary {
	t.Helper()
	bin, err := minic.Link(p, arch, nil)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func build(t *testing.T, bin *binimg.Binary) *Model {
	t.Helper()
	m, err := Build(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func funcByName(t *testing.T, m *Model, name string) *Function {
	t.Helper()
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("function %q not found; have %d funcs", name, len(m.Funcs))
	return nil
}

func TestStraightLineFunction(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{
		Name: "main", NParams: 2,
		Body: []minic.Stmt{minic.Return{E: minic.Add(minic.Var("p0"), minic.Var("p1"))}},
	}}}
	m := build(t, link(t, p, isa.ArchARM))
	f := funcByName(t, m, "main")
	if f.NumBlocks() != 1 {
		t.Errorf("blocks = %d, want 1", f.NumBlocks())
	}
	if f.HasLoop() {
		t.Error("unexpected loop")
	}
	if f.Params != 2 {
		t.Errorf("params = %d, want 2", f.Params)
	}
}

func TestIfElseShape(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{
		Name: "main", NParams: 1,
		Body: []minic.Stmt{
			minic.If{
				Cond: minic.Cond{Op: minic.Gt, L: minic.Var("p0"), R: minic.Int(0)},
				Then: []minic.Stmt{minic.Return{E: minic.Int(1)}},
				Else: []minic.Stmt{minic.Return{E: minic.Int(2)}},
			},
		},
	}}}
	m := build(t, link(t, p, isa.ArchARM))
	f := funcByName(t, m, "main")
	if f.NumBlocks() < 3 {
		t.Errorf("blocks = %d, want >= 3", f.NumBlocks())
	}
	if f.HasLoop() {
		t.Error("unexpected loop in if/else")
	}
	// The entry block must end with a conditional branch having two succs.
	entry := f.Blocks[f.Entry]
	if entry == nil {
		t.Fatal("no entry block")
	}
	var condBlock *BasicBlock
	for _, b := range f.BlocksInOrder() {
		if len(b.Succs) == 2 {
			condBlock = b
		}
	}
	if condBlock == nil {
		t.Error("no two-successor block for the branch")
	}
}

func TestWhileLoopDetected(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{
		Name: "main", NParams: 1,
		Body: []minic.Stmt{
			minic.Let{Name: "i", E: minic.Int(0)},
			minic.While{
				Cond: minic.Cond{Op: minic.Lt, L: minic.Var("i"), R: minic.Var("p0")},
				Body: []minic.Stmt{minic.Assign{Name: "i", E: minic.Add(minic.Var("i"), minic.Int(1))}},
			},
			minic.Return{E: minic.Var("i")},
		},
	}}}
	m := build(t, link(t, p, isa.ArchARM))
	f := funcByName(t, m, "main")
	if !f.HasLoop() {
		t.Fatal("loop not detected")
	}
	lp := f.Loops[0]
	if !lp.Body[lp.Head] {
		t.Error("loop body must contain head")
	}
	if len(lp.Body) < 2 {
		t.Errorf("loop body size = %d, want >= 2", len(lp.Body))
	}
}

func TestNestedLoopsCount(t *testing.T) {
	inner := minic.While{
		Cond: minic.Cond{Op: minic.Lt, L: minic.Var("j"), R: minic.Int(10)},
		Body: []minic.Stmt{minic.Assign{Name: "j", E: minic.Add(minic.Var("j"), minic.Int(1))}},
	}
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{
		Name: "main",
		Body: []minic.Stmt{
			minic.Let{Name: "i", E: minic.Int(0)},
			minic.Let{Name: "j", E: minic.Int(0)},
			minic.While{
				Cond: minic.Cond{Op: minic.Lt, L: minic.Var("i"), R: minic.Int(10)},
				Body: []minic.Stmt{
					minic.Assign{Name: "j", E: minic.Int(0)},
					inner,
					minic.Assign{Name: "i", E: minic.Add(minic.Var("i"), minic.Int(1))},
				},
			},
			minic.Return{E: minic.Int(0)},
		},
	}}}
	m := build(t, link(t, p, isa.ArchARM))
	f := funcByName(t, m, "main")
	if len(f.Loops) != 2 {
		t.Errorf("loops = %d, want 2", len(f.Loops))
	}
}

func TestCallGraph(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{
		{Name: "leaf", NParams: 1, Body: []minic.Stmt{minic.Return{E: minic.Var("p0")}}},
		{Name: "mid", NParams: 1, Body: []minic.Stmt{
			minic.Return{E: minic.Call{Name: "leaf", Args: []minic.Expr{minic.Var("p0")}}},
		}},
		{Name: "main", Body: []minic.Stmt{
			minic.ExprStmt{E: minic.Call{Name: "mid", Args: []minic.Expr{minic.Int(1)}}},
			minic.ExprStmt{E: minic.Call{Name: "leaf", Args: []minic.Expr{minic.Int(2)}}},
			minic.Return{E: minic.Int(0)},
		}},
	}}
	m := build(t, link(t, p, isa.ArchARM))
	leaf := funcByName(t, m, "leaf")
	mid := funcByName(t, m, "mid")
	if got := len(m.Callers[leaf.Entry]); got != 2 {
		t.Errorf("leaf callers = %d, want 2", got)
	}
	if got := len(m.Callers[mid.Entry]); got != 1 {
		t.Errorf("mid callers = %d, want 1", got)
	}
	main := funcByName(t, m, "main")
	callees := m.Callees(main)
	if len(callees) != 2 {
		t.Errorf("main callees = %v", callees)
	}
}

func TestImportStubsAndCallSiteNames(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{
		Name: "main",
		Body: []minic.Stmt{
			minic.ExprStmt{E: minic.Call{Name: "recv", Args: []minic.Expr{minic.Int(0)}}},
			minic.Return{E: minic.Int(0)},
		},
	}}}
	m := build(t, link(t, p, isa.ArchARM))
	main := funcByName(t, m, "main")
	var found bool
	for _, cs := range main.Calls {
		if cs.ImportName == "recv" {
			found = true
			stub, ok := m.FuncAt(cs.Target)
			if !ok || !stub.ImportStub || stub.ImportName != "recv" {
				t.Errorf("stub func = %+v", stub)
			}
		}
	}
	if !found {
		t.Error("no call site labelled recv")
	}
	// Custom functions must exclude stubs.
	for _, f := range m.CustomFuncs() {
		if f.ImportStub {
			t.Error("CustomFuncs returned a stub")
		}
	}
}

func TestPointerTableSeedsDiscovery(t *testing.T) {
	// handler is referenced only from a data-section table: recursive
	// descent alone would miss it without the data scan.
	p := &minic.Program{
		Name: "t",
		Globals: []*minic.Global{{
			Name: "tbl", Size: 4, Init: make([]byte, 4),
			Ptrs: []minic.PtrInit{{Off: 0, FuncName: "handler"}},
		}},
		Funcs: []*minic.Func{
			{Name: "main", Body: []minic.Stmt{minic.Return{E: minic.Int(0)}}},
			{Name: "handler", NParams: 1, Body: []minic.Stmt{minic.Return{E: minic.Var("p0")}}},
		},
	}
	m := build(t, link(t, p, isa.ArchARM))
	funcByName(t, m, "handler")
}

func TestPrologueScanFindsDeadCode(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{
		{Name: "main", Body: []minic.Stmt{minic.Return{E: minic.Int(0)}}},
		{Name: "orphan", NParams: 1, Body: []minic.Stmt{minic.Return{E: minic.Var("p0")}}},
	}}
	bin := link(t, p, isa.ArchARM)
	m := build(t, bin)
	funcByName(t, m, "orphan")

	m2, err := Build(bin, Options{SkipPrologueScan: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m2.Funcs {
		if f.Name == "orphan" {
			t.Error("orphan found despite disabled prologue scan")
		}
	}
}

func TestStrippedNames(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{
		{Name: "main", Body: []minic.Stmt{minic.Return{E: minic.Int(0)}}},
	}}
	bin := link(t, p, isa.ArchARM)
	bin.Strip()
	m := build(t, bin)
	f, ok := m.FuncAt(bin.Entry)
	if !ok {
		t.Fatal("entry function missing")
	}
	if !strings.HasPrefix(f.Name, "sub_") {
		t.Errorf("stripped name = %q", f.Name)
	}
}

func TestAllArchitectures(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{
		Name: "main", NParams: 1,
		Body: []minic.Stmt{
			minic.Let{Name: "i", E: minic.Int(0)},
			minic.While{
				Cond: minic.Cond{Op: minic.Lt, L: minic.Var("i"), R: minic.Var("p0")},
				Body: []minic.Stmt{minic.Assign{Name: "i", E: minic.Add(minic.Var("i"), minic.Int(1))}},
			},
			minic.Return{E: minic.Var("i")},
		},
	}}}
	for _, arch := range []isa.Arch{isa.ArchARM, isa.ArchAARCH, isa.ArchMIPS} {
		m := build(t, link(t, p, arch))
		f := funcByName(t, m, "main")
		if !f.HasLoop() || f.Params != 1 {
			t.Errorf("%v: loop=%v params=%d", arch, f.HasLoop(), f.Params)
		}
	}
}

func TestDominatorProperties(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{
		Name: "main", NParams: 2,
		Body: []minic.Stmt{
			minic.Let{Name: "r", E: minic.Int(0)},
			minic.If{
				Cond: minic.Cond{Op: minic.Gt, L: minic.Var("p0"), R: minic.Int(0)},
				Then: []minic.Stmt{minic.Assign{Name: "r", E: minic.Int(1)}},
				Else: []minic.Stmt{minic.Assign{Name: "r", E: minic.Int(2)}},
			},
			minic.While{
				Cond: minic.Cond{Op: minic.Lt, L: minic.Var("r"), R: minic.Var("p1")},
				Body: []minic.Stmt{minic.Assign{Name: "r", E: minic.Add(minic.Var("r"), minic.Int(1))}},
			},
			minic.Return{E: minic.Var("r")},
		},
	}}}
	m := build(t, link(t, p, isa.ArchARM))
	f := funcByName(t, m, "main")
	idom := Dominators(f)
	// Entry dominates every reachable block.
	for _, a := range f.Order {
		if _, ok := idom[a]; !ok {
			continue // unreachable
		}
		if !dominates(idom, f.Entry, a) {
			t.Errorf("entry does not dominate %#x", a)
		}
	}
	// idom of entry is itself.
	if idom[f.Entry] != f.Entry {
		t.Error("entry idom wrong")
	}
	// Every non-entry idom differs from the node itself.
	for n, d := range idom {
		if n != f.Entry && d == n {
			t.Errorf("self-idom at %#x", n)
		}
	}
}

func TestBlockEndAndSize(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{
		Name: "main", Body: []minic.Stmt{minic.Return{E: minic.Int(0)}},
	}}}
	m := build(t, link(t, p, isa.ArchARM))
	f := funcByName(t, m, "main")
	total := 0
	for _, b := range f.BlocksInOrder() {
		if b.End() != b.Start+uint32(len(b.Instrs)*isa.Width) {
			t.Error("End inconsistent")
		}
		total += len(b.Instrs) * isa.Width
	}
	if f.Size() != total {
		t.Errorf("Size = %d, want %d", f.Size(), total)
	}
}

func TestIndirectCallUnresolvedWithoutResolver(t *testing.T) {
	p := &minic.Program{
		Name: "t",
		Globals: []*minic.Global{{
			Name: "tbl", Size: 4, Init: make([]byte, 4),
			Ptrs: []minic.PtrInit{{Off: 0, FuncName: "h"}},
		}},
		Funcs: []*minic.Func{
			{Name: "h", NParams: 1, Body: []minic.Stmt{minic.Return{E: minic.Var("p0")}}},
			{Name: "main", Body: []minic.Stmt{
				minic.Return{E: minic.CallInd{Table: "tbl", Index: minic.Int(0), Args: []minic.Expr{minic.Int(3)}}},
			}},
		},
	}
	m := build(t, link(t, p, isa.ArchARM))
	main := funcByName(t, m, "main")
	var indirect *CallSite
	for i := range main.Calls {
		if main.Calls[i].Indirect {
			indirect = &main.Calls[i]
		}
	}
	if indirect == nil {
		t.Fatal("no indirect call site recorded")
	}
	if indirect.Target != 0 {
		t.Error("indirect site resolved without resolver")
	}
}

func TestResolverIntegration(t *testing.T) {
	p := &minic.Program{
		Name: "t",
		Globals: []*minic.Global{{
			Name: "tbl", Size: 4, Init: make([]byte, 4),
			Ptrs: []minic.PtrInit{{Off: 0, FuncName: "h"}},
		}},
		Funcs: []*minic.Func{
			{Name: "h", NParams: 1, Body: []minic.Stmt{minic.Return{E: minic.Var("p0")}}},
			{Name: "main", Body: []minic.Stmt{
				minic.Return{E: minic.CallInd{Table: "tbl", Index: minic.Int(0), Args: []minic.Expr{minic.Int(3)}}},
			}},
		},
	}
	bin := link(t, p, isa.ArchARM)
	var hAddr uint32
	for _, f := range bin.Funcs {
		if f.Name == "h" {
			hAddr = f.Addr
		}
	}
	resolver := func(b *binimg.Binary, f *Function, site CallSite) []uint32 {
		return []uint32{hAddr}
	}
	m, err := Build(bin, Options{Resolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	main := funcByName(t, m, "main")
	var resolved bool
	for _, cs := range main.Calls {
		if cs.Indirect && cs.Target == hAddr {
			resolved = true
		}
	}
	if !resolved {
		t.Error("indirect call not resolved")
	}
	h := funcByName(t, m, "h")
	if len(m.Callers[h.Entry]) != 1 {
		t.Errorf("h callers = %d", len(m.Callers[h.Entry]))
	}
}

func TestSwitchJumpTableRecovery(t *testing.T) {
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "out", Size: 16}},
		Funcs: []*minic.Func{{
			Name: "router", NParams: 1,
			Body: []minic.Stmt{
				minic.Switch{
					E: minic.Var("p0"),
					Cases: [][]minic.Stmt{
						{minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("out"), Val: minic.Int(1)}},
						{minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("out"), Val: minic.Int(2)}},
						{minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("out"), Val: minic.Int(3)}},
					},
					Default: []minic.Stmt{minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("out"), Val: minic.Int(9)}},
				},
				minic.Return{E: minic.Int(0)},
			},
		}},
	}
	bin := link(t, p, isa.ArchARM)

	// Without a jump resolver, the case blocks stay unrecovered.
	plain, err := Build(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pf := funcByName(t, plain, "router")
	if len(pf.DynJumps) != 1 {
		t.Fatalf("dyn jumps = %d, want 1", len(pf.DynJumps))
	}
	if len(pf.JumpTables) != 0 {
		t.Error("jump table resolved without resolver")
	}

	// With a resolver that mimics table reading, the cases join the CFG.
	resolver := func(b *binimg.Binary, f *Function, addr uint32) []uint32 {
		// Read four consecutive rodata words starting at the table; the
		// linker placed the case addresses there.
		var out []uint32
		base := b.Rodata.Addr
		for off := uint32(0); off+4 <= uint32(len(b.Rodata.Data)); off += 4 {
			if w, ok := b.WordAt(base + off); ok && b.Text.Contains(w) && (w-b.Text.Addr)%isa.Width == 0 {
				out = append(out, w)
			}
		}
		return out
	}
	resolved, err := Build(bin, Options{JumpResolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	rf := funcByName(t, resolved, "router")
	if len(rf.JumpTables) != 1 {
		t.Fatalf("jump tables = %d, want 1", len(rf.JumpTables))
	}
	for _, ts := range rf.JumpTables {
		if len(ts) != 3 {
			t.Errorf("targets = %d, want 3 (%v)", len(ts), ts)
		}
	}
	if rf.NumBlocks() <= pf.NumBlocks() {
		t.Errorf("resolved blocks %d should exceed unresolved %d", rf.NumBlocks(), pf.NumBlocks())
	}
	// The jr block must now have the case successors.
	var jrSuccs int
	for _, b := range rf.BlocksInOrder() {
		last := b.Instrs[len(b.Instrs)-1]
		if last.Op == isa.OpJr {
			jrSuccs = len(b.Succs)
		}
	}
	if jrSuccs != 3 {
		t.Errorf("jr successors = %d, want 3", jrSuccs)
	}
}
