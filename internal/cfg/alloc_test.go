package cfg

// Allocation guard for the incremental-rebuild fast path: when a reuse plan
// serves every function of an identical binary, Build must not re-lift
// anything, so the whole plan+build+finalize cycle stays within a small
// fixed allocation budget. A budget regression here means the cached-plan
// path started copying or re-deriving per-function state it used to reuse.

import (
	"testing"

	"fits/internal/isa"
)

func TestReusePlanBuildAllocBudget(t *testing.T) {
	bin := link(t, evoProg(5, false), isa.ArchARM)
	cold := build(t, bin)
	var failed bool
	allocs := testing.AllocsPerRun(10, func() {
		plan := NewReusePlan(bin, cold, bin)
		m, err := Build(bin, Options{FuncSource: plan.Source})
		if err != nil {
			failed = true
			return
		}
		plan.Finalize(m)
		if plan.Reused != plan.Total {
			failed = true
		}
	})
	if failed {
		t.Fatal("plan-guided rebuild failed or lifted functions it should reuse")
	}
	// Observed ~250 allocs per cycle (plan hashing dominates on a program
	// this small); 2x headroom absorbs runtime and toolchain drift while
	// still catching a per-function copy sneaking into the reuse path.
	const budget = 500
	if allocs > budget {
		t.Errorf("plan-guided rebuild allocated %.0f objects per run, budget %d", allocs, budget)
	}
}
