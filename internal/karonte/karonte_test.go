package karonte

import (
	"testing"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/isa"
	"fits/internal/loader"
	"fits/internal/minic"
	"fits/internal/synth"
	"fits/internal/ucse"
)

func buildBin(t *testing.T, p *minic.Program) (*binimg.Binary, *cfg.Model) {
	t.Helper()
	bin, err := minic.Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cfg.Build(bin, cfg.Options{Resolver: ucse.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	return bin, m
}

func entryOf(t *testing.T, bin *binimg.Binary, name string) uint32 {
	t.Helper()
	for _, f := range bin.Funcs {
		if f.Name == name {
			return f.Addr
		}
	}
	t.Fatalf("function %q not found", name)
	return 0
}

func TestDirectRegionFlow(t *testing.T) {
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "buf", Size: 64}, {Name: "out", Size: 64}},
		Funcs: []*minic.Func{{Name: "main", Body: []minic.Stmt{
			minic.ExprStmt{E: minic.Call{Name: "recv", Args: []minic.Expr{
				minic.Int(0), minic.GlobalRef("buf"), minic.Int(64), minic.Int(0)}}},
			minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
				minic.GlobalRef("out"), minic.GlobalRef("buf")}}},
			minic.Return{E: minic.Int(0)},
		}}},
	}
	bin, m := buildBin(t, p)
	alerts := New(bin, m, Options{UseCTS: true}).Run()
	if len(alerts) != 1 || alerts[0].Sink != "strcpy" {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestSymbolicHeapFlow(t *testing.T) {
	// The request buffer lives on the heap: the symbolic engine tracks the
	// pointer through the global slot where the static region engine
	// cannot.
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "ptr", Size: 4}, {Name: "out", Size: 64}},
		Funcs: []*minic.Func{{Name: "main", Body: []minic.Stmt{
			minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("ptr"),
				Val: minic.Call{Name: "malloc", Args: []minic.Expr{minic.Int(64)}}},
			minic.ExprStmt{E: minic.Call{Name: "recv", Args: []minic.Expr{
				minic.Int(0), minic.LoadW(minic.GlobalRef("ptr")), minic.Int(64), minic.Int(0)}}},
			minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
				minic.GlobalRef("out"), minic.LoadW(minic.GlobalRef("ptr"))}}},
			minic.Return{E: minic.Int(0)},
		}}},
	}
	bin, m := buildBin(t, p)
	alerts := New(bin, m, Options{UseCTS: true}).Run()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestCallDepthLimitLosesDeepFlows(t *testing.T) {
	// recv sits below a chain of wrappers; with a small call-depth budget
	// the source is never reached.
	deep := func(depth int) *minic.Program {
		p := &minic.Program{
			Name:    "t",
			Globals: []*minic.Global{{Name: "buf", Size: 64}, {Name: "out", Size: 64}},
		}
		p.Funcs = append(p.Funcs, &minic.Func{Name: "io0", NParams: 0, Body: []minic.Stmt{
			minic.Return{E: minic.Call{Name: "recv", Args: []minic.Expr{
				minic.Int(0), minic.GlobalRef("buf"), minic.Int(64), minic.Int(0)}}},
		}})
		for i := 1; i < depth; i++ {
			prev := "io" + string(rune('0'+i-1))
			p.Funcs = append(p.Funcs, &minic.Func{Name: "io" + string(rune('0'+i)),
				Body: []minic.Stmt{minic.Return{E: minic.Call{Name: prev}}}})
		}
		p.Funcs = append(p.Funcs, &minic.Func{Name: "main", Body: []minic.Stmt{
			minic.ExprStmt{E: minic.Call{Name: "io" + string(rune('0'+depth-1))}},
			minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
				minic.GlobalRef("out"), minic.GlobalRef("buf")}}},
			minic.Return{E: minic.Int(0)},
		}})
		return p
	}
	bin, m := buildBin(t, deep(6))
	if alerts := New(bin, m, Options{UseCTS: true, MaxCallDepth: 3}).Run(); len(alerts) != 0 {
		t.Errorf("deep source found despite depth budget: %+v", alerts)
	}
	bin2, m2 := buildBin(t, deep(2))
	if alerts := New(bin2, m2, Options{UseCTS: true, MaxCallDepth: 3}).Run(); len(alerts) != 1 {
		t.Errorf("shallow source missed: %+v", alerts)
	}
}

func TestITSSeedsTaintReturnValue(t *testing.T) {
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "store", Size: 64}},
		Funcs: []*minic.Func{
			{Name: "fetch", NParams: 1, Body: []minic.Stmt{
				minic.Return{E: minic.Add(minic.Var("p0"), minic.Int(4))}}},
			{Name: "main", Body: []minic.Stmt{
				minic.Let{Name: "v", E: minic.Call{Name: "fetch", Args: []minic.Expr{minic.GlobalRef("store")}}},
				minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{minic.Var("v")}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
	bin, m := buildBin(t, p)
	// Without ITS: no source, no alert.
	if alerts := New(bin, m, Options{UseCTS: true}).Run(); len(alerts) != 0 {
		t.Errorf("unexpected alerts without ITS: %+v", alerts)
	}
	fetch := entryOf(t, bin, "fetch")
	alerts := New(bin, m, Options{UseCTS: true, ITS: []uint32{fetch}}).Run()
	if len(alerts) != 1 || alerts[0].Sink != "system" {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestITSSeedBudget(t *testing.T) {
	// With the seeding budget at zero, ITS call sites are followed like
	// ordinary calls and nothing taints.
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "store", Size: 64}},
		Funcs: []*minic.Func{
			{Name: "fetch", NParams: 1, Body: []minic.Stmt{
				minic.Return{E: minic.Add(minic.Var("p0"), minic.Int(4))}}},
			{Name: "main", Body: []minic.Stmt{
				minic.Let{Name: "v", E: minic.Call{Name: "fetch", Args: []minic.Expr{minic.GlobalRef("store")}}},
				minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{minic.Var("v")}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
	bin, m := buildBin(t, p)
	fetch := entryOf(t, bin, "fetch")
	e := New(bin, m, Options{UseCTS: true, ITS: []uint32{fetch}, MaxITSSeeds: -1})
	e.opts.MaxITSSeeds = 0
	if alerts := e.Run(); len(alerts) != 0 {
		t.Errorf("alerts despite zero seeding budget: %+v", alerts)
	}
}

func TestStepBudgetBoundsWork(t *testing.T) {
	s, err := synth.Generate(synth.Dataset()[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := loader.Load(s.Packed, loader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	target := res.Targets[0]
	e := New(target.Bin, target.Model, Options{UseCTS: true, TotalSteps: 500})
	e.Run()
	if e.Steps > 600 {
		t.Errorf("steps = %d, budget 500", e.Steps)
	}
}

func TestLoopBoundTerminates(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{Name: "main", Body: []minic.Stmt{
		minic.Let{Name: "i", E: minic.Int(0)},
		minic.While{Cond: minic.Cond{Op: minic.Ge, L: minic.Var("i"), R: minic.Int(0)},
			Body: []minic.Stmt{minic.Assign{Name: "i", E: minic.Add(minic.Var("i"), minic.Int(1))}}},
		minic.Return{E: minic.Int(0)},
	}}}}
	bin, m := buildBin(t, p)
	e := New(bin, m, Options{UseCTS: true})
	e.Run()
	if e.Steps >= DefaultTotalSteps {
		t.Errorf("infinite concrete loop burned the whole budget (%d steps)", e.Steps)
	}
}

func TestIndirectDispatchExplored(t *testing.T) {
	p := &minic.Program{
		Name: "t",
		Globals: []*minic.Global{
			{Name: "buf", Size: 64},
			{Name: "out", Size: 64},
			{Name: "tbl", Size: 8, Init: make([]byte, 8),
				Ptrs: []minic.PtrInit{{Off: 0, FuncName: "h0"}, {Off: 4, FuncName: "h1"}}},
		},
		Funcs: []*minic.Func{
			{Name: "h0", Body: []minic.Stmt{minic.Return{E: minic.Int(0)}}},
			{Name: "h1", Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
					minic.GlobalRef("out"), minic.GlobalRef("buf")}}},
				minic.Return{E: minic.Int(0)},
			}},
			{Name: "main", NParams: 1, Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "recv", Args: []minic.Expr{
					minic.Int(0), minic.GlobalRef("buf"), minic.Int(64), minic.Int(0)}}},
				minic.ExprStmt{E: minic.CallInd{Table: "tbl",
					Index: minic.Bin{Op: minic.OpAnd, L: minic.Var("p0"), R: minic.Int(1)}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
	bin, m := buildBin(t, p)
	alerts := New(bin, m, Options{UseCTS: true}).Run()
	if len(alerts) != 1 {
		t.Fatalf("dispatch target's flow missed: %+v", alerts)
	}
	h1 := entryOf(t, bin, "h1")
	if alerts[0].Func != h1 {
		t.Errorf("alert func = %#x, want h1 %#x", alerts[0].Func, h1)
	}
}

func TestAlertsDeterministic(t *testing.T) {
	s, err := synth.Generate(synth.Dataset()[30])
	if err != nil {
		t.Fatal(err)
	}
	res, err := loader.Load(s.Packed, loader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	target := res.Targets[0]
	a := New(target.Bin, target.Model, Options{UseCTS: true}).Run()
	b := New(target.Bin, target.Model, Options{UseCTS: true}).Run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic alert count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic alerts")
		}
	}
}

func TestOutParamITSSymbolic(t *testing.T) {
	// A fetcher that writes the field through a pointer parameter: seeding
	// the output parameter taints the buffer for the following sink.
	p := &minic.Program{
		Name: "t",
		Globals: []*minic.Global{
			{Name: "store", Size: 64},
			{Name: "fieldbuf", Size: 64},
			{Name: "out", Size: 64},
		},
		Funcs: []*minic.Func{
			{Name: "fetch_into", NParams: 3, Body: []minic.Stmt{
				minic.StoreStmt{Size: 1, Addr: minic.Var("p2"), Val: minic.LoadB(minic.Var("p1"))},
				minic.Return{E: minic.Int(0)},
			}},
			{Name: "main", Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "fetch_into", Args: []minic.Expr{
					minic.Str("username"), minic.GlobalRef("store"), minic.GlobalRef("fieldbuf")}}},
				minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
					minic.GlobalRef("out"), minic.GlobalRef("fieldbuf")}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
	bin, m := buildBin(t, p)
	fetch := entryOf(t, bin, "fetch_into")
	alerts := New(bin, m, Options{UseCTS: true, ITSOut: map[uint32][]int{fetch: {2}}}).Run()
	var found bool
	for _, a := range alerts {
		if a.Sink == "strcpy" {
			found = true
		}
	}
	if !found {
		t.Error("symbolic engine missed the pointer-output flow")
	}
}
