// Package karonte implements a Karonte-style taint engine: symbolic,
// path-based exploration with explicit budgets. Unlike the static engine
// (package taint), it walks concrete execution paths forward from entry
// points, follows calls up to a depth bound, forks at branches and indirect
// call sites, and stops when its step budget is exhausted — reproducing the
// characteristic behaviour of symbolic-execution taint analysis on firmware:
// precise on the paths it covers, blind past its time horizon, and therefore
// strongly improved by taint sources that sit closer to the sinks.
package karonte

import (

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/know"
	"fits/internal/taint"
)

// Options configures an analysis.
type Options struct {
	// UseCTS seeds exploration at the program entry and taints interface
	// function outputs; ITS additionally taints the listed functions'
	// return values at their call sites.
	UseCTS bool
	ITS    []uint32
	// ITSOut lists pointer-output sources: entry -> output parameter
	// indexes whose pointees carry fetched user data.
	ITSOut map[uint32][]int

	// TotalSteps is the firmware-wide statement budget; exploration stops
	// when exhausted (the engine's "analysis time limit").
	TotalSteps int
	// MaxCallDepth bounds how deep calls are followed; deeper callees are
	// skipped with havoced results, losing their flows.
	MaxCallDepth int
	// MaxPaths bounds forked paths per seed.
	MaxPaths int
	// LoopBound bounds per-path block revisits.
	LoopBound int
	// MaxITSSeeds bounds how many intermediate-source call sites get
	// seeded before the engine's per-flow analysis time runs out; later
	// sites are followed like ordinary calls.
	MaxITSSeeds int
}

// Defaults chosen to mirror the paper's observations: Karonte explores a
// bounded neighborhood of its entry points.
const (
	DefaultTotalSteps   = 50000
	DefaultMaxCallDepth = 7
	DefaultMaxPaths     = 96
	DefaultLoopBound    = 2
	DefaultMaxITSSeeds  = 2
)

// Engine analyzes one binary.
type Engine struct {
	bin   *binimg.Binary
	model *cfg.Model
	opts  Options

	itsSet    map[uint32]bool
	itsSeeds  int
	stepsLeft int
	nextSym   int
	nextLabel int
	alerts    map[uint32]*taint.Alert

	// Steps reports consumed budget after Run.
	Steps int
}

// New prepares an engine.
func New(bin *binimg.Binary, model *cfg.Model, opts Options) *Engine {
	if opts.TotalSteps == 0 {
		opts.TotalSteps = DefaultTotalSteps
		// Integrating intermediate sources makes runs longer (Table 5's
		// higher Karonte-ITS times): the engine spends real extra time,
		// which buys back the budget consumed by tracking them.
		if len(opts.ITS) > 0 {
			opts.TotalSteps = DefaultTotalSteps * 13 / 10
		}
	}
	if opts.MaxCallDepth == 0 {
		opts.MaxCallDepth = DefaultMaxCallDepth
	}
	if opts.MaxPaths == 0 {
		opts.MaxPaths = DefaultMaxPaths
	}
	if opts.LoopBound == 0 {
		opts.LoopBound = DefaultLoopBound
	}
	if opts.MaxITSSeeds == 0 {
		opts.MaxITSSeeds = DefaultMaxITSSeeds
	}
	e := &Engine{bin: bin, model: model, opts: opts, alerts: map[uint32]*taint.Alert{}}
	e.itsSet = map[uint32]bool{}
	for _, a := range opts.ITS {
		e.itsSet[a] = true
	}
	return e
}

// Run explores from every seed and returns alerts sorted by site.
func (e *Engine) Run() []taint.Alert {
	e.stepsLeft = e.opts.TotalSteps
	e.itsSeeds = e.opts.MaxITSSeeds
	for _, seedEntry := range e.seeds() {
		if e.stepsLeft <= 0 {
			break
		}
		e.explore(seedEntry)
	}
	e.Steps = e.opts.TotalSteps - e.stepsLeft
	var out []taint.Alert
	for _, a := range e.alerts {
		out = append(out, *a)
	}
	taint.SortAlerts(out)
	return out
}

// seeds lists exploration entry points: the program entry point, as the
// real engine explores whole programs. Intermediate sources change what
// taints along those paths, not where exploration starts.
func (e *Engine) seeds() []uint32 {
	var out []uint32
	if _, ok := e.model.FuncAt(e.bin.Entry); ok {
		out = append(out, e.bin.Entry)
	}
	return out
}

// itsOut reports whether target is a pointer-output source.
func (e *Engine) itsOut(target uint32) ([]int, bool) {
	ps, ok := e.opts.ITSOut[target]
	return ps, ok
}

func (e *Engine) report(site, fnEntry uint32, sink string, kind know.SinkKind, from taint.SourceKind) {
	if _, ok := e.alerts[site]; ok {
		return
	}
	e.alerts[site] = &taint.Alert{
		Binary: e.bin.Name, Site: site, Func: fnEntry,
		Sink: sink, Kind: kind, From: from,
	}
}
