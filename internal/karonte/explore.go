package karonte

import (
	"fits/internal/cfg"
	"fits/internal/ir"
	"fits/internal/isa"
	"fits/internal/know"
	"fits/internal/taint"
)

const (
	fakeStackTop   = 0xfd000000
	sourceBufSpan  = 1024 // assumed extent of an interface function's output buffer
	maxForkTargets = 12
	// itsTrackingCost is the budget surcharge per seeded intermediate
	// source: more taint sources, more symbolic data-flow tracking.
	itsTrackingCost = 4000
)

// kval is a path value: concrete word or symbol, plus a taint label
// (0 = untainted). Additive operations preserve the symbol identity so that
// pointer arithmetic keeps pointing at the same symbolic object.
type kval struct {
	concrete bool
	c        uint32
	sym      int
	label    int
}

// region is a concrete memory span tainted by an interface function.
type region struct {
	base, size uint32
	label      int
}

type visitKey struct {
	fn, block uint32
}

// frame is a return continuation, carrying the caller's loop-bound state.
type frame struct {
	fn     *cfg.Function
	block  uint32
	idx    int
	visits map[visitKey]int
}

// pstate is one execution path.
type pstate struct {
	fn    *cfg.Function
	block uint32
	idx   int

	regs    [isa.NumRegs]kval
	temps   map[ir.Temp]kval
	mem     map[uint32]kval
	symPtr  map[int]int // symbolic pointer -> pointee taint label
	regions []region
	killed  map[int]bool
	visits  map[visitKey]int
	stack   []frame
}

func (p *pstate) clone() *pstate {
	np := &pstate{
		fn: p.fn, block: p.block, idx: p.idx,
		regs:    p.regs,
		temps:   map[ir.Temp]kval{},
		mem:     make(map[uint32]kval, len(p.mem)),
		symPtr:  make(map[int]int, len(p.symPtr)),
		killed:  make(map[int]bool, len(p.killed)),
		visits:  make(map[visitKey]int, len(p.visits)),
		stack:   make([]frame, len(p.stack)),
		regions: append([]region(nil), p.regions...),
	}
	for i, fr := range p.stack {
		nfr := fr
		nfr.visits = make(map[visitKey]int, len(fr.visits))
		for k, v := range fr.visits {
			nfr.visits[k] = v
		}
		np.stack[i] = nfr
	}
	for k, v := range p.temps {
		np.temps[k] = v
	}
	for k, v := range p.mem {
		np.mem[k] = v
	}
	for k, v := range p.symPtr {
		np.symPtr[k] = v
	}
	for k, v := range p.killed {
		np.killed[k] = v
	}
	for k, v := range p.visits {
		np.visits[k] = v
	}
	return np
}

func (e *Engine) freshSym() int {
	e.nextSym++
	return e.nextSym
}

func (e *Engine) freshLabel() int {
	e.nextLabel++
	return e.nextLabel
}

func symval(sym, label int) kval { return kval{sym: sym, label: label} }
func conc(c uint32) kval         { return kval{concrete: true, c: c} }

// explore runs bounded DFS from one seed function.
func (e *Engine) explore(entry uint32) {
	fn, ok := e.model.FuncAt(entry)
	if !ok || fn.ImportStub {
		return
	}
	init := &pstate{
		fn: fn, block: fn.Entry,
		temps: map[ir.Temp]kval{}, mem: map[uint32]kval{},
		symPtr: map[int]int{}, killed: map[int]bool{}, visits: map[visitKey]int{},
	}
	for r := 0; r < isa.NumRegs; r++ {
		init.regs[r] = symval(e.freshSym(), 0)
	}
	init.regs[isa.SP] = conc(fakeStackTop)

	paths := 0
	work := []*pstate{init}
	for len(work) > 0 && e.stepsLeft > 0 && paths < e.opts.MaxPaths {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		paths++
		e.runPath(p, &work)
	}
}

// runPath executes one path to completion, appending forks to work.
func (e *Engine) runPath(p *pstate, work *[]*pstate) {
	for e.stepsLeft > 0 {
		blk, ok := p.fn.Blocks[p.block]
		if !ok {
			return
		}
		if p.idx == 0 {
			vk := visitKey{fn: p.fn.Entry, block: p.block}
			p.visits[vk]++
			if p.visits[vk] > e.opts.LoopBound {
				// Loop bound exceeded: abandon this activation and resume
				// the caller with a havoced result, keeping the path alive.
				if len(p.stack) == 0 {
					return
				}
				fr := p.stack[len(p.stack)-1]
				p.stack = p.stack[:len(p.stack)-1]
				p.fn, p.block, p.idx = fr.fn, fr.block, fr.idx
				p.visits = fr.visits
				p.regs[isa.R0] = symval(e.freshSym(), 0)
				continue
			}
		}
		if p.idx >= len(blk.IR) {
			// Fall through to the next block.
			next := blk.End()
			if _, ok := p.fn.Blocks[next]; !ok {
				return
			}
			p.block, p.idx = next, 0
			continue
		}
		irb := blk.IR[p.idx]
		e.stepsLeft--
		ctl := e.execInstr(p, irb, work)
		switch ctl {
		case ctlNext:
			p.idx++
		case ctlJumped:
			// position updated by execInstr
		case ctlEnd:
			return
		}
	}
}

type ctlKind uint8

const (
	ctlNext ctlKind = iota
	ctlJumped
	ctlEnd
)

// eval computes an IR expression over the path state.
func (e *Engine) eval(p *pstate, x ir.Expr) kval {
	switch x := x.(type) {
	case *ir.Const:
		return conc(uint32(x.V))
	case *ir.RdTmp:
		if v, ok := p.temps[x.T]; ok {
			return v
		}
		return symval(e.freshSym(), 0)
	case *ir.Get:
		return p.regs[x.R]
	case *ir.Binop:
		l := e.eval(p, x.L)
		r := e.eval(p, x.R)
		label := mergeLabel(p, l.label, r.label)
		if l.concrete && r.concrete {
			v := foldConc(x.Op, l.c, r.c)
			return kval{concrete: true, c: v, label: label}
		}
		// Additive pointer arithmetic keeps the symbolic base.
		if x.Op == ir.Add || x.Op == ir.Sub {
			if !l.concrete {
				return kval{sym: l.sym, label: label}
			}
			return kval{sym: r.sym, label: label}
		}
		return symval(e.freshSym(), label)
	case *ir.Load:
		addr := e.eval(p, x.Addr)
		if addr.concrete {
			if v, ok := p.mem[addr.c]; ok {
				return v
			}
			for _, rg := range p.regions {
				if addr.c >= rg.base && addr.c < rg.base+rg.size {
					return symval(e.freshSym(), mergeLabel(p, rg.label, addr.label))
				}
			}
			if x.Size == 1 {
				if b, ok := e.bin.ByteAt(addr.c); ok {
					return kval{concrete: true, c: uint32(b), label: addr.label}
				}
			} else if w, ok := e.bin.WordAt(addr.c); ok {
				return kval{concrete: true, c: w, label: addr.label}
			}
			return symval(e.freshSym(), addr.label)
		}
		if lbl, ok := p.symPtr[addr.sym]; ok {
			return symval(e.freshSym(), mergeLabel(p, lbl, addr.label))
		}
		return symval(e.freshSym(), addr.label)
	}
	return symval(e.freshSym(), 0)
}

// mergeLabel combines two labels, honoring per-path sanitization kills.
func mergeLabel(p *pstate, a, b int) int {
	if a != 0 && !p.killed[a] {
		return a
	}
	if b != 0 && !p.killed[b] {
		return b
	}
	return 0
}

// execInstr executes one lifted instruction.
func (e *Engine) execInstr(p *pstate, irb *ir.Block, work *[]*pstate) ctlKind {
	for _, s := range irb.Stmts {
		switch s := s.(type) {
		case *ir.WrTmp:
			p.temps[s.T] = e.eval(p, s.E)
			// Sanitization: ordering comparisons of tainted values against
			// nonzero constant bounds kill the label on this path. Region
			// taint is unaffected (the engine cannot see which object a
			// length check covered), matching its classical-source false
			// positives.
			if b, ok := s.E.(*ir.Binop); ok && (b.Op == ir.CmpLT || b.Op == ir.CmpGE) {
				l := e.eval(p, b.L)
				r := e.eval(p, b.R)
				if l.label != 0 && r.concrete && r.c != 0 {
					p.killed[l.label] = true
				}
				if r.label != 0 && l.concrete && l.c != 0 {
					p.killed[r.label] = true
				}
			}
		case *ir.Put:
			p.regs[s.R] = e.eval(p, s.E)
		case *ir.Store:
			addr := e.eval(p, s.Addr)
			val := e.eval(p, s.Val)
			if addr.concrete {
				p.mem[addr.c] = val
			} else if val.label != 0 && !p.killed[val.label] {
				p.symPtr[addr.sym] = val.label
			}
		case *ir.Exit:
			cond := e.eval(p, s.Cond)
			if cond.concrete {
				if cond.c != 0 {
					return e.jumpTo(p, s.Target)
				}
				continue
			}
			// Fork: taken branch enqueued, fall-through continues.
			taken := p.clone()
			if e.jumpTo(taken, s.Target) == ctlJumped {
				*work = append(*work, taken)
			}
			continue
		case *ir.Jump:
			if s.Dyn != nil {
				// Computed jump: fork over the resolved jump-table targets.
				ts := p.fn.JumpTables[irb.Addr]
				if len(ts) == 0 {
					return ctlEnd
				}
				if len(ts) > maxForkTargets {
					ts = ts[:maxForkTargets]
				}
				for _, t := range ts[1:] {
					alt := p.clone()
					if e.jumpTo(alt, t) == ctlJumped {
						*work = append(*work, alt)
					}
				}
				return e.jumpTo(p, ts[0])
			}
			return e.jumpTo(p, s.Target)
		case *ir.Call:
			return e.execCall(p, irb, s, work)
		case *ir.Ret:
			if len(p.stack) == 0 {
				return ctlEnd
			}
			fr := p.stack[len(p.stack)-1]
			p.stack = p.stack[:len(p.stack)-1]
			p.fn, p.block, p.idx = fr.fn, fr.block, fr.idx
			p.visits = fr.visits
			return ctlJumped
		case *ir.Sys:
			p.regs[isa.R0] = symval(e.freshSym(), 0)
		}
	}
	return ctlNext
}

// jumpTo repositions the path at a block of the current function.
func (e *Engine) jumpTo(p *pstate, target uint32) ctlKind {
	if _, ok := p.fn.Blocks[target]; !ok {
		return ctlEnd
	}
	p.block, p.idx = target, 0
	return ctlJumped
}

// execCall handles direct, trampoline-stub and resolved indirect calls.
func (e *Engine) execCall(p *pstate, irb *ir.Block, c *ir.Call, work *[]*pstate) ctlKind {
	// Determine candidate targets.
	var targets []uint32
	switch c.Kind {
	case ir.CallDirect:
		targets = []uint32{c.Target}
	case ir.CallIndirect:
		seen := map[uint32]bool{}
		for _, cs := range p.fn.Calls {
			if cs.Addr == irb.Addr && cs.Target != 0 && !seen[cs.Target] {
				seen[cs.Target] = true
				targets = append(targets, cs.Target)
			}
		}
		if len(targets) > maxForkTargets {
			targets = targets[:maxForkTargets]
		}
	default:
		return ctlEnd // trampoline inside a stub function: not executed directly
	}
	if len(targets) == 0 {
		p.regs[isa.R0] = symval(e.freshSym(), 0)
		p.idx++
		return ctlJumped
	}

	// Fork on extra indirect targets.
	for _, t := range targets[1:] {
		alt := p.clone()
		if e.enterCall(alt, irb, t) {
			*work = append(*work, alt)
		}
	}
	if e.enterCall(p, irb, targets[0]) {
		return ctlJumped
	}
	p.idx++
	return ctlJumped
}

// enterCall applies a call to one resolved target: import effects, source
// effects, or a followed call. Returns true when the path was repositioned.
func (e *Engine) enterCall(p *pstate, irb *ir.Block, target uint32) bool {
	// Import stub: apply the library function's effect in place.
	if im, ok := e.bin.ImportAtStub(target); ok {
		e.applyImport(p, irb.Addr, im.Name)
		p.idx++
		return true
	}
	// Intermediate source: taint the return value (or the pointees of the
	// output parameters for pointer-output sources). Tracking each source
	// is expensive, so only the first few sites get seeded before the
	// per-flow analysis time is spent — the mechanism behind Karonte-ITS's
	// longer runs with modest extra coverage.
	outParams, isOut := e.itsOut(target)
	if (e.itsSet[target] || isOut) && e.itsSeeds > 0 {
		e.itsSeeds--
		e.stepsLeft -= itsTrackingCost
		label := e.freshLabel()
		if e.itsSet[target] {
			p.regs[isa.R0] = symval(e.freshSym(), label)
		} else {
			p.regs[isa.R0] = symval(e.freshSym(), 0)
		}
		for _, pi := range outParams {
			if pi >= 4 {
				continue
			}
			arg := p.regs[pi]
			if arg.concrete {
				p.regions = append(p.regions, region{base: arg.c, size: 64, label: label})
			} else {
				p.symPtr[arg.sym] = label
			}
		}
		p.idx++
		return true
	}
	callee, ok := e.model.FuncAt(target)
	if !ok || callee.ImportStub {
		p.regs[isa.R0] = symval(e.freshSym(), 0)
		p.idx++
		return true
	}
	if len(p.stack) >= e.opts.MaxCallDepth {
		// Too deep: skip the callee; its internal flows are lost but
		// argument taint survives in the havoced result.
		label := 0
		for r := isa.Reg(0); r < 4; r++ {
			label = mergeLabel(p, label, p.regs[r].label)
		}
		p.regs[isa.R0] = symval(e.freshSym(), label)
		p.idx++
		return true
	}
	p.stack = append(p.stack, frame{fn: p.fn, block: p.block, idx: p.idx + 1, visits: p.visits})
	p.fn, p.block, p.idx = callee, callee.Entry, 0
	// Loop bounds are per activation: a fresh callee starts fresh.
	p.visits = map[visitKey]int{}
	return true
}

// applyImport models a library call: source seeding, sink checking, and
// generic taint-through behaviour.
func (e *Engine) applyImport(p *pstate, site uint32, name string) {
	if spec, ok := know.Sources[name]; ok && e.opts.UseCTS {
		label := e.freshLabel()
		for _, pi := range spec.TaintedParams {
			arg := p.regs[pi]
			if arg.concrete {
				p.regions = append(p.regions, region{base: arg.c, size: sourceBufSpan, label: label})
			} else {
				p.symPtr[arg.sym] = label
			}
		}
		ret := 0
		if spec.TaintsReturn {
			ret = label
		}
		p.regs[isa.R0] = symval(e.freshSym(), ret)
		return
	}
	if spec, ok := know.Sinks[name]; ok {
		for _, pi := range spec.DangerousParams {
			if pi >= 4 {
				continue
			}
			arg := p.regs[pi]
			tainted := arg.label != 0 && !p.killed[arg.label]
			if !tainted && !arg.concrete {
				if lbl, ok := p.symPtr[arg.sym]; ok && !p.killed[lbl] {
					tainted = true
				}
			}
			if !tainted && arg.concrete {
				for _, rg := range p.regions {
					if arg.c >= rg.base && arg.c < rg.base+rg.size && !p.killed[rg.label] {
						tainted = true
					}
				}
				if !tainted {
					if v, ok := p.mem[arg.c]; ok && v.label != 0 && !p.killed[v.label] {
						tainted = true
					}
				}
			}
			if tainted {
				from := taint.FromCTSValue
				if len(e.itsSet) > 0 {
					from = taint.FromITS
				}
				e.report(site, p.fn.Entry, name, spec.Kind, from)
				break
			}
		}
		p.regs[isa.R0] = symval(e.freshSym(), 0)
		return
	}
	// Generic library call: the result derives from the arguments.
	label := 0
	for r := isa.Reg(0); r < 4; r++ {
		label = mergeLabel(p, label, p.regs[r].label)
	}
	p.regs[isa.R0] = symval(e.freshSym(), label)
}

func foldConc(op ir.BinOp, a, b uint32) uint32 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		if b == 0 {
			return 0
		}
		return uint32(int32(a) / int32(b))
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return a << (b & 31)
	case ir.Shr:
		return a >> (b & 31)
	case ir.CmpEQ:
		if a == b {
			return 1
		}
	case ir.CmpNE:
		if a != b {
			return 1
		}
	case ir.CmpLT:
		if int32(a) < int32(b) {
			return 1
		}
	case ir.CmpGE:
		if int32(a) >= int32(b) {
			return 1
		}
	}
	return 0
}
