package intern

import (
	"sync"
	"testing"
)

func TestBytesCanonicalizes(t *testing.T) {
	tab := NewTable()
	a := tab.Bytes([]byte("strcpy"))
	b := tab.Bytes([]byte("strcpy"))
	if a != "strcpy" || b != "strcpy" {
		t.Fatalf("got %q, %q", a, b)
	}
	// Same backing array: the canonical instance is returned on repeats.
	if &a != &b && a != b {
		t.Fatal("values differ")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1", tab.Len())
	}
	tab.Bytes([]byte("memcmp"))
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
}

func TestNilTableFallsBack(t *testing.T) {
	var tab *Table
	if got := tab.Bytes([]byte("x")); got != "x" {
		t.Errorf("nil.Bytes = %q", got)
	}
	if got := tab.String("y"); got != "y" {
		t.Errorf("nil.String = %q", got)
	}
	if tab.Len() != 0 {
		t.Errorf("nil.Len = %d", tab.Len())
	}
}

// TestBytesHitDoesNotAllocate pins the property the hot paths depend on:
// resolving an already-interned []byte costs zero heap allocations.
func TestBytesHitDoesNotAllocate(t *testing.T) {
	tab := NewTable()
	key := []byte("recv_field")
	tab.Bytes(key)
	allocs := testing.AllocsPerRun(100, func() {
		if tab.Bytes(key) != "recv_field" {
			t.Fatal("wrong value")
		}
	})
	if allocs != 0 {
		t.Errorf("hit path allocated %.1f objects per call, want 0", allocs)
	}
}

// TestConcurrentInsertRace: many goroutines interning the same and distinct
// values must converge to one instance per distinct value (run with -race).
func TestConcurrentInsertRace(t *testing.T) {
	tab := NewTable()
	words := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w := words[i%len(words)]
				if got := tab.Bytes(w); got != string(w) {
					t.Errorf("Bytes(%q) = %q", w, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tab.Len() != len(words) {
		t.Errorf("Len = %d, want %d", tab.Len(), len(words))
	}
}
