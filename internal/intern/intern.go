// Package intern provides a per-analysis string intern table. The pipeline
// materializes the same short strings over and over — call-site string
// constants backtracked at every caller, symbol names repeated across a
// firmware's binaries, taint object keys — and interning collapses each
// distinct value to one allocation per analysis.
//
// Interning never changes what a string contains, only which backing array
// it points at, so every output that embeds interned strings (rankings,
// cache keys, DiffReports) is byte-identical with and without a table.
package intern

import "sync"

// Table interns strings. The zero value is not usable; call NewTable. A
// Table is safe for concurrent use: analysis fan-outs share one table per
// Analyze call across all workers.
type Table struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewTable returns an empty intern table.
func NewTable() *Table {
	return &Table{m: make(map[string]string, 64)}
}

// Bytes returns the canonical string equal to b. On a hit nothing is
// allocated: Go map lookups with a string(b) key are conversion-free, so
// repeated values cost a read lock and a hash. A nil table falls back to a
// plain conversion.
func (t *Table) Bytes(b []byte) string {
	if t == nil {
		return string(b)
	}
	t.mu.RLock()
	s, ok := t.m[string(b)]
	t.mu.RUnlock()
	if ok {
		return s
	}
	return t.insert(string(b))
}

// String returns the canonical instance of s, interning it on first sight.
// A nil table returns s unchanged.
func (t *Table) String(s string) string {
	if t == nil {
		return s
	}
	t.mu.RLock()
	c, ok := t.m[s]
	t.mu.RUnlock()
	if ok {
		return c
	}
	return t.insert(s)
}

func (t *Table) insert(s string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.m[s]; ok { // raced with another inserter
		return c
	}
	t.m[s] = s
	return s
}

// Len reports the number of distinct strings interned so far.
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}
