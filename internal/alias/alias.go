// Package alias computes bounded, flow-sensitive points-to facts over the
// IR of one function. The taint engine's value-level propagation drops any
// store whose address it cannot pin to a stack slot or a constant global —
// data laundered through a computed pointer (table[i] = val; p = table[j])
// silently escapes tracking. This pass re-evaluates exactly those address
// expressions with the UCSE symbolic machinery, resolves each one to an
// abstract location — a stack-frame window, a global-region window, or a
// heap allocation site — and hands the facts to the taint engine so a
// tainted store and a later load of an overlapping location connect.
//
// The analysis is deliberately cheap and explicitly bounded: one linear
// pass over the function in block order, a single symbolic state (no path
// forking), and a per-function fact budget. When the budget trips, the
// result is marked Truncated with no facts at all, degrading to the taint
// engine's previous behavior — alias precision is additive, never a
// soundness trade.
package alias

import (
	"sort"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/ir"
	"fits/internal/isa"
	"fits/internal/ucse"
)

// LocKind classifies an abstract location.
type LocKind uint8

// Abstract location kinds.
const (
	// Stack is a window of the current function's synthetic stack frame.
	Stack LocKind = iota
	// Global is a window of a writable data/bss region.
	Global
	// Heap is the object returned by one allocation call site.
	Heap
)

func (k LocKind) String() string {
	switch k {
	case Stack:
		return "stack"
	case Global:
		return "global"
	case Heap:
		return "heap"
	}
	return "loc"
}

// Span is the window width in bytes for Stack and Global locations. It
// matches the taint engine's tainted-object span: a store anywhere in a
// window taints the whole window.
const Span = 64

// Loc is one abstract location. Base is the resolved concrete component of
// the address for Stack and Global locations (fake-stack or section
// address), and the allocation call-site address for Heap.
type Loc struct {
	Kind LocKind
	Base uint32
}

// Overlaps reports whether two locations may denote overlapping memory.
func (l Loc) Overlaps(o Loc) bool {
	if l.Kind != o.Kind {
		return false
	}
	if l.Kind == Heap {
		return l.Base == o.Base
	}
	return l.Base-o.Base < Span || o.Base-l.Base < Span
}

// MaxFacts bounds the per-function fact count. A function dense enough in
// unresolved memory traffic to trip it gets no facts and a Truncated mark
// instead of a partial, order-dependent subset.
const MaxFacts = 96

// Facts is the per-function result: for every load and store instruction
// whose address carried a symbolic residue, the abstract locations it may
// touch, keyed by instruction address.
type Facts struct {
	// Truncated is set when the fact budget tripped; both maps are then
	// empty and the consumer falls back to pre-alias behavior.
	Truncated bool
	Loads     map[uint32][]Loc
	Stores    map[uint32][]Loc
}

// allocators are the import names whose return value roots a heap object.
var allocators = map[string]bool{
	"malloc":  true,
	"calloc":  true,
	"realloc": true,
	"strdup":  true,
}

// Analyze walks fn once in ascending block order with a single symbolic
// state and resolves every symbolic-residue load/store address it can.
// Calls havoc the caller-saved registers (and allocator calls root a fresh
// heap object in R0); tracked memory survives calls, which keeps the facts
// may-facts rather than must-facts.
func Analyze(bin *binimg.Binary, fn *cfg.Function) *Facts {
	f := &Facts{Loads: map[uint32][]Loc{}, Stores: map[uint32][]Loc{}}
	if fn == nil || fn.ImportStub {
		return f
	}
	alloc := map[uint32]bool{}
	for _, cs := range fn.Calls {
		if allocators[cs.ImportName] {
			alloc[cs.Addr] = true
		}
	}
	st := ucse.NewSymState(bin)
	count := 0
	add := func(m map[uint32][]Loc, instr uint32, l Loc) {
		for _, have := range m[instr] {
			if have == l {
				return
			}
		}
		m[instr] = append(m[instr], l)
		count++
	}
	for _, ba := range fn.Order {
		blk := fn.Blocks[ba]
		if blk == nil {
			continue
		}
		for _, irb := range blk.IR {
			for _, s := range irb.Stmts {
				switch s := s.(type) {
				case *ir.WrTmp:
					for _, ld := range loadsIn(s.E) {
						if l, ok := classify(bin, st.Eval(ld.Addr)); ok {
							add(f.Loads, irb.Addr, l)
						}
					}
				case *ir.Put:
					for _, ld := range loadsIn(s.E) {
						if l, ok := classify(bin, st.Eval(ld.Addr)); ok {
							add(f.Loads, irb.Addr, l)
						}
					}
				case *ir.Store:
					if l, ok := classify(bin, st.Eval(s.Addr)); ok {
						add(f.Stores, irb.Addr, l)
					}
				}
				wasAlloc := false
				if _, ok := s.(*ir.Call); ok {
					wasAlloc = alloc[irb.Addr]
				}
				st.Step(s)
				if wasAlloc {
					st.Regs[isa.R0] = ucse.SAlloc{Site: irb.Addr}
				}
			}
		}
		if count > MaxFacts {
			return &Facts{Truncated: true, Loads: map[uint32][]Loc{}, Stores: map[uint32][]Loc{}}
		}
	}
	for _, m := range []map[uint32][]Loc{f.Loads, f.Stores} {
		for _, locs := range m {
			sort.Slice(locs, func(i, j int) bool {
				if locs[i].Kind != locs[j].Kind {
					return locs[i].Kind < locs[j].Kind
				}
				return locs[i].Base < locs[j].Base
			})
		}
	}
	return f
}

// loadsIn collects the load subexpressions of x in evaluation order.
func loadsIn(x ir.Expr) []*ir.Load {
	switch x := x.(type) {
	case *ir.Load:
		return append(loadsIn(x.Addr), x)
	case *ir.Binop:
		return append(loadsIn(x.L), loadsIn(x.R)...)
	}
	return nil
}

// classify resolves a symbolic address to an abstract location. Only
// addresses with a symbolic residue produce facts — fully concrete
// addresses are already handled precisely by the taint engine — and only
// when the concrete component lands in a known region.
func classify(bin *binimg.Binary, v ucse.SVal) (Loc, bool) {
	base, site, hasAlloc, hasSym := split(v)
	if !hasSym && !hasAlloc {
		return Loc{}, false
	}
	if hasAlloc {
		return Loc{Kind: Heap, Base: site}, true
	}
	if base >= ucse.FakeStackLo && base < ucse.FakeStackHi {
		return Loc{Kind: Stack, Base: base}, true
	}
	switch bin.SectionOf(base) {
	case "data", "bss":
		return Loc{Kind: Global, Base: base}, true
	}
	return Loc{}, false
}

// split walks an additive address expression, summing concrete terms,
// detecting an allocation root, and reporting whether any symbolic term
// remains.
func split(v ucse.SVal) (base uint32, site uint32, hasAlloc, hasSym bool) {
	switch v := v.(type) {
	case ucse.SConst:
		return v.V, 0, false, false
	case ucse.SAlloc:
		return 0, v.Site, true, false
	case ucse.SBin:
		if v.Op == ir.Add {
			lb, ls, la, lsym := split(v.L)
			rb, rs, ra, rsym := split(v.R)
			site = ls
			if ra {
				site = rs
			}
			return lb + rb, site, la || ra, lsym || rsym
		}
		return 0, 0, false, true
	default:
		return 0, 0, false, true
	}
}
