package alias

import (
	"testing"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/isa"
	"fits/internal/minic"
	"fits/internal/ucse"
)

func buildModel(t *testing.T, p *minic.Program) (*binimg.Binary, *cfg.Model) {
	t.Helper()
	bin, err := minic.Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cfg.Build(bin, cfg.Options{Resolver: ucse.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	return bin, m
}

func funcByName(t *testing.T, bin *binimg.Binary, m *cfg.Model, name string) *cfg.Function {
	t.Helper()
	for _, s := range bin.Funcs {
		if s.Name == name {
			if f, ok := m.FuncAt(s.Addr); ok {
				return f
			}
		}
	}
	t.Fatalf("function %q not found", name)
	return nil
}

func TestLocOverlaps(t *testing.T) {
	cases := []struct {
		a, b Loc
		want bool
	}{
		{Loc{Stack, 0x1000}, Loc{Stack, 0x1000}, true},
		{Loc{Stack, 0x1000}, Loc{Stack, 0x1000 + Span - 1}, true},
		{Loc{Stack, 0x1000 + Span - 1}, Loc{Stack, 0x1000}, true},
		{Loc{Stack, 0x1000}, Loc{Stack, 0x1000 + Span}, false},
		{Loc{Global, 0x2000}, Loc{Global, 0x2010}, true},
		{Loc{Stack, 0x1000}, Loc{Global, 0x1000}, false},
		{Loc{Heap, 0x100}, Loc{Heap, 0x100}, true},
		{Loc{Heap, 0x100}, Loc{Heap, 0x104}, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%+v.Overlaps(%+v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if back := c.b.Overlaps(c.a); back != c.a.Overlaps(c.b) {
			t.Errorf("Overlaps(%+v, %+v) not symmetric", c.a, c.b)
		}
	}
}

// TestAnalyzeAliasedGlobalStoreLoad plants the pattern the pass exists for:
// a store through a global table at a symbolic index and a load back from
// the same expression must resolve to overlapping Global locations.
func TestAnalyzeAliasedGlobalStoreLoad(t *testing.T) {
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "g_tab", Size: 32}, {Name: "g_v", Size: 16}},
		Funcs: []*minic.Func{
			{Name: "handler", Body: []minic.Stmt{
				minic.Let{Name: "idx", E: minic.Call{Name: "strlen", Args: []minic.Expr{minic.GlobalRef("g_v")}}},
				minic.StoreStmt{Size: 4, Addr: minic.Add(minic.GlobalRef("g_tab"), minic.Var("idx")), Val: minic.Int(7)},
				minic.Let{Name: "out", E: minic.LoadW(minic.Add(minic.GlobalRef("g_tab"), minic.Var("idx")))},
				minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{minic.Var("out")}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
	bin, m := buildModel(t, p)
	f := Analyze(bin, funcByName(t, bin, m, "handler"))
	if f.Truncated {
		t.Fatal("tiny function must not trip the fact budget")
	}
	var stores, loads []Loc
	for _, locs := range f.Stores {
		stores = append(stores, locs...)
	}
	for _, locs := range f.Loads {
		loads = append(loads, locs...)
	}
	if len(stores) == 0 || len(loads) == 0 {
		t.Fatalf("stores=%v loads=%v, want one symbolic-residue fact each", stores, loads)
	}
	hit := false
	for _, s := range stores {
		if s.Kind != Global {
			t.Errorf("store fact %+v, want kind Global", s)
		}
		for _, l := range loads {
			if s.Overlaps(l) {
				hit = true
			}
		}
	}
	if !hit {
		t.Errorf("no store fact overlaps a load fact: stores=%v loads=%v", stores, loads)
	}
}

// TestAnalyzeHeapAllocationSite checks that an allocator's return value
// roots a Heap location keyed by the call site, shared by stores and loads
// at different offsets into the object.
func TestAnalyzeHeapAllocationSite(t *testing.T) {
	p := &minic.Program{
		Name: "t",
		Funcs: []*minic.Func{
			{Name: "h", Body: []minic.Stmt{
				minic.Let{Name: "p", E: minic.Call{Name: "malloc", Args: []minic.Expr{minic.Int(64)}}},
				minic.StoreStmt{Size: 4, Addr: minic.Add(minic.Var("p"), minic.Int(4)), Val: minic.Int(1)},
				minic.Let{Name: "q", E: minic.LoadW(minic.Add(minic.Var("p"), minic.Int(8)))},
				minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{minic.Var("q")}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
	bin, m := buildModel(t, p)
	f := Analyze(bin, funcByName(t, bin, m, "h"))
	var store, load *Loc
	for _, locs := range f.Stores {
		for i := range locs {
			if locs[i].Kind == Heap {
				store = &locs[i]
			}
		}
	}
	for _, locs := range f.Loads {
		for i := range locs {
			if locs[i].Kind == Heap {
				load = &locs[i]
			}
		}
	}
	if store == nil || load == nil {
		t.Fatalf("heap facts missing: stores=%v loads=%v", f.Stores, f.Loads)
	}
	if !store.Overlaps(*load) {
		t.Errorf("store %+v and load %+v of one allocation do not overlap", *store, *load)
	}
}

// TestAnalyzeConcreteAddressesProduceNoFacts: fully concrete traffic is the
// taint engine's own territory — the pass must stay out of it.
func TestAnalyzeConcreteAddressesProduceNoFacts(t *testing.T) {
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "g", Size: 8}},
		Funcs: []*minic.Func{
			{Name: "h", Body: []minic.Stmt{
				minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("g"), Val: minic.Int(7)},
				minic.Let{Name: "v", E: minic.LoadW(minic.GlobalRef("g"))},
				minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{minic.Var("v")}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
	bin, m := buildModel(t, p)
	f := Analyze(bin, funcByName(t, bin, m, "h"))
	if len(f.Stores) != 0 {
		t.Errorf("concrete global store produced facts: %v", f.Stores)
	}
	if f.Truncated {
		t.Error("concrete-only function marked truncated")
	}
}

// TestAnalyzeBudgetTruncates: a function dense in symbolic memory traffic
// must come back Truncated with no facts at all, never a partial subset.
func TestAnalyzeBudgetTruncates(t *testing.T) {
	body := []minic.Stmt{
		minic.Let{Name: "idx", E: minic.Call{Name: "strlen", Args: []minic.Expr{minic.GlobalRef("g_v")}}},
	}
	for i := 0; i < MaxFacts+1; i++ {
		body = append(body, minic.StoreStmt{
			Size: 4,
			Addr: minic.Add(minic.GlobalRef("g_tab"), minic.Var("idx")),
			Val:  minic.Int(int32(i)),
		})
	}
	body = append(body, minic.Return{E: minic.Int(0)})
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "g_tab", Size: 512}, {Name: "g_v", Size: 16}},
		Funcs:   []*minic.Func{{Name: "dense", Body: body}},
	}
	bin, m := buildModel(t, p)
	f := Analyze(bin, funcByName(t, bin, m, "dense"))
	if !f.Truncated {
		t.Fatal("fact budget did not trip")
	}
	if len(f.Stores) != 0 || len(f.Loads) != 0 {
		t.Errorf("truncated result still carries facts: stores=%v loads=%v", f.Stores, f.Loads)
	}
}

func TestAnalyzeNilFunction(t *testing.T) {
	f := Analyze(nil, nil)
	if f.Truncated || len(f.Loads) != 0 || len(f.Stores) != 0 {
		t.Errorf("nil function result = %+v, want empty", f)
	}
}
