// Package strcopy flags []byte→string conversions inside loops in the pure
// analysis packages. Each such conversion allocates and copies; in the
// per-function loops of the pipeline (vector extraction, call-site string
// collection, taint propagation) those copies dominated the allocation
// profile before interning. The fix is one of:
//
//   - intern the bytes through an intern.Table (Table.Bytes does a
//     no-alloc map lookup on repeats),
//   - restructure to compare/index bytes directly (bytes.Equal, map keyed
//     by something cheaper), or
//   - annotate //fitslint:ignore strcopy <reason> when the conversion is
//     provably cold or the copy is required for ownership.
//
// Two shapes are deliberately not flagged: conversions outside loops (a
// once-per-binary copy is noise; the lint aims at paths where N is large),
// and conversions used directly as a map index — `m[string(b)]` is the
// no-alloc lookup idiom the compiler optimizes, and it is exactly what the
// interned fast paths use.
package strcopy

import (
	"go/ast"
	"go/types"

	"fits/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "strcopy",
	Doc: "flags string(b) conversions from []byte inside loops in pure analysis packages; " +
		"each one allocates a copy on a path executed per function or per instruction",
	Run: run,
}

// purePackages mirrors the nondet analyzer's list: the packages whose inner
// loops are the pipeline's hot paths.
var purePackages = map[string]bool{
	"fits/internal/cfg":      true,
	"fits/internal/dataflow": true,
	"fits/internal/ir":       true,
	"fits/internal/bfv":      true,
	"fits/internal/infer":    true,
	"fits/internal/cluster":  true,
	"fits/internal/score":    true,
	"fits/internal/taint":    true,
	"fits/internal/karonte":  true,
	"fits/internal/ucse":     true,
}

func run(pass *analysis.Pass) error {
	if !purePackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		exempt := mapIndexConversions(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || exempt[call] || !isBytesToString(pass, call) {
					return true
				}
				pass.Reportf(call.Pos(),
					"string(b) copies its []byte inside a loop in pure analysis package %s; "+
						"intern it (intern.Table.Bytes), index bytes directly, or annotate //fitslint:ignore strcopy <reason>",
					pass.Pkg.Path())
				return true
			})
			// The inner Inspect already covered nested loops' bodies; walking
			// on would report each conversion once per enclosing loop.
			return false
		})
	}
	return nil
}

// mapIndexConversions collects the conversions appearing directly as a map
// index — `m[string(b)]` — which the compiler performs without allocating.
func mapIndexConversions(pass *analysis.Pass, file *ast.File) map[*ast.CallExpr]bool {
	exempt := map[*ast.CallExpr]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		idx, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		call, ok := idx.Index.(*ast.CallExpr)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.Types[idx.X].Type; t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				exempt[call] = true
			}
		}
		return true
	})
	// Map *assignment* is not optimized — the key is stored, so
	// `m[string(b)] = v` (and m[string(b)]++) does allocate. Un-exempt those.
	ast.Inspect(file, func(n ast.Node) bool {
		var lhs []ast.Expr
		switch st := n.(type) {
		case *ast.AssignStmt:
			lhs = st.Lhs
		case *ast.IncDecStmt:
			lhs = []ast.Expr{st.X}
		default:
			return true
		}
		for _, e := range lhs {
			if idx, ok := e.(*ast.IndexExpr); ok {
				if call, ok := idx.Index.(*ast.CallExpr); ok {
					delete(exempt, call)
				}
			}
		}
		return true
	})
	return exempt
}

// isBytesToString reports whether call is a type conversion from a []byte
// to a string (either may be a named type).
func isBytesToString(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || dst.Kind() != types.String {
		return false
	}
	return isByteSlice(pass.TypesInfo.Types[call.Args[0]].Type)
}

// isByteSlice reports whether t's underlying type is []byte.
func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
