package lint_test

import (
	"go/token"
	"strings"
	"testing"

	"fits/internal/lint"
	"fits/internal/lint/ctxflow"
	"fits/internal/lint/linttest"
	"fits/internal/lint/loader"
	"fits/internal/lint/lockguard"
	"fits/internal/lint/maporder"
	"fits/internal/lint/nondet"
	"fits/internal/lint/strcopy"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "testdata/src/maporder", "fits/internal/fixture/maporder")
}

func TestNondet(t *testing.T) {
	// The fixture impersonates a pure analysis package so the
	// determinism contract applies to it.
	linttest.Run(t, nondet.Analyzer, "testdata/src/nondet", "fits/internal/taint")
}

func TestStrcopy(t *testing.T) {
	// The fixture impersonates a pure analysis package so the hot-loop
	// copy rule applies to it.
	linttest.Run(t, strcopy.Analyzer, "testdata/src/strcopy", "fits/internal/dataflow")
}

func TestStrcopySilentOutsidePurePackages(t *testing.T) {
	linttest.Run(t, strcopy.Analyzer, "testdata/src/strcopyimpure", "fits/internal/server")
}

func TestNondetSilentOutsidePurePackages(t *testing.T) {
	linttest.Run(t, nondet.Analyzer, "testdata/src/nondetimpure", "fits/internal/server")
}

func TestCtxflow(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/src/ctxflow", "fits/internal/fixture/ctxflow")
}

func TestLockguard(t *testing.T) {
	linttest.Run(t, lockguard.Analyzer, "testdata/src/lockguard", "fits/internal/fixture/lockguard")
}

// TestDirectiveValidation checks that malformed //fitslint:ignore
// directives are themselves findings: no analyzer, unknown analyzer,
// missing reason.
func TestDirectiveValidation(t *testing.T) {
	pkg, err := loader.Check(token.NewFileSet(), "testdata/src/directives",
		"fits/internal/fixture/directives", []string{"a.go"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"malformed directive",
		`unknown analyzer "nosuchanalyzer"`,
		"suppression of maporder without a reason",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d findings, want %d: %v", len(diags), len(wants), diags)
	}
	for i, w := range wants {
		if diags[i].Analyzer != "fitslint" {
			t.Errorf("finding %d from %q, want pseudo-analyzer fitslint", i, diags[i].Analyzer)
		}
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("finding %d = %q, want substring %q", i, diags[i].Message, w)
		}
	}
}

// TestSuiteRegistration pins the suite: a new analyzer must be registered,
// tested, and documented.
func TestSuiteRegistration(t *testing.T) {
	var names []string
	for _, a := range lint.Analyzers() {
		names = append(names, a.Name)
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
	want := "ctxflow lockguard maporder nondet strcopy"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("registered analyzers %q, want %q", got, want)
	}
}
