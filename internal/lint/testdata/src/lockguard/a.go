// Fixture for the lockguard analyzer: locked access, the *Locked
// caller-holds-lock convention, closures under an enclosing lock, an
// unguarded access true positive, a broken annotation, and a reasoned
// suppression in a constructor.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu

	name string // immutable after construction; deliberately unannotated
}

// inc locks: clean.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// peek reads n with no lock.
func (c *counter) peek() int {
	return c.n // want `n is guarded by mu but this function neither locks mu`
}

// bumpLocked follows the caller-holds-lock naming convention: clean.
func (c *counter) bumpLocked() {
	c.n++
}

// apply accesses guarded state from a closure under the enclosing lock:
// clean.
func (c *counter) apply() {
	c.mu.Lock()
	defer c.mu.Unlock()
	func() {
		c.n += len(c.m)
	}()
}

// rename touches only unannotated state: clean.
func (c *counter) rename(s string) {
	c.name = s
}

// newCounter initializes guarded fields before the value is shared and
// documents that with a suppression.
func newCounter() *counter {
	c := &counter{m: map[string]int{}}
	//fitslint:ignore lockguard freshly allocated; no other goroutine can hold c yet
	c.n = 1
	return c
}

type bad struct {
	mu sync.Mutex
	// guarded by mux
	x int // want `annotated .guarded by mux. but the struct has no field mux`
}

// use keeps the declarations live.
func use(b *bad) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.x
}
