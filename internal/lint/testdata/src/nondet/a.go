// Fixture for the nondet analyzer, type-checked under the import path of a
// pure analysis package so the determinism contract applies.
package fixture

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock inside the pure core.
func Stamp() time.Time {
	return time.Now() // want `time\.Now in pure analysis package`
}

// Jitter draws randomness inside the pure core.
func Jitter() int {
	return rand.Int() // want `rand\.Int in pure analysis package`
}

// Env makes analysis output depend on the process environment.
func Env() string {
	return os.Getenv("FITS_DEBUG") // want `os\.Getenv in pure analysis package`
}

// Elapsed is deterministic arithmetic on injected values: clean.
func Elapsed(start, end time.Time) time.Duration {
	return end.Sub(start)
}

// Exiting through os is not an environment read: clean.
func Die() {
	os.Exit(2)
}

// DebugKnob documents why the read is harmless and suppresses the finding.
func DebugKnob() string {
	//fitslint:ignore nondet debug-only knob; value never reaches analysis output
	return os.Getenv("FITS_TRACE")
}
