// Fixture for directive validation: every fitslint:ignore here is
// malformed in a distinct way and must be reported by the pseudo-analyzer
// "fitslint".
package fixture

//fitslint:ignore

//fitslint:ignore nosuchanalyzer the analyzer name is wrong

//fitslint:ignore maporder

func f() {}
