// Fixture for the strcopy analyzer, type-checked under the import path of a
// pure analysis package so the hot-loop copy rule applies.
package fixture

// Collect copies every chunk inside the loop: flagged.
func Collect(chunks [][]byte) []string {
	var out []string
	for _, c := range chunks {
		out = append(out, string(c)) // want `string\(b\) copies its \[\]byte inside a loop`
	}
	return out
}

// Nested loops report the conversion once, not once per enclosing loop.
func Nested(rows [][][]byte) (n int) {
	for _, row := range rows {
		for _, c := range row {
			if string(c) == "tainted" { // want `string\(b\) copies its \[\]byte inside a loop`
				n++
			}
		}
	}
	return n
}

// Lookup uses the map-index idiom the compiler makes allocation-free: clean.
func Lookup(seen map[string]bool, chunks [][]byte) (n int) {
	for _, c := range chunks {
		if seen[string(c)] {
			n++
		}
	}
	return n
}

// Insert stores the key, which does allocate even in index position: flagged.
func Insert(seen map[string]bool, chunks [][]byte) {
	for _, c := range chunks {
		seen[string(c)] = true // want `string\(b\) copies its \[\]byte inside a loop`
	}
}

// Once converts outside any loop: clean (a per-binary copy is noise).
func Once(b []byte) string {
	return string(b)
}

// Runes converts from []rune, not []byte: clean.
func Runes(rs [][]rune) (out []string) {
	for _, r := range rs {
		out = append(out, string(r))
	}
	return out
}

// Owned documents why the copy is required and suppresses the finding.
func Owned(chunks [][]byte) (out []string) {
	for _, c := range chunks {
		//fitslint:ignore strcopy result outlives the decode buffer; the copy transfers ownership
		out = append(out, string(c))
	}
	return out
}
