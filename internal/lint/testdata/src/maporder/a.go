// Fixture for the maporder analyzer: true positives (append, output call,
// value return), clean negatives (sorted afterwards, constant-return
// membership probe, non-map range), and a reasoned suppression.
package fixture

import (
	"fmt"
	"sort"
)

// sortedKeys is the sanctioned pattern: collect, then sort.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unsortedKeys leaks map order into its return value.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration feeds an append but no sort follows`
		keys = append(keys, k)
	}
	return keys
}

// dump prints entries in map order.
func dump(m map[string]int) {
	for k, v := range m { // want `map iteration feeds an output call \(Println\)`
		fmt.Println(k, v)
	}
}

// anyKey returns whichever key iteration happened to surface first.
func anyKey(m map[string]int) string {
	for k := range m { // want `map iteration feeds a value return`
		return k
	}
	return ""
}

// hasNegative is a membership probe: the constant returns carry no order.
func hasNegative(m map[string]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// domainSorted relies on a Sort-prefixed helper, the taint.SortAlerts
// pattern.
func domainSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	SortKeys(keys)
	return keys
}

// SortKeys stands in for a domain ordering helper like taint.SortAlerts.
func SortKeys(keys []string) { sort.Strings(keys) }

// arraysAreOrdered: ranging over an array is deterministic, no finding.
func arraysAreOrdered(a [4]int) []int {
	var out []int
	for _, v := range a {
		out = append(out, v)
	}
	return out
}

// grouped appends into per-key slots indexed by the loop key: each slot's
// content is independent of iteration order, no finding.
func grouped(m map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range m {
		for _, v := range vs {
			out[k] = append(out[k], v+1)
		}
	}
	return out
}

// setUnion documents why order does not matter and suppresses the finding.
func setUnion(m map[string]int) []string {
	var keys []string
	//fitslint:ignore maporder consumer deduplicates into a set; order is irrelevant
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
