// Fixture proving strcopy stays silent outside the pure analysis packages:
// service-layer loops may copy freely.
package fixture

// Collect copies inside a loop, but this package is impure: clean.
func Collect(chunks [][]byte) []string {
	var out []string
	for _, c := range chunks {
		out = append(out, string(c))
	}
	return out
}
