// Fixture for the ctxflow analyzer, type-checked under an internal/ import
// path so the fresh-root rule applies.
package fixture

import "context"

// Analyze stands in for any context-accepting callee.
func Analyze(ctx context.Context, n int) error {
	return ctx.Err()
}

// Detach discards the ctx it was handed.
func Detach(ctx context.Context) error {
	return Analyze(context.Background(), 1) // want `context\.Background\(\) discards the ctx already in scope`
}

// Fire mints a fresh root inside a library package.
func Fire() {
	ctx := context.TODO() // want `context\.TODO\(\) in internal package`
	_ = ctx
}

// Thread passes the caller's context along: clean.
func Thread(ctx context.Context) error {
	return Analyze(ctx, 2)
}

// Spawn shows that closures inherit the enclosing ctx parameter.
func Spawn(ctx context.Context) {
	go func() {
		_ = Analyze(context.Background(), 3) // want `context\.Background\(\) discards the ctx already in scope`
	}()
}

// Derive builds on the given context: clean.
func Derive(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// Audit documents why a detached root is correct and suppresses the finding.
func Audit(ctx context.Context) error {
	//fitslint:ignore ctxflow audit record must be written even when the request is canceled
	bg := context.Background()
	return Analyze(bg, 4)
}
