// Fixture proving nondet stays silent outside the pure analysis packages:
// type-checked under a service-layer import path, these calls are fine.
package fixture

import (
	"os"
	"time"
)

// Uptime may read the clock in the service layer.
func Uptime(start time.Time) time.Duration {
	return time.Now().Sub(start)
}

// ListenAddr may read the environment in the service layer.
func ListenAddr() string {
	return os.Getenv("FITSD_LISTEN")
}
