// Package maporder flags `for range` iteration over a map whose body feeds
// an order-sensitive sink (append, channel send, value return, or a
// write/print/encode call) with no subsequent ordering call in the same
// function.
//
// This is the bug class PR 1 chased through internal/cfg's jump-table
// resolution and PR 3 re-fixed with taint.SortAlerts: Go randomizes map
// iteration order per run, so any output derived from an unsorted map walk
// breaks the pipeline's byte-identical-results guarantee.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"fits/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags map iteration feeding an append/return/output path without a " +
		"subsequent sort.*, slices.Sort*, or Sort-prefixed ordering call in the same function",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc inspects one function scope. Nested function literals are
// treated as part of the enclosing scope: a sort performed in or around a
// closure still orders the closure's output, and closures rarely deserve a
// scope of their own for this invariant.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.TypeOf(rs.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				ranges = append(ranges, rs)
			}
		}
		return true
	})
	for _, rs := range ranges {
		sink := orderSensitiveSink(pass, rs)
		if sink == "" {
			continue
		}
		if hasOrderingCallAfter(pass, body, rs) {
			continue
		}
		pass.Reportf(rs.For,
			"map iteration feeds %s but no sort follows in this function; map order is nondeterministic (sort the output or annotate //fitslint:ignore maporder <reason>)",
			sink)
	}
}

// orderSensitiveSink reports the first construct in the loop body whose
// result depends on iteration order, or "" if none. Map and set inserts are
// deliberately not sinks: writing m2[k] = v per key is order-independent,
// and for the same reason appends into a map slot indexed by the loop key
// (out[k] = append(out[k], ...)) are exempt.
func orderSensitiveSink(pass *analysis.Pass, rs *ast.RangeStmt) string {
	sink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && obj.Name() == "append" && !keyedByLoopVar(pass, rs, n) {
						sink = "an append"
					}
				}
			case *ast.SelectorExpr:
				if isOutputName(fun.Sel.Name) {
					sink = "an output call (" + fun.Sel.Name + ")"
				}
			}
		case *ast.SendStmt:
			sink = "a channel send"
		case *ast.ReturnStmt:
			// A return of compile-time constants (`return true` in a
			// membership probe) is order-independent; anything else that
			// escapes mid-iteration depends on which key came up first.
			for _, res := range n.Results {
				if tv, ok := pass.TypesInfo.Types[res]; !ok || tv.Value == nil {
					sink = "a value return"
					break
				}
			}
		}
		return sink == ""
	})
	return sink
}

// keyedByLoopVar reports whether an append call's destination is an index
// expression keyed by the range statement's key variable: each iteration
// then extends a distinct per-key slot, so iteration order cannot show.
func keyedByLoopVar(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) bool {
	keyIdent, ok := rs.Key.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return false
	}
	keyObj := pass.TypesInfo.Defs[keyIdent]
	if keyObj == nil {
		keyObj = pass.TypesInfo.Uses[keyIdent] // `for k = range m` over a pre-declared k
	}
	if keyObj == nil {
		return false
	}
	idx, ok := call.Args[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	used, ok := idx.Index.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[used] == keyObj
}

// isOutputName matches method/function names that emit bytes in call order.
func isOutputName(name string) bool {
	for _, prefix := range []string{"Print", "Fprint", "Write", "Encode", "Sprint"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// hasOrderingCallAfter reports whether the function body contains, at or
// after the range statement, a call that imposes an order: anything from
// package sort, slices.Sort*, or any callee whose name begins with
// Sort/sort (taint.SortAlerts, local sortKeys helpers, ...).
func hasOrderingCallAfter(pass *analysis.Pass, body *ast.BlockStmt, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.Pos() {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if pkg, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName); ok {
					switch pn.Imported().Path() {
					case "sort":
						found = true
					case "slices":
						found = strings.HasPrefix(fun.Sel.Name, "Sort")
					}
				}
			}
			if isSortName(fun.Sel.Name) {
				found = true
			}
		case *ast.Ident:
			if isSortName(fun.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isSortName(name string) bool {
	return strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "sort")
}
