// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis driver contract. The repo vendors no
// third-party modules, so fitslint's analyzers are written against this
// stdlib-only shim instead; the API mirrors x/tools closely enough that an
// analyzer body could be moved there unchanged if the dependency ever
// lands.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant check. Run inspects a single package via
// the Pass and reports findings through Pass.Report; it must not retain the
// Pass after returning.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //fitslint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph invariant statement shown by `fitslint -help`.
	Doc string

	// Run applies the analyzer to one type-checked package.
	Run func(*Pass) error
}

// Pass is the interface between the driver and one analyzer applied to one
// package: the syntax, the type information, and the report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test files only, in file-name order
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns suppression
	// (//fitslint:ignore) and ordering; analyzers just report.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
