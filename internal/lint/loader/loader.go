// Package loader turns `go list` package patterns into parsed, type-checked
// packages for fitslint's analyzers, using only the standard library.
//
// x/tools' go/packages is not vendored, so the loader reimplements the
// relevant slice of it: one `go list -json` invocation enumerates the target
// packages, a second `go list -export -deps -json` invocation makes the go
// tool produce compiled export data for every dependency (stdlib included —
// modern toolchains ship no pre-built .a files), and go/types checks each
// target's source against that export data through the stdlib gc importer's
// lookup hook. Both invocations are offline: the module has no external
// requirements.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // non-test files, in GoFiles order
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
}

// Load expands the patterns relative to dir (the module root), then parses
// and type-checks every matched package. Test files are not loaded: the
// invariants fitslint encodes are about shipped analysis code, and several
// analyzers (ctxflow, nondet) explicitly exempt tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports, err := ExportData(dir, patterns...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookupIn(exports))
	var out []*Package
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// ExportData returns importpath -> export-data file for every dependency of
// the given patterns (and the patterns themselves), building the export
// files through the go tool's cache as a side effect.
func ExportData(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := goList(dir, append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Check parses and type-checks one directory of Go files as importPath,
// resolving imports through the export map. It backs both Load and the
// linttest fixture harness.
func Check(fset *token.FileSet, dir, importPath string, goFiles []string, exports map[string]string) (*Package, error) {
	imp := importer.ForCompiler(fset, "gc", lookupIn(exports))
	return check(fset, imp, listedPackage{ImportPath: importPath, Dir: dir, GoFiles: goFiles})
}

func check(fset *token.FileSet, imp types.Importer, t listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewInfo allocates the types.Info maps every analyzer relies on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// lookupIn adapts an export map to the gc importer's lookup signature. The
// importer special-cases "unsafe" itself and resolves transitive references
// through the same hook, so -deps coverage is sufficient.
func lookupIn(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in the -deps closure)", path)
		}
		return os.Open(file)
	}
}

// goList runs the go tool in dir and decodes its JSON package stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
