// Package linttest is a small analysistest-style fixture harness for the
// fitslint analyzers: it type-checks one testdata directory as a package
// with a caller-chosen import path, runs a single analyzer (including the
// //fitslint:ignore directive machinery), and diffs the findings against
// `// want "regexp"` comments in the fixture source.
//
// The chosen import path matters: nondet and ctxflow condition on it, so a
// fixture can impersonate fits/internal/taint to exercise the pure-package
// rules without touching real analysis code.
package linttest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"fits/internal/lint"
	"fits/internal/lint/analysis"
	"fits/internal/lint/loader"
)

// expectation is one `// want` annotation.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run checks every .go file in dir as a package named importPath with a
// single analyzer and asserts the findings equal the fixture's // want
// annotations.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}

	exports, err := loader.ExportData(dir, fixtureImports(t, dir, goFiles)...)
	if err != nil {
		t.Fatalf("linttest: export data: %v", err)
	}
	pkg, err := loader.Check(token.NewFileSet(), dir, importPath, goFiles, exports)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	diags, err := lint.RunAnalyzer(pkg, a)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	wants := parseWants(t, pkg)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// fixtureImports collects the distinct import paths of the fixture files so
// the harness only asks the go tool for export data it actually needs.
func fixtureImports(t *testing.T, dir string, goFiles []string) []string {
	t.Helper()
	seen := map[string]bool{}
	fset := token.NewFileSet()
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		for _, im := range f.Imports {
			p, err := strconv.Unquote(im.Path.Value)
			if err != nil {
				t.Fatalf("linttest: %v", err)
			}
			seen[p] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// wantArgRe matches one double-quoted or backquoted want pattern.
var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts `// want "rx" ["rx" ...]` annotations from the
// fixture comments; each annotation expects a finding on its own line.
func parseWants(t *testing.T, pkg *loader.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRe.FindAllString(text[len("want "):], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, q := range args {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					rx, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

// claim marks the first unmatched expectation covering d and reports
// whether one existed.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
