// Package ctxflow enforces context threading: a function that receives a
// context.Context must not mint a fresh root with context.Background() or
// context.TODO() — doing so silently detaches the callee from cancellation,
// which is exactly how the pre-PR-3 pipeline leaked goroutines past
// Shutdown. Additionally, inside internal/ packages (outside tests) fresh
// context roots are flagged wherever they appear: roots belong to the
// binaries in cmd/, which own process lifetime; library code derives.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"fits/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background()/TODO() inside functions that already receive a ctx, " +
		"and any fresh context root in internal/ packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	internal := strings.Contains(pass.Pkg.Path(), "internal/")
	for _, file := range pass.Files {
		walk(pass, file, internal, false)
	}
	return nil
}

// walk descends the AST keeping track of whether any lexically enclosing
// function has a context.Context parameter (closures inherit the flag: the
// ctx is still in scope for them).
func walk(pass *analysis.Pass, n ast.Node, internal, ctxInScope bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				walk(pass, n.Body, internal, ctxInScope || hasCtxParam(pass, n.Type))
			}
			return false
		case *ast.FuncLit:
			walk(pass, n.Body, internal, ctxInScope || hasCtxParam(pass, n.Type))
			return false
		case *ast.CallExpr:
			name, ok := contextRootCall(pass, n)
			if !ok {
				return true
			}
			switch {
			case ctxInScope:
				pass.Reportf(n.Pos(),
					"context.%s() discards the ctx already in scope; thread the caller's context (or annotate //fitslint:ignore ctxflow <reason>)",
					name)
			case internal:
				pass.Reportf(n.Pos(),
					"context.%s() in internal package %s; library code derives from a caller-provided context — roots belong to cmd/ binaries (or annotate //fitslint:ignore ctxflow <reason>)",
					name, pass.Pkg.Path())
			}
		}
		return true
	})
}

// contextRootCall reports whether call is context.Background() or
// context.TODO(), resolved through the type checker so local packages named
// "context" cannot confuse it.
func contextRootCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}

// hasCtxParam reports whether the signature declares a context.Context
// parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}
