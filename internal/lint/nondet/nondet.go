// Package nondet flags calls that introduce run-to-run nondeterminism —
// wall-clock reads, math/rand, environment lookups — inside the pure
// analysis packages whose results must be byte-identical across runs.
//
// The FITS pipeline's cache-equivalence and determinism guarantees (see
// cache_equivalence_test.go and parallel_test.go) hold only if the analysis
// core is a pure function of its input bytes. Service and CLI layers may
// read clocks and environments; internal/{cfg,dataflow,ir,bfv,infer,
// cluster,score,taint,karonte,ucse} may not.
package nondet

import (
	"go/ast"
	"go/types"

	"fits/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc: "flags time.Now/Since/Until, math/rand, and os environment reads inside pure " +
		"analysis packages whose output must be byte-identical across runs",
	Run: run,
}

// purePackages are the import paths under the determinism contract.
// TestPureListCoversTaintImports keeps this in sync with the analysis
// packages internal/taint pulls in: a new pure dependency must be added
// here or the determinism lint silently stops covering it.
var purePackages = map[string]bool{
	"fits/internal/cfg":       true,
	"fits/internal/dataflow":  true,
	"fits/internal/ir":        true,
	"fits/internal/bfv":       true,
	"fits/internal/infer":     true,
	"fits/internal/cluster":   true,
	"fits/internal/score":     true,
	"fits/internal/taint":     true,
	"fits/internal/karonte":   true,
	"fits/internal/ucse":      true,
	"fits/internal/alias":     true,
	"fits/internal/pathcheck": true,
}

// PurePackages exposes the contract list for the sync self-test.
func PurePackages() map[string]bool {
	out := make(map[string]bool, len(purePackages))
	for k, v := range purePackages {
		out[k] = v
	}
	return out
}

// banned maps import path -> function names that taint determinism. An
// empty set bans every function in the package.
var banned = map[string]map[string]bool{
	"time":         {"Now": true, "Since": true, "Until": true},
	"math/rand":    {},
	"math/rand/v2": {},
	"os":           {"Getenv": true, "LookupEnv": true, "Environ": true},
}

func run(pass *analysis.Pass) error {
	if !purePackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			names, ok := banned[path]
			if !ok || (len(names) > 0 && !names[sel.Sel.Name]) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s in pure analysis package %s; results must be byte-identical across runs (inject the value from the caller or annotate //fitslint:ignore nondet <reason>)",
				pkg.Name, sel.Sel.Name, pass.Pkg.Path())
			return true
		})
	}
	return nil
}
