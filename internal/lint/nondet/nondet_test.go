package nondet

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// supportPackages are fits/internal packages internal/taint may import
// without being on the determinism contract: data carriers and tables with
// no analysis logic of their own. Adding an import to internal/taint that
// is in neither this set nor purePackages fails the sync test below, which
// forces the decision to be made explicitly instead of a new analysis pass
// silently escaping the nondet lint.
var supportPackages = map[string]bool{
	"fits/internal/binimg": true, // decoded binary image (data carrier)
	"fits/internal/isa":    true, // instruction tables
	"fits/internal/know":   true, // sink/source knowledge base
}

// taintImports parses the import lists of every non-test source file of
// internal/taint, without building the package.
func taintImports(t *testing.T) map[string]bool {
	t.Helper()
	dir := filepath.Join("..", "..", "taint")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	out := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("import path %s: %v", imp.Path.Value, err)
			}
			out[path] = true
		}
	}
	if len(out) == 0 {
		t.Fatal("no imports found in internal/taint")
	}
	return out
}

// TestPureListCoversTaintImports fails when internal/taint imports a
// fits/internal package that is neither on the determinism contract
// (purePackages) nor an acknowledged support package.
func TestPureListCoversTaintImports(t *testing.T) {
	pure := PurePackages()
	for path := range taintImports(t) {
		if !strings.HasPrefix(path, "fits/internal/") {
			continue
		}
		if !pure[path] && !supportPackages[path] {
			t.Errorf("internal/taint imports %s, which is neither in the nondet purePackages list nor an acknowledged support package; add it to one", path)
		}
	}
}

// TestPureListContainsPrecisionPasses pins the two precision passes to the
// contract: they feed byte-stable reports and must never read clocks.
func TestPureListContainsPrecisionPasses(t *testing.T) {
	pure := PurePackages()
	for _, path := range []string{"fits/internal/alias", "fits/internal/pathcheck"} {
		if !pure[path] {
			t.Errorf("%s missing from the nondet purePackages list", path)
		}
	}
}
