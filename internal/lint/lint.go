// Package lint assembles the fitslint analyzer suite: it registers the
// individual analyzers, runs them over loaded packages, and implements the
// //fitslint:ignore suppression directive.
//
// Directive syntax, checked at lint time:
//
//	//fitslint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The reason
// is mandatory — a suppression without a recorded justification is itself a
// finding — and naming an unknown analyzer is too, so directives cannot rot
// silently.
package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"fits/internal/lint/analysis"
	"fits/internal/lint/ctxflow"
	"fits/internal/lint/loader"
	"fits/internal/lint/lockguard"
	"fits/internal/lint/maporder"
	"fits/internal/lint/nondet"
	"fits/internal/lint/strcopy"
)

// Analyzers returns the registered suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		lockguard.Analyzer,
		maporder.Analyzer,
		nondet.Analyzer,
		strcopy.Analyzer,
	}
}

// Diagnostic is one reported finding with its position resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// RunPackage applies every analyzer to pkg, filters suppressed findings,
// and returns the rest sorted by position. Malformed suppression
// directives are appended as findings of the pseudo-analyzer "fitslint".
func RunPackage(pkg *loader.Package) ([]Diagnostic, error) {
	return runAnalyzers(pkg, Analyzers())
}

// RunAnalyzer applies a single analyzer (plus directive validation) to pkg;
// the linttest fixture harness uses it to test analyzers in isolation.
func RunAnalyzer(pkg *loader.Package, a *analysis.Analyzer) ([]Diagnostic, error) {
	return runAnalyzers(pkg, []*analysis.Analyzer{a})
}

func runAnalyzers(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	sup, diags := parseDirectives(pkg, analyzers)
	for _, a := range analyzers {
		var raw []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
		}
		for _, d := range raw {
			pos := pkg.Fset.Position(d.Pos)
			if sup.matches(a.Name, pos) {
				continue
			}
			diags = append(diags, Diagnostic{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppressions records, per analyzer, the file:line locations covered by a
// valid //fitslint:ignore directive.
type suppressions map[string]map[string]map[int]bool // analyzer -> file -> line

// matches reports whether a diagnostic at pos is covered: the directive
// sits on the flagged line (trailing comment) or the line directly above.
func (s suppressions) matches(analyzer string, pos token.Position) bool {
	lines := s[analyzer][pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

var directiveRe = regexp.MustCompile(`^//fitslint:ignore(?:\s+(\S+))?(?:\s+(\S.*))?$`)

// parseDirectives scans every comment for fitslint:ignore directives,
// returning the suppression index plus findings for malformed ones
// (missing analyzer, missing reason, unknown analyzer name).
func parseDirectives(pkg *loader.Package, analyzers []*analysis.Analyzer) (suppressions, []Diagnostic) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup := suppressions{}
	var bad []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Diagnostic{Analyzer: "fitslint", Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//fitslint:ignore") {
					continue
				}
				m := directiveRe.FindStringSubmatch(c.Text)
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case m == nil || m[1] == "":
					report(pos, "malformed directive %q: want //fitslint:ignore <analyzer> <reason>", c.Text)
				case !known[m[1]]:
					report(pos, "directive names unknown analyzer %q", m[1])
				case m[2] == "":
					report(pos, "suppression of %s without a reason; state why the invariant holds", m[1])
				default:
					byFile := sup[m[1]]
					if byFile == nil {
						byFile = map[string]map[int]bool{}
						sup[m[1]] = byFile
					}
					lines := byFile[pos.Filename]
					if lines == nil {
						lines = map[int]bool{}
						byFile[pos.Filename] = lines
					}
					lines[pos.Line] = true
				}
			}
		}
	}
	return sup, bad
}
