// Package lockguard machine-checks the "guarded by" comments the repo
// already writes by hand: a struct field annotated `// guarded by mu` may
// only be read or written inside a function that locks that mutex (mu.Lock
// or mu.RLock, possibly in an enclosing function for closures), or inside a
// function following the *Locked naming convention, which documents that
// the caller holds the lock.
//
// This is the invariant behind the PR 1 race in the ucse resolver caches:
// the comment said "guarded by mu", the code path added later didn't lock.
// Comments don't fail CI; this analyzer does.
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"fits/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "flags access to a struct field annotated `guarded by <mu>` from a function that " +
		"neither locks <mu> nor is named *Locked (caller-holds-lock convention)",
	Run: run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	locks := map[ast.Node]map[string]bool{} // function node -> mutex names it locks
	for _, file := range pass.Files {
		checkNode(pass, file, guarded, locks, nil)
	}
	return nil
}

// collectGuardedFields maps each annotated field object to the name of the
// mutex that guards it. The mutex must be a field of the same struct;
// annotations pointing at a nonexistent field are themselves reported, so a
// typo cannot silently disable the check.
func collectGuardedFields(pass *analysis.Pass) map[*types.Var]string {
	guarded := map[*types.Var]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]bool{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				mu := annotation(f)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(f.Pos(), "field is annotated `guarded by %s` but the struct has no field %s", mu, mu)
					continue
				}
				for _, name := range f.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[v] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// annotation extracts the guarded-by mutex name from a field's doc or line
// comment.
func annotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkNode walks the AST carrying the stack of enclosing function nodes,
// reporting guarded-field accesses made with no enclosing lock.
func checkNode(pass *analysis.Pass, n ast.Node, guarded map[*types.Var]string, locks map[ast.Node]map[string]bool, stack []ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				checkNode(pass, n.Body, guarded, locks, append(stack, n))
			}
			return false
		case *ast.FuncLit:
			checkNode(pass, n.Body, guarded, locks, append(stack, n))
			return false
		case *ast.SelectorExpr:
			selInfo, ok := pass.TypesInfo.Selections[n]
			if !ok {
				return true
			}
			fieldVar, ok := selInfo.Obj().(*types.Var)
			if !ok {
				return true
			}
			mu, ok := guarded[fieldVar]
			if !ok {
				return true
			}
			if !holdsLock(pass, mu, locks, stack) {
				pass.Reportf(n.Sel.Pos(),
					"%s is guarded by %s but this function neither locks %s nor follows the *Locked naming convention (//fitslint:ignore lockguard <reason> if the lock is provably held)",
					n.Sel.Name, mu, mu)
			}
		}
		return true
	})
}

// holdsLock reports whether any enclosing function locks mu or is exempt by
// the *Locked suffix convention.
func holdsLock(pass *analysis.Pass, mu string, locks map[ast.Node]map[string]bool, stack []ast.Node) bool {
	for _, fn := range stack {
		if d, ok := fn.(*ast.FuncDecl); ok && strings.HasSuffix(d.Name.Name, "Locked") {
			return true
		}
		set, ok := locks[fn]
		if !ok {
			set = lockCalls(fn)
			locks[fn] = set
		}
		if set[mu] {
			return true
		}
	}
	return false
}

// lockCalls scans one function node for `<...>.<mu>.Lock()` / `.RLock()`
// calls and returns the set of mutex names locked anywhere inside it
// (including nested closures — a lock taken before spawning a closure is
// the closure author's responsibility, which the coarse scope errs
// permissive on).
func lockCalls(fn ast.Node) map[string]bool {
	set := map[string]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			set[x.Name] = true
		case *ast.SelectorExpr:
			set[x.Sel.Name] = true
		}
		return true
	})
	return set
}
