package pathcheck

import (
	"strings"
	"testing"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/isa"
	"fits/internal/minic"
	"fits/internal/ucse"
)

func buildModel(t *testing.T, p *minic.Program) (*binimg.Binary, *cfg.Model) {
	t.Helper()
	bin, err := minic.Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cfg.Build(bin, cfg.Options{Resolver: ucse.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	return bin, m
}

func funcByName(t *testing.T, bin *binimg.Binary, m *cfg.Model, name string) *cfg.Function {
	t.Helper()
	for _, s := range bin.Funcs {
		if s.Name == name {
			if f, ok := m.FuncAt(s.Addr); ok {
				return f
			}
		}
	}
	t.Fatalf("function %q not found", name)
	return nil
}

// sinkSite finds the call site of the named import inside fn.
func sinkSite(t *testing.T, fn *cfg.Function, name string) uint32 {
	t.Helper()
	for _, cs := range fn.Calls {
		if cs.ImportName == name {
			return cs.Addr
		}
	}
	t.Fatalf("no %s call in %s", name, fn.Name)
	return 0
}

// guarded builds: v = strlen(g); if (v < hi) { if (v >= lo) { system(v) } }.
// With lo > hi-1 the sink's path condition is an empty interval.
func guarded(hi, lo int32) *minic.Program {
	return &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "g", Size: 16}},
		Funcs: []*minic.Func{
			{Name: "h", Body: []minic.Stmt{
				minic.Let{Name: "v", E: minic.Call{Name: "strlen", Args: []minic.Expr{minic.GlobalRef("g")}}},
				minic.If{Cond: minic.Cond{Op: minic.Lt, L: minic.Var("v"), R: minic.Int(hi)}, Then: []minic.Stmt{
					minic.If{Cond: minic.Cond{Op: minic.Ge, L: minic.Var("v"), R: minic.Int(lo)}, Then: []minic.Stmt{
						minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{minic.Var("v")}}},
					}},
				}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
}

func TestRefutesContradictoryInterval(t *testing.T) {
	bin, m := buildModel(t, guarded(4, 100)) // v < 4 && v >= 100
	fn := funcByName(t, bin, m, "h")
	r := Check(bin, fn, sinkSite(t, fn, "system"))
	if !r.Infeasible {
		t.Fatal("contradictory guards not refuted")
	}
	if !strings.Contains(r.Refuted, "contradicts") {
		t.Errorf("refutation %q does not name the contradicting pair", r.Refuted)
	}
}

func TestKeepsFeasibleInterval(t *testing.T) {
	bin, m := buildModel(t, guarded(4, 1)) // v in [1,3]: satisfiable
	fn := funcByName(t, bin, m, "h")
	if r := Check(bin, fn, sinkSite(t, fn, "system")); r.Infeasible {
		t.Fatalf("feasible guards refuted: %q", r.Refuted)
	}
}

// TestRefutesEqualityDisequality covers the solver's notEq channel:
// v == 0 pinned, then v != 0 required.
func TestRefutesEqualityDisequality(t *testing.T) {
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "g", Size: 16}},
		Funcs: []*minic.Func{
			{Name: "h", Body: []minic.Stmt{
				minic.Let{Name: "v", E: minic.Call{Name: "strlen", Args: []minic.Expr{minic.GlobalRef("g")}}},
				minic.If{Cond: minic.Cond{Op: minic.Eq, L: minic.Var("v"), R: minic.Int(0)}, Then: []minic.Stmt{
					minic.If{Cond: minic.Cond{Op: minic.Ne, L: minic.Var("v"), R: minic.Int(0)}, Then: []minic.Stmt{
						minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{minic.Var("v")}}},
					}},
				}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
	bin, m := buildModel(t, p)
	fn := funcByName(t, bin, m, "h")
	r := Check(bin, fn, sinkSite(t, fn, "system"))
	if !r.Infeasible {
		t.Fatal("v == 0 then v != 0 not refuted")
	}
}

// TestCallBetweenGuardsDropsIdentity: an intervening call may rewrite the
// guarded variable's memory slot, so its reloaded value must get a fresh
// identity and the "contradiction" must NOT be reported — the pass leans
// feasible wherever tracking is lost.
func TestCallBetweenGuardsDropsIdentity(t *testing.T) {
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "g", Size: 16}},
		Funcs: []*minic.Func{
			{Name: "h", Body: []minic.Stmt{
				minic.Let{Name: "v", E: minic.Call{Name: "strlen", Args: []minic.Expr{minic.GlobalRef("g")}}},
				minic.If{Cond: minic.Cond{Op: minic.Lt, L: minic.Var("v"), R: minic.Int(4)}, Then: []minic.Stmt{
					minic.ExprStmt{E: minic.Call{Name: "reset", Args: []minic.Expr{minic.GlobalRef("g")}}},
					minic.If{Cond: minic.Cond{Op: minic.Ge, L: minic.Var("v"), R: minic.Int(100)}, Then: []minic.Stmt{
						minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{minic.Var("v")}}},
					}},
				}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
	bin, m := buildModel(t, p)
	fn := funcByName(t, bin, m, "h")
	if r := Check(bin, fn, sinkSite(t, fn, "system")); r.Infeasible {
		t.Fatalf("refuted across a memory clobber: %q", r.Refuted)
	}
}

func TestNilFunctionFeasible(t *testing.T) {
	if r := Check(nil, nil, 0x100); r.Infeasible {
		t.Error("nil function refuted")
	}
}
