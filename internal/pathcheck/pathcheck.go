// Package pathcheck decides, per alert, whether any execution path from
// the function entry to the sink call can satisfy every branch condition
// it must pass — sink-to-source constraint backtracking without an SMT
// dependency. It walks the sink block's dominator chain with the UCSE
// symbolic evaluator, and at every dominator whose conditional branch has
// exactly one sink-reaching side it records the condition with the
// polarity the sink requires. A small interval/disequality solver over the
// collected conditions then looks for a contradiction; one refutes the
// alert, and the contradicting pair is rendered into the alert for
// explainability.
//
// The pass must only ever discard alerts that are genuinely dead, so every
// approximation leans toward "feasible": registers and memory are havocked
// across calls, syscalls, untracked stores and any control-flow edge that
// is not the unique direct edge between consecutive dominators; values
// containing symbolic-address loads are never constrained (their identity
// would not survive a clobber); and budget exhaustion returns feasible.
package pathcheck

import (
	"fmt"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/ir"
	"fits/internal/ucse"
)

// Budgets: dominator chains longer than maxChain are not walked, and no
// more than maxConstraints conditions are collected. Exceeding either
// leaves the alert feasible.
const (
	maxChain       = 128
	maxConstraints = 64
)

// Result is the feasibility verdict for one sink site.
type Result struct {
	// Infeasible is set when the collected path condition is
	// unsatisfiable; Refuted then renders the contradicting constraints.
	Infeasible bool
	Refuted    string
}

// Check analyzes the path condition of the sink call at site inside fn.
func Check(bin *binimg.Binary, fn *cfg.Function, site uint32) Result {
	if fn == nil || fn.ImportStub {
		return Result{}
	}
	sink := blockContaining(fn, site)
	if sink == 0 && fn.Entry != 0 {
		return Result{}
	}
	idom := cfg.Dominators(fn)
	chain := dominatorChain(fn, idom, sink)
	if chain == nil || len(chain) > maxChain {
		return Result{}
	}
	preds := predecessors(fn)
	reach := reachesSet(fn, preds, sink)

	st := ucse.NewSymState(bin)
	sol := newSolver()
	for i, ba := range chain {
		if ba == sink {
			break
		}
		blk := fn.Blocks[ba]
		if blk == nil {
			return Result{}
		}
		// State carries over from the previous dominator only along its
		// unique direct edge; any other join or back edge may have run
		// arbitrary code first.
		if i > 0 && !uniqueDirectEdge(fn, preds, chain[i-1], ba) {
			st.HavocAll()
		}
		exits := 0
		var cond ucse.SVal
		var taken uint32
		for _, irb := range blk.IR {
			for _, s := range irb.Stmts {
				if x, ok := s.(*ir.Exit); ok {
					exits++
					taken = x.Target
					cond = st.Eval(x.Cond)
					continue
				}
				if st.Step(s) {
					st.HavocMemory()
				}
			}
		}
		// A dominator constrains the path only when it branches two ways
		// and exactly one side can still reach the sink.
		if exits != 1 || len(blk.Succs) != 2 {
			continue
		}
		fall := blk.Succs[0]
		if fall == taken {
			fall = blk.Succs[1]
		}
		if fall == taken || (blk.Succs[0] != taken && blk.Succs[1] != taken) {
			continue
		}
		if reach[taken] == reach[fall] {
			continue
		}
		if !sol.add(ba, cond, reach[taken]) {
			return Result{Infeasible: true, Refuted: sol.refuted}
		}
	}
	return Result{}
}

// blockContaining returns the start of the block whose instruction range
// covers addr, or 0.
func blockContaining(fn *cfg.Function, addr uint32) uint32 {
	for _, ba := range fn.Order {
		blk := fn.Blocks[ba]
		if blk != nil && addr >= blk.Start && addr < blk.End() {
			return ba
		}
	}
	return 0
}

// dominatorChain returns entry..sink along immediate dominators, or nil
// when the sink block is not connected to the entry in the dominator tree.
func dominatorChain(fn *cfg.Function, idom map[uint32]uint32, sink uint32) []uint32 {
	var rev []uint32
	for b := sink; ; {
		rev = append(rev, b)
		if b == fn.Entry {
			break
		}
		p, ok := idom[b]
		if !ok || p == b || len(rev) > maxChain {
			return nil
		}
		b = p
	}
	chain := make([]uint32, len(rev))
	for i, b := range rev {
		chain[len(rev)-1-i] = b
	}
	return chain
}

// predecessors maps each block to its in-function predecessors.
func predecessors(fn *cfg.Function) map[uint32][]uint32 {
	preds := map[uint32][]uint32{}
	for _, ba := range fn.Order {
		for _, s := range fn.Blocks[ba].Succs {
			if _, ok := fn.Blocks[s]; ok {
				preds[s] = append(preds[s], ba)
			}
		}
	}
	return preds
}

// reachesSet returns the set of blocks from which the sink block is
// reachable, the sink itself included.
func reachesSet(fn *cfg.Function, preds map[uint32][]uint32, sink uint32) map[uint32]bool {
	reach := map[uint32]bool{sink: true}
	work := []uint32{sink}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range preds[b] {
			if !reach[p] {
				reach[p] = true
				work = append(work, p)
			}
		}
	}
	return reach
}

// uniqueDirectEdge reports whether cur's only predecessor is prev and prev
// branches directly to it — the one shape where prev's exit state is
// exactly cur's entry state.
func uniqueDirectEdge(fn *cfg.Function, preds map[uint32][]uint32, prev, cur uint32) bool {
	if len(preds[cur]) != 1 || preds[cur][0] != prev {
		return false
	}
	for _, s := range fn.Blocks[prev].Succs {
		if s == cur {
			return true
		}
	}
	return false
}

// solver accumulates branch constraints as signed 32-bit intervals plus
// disequalities per symbolic variable, detecting contradictions as they
// arrive. Variables are identified by their deterministic rendering.
type solver struct {
	vars    map[string]*bounds
	n       int
	refuted string
}

type bounds struct {
	lo, hi       int64
	loWhy, hiWhy string
	notEq        map[int64]string
}

func newSolver() *solver {
	return &solver{vars: map[string]*bounds{}}
}

func (s *solver) boundsFor(key string) *bounds {
	b, ok := s.vars[key]
	if !ok {
		b = &bounds{lo: -1 << 31, hi: 1<<31 - 1, notEq: map[int64]string{}}
		s.vars[key] = b
	}
	return b
}

// add records that cond must evaluate to want at block blk on every
// sink-reaching path. It returns false on contradiction with the
// constraints already collected, leaving the rendered refutation in
// s.refuted. Conditions the solver cannot represent constrain nothing.
func (s *solver) add(blk uint32, cond ucse.SVal, want bool) bool {
	if s.n >= maxConstraints {
		return true
	}
	s.n++
	switch c := cond.(type) {
	case ucse.SConst:
		if (c.V != 0) != want {
			s.refuted = fmt.Sprintf("0x%x: branch condition is constant %d but the sink needs %v", blk, c.V, want)
			return false
		}
		return true
	case ucse.SBin:
		op, l, r := c.Op, c.L, c.R
		if !want {
			switch op {
			case ir.CmpLT:
				op = ir.CmpGE
			case ir.CmpGE:
				op = ir.CmpLT
			case ir.CmpEQ:
				op = ir.CmpNE
			case ir.CmpNE:
				op = ir.CmpEQ
			default:
				return true
			}
		}
		lc, lok := l.(ucse.SConst)
		rc, rok := r.(ucse.SConst)
		switch {
		case rok && !lok:
			return s.apply(blk, l, op, int64(int32(rc.V)), false)
		case lok && !rok:
			return s.apply(blk, r, op, int64(int32(lc.V)), true)
		}
	}
	return true
}

// apply narrows the interval of variable v with "v op c" (or "c op v" when
// flipped). Signed 32-bit comparison semantics match the IR's.
func (s *solver) apply(blk uint32, v ucse.SVal, op ir.BinOp, c int64, flipped bool) bool {
	if ucse.HasLoad(v) {
		return true
	}
	key := ucse.Render(v)
	b := s.boundsFor(key)
	why := func(rel string, val int64) string {
		return fmt.Sprintf("0x%x: %s %s %d", blk, key, rel, val)
	}
	setLo := func(val int64, src string) {
		if val > b.lo {
			b.lo, b.loWhy = val, src
		}
	}
	setHi := func(val int64, src string) {
		if val < b.hi {
			b.hi, b.hiWhy = val, src
		}
	}
	switch op {
	case ir.CmpLT:
		if flipped { // c < v
			setLo(c+1, why(">=", c+1))
		} else { // v < c
			setHi(c-1, why("<=", c-1))
		}
	case ir.CmpGE:
		if flipped { // c >= v
			setHi(c, why("<=", c))
		} else { // v >= c
			setLo(c, why(">=", c))
		}
	case ir.CmpEQ:
		src := why("==", c)
		setLo(c, src)
		setHi(c, src)
	case ir.CmpNE:
		if _, ok := b.notEq[c]; !ok {
			b.notEq[c] = why("!=", c)
		}
	default:
		return true
	}
	if b.lo > b.hi {
		s.refuted = b.loWhy + " contradicts " + b.hiWhy
		return false
	}
	if b.lo == b.hi {
		if src, ok := b.notEq[b.lo]; ok {
			pin := b.loWhy
			if pin == "" {
				pin = b.hiWhy
			}
			s.refuted = pin + " contradicts " + src
			return false
		}
	}
	return true
}
