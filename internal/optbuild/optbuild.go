// Package optbuild is the single place that maps user-facing analysis
// options onto the fits API. Both surfaces — CLI flags on cmd/fits and
// cmd/fwscan, and the JSON job options of the fitsd service — funnel
// through one Spec type, so an option behaves identically no matter how it
// arrived and a new knob is added exactly once.
//
// A Spec is JSON-serializable (it is the "options" object of the fitsd job
// API) and bindable onto a flag.FlagSet. Normalize validates it and fills
// defaults; AnalyzeOptions and ScanOptions then translate it into
// fits.Options and fits.ScanOptions.
package optbuild

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"time"

	"fits"
	"fits/internal/score"
)

// DefaultTopK is how many ranked candidates are reported per target and,
// when ITS seeding is on, seeded into the taint scan.
const DefaultTopK = 3

// Duration is a time.Duration that marshals to/from the Go duration string
// form ("30s", "2m"), the natural spelling in both JSON bodies and flags.
type Duration time.Duration

// MarshalJSON renders the duration string, or 0 for the zero value.
func (d Duration) MarshalJSON() ([]byte, error) {
	if d == 0 {
		return []byte("0"), nil
	}
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a Go duration string or the literal 0.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if string(b) == "0" || string(b) == "null" {
		*d = 0
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("optbuild: duration must be a string like \"30s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("optbuild: %w", err)
	}
	*d = Duration(v)
	return nil
}

// String implements flag.Value.
func (d *Duration) String() string {
	if d == nil || *d == 0 {
		return "0s"
	}
	return time.Duration(*d).String()
}

// Set implements flag.Value.
func (d *Duration) Set(s string) error {
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Spec describes one analysis request. The zero value Normalizes to the
// paper's defaults: cosine metric, static engine, no ITS seeding, top-3
// reporting, string filter on.
type Spec struct {
	// Engine selects the taint engine used when Scan is set:
	// "static" (default) or "symbolic".
	Engine string `json:"engine,omitempty"`
	// Scan runs taint analysis on each target after inference.
	Scan bool `json:"scan,omitempty"`
	// SeedITS seeds the top-K inferred candidates as intermediate taint
	// sources of the scan.
	SeedITS bool `json:"seed_its,omitempty"`
	// TopK bounds both reported candidates and seeded ITSs (default 3).
	TopK int `json:"top_k,omitempty"`
	// StringFilter drops alerts keyed on system-data fields (static engine
	// only). nil means the default, true.
	StringFilter *bool `json:"string_filter,omitempty"`
	// Metric names the similarity metric: "cosine" (default), "euclidean",
	// "manhattan" or "pearson".
	Metric string `json:"metric,omitempty"`
	// Parallelism bounds worker goroutines at every pipeline fan-out
	// (0 = all CPUs).
	Parallelism int `json:"parallelism,omitempty"`
	// Timeout aborts the analysis after this long (0 = no per-request
	// limit; fitsd additionally enforces its server-wide job timeout).
	Timeout Duration `json:"timeout,omitempty"`
	// NoAlias disables the bounded points-to pass of the static scan;
	// NoPathcheck disables the path-feasibility post-pass. Both precision
	// passes are on by default.
	NoAlias     bool `json:"no_alias,omitempty"`
	NoPathcheck bool `json:"no_pathcheck,omitempty"`
	// NoCache opts this request out of the shared model cache.
	NoCache bool `json:"no_cache,omitempty"`
	// XMode selects the seeding mode of a corpus scan (fits xscan, POST
	// /v1/corpora): "cts", "its" or "cross" (default). Ignored by plain
	// analysis and diff requests.
	XMode string `json:"xmode,omitempty"`
}

// Normalize validates the spec in place and fills defaults. It is
// idempotent; every consumer calls it before translating.
func (s *Spec) Normalize() error {
	if s.TopK < 0 {
		return fmt.Errorf("optbuild: top_k must be >= 0, got %d", s.TopK)
	}
	if s.TopK == 0 {
		s.TopK = DefaultTopK
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("optbuild: parallelism must be >= 0, got %d", s.Parallelism)
	}
	if s.Timeout < 0 {
		return fmt.Errorf("optbuild: timeout must be >= 0, got %s", time.Duration(s.Timeout))
	}
	if s.Engine == "" {
		s.Engine = "static"
	}
	if _, err := s.EngineValue(); err != nil {
		return err
	}
	if s.Metric == "" {
		s.Metric = "cosine"
	}
	if _, err := s.MetricValue(); err != nil {
		return err
	}
	if s.StringFilter == nil {
		t := true
		s.StringFilter = &t
	}
	switch s.XMode {
	case "", "cts", "its", "cross":
	default:
		return fmt.Errorf(`optbuild: unknown xmode %q (want "cts", "its" or "cross")`, s.XMode)
	}
	return nil
}

// EngineValue maps the engine name onto the fits engine selector.
func (s *Spec) EngineValue() (fits.Engine, error) {
	switch s.Engine {
	case "", "static":
		return fits.EngineStatic, nil
	case "symbolic":
		return fits.EngineSymbolic, nil
	}
	return 0, fmt.Errorf(`optbuild: unknown engine %q (want "static" or "symbolic")`, s.Engine)
}

// MetricValue maps the metric name onto the score metric.
func (s *Spec) MetricValue() (score.Metric, error) {
	switch s.Metric {
	case "", "cosine":
		return score.Cosine, nil
	case "euclidean":
		return score.Euclidean, nil
	case "manhattan":
		return score.Manhattan, nil
	case "pearson":
		return score.Pearson, nil
	}
	return 0, fmt.Errorf(`optbuild: unknown metric %q (want cosine, euclidean, manhattan or pearson)`, s.Metric)
}

// AnalyzeOptions translates the spec into pipeline options. cache may be
// nil; it is also ignored when the spec opts out of caching.
func (s *Spec) AnalyzeOptions(cache *fits.Cache) (fits.Options, error) {
	if err := s.Normalize(); err != nil {
		return fits.Options{}, err
	}
	m, err := s.MetricValue()
	if err != nil {
		return fits.Options{}, err
	}
	opts := fits.DefaultOptions()
	opts.Metric = m
	opts.Parallelism = s.Parallelism
	if !s.NoCache {
		opts.Cache = cache
	}
	return opts, nil
}

// DiffOptions translates the spec into evolution-diff options. A diff
// always scans both versions, so Scan and SeedITS are irrelevant here; the
// engine, filter and top-K knobs carry over directly.
func (s *Spec) DiffOptions(cache *fits.Cache) (fits.DiffOptions, error) {
	aopts, err := s.AnalyzeOptions(cache)
	if err != nil {
		return fits.DiffOptions{}, err
	}
	engine, err := s.EngineValue()
	if err != nil {
		return fits.DiffOptions{}, err
	}
	return fits.DiffOptions{
		Options:      aopts,
		TopK:         s.TopK,
		Engine:       engine,
		StringFilter: *s.StringFilter,
		NoAlias:      s.NoAlias,
		NoPathcheck:  s.NoPathcheck,
	}, nil
}

// XScanOptions translates the spec into corpus-scan options. The caller
// wires Scheduler, Stages and Progress itself — those are execution
// environment, not request options.
func (s *Spec) XScanOptions(cache *fits.Cache) (fits.XScanOptions, error) {
	if err := s.Normalize(); err != nil {
		return fits.XScanOptions{}, err
	}
	opts := fits.XScanOptions{
		Mode:         s.XMode,
		TopK:         s.TopK,
		StringFilter: *s.StringFilter,
		NoAlias:      s.NoAlias,
		NoPathcheck:  s.NoPathcheck,
		Parallelism:  s.Parallelism,
	}
	if !s.NoCache {
		opts.Cache = cache
	}
	return opts, nil
}

// ScanOptions translates the spec into scan options for one analyzed
// target, seeding its top-K candidates when SeedITS is set.
func (s *Spec) ScanOptions(t *fits.TargetResult) (fits.ScanOptions, error) {
	if err := s.Normalize(); err != nil {
		return fits.ScanOptions{}, err
	}
	engine, err := s.EngineValue()
	if err != nil {
		return fits.ScanOptions{}, err
	}
	opts := fits.ScanOptions{
		Engine: engine, StringFilter: *s.StringFilter,
		NoAlias: s.NoAlias, NoPathcheck: s.NoPathcheck,
	}
	if s.SeedITS && t != nil {
		for _, c := range t.TopCandidates(s.TopK) {
			opts.ITS = append(opts.ITS, c.Entry)
		}
	}
	return opts, nil
}

// Context applies the spec's timeout to parent. The cancel func must
// always be called.
func (s *Spec) Context(parent context.Context) (context.Context, context.CancelFunc) {
	if s.Timeout > 0 {
		return context.WithTimeout(parent, time.Duration(s.Timeout))
	}
	return context.WithCancel(parent)
}

// BindAnalyzeFlags registers the pipeline flags shared by every CLI:
// -top, -j, -timeout, -metric.
func (s *Spec) BindAnalyzeFlags(fs *flag.FlagSet) {
	fs.IntVar(&s.TopK, "top", DefaultTopK, "ranked candidates to report (and to seed with -its)")
	fs.IntVar(&s.Parallelism, "j", 0, "worker goroutines for the analysis pipeline (0 = all CPUs)")
	fs.Var(&s.Timeout, "timeout", "abort analysis after this duration (0 = no limit)")
	fs.StringVar(&s.Metric, "metric", "cosine", "similarity metric: cosine, euclidean, manhattan or pearson")
}

// BindScanFlags registers the taint-scan flags: -engine, -its, -filter.
func (s *Spec) BindScanFlags(fs *flag.FlagSet) {
	fs.StringVar(&s.Engine, "engine", "static", `engine: "static" (STA) or "symbolic" (Karonte-style)`)
	fs.BoolVar(&s.SeedITS, "its", false, "infer intermediate taint sources and seed the top -top")
	s.StringFilter = new(bool)
	fs.BoolVar(s.StringFilter, "filter", true, "filter alerts keyed on system-data fields")
	fs.BoolVar(&s.NoAlias, "no-alias", false, "disable the bounded points-to precision pass")
	fs.BoolVar(&s.NoPathcheck, "no-pathcheck", false, "disable the path-feasibility precision pass")
}

// CacheConfig is the flags → fits.Cache mapping shared by the CLIs and
// fitsd: a byte budget, an entry budget, and an off switch.
type CacheConfig struct {
	Disable    bool
	MaxBytes   int64
	MaxEntries int
}

// BindFlags registers -cache-size, -cache-entries and -no-cache.
func (c *CacheConfig) BindFlags(fs *flag.FlagSet) {
	fs.Int64Var(&c.MaxBytes, "cache-size", 0, "model cache byte budget (0 = default 1 GiB)")
	fs.IntVar(&c.MaxEntries, "cache-entries", 0, "model cache entry budget (0 = default 4096)")
	fs.BoolVar(&c.Disable, "no-cache", false, "disable the content-addressed model cache")
}

// New builds the cache, or nil when disabled.
func (c CacheConfig) New() *fits.Cache {
	if c.Disable {
		return nil
	}
	return fits.NewCache(c.MaxEntries, c.MaxBytes)
}
