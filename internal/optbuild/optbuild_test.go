package optbuild

import (
	"encoding/json"
	"flag"
	"testing"
	"time"

	"fits"
	"fits/internal/score"
)

func TestNormalizeDefaults(t *testing.T) {
	var s Spec
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.TopK != DefaultTopK {
		t.Errorf("TopK = %d, want %d", s.TopK, DefaultTopK)
	}
	if s.Engine != "static" || s.Metric != "cosine" {
		t.Errorf("defaults = %q/%q, want static/cosine", s.Engine, s.Metric)
	}
	if s.StringFilter == nil || !*s.StringFilter {
		t.Error("StringFilter default should be true")
	}
}

func TestNormalizeRejectsBadValues(t *testing.T) {
	for _, s := range []Spec{
		{Engine: "quantum"},
		{Metric: "hamming"},
		{TopK: -1},
		{Parallelism: -2},
		{Timeout: Duration(-time.Second)},
	} {
		s := s
		if err := s.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted invalid spec", s)
		}
	}
}

func TestEngineAndMetricMapping(t *testing.T) {
	s := Spec{Engine: "symbolic", Metric: "pearson"}
	e, err := s.EngineValue()
	if err != nil || e != fits.EngineSymbolic {
		t.Errorf("EngineValue = %v, %v", e, err)
	}
	m, err := s.MetricValue()
	if err != nil || m != score.Pearson {
		t.Errorf("MetricValue = %v, %v", m, err)
	}
}

func TestAnalyzeOptions(t *testing.T) {
	cache := fits.NewCache(0, 0)
	s := Spec{Parallelism: 4, Metric: "euclidean"}
	opts, err := s.AnalyzeOptions(cache)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Parallelism != 4 || opts.Metric != score.Euclidean || opts.Cache != cache {
		t.Errorf("AnalyzeOptions = %+v", opts)
	}
	s.NoCache = true
	opts, err = s.AnalyzeOptions(cache)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Cache != nil {
		t.Error("NoCache spec still received the cache")
	}
}

func TestScanOptionsWithoutTarget(t *testing.T) {
	off := false
	s := Spec{Engine: "symbolic", SeedITS: true, StringFilter: &off}
	opts, err := s.ScanOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Engine != fits.EngineSymbolic || opts.StringFilter || len(opts.ITS) != 0 {
		t.Errorf("ScanOptions = %+v", opts)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := Spec{Engine: "symbolic", Scan: true, SeedITS: true, TopK: 5,
		Metric: "manhattan", Parallelism: 2, Timeout: Duration(90 * time.Second)}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"1m30s"`), &d); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 90*time.Second {
		t.Errorf("parsed %v", time.Duration(d))
	}
	if err := json.Unmarshal([]byte(`45`), &d); err == nil {
		t.Error("bare numbers other than 0 should be rejected")
	}
	if err := json.Unmarshal([]byte(`0`), &d); err != nil || d != 0 {
		t.Errorf("zero literal: %v, %v", d, err)
	}
	b, err := json.Marshal(Duration(2 * time.Minute))
	if err != nil || string(b) != `"2m0s"` {
		t.Errorf("marshal = %s, %v", b, err)
	}
}

func TestBindFlags(t *testing.T) {
	var s Spec
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s.BindAnalyzeFlags(fs)
	s.BindScanFlags(fs)
	err := fs.Parse([]string{"-top", "7", "-j", "3", "-timeout", "15s",
		"-engine", "symbolic", "-its", "-filter=false"})
	if err != nil {
		t.Fatal(err)
	}
	if s.TopK != 7 || s.Parallelism != 3 || time.Duration(s.Timeout) != 15*time.Second {
		t.Errorf("analyze flags: %+v", s)
	}
	if s.Engine != "symbolic" || !s.SeedITS || s.StringFilter == nil || *s.StringFilter {
		t.Errorf("scan flags: %+v", s)
	}
}

func TestCacheConfig(t *testing.T) {
	var c CacheConfig
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.BindFlags(fs)
	if err := fs.Parse([]string{"-no-cache"}); err != nil {
		t.Fatal(err)
	}
	if c.New() != nil {
		t.Error("disabled cache config still built a cache")
	}
	if (CacheConfig{}).New() == nil {
		t.Error("default cache config built no cache")
	}
}
