// Package xchan models the cross-binary communication channels of a
// firmware corpus: the shared nvram-like configuration store, process
// environment variables, and spawned-helper argument vectors. It
// enumerates every setter and getter call site with its statically
// recovered key and pairs writers to readers, so taint published by one
// binary can become a seed source in another.
//
// Endpoints and pairs are value types ordered deterministically; the
// corpus fixpoint and its report iterate them without any map-order
// dependence.
package xchan

import (
	"sort"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/dataflow"
	"fits/internal/isa"
	"fits/internal/know"
)

// Endpoint is one channel accessor call site in one binary.
type Endpoint struct {
	// Binary is the image path of the binary containing the call site.
	Binary string
	// Func is the entry of the function containing the call; Site the call
	// instruction address.
	Func uint32
	Site uint32
	// Import is the accessor's library function name (nvram_set, env_get, ...).
	Import string
	Chan   know.ChanKind
	// Key is the statically recovered channel key. For keyless getters
	// (spawned-helper argv) it is the binary's own path — the key a
	// fw_spawn setter names. Endpoints whose key cannot be recovered are
	// not emitted; they cannot be paired.
	Key string
	// Setter distinguishes writers from readers.
	Setter bool
}

// ID renders the endpoint's channel identity, the join key of the corpus
// fixpoint: "<chan>:<key>".
func (e Endpoint) ID() string { return e.Chan.String() + ":" + e.Key }

// Pair is one matched writer→reader edge: data stored by Setter is
// observable at Getter.
type Pair struct {
	Setter Endpoint
	Getter Endpoint
}

// Endpoints enumerates the channel accessor call sites of one binary, in
// deterministic (function, site) order.
func Endpoints(path string, bin *binimg.Binary, model *cfg.Model) []Endpoint {
	var out []Endpoint
	for _, f := range model.FuncsInOrder() {
		for _, cs := range f.Calls {
			var spec know.ChannelSpec
			setter := false
			if s, ok := know.ChannelSetters[cs.ImportName]; ok {
				spec, setter = s, true
			} else if g, ok := know.ChannelGetters[cs.ImportName]; ok {
				spec = g
			} else {
				continue
			}
			caller, _ := model.FuncAt(cs.Caller)
			if caller == nil {
				continue
			}
			key := path
			if spec.KeyParam >= 0 {
				c, ok := dataflow.BacktrackRegister(caller, cs.Addr, isa.Reg(spec.KeyParam))
				if !ok {
					continue
				}
				s, ok := dataflow.ClassifyStringConstant(bin, c)
				if !ok || s == "" {
					continue
				}
				key = s
			}
			out = append(out, Endpoint{
				Binary: path, Func: cs.Caller, Site: cs.Addr,
				Import: cs.ImportName, Chan: spec.Chan, Key: key, Setter: setter,
			})
		}
	}
	sortEndpoints(out)
	return out
}

// PairEndpoints joins setters to getters on (channel, key) across the
// whole corpus. The result is sorted by setter then getter order, giving
// the report a stable channel graph.
func PairEndpoints(eps []Endpoint) []Pair {
	byID := map[string][]Endpoint{}
	var setters []Endpoint
	for _, e := range eps {
		if e.Setter {
			setters = append(setters, e)
		} else {
			byID[e.ID()] = append(byID[e.ID()], e)
		}
	}
	sortEndpoints(setters)
	var out []Pair
	for _, s := range setters {
		getters := byID[s.ID()]
		sortEndpoints(getters)
		for _, g := range getters {
			out = append(out, Pair{Setter: s, Getter: g})
		}
	}
	return out
}

// GetterKeys collects, per channel kind, the set of keys some getter in
// the corpus reads. The fixpoint only propagates written keys a reader
// exists for.
func GetterKeys(eps []Endpoint) map[know.ChanKind]map[string]bool {
	out := map[know.ChanKind]map[string]bool{}
	for _, e := range eps {
		if e.Setter {
			continue
		}
		m := out[e.Chan]
		if m == nil {
			m = map[string]bool{}
			out[e.Chan] = m
		}
		m[e.Key] = true
	}
	return out
}

func sortEndpoints(eps []Endpoint) {
	sort.Slice(eps, func(i, j int) bool {
		a, b := eps[i], eps[j]
		if a.Binary != b.Binary {
			return a.Binary < b.Binary
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Import < b.Import
	})
}
