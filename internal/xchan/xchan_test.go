package xchan

import (
	"reflect"
	"testing"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/isa"
	"fits/internal/know"
	"fits/internal/minic"
	"fits/internal/ucse"
)

func buildBin(t *testing.T, p *minic.Program) (*binimg.Binary, *cfg.Model) {
	t.Helper()
	bin, err := minic.Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cfg.Build(bin, cfg.Options{Resolver: ucse.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	return bin, m
}

// writerProgram stores through all three channel kinds.
func writerProgram() *minic.Program {
	return &minic.Program{
		Name:    "a",
		Globals: []*minic.Global{{Name: "buf", Size: 64}},
		Funcs: []*minic.Func{
			{Name: "main", Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "nvram_set", Args: []minic.Expr{
					minic.Str("wl_key"), minic.GlobalRef("buf")}}},
				minic.ExprStmt{E: minic.Call{Name: "env_set", Args: []minic.Expr{
					minic.Str("TZ_OFF"), minic.GlobalRef("buf")}}},
				minic.ExprStmt{E: minic.Call{Name: "fw_spawn", Args: []minic.Expr{
					minic.Str("bin/helper"), minic.GlobalRef("buf")}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
}

// readerProgram loads two known keys and one nobody writes.
func readerProgram() *minic.Program {
	return &minic.Program{
		Name:    "b",
		Globals: []*minic.Global{{Name: "out", Size: 64}},
		Funcs: []*minic.Func{
			{Name: "main", Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "nvram_get", Args: []minic.Expr{minic.Str("wl_key")}}},
				minic.ExprStmt{E: minic.Call{Name: "env_get", Args: []minic.Expr{minic.Str("TZ_OFF")}}},
				minic.ExprStmt{E: minic.Call{Name: "nvram_get", Args: []minic.Expr{minic.Str("unwritten")}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
}

// helperProgram reads its spawn argv: a keyless getter whose key is the
// binary's own image path.
func helperProgram() *minic.Program {
	return &minic.Program{
		Name: "h",
		Funcs: []*minic.Func{
			{Name: "main", Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "fw_getarg", Args: []minic.Expr{minic.Int(1)}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
}

func corpusEndpoints(t *testing.T) []Endpoint {
	t.Helper()
	var all []Endpoint
	for _, bp := range []struct {
		path string
		prog *minic.Program
	}{
		{"bin/a", writerProgram()},
		{"bin/b", readerProgram()},
		{"bin/helper", helperProgram()},
	} {
		bin, m := buildBin(t, bp.prog)
		all = append(all, Endpoints(bp.path, bin, m)...)
	}
	return all
}

func TestEndpointsExtraction(t *testing.T) {
	eps := corpusEndpoints(t)
	type flat struct {
		Binary string
		Chan   know.ChanKind
		Key    string
		Setter bool
	}
	var got []flat
	for _, e := range eps {
		got = append(got, flat{e.Binary, e.Chan, e.Key, e.Setter})
		if e.Func == 0 || e.Site == 0 || e.Import == "" {
			t.Errorf("endpoint missing site info: %+v", e)
		}
		if e.ID() != e.Chan.String()+":"+e.Key {
			t.Errorf("ID() = %q for %+v", e.ID(), e)
		}
	}
	want := []flat{
		{"bin/a", know.ChanNVRAM, "wl_key", true},
		{"bin/a", know.ChanEnv, "TZ_OFF", true},
		{"bin/a", know.ChanSpawn, "bin/helper", true},
		{"bin/b", know.ChanNVRAM, "wl_key", false},
		{"bin/b", know.ChanEnv, "TZ_OFF", false},
		{"bin/b", know.ChanNVRAM, "unwritten", false},
		{"bin/helper", know.ChanSpawn, "bin/helper", false},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("endpoints = %+v, want %+v", got, want)
	}
}

func TestPairEndpointsJoin(t *testing.T) {
	eps := corpusEndpoints(t)
	pairs := PairEndpoints(eps)
	type edge struct{ id, from, to string }
	var got []edge
	for _, p := range pairs {
		if p.Setter.ID() != p.Getter.ID() {
			t.Errorf("mismatched pair %+v", p)
		}
		got = append(got, edge{p.Setter.ID(), p.Setter.Binary, p.Getter.Binary})
	}
	// Setter call-site order within bin/a: nvram_set, env_set, fw_spawn.
	want := []edge{
		{"nvram:wl_key", "bin/a", "bin/b"},
		{"env:TZ_OFF", "bin/a", "bin/b"},
		{"spawn:bin/helper", "bin/a", "bin/helper"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pairs = %+v, want %+v", got, want)
	}
}

func TestPairEndpointsDeterministic(t *testing.T) {
	eps := corpusEndpoints(t)
	rev := make([]Endpoint, len(eps))
	for i, e := range eps {
		rev[len(eps)-1-i] = e
	}
	a, b := PairEndpoints(eps), PairEndpoints(rev)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("pairing depends on input order:\n%+v\n%+v", a, b)
	}
}

func TestGetterKeys(t *testing.T) {
	keys := GetterKeys(corpusEndpoints(t))
	want := map[know.ChanKind]map[string]bool{
		know.ChanNVRAM: {"wl_key": true, "unwritten": true},
		know.ChanEnv:   {"TZ_OFF": true},
		know.ChanSpawn: {"bin/helper": true},
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("GetterKeys = %+v, want %+v", keys, want)
	}
}
