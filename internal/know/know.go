// Package know is the knowledge base of well-known library functions shared
// by every stage: anchor functions (memory-operation libc routines used as
// behavioral references), classical taint sources (interface functions that
// receive user input), and sinks (functions whose misuse yields buffer
// overflows or command hijacking). All are matched by dynamic-symbol name,
// the only name information that survives stripping.
package know

// Anchors maps anchor function names to their arity. The set follows the
// paper's definition: standard library functions that read memory, derive
// new data and return it (Figure 2 shows strcpy, memcmp, strstr).
var Anchors = map[string]int{
	"strcpy":  2,
	"strncpy": 3,
	"strcat":  2,
	"strncat": 3,
	"strcmp":  2,
	"strncmp": 3,
	"strstr":  2,
	"strchr":  2,
	"strlen":  1,
	"memcpy":  3,
	"memmove": 3,
	"memcmp":  3,
	"memchr":  3,
}

// IsAnchor reports whether name denotes an anchor function.
func IsAnchor(name string) bool {
	_, ok := Anchors[name]
	return ok
}

// SourceSpec describes how a classical taint source produces user input.
type SourceSpec struct {
	Arity         int
	TaintsReturn  bool  // the return value carries user input (e.g. getenv)
	TaintedParams []int // parameter indices of output buffers (e.g. recv's buf)
}

// Sources are the classical taint sources (CTSs): interface library
// functions that receive user data.
var Sources = map[string]SourceSpec{
	"recv":     {Arity: 4, TaintedParams: []int{1}},
	"recvfrom": {Arity: 4, TaintedParams: []int{1}},
	"read":     {Arity: 3, TaintedParams: []int{1}},
	"fread":    {Arity: 4, TaintedParams: []int{0}},
	"fgets":    {Arity: 3, TaintedParams: []int{0}},
	"gets":     {Arity: 1, TaintedParams: []int{0}},
	"getenv":   {Arity: 1, TaintsReturn: true},
	"BIO_read": {Arity: 3, TaintedParams: []int{1}},
}

// IsSource reports whether name is a classical taint source.
func IsSource(name string) bool {
	_, ok := Sources[name]
	return ok
}

// SinkKind distinguishes the vulnerability classes detected, plus the
// channel-write pseudo-sink used by the corpus-level cross-binary analysis.
type SinkKind uint8

// Sink kinds.
const (
	SinkOverflow SinkKind = iota
	SinkCommand
	// SinkChannelWrite is not a vulnerability: it marks tainted data
	// reaching a cross-binary channel setter (nvram_set-style). The corpus
	// fixpoint joins these writes to getter call sites in other binaries;
	// single-binary reports never contain them.
	SinkChannelWrite
)

func (k SinkKind) String() string {
	switch k {
	case SinkCommand:
		return "command-hijack"
	case SinkChannelWrite:
		return "channel-write"
	}
	return "buffer-overflow"
}

// SinkSpec describes a risky library function.
type SinkSpec struct {
	Kind SinkKind
	// DangerousParams are the parameter indices where unsanitized user
	// data makes the call exploitable (the copied source, the format
	// arguments, the command string).
	DangerousParams []int
}

// Sinks are the risky library functions, following the paper's section 4.3:
// overflow-prone copies and formatters, and command executors.
var Sinks = map[string]SinkSpec{
	"strcpy":  {Kind: SinkOverflow, DangerousParams: []int{1}},
	"strncpy": {Kind: SinkOverflow, DangerousParams: []int{1}},
	"strcat":  {Kind: SinkOverflow, DangerousParams: []int{1}},
	"strncat": {Kind: SinkOverflow, DangerousParams: []int{1}},
	"sprintf": {Kind: SinkOverflow, DangerousParams: []int{1, 2, 3}},
	"system":  {Kind: SinkCommand, DangerousParams: []int{0}},
	"execve":  {Kind: SinkCommand, DangerousParams: []int{0, 1}},
	"popen":   {Kind: SinkCommand, DangerousParams: []int{0}},
}

// IsSink reports whether name is a sink.
func IsSink(name string) bool {
	_, ok := Sinks[name]
	return ok
}

// ChanKind classifies the cross-binary communication channels firmware
// binaries share state through: the nvram-like configuration store, the
// process environment, and spawned-helper argument vectors (the three
// channel families SaTC/SinkTaint track across binaries).
type ChanKind uint8

// Channel kinds.
const (
	ChanNVRAM ChanKind = iota
	ChanEnv
	ChanSpawn
)

func (k ChanKind) String() string {
	switch k {
	case ChanEnv:
		return "env"
	case ChanSpawn:
		return "spawn"
	}
	return "nvram"
}

// ChannelSpec describes one accessor of a cross-binary channel.
type ChannelSpec struct {
	Chan  ChanKind
	Arity int
	// KeyParam is the parameter index carrying the channel key string. A
	// negative index means the accessor is keyless and the key is implicit:
	// a spawned helper's argv getter is keyed by the helper's own
	// filesystem path.
	KeyParam int
	// ValParam (setters only) is the parameter index carrying the written
	// value.
	ValParam int
	// TaintsReturn (getters only): the fetched channel data leaves via the
	// return register.
	TaintsReturn bool
}

// ChannelSetters are the library functions that publish data onto a
// cross-binary channel. Tainted values reaching their ValParam become
// visible to every binary reading the same channel key.
var ChannelSetters = map[string]ChannelSpec{
	"nvram_set": {Chan: ChanNVRAM, Arity: 2, KeyParam: 0, ValParam: 1},
	"env_set":   {Chan: ChanEnv, Arity: 2, KeyParam: 0, ValParam: 1},
	// fw_spawn(path, arg) hands arg to the helper binary at path; the
	// helper path is the channel key.
	"fw_spawn": {Chan: ChanSpawn, Arity: 2, KeyParam: 0, ValParam: 1},
}

// ChannelGetters are the library functions that read data off a
// cross-binary channel; their return value carries whatever the writing
// binary stored under the key.
var ChannelGetters = map[string]ChannelSpec{
	"nvram_get": {Chan: ChanNVRAM, Arity: 1, KeyParam: 0, TaintsReturn: true},
	"env_get":   {Chan: ChanEnv, Arity: 1, KeyParam: 0, TaintsReturn: true},
	"fw_getarg": {Chan: ChanSpawn, Arity: 1, KeyParam: -1, TaintsReturn: true},
}

// IsChannelAccessor reports whether name reads or writes a cross-binary
// channel.
func IsChannelAccessor(name string) bool {
	_, s := ChannelSetters[name]
	_, g := ChannelGetters[name]
	return s || g
}

// NetworkImports are the interface functions whose presence marks a binary
// as exporting network services (the PIE-style selection heuristic of the
// pre-processing stage).
var NetworkImports = map[string]bool{
	"socket":   true,
	"bind":     true,
	"listen":   true,
	"accept":   true,
	"recv":     true,
	"recvfrom": true,
	"BIO_read": true,
}
