package know

import "testing"

func TestAnchorsWellFormed(t *testing.T) {
	if len(Anchors) < 10 {
		t.Errorf("anchors = %d, want a substantial set", len(Anchors))
	}
	for name, arity := range Anchors {
		if name == "" || arity < 1 || arity > 4 {
			t.Errorf("anchor %q arity %d malformed", name, arity)
		}
		if !IsAnchor(name) {
			t.Errorf("IsAnchor(%q) false", name)
		}
	}
	// The paper's Figure 2 examples must be present.
	for _, name := range []string{"strcpy", "memcmp", "strstr"} {
		if !IsAnchor(name) {
			t.Errorf("missing paper anchor %q", name)
		}
	}
	if IsAnchor("printf") || IsAnchor("recv") {
		t.Error("non-memory functions classified as anchors")
	}
}

func TestSourcesWellFormed(t *testing.T) {
	for name, spec := range Sources {
		if !IsSource(name) {
			t.Errorf("IsSource(%q) false", name)
		}
		if !spec.TaintsReturn && len(spec.TaintedParams) == 0 {
			t.Errorf("source %q produces no tainted output", name)
		}
		for _, p := range spec.TaintedParams {
			if p < 0 || p >= spec.Arity {
				t.Errorf("source %q tainted param %d outside arity %d", name, p, spec.Arity)
			}
		}
	}
	// The paper's classical sources.
	for _, name := range []string{"recv", "getenv", "fgets", "BIO_read"} {
		if !IsSource(name) {
			t.Errorf("missing paper source %q", name)
		}
	}
	if !Sources["getenv"].TaintsReturn {
		t.Error("getenv must taint its return value")
	}
	if Sources["recv"].TaintedParams[0] != 1 {
		t.Error("recv must taint its buffer parameter")
	}
}

func TestSinksWellFormed(t *testing.T) {
	overflow, command := 0, 0
	for name, spec := range Sinks {
		if !IsSink(name) {
			t.Errorf("IsSink(%q) false", name)
		}
		if len(spec.DangerousParams) == 0 {
			t.Errorf("sink %q has no dangerous params", name)
		}
		switch spec.Kind {
		case SinkOverflow:
			overflow++
		case SinkCommand:
			command++
		}
	}
	if overflow == 0 || command == 0 {
		t.Errorf("sink kinds: overflow=%d command=%d, want both", overflow, command)
	}
	// The paper's §4.3 sink examples.
	for _, name := range []string{"strncpy", "sprintf", "strncat", "system", "execve"} {
		if !IsSink(name) {
			t.Errorf("missing paper sink %q", name)
		}
	}
	if Sinks["system"].Kind != SinkCommand || Sinks["sprintf"].Kind != SinkOverflow {
		t.Error("sink kinds misassigned")
	}
}

func TestSinkKindString(t *testing.T) {
	if SinkOverflow.String() != "buffer-overflow" || SinkCommand.String() != "command-hijack" {
		t.Error("sink kind strings wrong")
	}
}

func TestNetworkImports(t *testing.T) {
	for _, name := range []string{"socket", "recv", "accept", "BIO_read"} {
		if !NetworkImports[name] {
			t.Errorf("missing network import %q", name)
		}
	}
	if NetworkImports["printf"] {
		t.Error("printf is not a network interface")
	}
}

func TestCategoryDisjointness(t *testing.T) {
	// Sources and sinks must not overlap: a function cannot both produce
	// user input and be a dangerous consumer in our model.
	for name := range Sources {
		if IsSink(name) {
			t.Errorf("%q is both source and sink", name)
		}
	}
	// Anchors may overlap with sinks (strncpy is both a memory-operation
	// reference and a risky copy), but never with sources.
	for name := range Anchors {
		if IsSource(name) {
			t.Errorf("%q is both anchor and source", name)
		}
	}
}
