package binimg

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fits/internal/isa"
)

func sample() *Binary {
	text := isa.ArchARM.EncodeAll([]isa.Instr{
		{Op: isa.OpMovi, Rd: isa.R0, Imm: 1},
		{Op: isa.OpRet},
		{Op: isa.OpTramp, Imm: 0x30010},
	})
	rodata := append([]byte("hello\x00world\x00"), 0)
	data := make([]byte, 16)
	binary.LittleEndian.PutUint32(data[0:], 0x10000) // a function pointer
	return &Binary{
		Name:    "httpd",
		Arch:    isa.ArchARM,
		Entry:   0x10000,
		Text:    Section{Addr: 0x10000, Data: text},
		Rodata:  Section{Addr: 0x20000, Data: rodata},
		Data:    Section{Addr: 0x30000, Data: data},
		BssAddr: 0x40000,
		BssSize: 64,
		Needed:  []string{"libc.so"},
		Exports: []Sym{{Name: "main", Addr: 0x10000}},
		Imports: []Import{{Name: "recv", Stub: 0x10010, GOT: 0x30010}},
		Funcs:   []Sym{{Name: "main", Addr: 0x10000}, {Name: "fn1", Addr: 0x10008}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := sample()
	enc := b.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, b)
	}
}

func TestStrip(t *testing.T) {
	b := sample()
	b.Strip()
	if b.Funcs != nil || !b.Stripped {
		t.Error("strip left debug info")
	}
	got, err := Decode(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Stripped || len(got.Funcs) != 0 {
		t.Error("stripped flag not preserved")
	}
	// Dynamic information must survive stripping.
	if _, ok := got.ExportAddr("main"); !ok {
		t.Error("exports lost on strip")
	}
	if _, ok := got.ImportAtStub(0x10010); !ok {
		t.Error("imports lost on strip")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("ELF")); err != ErrBadMagic {
		t.Errorf("bad magic: %v", err)
	}
	enc := sample().Encode()
	if _, err := Decode(enc[:20]); err == nil {
		t.Error("expected error for truncated input")
	}
	// Corrupt the architecture byte.
	bad := append([]byte(nil), enc...)
	bad[len(Magic)] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("expected error for bad arch")
	}
}

func TestDecodeRejectsMisalignedText(t *testing.T) {
	b := sample()
	b.Text.Data = b.Text.Data[:len(b.Text.Data)-1]
	if _, err := Decode(b.Encode()); err == nil {
		t.Error("expected error for misaligned text")
	}
}

func TestSectionQueries(t *testing.T) {
	b := sample()
	cases := map[uint32]string{
		0x10000: "text", 0x10008: "text",
		0x20000: "rodata", 0x30004: "data",
		0x40000: "bss", 0x4003f: "bss",
		0x50000: "", 0x9: "",
	}
	for addr, want := range cases {
		if got := b.SectionOf(addr); got != want {
			t.Errorf("SectionOf(%#x) = %q, want %q", addr, got, want)
		}
	}
	if got := b.Text.End(); got != 0x10000+uint32(len(b.Text.Data)) {
		t.Errorf("End = %#x", got)
	}
}

func TestReadWordAndByte(t *testing.T) {
	b := sample()
	w, ok := b.WordAt(0x30000)
	if !ok || w != 0x10000 {
		t.Errorf("WordAt = %#x, %v", w, ok)
	}
	if _, ok := b.WordAt(0x30000 + uint32(len(b.Data.Data)) - 1); ok {
		t.Error("WordAt should fail when word spans section end")
	}
	c, ok := b.ByteAt(0x20001)
	if !ok || c != 'e' {
		t.Errorf("ByteAt = %q, %v", c, ok)
	}
	if _, ok := b.ByteAt(0x99999); ok {
		t.Error("ByteAt should fail outside sections")
	}
}

func TestCString(t *testing.T) {
	b := sample()
	s, ok := b.CString(0x20000)
	if !ok || s != "hello" {
		t.Errorf("CString = %q, %v", s, ok)
	}
	s, ok = b.CString(0x20006)
	if !ok || s != "world" {
		t.Errorf("CString = %q, %v", s, ok)
	}
	if _, ok := b.CString(0x10000); ok {
		t.Error("CString should not read text")
	}
	// Unterminated string at section end is returned as-is.
	b2 := &Binary{Rodata: Section{Addr: 0x100, Data: []byte("abc")}}
	if s, ok := b2.CString(0x100); !ok || s != "abc" {
		t.Errorf("unterminated = %q, %v", s, ok)
	}
}

func TestSymbolQueries(t *testing.T) {
	b := sample()
	if im, ok := b.ImportAtStub(0x10010); !ok || im.Name != "recv" {
		t.Errorf("ImportAtStub = %+v, %v", im, ok)
	}
	if _, ok := b.ImportAtStub(0x10008); ok {
		t.Error("unexpected import at non-stub")
	}
	if im, ok := b.ImportForGOT(0x30010); !ok || im.Name != "recv" {
		t.Errorf("ImportForGOT = %+v, %v", im, ok)
	}
	if name, ok := b.ExportAt(0x10000); !ok || name != "main" {
		t.Errorf("ExportAt = %q, %v", name, ok)
	}
	if addr, ok := b.ExportAddr("main"); !ok || addr != 0x10000 {
		t.Errorf("ExportAddr = %#x, %v", addr, ok)
	}
	if _, ok := b.ExportAddr("nope"); ok {
		t.Error("unexpected export")
	}
	if name, ok := b.FuncName(0x10008); !ok || name != "fn1" {
		t.Errorf("FuncName = %q, %v", name, ok)
	}
}

func TestSortedFuncsAndSize(t *testing.T) {
	b := sample()
	b.Funcs = []Sym{{Name: "z", Addr: 0x30}, {Name: "a", Addr: 0x10}}
	fs := b.SortedFuncs()
	if fs[0].Addr != 0x10 || fs[1].Addr != 0x30 {
		t.Errorf("not sorted: %v", fs)
	}
	// SortedFuncs must not mutate the original.
	if b.Funcs[0].Addr != 0x30 {
		t.Error("SortedFuncs mutated receiver")
	}
	want := len(b.Text.Data) + len(b.Rodata.Data) + len(b.Data.Data) + int(b.BssSize)
	if b.Size() != want {
		t.Errorf("Size = %d, want %d", b.Size(), want)
	}
}

func TestInstructions(t *testing.T) {
	b := sample()
	ins, err := b.Instructions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 || ins[0].Op != isa.OpMovi {
		t.Errorf("instructions = %v", ins)
	}
	in, err := b.InstrAt(0x10008)
	if err != nil || in.Op != isa.OpRet {
		t.Errorf("InstrAt = %v, %v", in, err)
	}
	if _, err := b.InstrAt(0x10001); err == nil {
		t.Error("expected misalignment error")
	}
	if _, err := b.InstrAt(0x90000); err == nil {
		t.Error("expected out-of-text error")
	}
}

func TestIsBinary(t *testing.T) {
	if !IsBinary(sample().Encode()) {
		t.Error("IsBinary false for valid image")
	}
	if IsBinary([]byte("FB")) || IsBinary([]byte("NOTBIN")) {
		t.Error("IsBinary true for junk")
	}
}

// Property: encode/decode round-trips random binaries.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		randStr := func() string {
			n := r.Intn(12)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte('a' + r.Intn(26))
			}
			return string(b)
		}
		b := &Binary{
			Name:    randStr(),
			Arch:    isa.Arch(1 + r.Intn(3)),
			Entry:   r.Uint32(),
			BssAddr: r.Uint32(),
			BssSize: r.Uint32() % 4096,
		}
		b.Text = Section{Addr: r.Uint32(), Data: make([]byte, isa.Width*r.Intn(8))}
		r.Read(b.Text.Data)
		b.Rodata = Section{Addr: r.Uint32(), Data: make([]byte, r.Intn(64))}
		r.Read(b.Rodata.Data)
		b.Data = Section{Addr: r.Uint32(), Data: make([]byte, r.Intn(64))}
		r.Read(b.Data.Data)
		for i := 0; i < r.Intn(4); i++ {
			b.Needed = append(b.Needed, randStr())
		}
		for i := 0; i < r.Intn(4); i++ {
			b.Exports = append(b.Exports, Sym{Name: randStr(), Addr: r.Uint32()})
		}
		for i := 0; i < r.Intn(4); i++ {
			b.Imports = append(b.Imports, Import{Name: randStr(), Stub: r.Uint32(), GOT: r.Uint32()})
		}
		for i := 0; i < r.Intn(4); i++ {
			b.Funcs = append(b.Funcs, Sym{Name: randStr(), Addr: r.Uint32()})
		}
		got, err := Decode(b.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(b, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMagicPrefix(t *testing.T) {
	enc := sample().Encode()
	if !bytes.HasPrefix(enc, Magic) {
		t.Error("encoded binary must start with magic")
	}
}
