// Fuzz coverage for the binary container codec: Decode must reject arbitrary
// and corrupted inputs with an error, never a panic. The seed corpus is
// real encoder output from the synthetic firmware generator, so mutations
// start from structurally valid containers and explore the interesting
// boundary cases (truncated tables, hostile counts, misaligned text).
package binimg_test

import (
	"bytes"
	"testing"

	"fits/internal/binimg"
	"fits/internal/synth"
)

// fuzzSeeds collects encoded binaries from a couple of synth samples: the
// network application, its libc, and a raw truncation of each.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var out [][]byte
	specs := synth.Dataset()
	for _, idx := range []int{0, 7} {
		if idx >= len(specs) {
			continue
		}
		s, err := synth.Generate(specs[idx])
		if err != nil {
			f.Fatalf("synth: %v", err)
		}
		for _, file := range s.Image.Files {
			if binimg.IsBinary(file.Data) {
				out = append(out, file.Data)
			}
		}
	}
	return out
}

func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		if len(seed) > 64 {
			f.Add(seed[:64]) // truncated header
		}
	}
	f.Add([]byte{})
	f.Add([]byte("FBIN1"))
	f.Add(append([]byte("FBIN1"), bytes.Repeat([]byte{0xff}, 64)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := binimg.Decode(data)
		if err != nil {
			if b != nil {
				t.Error("Decode returned both a binary and an error")
			}
			return
		}
		// A decoded binary must round-trip through the accessors without
		// panicking, whatever the section layout claims.
		_ = b.Size()
		_, _ = b.WordAt(b.Entry)
		_, _ = b.CString(b.Entry)
		_ = b.SectionOf(b.Entry)
	})
}

// FuzzEncodeDecodeRoundTrip mutates decoded-then-reencoded containers:
// any input Decode accepts must survive Encode → Decode unchanged in its
// header identity.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := binimg.Decode(data)
		if err != nil {
			return
		}
		b2, err := binimg.Decode(b.Encode())
		if err != nil {
			t.Fatalf("re-decode of encoder output failed: %v", err)
		}
		if b2.Name != b.Name || b2.Entry != b.Entry || b2.Arch != b.Arch {
			t.Errorf("round trip changed identity: %q/%#x/%v -> %q/%#x/%v",
				b.Name, b.Entry, b.Arch, b2.Name, b2.Entry, b2.Arch)
		}
	})
}
