package binimg

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"fits/internal/firmware"
	"fits/internal/intern"
	"fits/internal/isa"
)

// Format errors. Both wrap firmware.ErrCorrupt — a malformed binary
// container means a malformed image, and callers (fitsd's 422 mapping)
// classify with one errors.Is against that root.
var (
	ErrBadMagic  = fmt.Errorf("%w: binimg: bad magic", firmware.ErrCorrupt)
	ErrTruncated = fmt.Errorf("%w: binimg: truncated input", firmware.ErrCorrupt)
)

const (
	flagStripped = 1 << 0
	maxStr       = 1 << 16
	maxCount     = 1 << 20
	maxSection   = 1 << 26
)

type writer struct{ buf bytes.Buffer }

func (w *writer) u8(v uint8) { w.buf.WriteByte(v) }
func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}
func (w *writer) str(s string)  { w.u32(uint32(len(s))); w.buf.WriteString(s) }
func (w *writer) blob(b []byte) { w.u32(uint32(len(b))); w.buf.Write(b) }

type reader struct {
	src []byte
	off int
	err error
	tab *intern.Table // nil means no interning
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.src) {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.src[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.src) {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.src[r.off:])
	r.off += 4
	return v
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > maxStr || r.off+int(n) > len(r.src) {
		r.fail(ErrTruncated)
		return ""
	}
	// Bytes on a nil table is a plain conversion; with a table, names
	// repeated across binaries (libc symbols, import names) collapse to one
	// allocation per analysis.
	s := r.tab.Bytes(r.src[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// blob returns the next length-prefixed byte run as a capped view over the
// input — decoding never copies section bytes. The cap guards the following
// field against appends through the view.
func (r *reader) blob(limit uint32) []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if n > limit || r.off+int(n) > len(r.src) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.src[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b
}

// Encode serializes the binary to its container format.
func (b *Binary) Encode() []byte {
	var w writer
	w.buf.Write(Magic)
	w.u8(uint8(b.Arch))
	var flags uint8
	if b.Stripped {
		flags |= flagStripped
	}
	w.u8(flags)
	w.str(b.Name)
	w.u32(b.Entry)
	for _, s := range []Section{b.Text, b.Rodata, b.Data} {
		w.u32(s.Addr)
		w.blob(s.Data)
	}
	w.u32(b.BssAddr)
	w.u32(b.BssSize)
	w.u32(uint32(len(b.Needed)))
	for _, n := range b.Needed {
		w.str(n)
	}
	w.u32(uint32(len(b.Exports)))
	for _, e := range b.Exports {
		w.str(e.Name)
		w.u32(e.Addr)
	}
	w.u32(uint32(len(b.Imports)))
	for _, im := range b.Imports {
		w.str(im.Name)
		w.u32(im.Stub)
		w.u32(im.GOT)
	}
	w.u32(uint32(len(b.Funcs)))
	for _, f := range b.Funcs {
		w.str(f.Name)
		w.u32(f.Addr)
	}
	return w.buf.Bytes()
}

// Decode parses a binary container. It validates magic, architecture and
// bounds, returning descriptive errors for malformed images.
//
// Section data in the returned binary aliases src (views, not copies). The
// caller must not modify src while the binary is live; decoded binaries are
// immutable downstream, which is what lets the model cache share them.
func Decode(src []byte) (*Binary, error) {
	return DecodeIntern(src, nil)
}

// DecodeIntern is Decode with a string intern table: symbol, import and
// library names are canonicalized through tab, so names repeated across a
// firmware's binaries share one backing allocation. A nil tab behaves
// exactly like Decode.
func DecodeIntern(src []byte, tab *intern.Table) (*Binary, error) {
	if len(src) < len(Magic) || !bytes.Equal(src[:len(Magic)], Magic) {
		return nil, ErrBadMagic
	}
	r := &reader{src: src, off: len(Magic), tab: tab}
	b := &Binary{}
	b.Arch = isa.Arch(r.u8())
	flags := r.u8()
	b.Stripped = flags&flagStripped != 0
	b.Name = r.str()
	b.Entry = r.u32()
	for _, sp := range []*Section{&b.Text, &b.Rodata, &b.Data} {
		sp.Addr = r.u32()
		sp.Data = r.blob(maxSection)
	}
	b.BssAddr = r.u32()
	b.BssSize = r.u32()
	count := func() int {
		n := r.u32()
		if n > maxCount {
			r.fail(ErrTruncated)
			return 0
		}
		return int(n)
	}
	for i, n := 0, count(); i < n && r.err == nil; i++ {
		b.Needed = append(b.Needed, r.str())
	}
	for i, n := 0, count(); i < n && r.err == nil; i++ {
		b.Exports = append(b.Exports, Sym{Name: r.str(), Addr: r.u32()})
	}
	for i, n := 0, count(); i < n && r.err == nil; i++ {
		b.Imports = append(b.Imports, Import{Name: r.str(), Stub: r.u32(), GOT: r.u32()})
	}
	for i, n := 0, count(); i < n && r.err == nil; i++ {
		b.Funcs = append(b.Funcs, Sym{Name: r.str(), Addr: r.u32()})
	}
	if r.err != nil {
		return nil, r.err
	}
	if !b.Arch.Valid() {
		return nil, fmt.Errorf("%w: binimg: unknown architecture %d", firmware.ErrCorrupt, b.Arch)
	}
	if len(b.Text.Data)%isa.Width != 0 {
		return nil, fmt.Errorf("%w: binimg: text size %d not a multiple of instruction width",
			firmware.ErrCorrupt, len(b.Text.Data))
	}
	return b, nil
}

// IsBinary reports whether the byte stream starts with the container magic.
func IsBinary(src []byte) bool {
	return len(src) >= len(Magic) && bytes.Equal(src[:len(Magic)], Magic)
}
