package binimg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Decode never panics, whatever the bytes — it either errors or
// returns a structurally valid binary.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(512)
		buf := make([]byte, n)
		r.Read(buf)
		// Half the time, make it look like a real header so decoding gets
		// past the magic check and exercises the field parsers.
		if r.Intn(2) == 0 && n > len(Magic) {
			copy(buf, Magic)
		}
		b, err := Decode(buf)
		if err == nil && b == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: truncating a valid image at any point yields an error, never a
// panic or a silently wrong binary.
func TestQuickDecodeTruncations(t *testing.T) {
	enc := sample().Encode()
	for cut := 0; cut < len(enc); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at cut %d: %v", cut, r)
				}
			}()
			_, err := Decode(enc[:cut])
			if err == nil {
				t.Fatalf("truncation at %d decoded successfully", cut)
			}
		}()
	}
}

// Property: flipping any single byte either errors or still yields a binary
// whose accessors are safe to call.
func TestQuickDecodeBitflips(t *testing.T) {
	enc := sample().Encode()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		pos := r.Intn(len(enc))
		mut := append([]byte(nil), enc...)
		mut[pos] ^= byte(1 + r.Intn(255))
		b, err := Decode(mut)
		if err != nil {
			continue
		}
		// Exercise accessors on the mutant.
		b.SectionOf(b.Entry)
		b.WordAt(b.Data.Addr)
		b.CString(b.Rodata.Addr)
		b.SortedFuncs()
		_, _ = b.Instructions()
	}
}
