// Package binimg defines the on-disk container format for executables and
// shared libraries in the synthetic firmware corpus.
//
// The container mirrors the parts of ELF that firmware analysis depends on:
// loadable sections (.text/.rodata/.data/.bss), a dynamic section naming
// needed libraries, dynamic symbols (exports and PLT-style import stubs with
// GOT slots), and an optional debug symbol table that vendors strip from
// production firmware.
package binimg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"fits/internal/isa"
)

// Magic identifies a binary container in a byte stream.
var Magic = []byte("FBIN1")

// Section is a loadable region with contents.
type Section struct {
	Addr uint32
	Data []byte
}

// Contains reports whether addr falls inside the section.
func (s Section) Contains(addr uint32) bool {
	return addr >= s.Addr && addr < s.Addr+uint32(len(s.Data))
}

// End returns the first address past the section.
func (s Section) End() uint32 { return s.Addr + uint32(len(s.Data)) }

// Sym names an address, either a dynamic export or a debug symbol.
type Sym struct {
	Name string
	Addr uint32
}

// Import is a PLT-style stub for a function provided by a needed library.
// Calls to Stub reach a trampoline that jumps through the GOT slot.
type Import struct {
	Name string
	Stub uint32
	GOT  uint32
}

// Binary is a parsed executable or shared library.
type Binary struct {
	Name     string // file name within the firmware filesystem
	Arch     isa.Arch
	Entry    uint32
	Stripped bool

	Text    Section
	Rodata  Section
	Data    Section
	BssAddr uint32
	BssSize uint32

	Needed  []string // dependency libraries, like DT_NEEDED
	Exports []Sym    // dynamic symbols (function exports)
	Imports []Import

	// Funcs is the debug symbol table: every function with its name.
	// Strip removes it; production firmware ships without it.
	Funcs []Sym
}

// Strip removes debug information, leaving only what dynamic linking needs.
func (b *Binary) Strip() {
	b.Funcs = nil
	b.Stripped = true
}

// SectionOf returns the name of the section containing addr: "text",
// "rodata", "data", "bss" or "" when unmapped.
func (b *Binary) SectionOf(addr uint32) string {
	switch {
	case b.Text.Contains(addr):
		return "text"
	case b.Rodata.Contains(addr):
		return "rodata"
	case b.Data.Contains(addr):
		return "data"
	case addr >= b.BssAddr && addr < b.BssAddr+b.BssSize:
		return "bss"
	}
	return ""
}

// WordAt reads a little-endian machine word from a data-carrying section.
func (b *Binary) WordAt(addr uint32) (uint32, bool) {
	for _, s := range []Section{b.Text, b.Rodata, b.Data} {
		if s.Contains(addr) && s.Contains(addr+isa.WordSize-1) {
			off := addr - s.Addr
			return binary.LittleEndian.Uint32(s.Data[off : off+isa.WordSize]), true
		}
	}
	return 0, false
}

// ByteAt reads one byte from any data-carrying section.
func (b *Binary) ByteAt(addr uint32) (byte, bool) {
	for _, s := range []Section{b.Text, b.Rodata, b.Data} {
		if s.Contains(addr) {
			return s.Data[addr-s.Addr], true
		}
	}
	return 0, false
}

// CString reads a NUL-terminated string at addr from rodata or data.
func (b *Binary) CString(addr uint32) (string, bool) {
	v, ok := b.CStringBytes(addr)
	if !ok {
		return "", false
	}
	return string(v), true
}

// CStringBytes is CString without the copy: the returned bytes are a view
// over the section data (valid as long as the binary is, and not to be
// modified). Callers that intern or only inspect the string avoid
// materializing it.
func (b *Binary) CStringBytes(addr uint32) ([]byte, bool) {
	for _, s := range []Section{b.Rodata, b.Data} {
		if !s.Contains(addr) {
			continue
		}
		off := int(addr - s.Addr)
		end := bytes.IndexByte(s.Data[off:], 0)
		if end < 0 {
			return s.Data[off:len(s.Data):len(s.Data)], true
		}
		return s.Data[off : off+end : off+end], true
	}
	return nil, false
}

// ImportAtStub resolves a text address to the import whose trampoline lives
// there, the way a disassembler recognizes PLT entries.
func (b *Binary) ImportAtStub(addr uint32) (Import, bool) {
	for _, im := range b.Imports {
		if im.Stub == addr {
			return im, true
		}
	}
	return Import{}, false
}

// ImportForGOT resolves a GOT slot address to its import.
func (b *Binary) ImportForGOT(got uint32) (Import, bool) {
	for _, im := range b.Imports {
		if im.GOT == got {
			return im, true
		}
	}
	return Import{}, false
}

// ExportAt returns the export name at addr, if any.
func (b *Binary) ExportAt(addr uint32) (string, bool) {
	for _, e := range b.Exports {
		if e.Addr == addr {
			return e.Name, true
		}
	}
	return "", false
}

// ExportAddr returns the address of a named export.
func (b *Binary) ExportAddr(name string) (uint32, bool) {
	for _, e := range b.Exports {
		if e.Name == name {
			return e.Addr, true
		}
	}
	return 0, false
}

// FuncName returns the debug name of the function at addr (unstripped
// binaries only).
func (b *Binary) FuncName(addr uint32) (string, bool) {
	for _, f := range b.Funcs {
		if f.Addr == addr {
			return f.Name, true
		}
	}
	return "", false
}

// SortedFuncs returns the debug function symbols in address order.
func (b *Binary) SortedFuncs() []Sym {
	out := append([]Sym(nil), b.Funcs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Size returns the total mapped size in bytes.
func (b *Binary) Size() int {
	return len(b.Text.Data) + len(b.Rodata.Data) + len(b.Data.Data) + int(b.BssSize)
}

// Instructions decodes the whole text section.
func (b *Binary) Instructions() ([]isa.Instr, error) {
	return b.Arch.DecodeAll(b.Text.Data)
}

// InstrAt decodes the single instruction at addr in the text section.
func (b *Binary) InstrAt(addr uint32) (isa.Instr, error) {
	if !b.Text.Contains(addr) {
		return isa.Instr{}, fmt.Errorf("binimg: 0x%x outside text", addr)
	}
	off := addr - b.Text.Addr
	if off%isa.Width != 0 {
		return isa.Instr{}, fmt.Errorf("binimg: misaligned address 0x%x", addr)
	}
	return b.Arch.Decode(b.Text.Data[off:])
}
