package binimg

import (
	"bytes"
	"testing"

	"fits/internal/isa"
)

func testBinary() *Binary {
	ins := make([]isa.Instr, 1024)
	for i := range ins {
		ins[i] = isa.Instr{Op: isa.OpNop}
	}
	text := isa.ArchARM.EncodeAll(ins)
	return &Binary{
		Arch:   isa.ArchARM,
		Name:   "httpd",
		Entry:  0x1000,
		Text:   Section{Addr: 0x1000, Data: text},
		Rodata: Section{Addr: 0x9000, Data: []byte("GET /\x00POST /\x00")},
		Data:   Section{Addr: 0xA000, Data: []byte{1, 2, 3, 4}},
		Needed: []string{"libc.so"},
		Exports: []Sym{
			{Name: "main", Addr: 0x1000},
		},
	}
}

// TestDecodeAliasesInput proves Decode is zero-copy for section data: the
// returned sections are capped views over the container bytes.
func TestDecodeAliasesInput(t *testing.T) {
	src := testBinary().Encode()
	b, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(src, b.Rodata.Data)
	if idx < 0 {
		t.Fatal("rodata bytes not found in container")
	}
	src[idx] ^= 0xFF
	if b.Rodata.Data[0] != src[idx] {
		t.Fatal("section data is a copy, want a view over the container")
	}
	src[idx] ^= 0xFF
	for _, s := range []Section{b.Text, b.Rodata, b.Data} {
		if cap(s.Data) != len(s.Data) {
			t.Fatalf("section view not capped: len %d cap %d", len(s.Data), cap(s.Data))
		}
	}
}

// TestDecodeAllocBudget pins Decode to a small constant allocation count
// independent of section size: the struct, symbol strings, and slice headers
// — never the 4 KiB text section itself.
func TestDecodeAllocBudget(t *testing.T) {
	src := testBinary().Encode()
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Decode(src); err != nil {
			t.Fatal(err)
		}
	})
	// Observed ~10; the slack absorbs runtime jitter, not a section copy.
	if allocs > 24 {
		t.Fatalf("Decode allocates %v objects per run, want <= 24", allocs)
	}
}
