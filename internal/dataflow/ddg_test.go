package dataflow

import (
	"strings"
	"testing"

	"fits/internal/isa"
	"fits/internal/minic"
)

func TestDDGStraightLine(t *testing.T) {
	// f(p0) { x := p0 + 1; return x }
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{
		Name: "f", NParams: 1,
		Body: []minic.Stmt{
			minic.Let{Name: "x", E: minic.Add(minic.Var("p0"), minic.Int(1))},
			minic.Return{E: minic.Var("x")},
		},
	}}}
	bin, m := buildModel(t, p)
	fn := fnNamed(t, bin, m, "f")
	g := BuildDDG(fn)
	if len(g.Edges) == 0 {
		t.Fatal("empty DDG")
	}
	// The entry pseudo-definition of r0 (the parameter) must reach a use.
	uses := g.UsesOf(fn.Entry)
	if len(uses) == 0 {
		t.Fatal("parameter definition reaches no use")
	}
	// Every use site must have at least one incoming definition, and both
	// ends of every edge must lie inside the function (or at its entry).
	for _, e := range g.Edges {
		if e.Loc == "" {
			t.Fatal("edge without location")
		}
		inFn := func(a uint32) bool {
			for _, ba := range fn.Order {
				b := fn.Blocks[ba]
				if a >= b.Start && a < b.End() {
					return true
				}
			}
			return a == fn.Entry
		}
		if !inFn(e.Def) || !inFn(e.Use) {
			t.Fatalf("edge outside function: %+v", e)
		}
	}
}

func TestDDGThroughStackSlot(t *testing.T) {
	// A value defined in one statement and used two statements later flows
	// through its stack slot: the slot's def-use edge must exist.
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{
		Name: "f", NParams: 1,
		Body: []minic.Stmt{
			minic.Let{Name: "x", E: minic.Int(7)},
			minic.Let{Name: "y", E: minic.Int(9)},
			minic.Return{E: minic.Add(minic.Var("x"), minic.Var("y"))},
		},
	}}}
	bin, m := buildModel(t, p)
	fn := fnNamed(t, bin, m, "f")
	g := BuildDDG(fn)
	slotEdges := 0
	for _, e := range g.Edges {
		if strings.HasPrefix(e.Loc, "sp") {
			slotEdges++
		}
	}
	if slotEdges < 2 {
		t.Errorf("stack-slot edges = %d, want >= 2", slotEdges)
	}
}

func TestDDGMergePoint(t *testing.T) {
	// Both branch arms define x; the use after the merge must see both
	// definitions (the essence of reaching definitions).
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{
		Name: "f", NParams: 1,
		Body: []minic.Stmt{
			minic.Let{Name: "x", E: minic.Int(0)},
			minic.If{Cond: minic.Cond{Op: minic.Gt, L: minic.Var("p0"), R: minic.Int(0)},
				Then: []minic.Stmt{minic.Assign{Name: "x", E: minic.Int(1)}},
				Else: []minic.Stmt{minic.Assign{Name: "x", E: minic.Int(2)}}},
			minic.Return{E: minic.Var("x")},
		},
	}}}
	bin, m := buildModel(t, p)
	fn := fnNamed(t, bin, m, "f")
	g := BuildDDG(fn)
	// Find the slot location used by the final read of x: it must have at
	// least two reaching definitions (one per arm).
	maxDefs := 0
	byUse := map[uint32]map[string]int{}
	for _, e := range g.Edges {
		if !strings.HasPrefix(e.Loc, "sp") {
			continue
		}
		if byUse[e.Use] == nil {
			byUse[e.Use] = map[string]int{}
		}
		byUse[e.Use][e.Loc]++
		if n := byUse[e.Use][e.Loc]; n > maxDefs {
			maxDefs = n
		}
	}
	if maxDefs < 2 {
		t.Errorf("no merged use sees multiple reaching definitions (max %d)", maxDefs)
	}
}

func TestDDGCallClobbersArgs(t *testing.T) {
	// After a call, a use of r0 must depend on the call, not on the
	// pre-call argument setup.
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{
		{Name: "g", NParams: 1, Body: []minic.Stmt{minic.Return{E: minic.Var("p0")}}},
		{Name: "f", NParams: 1, Body: []minic.Stmt{
			minic.Return{E: minic.Call{Name: "g", Args: []minic.Expr{minic.Var("p0")}}},
		}},
	}}
	bin, m := buildModel(t, p)
	fn := fnNamed(t, bin, m, "f")
	g := BuildDDG(fn)
	// Locate the call instruction.
	var callAddr uint32
	for _, ba := range fn.Order {
		b := fn.Blocks[ba]
		for i, in := range b.Instrs {
			if in.Op == isa.OpCall {
				callAddr = b.Start + uint32(i*8)
			}
		}
	}
	if callAddr == 0 {
		t.Fatal("no call instruction")
	}
	if len(g.UsesOf(callAddr)) == 0 {
		t.Error("call's r0 definition has no uses")
	}
	// r0 uses after the call must not be reached by pre-call movs.
	for _, e := range g.Edges {
		if e.Loc == "r0" && e.Use > callAddr && e.Def < callAddr && e.Def != fn.Entry {
			t.Errorf("stale r0 definition %#x reaches post-call use %#x", e.Def, e.Use)
		}
	}
}

func TestDDGDeterministic(t *testing.T) {
	bin, m := buildModel(t, callSiteProgram())
	fn := fnNamed(t, bin, m, "getvar")
	a := BuildDDG(fn)
	b := BuildDDG(fn)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}
