// Package dataflow implements the two program analyses behind the flow
// features of the behavioral feature vector:
//
//   - a reaching-definition style forward dataflow over the IR that tracks
//     which locations (registers and stack slots) carry values derived from
//     the function's parameters — the data dependency graph (DDG) of the
//     paper's Algorithm 1 — answering whether parameters control loops,
//     control branches, or flow into anchor-function arguments; and
//
//   - call-site analysis with the backtracking rules of the paper's Table 2,
//     classifying arguments at every call site of a function as string
//     constants by chasing registers back to constants and resolving them
//     against the rodata/data sections (including GOT-style indirection).
package dataflow

import "fits/internal/isa"

// ParamMask is a bit set of parameter indices (bit i = parameter i).
type ParamMask uint8

// Has reports whether any bit is set.
func (m ParamMask) Has() bool { return m != 0 }

// ValKind classifies an abstract value.
type ValKind uint8

// Abstract value kinds: a known constant, a stack-pointer-relative address,
// or an arbitrary value.
const (
	KTop ValKind = iota
	KConst
	KSPRel
)

// AVal is the abstract value of the reaching-definition analysis: an
// optional shape (constant or SP-relative) plus the parameter taint carried.
type AVal struct {
	Kind  ValKind
	C     int32 // constant value or SP offset
	Taint ParamMask
}

func top(t ParamMask) AVal { return AVal{Kind: KTop, Taint: t} }

// merge joins two abstract values at a control-flow merge point.
func merge(a, b AVal) AVal {
	t := a.Taint | b.Taint
	if a.Kind == b.Kind && a.C == b.C {
		return AVal{Kind: a.Kind, C: a.C, Taint: t}
	}
	return top(t)
}

// loc is an abstract storage location: a register, a stack slot keyed by its
// offset from the function-entry stack pointer, or a global address — encoded
// as a single ordered integer so states can be kept as sorted slices. The
// kind lives in the high bits, the value in the low 32.
type loc uint64

const (
	locKindReg  = uint64(0) << 32
	locKindSlot = uint64(1) << 32
	locKindGlob = uint64(2) << 32
)

func regLoc(r isa.Reg) loc    { return loc(locKindReg | uint64(uint8(r))) }
func slotLoc(off int32) loc   { return loc(locKindSlot | uint64(uint32(off))) }
func globLoc(addr uint32) loc { return loc(locKindGlob | uint64(addr)) }

// stateEntry is one (location, value) binding of an abstract state.
type stateEntry struct {
	loc loc
	val AVal
}

// absState maps locations to abstract values; missing locations are
// untainted Top. The representation is a slice of entries sorted by loc with
// copy-on-write sharing: clone is O(1) and marks both states shared, and the
// first mutation of a shared state copies the entries once. This replaces
// the map-per-edge cloning that dominated the pipeline's allocation profile.
type absState struct {
	entries []stateEntry
	shared  bool // entries are aliased by another state; copy before writing
}

// clone returns a state observationally equal to s. Both states keep sharing
// the entry slice until one of them writes.
func (s *absState) clone() absState {
	s.shared = true
	return absState{entries: s.entries, shared: true}
}

// own makes the entry slice exclusively s's, copying it if shared.
func (s *absState) own() {
	if s.shared {
		s.entries = append(make([]stateEntry, 0, len(s.entries)+8), s.entries...)
		s.shared = false
	}
}

// find returns the index of l in the sorted entries, or the insertion point
// with ok=false.
func (s *absState) find(l loc) (int, bool) {
	lo, hi := 0, len(s.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.entries[mid].loc < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.entries) && s.entries[lo].loc == l
}

// get returns the value bound to l; missing locations read as untainted Top.
func (s *absState) get(l loc) AVal {
	if i, ok := s.find(l); ok {
		return s.entries[i].val
	}
	return AVal{Kind: KTop}
}

// set binds l to v, copying the shared entry slice first if needed.
func (s *absState) set(l loc, v AVal) {
	i, ok := s.find(l)
	if ok {
		if s.entries[i].val == v {
			return
		}
		s.own()
		s.entries[i].val = v
		return
	}
	s.own()
	s.entries = append(s.entries, stateEntry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = stateEntry{loc: l, val: v}
}

// join merges another state into s, reporting whether s changed: bindings
// present in both merge pointwise, bindings only in o are inserted, bindings
// only in s are kept. This is observationally the map-based union join.
func (s *absState) join(o *absState) bool {
	if len(o.entries) == 0 {
		return false
	}
	// Fast path: probe for a change before copying anything.
	changed := false
	i, j := 0, 0
	for i < len(s.entries) && j < len(o.entries) {
		a, b := s.entries[i].loc, o.entries[j].loc
		switch {
		case a < b:
			i++
		case a > b:
			changed = true // o-only binding must be inserted
			j++
		default:
			if merge(s.entries[i].val, o.entries[j].val) != s.entries[i].val {
				changed = true
			}
			i++
			j++
		}
		if changed {
			break
		}
	}
	if !changed && j >= len(o.entries) {
		return false
	}

	// Slow path: build the merged slice into a fresh buffer.
	out := make([]stateEntry, 0, len(s.entries)+len(o.entries))
	i, j = 0, 0
	for i < len(s.entries) && j < len(o.entries) {
		a, b := s.entries[i], o.entries[j]
		switch {
		case a.loc < b.loc:
			out = append(out, a)
			i++
		case a.loc > b.loc:
			out = append(out, b)
			j++
		default:
			out = append(out, stateEntry{loc: a.loc, val: merge(a.val, b.val)})
			i++
			j++
		}
	}
	out = append(out, s.entries[i:]...)
	out = append(out, o.entries[j:]...)
	s.entries = out
	s.shared = false
	return true
}
