// Package dataflow implements the two program analyses behind the flow
// features of the behavioral feature vector:
//
//   - a reaching-definition style forward dataflow over the IR that tracks
//     which locations (registers and stack slots) carry values derived from
//     the function's parameters — the data dependency graph (DDG) of the
//     paper's Algorithm 1 — answering whether parameters control loops,
//     control branches, or flow into anchor-function arguments; and
//
//   - call-site analysis with the backtracking rules of the paper's Table 2,
//     classifying arguments at every call site of a function as string
//     constants by chasing registers back to constants and resolving them
//     against the rodata/data sections (including GOT-style indirection).
package dataflow

import "fits/internal/isa"

// ParamMask is a bit set of parameter indices (bit i = parameter i).
type ParamMask uint8

// Has reports whether any bit is set.
func (m ParamMask) Has() bool { return m != 0 }

// ValKind classifies an abstract value.
type ValKind uint8

// Abstract value kinds: a known constant, a stack-pointer-relative address,
// or an arbitrary value.
const (
	KTop ValKind = iota
	KConst
	KSPRel
)

// AVal is the abstract value of the reaching-definition analysis: an
// optional shape (constant or SP-relative) plus the parameter taint carried.
type AVal struct {
	Kind  ValKind
	C     int32 // constant value or SP offset
	Taint ParamMask
}

func top(t ParamMask) AVal { return AVal{Kind: KTop, Taint: t} }

// merge joins two abstract values at a control-flow merge point.
func merge(a, b AVal) AVal {
	t := a.Taint | b.Taint
	if a.Kind == b.Kind && a.C == b.C {
		return AVal{Kind: a.Kind, C: a.C, Taint: t}
	}
	return top(t)
}

// loc is an abstract storage location: a register or a stack slot keyed by
// its offset from the function-entry stack pointer.
type loc struct {
	reg   isa.Reg // valid when isReg
	isReg bool
	slot  int32 // SP-entry-relative offset
}

func regLoc(r isa.Reg) loc  { return loc{isReg: true, reg: r} }
func slotLoc(off int32) loc { return loc{slot: off} }

// absState maps locations to abstract values. Missing locations are
// untainted Top.
type absState map[loc]AVal

func (s absState) clone() absState {
	ns := make(absState, len(s))
	for k, v := range s {
		ns[k] = v
	}
	return ns
}

// join merges another state into s, reporting whether s changed.
func (s absState) join(o absState) bool {
	changed := false
	for k, v := range o {
		if cur, ok := s[k]; ok {
			nv := merge(cur, v)
			if nv != cur {
				s[k] = nv
				changed = true
			}
		} else {
			s[k] = v
			changed = true
		}
	}
	return changed
}
