package dataflow

import (
	"sort"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/intern"
	"fits/internal/ir"
	"fits/internal/isa"
)

// StringFacts are the interprocedural flow features of a function (Table 1,
// features 10 and 11): whether any caller passes a string constant argument,
// and the distinct strings appearing across all call sites.
type StringFacts struct {
	ArgsContainString bool
	Strings           []string // sorted, de-duplicated
}

// CallSiteStrings analyzes every call site of fn recorded in the model,
// backtracking argument registers per the paper's Table 2 and classifying
// the resulting constants against the binary's sections.
func CallSiteStrings(bin *binimg.Binary, m *cfg.Model, fn *cfg.Function) StringFacts {
	return CallSiteStringsN(bin, m, fn.Entry, fn.Params)
}

// CallSiteStringsN is CallSiteStrings with an explicit arity, used when the
// callee's parameter count is known externally (e.g. anchor import stubs,
// whose trampolines read no registers of their own).
func CallSiteStringsN(bin *binimg.Binary, m *cfg.Model, entry uint32, nargs int) StringFacts {
	return CallSiteStringsInterned(bin, m, entry, nargs, nil)
}

// CallSiteStringsInterned is CallSiteStringsN with a string intern table:
// classified constants are canonicalized through tab, so a string passed at
// many call sites across many functions (format strings, configuration keys)
// costs one allocation per analysis instead of one per sighting. A nil tab
// still materializes each distinct string only once per call — classification
// works on section views and the map lookup below is conversion-free.
func CallSiteStringsInterned(bin *binimg.Binary, m *cfg.Model, entry uint32, nargs int, tab *intern.Table) StringFacts {
	if nargs > 4 {
		nargs = 4
	}
	set := map[string]bool{}
	var facts StringFacts
	for _, cs := range m.Callers[entry] {
		caller, ok := m.FuncAt(cs.Caller)
		if !ok {
			continue
		}
		for arg := 0; arg < nargs; arg++ {
			c, ok := BacktrackRegister(caller, cs.Addr, isa.Reg(arg))
			if !ok {
				continue
			}
			if v, ok := classifyStringBytes(bin, c); ok {
				facts.ArgsContainString = true
				if !set[string(v)] { // no-alloc lookup on repeats
					set[tab.Bytes(v)] = true
				}
			}
		}
	}
	for s := range set {
		facts.Strings = append(facts.Strings, s)
	}
	sort.Strings(facts.Strings)
	return facts
}

// OriginKind classifies what an argument register resolves to.
type OriginKind uint8

// Argument origins.
const (
	OriginUnknown OriginKind = iota
	OriginConst
	OriginParam
)

// ArgOrigin is the result of backtracking an argument register.
type ArgOrigin struct {
	Kind  OriginKind
	Const uint32 // valid for OriginConst
	Param int    // parameter index for OriginParam
}

// BacktrackRegister walks instructions backwards from (not including) the
// call at callAddr inside caller, tracking reg through the IR expressions of
// Table 2 until it can be represented by a constant:
//
//	PUT(r) = const          -> done
//	PUT(r) = t, t = GET(r') -> continue with r'
//	t = Binop(t', const)    -> continue through t' (additive offset folded)
//	t = Load(sp + c)        -> continue through the stack slot's last store
//
// The walk follows unique predecessors across block boundaries and gives up
// at merge points, as the paper's analysis does.
func BacktrackRegister(caller *cfg.Function, callAddr uint32, reg isa.Reg) (uint32, bool) {
	o := BacktrackArg(caller, callAddr, reg)
	if o.Kind == OriginConst {
		return o.Const, true
	}
	return 0, false
}

// BacktrackArg is BacktrackRegister extended with parameter origins: when
// the walk reaches the function entry still tracking an argument register
// (or its spill slot), the value is the caller's own parameter, enabling
// interprocedural argument binding.
func BacktrackArg(caller *cfg.Function, callAddr uint32, reg isa.Reg) ArgOrigin {
	blk := blockContaining(caller, callAddr)
	if blk == nil {
		return ArgOrigin{}
	}
	preds := map[uint32][]uint32{}
	for _, ba := range caller.Order {
		for _, s := range caller.Blocks[ba].Succs {
			preds[s] = append(preds[s], ba)
		}
	}

	// Tracking target: a register or a stack slot (entry-SP relative; the
	// compiled frame keeps SP constant through the body).
	trackReg := true
	target := reg
	var slot int32
	offset := uint32(0)
	limit := 512
	startIdx := indexOf(blk, callAddr) - 1
	for hops := 0; hops < 64; hops++ {
		for i := startIdx; i >= 0; i-- {
			if limit--; limit < 0 {
				return ArgOrigin{}
			}
			irb := blk.IR[i]
			var src ir.Expr
			if trackReg {
				e, found, stop := putsTo(irb, target)
				if stop {
					return ArgOrigin{}
				}
				if !found {
					continue
				}
				src = e
			} else {
				e, found := storesToSlot(irb, slot)
				if !found {
					continue
				}
				src = e
			}
			o := traceExpr(irb, src)
			switch o.kind {
			case traceConst:
				return ArgOrigin{Kind: OriginConst, Const: o.c + offset + o.off}
			case traceReg:
				trackReg, target = true, o.reg
				offset += o.off
			case traceSlot:
				trackReg, slot = false, o.slot
				offset += o.off
			default:
				return ArgOrigin{}
			}
		}
		if blk.Start == caller.Entry {
			// Reached the function entry: an argument register still being
			// tracked is the caller's own parameter.
			if trackReg && target < 4 && int(target) < caller.Params && offset == 0 {
				return ArgOrigin{Kind: OriginParam, Param: int(target)}
			}
			return ArgOrigin{}
		}
		ps := preds[blk.Start]
		if len(ps) != 1 {
			return ArgOrigin{}
		}
		blk = caller.Blocks[ps[0]]
		startIdx = len(blk.IR) - 1
	}
	return ArgOrigin{}
}

// putsTo returns the expression assigned to reg by the lifted instruction.
// stop reports that the register is clobbered here with an untrackable value
// (a call or system primitive), which terminates backtracking.
func putsTo(irb *ir.Block, reg isa.Reg) (e ir.Expr, found, stop bool) {
	for i := len(irb.Stmts) - 1; i >= 0; i-- {
		if p, ok := irb.Stmts[i].(*ir.Put); ok && p.R == reg {
			return p.E, true, false
		}
		// A call clobbers argument registers: the value does not
		// originate before it.
		if _, ok := irb.Stmts[i].(*ir.Call); ok {
			if reg < 4 || reg == isa.LR {
				return nil, false, true
			}
		}
		if _, ok := irb.Stmts[i].(*ir.Sys); ok && reg == isa.R0 {
			return nil, false, true
		}
	}
	return nil, false, false
}

// storesToSlot returns the value expression stored to [sp+slot] by the
// lifted instruction, if any.
func storesToSlot(irb *ir.Block, slot int32) (ir.Expr, bool) {
	temps := map[ir.Temp]ir.Expr{}
	for _, s := range irb.Stmts {
		if w, ok := s.(*ir.WrTmp); ok {
			temps[w.T] = w.E
		}
	}
	// Resolve an address expression to an SP-relative offset.
	var spOff func(e ir.Expr, depth int) (int32, bool)
	spOff = func(e ir.Expr, depth int) (int32, bool) {
		if depth > 8 {
			return 0, false
		}
		switch e := e.(type) {
		case *ir.Get:
			if e.R == isa.SP {
				return 0, true
			}
		case *ir.RdTmp:
			if inner, ok := temps[e.T]; ok {
				return spOff(inner, depth+1)
			}
		case *ir.Binop:
			if e.Op == ir.Add {
				if c, ok := e.R.(*ir.Const); ok {
					if base, ok2 := spOff(e.L, depth+1); ok2 {
						return base + int32(c.V), true
					}
				}
			}
		}
		return 0, false
	}
	for i := len(irb.Stmts) - 1; i >= 0; i-- {
		st, ok := irb.Stmts[i].(*ir.Store)
		if !ok {
			continue
		}
		if off, ok := spOff(st.Addr, 0); ok && off == slot {
			return st.Val, true
		}
	}
	return nil, false
}

// trace result kinds.
type traceKind uint8

const (
	traceFail traceKind = iota
	traceConst
	traceReg
	traceSlot
)

type traceResult struct {
	kind traceKind
	c    uint32
	reg  isa.Reg
	slot int32
	off  uint32
}

// traceExpr resolves an expression within one lifted instruction to a
// constant, a register to keep tracking, or a stack slot, accumulating
// additive constant offsets.
func traceExpr(irb *ir.Block, e ir.Expr) traceResult {
	temps := map[ir.Temp]ir.Expr{}
	for _, s := range irb.Stmts {
		if w, ok := s.(*ir.WrTmp); ok {
			temps[w.T] = w.E
		}
	}
	var walk func(e ir.Expr, depth int) traceResult
	walk = func(e ir.Expr, depth int) traceResult {
		if depth > 16 {
			return traceResult{}
		}
		switch e := e.(type) {
		case *ir.Const:
			return traceResult{kind: traceConst, c: uint32(e.V)}
		case *ir.Get:
			return traceResult{kind: traceReg, reg: e.R}
		case *ir.RdTmp:
			inner, ok := temps[e.T]
			if !ok {
				return traceResult{}
			}
			return walk(inner, depth+1)
		case *ir.Binop:
			// Only additive offsets with a constant operand are folded,
			// per Table 2's Binop(t, constant) rule.
			if e.Op != ir.Add {
				return traceResult{}
			}
			if rc, okc := e.R.(*ir.Const); okc {
				r := walk(e.L, depth+1)
				r.off += uint32(rc.V)
				return r
			}
			if lc, okc := e.L.(*ir.Const); okc {
				r := walk(e.R, depth+1)
				r.off += uint32(lc.V)
				return r
			}
			return traceResult{}
		case *ir.Load:
			// A word reloaded from a stack slot continues through the
			// slot's last store.
			if e.Size != isa.WordSize {
				return traceResult{}
			}
			temps2 := temps
			var spOff func(a ir.Expr, depth int) (int32, bool)
			spOff = func(a ir.Expr, depth int) (int32, bool) {
				if depth > 8 {
					return 0, false
				}
				switch a := a.(type) {
				case *ir.Get:
					if a.R == isa.SP {
						return 0, true
					}
				case *ir.RdTmp:
					if inner, ok := temps2[a.T]; ok {
						return spOff(inner, depth+1)
					}
				case *ir.Binop:
					if a.Op == ir.Add {
						if c, ok := a.R.(*ir.Const); ok {
							if base, ok2 := spOff(a.L, depth+1); ok2 {
								return base + int32(c.V), true
							}
						}
					}
				}
				return 0, false
			}
			if off, ok := spOff(e.Addr, 0); ok {
				return traceResult{kind: traceSlot, slot: off}
			}
			return traceResult{}
		default:
			return traceResult{}
		}
	}
	return walk(e, 0)
}

// ClassifyStringConstant decides whether a constant is a string address
// following the paper's section rules: rodata pointers are strings; data
// pointers are dereferenced once (GOT-style indirection) and accepted if the
// referenced location is itself a printable string in rodata or data.
func ClassifyStringConstant(bin *binimg.Binary, c uint32) (string, bool) {
	v, ok := classifyStringBytes(bin, c)
	if !ok {
		return "", false
	}
	return string(v), true
}

// classifyStringBytes is ClassifyStringConstant without materializing the
// string: the returned bytes view the binary's sections, so callers that
// intern or deduplicate decide for themselves when to allocate.
func classifyStringBytes(bin *binimg.Binary, c uint32) ([]byte, bool) {
	switch bin.SectionOf(c) {
	case "rodata":
		v, ok := bin.CStringBytes(c)
		if ok && printable(v) {
			return v, true
		}
	case "data":
		// PT points into data: retrieve MT and follow one level.
		if mt, ok := bin.WordAt(c); ok {
			sec := bin.SectionOf(mt)
			if sec == "rodata" || sec == "data" {
				if v, ok := bin.CStringBytes(mt); ok && printable(v) {
					return v, true
				}
			}
		}
		// Otherwise the data bytes themselves may hold a hint string.
		if v, ok := bin.CStringBytes(c); ok && printable(v) && len(v) > 0 {
			return v, true
		}
	}
	return nil, false
}

func printable(s []byte) bool {
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] > 0x7e {
			return false
		}
	}
	return true
}

func blockContaining(f *cfg.Function, addr uint32) *cfg.BasicBlock {
	for _, ba := range f.Order {
		b := f.Blocks[ba]
		if addr >= b.Start && addr < b.End() {
			return b
		}
	}
	return nil
}

func indexOf(b *cfg.BasicBlock, addr uint32) int {
	return int(addr-b.Start) / isa.Width
}
