package dataflow

import (
	"slices"
	"sort"

	"fits/internal/cfg"
	"fits/internal/ir"
	"fits/internal/isa"
)

// The paper's Algorithm 1 performs reaching definition analysis "to form the
// data dependency graph (DDG)" through which parameter influence is traced.
// This file exposes that graph explicitly: definitions are instructions that
// write a location (register or stack slot), uses are instructions that read
// one, and an edge connects a definition to a use it reaches.

// DefUse is one data-dependency edge: the definition at Def reaches the use
// at Use through the given location.
type DefUse struct {
	Def uint32 // instruction address writing the location
	Use uint32 // instruction address reading it
	Loc string // "r3" or "sp+12"
}

// DDG is a function's data dependency graph.
type DDG struct {
	Edges []DefUse
}

// UsesOf returns the uses reached by the definition at addr.
func (g *DDG) UsesOf(def uint32) []uint32 {
	var out []uint32
	for _, e := range g.Edges {
		if e.Def == def {
			out = append(out, e.Use)
		}
	}
	slices.Sort(out)
	return out
}

// DefsOf returns the definitions reaching the use at addr.
func (g *DDG) DefsOf(use uint32) []uint32 {
	var out []uint32
	for _, e := range g.Edges {
		if e.Use == use {
			out = append(out, e.Def)
		}
	}
	slices.Sort(out)
	return out
}

// ddgLoc keys a location: register or entry-SP-relative slot.
type ddgLoc struct {
	isReg bool
	reg   isa.Reg
	slot  int32
}

func (l ddgLoc) String() string {
	if l.isReg {
		return l.reg.String()
	}
	if l.slot >= 0 {
		return "sp+" + itoa(int(l.slot))
	}
	return "sp-" + itoa(int(-l.slot))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// defSet is the reaching-definition set per location.
type defSet map[ddgLoc]map[uint32]bool

func (s defSet) clone() defSet {
	ns := make(defSet, len(s))
	for l, defs := range s {
		nd := make(map[uint32]bool, len(defs))
		for d := range defs {
			nd[d] = true
		}
		ns[l] = nd
	}
	return ns
}

func (s defSet) join(o defSet) bool {
	changed := false
	for l, defs := range o {
		cur, ok := s[l]
		if !ok {
			cur = map[uint32]bool{}
			s[l] = cur
		}
		for d := range defs {
			if !cur[d] {
				cur[d] = true
				changed = true
			}
		}
	}
	return changed
}

// BuildDDG computes the reaching-definition def-use graph of a function.
// Parameter spills and the entry state use the function entry address as the
// pseudo-definition site.
func BuildDDG(fn *cfg.Function) *DDG {
	// Fixpoint over blocks.
	in := map[uint32]defSet{fn.Entry: entryDefs(fn)}
	work := []uint32{fn.Entry}
	inWork := map[uint32]bool{fn.Entry: true}
	for iters := 0; len(work) > 0 && iters < 4096; iters++ {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		blk := fn.Blocks[b]
		if blk == nil {
			continue
		}
		st, ok := in[b]
		if !ok {
			continue
		}
		out := transferDDG(blk, st.clone(), nil)
		for _, succ := range blk.Succs {
			if _, ok := fn.Blocks[succ]; !ok {
				continue
			}
			cur, ok := in[succ]
			if !ok {
				in[succ] = out.clone()
			} else if !cur.join(out) {
				continue
			}
			if !inWork[succ] {
				work = append(work, succ)
				inWork[succ] = true
			}
		}
	}

	// Recording pass.
	g := &DDG{}
	seen := map[DefUse]bool{}
	record := func(e DefUse) {
		if !seen[e] {
			seen[e] = true
			g.Edges = append(g.Edges, e)
		}
	}
	for _, ba := range fn.Order {
		st, ok := in[ba]
		if !ok {
			continue
		}
		transferDDG(fn.Blocks[ba], st.clone(), record)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.Def != b.Def {
			return a.Def < b.Def
		}
		if a.Use != b.Use {
			return a.Use < b.Use
		}
		return a.Loc < b.Loc
	})
	return g
}

func entryDefs(fn *cfg.Function) defSet {
	s := defSet{}
	for i := 0; i < fn.Params && i < 4; i++ {
		s[ddgLoc{isReg: true, reg: isa.Reg(i)}] = map[uint32]bool{fn.Entry: true}
	}
	s[ddgLoc{isReg: true, reg: isa.SP}] = map[uint32]bool{fn.Entry: true}
	return s
}

// transferDDG interprets one block; record (when non-nil) receives def-use
// edges as uses are evaluated.
func transferDDG(blk *cfg.BasicBlock, st defSet, record func(DefUse)) defSet {
	// Track SP-relative shapes of temporaries so slot locations resolve.
	type shape struct {
		isSP  bool
		off   int32
		known bool
	}
	for _, irb := range blk.IR {
		temps := map[ir.Temp]shape{}
		use := func(l ddgLoc) {
			if record == nil {
				return
			}
			for d := range st[l] {
				record(DefUse{Def: d, Use: irb.Addr, Loc: l.String()})
			}
		}
		def := func(l ddgLoc) {
			st[l] = map[uint32]bool{irb.Addr: true}
		}
		var evalShape func(e ir.Expr) shape
		evalShape = func(e ir.Expr) shape {
			switch e := e.(type) {
			case *ir.Const:
				return shape{known: true}
			case *ir.Get:
				use(ddgLoc{isReg: true, reg: e.R})
				if e.R == isa.SP {
					return shape{isSP: true, known: true}
				}
				return shape{}
			case *ir.RdTmp:
				return temps[e.T]
			case *ir.Binop:
				l := evalShape(e.L)
				r := evalShape(e.R)
				if e.Op == ir.Add && l.isSP {
					if c, ok := e.R.(*ir.Const); ok {
						return shape{isSP: true, off: l.off + int32(c.V), known: true}
					}
				}
				_ = r
				return shape{}
			case *ir.Load:
				a := evalShape(e.Addr)
				if a.isSP {
					use(ddgLoc{slot: a.off})
				}
				return shape{}
			}
			return shape{}
		}
		for _, s := range irb.Stmts {
			switch s := s.(type) {
			case *ir.WrTmp:
				temps[s.T] = evalShape(s.E)
			case *ir.Put:
				evalShape(s.E)
				def(ddgLoc{isReg: true, reg: s.R})
			case *ir.Store:
				evalShape(s.Val)
				a := evalShape(s.Addr)
				if a.isSP {
					def(ddgLoc{slot: a.off})
				}
			case *ir.Exit:
				evalShape(s.Cond)
			case *ir.Call:
				// Calls consume the argument registers and redefine the
				// caller-saved set.
				for r := isa.Reg(0); r < 4; r++ {
					use(ddgLoc{isReg: true, reg: r})
				}
				for r := isa.Reg(0); r < 4; r++ {
					def(ddgLoc{isReg: true, reg: r})
				}
				def(ddgLoc{isReg: true, reg: isa.LR})
			case *ir.Sys:
				def(ddgLoc{isReg: true, reg: isa.R0})
			}
		}
	}
	return st
}
