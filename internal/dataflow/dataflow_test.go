package dataflow

import (
	"reflect"
	"testing"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/isa"
	"fits/internal/minic"
)

func buildModel(t *testing.T, p *minic.Program) (*binimg.Binary, *cfg.Model) {
	t.Helper()
	bin, err := minic.Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cfg.Build(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return bin, m
}

func fnNamed(t *testing.T, bin *binimg.Binary, m *cfg.Model, name string) *cfg.Function {
	t.Helper()
	for _, s := range bin.Funcs {
		if s.Name == name {
			if f, ok := m.FuncAt(s.Addr); ok {
				return f
			}
		}
	}
	t.Fatalf("function %q not in model", name)
	return nil
}

// anchorsByName recognizes the given import names as 2-ary anchors.
func anchorsByName(names ...string) AnchorFunc {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return func(cs cfg.CallSite) AnchorInfo {
		if set[cs.ImportName] {
			return AnchorInfo{Arity: 2, Anchor: true}
		}
		return AnchorInfo{}
	}
}

func oneFunc(name string, nparams int, body []minic.Stmt) *minic.Program {
	return &minic.Program{Name: "t", Funcs: []*minic.Func{{Name: name, NParams: nparams, Body: body}}}
}

func TestParamControlsBranch(t *testing.T) {
	p := oneFunc("f", 1, []minic.Stmt{
		minic.If{Cond: minic.Cond{Op: minic.Gt, L: minic.Var("p0"), R: minic.Int(3)},
			Then: []minic.Stmt{minic.Return{E: minic.Int(1)}}},
		minic.Return{E: minic.Int(0)},
	})
	bin, m := buildModel(t, p)
	facts := Analyze(fnNamed(t, bin, m, "f"), nil)
	if !facts.ParamControlsBranch {
		t.Error("branch control not detected")
	}
	if facts.ParamControlsLoop {
		t.Error("loop control falsely detected")
	}
}

func TestParamControlsLoop(t *testing.T) {
	p := oneFunc("f", 1, []minic.Stmt{
		minic.Let{Name: "i", E: minic.Int(0)},
		minic.While{Cond: minic.Cond{Op: minic.Lt, L: minic.Var("i"), R: minic.Var("p0")},
			Body: []minic.Stmt{minic.Assign{Name: "i", E: minic.Add(minic.Var("i"), minic.Int(1))}}},
		minic.Return{E: minic.Var("i")},
	})
	bin, m := buildModel(t, p)
	facts := Analyze(fnNamed(t, bin, m, "f"), nil)
	if !facts.ParamControlsLoop || !facts.ParamControlsBranch {
		t.Errorf("facts = %+v", facts)
	}
}

func TestConstantBranchNotParamControlled(t *testing.T) {
	p := oneFunc("f", 1, []minic.Stmt{
		minic.Let{Name: "x", E: minic.Int(5)},
		minic.If{Cond: minic.Cond{Op: minic.Gt, L: minic.Var("x"), R: minic.Int(3)},
			Then: []minic.Stmt{minic.Return{E: minic.Int(1)}}},
		minic.Return{E: minic.Int(0)},
	})
	bin, m := buildModel(t, p)
	facts := Analyze(fnNamed(t, bin, m, "f"), nil)
	if facts.ParamControlsBranch || facts.ParamControlsLoop {
		t.Errorf("facts = %+v", facts)
	}
}

func TestParamThroughLocalAndGlobal(t *testing.T) {
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "g", Size: 4}},
		Funcs: []*minic.Func{{Name: "f", NParams: 1, Body: []minic.Stmt{
			minic.Let{Name: "x", E: minic.Add(minic.Var("p0"), minic.Int(1))},
			minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("g"), Val: minic.Var("x")},
			minic.If{Cond: minic.Cond{Op: minic.Ne, L: minic.LoadW(minic.GlobalRef("g")), R: minic.Int(0)},
				Then: []minic.Stmt{minic.Return{E: minic.Int(1)}}},
			minic.Return{E: minic.Int(0)},
		}}},
	}
	bin, m := buildModel(t, p)
	facts := Analyze(fnNamed(t, bin, m, "f"), nil)
	if !facts.ParamControlsBranch {
		t.Error("taint lost through local and global")
	}
}

func TestParamToAnchor(t *testing.T) {
	p := oneFunc("f", 2, []minic.Stmt{
		minic.ExprStmt{E: minic.Call{Name: "memcmp_like", Args: []minic.Expr{minic.Var("p0"), minic.Var("p1")}}},
		minic.Return{E: minic.Int(0)},
	})
	bin, m := buildModel(t, p)
	facts := Analyze(fnNamed(t, bin, m, "f"), anchorsByName("memcmp_like"))
	if !facts.ParamToAnchor {
		t.Error("param-to-anchor not detected")
	}
	// With no anchors configured the fact must stay false.
	facts = Analyze(fnNamed(t, bin, m, "f"), anchorsByName("other"))
	if facts.ParamToAnchor {
		t.Error("param-to-anchor falsely detected")
	}
}

func TestConstArgToAnchorNotParam(t *testing.T) {
	p := oneFunc("f", 1, []minic.Stmt{
		minic.ExprStmt{E: minic.Call{Name: "memcmp_like", Args: []minic.Expr{minic.Str("x"), minic.Int(1)}}},
		minic.Return{E: minic.Var("p0")},
	})
	bin, m := buildModel(t, p)
	facts := Analyze(fnNamed(t, bin, m, "f"), anchorsByName("memcmp_like"))
	if facts.ParamToAnchor {
		t.Error("constant args flagged as parameter flow")
	}
}

func TestTaintedReturn(t *testing.T) {
	p := oneFunc("f", 1, []minic.Stmt{minic.Return{E: minic.Add(minic.Var("p0"), minic.Int(1))}})
	bin, m := buildModel(t, p)
	if facts := Analyze(fnNamed(t, bin, m, "f"), nil); !facts.TaintedReturn {
		t.Error("tainted return not detected")
	}
	p2 := oneFunc("g", 1, []minic.Stmt{minic.Return{E: minic.Int(7)}})
	bin2, m2 := buildModel(t, p2)
	if facts := Analyze(fnNamed(t, bin2, m2, "g"), nil); facts.TaintedReturn {
		t.Error("constant return flagged tainted")
	}
}

func TestDerefTaint(t *testing.T) {
	// Reading memory through a parameter-derived pointer is tainted.
	p := oneFunc("f", 1, []minic.Stmt{minic.Return{E: minic.LoadB(minic.Add(minic.Var("p0"), minic.Int(2)))}})
	bin, m := buildModel(t, p)
	if facts := Analyze(fnNamed(t, bin, m, "f"), nil); !facts.TaintedReturn {
		t.Error("deref taint lost")
	}
}

func TestCalleeReturnPropagatesArgTaint(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{
		{Name: "id", NParams: 1, Body: []minic.Stmt{minic.Return{E: minic.Var("p0")}}},
		{Name: "f", NParams: 1, Body: []minic.Stmt{
			minic.Return{E: minic.Call{Name: "id", Args: []minic.Expr{minic.Var("p0")}}},
		}},
	}}
	bin, m := buildModel(t, p)
	if facts := Analyze(fnNamed(t, bin, m, "f"), nil); !facts.TaintedReturn {
		t.Error("call-return taint lost")
	}
}

func callSiteProgram() *minic.Program {
	return &minic.Program{
		Name: "t",
		Globals: []*minic.Global{{
			Name: "keyslot", Size: 4, Init: make([]byte, 4),
			Ptrs: []minic.PtrInit{{Off: 0, Str: "password"}},
		}},
		Funcs: []*minic.Func{
			{Name: "getvar", NParams: 2, Body: []minic.Stmt{minic.Return{E: minic.Var("p0")}}},
			{Name: "caller1", NParams: 1, Body: []minic.Stmt{
				minic.Return{E: minic.Call{Name: "getvar", Args: []minic.Expr{minic.Str("username"), minic.Var("p0")}}},
			}},
			{Name: "caller2", Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "getvar", Args: []minic.Expr{minic.Str("lang"), minic.Int(3)}}},
				// Data-section constant whose slot points at "password":
				// the GOT-style indirection case of Table 2.
				minic.ExprStmt{E: minic.Call{Name: "getvar", Args: []minic.Expr{minic.GlobalRef("keyslot"), minic.Int(3)}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
}

func TestCallSiteStrings(t *testing.T) {
	bin, m := buildModel(t, callSiteProgram())
	fn := fnNamed(t, bin, m, "getvar")
	facts := CallSiteStrings(bin, m, fn)
	if !facts.ArgsContainString {
		t.Fatal("string arguments not detected")
	}
	want := []string{"lang", "password", "username"}
	if !reflect.DeepEqual(facts.Strings, want) {
		t.Errorf("strings = %v, want %v", facts.Strings, want)
	}
}

func TestNoStringArgs(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{
		{Name: "callee", NParams: 1, Body: []minic.Stmt{minic.Return{E: minic.Var("p0")}}},
		{Name: "caller", NParams: 1, Body: []minic.Stmt{
			minic.Return{E: minic.Call{Name: "callee", Args: []minic.Expr{minic.Add(minic.Var("p0"), minic.Int(1))}}},
		}},
	}}
	bin, m := buildModel(t, p)
	facts := CallSiteStrings(bin, m, fnNamed(t, bin, m, "callee"))
	if facts.ArgsContainString || len(facts.Strings) != 0 {
		t.Errorf("facts = %+v", facts)
	}
}

func TestBacktrackRegisterDirect(t *testing.T) {
	bin, m := buildModel(t, callSiteProgram())
	getvar := fnNamed(t, bin, m, "getvar")
	caller1 := fnNamed(t, bin, m, "caller1")
	var site *cfg.CallSite
	for i := range caller1.Calls {
		if caller1.Calls[i].Target == getvar.Entry {
			site = &caller1.Calls[i]
		}
	}
	if site == nil {
		t.Fatal("call site not found")
	}
	c, ok := BacktrackRegister(caller1, site.Addr, isa.R0)
	if !ok {
		t.Fatal("backtrack failed")
	}
	if s, ok := bin.CString(c); !ok || s != "username" {
		t.Errorf("constant %#x -> %q, %v", c, s, ok)
	}
	// The second argument comes from a parameter (stack load): must fail.
	if _, ok := BacktrackRegister(caller1, site.Addr, isa.R1); ok {
		t.Error("stack-loaded argument should not backtrack to a constant")
	}
}

func TestClassifyStringConstant(t *testing.T) {
	bin, _ := buildModel(t, callSiteProgram())
	// rodata string
	addr := findStr(bin, "username")
	if addr == 0 {
		t.Fatal("rodata string not found")
	}
	if s, ok := ClassifyStringConstant(bin, addr); !ok || s != "username" {
		t.Errorf("rodata classify = %q, %v", s, ok)
	}
	// text address is not a string
	if _, ok := ClassifyStringConstant(bin, bin.Text.Addr); ok {
		t.Error("text classified as string")
	}
	// arbitrary integer is not a string
	if _, ok := ClassifyStringConstant(bin, 0x12); ok {
		t.Error("small integer classified as string")
	}
}

func findStr(bin *binimg.Binary, s string) uint32 {
	data := bin.Rodata.Data
	for i := 0; i+len(s) < len(data); i++ {
		if string(data[i:i+len(s)]) == s && data[i+len(s)] == 0 {
			return bin.Rodata.Addr + uint32(i)
		}
	}
	return 0
}

func TestPrintable(t *testing.T) {
	if printable([]byte("")) || printable([]byte("a\x01b")) || printable([]byte("héllo")) {
		t.Error("printable accepts junk")
	}
	if !printable([]byte("user_name-42 ok")) {
		t.Error("printable rejects plain ASCII")
	}
}

func TestParamMask(t *testing.T) {
	if ParamMask(0).Has() {
		t.Error("zero mask has bits")
	}
	if !ParamMask(0b10).Has() {
		t.Error("nonzero mask reports empty")
	}
}

func TestMergeAVals(t *testing.T) {
	a := AVal{Kind: KConst, C: 4, Taint: 1}
	b := AVal{Kind: KConst, C: 4, Taint: 2}
	if got := merge(a, b); got.Kind != KConst || got.C != 4 || got.Taint != 3 {
		t.Errorf("merge same = %+v", got)
	}
	c := AVal{Kind: KConst, C: 5}
	if got := merge(a, c); got.Kind != KTop || got.Taint != 1 {
		t.Errorf("merge diff = %+v", got)
	}
}
