package dataflow

// Property tests for the sorted-slice copy-on-write abstract state: every
// observable behaviour (get after arbitrary set sequences, join results and
// change reporting, clone isolation) must match the map-based representation
// it replaced, on randomized states and operation sequences.

import (
	"math/rand"
	"testing"

	"fits/internal/isa"
)

// mapState is the reference implementation: the pre-overhaul map-based
// absState with its exact clone/join semantics.
type mapState map[loc]AVal

func (s mapState) clone() mapState {
	ns := make(mapState, len(s))
	for k, v := range s {
		ns[k] = v
	}
	return ns
}

func (s mapState) join(o mapState) bool {
	changed := false
	for k, v := range o {
		if cur, ok := s[k]; ok {
			nv := merge(cur, v)
			if nv != cur {
				s[k] = nv
				changed = true
			}
		} else {
			s[k] = v
			changed = true
		}
	}
	return changed
}

// randLoc draws from a deliberately small location universe so collisions
// (the interesting case for join/set) are frequent.
func randLoc(rng *rand.Rand) loc {
	switch rng.Intn(3) {
	case 0:
		return regLoc(isa.Reg(rng.Intn(8)))
	case 1:
		return slotLoc(int32(rng.Intn(8)*4 - 16)) // mix of negative and positive offsets
	default:
		return globLoc(uint32(0x1000 + rng.Intn(4)*4))
	}
}

func randAVal(rng *rand.Rand) AVal {
	return AVal{
		Kind:  ValKind(rng.Intn(3)),
		C:     int32(rng.Intn(5) - 2),
		Taint: ParamMask(rng.Intn(16)),
	}
}

// locUniverse enumerates every location the random generators can produce.
func locUniverse() []loc {
	var out []loc
	for r := 0; r < 8; r++ {
		out = append(out, regLoc(isa.Reg(r)))
	}
	for o := 0; o < 8; o++ {
		out = append(out, slotLoc(int32(o*4-16)))
	}
	for g := 0; g < 4; g++ {
		out = append(out, globLoc(uint32(0x1000+g*4)))
	}
	return out
}

func randPair(rng *rand.Rand, n int) (absState, mapState) {
	var s absState
	m := mapState{}
	for k := 0; k < n; k++ {
		l, v := randLoc(rng), randAVal(rng)
		s.set(l, v)
		m[l] = v
	}
	return s, m
}

// assertEqual checks s and m agree on every location in the universe,
// including ones neither has bound (both must read untainted Top).
func assertEqual(t *testing.T, ctx string, s *absState, m mapState) {
	t.Helper()
	for _, l := range locUniverse() {
		want, ok := m[l]
		if !ok {
			want = AVal{Kind: KTop}
		}
		if got := s.get(l); got != want {
			t.Fatalf("%s: loc %#x: slice=%+v map=%+v", ctx, uint64(l), got, want)
		}
	}
	bound := 0
	for _, l := range locUniverse() {
		if _, ok := m[l]; ok {
			bound++
		}
	}
	if len(s.entries) != bound {
		t.Fatalf("%s: %d entries, reference binds %d locations", ctx, len(s.entries), bound)
	}
}

func TestAbsStateSetGetMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		s, m := randPair(rng, rng.Intn(30))
		assertEqual(t, "set/get", &s, m)
	}
}

func TestAbsStateJoinMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		s, ms := randPair(rng, rng.Intn(20))
		o, mo := randPair(rng, rng.Intn(20))
		gotChanged := s.join(&o)
		wantChanged := ms.join(mo)
		if gotChanged != wantChanged {
			t.Fatalf("trial %d: join changed=%v, reference=%v", trial, gotChanged, wantChanged)
		}
		assertEqual(t, "join target", &s, ms)
		assertEqual(t, "join source untouched", &o, mo)
	}
}

func TestAbsStateJoinIdempotentAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		s, _ := randPair(rng, rng.Intn(20))
		o, _ := randPair(rng, rng.Intn(20))
		s.join(&o)
		if s.join(&o) {
			t.Fatal("second join with the same state must report no change")
		}
		snapshot := s.clone()
		if s.join(&snapshot) {
			t.Fatal("self-join must report no change")
		}
	}
}

// TestAbsStateCloneIsolation drives random interleaved mutations of a state
// and its clone; copy-on-write must keep them observationally independent.
func TestAbsStateCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		s, ms := randPair(rng, rng.Intn(20))
		c := s.clone()
		mc := ms.clone()
		for op := 0; op < 20; op++ {
			l, v := randLoc(rng), randAVal(rng)
			if rng.Intn(2) == 0 {
				s.set(l, v)
				ms[l] = v
			} else {
				c.set(l, v)
				mc[l] = v
			}
		}
		assertEqual(t, "original after clone mutation", &s, ms)
		assertEqual(t, "clone after original mutation", &c, mc)
	}
}

// TestAbsStateFixpointMatchesMapReference replays the worklist fixpoint
// shape — clone, transfer-like mutation, join over simulated edges — with
// both representations and compares every block's final state.
func TestAbsStateFixpointMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		const blocks = 6
		// Random edge list over a small CFG.
		var edges [][2]int
		for i := 0; i < blocks; i++ {
			for n := rng.Intn(3); n > 0; n-- {
				edges = append(edges, [2]int{i, rng.Intn(blocks)})
			}
		}
		// Random per-block write effects.
		type write struct {
			l loc
			v AVal
		}
		effects := make([][]write, blocks)
		for i := range effects {
			for n := rng.Intn(4); n > 0; n-- {
				effects[i] = append(effects[i], write{randLoc(rng), randAVal(rng)})
			}
		}

		entryS, entryM := randPair(rng, 4)
		sIn := make([]absState, blocks)
		mIn := make([]mapState, blocks)
		sHave := make([]bool, blocks)
		sIn[0] = entryS
		sHave[0] = true
		mIn[0] = entryM

		// Run both to fixpoint with the same deterministic sweep order.
		for pass := 0; pass < 50; pass++ {
			changed := false
			for _, e := range edges {
				from, to := e[0], e[1]
				if !sHave[from] {
					continue
				}
				out := sIn[from].clone()
				for _, w := range effects[from] {
					out.set(w.l, w.v)
				}
				mout := mIn[from].clone()
				for _, w := range effects[from] {
					mout[w.l] = w.v
				}
				var sc, mc bool
				if !sHave[to] {
					sIn[to] = out.clone()
					sHave[to] = true
					sc = true
				} else {
					sc = sIn[to].join(&out)
				}
				if mIn[to] == nil {
					mIn[to] = mout.clone()
					mc = true
				} else {
					mc = mIn[to].join(mout)
				}
				if sc != mc {
					t.Fatalf("trial %d: edge %v changed: slice=%v map=%v", trial, e, sc, mc)
				}
				changed = changed || sc
			}
			if !changed {
				break
			}
		}
		for b := 0; b < blocks; b++ {
			if !sHave[b] {
				if mIn[b] != nil {
					t.Fatalf("trial %d: block %d reached only in reference", trial, b)
				}
				continue
			}
			assertEqual(t, "fixpoint block", &sIn[b], mIn[b])
		}
	}
}
