package dataflow

import (
	"testing"

	"fits/internal/cfg"
	"fits/internal/ir"
	"fits/internal/isa"
)

// loopFn builds a hand-assembled function whose fixpoint needs a second RPO
// pass: a loop A -> B -> C -> B where C moves the parameter's taint into r1,
// so B's input only gains the r1 taint when C's back edge is re-joined.
func loopFn() *cfg.Function {
	blk := func(start uint32, stmts []ir.Stmt, succs ...uint32) *cfg.BasicBlock {
		return &cfg.BasicBlock{
			Start: start,
			IR:    []*ir.Block{{Addr: start, Stmts: stmts}},
			Succs: succs,
		}
	}
	a := blk(0x0, nil, 0x10)
	b := blk(0x10, []ir.Stmt{
		// r2 = r1: observable only once r1 carries taint (second pass).
		&ir.WrTmp{T: 0, E: &ir.Get{R: isa.Reg(1)}},
		&ir.Put{R: isa.Reg(2), E: &ir.RdTmp{T: 0}},
	}, 0x20)
	c := blk(0x20, []ir.Stmt{
		// r1 = r0: moves the parameter taint into r1 before looping back.
		&ir.WrTmp{T: 1, E: &ir.Get{R: isa.Reg(0)}},
		&ir.Put{R: isa.Reg(1), E: &ir.RdTmp{T: 1}},
		// Branch on r2 so the converged loop records param-controls-branch.
		&ir.WrTmp{T: 2, E: &ir.Get{R: isa.Reg(2)}},
		&ir.Exit{Cond: &ir.RdTmp{T: 2}, Target: 0x10},
	}, 0x10)
	return &cfg.Function{
		Entry:  0x0,
		Name:   "loop",
		Blocks: map[uint32]*cfg.BasicBlock{0x0: a, 0x10: b, 0x20: c},
		Order:  []uint32{0x0, 0x10, 0x20},
		Loops:  []cfg.Loop{{Head: 0x10, Body: map[uint32]bool{0x10: true, 0x20: true}}},
		Params: 1,
	}
}

func TestFixpointConvergesWithinDefaultBudget(t *testing.T) {
	facts := Analyze(loopFn(), nil)
	if facts.Truncated {
		t.Fatal("small loop must converge within the default pass budget")
	}
	if !facts.ParamControlsBranch || !facts.ParamControlsLoop {
		t.Errorf("converged facts = %+v, want param-controlled loop branch", facts)
	}
}

func TestFixpointBudgetTruncationIsSurfaced(t *testing.T) {
	defer func(old int) { maxPasses = old }(maxPasses)
	maxPasses = 1
	facts := Analyze(loopFn(), nil)
	if !facts.Truncated {
		t.Fatal("exhausted pass budget must set FlowFacts.Truncated")
	}
}
