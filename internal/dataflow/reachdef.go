package dataflow

import (
	"fits/internal/cfg"
	"fits/internal/ir"
	"fits/internal/isa"
)

// FlowFacts are the intraprocedural flow features of one function: how its
// parameters influence control flow and anchor calls (Table 1, features 7-9),
// plus whether a parameter-derived value can reach the return register,
// which the ITS verification oracle uses.
type FlowFacts struct {
	ParamControlsLoop   bool
	ParamControlsBranch bool
	ParamToAnchor       bool
	TaintedReturn       bool
}

// AnchorInfo describes a call target recognized as an anchor function.
type AnchorInfo struct {
	Arity  int
	Anchor bool
}

// AnchorFunc classifies a call site; the loader provides an implementation
// that matches import names against the anchor set.
type AnchorFunc func(cs cfg.CallSite) AnchorInfo

// globLoc returns the location for a global (absolute) address.
func globLoc(addr uint32) loc { return loc{slot: int32(addr), isReg: false, reg: 0xff} }

// Analyze runs the reaching-definition taint dataflow over fn and extracts
// its flow facts. anchors may be nil when anchor classification is not
// needed.
func Analyze(fn *cfg.Function, anchors AnchorFunc) FlowFacts {
	a := &analyzer{fn: fn, anchors: anchors}
	return a.run()
}

type analyzer struct {
	fn      *cfg.Function
	anchors AnchorFunc
	facts   FlowFacts
	record  bool
	inLoop  map[uint32]bool
	// callsAt maps call instruction addresses to their sites.
	callsAt map[uint32][]cfg.CallSite
}

func (a *analyzer) run() FlowFacts {
	a.inLoop = map[uint32]bool{}
	for _, lp := range a.fn.Loops {
		for b := range lp.Body {
			a.inLoop[b] = true
		}
	}
	a.callsAt = map[uint32][]cfg.CallSite{}
	for _, cs := range a.fn.Calls {
		a.callsAt[cs.Addr] = append(a.callsAt[cs.Addr], cs)
	}

	entry := absState{}
	for i := 0; i < a.fn.Params && i < 4; i++ {
		entry[regLoc(isa.Reg(i))] = AVal{Kind: KTop, Taint: ParamMask(1 << i)}
	}
	entry[regLoc(isa.SP)] = AVal{Kind: KSPRel, C: 0}

	in := map[uint32]absState{a.fn.Entry: entry}
	work := []uint32{a.fn.Entry}
	inWork := map[uint32]bool{a.fn.Entry: true}
	const maxIters = 4096
	for iters := 0; len(work) > 0 && iters < maxIters; iters++ {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		blk, ok := a.fn.Blocks[b]
		if !ok {
			continue
		}
		st, ok := in[b]
		if !ok {
			continue
		}
		out := a.transfer(blk, st.clone())
		for _, succ := range blk.Succs {
			if _, ok := a.fn.Blocks[succ]; !ok {
				continue
			}
			cur, ok := in[succ]
			if !ok {
				in[succ] = out.clone()
			} else if !cur.join(out) {
				continue
			}
			if !inWork[succ] {
				work = append(work, succ)
				inWork[succ] = true
			}
		}
	}

	// Final recording pass over the fixed point.
	a.record = true
	for _, ba := range a.fn.Order {
		st, ok := in[ba]
		if !ok {
			continue
		}
		a.transfer(a.fn.Blocks[ba], st.clone())
	}
	return a.facts
}

// transfer interprets one basic block over an abstract state.
func (a *analyzer) transfer(blk *cfg.BasicBlock, st absState) absState {
	temps := map[ir.Temp]AVal{}
	get := func(l loc) AVal {
		if v, ok := st[l]; ok {
			return v
		}
		return AVal{Kind: KTop}
	}
	var eval func(e ir.Expr) AVal
	eval = func(e ir.Expr) AVal {
		switch e := e.(type) {
		case ir.Const:
			return AVal{Kind: KConst, C: int32(e.V)}
		case ir.RdTmp:
			if v, ok := temps[e.T]; ok {
				return v
			}
			return AVal{Kind: KTop}
		case ir.Get:
			return get(regLoc(e.R))
		case ir.Binop:
			l, r := eval(e.L), eval(e.R)
			t := l.Taint | r.Taint
			switch {
			case l.Kind == KConst && r.Kind == KConst:
				return AVal{Kind: KConst, C: foldConst(e.Op, l.C, r.C), Taint: t}
			case e.Op == ir.Add && l.Kind == KSPRel && r.Kind == KConst:
				return AVal{Kind: KSPRel, C: l.C + r.C, Taint: t}
			case e.Op == ir.Add && l.Kind == KConst && r.Kind == KSPRel:
				return AVal{Kind: KSPRel, C: r.C + l.C, Taint: t}
			case e.Op == ir.Sub && l.Kind == KSPRel && r.Kind == KConst:
				return AVal{Kind: KSPRel, C: l.C - r.C, Taint: t}
			}
			return top(t)
		case ir.Load:
			addr := eval(e.Addr)
			switch addr.Kind {
			case KSPRel:
				v := get(slotLoc(addr.C))
				v.Taint |= addr.Taint
				return v
			case KConst:
				v := get(globLoc(uint32(addr.C)))
				v.Taint |= addr.Taint
				return AVal{Kind: KTop, Taint: v.Taint}
			}
			// Dereferencing a parameter-derived pointer yields
			// parameter-derived data.
			return top(addr.Taint)
		}
		return AVal{Kind: KTop}
	}

	for _, irb := range blk.IR {
		for _, s := range irb.Stmts {
			switch s := s.(type) {
			case ir.WrTmp:
				temps[s.T] = eval(s.E)
			case ir.Put:
				st[regLoc(s.R)] = eval(s.E)
			case ir.Store:
				addr := eval(s.Addr)
				val := eval(s.Val)
				switch addr.Kind {
				case KSPRel:
					st[slotLoc(addr.C)] = val
				case KConst:
					st[globLoc(uint32(addr.C))] = val
				}
			case ir.Exit:
				if a.record {
					cond := eval(s.Cond)
					if cond.Taint.Has() {
						a.facts.ParamControlsBranch = true
						if a.inLoop[blk.Start] {
							a.facts.ParamControlsLoop = true
						}
					}
				}
			case ir.Call:
				if a.record && a.anchors != nil {
					for _, cs := range a.callsAt[irb.Addr] {
						info := a.anchors(cs)
						if !info.Anchor {
							continue
						}
						for i := 0; i < info.Arity && i < 4; i++ {
							if get(regLoc(isa.Reg(i))).Taint.Has() {
								a.facts.ParamToAnchor = true
							}
						}
					}
				}
				// Calls clobber the argument registers; the return value
				// inherits the arguments' taint (data returned by callees
				// such as anchors derives from what was passed in).
				var t ParamMask
				for i := isa.Reg(0); i < 4; i++ {
					t |= get(regLoc(i)).Taint
				}
				for i := isa.Reg(0); i < 4; i++ {
					st[regLoc(i)] = AVal{Kind: KTop}
				}
				st[regLoc(isa.R0)] = top(t)
				st[regLoc(isa.LR)] = AVal{Kind: KTop}
			case ir.Ret:
				if a.record && get(regLoc(isa.R0)).Taint.Has() {
					a.facts.TaintedReturn = true
				}
			case ir.Sys:
				st[regLoc(isa.R0)] = AVal{Kind: KTop}
			}
		}
	}
	return st
}

func foldConst(op ir.BinOp, a, b int32) int32 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return int32(uint32(a) << (uint32(b) & 31))
	case ir.Shr:
		return int32(uint32(a) >> (uint32(b) & 31))
	case ir.CmpEQ:
		if a == b {
			return 1
		}
	case ir.CmpNE:
		if a != b {
			return 1
		}
	case ir.CmpLT:
		if a < b {
			return 1
		}
	case ir.CmpGE:
		if a >= b {
			return 1
		}
	}
	return 0
}
