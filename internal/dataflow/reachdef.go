package dataflow

import (
	"fits/internal/cfg"
	"fits/internal/ir"
	"fits/internal/isa"
)

// FlowFacts are the intraprocedural flow features of one function: how its
// parameters influence control flow and anchor calls (Table 1, features 7-9),
// plus whether a parameter-derived value can reach the return register,
// which the ITS verification oracle uses.
type FlowFacts struct {
	ParamControlsLoop   bool
	ParamControlsBranch bool
	ParamToAnchor       bool
	TaintedReturn       bool
	// Truncated reports that the fixpoint budget ran out before the dataflow
	// converged; the other facts are then a sound-but-incomplete snapshot.
	Truncated bool
}

// AnchorInfo describes a call target recognized as an anchor function.
type AnchorInfo struct {
	Arity  int
	Anchor bool
}

// AnchorFunc classifies a call site; the loader provides an implementation
// that matches import names against the anchor set.
type AnchorFunc func(cs cfg.CallSite) AnchorInfo

// maxPasses bounds the fixpoint as full sweeps over the blocks in reverse
// postorder, not worklist pops: one pass visits every pending block once, so
// the budget a function gets scales with its size instead of silently
// starving large functions. The lattice is shallow (taint bits only grow,
// shapes only collapse to Top), so convergence needs about one pass per
// level of loop nesting; 64 is far beyond any real CFG and exists only as a
// runaway guard. Exhaustion is surfaced via FlowFacts.Truncated. A variable
// only so tests can drive the truncation path.
var maxPasses = 64

// Analyze runs the reaching-definition taint dataflow over fn and extracts
// its flow facts. anchors may be nil when anchor classification is not
// needed.
func Analyze(fn *cfg.Function, anchors AnchorFunc) FlowFacts {
	a := &analyzer{fn: fn, anchors: anchors}
	return a.run()
}

type analyzer struct {
	fn      *cfg.Function
	anchors AnchorFunc
	facts   FlowFacts
	record  bool
	inLoop  map[uint32]bool
	// temps is the per-block temporary environment, indexed by temp number
	// (temps are numbered per function by the lifter, so the slice is dense).
	// An entry is live only when its epoch matches the current one; bumping
	// the epoch at each block start clears the environment without touching
	// memory, and the slices grow geometrically instead of re-growing a map
	// per Analyze call.
	temps  []AVal
	tepoch []uint32
	epoch  uint32
}

func (a *analyzer) setTmp(t ir.Temp, v AVal) {
	if int(t) >= len(a.temps) {
		n := 2 * (int(t) + 1)
		if n < 64 {
			n = 64
		}
		temps := make([]AVal, n)
		copy(temps, a.temps)
		tepoch := make([]uint32, n)
		copy(tepoch, a.tepoch)
		a.temps, a.tepoch = temps, tepoch
	}
	a.temps[t] = v
	a.tepoch[t] = a.epoch
}

func (a *analyzer) getTmp(t ir.Temp) (AVal, bool) {
	if int(t) < len(a.temps) && a.tepoch[t] == a.epoch {
		return a.temps[t], true
	}
	return AVal{}, false
}

// rpo returns the blocks reachable from the entry in reverse postorder,
// restricted to blocks that exist in fn.Blocks. Successors are traversed in
// their stored order; the result is deterministic for a given CFG.
func rpo(fn *cfg.Function) []uint32 {
	if _, ok := fn.Blocks[fn.Entry]; !ok {
		return nil
	}
	seen := make(map[uint32]bool, len(fn.Blocks))
	post := make([]uint32, 0, len(fn.Blocks))
	// Iterative DFS; the frame remembers how many successors were expanded.
	type frame struct {
		addr uint32
		next int
	}
	stack := []frame{{addr: fn.Entry}}
	seen[fn.Entry] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		succs := fn.Blocks[fr.addr].Succs
		advanced := false
		for fr.next < len(succs) {
			s := succs[fr.next]
			fr.next++
			if seen[s] {
				continue
			}
			if _, ok := fn.Blocks[s]; !ok {
				continue
			}
			seen[s] = true
			stack = append(stack, frame{addr: s})
			advanced = true
			break
		}
		if !advanced {
			post = append(post, fr.addr)
			stack = stack[:len(stack)-1]
		}
	}
	// Reverse the postorder in place.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

func (a *analyzer) run() FlowFacts {
	// Lazily built lookup tables: most functions have no loops and many have
	// no calls, so empty maps would just be allocation noise on a path that
	// runs once per function per vector extraction.
	if len(a.fn.Loops) > 0 {
		a.inLoop = make(map[uint32]bool, 8)
		for _, lp := range a.fn.Loops {
			for b := range lp.Body {
				a.inLoop[b] = true
			}
		}
	}
	var entry absState
	for i := 0; i < a.fn.Params && i < 4; i++ {
		entry.set(regLoc(isa.Reg(i)), AVal{Kind: KTop, Taint: ParamMask(1 << i)})
	}
	entry.set(regLoc(isa.SP), AVal{Kind: KSPRel, C: 0})

	// Fixpoint over the blocks in reverse postorder: forward analyses
	// converge in a handful of RPO sweeps because every block sees its
	// forward predecessors' fresh output within the same pass, and the visit
	// order — hence the join order, hence the intermediate states — no
	// longer depends on how a worklist happened to be popped.
	order := rpo(a.fn)
	idx := make(map[uint32]int, len(order))
	for i, b := range order {
		idx[b] = i
	}
	// One node record per RPO position: input state plus the worklist bits,
	// fused into a single allocation.
	type node struct {
		in    absState
		dirty bool
		have  bool
	}
	nodes := make([]node, len(order))
	if len(order) > 0 {
		nodes[0] = node{in: entry, have: true, dirty: true}
	}
	converged := len(order) == 0
	for pass := 0; pass < maxPasses; pass++ {
		pending := false
		for i, b := range order {
			if !nodes[i].dirty {
				continue
			}
			nodes[i].dirty = false
			blk := a.fn.Blocks[b]
			out := nodes[i].in.clone()
			a.transfer(blk, &out)
			for _, succ := range blk.Succs {
				si, ok := idx[succ]
				if !ok {
					continue
				}
				if !nodes[si].have {
					nodes[si].in = out.clone()
					nodes[si].have = true
				} else if !nodes[si].in.join(&out) {
					continue
				}
				if !nodes[si].dirty {
					nodes[si].dirty = true
					if si <= i {
						pending = true // back edge: needs another pass
					}
				}
			}
		}
		if !pending {
			converged = true
			break
		}
	}
	if !converged {
		a.facts.Truncated = true
	}

	// Final recording pass over the fixed point.
	a.record = true
	for _, ba := range a.fn.Order {
		i, ok := idx[ba]
		if !ok || !nodes[i].have {
			continue
		}
		st := nodes[i].in.clone()
		a.transfer(a.fn.Blocks[ba], &st)
	}
	return a.facts
}

// eval computes one IR expression over the abstract state. A method rather
// than a closure inside transfer: transfer runs once per block visit on the
// pipeline's hottest path, and the closure pair (function object plus the
// captured recursion cell) was one heap allocation per visit each.
func (a *analyzer) eval(e ir.Expr, st *absState) AVal {
	switch e := e.(type) {
	case *ir.Const:
		return AVal{Kind: KConst, C: int32(e.V)}
	case *ir.RdTmp:
		if v, ok := a.getTmp(e.T); ok {
			return v
		}
		return AVal{Kind: KTop}
	case *ir.Get:
		return st.get(regLoc(e.R))
	case *ir.Binop:
		l, r := a.eval(e.L, st), a.eval(e.R, st)
		t := l.Taint | r.Taint
		switch {
		case l.Kind == KConst && r.Kind == KConst:
			return AVal{Kind: KConst, C: foldConst(e.Op, l.C, r.C), Taint: t}
		case e.Op == ir.Add && l.Kind == KSPRel && r.Kind == KConst:
			return AVal{Kind: KSPRel, C: l.C + r.C, Taint: t}
		case e.Op == ir.Add && l.Kind == KConst && r.Kind == KSPRel:
			return AVal{Kind: KSPRel, C: r.C + l.C, Taint: t}
		case e.Op == ir.Sub && l.Kind == KSPRel && r.Kind == KConst:
			return AVal{Kind: KSPRel, C: l.C - r.C, Taint: t}
		}
		return top(t)
	case *ir.Load:
		addr := a.eval(e.Addr, st)
		switch addr.Kind {
		case KSPRel:
			v := st.get(slotLoc(addr.C))
			v.Taint |= addr.Taint
			return v
		case KConst:
			v := st.get(globLoc(uint32(addr.C)))
			v.Taint |= addr.Taint
			return AVal{Kind: KTop, Taint: v.Taint}
		}
		// Dereferencing a parameter-derived pointer yields
		// parameter-derived data.
		return top(addr.Taint)
	}
	return AVal{Kind: KTop}
}

// transfer interprets one basic block over an abstract state, mutating st.
func (a *analyzer) transfer(blk *cfg.BasicBlock, st *absState) {
	a.epoch++
	for _, irb := range blk.IR {
		for _, s := range irb.Stmts {
			switch s := s.(type) {
			case *ir.WrTmp:
				a.setTmp(s.T, a.eval(s.E, st))
			case *ir.Put:
				st.set(regLoc(s.R), a.eval(s.E, st))
			case *ir.Store:
				addr := a.eval(s.Addr, st)
				val := a.eval(s.Val, st)
				switch addr.Kind {
				case KSPRel:
					st.set(slotLoc(addr.C), val)
				case KConst:
					st.set(globLoc(uint32(addr.C)), val)
				}
			case *ir.Exit:
				if a.record {
					cond := a.eval(s.Cond, st)
					if cond.Taint.Has() {
						a.facts.ParamControlsBranch = true
						if a.inLoop[blk.Start] {
							a.facts.ParamControlsLoop = true
						}
					}
				}
			case *ir.Call:
				if a.record && a.anchors != nil {
					// Linear scan: the record pass visits each block once
					// and functions have few call sites, so an index map
					// would cost more to build than it saves.
					for _, cs := range a.fn.Calls {
						if cs.Addr != irb.Addr {
							continue
						}
						info := a.anchors(cs)
						if !info.Anchor {
							continue
						}
						for i := 0; i < info.Arity && i < 4; i++ {
							if st.get(regLoc(isa.Reg(i))).Taint.Has() {
								a.facts.ParamToAnchor = true
							}
						}
					}
				}
				// Calls clobber the argument registers; the return value
				// inherits the arguments' taint (data returned by callees
				// such as anchors derives from what was passed in).
				var t ParamMask
				for i := isa.Reg(0); i < 4; i++ {
					t |= st.get(regLoc(i)).Taint
				}
				for i := isa.Reg(0); i < 4; i++ {
					st.set(regLoc(i), AVal{Kind: KTop})
				}
				st.set(regLoc(isa.R0), top(t))
				st.set(regLoc(isa.LR), AVal{Kind: KTop})
			case *ir.Ret:
				if a.record && st.get(regLoc(isa.R0)).Taint.Has() {
					a.facts.TaintedReturn = true
				}
			case *ir.Sys:
				st.set(regLoc(isa.R0), AVal{Kind: KTop})
			}
		}
	}
}

func foldConst(op ir.BinOp, a, b int32) int32 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return int32(uint32(a) << (uint32(b) & 31))
	case ir.Shr:
		return int32(uint32(a) >> (uint32(b) & 31))
	case ir.CmpEQ:
		if a == b {
			return 1
		}
	case ir.CmpNE:
		if a != b {
			return 1
		}
	case ir.CmpLT:
		if a < b {
			return 1
		}
	case ir.CmpGE:
		if a >= b {
			return 1
		}
	}
	return 0
}
