package corpustaint

import (
	"context"
	"reflect"
	"testing"

	"fits/internal/modelcache"
	"fits/internal/synth"
)

func xrun(t *testing.T, opts Options) *Report {
	t.Helper()
	x, err := synth.GenerateXCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), x.Files, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// alertAt finds the report alert at (binary, func entry, sink).
func alertAt(rep *Report, binary string, entry uint32, sink string) (Alert, bool) {
	for _, a := range rep.Alerts {
		if a.Binary == binary && a.Func == entry && a.Sink == sink {
			return a, true
		}
	}
	return Alert{}, false
}

func TestModeCrossFindsPlantedFlows(t *testing.T) {
	x, err := synth.GenerateXCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), x.Files, Options{Mode: ModeCross, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := x.Manifest

	if !reflect.DeepEqual(rep.Keywords, m.Keywords) {
		t.Errorf("keywords = %v, want %v", rep.Keywords, m.Keywords)
	}
	for _, f := range m.Flows {
		a, ok := alertAt(rep, f.SinkBinary, f.SinkEntry, f.Sink)
		if f.Vulnerable && !ok {
			t.Errorf("flow %s: no alert at %s %#x %s", f.Name, f.SinkBinary, f.SinkEntry, f.Sink)
			continue
		}
		if !f.Vulnerable {
			if ok {
				t.Errorf("flow %s: unexpected alert %+v", f.Name, a)
			}
			continue
		}
		if f.CrossBinary {
			if a.Source != "xchan" {
				t.Errorf("flow %s: source = %s, want xchan", f.Name, a.Source)
			}
			if a.Provenance == nil {
				t.Errorf("flow %s: no provenance", f.Name)
				continue
			}
			if a.Provenance.FrontKey != f.FrontKey || a.Provenance.FrontFile != f.FrontFile {
				t.Errorf("flow %s: front = %s@%s, want %s@%s", f.Name,
					a.Provenance.FrontKey, a.Provenance.FrontFile, f.FrontKey, f.FrontFile)
			}
			if len(a.Provenance.Hops) != len(f.Hops) {
				t.Errorf("flow %s: %d hops, want %d (%+v)", f.Name,
					len(a.Provenance.Hops), len(f.Hops), a.Provenance.Hops)
				continue
			}
			for i, h := range f.Hops {
				got := a.Provenance.Hops[i]
				if got.Binary != h.FromBinary || got.Chan != h.Chan.String() || got.Key != h.Key {
					t.Errorf("flow %s hop %d = %+v, want %+v", f.Name, i, got, h)
				}
			}
		}
	}
	if rep.CrossHit != len(m.CrossFlows())-1 { // benign-board never alerts
		t.Errorf("cross alerts = %d, want %d", rep.CrossHit, len(m.CrossFlows())-1)
	}
	if rep.Rounds < 3 {
		t.Errorf("rounds = %d, want >= 3 (two-hop flow needs a second discovery round)", rep.Rounds)
	}
	// The two-hop endpoint is discovered one round after the direct ones.
	roundOf := map[string]int{}
	for _, e := range rep.Tainted {
		roundOf[e.Chan+":"+e.Key] = e.Round
	}
	if roundOf["env:WL_STATE"] != roundOf["nvram:wl_key"]+1 {
		t.Errorf("tainted rounds = %v, want WL_STATE one after wl_key", roundOf)
	}
}

// TestSingleBinaryModesMissCrossFlows is the acceptance claim: back-end
// binaries have no network imports and no classical sources, so CTS and
// CTS+ITS seeding provably produce zero alerts in them, while ModeCross
// reaches every planted cross-binary sink.
func TestSingleBinaryModesMissCrossFlows(t *testing.T) {
	x, err := synth.GenerateXCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	m := x.Manifest
	for _, mode := range []Mode{ModeCTS, ModeITS} {
		rep, err := Run(context.Background(), x.Files, Options{Mode: mode, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.CrossHit != 0 || len(rep.Tainted) != 0 || rep.Rounds != 1 {
			t.Errorf("%s: cross=%d tainted=%d rounds=%d, want 0/0/1",
				mode, rep.CrossHit, len(rep.Tainted), rep.Rounds)
		}
		for _, a := range rep.Alerts {
			if a.Binary != "bin/httpd" {
				t.Errorf("%s: alert outside border binary: %+v", mode, a)
			}
		}
		for _, f := range m.CrossFlows() {
			if _, ok := alertAt(rep, f.SinkBinary, f.SinkEntry, f.Sink); ok {
				t.Errorf("%s: detected cross flow %s (should be impossible)", mode, f.Name)
			}
		}
	}

	// Mode separation on the border binary itself: CTS sees only the raw
	// flow; ITS adds the keyed local flow.
	cts := xrun(t, Options{Mode: ModeCTS, Parallelism: 1})
	if len(cts.Alerts) != 1 || cts.Alerts[0].Source != "cts-region" {
		t.Errorf("cts alerts = %+v, want the one raw flow", cts.Alerts)
	}
	its := xrun(t, Options{Mode: ModeITS, Parallelism: 1})
	var local, raw bool
	for _, f := range m.Flows {
		if a, ok := alertAt(its, f.SinkBinary, f.SinkEntry, f.Sink); ok {
			switch f.Name {
			case "local-vuln":
				local = a.Source == "its"
			case "raw-vuln":
				raw = true
			}
		}
	}
	if !local || !raw {
		t.Errorf("its mode: local=%v raw=%v, want both (alerts %+v)", local, raw, its.Alerts)
	}
}

func TestRunDeterministicAcrossWorkersAndCache(t *testing.T) {
	base := xrun(t, Options{Mode: ModeCross, Parallelism: 1})
	for _, par := range []int{2, 4, 8} {
		got := xrun(t, Options{Mode: ModeCross, Parallelism: par})
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("parallelism %d diverges from 1", par)
		}
	}
	cache := modelcache.New(0, 0)
	cold := xrun(t, Options{Mode: ModeCross, Parallelism: 4, Cache: cache})
	warm := xrun(t, Options{Mode: ModeCross, Parallelism: 4, Cache: cache})
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cold and warm cache reports differ")
	}
	if !reflect.DeepEqual(base, cold) {
		t.Fatal("cached report diverges from uncached")
	}
}
