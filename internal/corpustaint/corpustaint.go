// Package corpustaint analyzes an unpacked firmware image *set* as one
// system: it connects the front-end artifacts (HTML forms, JavaScript,
// config defaults) to the border binaries that parse the named request
// parameters, and propagates taint across the binaries through shared
// configuration-store, environment and spawned-helper channels until a
// fixpoint. The result is a deterministic corpus report whose alerts carry
// full provenance: the front-end file naming the parameter, the keyword, the
// chain of cross-binary channel hops, and the sink.
//
// Three seeding modes make the paper's comparison mechanical: ModeCTS seeds
// classical interface sources only, ModeITS additionally seeds each binary's
// top-ranked inferred intermediate sources, and ModeCross seeds front-end
// keyword matches and runs the cross-binary channel fixpoint. Back-end
// readers have neither network imports nor classical sources, so the first
// two modes provably cannot alert inside them.
package corpustaint

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"fits/internal/cfg"
	"fits/internal/dataflow"
	"fits/internal/firmware"
	"fits/internal/frontend"
	"fits/internal/infer"
	"fits/internal/intern"
	"fits/internal/isa"
	"fits/internal/know"
	"fits/internal/loader"
	"fits/internal/modelcache"
	"fits/internal/pool"
	"fits/internal/stagetime"
	"fits/internal/taint"
	"fits/internal/xchan"
)

// Mode selects how per-binary taint analysis is seeded.
type Mode string

// Seeding modes.
const (
	// ModeCTS: classical interface sources only.
	ModeCTS Mode = "cts"
	// ModeITS: classical sources plus each binary's top-ranked inferred
	// intermediate sources.
	ModeITS Mode = "its"
	// ModeCross: classical sources, front-end-keyword-seeded intermediate
	// sources, and the cross-binary channel fixpoint.
	ModeCross Mode = "cross"
)

// ParseMode validates a mode string ("" means ModeCross).
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "":
		return ModeCross, nil
	case ModeCTS, ModeITS, ModeCross:
		return Mode(s), nil
	}
	return "", fmt.Errorf("corpustaint: unknown mode %q (want cts, its or cross)", s)
}

// DefaultMaxRounds bounds the channel fixpoint. The tainted-endpoint set is
// finite and grows monotonically, so the fixpoint terminates on its own
// after at most (distinct endpoints + 1) rounds; the cap only guards
// against pathological corpora.
const DefaultMaxRounds = 8

// DefaultTopK is the inferred-ITS budget per binary for ModeITS.
const DefaultTopK = 3

// Options configures a corpus analysis.
type Options struct {
	Mode Mode
	// TopK bounds the inferred intermediate sources seeded per binary in
	// ModeITS (0 selects DefaultTopK).
	TopK int
	// StringFilter drops alerts keyed on system-data fields.
	StringFilter bool
	// Parallelism bounds worker goroutines (0 = GOMAXPROCS). Reports are
	// byte-identical at every setting.
	Parallelism int
	// Cache memoizes models, rankings and per-round scan results.
	Cache *modelcache.Cache
	// Scheduler, when non-nil, draws all fan-outs from a shared budget.
	Scheduler *pool.Scheduler
	// Stages accumulates per-stage costs; nil disables.
	Stages *stagetime.Timer
	// NoAlias disables the bounded points-to pass; NoPathcheck disables
	// the path-feasibility pass (both on by default).
	NoAlias     bool
	NoPathcheck bool
	// MaxRounds caps fixpoint rounds (0 selects DefaultMaxRounds).
	MaxRounds int
	// Progress, when non-nil, receives coarse progress lines (per phase and
	// per fixpoint round).
	Progress func(string)
}

// Hop is one cross-binary step of a flow's provenance: Binary published
// tainted data on (Chan, Key) at the channel-setter call Site.
type Hop struct {
	Binary string `json:"binary"`
	Chan   string `json:"chan"`
	Key    string `json:"key"`
	Site   uint32 `json:"site"`
}

// Provenance traces an alert back to its origin: the front-end artifact
// naming the request parameter (when one does) and the ordered chain of
// channel hops the taint crossed to reach the sink's binary.
type Provenance struct {
	FrontFile string `json:"front_file,omitempty"`
	FrontLine int    `json:"front_line,omitempty"`
	FrontKey  string `json:"front_key,omitempty"`
	Hops      []Hop  `json:"hops,omitempty"`
}

// Alert is one corpus finding.
type Alert struct {
	// Binary is the image path of the binary containing the sink.
	Binary string `json:"binary"`
	Site   uint32 `json:"site"`
	Func   uint32 `json:"func"`
	Sink   string `json:"sink"`
	Kind   string `json:"kind"`
	Source string `json:"source"`
	Key    string `json:"key,omitempty"`
	Via    string `json:"via,omitempty"`
	// Provenance is present on flows traceable to a front-end parameter or
	// crossing at least one channel.
	Provenance *Provenance `json:"provenance,omitempty"`
}

// Endpoint is one tainted channel endpoint discovered by the fixpoint.
type Endpoint struct {
	Chan string `json:"chan"`
	Key  string `json:"key"`
	// Binary/Site locate the first channel write that tainted the endpoint;
	// Round is the fixpoint round (0-based) that discovered it.
	Binary string `json:"binary"`
	Site   uint32 `json:"site"`
	Round  int    `json:"round"`
}

// BinaryInfo summarizes one analyzed executable.
type BinaryInfo struct {
	Path   string `json:"path"`
	Funcs  int    `json:"funcs"`
	Alerts int    `json:"alerts"`
}

// Report is the deterministic outcome of one corpus analysis.
type Report struct {
	Mode       Mode         `json:"mode"`
	Binaries   []BinaryInfo `json:"binaries"`
	FrontFiles []string     `json:"front_files,omitempty"`
	Keywords   []string     `json:"keywords,omitempty"`
	// Rounds is the number of fixpoint rounds run (1 when no channel taint
	// was discovered; always 1 for ModeCTS/ModeITS).
	Rounds   int        `json:"rounds"`
	Tainted  []Endpoint `json:"tainted,omitempty"`
	Alerts   []Alert    `json:"alerts"`
	CrossHit int        `json:"cross_alerts"`
}

// origin records how a channel endpoint became tainted: the write alert and
// the publishing binary, for provenance reconstruction.
type origin struct {
	binary string
	alert  taint.Alert
	round  int
}

// binState is the per-binary analysis context threaded through rounds.
type binState struct {
	target *loader.Target
	// seeds are the keyword-matched (ModeCross) or inferred (ModeITS)
	// intermediate source entries, sorted.
	seeds []uint32
	// alerts from the most recent scan round.
	alerts []taint.Alert
	// prec memoizes the precision passes' pure per-function results across
	// fixpoint rounds, which re-scan the same binary under growing seeds.
	prec *taint.PrecisionCache
}

// Run analyzes a corpus given as a flat file set (an unpacked firmware
// tree). The report is byte-identical across worker counts and cache
// temperature.
func Run(ctx context.Context, files []firmware.File, opts Options) (*Report, error) {
	if opts.Mode == "" {
		opts.Mode = ModeCross
	}
	if opts.TopK <= 0 {
		opts.TopK = DefaultTopK
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = DefaultMaxRounds
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	progress := opts.Progress
	if progress == nil {
		progress = func(string) {}
	}

	// Front-end sweep: collect parameter keywords with locations.
	kws := make([]frontend.Keyword, 0, 16)
	frontFiles := make([]string, 0, 4)
	for _, f := range files {
		got := frontend.Extract(f.Path, f.Data)
		if len(got) > 0 {
			kws = append(kws, got...)
			frontFiles = append(frontFiles, f.Path)
		}
	}
	sort.Strings(frontFiles)
	kwSet := map[string]bool{}
	kwLoc := map[string]frontend.Keyword{}
	for _, k := range kws {
		kwSet[k.Name] = true
		// First location in (file, line, col) order wins.
		if prev, ok := kwLoc[k.Name]; !ok || less(k, prev) {
			kwLoc[k.Name] = k
		}
	}
	progress(fmt.Sprintf("front-end: %d keywords from %d artifacts", len(kwSet), len(frontFiles)))

	// Load every executable — not only network binaries: back-end readers
	// import no interface functions at all.
	img := &firmware.Image{Files: files}
	res, err := loader.LoadImageContext(ctx, img, loader.Options{
		AllExecutables: true,
		Parallelism:    workers,
		Cache:          opts.Cache,
		Sched:          opts.Scheduler,
		Intern:         intern.NewTable(),
		Stages:         opts.Stages,
	})
	if err != nil {
		return nil, fmt.Errorf("corpustaint: %w", err)
	}
	progress(fmt.Sprintf("loaded %d binaries", len(res.Targets)))

	// Channel topology: every setter/getter endpoint across the corpus, and
	// the keys some reader consumes (only those are worth propagating).
	var eps []xchan.Endpoint
	for _, t := range res.Targets {
		eps = append(eps, xchan.Endpoints(t.Path, t.Bin, t.Model)...)
	}
	getterKeys := xchan.GetterKeys(eps)

	// Per-binary seeding.
	states := make([]*binState, len(res.Targets))
	seedJob := func(i int) error {
		t := res.Targets[i]
		st := &binState{target: t, prec: new(taint.PrecisionCache)}
		switch opts.Mode {
		case ModeITS:
			cfgn := infer.DefaultConfig()
			cfgn.Parallelism = workers
			cfgn.Cache = opts.Cache
			cfgn.Sched = opts.Scheduler
			r, err := infer.InferTargetContext(ctx, t, cfgn)
			if err != nil {
				return err
			}
			for k, c := range r.Ranked {
				if k >= opts.TopK {
					break
				}
				st.seeds = append(st.seeds, c.Entry)
			}
		case ModeCross:
			st.seeds = keywordSeeds(t, kwSet)
		}
		sort.Slice(st.seeds, func(a, b int) bool { return st.seeds[a] < st.seeds[b] })
		states[i] = st
		return nil
	}
	if err := forEach(ctx, opts, workers, len(res.Targets), seedJob); err != nil {
		return nil, err
	}

	// Fixpoint over tainted channel endpoints. The set only grows and is
	// bounded by the corpus's endpoint vocabulary, so this terminates; each
	// round re-scans every binary under the cumulative seed set (scans are
	// memoized on the full seed signature, so unchanged binaries are
	// lookups on warm caches).
	tainted := map[know.ChanKind]map[string]bool{}
	origins := map[string]origin{} // "<chan>:<key>" -> first tainting write
	rounds := 0
	for rounds < opts.MaxRounds {
		rounds++
		progress(fmt.Sprintf("round %d: scanning %d binaries", rounds, len(states)))
		scanDone := opts.Stages.Span(stagetime.Taint)
		scanJob := func(i int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			states[i].alerts = scanBinary(states[i], opts, tainted)
			return nil
		}
		err := forEach(ctx, opts, workers, len(states), scanJob)
		scanDone()
		if err != nil {
			return nil, err
		}
		if opts.Mode != ModeCross {
			break
		}
		// Join channel writes against reader keys, in deterministic binary
		// and alert order; first write wins as the endpoint's origin.
		grew := false
		for _, st := range states {
			for _, a := range st.alerts {
				if a.Kind != know.SinkChannelWrite {
					continue
				}
				ch, key, ok := splitVia(a.Via)
				if !ok || !getterKeys[ch][key] {
					continue
				}
				if tainted[ch] == nil {
					tainted[ch] = map[string]bool{}
				}
				if !tainted[ch][key] {
					tainted[ch][key] = true
					origins[a.Via] = origin{binary: st.target.Path, alert: a, round: rounds - 1}
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}

	// Assemble the report in binary-path order (targets are already
	// path-sorted by the loader).
	rep := &Report{
		Mode:       opts.Mode,
		Rounds:     rounds,
		FrontFiles: frontFiles,
		Alerts:     []Alert{},
	}
	for name := range kwSet {
		rep.Keywords = append(rep.Keywords, name)
	}
	sort.Strings(rep.Keywords)
	for _, st := range states {
		info := BinaryInfo{Path: st.target.Path, Funcs: len(st.target.Model.FuncsInOrder())}
		for _, a := range st.alerts {
			if a.Kind == know.SinkChannelWrite {
				continue // intermediate evidence, reported as Tainted endpoints
			}
			out := Alert{
				Binary: st.target.Path, Site: a.Site, Func: a.Func,
				Sink: a.Sink, Kind: a.Kind.String(), Source: a.From.String(),
				Key: a.Key, Via: a.Via,
			}
			out.Provenance = provenance(a, kwSet, kwLoc, origins)
			if a.From == taint.FromChannel {
				rep.CrossHit++
			}
			info.Alerts++
			rep.Alerts = append(rep.Alerts, out)
		}
		rep.Binaries = append(rep.Binaries, info)
	}
	for via, o := range origins {
		ch, key, _ := splitVia(via)
		rep.Tainted = append(rep.Tainted, Endpoint{
			Chan: ch.String(), Key: key, Binary: o.binary, Site: o.alert.Site, Round: o.round,
		})
	}
	sort.Slice(rep.Tainted, func(i, j int) bool {
		a, b := rep.Tainted[i], rep.Tainted[j]
		if a.Chan != b.Chan {
			return a.Chan < b.Chan
		}
		return a.Key < b.Key
	})
	progress(fmt.Sprintf("done: %d alerts (%d cross-binary) after %d rounds",
		len(rep.Alerts), rep.CrossHit, rounds))
	return rep, nil
}

// keywordSeeds finds custom functions called with a front-end keyword as
// their first (string constant) argument — the SaTC-style border match: the
// binary fetches a field the web interface names, so the callee is treated
// as an intermediate source.
func keywordSeeds(t *loader.Target, kwSet map[string]bool) []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, f := range t.Model.FuncsInOrder() {
		for _, cs := range f.Calls {
			if cs.Target == 0 || cs.ImportName != "" || seen[cs.Target] {
				continue
			}
			caller, _ := t.Model.FuncAt(cs.Caller)
			if caller == nil {
				continue
			}
			key, ok := stringArg0(t, caller, cs.Addr)
			if !ok || !kwSet[key] {
				continue
			}
			seen[cs.Target] = true
			out = append(out, cs.Target)
		}
	}
	return out
}

// stringArg0 recovers the first call argument as a string constant.
func stringArg0(t *loader.Target, caller *cfg.Function, addr uint32) (string, bool) {
	c, ok := dataflow.BacktrackRegister(caller, addr, isa.R0)
	if !ok {
		return "", false
	}
	return dataflow.ClassifyStringConstant(t.Bin, c)
}

// scanBinary runs one binary's taint analysis under the current seed state,
// memoizing the alert list on the binary's content hash plus the complete
// scan signature when a cache is available.
func scanBinary(st *binState, opts Options, tainted map[know.ChanKind]map[string]bool) []taint.Alert {
	t := st.target
	topts := taint.Options{
		UseCTS:       true,
		ITS:          st.seeds,
		StringFilter: opts.StringFilter,
		SelfPath:     t.Path,
		NoAlias:      opts.NoAlias,
		NoPathcheck:  opts.NoPathcheck,
		Precision:    st.prec,
	}
	if opts.Mode == ModeCross {
		topts.ChannelSetters = know.ChannelSetters
		topts.ChannelSeeds = tainted
	}
	if opts.Stages != nil {
		st := opts.Stages
		topts.Clock = stagetime.Clock
		topts.AllocCount = stagetime.AllocCount
		topts.OnAlias = func(ns, allocs int64) {
			st.Add(stagetime.Alias, ns)
			st.AddAllocs(stagetime.Alias, allocs)
		}
		topts.OnPathcheck = func(ns, allocs int64) {
			st.Add(stagetime.PathCheck, ns)
			st.AddAllocs(stagetime.PathCheck, allocs)
		}
	}
	run := func() []taint.Alert {
		return taint.New(t.Bin, t.Model, topts).Run()
	}
	if opts.Cache == nil || t.Hash == (modelcache.Hash{}) {
		return run()
	}
	key := modelcache.Key("xalerts", xscanSig(t, topts, opts), t.Hash)
	v, _, err := opts.Cache.GetOrCompute(key, func() (any, int64, error) {
		alerts := run()
		return alerts, int64(len(alerts))*112 + 64, nil
	})
	if err != nil {
		return run()
	}
	base := v.([]taint.Alert)
	return append(make([]taint.Alert, 0, len(base)), base...)
}

// xscanSig serializes everything a corpus scan's outcome depends on besides
// the binary's bytes: model configuration, mode, filter, the binary's own
// path (keyless getters key on it), the seeded entries and the cumulative
// channel seed set.
func xscanSig(t *loader.Target, topts taint.Options, opts Options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "model=%s|mode=%s|sf=%t|noalias=%t|nopathcheck=%t|self=%s|its=",
		t.ModelConfig, opts.Mode, topts.StringFilter, topts.NoAlias, topts.NoPathcheck, topts.SelfPath)
	for _, e := range topts.ITS {
		fmt.Fprintf(&sb, "%x,", e)
	}
	sb.WriteString("|seeds=")
	for _, via := range sortedVias(topts.ChannelSeeds) {
		sb.WriteString(via)
		sb.WriteByte(',')
	}
	return sb.String()
}

// provenance reconstructs an alert's origin chain. FromITS alerts keyed on a
// front-end keyword get the artifact location; FromChannel alerts walk the
// endpoint origin graph back to the front end. Origins always point at
// endpoints tainted in strictly earlier rounds, so the walk terminates; the
// depth cap only guards against malformed origin maps.
func provenance(a taint.Alert, kwSet map[string]bool, kwLoc map[string]frontend.Keyword, origins map[string]origin) *Provenance {
	switch a.From {
	case taint.FromITS:
		if !kwSet[a.Key] {
			return nil
		}
		loc := kwLoc[a.Key]
		return &Provenance{FrontFile: loc.File, FrontLine: loc.Line, FrontKey: a.Key}
	case taint.FromChannel:
		p := &Provenance{}
		via := a.Via
		for depth := 0; via != "" && depth < 16; depth++ {
			o, ok := origins[via]
			if !ok {
				break
			}
			ch, key, _ := splitVia(via)
			p.Hops = append([]Hop{{Binary: o.binary, Chan: ch.String(), Key: key, Site: o.alert.Site}}, p.Hops...)
			switch o.alert.From {
			case taint.FromITS:
				if kwSet[o.alert.Key] {
					loc := kwLoc[o.alert.Key]
					p.FrontFile, p.FrontLine, p.FrontKey = loc.File, loc.Line, o.alert.Key
				}
				via = ""
			case taint.FromChannel:
				// The write was itself channel-seeded; its Key names the
				// seeding endpoint's key. Resolve the channel kind by
				// deterministic scan over known origins.
				via = findVia(origins, o.alert.Key)
			default:
				via = ""
			}
		}
		return p
	}
	return nil
}

// findVia resolves the endpoint id of a seed key, scanning channel kinds in
// declaration order so multi-channel key collisions resolve the same way
// every run.
func findVia(origins map[string]origin, key string) string {
	for _, ch := range []know.ChanKind{know.ChanNVRAM, know.ChanEnv, know.ChanSpawn} {
		via := ch.String() + ":" + key
		if _, ok := origins[via]; ok {
			return via
		}
	}
	return ""
}

func splitVia(via string) (know.ChanKind, string, bool) {
	i := strings.IndexByte(via, ':')
	if i < 0 {
		return 0, "", false
	}
	for _, ch := range []know.ChanKind{know.ChanNVRAM, know.ChanEnv, know.ChanSpawn} {
		if via[:i] == ch.String() {
			return ch, via[i+1:], true
		}
	}
	return 0, "", false
}

func sortedVias(seeds map[know.ChanKind]map[string]bool) []string {
	var out []string
	for _, ch := range []know.ChanKind{know.ChanNVRAM, know.ChanEnv, know.ChanSpawn} {
		for key := range seeds[ch] {
			out = append(out, ch.String()+":"+key)
		}
	}
	sort.Strings(out)
	return out
}

func less(a, b frontend.Keyword) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

func forEach(ctx context.Context, opts Options, workers, n int, job func(int) error) error {
	if opts.Scheduler != nil {
		return opts.Scheduler.ForEach(ctx, n, job)
	}
	return pool.ForEach(ctx, workers, n, job)
}
