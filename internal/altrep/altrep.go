// Package altrep implements the baseline function representations the paper
// compares BFV against in RQ3 — the Augmented-CFG of NERO and the
// Attributed-CFG of Gemini — and the BootStomp-style keyword taint-source
// heuristic used as the RQ1 comparison.
//
// Both graph representations are code-structure summaries: they describe how
// a function's code is shaped, not how data flows through it, which is
// exactly why they transfer poorly to ITS inference. Each is embedded into
// the common 11-dimensional vector shape so the clustering and scoring
// machinery is shared with BFV.
package altrep

import (
	"sort"
	"strings"

	"fits/internal/bfv"
	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/isa"
)

// AugmentedCFG summarizes a function in the spirit of NERO's augmented
// control flow graph: call-site structure along CFG paths.
func AugmentedCFG(bin *binimg.Binary, m *cfg.Model, f *cfg.Function) bfv.Vector {
	var v bfv.Vector
	blocks := f.BlocksInOrder()
	v[0] = float64(len(blocks))
	edges := 0
	maxOut := 0
	for _, b := range blocks {
		edges += len(b.Succs)
		if len(b.Succs) > maxOut {
			maxOut = len(b.Succs)
		}
	}
	v[1] = float64(edges)
	v[2] = float64(maxOut)
	v[3] = float64(len(f.Calls))
	// Distinct call targets approximate NERO's call-site vocabulary.
	targets := map[uint32]bool{}
	imports := map[string]bool{}
	for _, cs := range f.Calls {
		if cs.Target != 0 {
			targets[cs.Target] = true
		}
		if cs.ImportName != "" {
			imports[cs.ImportName] = true
		}
	}
	v[4] = float64(len(targets))
	v[5] = float64(len(imports))
	// Longest acyclic path length from entry (bounded DFS).
	v[6] = float64(longestPath(f))
	// Instruction volume and branch density.
	instrs, branches := 0, 0
	for _, b := range blocks {
		instrs += len(b.Instrs)
		for _, in := range b.Instrs {
			if in.IsBranch() {
				branches++
			}
		}
	}
	v[7] = float64(instrs)
	v[8] = float64(branches)
	if len(blocks) > 0 {
		v[9] = float64(instrs) / float64(len(blocks))
	}
	v[10] = float64(len(f.Loops))
	return v
}

// AttributedCFG embeds a function following Gemini's architecture: each
// basic block carries an instruction-type attribute vector, and a
// Structure2vec network propagates attributes along CFG edges before
// summing block embeddings into a graph embedding.
//
// Gemini's discriminative power comes from training the network weights on
// large labeled similarity corpora; closed-source heterogeneous firmware
// offers no such labels (the paper's RQ3 discussion), so the network here
// runs with its fixed arbitrary initialization — architecture-faithful,
// training-free, and accordingly weak at ranking ITSs.
func AttributedCFG(bin *binimg.Binary, m *cfg.Model, f *cfg.Function) bfv.Vector {
	const attrDim = 8
	blocks := f.BlocksInOrder()
	n := len(blocks)
	if n == 0 {
		return bfv.Vector{}
	}
	index := map[uint32]int{}
	for i, b := range blocks {
		index[b.Start] = i
	}
	// Per-block instruction-type attributes.
	attrs := make([][attrDim]float64, n)
	for i, b := range blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpAnd,
				isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpAddi:
				attrs[i][0]++
			case isa.OpLdb, isa.OpLdw, isa.OpPop:
				attrs[i][1]++
			case isa.OpStb, isa.OpStw, isa.OpPush:
				attrs[i][2]++
			case isa.OpCall, isa.OpCallr:
				attrs[i][3]++
			case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
				attrs[i][4]++
			case isa.OpMovi:
				attrs[i][5]++
			case isa.OpJmp, isa.OpJr, isa.OpRet:
				attrs[i][6]++
			}
		}
		attrs[i][7] = float64(len(b.Succs))
	}
	// Untrained Structure2vec: mu_v = tanh(W1*x_v + W2*sum(mu_u)).
	const iters = 3
	mu := make([][bfv.Dim]float64, n)
	next := make([][bfv.Dim]float64, n)
	for t := 0; t < iters; t++ {
		for i, b := range blocks {
			var agg [bfv.Dim]float64
			for _, s := range b.Succs {
				if j, ok := index[s]; ok {
					for d := 0; d < bfv.Dim; d++ {
						agg[d] += mu[j][d]
					}
				}
			}
			for d := 0; d < bfv.Dim; d++ {
				sum := 0.0
				for k := 0; k < attrDim; k++ {
					sum += w1(d, k) * attrs[i][k]
				}
				for k := 0; k < bfv.Dim; k++ {
					sum += w2(d, k) * agg[k]
				}
				next[i][d] = tanh(sum)
			}
		}
		mu, next = next, mu
	}
	var v bfv.Vector
	for i := 0; i < n; i++ {
		for d := 0; d < bfv.Dim; d++ {
			v[d] += mu[i][d]
		}
	}
	return v
}

// w1 and w2 are the network's fixed arbitrary weights, derived from a hash
// so the "initialization" is deterministic across runs.
func w1(i, j int) float64 { return fixedWeight(uint32(i*53+j)*2654435761 + 11) }
func w2(i, j int) float64 { return fixedWeight(uint32(i*41+j)*2246822519 + 1299721) }

func fixedWeight(h uint32) float64 {
	h ^= h >> 16
	h *= 0x45d9f3b
	h ^= h >> 16
	return float64(h%2048)/1024 - 1 // in [-1, 1)
}

func tanh(x float64) float64 {
	if x > 8 {
		return 1
	}
	if x < -8 {
		return -1
	}
	e2 := exp2x(x)
	return (e2 - 1) / (e2 + 1)
}

// exp2x computes e^(2x) with a short series; precision is irrelevant for an
// untrained network.
func exp2x(x float64) float64 {
	z := 2 * x
	term, sum := 1.0, 1.0
	for i := 1; i < 16; i++ {
		term *= z / float64(i)
		sum += term
	}
	if sum <= 0 {
		return 1e-9
	}
	return sum
}

// longestPath returns the longest acyclic block path length from the entry.
func longestPath(f *cfg.Function) int {
	best := 0
	onPath := map[uint32]bool{}
	var dfs func(a uint32, depth int)
	steps := 0
	dfs = func(a uint32, depth int) {
		if steps++; steps > 4096 {
			return
		}
		if depth > best {
			best = depth
		}
		b, ok := f.Blocks[a]
		if !ok || onPath[a] {
			return
		}
		onPath[a] = true
		for _, s := range b.Succs {
			dfs(s, depth+1)
		}
		onPath[a] = false
	}
	dfs(f.Entry, 0)
	return best
}

// bootStompKeywords are the seed words of BootStomp's heuristic taint-source
// inference, which keys on bootloader-domain strings.
var bootStompKeywords = []string{
	"boot", "kernel", "loader", "unlock", "oem", "partition", "flash",
	"fastboot", "recovery", "bl1", "bl2", "aboot", "sbl",
}

// BootStomp ranks custom functions by the BootStomp heuristic: a function is
// a taint-source candidate when it references rodata strings containing a
// seed keyword. On firmware whose strings lack bootloader vocabulary it
// returns nothing, reproducing the paper's RQ1 comparison result.
func BootStomp(bin *binimg.Binary, m *cfg.Model) []uint32 {
	var out []uint32
	for _, f := range m.CustomFuncs() {
		if referencesKeyword(bin, f) {
			out = append(out, f.Entry)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// referencesKeyword scans a function's constants for rodata strings that
// contain any seed keyword.
func referencesKeyword(bin *binimg.Binary, f *cfg.Function) bool {
	for _, ba := range f.Order {
		for _, in := range f.Blocks[ba].Instrs {
			if in.Op != isa.OpMovi {
				continue
			}
			addr := uint32(in.Imm)
			if bin.SectionOf(addr) != "rodata" {
				continue
			}
			s, ok := bin.CString(addr)
			if !ok {
				continue
			}
			ls := strings.ToLower(s)
			for _, kw := range bootStompKeywords {
				if strings.Contains(ls, kw) {
					return true
				}
			}
		}
	}
	return false
}
