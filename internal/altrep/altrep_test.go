package altrep

import (
	"math"
	"testing"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/isa"
	"fits/internal/loader"
	"fits/internal/minic"
	"fits/internal/synth"
)

func buildModel(t *testing.T, p *minic.Program) (*binimg.Binary, *cfg.Model) {
	t.Helper()
	bin, err := minic.Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cfg.Build(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return bin, m
}

func sampleProgram() *minic.Program {
	return &minic.Program{Name: "t", Funcs: []*minic.Func{
		{Name: "looper", NParams: 1, Body: []minic.Stmt{
			minic.Let{Name: "i", E: minic.Int(0)},
			minic.While{Cond: minic.Cond{Op: minic.Lt, L: minic.Var("i"), R: minic.Var("p0")},
				Body: []minic.Stmt{
					minic.ExprStmt{E: minic.Call{Name: "strlen", Args: []minic.Expr{minic.Str("x")}}},
					minic.Assign{Name: "i", E: minic.Add(minic.Var("i"), minic.Int(1))},
				}},
			minic.Return{E: minic.Var("i")},
		}},
		{Name: "flat", Body: []minic.Stmt{minic.Return{E: minic.Int(1)}}},
	}}
}

func fnNamed(t *testing.T, bin *binimg.Binary, m *cfg.Model, name string) *cfg.Function {
	t.Helper()
	for _, s := range bin.Funcs {
		if s.Name == name {
			if f, ok := m.FuncAt(s.Addr); ok {
				return f
			}
		}
	}
	t.Fatalf("%q not found", name)
	return nil
}

func TestAugmentedCFGShape(t *testing.T) {
	bin, m := buildModel(t, sampleProgram())
	looper := AugmentedCFG(bin, m, fnNamed(t, bin, m, "looper"))
	flat := AugmentedCFG(bin, m, fnNamed(t, bin, m, "flat"))
	if looper[0] <= flat[0] {
		t.Error("looper should have more blocks")
	}
	if looper[10] != 1 || flat[10] != 0 {
		t.Errorf("loop counts = %v, %v", looper[10], flat[10])
	}
	if looper == flat {
		t.Error("distinct functions produced identical vectors")
	}
}

func TestAttributedCFGDeterministicAndBounded(t *testing.T) {
	bin, m := buildModel(t, sampleProgram())
	f := fnNamed(t, bin, m, "looper")
	a := AttributedCFG(bin, m, f)
	b := AttributedCFG(bin, m, f)
	if a != b {
		t.Error("embedding not deterministic")
	}
	// tanh-bounded per block: |component| <= #blocks.
	n := float64(f.NumBlocks())
	for d, v := range a {
		if math.Abs(v) > n+1e-9 {
			t.Errorf("dim %d = %g exceeds block count %g", d, v, n)
		}
	}
	if AttributedCFG(bin, m, &cfg.Function{Blocks: map[uint32]*cfg.BasicBlock{}}) != ([11]float64{}) {
		t.Error("empty function should embed to zero")
	}
}

func TestAttributedCFGSensitiveToStructure(t *testing.T) {
	bin, m := buildModel(t, sampleProgram())
	a := AttributedCFG(bin, m, fnNamed(t, bin, m, "looper"))
	b := AttributedCFG(bin, m, fnNamed(t, bin, m, "flat"))
	if a == b {
		t.Error("different structures embedded identically")
	}
}

func TestFixedWeightsInRange(t *testing.T) {
	for i := 0; i < 11; i++ {
		for j := 0; j < 11; j++ {
			for _, w := range []float64{w1(i, j), w2(i, j)} {
				if w < -1 || w >= 1 {
					t.Fatalf("weight out of range: %g", w)
				}
			}
		}
	}
	if w1(0, 1) == w1(1, 0) && w1(0, 2) == w1(2, 0) && w1(3, 1) == w1(1, 3) {
		t.Error("weights look symmetric; expected arbitrary")
	}
}

func TestTanh(t *testing.T) {
	if tanh(0) != 0 {
		t.Errorf("tanh(0) = %g", tanh(0))
	}
	if tanh(100) != 1 || tanh(-100) != -1 {
		t.Error("tanh saturation wrong")
	}
	if v := tanh(1); math.Abs(v-0.7616) > 0.01 {
		t.Errorf("tanh(1) = %g", v)
	}
	if v := tanh(-1); math.Abs(v+0.7616) > 0.01 {
		t.Errorf("tanh(-1) = %g", v)
	}
}

func TestBootStompFindsNothingOnCorpusSample(t *testing.T) {
	s, err := synth.Generate(synth.Dataset()[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := loader.Load(s.Packed, loader.Options{SkipResolver: true})
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint32]bool{}
	for _, its := range s.Manifest.ITS {
		truth[its.Entry] = true
	}
	for _, tg := range res.Targets {
		for _, e := range BootStomp(tg.Bin, tg.Model) {
			if truth[e] {
				t.Error("keyword heuristic accidentally found a true ITS")
			}
		}
	}
}

func TestBootStompMatchesKeywords(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{
		{Name: "boots", Body: []minic.Stmt{
			minic.ExprStmt{E: minic.Call{Name: "printf", Args: []minic.Expr{
				minic.Str("entering fastboot mode"), minic.Int(0), minic.Int(0)}}},
			minic.Return{E: minic.Int(0)},
		}},
		{Name: "plain", Body: []minic.Stmt{
			minic.ExprStmt{E: minic.Call{Name: "printf", Args: []minic.Expr{
				minic.Str("hello world"), minic.Int(0), minic.Int(0)}}},
			minic.Return{E: minic.Int(0)},
		}},
	}}
	bin, m := buildModel(t, p)
	hits := BootStomp(bin, m)
	bootsEntry := uint32(0)
	for _, s := range bin.Funcs {
		if s.Name == "boots" {
			bootsEntry = s.Addr
		}
	}
	if len(hits) != 1 || hits[0] != bootsEntry {
		t.Errorf("hits = %v, want [%#x]", hits, bootsEntry)
	}
}
