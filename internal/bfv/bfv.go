// Package bfv extracts the Behavioral Feature Vector of the paper's Table 1:
// six structural features from the CFG/CG and five flow features from
// reaching-definition and call-site analysis, concatenated per Algorithm 1.
package bfv

import (
	"fmt"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/dataflow"
	"fits/internal/intern"
	"fits/internal/know"
)

// Dim is the dimensionality of the feature vector.
const Dim = 11

// Feature indices into a Vector, in the order of the paper's Table 1.
const (
	FBasicBlocks = iota // 1. number of basic blocks
	FHasLoop            // 2. existence of loops
	FCallers            // 3. number of callers
	FParams             // 4. number of parameters
	FAnchorCalls        // 5. number of calls to anchor functions
	FLibCalls           // 6. number of calls to library functions
	FParamLoop          // 7. whether parameters control loops
	FParamBranch        // 8. whether parameters control conditional branches
	FParamAnchor        // 9. whether parameters are passed to anchor functions
	FArgStrings         // 10. whether arguments contain strings
	FNumStrings         // 11. number of different strings in all call sites
)

// FeatureNames are short labels used by the ablation study and reports.
var FeatureNames = [Dim]string{
	"basic-blocks", "has-loop", "callers", "params", "anchor-calls",
	"lib-calls", "param-loop", "param-branch", "param-anchor",
	"arg-strings", "num-strings",
}

// Vector is one function's behavioral feature vector.
type Vector [Dim]float64

func (v Vector) String() string {
	return fmt.Sprintf("[%g %v %g %g %g %g %v %v %v %v %g]",
		v[FBasicBlocks], v[FHasLoop] != 0, v[FCallers], v[FParams],
		v[FAnchorCalls], v[FLibCalls], v[FParamLoop] != 0,
		v[FParamBranch] != 0, v[FParamAnchor] != 0, v[FArgStrings] != 0,
		v[FNumStrings])
}

// Drop returns a copy of v with feature i zeroed, implementing the CF-i
// variants of the paper's ablation study (RQ3).
func (v Vector) Drop(i int) Vector {
	v[i] = 0
	return v
}

// Extractor computes vectors for the functions of one binary model.
type Extractor struct {
	Bin   *binimg.Binary
	Model *cfg.Model
	// Anchors maps anchor names to arity; defaults to know.Anchors.
	Anchors map[string]int
	// ExtraCallers adds caller counts contributed by other binaries
	// (e.g. call sites in the main binary reaching a library's export).
	ExtraCallers map[uint32]int
	// Intern, when non-nil, canonicalizes call-site string constants so a
	// value seen at many sites costs one allocation per analysis. Interning
	// never changes vector contents.
	Intern *intern.Table
	// Clock and OnReachDef instrument the reaching-definition stage: when
	// both are set, each dataflow.Analyze call's wall time (and, with
	// AllocCount, its heap-object count) is reported through OnReachDef.
	// This package never reads a clock itself — impure callers inject one.
	Clock      func() int64
	AllocCount func() int64
	OnReachDef func(wallNanos, allocObjs int64)

	// anchorFn is e.anchorInfo bound once at construction: method values
	// allocate, and FuncVector needs one per call otherwise. Read-only after
	// New, so concurrent FuncVector calls may share it.
	anchorFn dataflow.AnchorFunc
}

// New returns an extractor with the default anchor set.
func New(bin *binimg.Binary, m *cfg.Model) *Extractor {
	e := &Extractor{Bin: bin, Model: m, Anchors: know.Anchors}
	e.anchorFn = e.anchorInfo
	return e
}

// calleeName resolves the library-function name of a call site: the import
// for PLT calls, or the export name for direct calls within a library.
func (e *Extractor) calleeName(cs cfg.CallSite) string {
	if cs.ImportName != "" {
		return cs.ImportName
	}
	if cs.Target != 0 {
		if name, ok := e.Bin.ExportAt(cs.Target); ok {
			return name
		}
	}
	return ""
}

// anchorInfo classifies a call site for the dataflow analysis.
func (e *Extractor) anchorInfo(cs cfg.CallSite) dataflow.AnchorInfo {
	name := e.calleeName(cs)
	if arity, ok := e.Anchors[name]; ok {
		return dataflow.AnchorInfo{Arity: arity, Anchor: true}
	}
	return dataflow.AnchorInfo{}
}

// FuncVector computes the 11-dimensional BFV of one function.
func (e *Extractor) FuncVector(f *cfg.Function) Vector {
	var v Vector
	// Structural features from the CFG and CG.
	v[FBasicBlocks] = float64(f.NumBlocks())
	if f.HasLoop() {
		v[FHasLoop] = 1
	}
	callers := len(e.Model.Callers[f.Entry])
	if e.ExtraCallers != nil {
		callers += e.ExtraCallers[f.Entry]
	}
	v[FCallers] = float64(callers)
	v[FParams] = float64(f.Params)
	for _, cs := range f.Calls {
		name := e.calleeName(cs)
		if name == "" {
			continue
		}
		v[FLibCalls]++
		if _, ok := e.Anchors[name]; ok {
			v[FAnchorCalls]++
		}
	}

	// Intraprocedural flow features from reaching definitions.
	anchorFn := e.anchorFn
	if anchorFn == nil { // literal-constructed extractor (tests)
		anchorFn = e.anchorInfo
	}
	var facts dataflow.FlowFacts
	if e.OnReachDef != nil && e.Clock != nil {
		t0 := e.Clock()
		var a0 int64
		if e.AllocCount != nil {
			a0 = e.AllocCount()
		}
		facts = dataflow.Analyze(f, anchorFn)
		var allocs int64
		if e.AllocCount != nil {
			allocs = e.AllocCount() - a0
		}
		e.OnReachDef(e.Clock()-t0, allocs)
	} else {
		facts = dataflow.Analyze(f, anchorFn)
	}
	if facts.ParamControlsLoop {
		v[FParamLoop] = 1
	}
	if facts.ParamControlsBranch {
		v[FParamBranch] = 1
	}
	if facts.ParamToAnchor {
		v[FParamAnchor] = 1
	}

	// Interprocedural flow features from call-site analysis.
	sf := dataflow.CallSiteStringsInterned(e.Bin, e.Model, f.Entry, f.Params, e.Intern)
	if sf.ArgsContainString {
		v[FArgStrings] = 1
	}
	v[FNumStrings] = float64(len(sf.Strings))
	return v
}

// All computes vectors for every custom (non-stub) function, keyed by entry
// address — the behavioral representation BR of Algorithm 1.
func (e *Extractor) All() map[uint32]Vector {
	out := make(map[uint32]Vector, len(e.Model.Funcs))
	for _, f := range e.Model.CustomFuncs() {
		out[f.Entry] = e.FuncVector(f)
	}
	return out
}
