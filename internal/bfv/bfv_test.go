package bfv

import (
	"strings"
	"testing"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/isa"
	"fits/internal/minic"
)

func buildModel(t *testing.T, p *minic.Program) (*binimg.Binary, *cfg.Model) {
	t.Helper()
	bin, err := minic.Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cfg.Build(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return bin, m
}

func fnNamed(t *testing.T, bin *binimg.Binary, m *cfg.Model, name string) *cfg.Function {
	t.Helper()
	for _, s := range bin.Funcs {
		if s.Name == name {
			if f, ok := m.FuncAt(s.Addr); ok {
				return f
			}
		}
	}
	t.Fatalf("function %q not in model", name)
	return nil
}

// itsProgram builds a getvar-style intermediate taint source: it scans a
// stored buffer for a keyword with strncmp, copies the match with memcpy and
// returns it — fn16 of the paper's Figure 1b — plus two callers passing
// string keys and a plain arithmetic confounder.
func itsProgram() *minic.Program {
	return &minic.Program{
		Name:    "httpd",
		Globals: []*minic.Global{{Name: "reqbuf", Size: 64}},
		Funcs: []*minic.Func{
			{
				Name: "getvar", NParams: 3,
				Body: []minic.Stmt{
					minic.Let{Name: "klen", E: minic.Call{Name: "strlen", Args: []minic.Expr{minic.Var("p0")}}},
					minic.Let{Name: "i", E: minic.Int(0)},
					minic.Let{Name: "out", E: minic.Int(0)},
					minic.While{
						Cond: minic.Cond{Op: minic.Lt, L: minic.Var("i"), R: minic.Var("p2")},
						Body: []minic.Stmt{
							minic.If{
								Cond: minic.Truthy(minic.Call{Name: "strncmp", Args: []minic.Expr{
									minic.Var("p0"), minic.Add(minic.Var("p1"), minic.Var("i")), minic.Var("klen")}}),
								Then: []minic.Stmt{
									minic.Assign{Name: "i", E: minic.Add(minic.Var("i"), minic.Int(1))},
								},
								Else: []minic.Stmt{
									minic.Assign{Name: "out", E: minic.Call{Name: "malloc", Args: []minic.Expr{minic.Var("klen")}}},
									minic.ExprStmt{E: minic.Call{Name: "memcpy", Args: []minic.Expr{
										minic.Var("out"), minic.Add(minic.Var("p1"), minic.Var("i")), minic.Var("klen")}}},
									minic.Assign{Name: "i", E: minic.Var("p2")},
								},
							},
						},
					},
					minic.Return{E: minic.Var("out")},
				},
			},
			{
				Name: "login", Body: []minic.Stmt{
					minic.ExprStmt{E: minic.Call{Name: "getvar", Args: []minic.Expr{
						minic.Str("username"), minic.GlobalRef("reqbuf"), minic.Int(64)}}},
					minic.ExprStmt{E: minic.Call{Name: "getvar", Args: []minic.Expr{
						minic.Str("password"), minic.GlobalRef("reqbuf"), minic.Int(64)}}},
					minic.Return{E: minic.Int(0)},
				},
			},
			{
				Name: "settings", Body: []minic.Stmt{
					minic.Return{E: minic.Call{Name: "getvar", Args: []minic.Expr{
						minic.Str("lang"), minic.GlobalRef("reqbuf"), minic.Int(64)}}},
				},
			},
			{
				Name: "confounder", NParams: 1, Body: []minic.Stmt{
					minic.Return{E: minic.Mul(minic.Var("p0"), minic.Int(3))},
				},
			},
		},
	}
}

func TestITSVector(t *testing.T) {
	bin, m := buildModel(t, itsProgram())
	ex := New(bin, m)
	v := ex.FuncVector(fnNamed(t, bin, m, "getvar"))

	if v[FBasicBlocks] < 4 {
		t.Errorf("basic blocks = %g, want >= 4", v[FBasicBlocks])
	}
	if v[FHasLoop] != 1 {
		t.Error("loop not detected")
	}
	if v[FCallers] != 3 {
		t.Errorf("callers = %g, want 3", v[FCallers])
	}
	if v[FParams] != 3 {
		t.Errorf("params = %g, want 3", v[FParams])
	}
	// strncmp + memcpy + strlen are anchors; malloc is a plain lib call.
	if v[FAnchorCalls] != 3 {
		t.Errorf("anchor calls = %g, want 3", v[FAnchorCalls])
	}
	if v[FLibCalls] != 4 {
		t.Errorf("lib calls = %g, want 4", v[FLibCalls])
	}
	if v[FParamLoop] != 1 || v[FParamBranch] != 1 || v[FParamAnchor] != 1 {
		t.Errorf("flow features = %v %v %v", v[FParamLoop], v[FParamBranch], v[FParamAnchor])
	}
	if v[FArgStrings] != 1 {
		t.Error("string arguments not detected")
	}
	if v[FNumStrings] != 3 {
		t.Errorf("distinct strings = %g, want 3 (username/password/lang)", v[FNumStrings])
	}
}

func TestConfounderVector(t *testing.T) {
	bin, m := buildModel(t, itsProgram())
	ex := New(bin, m)
	v := ex.FuncVector(fnNamed(t, bin, m, "confounder"))
	if v[FHasLoop] != 0 || v[FAnchorCalls] != 0 || v[FLibCalls] != 0 {
		t.Errorf("confounder vector = %v", v)
	}
	if v[FParams] != 1 {
		t.Errorf("params = %g", v[FParams])
	}
	if v[FArgStrings] != 0 || v[FNumStrings] != 0 {
		t.Errorf("string features = %v %v", v[FArgStrings], v[FNumStrings])
	}
}

func TestAllSkipsStubs(t *testing.T) {
	bin, m := buildModel(t, itsProgram())
	ex := New(bin, m)
	vecs := ex.All()
	for entry := range vecs {
		f, _ := m.FuncAt(entry)
		if f.ImportStub {
			t.Errorf("stub %s included", f.Name)
		}
	}
	if len(vecs) != 4 {
		t.Errorf("custom functions = %d, want 4", len(vecs))
	}
}

func TestExtraCallers(t *testing.T) {
	bin, m := buildModel(t, itsProgram())
	ex := New(bin, m)
	getvar := fnNamed(t, bin, m, "getvar")
	base := ex.FuncVector(getvar)[FCallers]
	ex.ExtraCallers = map[uint32]int{getvar.Entry: 5}
	boosted := ex.FuncVector(getvar)[FCallers]
	if boosted != base+5 {
		t.Errorf("callers %g -> %g, want +5", base, boosted)
	}
}

func TestDrop(t *testing.T) {
	v := Vector{1, 1, 2, 3, 4, 5, 1, 1, 1, 1, 6}
	d := v.Drop(FCallers)
	if d[FCallers] != 0 {
		t.Error("drop did not zero feature")
	}
	if v[FCallers] != 2 {
		t.Error("drop mutated receiver")
	}
	for i := 0; i < Dim; i++ {
		if i != FCallers && d[i] != v[i] {
			t.Errorf("feature %d changed", i)
		}
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{17, 1, 2, 3, 5, 6, 1, 1, 1, 1, 2}
	s := v.String()
	// The paper's fn16 example renders as [17,true,2,3,5,6,...].
	for _, want := range []string{"17", "true", "5", "6"} {
		if !strings.Contains(s, want) {
			t.Errorf("vector string %q missing %q", s, want)
		}
	}
}

func TestFeatureNamesComplete(t *testing.T) {
	for i, n := range FeatureNames {
		if n == "" {
			t.Errorf("feature %d unnamed", i)
		}
	}
}
