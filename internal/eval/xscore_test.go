package eval

import (
	"context"
	"testing"

	"fits/internal/synth"
)

// TestRunXScore is the acceptance table of the cross-binary subsystem:
// keyword-seeded cross-binary mode reaches every planted vulnerable flow
// (local and cross), while CTS and CTS+ITS — perfect or not on the border
// binary — detect zero cross-binary flows.
func TestRunXScore(t *testing.T) {
	x, err := synth.GenerateXCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunXScore(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatXScore(rows))
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byMode := map[string]XScoreRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}

	var crossTotal int
	for _, f := range x.Manifest.CrossFlows() {
		if f.Vulnerable {
			crossTotal++
		}
	}
	if crossTotal == 0 {
		t.Fatal("manifest plants no vulnerable cross flows")
	}

	for _, mode := range []string{"cts", "its"} {
		r := byMode[mode]
		if r.CrossTP != 0 {
			t.Errorf("%s: detected %d cross flows, want 0 (single-binary seeding cannot see them)", mode, r.CrossTP)
		}
		if r.CrossTotal != crossTotal {
			t.Errorf("%s: cross total = %d, want %d", mode, r.CrossTotal, crossTotal)
		}
		if r.Recall >= 1 {
			t.Errorf("%s: recall = %.2f, want < 1 (cross flows missed)", mode, r.Recall)
		}
	}

	cross := byMode["cross"]
	if cross.CrossTP != crossTotal {
		t.Errorf("cross: detected %d/%d cross flows, want all", cross.CrossTP, crossTotal)
	}
	if cross.FN != 0 || cross.Recall != 1 {
		t.Errorf("cross: FN=%d recall=%.2f, want 0/1 (every vulnerable flow found)", cross.FN, cross.Recall)
	}
	if cross.FP != 0 || cross.Precision != 1 {
		t.Errorf("cross: FP=%d precision=%.2f, want 0/1 (sanitized and constant flows stay silent)", cross.FP, cross.Precision)
	}

	// Monotone: each richer seeding finds at least as much as the last.
	if !(byMode["cts"].TP <= byMode["its"].TP && byMode["its"].TP < cross.TP) {
		t.Errorf("TP not monotone: cts=%d its=%d cross=%d", byMode["cts"].TP, byMode["its"].TP, cross.TP)
	}
}
