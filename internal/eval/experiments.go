package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fits/internal/altrep"
	"fits/internal/bfv"
	"fits/internal/infer"
	"fits/internal/loader"
	"fits/internal/score"
	"fits/internal/synth"
)

// ---- Table 4: partial per-firmware inference details ----

// DetailRow is one row of Table 4.
type DetailRow struct {
	Vendor   string
	Firmware string
	Binary   string
	NumFuncs int
	ITSAddr  uint32
	Ranking  int // 1-based; 0 = not ranked
}

// Table4 reports per-firmware detail for a selection of samples: the
// analyzed binary, its recovered function count, the verified ITS address
// and its rank.
func Table4(samples []*synth.Sample, maxPerVendor int) []DetailRow {
	perVendor := map[string]int{}
	var rows []DetailRow
	for _, s := range samples {
		if s.Manifest.FailureMode != "" {
			continue
		}
		if perVendor[s.Manifest.Vendor] >= maxPerVendor {
			continue
		}
		r := RunInference(s, infer.DefaultConfig())
		if len(r.Rankings) == 0 {
			continue
		}
		perVendor[s.Manifest.Vendor]++
		// Report the target whose ranking carries the best-placed ITS
		// (for multi-binary firmware this is sometimes the CGI helper,
		// as in the paper's Table 4).
		best := r.Rankings[0]
		bestRank := 0
		var bestAddr uint32
		for _, rk := range r.Rankings {
			truth := map[uint32]bool{}
			for _, its := range s.Manifest.ITS {
				if its.Binary == rk.Binary {
					truth[its.Entry] = true
				}
			}
			for i, e := range rk.Ranked {
				if truth[e.Entry] {
					if bestRank == 0 || i+1 < bestRank {
						best, bestRank, bestAddr = rk, i+1, e.Entry
					}
					break
				}
			}
		}
		rows = append(rows, DetailRow{
			Vendor:   s.Manifest.Vendor,
			Firmware: s.Manifest.Product + "-" + s.Manifest.Version,
			Binary:   best.Binary,
			NumFuncs: best.NumFuncs,
			ITSAddr:  bestAddr,
			Ranking:  bestRank,
		})
	}
	return rows
}

// FormatTable4 renders Table 4 rows.
func FormatTable4(rows []DetailRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-22s %-10s %8s %10s %8s\n",
		"Vendor", "Firmware", "Binary", "#Funcs", "ITS addr", "Ranking")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-22s %-10s %8d %#10x %8d\n",
			r.Vendor, r.Firmware, r.Binary, r.NumFuncs, r.ITSAddr, r.Ranking)
	}
	return b.String()
}

// ---- Figure 4: analysis time vs. binary properties ----

// TimePoint is one firmware's analysis cost datum.
type TimePoint struct {
	Funcs   int
	SizeKB  float64
	Elapsed time.Duration
}

// Figure4 measures inference time against function count and binary size.
// It deliberately runs without the shared cache — a hit would decouple the
// measured time from the work the figure correlates it with — and repeats
// each sample until the measurements amount to a few milliseconds of work,
// keeping the fastest run. Descheduling noise is one-sided and per-sample
// analysis is now fast enough (sub-millisecond on small samples) that a
// single stall can exceed the measured work itself; min-of-N with N scaled
// to the sample's speed keeps the trend visible even on loaded machines.
func Figure4(samples []*synth.Sample) []TimePoint {
	const (
		minReps  = 5
		maxReps  = 16
		timeGoal = 15 * time.Millisecond
	)
	var out []TimePoint
	for _, s := range samples {
		if s.Manifest.FailureMode == "preprocess-miss" {
			continue
		}
		var res *loader.Result
		var rankings []*infer.Ranking
		var elapsed, total time.Duration
		for rep := 0; rep < maxReps && (rep < minReps || total < timeGoal); rep++ {
			start := time.Now()
			r, err := loader.Load(s.Packed, loader.Options{})
			if err != nil {
				res = nil
				break
			}
			rk := infer.InferAll(r, infer.DefaultConfig())
			d := time.Since(start)
			total += d
			if rep == 0 || d < elapsed {
				elapsed = d
			}
			res, rankings = r, rk
		}
		if res == nil {
			continue
		}
		funcs := 0
		size := 0
		for i, t := range res.Targets {
			funcs += rankings[i].NumFuncs
			size += t.Bin.Size()
		}
		out = append(out, TimePoint{Funcs: funcs, SizeKB: float64(size) / 1024, Elapsed: elapsed})
	}
	return out
}

// Correlation computes the Pearson correlation of xs against analysis time.
func Correlation(points []TimePoint, x func(TimePoint) float64) float64 {
	n := float64(len(points))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for _, p := range points {
		mx += x(p)
		my += p.Elapsed.Seconds()
	}
	mx /= n
	my /= n
	var cov, vx, vy float64
	for _, p := range points {
		dx, dy := x(p)-mx, p.Elapsed.Seconds()-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / (sqrt(vx) * sqrt(vy))
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}

// ---- Figure 5: BFV ablation (CF-1 .. CF-11) ----

// AblationRow is one variant's corpus-wide precision.
type AblationRow struct {
	Name string
	Top1 float64
	Top2 float64
	Top3 float64
}

// Figure5 reruns inference with each single feature removed.
func Figure5(samples []*synth.Sample) []AblationRow {
	var rows []AblationRow
	full := RunInferenceCorpus(samples, infer.DefaultConfig())
	t1, t2, t3 := OverallPrecision(full)
	rows = append(rows, AblationRow{Name: "BFV", Top1: t1, Top2: t2, Top3: t3})
	for f := 0; f < bfv.Dim; f++ {
		cfgn := infer.DefaultConfig()
		cfgn.DropFeature = f
		res := RunInferenceCorpus(samples, cfgn)
		t1, t2, t3 := OverallPrecision(res)
		rows = append(rows, AblationRow{
			Name: fmt.Sprintf("CF-%d (%s)", f+1, bfv.FeatureNames[f]),
			Top1: t1, Top2: t2, Top3: t3,
		})
	}
	return rows
}

// ---- Table 7: representation comparison ----

// Table7 compares BFV against the Augmented-CFG and Attributed-CFG
// baselines.
func Table7(samples []*synth.Sample) []AblationRow {
	var rows []AblationRow
	for _, rep := range []infer.Representation{
		infer.RepAugmentedCFG, infer.RepAttributedCFG, infer.RepBFV,
	} {
		cfgn := infer.DefaultConfig()
		cfgn.Representation = rep
		res := RunInferenceCorpus(samples, cfgn)
		t1, t2, t3 := OverallPrecision(res)
		rows = append(rows, AblationRow{Name: rep.String(), Top1: t1, Top2: t2, Top3: t3})
	}
	return rows
}

// ---- Table 8: distance metric comparison ----

// Table8 compares the similarity metrics for the scoring stage.
func Table8(samples []*synth.Sample) []AblationRow {
	var rows []AblationRow
	for _, m := range []score.Metric{score.Euclidean, score.Manhattan, score.Pearson, score.Cosine} {
		cfgn := infer.DefaultConfig()
		cfgn.Metric = m
		res := RunInferenceCorpus(samples, cfgn)
		t1, t2, t3 := OverallPrecision(res)
		rows = append(rows, AblationRow{Name: m.String(), Top1: t1, Top2: t2, Top3: t3})
	}
	return rows
}

// ---- RQ4: candidate-selection strategy baselines ----

// RQ4Strategies compares clustering against no-clustering and the
// preprocessing replacements.
func RQ4Strategies(samples []*synth.Sample) []AblationRow {
	var rows []AblationRow
	for _, st := range []infer.Strategy{
		infer.StrategyNone, infer.StrategyPCA, infer.StrategyStandardize,
		infer.StrategyNormalize, infer.StrategyCluster,
	} {
		cfgn := infer.DefaultConfig()
		cfgn.Strategy = st
		res := RunInferenceCorpus(samples, cfgn)
		t1, t2, t3 := OverallPrecision(res)
		rows = append(rows, AblationRow{Name: st.String(), Top1: t1, Top2: t2, Top3: t3})
	}
	return rows
}

// FormatAblation renders variant precision rows.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %6s %6s %6s\n", "Variant", "Top-1", "Top-2", "Top-3")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %5.0f%% %5.0f%% %5.0f%%\n", r.Name, 100*r.Top1, 100*r.Top2, 100*r.Top3)
	}
	return b.String()
}

// ---- RQ1 comparison: BootStomp-style inference ----

// BootStompBaseline counts, across the corpus, firmware where the keyword
// heuristic proposes any taint source and where a proposal is a true ITS.
func BootStompBaseline(samples []*synth.Sample) (proposed, correct int) {
	for _, s := range samples {
		res, err := loadCached(s.Packed, nil)
		if err != nil {
			continue
		}
		truth := map[uint32]bool{}
		for _, its := range s.Manifest.ITS {
			truth[its.Entry] = true
		}
		any, hit := false, false
		for _, t := range res.Targets {
			for _, entry := range altrep.BootStomp(t.Bin, t.Model) {
				any = true
				if truth[entry] {
					hit = true
				}
			}
		}
		if any {
			proposed++
		}
		if hit {
			correct++
		}
	}
	return proposed, correct
}

// ---- Case study: the deep-flow CVE-2022-20825 analogue ----

// CaseStudy reproduces the paper's §4.3 case study on the Cisco sample: the
// distances from classical source and intermediate source to the deepest
// sink, and which engines reach it.
type CaseStudy struct {
	Product    string
	CTSDepth   int
	ITSDepth   int
	KaronteCTS bool // found by budgeted symbolic engine from CTS
	KaronteITS bool
	STACTS     bool
	STAITS     bool
}

// RunCaseStudy finds the deepest planted flow in the given sample and checks
// which engine configurations report it.
func RunCaseStudy(s *synth.Sample) CaseStudy {
	cs := CaseStudy{Product: s.Manifest.Product}
	var deepest *synth.HandlerTruth
	for i := range s.Manifest.Handlers {
		h := &s.Manifest.Handlers[i]
		if !h.Category.Vulnerable() {
			continue
		}
		if deepest == nil || h.CTSDepth > deepest.CTSDepth {
			deepest = h
		}
	}
	if deepest == nil {
		return cs
	}
	cs.CTSDepth = deepest.CTSDepth
	cs.ITSDepth = deepest.ITSDepth
	check := func(kind EngineKind) bool {
		r := RunBugEngine(s, kind)
		return r.FoundFlows[deepest.SinkEntry]
	}
	cs.KaronteCTS = check(EngineKaronte)
	cs.KaronteITS = check(EngineKaronteITS)
	cs.STACTS = check(EngineSTA)
	cs.STAITS = check(EngineSTAITS)
	return cs
}

// DeepestSamples returns samples ordered by their deepest vulnerable flow.
func DeepestSamples(samples []*synth.Sample) []*synth.Sample {
	out := append([]*synth.Sample(nil), samples...)
	depth := func(s *synth.Sample) int {
		d := 0
		for _, h := range s.Manifest.Handlers {
			if h.Category.Vulnerable() && h.CTSDepth > d {
				d = h.CTSDepth
			}
		}
		return d
	}
	sort.Slice(out, func(i, j int) bool { return depth(out[i]) > depth(out[j]) })
	return out
}
