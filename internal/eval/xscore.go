package eval

import (
	"context"
	"fmt"
	"strings"

	"fits/internal/corpustaint"
	"fits/internal/synth"
)

// xscore.go scores the cross-binary corpus modes against the planted
// ground truth of a synth.XCorpus: classical seeding (CTS), single-binary
// inferred sources (CTS+ITS), and the front-end-aware cross-binary
// fixpoint. The comparison is the subsystem's acceptance claim — the
// cross-binary flows are invisible to any per-binary seeding because the
// back-end readers have no classical sources at all.

// XScoreRow is one corpus mode's detection score.
type XScoreRow struct {
	Mode string
	// TP / FP / FN count alerts against the planted vulnerable flows:
	// an alert is a true positive when it lands on a vulnerable flow's
	// (binary, function, sink) coordinate.
	TP, FP, FN int
	Precision  float64
	Recall     float64
	// CrossTP / CrossTotal restrict the count to the vulnerable
	// cross-binary flows, the rows single-binary modes provably miss.
	CrossTP    int
	CrossTotal int
}

// RunXScore scans the corpus once per mode and scores each report against
// the manifest.
func RunXScore(ctx context.Context, x *synth.XCorpus) ([]XScoreRow, error) {
	rows := make([]XScoreRow, 0, 3)
	for _, mode := range []corpustaint.Mode{corpustaint.ModeCTS, corpustaint.ModeITS, corpustaint.ModeCross} {
		rep, err := corpustaint.Run(ctx, x.Files, corpustaint.Options{Mode: mode})
		if err != nil {
			return nil, err
		}
		rows = append(rows, scoreReport(string(mode), rep, x.Manifest))
	}
	return rows, nil
}

// scoreReport matches one report's alerts against the planted flows.
func scoreReport(mode string, rep *corpustaint.Report, m synth.XManifest) XScoreRow {
	row := XScoreRow{Mode: mode}
	type coord struct {
		binary string
		entry  uint32
		sink   string
	}
	truth := map[coord]synth.XFlowTruth{}
	for _, f := range m.Flows {
		if !f.Vulnerable {
			continue
		}
		truth[coord{f.SinkBinary, f.SinkEntry, f.Sink}] = f
		if f.CrossBinary {
			row.CrossTotal++
		}
	}
	hit := map[coord]bool{}
	for _, a := range rep.Alerts {
		c := coord{a.Binary, a.Func, a.Sink}
		if _, ok := truth[c]; ok {
			hit[c] = true
		} else {
			row.FP++
		}
	}
	for c, f := range truth {
		if hit[c] {
			row.TP++
			if f.CrossBinary {
				row.CrossTP++
			}
		} else {
			row.FN++
		}
	}
	if row.TP+row.FP > 0 {
		row.Precision = float64(row.TP) / float64(row.TP+row.FP)
	}
	if row.TP+row.FN > 0 {
		row.Recall = float64(row.TP) / float64(row.TP+row.FN)
	}
	return row
}

// FormatXScore renders the mode comparison as the evaluation table.
func FormatXScore(rows []XScoreRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %4s %4s %4s %10s %7s %12s\n",
		"Mode", "TP", "FP", "FN", "Precision", "Recall", "Cross-flows")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %4d %4d %4d %9.0f%% %6.0f%% %8d/%d\n",
			r.Mode, r.TP, r.FP, r.FN, 100*r.Precision, 100*r.Recall, r.CrossTP, r.CrossTotal)
	}
	return b.String()
}
