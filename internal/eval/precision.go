package eval

import (
	"fmt"
	"strings"

	"fits/internal/synth"
	"fits/internal/taint"
)

// precision.go scores the two precision passes of the STA engine — the
// bounded points-to analysis (internal/alias) and the path-feasibility
// post-pass (internal/pathcheck) — against the baseline engine with both
// passes disabled, over ground-truth manifests of all three synth families:
// single-binary samples, version chains, and multi-binary firmware. Each
// family plants SafeInfeasible handlers (a false positive only feasibility
// checking removes) and VulnAliased handlers (a true flow only the alias
// pass connects), so the before/after table is the subsystem's acceptance
// claim: strictly better precision at no loss of recall.
//
// Scoring conventions (deliberate, relied on by the CI gate):
//   - Precision is 1.0 when TP+FP == 0: an engine that reports nothing on a
//     corpus has made no false claims. This differs from the 0-on-empty
//     guard of RunXScore, where an all-miss mode should not score 100%.
//   - Recall is 1.0 when the manifest plants no vulnerable flow (nothing to
//     miss), covering only-infeasible manifests.

// PrecisionModeBaseline and PrecisionModeFull name the two engine
// configurations of the comparison.
const (
	PrecisionModeBaseline = "baseline"
	PrecisionModeFull     = "alias+pathcheck"
)

// ScanPrecisionRow is one (family, engine mode) cell of the precision table.
type ScanPrecisionRow struct {
	Family string
	Mode   string
	// Alerts counts reported alerts; Refuted counts alerts the feasibility
	// pass removed (always 0 in baseline mode).
	Alerts  int
	Refuted int
	// TP / FP / FN match alerts against the manifests' vulnerable handlers
	// by (binary, sink-function, dedup by flow).
	TP, FP, FN int
	Precision  float64
	Recall     float64
}

// precisionExtras is the planted mix every precision-eval sample adds on
// top of its profile: two infeasible-guard false positives and one
// aliased-flow true positive per binary that carries them.
func precisionExtras() map[synth.HandlerCategory]int {
	return map[synth.HandlerCategory]int{
		synth.SafeInfeasible: 2,
		synth.VulnAliased:    1,
	}
}

// precisionSamples generates the three families. Seeds are fixed so the
// table is deterministic; the specs are separate from Dataset() and
// ChainDataset() so the standard corpora stay byte-identical.
func precisionSamples() (map[string][]*synth.Sample, []string, error) {
	extras := precisionExtras()
	families := map[string][]*synth.Sample{}
	order := []string{"single-binary", "version-chain", "multibin"}

	// Single-binary family: one sample per single-binary vendor profile.
	singles := []synth.SampleSpec{
		{Vendor: "Tenda", Series: "AC", Product: "AC-PR1", Version: "V1.0.1", Seed: 9101, ExtraHandlers: extras},
		{Vendor: "D-Link", Series: "DIR", Product: "DIR-PR2", Version: "V1.0.2", Seed: 9102, ExtraHandlers: extras},
		{Vendor: "TP-Link", Series: "WR", Product: "WR-PR3", Version: "V1.0.3", Seed: 9103, ExtraHandlers: extras},
	}
	for _, spec := range singles {
		s, err := synth.Generate(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("precision: %s: %w", spec.Product, err)
		}
		families["single-binary"] = append(families["single-binary"], s)
	}

	// Version-chain family: a patch chain whose every version carries the
	// planted cases.
	chain, err := synth.GenerateChain(synth.ChainSpec{
		Seed:          9201,
		Steps:         []synth.ChainStepKind{synth.StepPatchBug, synth.StepAddFeature},
		ExtraHandlers: extras,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("precision: chain: %w", err)
	}
	families["version-chain"] = chain.Versions

	// Multi-binary family: NETGEAR-profile firmware ships httpd plus the
	// netcgi helper, so each sample's manifest spans two network binaries.
	multis := []synth.SampleSpec{
		{Vendor: "NETGEAR", Series: "R", Product: "R-PR4", Version: "V1.0.4", Seed: 9104, ExtraHandlers: extras},
		{Vendor: "NETGEAR", Series: "XR", Product: "XR-PR5", Version: "V1.0.5", Seed: 9105, ExtraHandlers: extras},
	}
	for _, spec := range multis {
		s, err := synth.Generate(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("precision: %s: %w", spec.Product, err)
		}
		families["multibin"] = append(families["multibin"], s)
	}
	return families, order, nil
}

// scorePrecision scans every sample of one family in one engine mode and
// accumulates the row. The ITS set is seeded from the manifest (the paper's
// verified-candidate workflow, as in RunBugEngine), so the comparison
// isolates the precision passes from inference quality.
func scorePrecision(family, mode string, samples []*synth.Sample, disablePasses bool) (ScanPrecisionRow, error) {
	row := ScanPrecisionRow{Family: family, Mode: mode}
	type coord struct {
		version string
		binary  string
		entry   uint32
	}
	found := map[coord]bool{}
	vulnTotal := 0
	for _, s := range samples {
		res, err := loadCached(s.Packed, nil)
		if err != nil {
			return row, fmt.Errorf("precision: load %s %s: %w", s.Manifest.Product, s.Manifest.Version, err)
		}
		for _, h := range s.Manifest.Handlers {
			if h.Category.Vulnerable() {
				vulnTotal++
			}
		}
		for _, t := range res.Targets {
			var its []uint32
			for _, it := range s.Manifest.ITSIn(t.Bin.Name) {
				its = append(its, it.Entry)
			}
			e := taint.New(t.Bin, t.Model, taint.Options{
				UseCTS: true, ITS: its, StringFilter: true,
				NoAlias: disablePasses, NoPathcheck: disablePasses,
			})
			alerts := e.Run()
			for _, a := range e.AllAlerts() {
				if a.Refuted != "" {
					row.Refuted++
				}
			}
			row.Alerts += len(alerts)
			for _, a := range alerts {
				h, ok := s.Manifest.HandlerBySink(t.Bin.Name, a.Func)
				if ok && h.Category.Vulnerable() {
					found[coord{s.Manifest.Version, t.Bin.Name, h.SinkEntry}] = true
				} else {
					row.FP++
				}
			}
		}
	}
	row.TP = len(found)
	row.FN = vulnTotal - row.TP
	// 1.0-on-empty conventions: see the package comment above.
	row.Precision = 1.0
	if row.TP+row.FP > 0 {
		row.Precision = float64(row.TP) / float64(row.TP+row.FP)
	}
	row.Recall = 1.0
	if vulnTotal > 0 {
		row.Recall = float64(row.TP) / float64(vulnTotal)
	}
	return row, nil
}

// RunPrecision produces the before/after precision table: per family, one
// baseline row (both passes disabled — the pre-overhaul engine) and one
// full row (alias + pathcheck on, the default configuration).
func RunPrecision() ([]ScanPrecisionRow, error) {
	families, order, err := precisionSamples()
	if err != nil {
		return nil, err
	}
	var rows []ScanPrecisionRow
	for _, fam := range order {
		base, err := scorePrecision(fam, PrecisionModeBaseline, families[fam], true)
		if err != nil {
			return nil, err
		}
		full, err := scorePrecision(fam, PrecisionModeFull, families[fam], false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, base, full)
	}
	return rows, nil
}

// CheckPrecision enforces the CI gate on a RunPrecision table: per family,
// the full configuration must score strictly better precision than the
// baseline without giving up recall.
func CheckPrecision(rows []ScanPrecisionRow) error {
	byFamily := map[string][2]*ScanPrecisionRow{}
	var order []string
	for i := range rows {
		r := &rows[i]
		pair, ok := byFamily[r.Family]
		if !ok {
			order = append(order, r.Family)
		}
		switch r.Mode {
		case PrecisionModeBaseline:
			pair[0] = r
		case PrecisionModeFull:
			pair[1] = r
		}
		byFamily[r.Family] = pair
	}
	var problems []string
	for _, fam := range order {
		pair := byFamily[fam]
		base, full := pair[0], pair[1]
		if base == nil || full == nil {
			problems = append(problems, fmt.Sprintf("%s: incomplete row pair", fam))
			continue
		}
		if full.Precision <= base.Precision {
			problems = append(problems, fmt.Sprintf("%s: precision %.3f not strictly better than baseline %.3f",
				fam, full.Precision, base.Precision))
		}
		if full.Recall < base.Recall {
			problems = append(problems, fmt.Sprintf("%s: recall %.3f below baseline %.3f",
				fam, full.Recall, base.Recall))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("precision gate failed:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// FormatPrecision renders the table.
func FormatPrecision(rows []ScanPrecisionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-16s %6s %7s %4s %4s %4s %10s %7s\n",
		"Family", "Mode", "Alerts", "Refuted", "TP", "FP", "FN", "Precision", "Recall")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-16s %6d %7d %4d %4d %4d %9.1f%% %6.1f%%\n",
			r.Family, r.Mode, r.Alerts, r.Refuted, r.TP, r.FP, r.FN,
			100*r.Precision, 100*r.Recall)
	}
	return b.String()
}
