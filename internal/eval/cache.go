package eval

import (
	"fits/internal/infer"
	"fits/internal/loader"
	"fits/internal/modelcache"
	"fits/internal/pool"
)

// sharedCache backs every corpus experiment: the RQ sweeps and ablations
// reload the same samples dozens of times under different pipeline variants
// (representations, strategies, metrics, dropped features), so each model
// and base-vector set is derived once and every variant after the first is
// a re-ranking of cached artifacts. Figure4 deliberately bypasses it — that
// experiment measures analysis time against binary size, and cache hits
// would decouple the two.
var sharedCache = modelcache.New(0, 0)

// CacheStats exposes the shared cache's counters (benchmark reporting).
func CacheStats() modelcache.Stats { return sharedCache.Stats() }

// loadCached loads one packed sample through the shared cache. A non-nil
// sched draws the model-building fan-out from the corpus-level worker budget
// (batched sweeps); nil keeps the loader's own per-call pool.
func loadCached(packed []byte, sched *pool.Scheduler) (*loader.Result, error) {
	return loader.Load(packed, loader.Options{Cache: sharedCache, Sched: sched})
}

// cached attaches the shared cache to an inference configuration.
func cached(cfg infer.Config) infer.Config {
	cfg.Cache = sharedCache
	return cfg
}
