package eval

import (
	"strings"
	"testing"

	"fits/internal/synth"
)

// TestScorePrecisionZeroAlertCorpus exercises the divide-by-zero edge: a
// corpus on which the engine reports nothing must score the documented
// 1.0-precision-on-empty convention, not 0 or NaN.
func TestScorePrecisionZeroAlertCorpus(t *testing.T) {
	// An offset-indexed failure-mode sample has no keyed fetch functions,
	// so ITS seeding is empty and almost nothing alerts; with no handlers
	// of any alerting kind the row can be fully empty. Use a spec whose
	// profile floor guarantees vulnerable handlers but strip the manifest
	// to simulate an empty ground truth instead: score over no samples.
	row, err := scorePrecision("empty", PrecisionModeFull, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if row.TP != 0 || row.FP != 0 || row.FN != 0 || row.Alerts != 0 {
		t.Fatalf("empty corpus produced counts: %+v", row)
	}
	if row.Precision != 1.0 {
		t.Errorf("precision on empty = %v, want the documented 1.0 convention", row.Precision)
	}
	if row.Recall != 1.0 {
		t.Errorf("recall with no planted flows = %v, want the documented 1.0 convention", row.Recall)
	}
}

// TestScorePrecisionOnlyInfeasible scores a manifest whose only planted
// handlers are infeasible-guard false positives: the baseline alerts on
// them (precision 0 over the planted set), the full configuration refutes
// every one, and recall stays at the 1.0-on-no-vulnerable-flows convention
// in both modes.
func TestScorePrecisionOnlyInfeasible(t *testing.T) {
	s, err := synth.Generate(synth.SampleSpec{
		Vendor: "TP-Link", Series: "WR", Product: "WR-INF", Version: "V1.0.9", Seed: 9301,
		ExtraHandlers: map[synth.HandlerCategory]int{synth.SafeInfeasible: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Restrict the manifest view to the planted infeasible handlers so the
	// sample's profile-level mix cannot contribute vulnerable flows.
	var kept []synth.HandlerTruth
	for _, h := range s.Manifest.Handlers {
		if h.Category == synth.SafeInfeasible {
			kept = append(kept, h)
		}
	}
	if len(kept) != 3 {
		t.Fatalf("planted %d SafeInfeasible handlers, want 3", len(kept))
	}
	for _, h := range kept {
		if h.Category.Vulnerable() {
			t.Fatalf("SafeInfeasible classified vulnerable")
		}
	}

	base, err := scorePrecision("only-infeasible", PrecisionModeBaseline, []*synth.Sample{s}, true)
	if err != nil {
		t.Fatal(err)
	}
	full, err := scorePrecision("only-infeasible", PrecisionModeFull, []*synth.Sample{s}, false)
	if err != nil {
		t.Fatal(err)
	}
	if full.Refuted == 0 {
		t.Error("full mode refuted no alerts on an infeasible-only plant")
	}
	if base.Refuted != 0 {
		t.Errorf("baseline mode refuted %d alerts; the pass should be off", base.Refuted)
	}
	if full.FP >= base.FP {
		t.Errorf("full-mode FP %d not below baseline %d", full.FP, base.FP)
	}
	if full.Recall < base.Recall {
		t.Errorf("full-mode recall %v below baseline %v", full.Recall, base.Recall)
	}
}

// TestCheckPrecisionGate verifies both directions of the CI gate.
func TestCheckPrecisionGate(t *testing.T) {
	good := []ScanPrecisionRow{
		{Family: "f", Mode: PrecisionModeBaseline, Precision: 0.5, Recall: 0.8},
		{Family: "f", Mode: PrecisionModeFull, Precision: 0.7, Recall: 0.8},
	}
	if err := CheckPrecision(good); err != nil {
		t.Errorf("gate rejected an improvement: %v", err)
	}
	flat := []ScanPrecisionRow{
		{Family: "f", Mode: PrecisionModeBaseline, Precision: 0.5, Recall: 0.8},
		{Family: "f", Mode: PrecisionModeFull, Precision: 0.5, Recall: 0.8},
	}
	if err := CheckPrecision(flat); err == nil {
		t.Error("gate accepted equal precision; must require strictly better")
	}
	lostRecall := []ScanPrecisionRow{
		{Family: "f", Mode: PrecisionModeBaseline, Precision: 0.5, Recall: 0.8},
		{Family: "f", Mode: PrecisionModeFull, Precision: 0.9, Recall: 0.7},
	}
	if err := CheckPrecision(lostRecall); err == nil {
		t.Error("gate accepted a recall regression")
	}
	missing := []ScanPrecisionRow{
		{Family: "f", Mode: PrecisionModeBaseline, Precision: 0.5, Recall: 0.8},
	}
	if err := CheckPrecision(missing); err == nil {
		t.Error("gate accepted an incomplete row pair")
	}
}

// TestRunPrecisionTable is the end-to-end acceptance check: both passes on
// by default must beat the baseline on every family, and the table must
// render every family twice.
func TestRunPrecisionTable(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and scans three sample families")
	}
	rows, err := RunPrecision()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 (3 families x 2 modes)", len(rows))
	}
	if err := CheckPrecision(rows); err != nil {
		t.Errorf("precision gate failed: %v", err)
	}
	out := FormatPrecision(rows)
	for _, fam := range []string{"single-binary", "version-chain", "multibin"} {
		if strings.Count(out, fam) != 2 {
			t.Errorf("family %s does not appear exactly twice in:\n%s", fam, out)
		}
	}
}
