package eval

import (
	"strings"
	"sync"
	"testing"

	"fits/internal/infer"
	"fits/internal/synth"
)

var (
	corpusOnce sync.Once
	corpus     []*synth.Sample
	corpusErr  error
)

func testCorpus(t *testing.T) []*synth.Sample {
	t.Helper()
	corpusOnce.Do(func() { corpus, corpusErr = synth.GenerateCorpus() })
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpus
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	results := RunInferenceCorpus(testCorpus(t), infer.DefaultConfig())
	t1, t2, t3 := OverallPrecision(results)
	// Paper: 47% / 63% / 89%. Require the shape within tolerance.
	if t3 < 0.80 || t3 > 0.97 {
		t.Errorf("top-3 = %.0f%%, want ~89%%", 100*t3)
	}
	if !(t1 < t2 && t2 < t3) {
		t.Errorf("precision not increasing: %v %v %v", t1, t2, t3)
	}
	if t1 < 0.35 || t1 > 0.60 {
		t.Errorf("top-1 = %.0f%%, want ~47%%", 100*t1)
	}

	// Exactly the six engineered failures miss top-3... or near it.
	misses := 0
	for _, r := range results {
		if !r.TopN(3) {
			misses++
			if r.Manifest.FailureMode == "" {
				t.Logf("unexpected miss: %s %s rank=%d", r.Manifest.Vendor, r.Manifest.Product, r.ITSRank)
			}
		}
	}
	if misses < 6 || misses > 9 {
		t.Errorf("top-3 misses = %d, want 6..9", misses)
	}

	rows := Table3(results)
	if rows[len(rows)-1].Dataset != "Average" {
		t.Error("missing average row")
	}
	out := FormatTable3(rows)
	for _, want := range []string{"NETGEAR", "Cisco", "Average", "Top-3"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestEngineeredFailuresAlwaysMiss(t *testing.T) {
	for _, s := range testCorpus(t) {
		if s.Manifest.FailureMode == "" {
			continue
		}
		r := RunInference(s, infer.DefaultConfig())
		if r.TopN(3) {
			t.Errorf("%s sample %s unexpectedly succeeded", s.Manifest.FailureMode, s.Manifest.Product)
		}
		if s.Manifest.FailureMode == "preprocess-miss" && r.LoadErr == nil {
			t.Errorf("preprocess-miss %s loaded successfully", s.Manifest.Product)
		}
	}
}

func TestTable4Detail(t *testing.T) {
	rows := Table4(testCorpus(t)[:25], 2)
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NumFuncs < 50 {
			t.Errorf("%s: functions = %d", r.Firmware, r.NumFuncs)
		}
		if r.Ranking > 0 && r.ITSAddr == 0 {
			t.Errorf("%s: ranked but no address", r.Firmware)
		}
	}
	if !strings.Contains(FormatTable4(rows), "Ranking") {
		t.Error("format missing header")
	}
}

func TestTable5And6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus bug finding is slow")
	}
	rows, ta, tb := Table5(testCorpus(t))
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Integrating ITSs must increase bug counts for both engines.
	if tb[EngineKaronteITS] <= tb[EngineKaronte] {
		t.Errorf("Karonte-ITS bugs %d <= Karonte %d", tb[EngineKaronteITS], tb[EngineKaronte])
	}
	if tb[EngineSTAITS] <= tb[EngineSTA]*4 {
		t.Errorf("STA-ITS bugs %d should dwarf STA %d", tb[EngineSTAITS], tb[EngineSTA])
	}
	fp := FalsePositiveRates(ta, tb)
	// STA's classical-source FP rate is far above STA-ITS's (77% vs 28%).
	if fp[EngineSTA] < fp[EngineSTAITS]+0.2 {
		t.Errorf("STA FP %.2f should exceed STA-ITS FP %.2f by a wide margin", fp[EngineSTA], fp[EngineSTAITS])
	}
	if fp[EngineSTA] < 0.6 || fp[EngineSTA] > 0.95 {
		t.Errorf("STA FP = %.2f, want ~0.77", fp[EngineSTA])
	}
	out := FormatTable5(rows, ta, tb)
	if !strings.Contains(out, "Total") {
		t.Error("format missing totals")
	}
}

func TestEngineKindHelpers(t *testing.T) {
	if EngineKaronte.WithITS() || EngineSTA.WithITS() {
		t.Error("base engines should not use ITS")
	}
	if !EngineKaronteITS.WithITS() || !EngineSTAITS.WithITS() {
		t.Error("ITS engines misreport")
	}
	for k := EngineKaronte; k <= EngineSTAITS; k++ {
		if k.String() == "engine" {
			t.Errorf("engine %d unnamed", k)
		}
	}
}

func TestFigure4TrendPositive(t *testing.T) {
	// Wall-clock correlation degrades when other test packages saturate
	// the machine (notably under -race), so allow a couple of retries
	// before declaring the trend gone.
	var byFuncs, bySize float64
	for attempt := 0; attempt < 3; attempt++ {
		points := Figure4(testCorpus(t)[:20])
		if len(points) < 10 {
			t.Fatalf("points = %d", len(points))
		}
		byFuncs = Correlation(points, func(p TimePoint) float64 { return float64(p.Funcs) })
		bySize = Correlation(points, func(p TimePoint) float64 { return p.SizeKB })
		if byFuncs >= 0.3 && bySize >= 0.3 {
			return
		}
		t.Logf("attempt %d: corr(time, funcs) = %.2f, corr(time, size) = %.2f; retrying", attempt+1, byFuncs, bySize)
	}
	if byFuncs < 0.3 {
		t.Errorf("corr(time, funcs) = %.2f, want positive trend", byFuncs)
	}
	if bySize < 0.3 {
		t.Errorf("corr(time, size) = %.2f, want positive trend", bySize)
	}
}

func TestTable7RepresentationGap(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows := Table7(testCorpus(t))
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	bfvRow := byName["BFV"]
	if bfvRow.Top3 < 0.8 {
		t.Errorf("BFV top-3 = %.2f", bfvRow.Top3)
	}
	for _, base := range []string{"Augmented-CFG", "Attributed-CFG"} {
		if byName[base].Top3 > bfvRow.Top3-0.4 {
			t.Errorf("%s top-3 %.2f too close to BFV %.2f", base, byName[base].Top3, bfvRow.Top3)
		}
	}
}

func TestTable8CosineWins(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows := Table8(testCorpus(t))
	var cosine AblationRow
	for _, r := range rows {
		if r.Name == "cosine" {
			cosine = r
		}
	}
	for _, r := range rows {
		if r.Name == "cosine" {
			continue
		}
		if r.Top3 > cosine.Top3 {
			t.Errorf("%s top-3 %.2f beats cosine %.2f", r.Name, r.Top3, cosine.Top3)
		}
	}
}

func TestBootStompFindsNoSources(t *testing.T) {
	_, correct := BootStompBaseline(testCorpus(t)[:15])
	if correct != 0 {
		t.Errorf("keyword baseline found %d sources, want 0", correct)
	}
}

func TestCaseStudyDeepFlow(t *testing.T) {
	deepest := DeepestSamples(testCorpus(t))[0]
	cs := RunCaseStudy(deepest)
	if cs.CTSDepth < 10 {
		t.Errorf("deepest flow CTS depth = %d, want >= 10", cs.CTSDepth)
	}
	if cs.ITSDepth >= cs.CTSDepth {
		t.Errorf("ITS depth %d should be far below CTS depth %d", cs.ITSDepth, cs.CTSDepth)
	}
	if !cs.STAITS {
		t.Error("STA-ITS should reach the deepest flow")
	}
	if cs.KaronteCTS {
		t.Error("budgeted symbolic engine should not reach the deepest flow from classical sources")
	}
}
