package eval

import (
	"fmt"
	"strings"
	"time"

	"fits/internal/infer"
	"fits/internal/karonte"
	"fits/internal/loader"
	"fits/internal/synth"
	"fits/internal/taint"
)

// EngineKind identifies the four taint configurations of Table 5.
type EngineKind uint8

// Engine kinds.
const (
	EngineKaronte EngineKind = iota
	EngineKaronteITS
	EngineSTA
	EngineSTAITS
)

func (k EngineKind) String() string {
	switch k {
	case EngineKaronte:
		return "Karonte"
	case EngineKaronteITS:
		return "Karonte-ITS"
	case EngineSTA:
		return "STA"
	case EngineSTAITS:
		return "STA-ITS"
	}
	return "engine"
}

// WithITS reports whether the configuration integrates inferred sources.
func (k EngineKind) WithITS() bool { return k == EngineKaronteITS || k == EngineSTAITS }

// BugResult is one engine's outcome on one firmware sample.
type BugResult struct {
	Manifest synth.Manifest
	Engine   EngineKind
	Alerts   int
	Bugs     int // true positives (distinct vulnerable flows alerted)
	Filtered int
	Elapsed  time.Duration
	// FoundFlows lists the sink-function entries of true-positive alerts,
	// for cross-engine subset checks.
	FoundFlows map[uint32]bool
}

// inferredITS runs the inference pipeline and returns the verified top-3
// entries usable as taint sources — the paper's workflow: infer, manually
// verify top candidates, then feed confirmed ITSs to the engines. The
// manifest stands in for manual verification.
func inferredITS(s *synth.Sample, t *loader.Target) []uint32 {
	ranking := infer.InferTarget(t, cached(infer.DefaultConfig()))
	truth := map[uint32]bool{}
	for _, its := range s.Manifest.ITS {
		if its.Binary == t.Bin.Name {
			truth[its.Entry] = true
		}
	}
	var out []uint32
	for _, r := range ranking.Top(3) {
		if truth[r.Entry] {
			out = append(out, r.Entry)
		}
	}
	return out
}

// RunBugEngine applies one engine configuration to one sample.
func RunBugEngine(s *synth.Sample, kind EngineKind) BugResult {
	start := time.Now()
	out := BugResult{Manifest: s.Manifest, Engine: kind, FoundFlows: map[uint32]bool{}}
	res, err := loadCached(s.Packed, nil)
	if err != nil {
		out.Elapsed = time.Since(start)
		return out
	}
	for _, t := range res.Targets {
		var its []uint32
		if kind.WithITS() {
			its = inferredITS(s, t)
		}
		var alerts []taint.Alert
		filtered := 0
		switch kind {
		case EngineSTA, EngineSTAITS:
			e := taint.New(t.Bin, t.Model, taint.Options{
				UseCTS: true, ITS: its, StringFilter: true,
			})
			alerts = e.Run()
			filtered = len(e.AllAlerts()) - len(alerts)
		default:
			e := karonte.New(t.Bin, t.Model, karonte.Options{UseCTS: true, ITS: its})
			alerts = e.Run()
		}
		out.Filtered += filtered
		out.Alerts += len(alerts)
		for _, a := range alerts {
			if h, ok := s.Manifest.HandlerBySink(t.Bin.Name, a.Func); ok && h.Category.Vulnerable() {
				if !out.FoundFlows[h.SinkEntry] {
					out.FoundFlows[h.SinkEntry] = true
					out.Bugs++
				}
			}
		}
	}
	out.Elapsed = time.Since(start)
	return out
}

// BugRow is one row of Table 5.
type BugRow struct {
	Dataset string
	Vendor  string
	N       int
	// Per engine: alerts, bugs, average time.
	Alerts  [4]int
	Bugs    [4]int
	AvgTime [4]time.Duration
}

// Table5 runs all four engines over the corpus and aggregates per
// dataset/vendor rows plus totals.
func Table5(samples []*synth.Sample) ([]BugRow, [4]int, [4]int) {
	type key struct {
		dataset string
		vendor  string
	}
	rowsBy := map[key]*BugRow{}
	var order []key
	var totalAlerts, totalBugs [4]int
	for _, s := range samples {
		ds := "Karonte"
		if s.Manifest.Latest {
			ds = "Latest"
		}
		k := key{dataset: ds, vendor: s.Manifest.Vendor}
		row, ok := rowsBy[k]
		if !ok {
			row = &BugRow{Dataset: ds, Vendor: s.Manifest.Vendor}
			rowsBy[k] = row
			order = append(order, k)
		}
		row.N++
		for kind := EngineKaronte; kind <= EngineSTAITS; kind++ {
			r := RunBugEngine(s, kind)
			row.Alerts[kind] += r.Alerts
			row.Bugs[kind] += r.Bugs
			row.AvgTime[kind] += r.Elapsed
			totalAlerts[kind] += r.Alerts
			totalBugs[kind] += r.Bugs
		}
	}
	var rows []BugRow
	for _, k := range order {
		row := rowsBy[k]
		for kind := range row.AvgTime {
			row.AvgTime[kind] /= time.Duration(row.N)
		}
		rows = append(rows, *row)
	}
	return rows, totalAlerts, totalBugs
}

// FormatTable5 renders rows in the paper's layout.
func FormatTable5(rows []BugRow, totalAlerts, totalBugs [4]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %4s |", "Dataset", "Vendor", "#FW")
	for kind := EngineKaronte; kind <= EngineSTAITS; kind++ {
		fmt.Fprintf(&b, " %-24s |", kind)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8s %4d |", r.Dataset, r.Vendor, r.N)
		for kind := 0; kind < 4; kind++ {
			fmt.Fprintf(&b, " al=%-4d bugs=%-4d %-7s |", r.Alerts[kind], r.Bugs[kind],
				r.AvgTime[kind].Round(time.Millisecond))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-8s %-8s %4s |", "Total", "-", "-")
	for kind := 0; kind < 4; kind++ {
		fmt.Fprintf(&b, " al=%-4d bugs=%-4d %-7s |", totalAlerts[kind], totalBugs[kind], "")
	}
	b.WriteString("\n")
	return b.String()
}

// FalsePositiveRates computes Table 6: per engine, FP / alerts.
func FalsePositiveRates(totalAlerts, totalBugs [4]int) [4]float64 {
	var out [4]float64
	for k := 0; k < 4; k++ {
		if totalAlerts[k] > 0 {
			out[k] = float64(totalAlerts[k]-totalBugs[k]) / float64(totalAlerts[k])
		}
	}
	return out
}
