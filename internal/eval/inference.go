// Package eval is the experiment harness: it reruns every table and figure
// of the paper's evaluation section against the synthetic corpus, scoring
// inference rankings and taint alerts against the generators' ground-truth
// manifests.
package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"fits/internal/infer"
	"fits/internal/pool"
	"fits/internal/synth"
)

// InferenceResult is the inference outcome for one firmware sample.
type InferenceResult struct {
	Manifest synth.Manifest
	Rankings []*infer.Ranking
	// ITSRank is the 1-based rank of the first true ITS across the
	// sample's targets; 0 when no true ITS was ranked (or none exists).
	ITSRank int
	// LoadErr records pre-processing failure.
	LoadErr error
	Elapsed time.Duration
}

// TopN reports whether a true ITS appears within the first n ranked
// functions.
func (r *InferenceResult) TopN(n int) bool {
	return r.ITSRank > 0 && r.ITSRank <= n
}

// itsRank finds the best rank of any manifest ITS across rankings.
func itsRank(man *synth.Manifest, rankings []*infer.Ranking) int {
	truth := map[string]map[uint32]bool{}
	for _, its := range man.ITS {
		if truth[its.Binary] == nil {
			truth[its.Binary] = map[uint32]bool{}
		}
		truth[its.Binary][its.Entry] = true
	}
	best := 0
	for _, r := range rankings {
		entries := truth[r.Binary]
		if entries == nil {
			continue
		}
		for i, rr := range r.Ranked {
			if entries[rr.Entry] {
				if best == 0 || i+1 < best {
					best = i + 1
				}
				break
			}
		}
	}
	return best
}

// RunInference loads and infers one sample under a configuration.
func RunInference(s *synth.Sample, cfg infer.Config) InferenceResult {
	start := time.Now()
	out := InferenceResult{Manifest: s.Manifest}
	res, err := loadCached(s.Packed, cfg.Sched)
	if err != nil {
		out.LoadErr = err
		out.Elapsed = time.Since(start)
		return out
	}
	out.Rankings = infer.InferAll(res, cached(cfg))
	out.ITSRank = itsRank(&s.Manifest, out.Rankings)
	out.Elapsed = time.Since(start)
	return out
}

// RunInferenceCorpus evaluates the whole corpus under a configuration.
// Samples are batched onto one corpus-level scheduler (cfg.Sched, or a fresh
// one sized from cfg.Parallelism): sample-level and per-function fan-outs
// draw from a single worker budget, so a sweep never oversubscribes the
// machine by multiplying the two. Results are positionally identical to the
// sequential loop at every worker count; only the per-sample Elapsed — wall
// time under concurrency — differs.
func RunInferenceCorpus(samples []*synth.Sample, cfg infer.Config) []InferenceResult {
	if cfg.Sched == nil {
		cfg.Sched = pool.NewScheduler(cfg.Parallelism)
	}
	out := make([]InferenceResult, len(samples))
	//fitslint:ignore ctxflow experiment harness entry point; sweeps run to completion
	ctx := context.Background()
	_ = cfg.Sched.ForEach(ctx, len(samples), func(i int) error {
		out[i] = RunInference(samples[i], cfg)
		return nil
	})
	return out
}

// PrecisionRow is one row of Table 3: per dataset half and vendor.
type PrecisionRow struct {
	Dataset string // "Karonte" or "Latest"
	Vendor  string
	Series  string
	N       int
	Top1    float64
	Top2    float64
	Top3    float64
	AvgTime time.Duration
}

// Table3 aggregates inference results into the paper's Table 3 rows plus a
// final average row.
func Table3(results []InferenceResult) []PrecisionRow {
	type key struct {
		dataset string
		vendor  string
	}
	groups := map[key][]InferenceResult{}
	series := map[key]map[string]bool{}
	var order []key
	for _, r := range results {
		ds := "Karonte"
		if r.Manifest.Latest {
			ds = "Latest"
		}
		k := key{dataset: ds, vendor: r.Manifest.Vendor}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
			series[k] = map[string]bool{}
		}
		groups[k] = append(groups[k], r)
		series[k][r.Manifest.Series] = true
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].dataset != order[j].dataset {
			return order[i].dataset < order[j].dataset
		}
		return order[i].vendor < order[j].vendor
	})

	var rows []PrecisionRow
	var totN int
	var tot1, tot2, tot3 float64
	var totTime time.Duration
	for _, k := range order {
		rs := groups[k]
		row := PrecisionRow{Dataset: k.dataset, Vendor: k.vendor, N: len(rs)}
		var names []string
		for s := range series[k] {
			names = append(names, s)
		}
		sort.Strings(names)
		row.Series = strings.Join(names, "/")
		var t1, t2, t3 int
		var dur time.Duration
		for _, r := range rs {
			if r.TopN(1) {
				t1++
			}
			if r.TopN(2) {
				t2++
			}
			if r.TopN(3) {
				t3++
			}
			dur += r.Elapsed
		}
		n := float64(len(rs))
		row.Top1 = float64(t1) / n
		row.Top2 = float64(t2) / n
		row.Top3 = float64(t3) / n
		row.AvgTime = dur / time.Duration(len(rs))
		rows = append(rows, row)
		totN += len(rs)
		tot1 += float64(t1)
		tot2 += float64(t2)
		tot3 += float64(t3)
		totTime += dur
	}
	if totN > 0 {
		rows = append(rows, PrecisionRow{
			Dataset: "Average", Vendor: "-", Series: "-", N: totN,
			Top1:    tot1 / float64(totN),
			Top2:    tot2 / float64(totN),
			Top3:    tot3 / float64(totN),
			AvgTime: totTime / time.Duration(totN),
		})
	}
	return rows
}

// FormatTable3 renders rows in the paper's layout.
func FormatTable3(rows []PrecisionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %-16s %4s %6s %6s %6s %10s\n",
		"Dataset", "Vendor", "Series", "#FW", "Top-1", "Top-2", "Top-3", "AvgTime")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8s %-16s %4d %5.0f%% %5.0f%% %5.0f%% %10s\n",
			r.Dataset, r.Vendor, r.Series, r.N,
			100*r.Top1, 100*r.Top2, 100*r.Top3, r.AvgTime.Round(time.Millisecond))
	}
	return b.String()
}

// OverallPrecision returns the corpus-wide top-1/2/3 rates.
func OverallPrecision(results []InferenceResult) (top1, top2, top3 float64) {
	if len(results) == 0 {
		return
	}
	n := float64(len(results))
	for _, r := range results {
		if r.TopN(1) {
			top1++
		}
		if r.TopN(2) {
			top2++
		}
		if r.TopN(3) {
			top3++
		}
	}
	return top1 / n, top2 / n, top3 / n
}
