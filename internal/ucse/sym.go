package ucse

// sym.go exposes the symbolic-evaluation core to the precision passes
// (internal/alias, internal/pathcheck). Where the path-exploring Engine
// concretizes every load the binary image can answer, SymState is stricter:
// only read-only sections (text, rodata) are concretized, because writable
// initial bytes need not still hold when the analyzed path runs. Loads from
// writable memory instead return a per-address memoized unknown, so two
// reads of the same concrete location share one identity until something
// may have clobbered memory — exactly the property an interval solver over
// branch conditions needs to stay sound.

import (
	"fmt"

	"fits/internal/binimg"
	"fits/internal/ir"
	"fits/internal/isa"
)

// SAlloc is the return value of a heap-allocation call, identified by its
// call-site address. Address expressions built from it classify as that
// heap object in the alias pass.
type SAlloc struct{ Site uint32 }

func (SAlloc) isSVal() {}

// The synthetic stack window SymState hands to SP, exported so consumers
// can classify addresses that fall inside it as stack slots.
const (
	FakeStackLo = fakeStackBase
	FakeStackHi = fakeStackBase + fakeStackSize
	FakeSP      = fakeStackBase + fakeStackSize/2
)

// Simplify builds a binop value, folding constant operands and additive
// identities the way the path engine does.
func Simplify(op ir.BinOp, l, r SVal) SVal { return simplify(op, l, r) }

// SplitAddr decomposes an address expression into its concrete component
// and reports whether a symbolic residue remains.
func SplitAddr(v SVal) (base uint32, hasSym bool) { return splitAddr(v) }

// SymState is a single-path symbolic machine state over the IR, owned by
// one analysis of one function.
type SymState struct {
	bin   *binimg.Binary
	Regs  [isa.NumRegs]SVal
	temps map[ir.Temp]SVal
	// mem tracks concrete-address stores made on this path; memUnknown
	// memoizes the unknown produced for each concrete writable address
	// read before any tracked store.
	mem        map[uint32]SVal
	memUnknown map[uint32]SVal
	nextID     int
}

// NewSymState returns a state at function entry: every register unknown
// except SP, which points into the synthetic stack window.
func NewSymState(bin *binimg.Binary) *SymState {
	s := &SymState{
		bin:        bin,
		temps:      map[ir.Temp]SVal{},
		mem:        map[uint32]SVal{},
		memUnknown: map[uint32]SVal{},
	}
	for r := 0; r < isa.NumRegs; r++ {
		s.Regs[r] = s.Fresh()
	}
	s.Regs[isa.SP] = SConst{V: FakeSP}
	return s
}

// Fresh mints an unknown with a new identity.
func (s *SymState) Fresh() SVal {
	s.nextID++
	return SUnknown{ID: s.nextID}
}

// Eval computes an IR expression in the current state.
func (s *SymState) Eval(x ir.Expr) SVal {
	switch x := x.(type) {
	case *ir.Const:
		return SConst{V: uint32(x.V)}
	case *ir.RdTmp:
		if v, ok := s.temps[x.T]; ok {
			return v
		}
		return s.Fresh()
	case *ir.Get:
		if v := s.Regs[x.R]; v != nil {
			return v
		}
		return s.Fresh()
	case *ir.Binop:
		return simplify(x.Op, s.Eval(x.L), s.Eval(x.R))
	case *ir.Load:
		addr := s.Eval(x.Addr)
		if c, ok := addr.(SConst); ok {
			if v, ok := s.mem[c.V]; ok {
				return v
			}
			// Only read-only image bytes are trusted; writable sections
			// may have changed since load time.
			if sec := s.bin.SectionOf(c.V); sec == "text" || sec == "rodata" {
				if x.Size == 1 {
					if b, ok := s.bin.ByteAt(c.V); ok {
						return SConst{V: uint32(b)}
					}
				} else if w, ok := s.bin.WordAt(c.V); ok {
					return SConst{V: w}
				}
			}
			if v, ok := s.memUnknown[c.V]; ok {
				return v
			}
			v := s.Fresh()
			s.memUnknown[c.V] = v
			return v
		}
		return SLoad{Addr: addr}
	}
	return s.Fresh()
}

// Step applies one statement's state effects and reports whether the
// statement may have clobbered memory the state cannot track: a call (the
// callee can write through any pointer), a syscall, or a store through a
// symbolic address. Control statements (Exit/Jump/Ret) have no state
// effect here — callers handle control flow themselves.
func (s *SymState) Step(st ir.Stmt) (clobbered bool) {
	switch st := st.(type) {
	case *ir.WrTmp:
		s.temps[st.T] = s.Eval(st.E)
	case *ir.Put:
		s.Regs[st.R] = s.Eval(st.E)
	case *ir.Store:
		addr := s.Eval(st.Addr)
		val := s.Eval(st.Val)
		if c, ok := addr.(SConst); ok {
			s.mem[c.V] = val
			return false
		}
		return true
	case *ir.Call:
		for r := isa.Reg(0); r < 4; r++ {
			s.Regs[r] = s.Fresh()
		}
		s.Regs[isa.LR] = s.Fresh()
		return true
	case *ir.Sys:
		s.Regs[isa.R0] = s.Fresh()
		return true
	}
	return false
}

// HavocMemory forgets every tracked and memoized memory value; subsequent
// loads of the same addresses see fresh unknowns.
func (s *SymState) HavocMemory() {
	clear(s.mem)
	clear(s.memUnknown)
}

// HavocAll forgets registers and memory both, keeping only SP. Used when
// control flow re-enters a tracked region from an unmodeled edge.
func (s *SymState) HavocAll() {
	for r := 0; r < isa.NumRegs; r++ {
		s.Regs[r] = s.Fresh()
	}
	s.Regs[isa.SP] = SConst{V: FakeSP}
	s.HavocMemory()
}

// Render formats a symbolic value deterministically, for solver variable
// identity and refutation diagnostics.
func Render(v SVal) string {
	switch v := v.(type) {
	case SConst:
		return fmt.Sprintf("0x%x", v.V)
	case SUnknown:
		return fmt.Sprintf("u%d", v.ID)
	case SAlloc:
		return fmt.Sprintf("alloc@0x%x", v.Site)
	case SLoad:
		return "mem[" + Render(v.Addr) + "]"
	case SBin:
		return "(" + Render(v.L) + " " + v.Op.String() + " " + Render(v.R) + ")"
	}
	return "?"
}

// HasLoad reports whether v contains a symbolic-address load. Such values
// have no stable identity across memory clobbers, so the path solver must
// not constrain them.
func HasLoad(v SVal) bool {
	switch v := v.(type) {
	case SLoad:
		return true
	case SBin:
		return HasLoad(v.L) || HasLoad(v.R)
	}
	return false
}
