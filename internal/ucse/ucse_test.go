package ucse

import (
	"testing"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/ir"
	"fits/internal/isa"
	"fits/internal/minic"
)

func buildModel(t *testing.T, p *minic.Program, resolve bool) (*binimg.Binary, *cfg.Model) {
	t.Helper()
	bin, err := minic.Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := cfg.Options{}
	if resolve {
		opts.Resolver = Resolver()
	}
	m, err := cfg.Build(bin, opts)
	if err != nil {
		t.Fatal(err)
	}
	return bin, m
}

func funcByName(t *testing.T, bin *binimg.Binary, m *cfg.Model, name string) *cfg.Function {
	t.Helper()
	for _, s := range bin.Funcs {
		if s.Name == name {
			if f, ok := m.FuncAt(s.Addr); ok {
				return f
			}
		}
	}
	t.Fatalf("function %q not found", name)
	return nil
}

// dispatchProgram builds a web-server-style dispatcher: handlers reached only
// through a data-section pointer table indexed by an unconstrained value.
func dispatchProgram(handlers int) *minic.Program {
	p := &minic.Program{Name: "t"}
	tbl := &minic.Global{Name: "handlers", Size: 4 * handlers, Init: make([]byte, 4*handlers)}
	for i := 0; i < handlers; i++ {
		name := string(rune('a'+i)) + "_handler"
		p.Funcs = append(p.Funcs, &minic.Func{
			Name: name, NParams: 1,
			Body: []minic.Stmt{minic.Return{E: minic.Add(minic.Var("p0"), minic.Int(int32(i)))}},
		})
		tbl.Ptrs = append(tbl.Ptrs, minic.PtrInit{Off: 4 * i, FuncName: name})
	}
	p.Globals = append(p.Globals, tbl)
	p.Funcs = append(p.Funcs, &minic.Func{
		Name: "dispatch", NParams: 2,
		Body: []minic.Stmt{
			minic.Return{E: minic.CallInd{Table: "handlers", Index: minic.Var("p0"),
				Args: []minic.Expr{minic.Var("p1")}}},
		},
	})
	return p
}

func TestTableResolution(t *testing.T) {
	bin, m := buildModel(t, dispatchProgram(3), false)
	disp := funcByName(t, bin, m, "dispatch")
	rs := New(bin, disp).Explore()
	if len(rs) != 1 {
		t.Fatalf("resolutions = %d, want 1", len(rs))
	}
	if len(rs[0].Targets) != 3 {
		t.Errorf("targets = %d, want 3 (%v)", len(rs[0].Targets), rs[0].Targets)
	}
	if rs[0].TableBase == 0 {
		t.Error("table base not identified")
	}
	// Every target must be a known handler entry.
	for _, target := range rs[0].Targets {
		f, ok := m.FuncAt(target)
		if !ok {
			t.Errorf("target %#x is not a discovered function", target)
			continue
		}
		if f.Params != 1 {
			t.Errorf("handler %s params = %d", f.Name, f.Params)
		}
	}
}

func TestResolverCompletesCallGraph(t *testing.T) {
	bin, m := buildModel(t, dispatchProgram(4), true)
	disp := funcByName(t, bin, m, "dispatch")
	callees := m.Callees(disp)
	if len(callees) != 4 {
		t.Errorf("dispatch callees = %d, want 4", len(callees))
	}
	// Reverse edges must exist for each handler.
	for _, c := range callees {
		if len(m.Callers[c]) == 0 {
			t.Errorf("no callers recorded for %#x", c)
		}
	}
}

func TestConstantIndexResolvesSingleTarget(t *testing.T) {
	p := dispatchProgram(3)
	// Replace dispatch with a constant-index call.
	for _, f := range p.Funcs {
		if f.Name == "dispatch" {
			f.Body = []minic.Stmt{
				minic.Return{E: minic.CallInd{Table: "handlers", Index: minic.Int(1),
					Args: []minic.Expr{minic.Int(5)}}},
			}
		}
	}
	bin, m := buildModel(t, p, false)
	disp := funcByName(t, bin, m, "dispatch")
	rs := New(bin, disp).Explore()
	if len(rs) != 1 || len(rs[0].Targets) != 1 {
		t.Fatalf("resolutions = %+v", rs)
	}
	f, ok := m.FuncAt(rs[0].Targets[0])
	if !ok || f.Name != "b_handler" {
		t.Errorf("resolved to %v", f)
	}
}

func TestRuntimeStoredPointerSameFunction(t *testing.T) {
	// A function stores a function pointer into a global slot and then
	// calls through it: the path-local memory must carry the value.
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "slot", Size: 4}},
		Funcs: []*minic.Func{
			{Name: "target", NParams: 1, Body: []minic.Stmt{minic.Return{E: minic.Var("p0")}}},
			{Name: "caller", Body: []minic.Stmt{
				minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("slot"), Val: minic.FuncAddr("target")},
				minic.Return{E: minic.CallInd{Table: "slot", Index: minic.Int(0),
					Args: []minic.Expr{minic.Int(1)}}},
			}},
		},
	}
	bin, m := buildModel(t, p, false)
	caller := funcByName(t, bin, m, "caller")
	rs := New(bin, caller).Explore()
	if len(rs) != 1 || len(rs[0].Targets) != 1 {
		t.Fatalf("resolutions = %+v", rs)
	}
	f, _ := m.FuncAt(rs[0].Targets[0])
	if f == nil || f.Name != "target" {
		t.Errorf("resolved to %v", f)
	}
}

func TestTableScanStopsAtNonPointer(t *testing.T) {
	// A 2-entry table followed by non-pointer data must yield 2 targets.
	p := dispatchProgram(2)
	p.Globals = append(p.Globals, &minic.Global{
		Name: "after", Size: 8, Init: []byte{1, 2, 3, 4, 5, 6, 7, 8},
	})
	bin, m := buildModel(t, p, false)
	disp := funcByName(t, bin, m, "dispatch")
	rs := New(bin, disp).Explore()
	if len(rs) != 1 || len(rs[0].Targets) != 2 {
		t.Fatalf("targets = %+v", rs)
	}
}

func TestNoIndirectCallsNoResolutions(t *testing.T) {
	p := &minic.Program{Name: "t", Funcs: []*minic.Func{{
		Name: "main", Body: []minic.Stmt{
			minic.ExprStmt{E: minic.Call{Name: "recv", Args: []minic.Expr{minic.Int(0)}}},
			minic.Return{E: minic.Int(0)},
		},
	}}}
	bin, m := buildModel(t, p, false)
	main := funcByName(t, bin, m, "main")
	if rs := New(bin, main).Explore(); len(rs) != 0 {
		t.Errorf("unexpected resolutions %+v", rs)
	}
}

func TestLoopsTerminate(t *testing.T) {
	// A dispatcher inside an unbounded loop must still terminate under the
	// visit bound and resolve targets.
	p := dispatchProgram(2)
	for _, f := range p.Funcs {
		if f.Name == "dispatch" {
			f.Body = []minic.Stmt{
				minic.Let{Name: "i", E: minic.Int(0)},
				minic.While{Cond: minic.Cond{Op: minic.Ge, L: minic.Var("i"), R: minic.Int(0)},
					Body: []minic.Stmt{
						minic.ExprStmt{E: minic.CallInd{Table: "handlers", Index: minic.Var("p0"),
							Args: []minic.Expr{minic.Var("i")}}},
						minic.Assign{Name: "i", E: minic.Add(minic.Var("i"), minic.Int(1))},
					}},
				minic.Return{E: minic.Int(0)},
			}
		}
	}
	bin, m := buildModel(t, p, false)
	disp := funcByName(t, bin, m, "dispatch")
	rs := New(bin, disp).Explore()
	if len(rs) != 1 || len(rs[0].Targets) != 2 {
		t.Fatalf("targets = %+v", rs)
	}
}

func TestSimplifyIdentities(t *testing.T) {
	u := SUnknown{ID: 1}
	if v := simplify(ir.Add, u, SConst{V: 0}); v != SVal(u) {
		t.Errorf("x+0 = %v", v)
	}
	if v := simplify(ir.Add, SConst{V: 0}, u); v != SVal(u) {
		t.Errorf("0+x = %v", v)
	}
	if v := simplify(ir.Add, SConst{V: 2}, SConst{V: 3}); v != (SConst{V: 5}) {
		t.Errorf("2+3 = %v", v)
	}
	if v := simplify(ir.CmpLT, SConst{V: 0xffffffff}, SConst{V: 1}); v != (SConst{V: 1}) {
		t.Errorf("signed -1<1 = %v", v)
	}
	if v := simplify(ir.Div, SConst{V: 5}, SConst{V: 0}); v != (SConst{V: 0}) {
		t.Errorf("div0 = %v", v)
	}
	if _, ok := simplify(ir.Mul, u, SConst{V: 4}).(SBin); !ok {
		t.Error("symbolic mul should stay symbolic")
	}
}

func TestSplitAddr(t *testing.T) {
	u := SUnknown{ID: 9}
	base, sym := splitAddr(SConst{V: 0x3000})
	if base != 0x3000 || sym {
		t.Errorf("const split = %#x, %v", base, sym)
	}
	base, sym = splitAddr(SBin{Op: ir.Add, L: SConst{V: 0x3000}, R: SBin{Op: ir.Shl, L: u, R: SConst{V: 2}}})
	if base != 0x3000 || !sym {
		t.Errorf("table split = %#x, %v", base, sym)
	}
	_, sym = splitAddr(u)
	if !sym {
		t.Error("unknown must be symbolic")
	}
}

func TestJumpTableResolution(t *testing.T) {
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "out", Size: 16}},
		Funcs: []*minic.Func{{
			Name: "router", NParams: 1,
			Body: []minic.Stmt{
				minic.Switch{
					E: minic.Var("p0"),
					Cases: [][]minic.Stmt{
						{minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("out"), Val: minic.Int(1)}},
						{minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("out"), Val: minic.Int(2)}},
					},
					Default: []minic.Stmt{minic.Return{E: minic.Int(9)}},
				},
				minic.Return{E: minic.Int(0)},
			},
		}},
	}
	bin, err := minic.Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Full pipeline: build with both resolvers and check the CFG grew the
	// case blocks.
	m, err := cfg.Build(bin, cfg.Options{Resolver: Resolver(), JumpResolver: JumpResolver()})
	if err != nil {
		t.Fatal(err)
	}
	router := funcByName(t, bin, m, "router")
	if len(router.DynJumps) != 1 {
		t.Fatalf("dyn jumps = %d", len(router.DynJumps))
	}
	ts := router.JumpTables[router.DynJumps[0]]
	if len(ts) != 2 {
		t.Fatalf("resolved targets = %v, want 2", ts)
	}
	for _, target := range ts {
		if _, ok := router.Blocks[target]; !ok {
			t.Errorf("case target %#x not a block of router", target)
		}
	}
}
