// Package ucse implements under-constrained symbolic execution over the IR.
//
// Following Ramos & Engler's UC-KLEE idea as used by the paper, execution
// starts at an arbitrary function with unconstrained ("unknown") parameters
// and memory, concretizing only what the binary itself pins down: section
// contents, the stack discipline, and constants. Its main client is indirect
// call resolution — recognizing loads of the form table[base + i*4] and
// enumerating the code pointers stored in the table — which completes the
// CFG/CG that all later stages consume.
package ucse

import (
	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/ir"
	"fits/internal/isa"
)

// SVal is a symbolic value.
type SVal interface{ isSVal() }

// SConst is a known 32-bit value.
type SConst struct{ V uint32 }

// SUnknown is an under-constrained value with a fresh identity.
type SUnknown struct{ ID int }

// SBin combines symbolic values; constant folding happens at construction.
type SBin struct {
	Op   ir.BinOp
	L, R SVal
}

// SLoad is the value loaded from a (possibly symbolic) address.
type SLoad struct{ Addr SVal }

func (SConst) isSVal()   {}
func (SUnknown) isSVal() {}
func (SBin) isSVal()     {}
func (SLoad) isSVal()    {}

// Limits bounding path exploration.
const (
	maxBlockVisits  = 2
	maxSteps        = 4096
	maxPaths        = 64
	maxTableEntries = 256
	fakeStackBase   = 0xfe000000
	fakeStackSize   = 1 << 16
)

// Engine executes one function under-constrained.
type Engine struct {
	bin    *binimg.Binary
	fn     *cfg.Function
	nextID int
	found  map[uint32]*Resolution // call instruction addr -> resolution
	jumps  map[uint32][]uint32    // computed-jump addr -> scanned targets
}

// New prepares an engine for one function of a binary.
func New(bin *binimg.Binary, fn *cfg.Function) *Engine {
	return &Engine{bin: bin, fn: fn}
}

func (e *Engine) fresh() SVal {
	e.nextID++
	return SUnknown{ID: e.nextID}
}

// state is one execution path's machine state.
type state struct {
	regs   [isa.NumRegs]SVal
	temps  map[ir.Temp]SVal
	mem    map[uint32]SVal // concrete-address writes on this path
	visits map[uint32]int
	steps  int
}

func (s *state) clone() *state {
	ns := &state{regs: s.regs, temps: map[ir.Temp]SVal{}, mem: map[uint32]SVal{}, visits: map[uint32]int{}, steps: s.steps}
	for k, v := range s.mem {
		ns.mem[k] = v
	}
	for k, v := range s.visits {
		ns.visits[k] = v
	}
	// temps are block-scoped in practice; copying keeps paths independent.
	for k, v := range s.temps {
		ns.temps[k] = v
	}
	return ns
}

// simplify folds constant binops.
func simplify(op ir.BinOp, l, r SVal) SVal {
	lc, lok := l.(SConst)
	rc, rok := r.(SConst)
	if lok && rok {
		var v uint32
		switch op {
		case ir.Add:
			v = lc.V + rc.V
		case ir.Sub:
			v = lc.V - rc.V
		case ir.Mul:
			v = lc.V * rc.V
		case ir.Div:
			if rc.V == 0 {
				v = 0
			} else {
				v = uint32(int32(lc.V) / int32(rc.V))
			}
		case ir.And:
			v = lc.V & rc.V
		case ir.Or:
			v = lc.V | rc.V
		case ir.Xor:
			v = lc.V ^ rc.V
		case ir.Shl:
			v = lc.V << (rc.V & 31)
		case ir.Shr:
			v = lc.V >> (rc.V & 31)
		case ir.CmpEQ:
			if lc.V == rc.V {
				v = 1
			}
		case ir.CmpNE:
			if lc.V != rc.V {
				v = 1
			}
		case ir.CmpLT:
			if int32(lc.V) < int32(rc.V) {
				v = 1
			}
		case ir.CmpGE:
			if int32(lc.V) >= int32(rc.V) {
				v = 1
			}
		}
		return SConst{V: v}
	}
	// x + 0, x - 0 identities keep address expressions canonical.
	if (op == ir.Add || op == ir.Sub) && rok && rc.V == 0 {
		return l
	}
	if op == ir.Add && lok && lc.V == 0 {
		return r
	}
	return SBin{Op: op, L: l, R: r}
}

// eval computes an IR expression in a state.
func (e *Engine) eval(s *state, x ir.Expr) SVal {
	switch x := x.(type) {
	case *ir.Const:
		return SConst{V: uint32(x.V)}
	case *ir.RdTmp:
		if v, ok := s.temps[x.T]; ok {
			return v
		}
		return e.fresh()
	case *ir.Get:
		if v := s.regs[x.R]; v != nil {
			return v
		}
		return e.fresh()
	case *ir.Binop:
		return simplify(x.Op, e.eval(s, x.L), e.eval(s, x.R))
	case *ir.Load:
		addr := e.eval(s, x.Addr)
		if c, ok := addr.(SConst); ok {
			if v, ok := s.mem[c.V]; ok {
				return v
			}
			if x.Size == 1 {
				if b, ok := e.bin.ByteAt(c.V); ok {
					return SConst{V: uint32(b)}
				}
			} else if w, ok := e.bin.WordAt(c.V); ok {
				return SConst{V: w}
			}
			// Uninitialized stack or bss reads are unknown.
			return e.fresh()
		}
		return SLoad{Addr: addr}
	}
	return e.fresh()
}

// Resolution is the outcome of indirect-target analysis for one call site.
type Resolution struct {
	Site    cfg.CallSite
	Targets []uint32
	// TableBase is the resolved dispatch table address, when one was found.
	TableBase uint32
}

// Explore runs bounded under-constrained execution over the function and
// returns a resolution for every indirect call site it reaches.
func (e *Engine) Explore() []Resolution {
	init := &state{temps: map[ir.Temp]SVal{}, mem: map[uint32]SVal{}, visits: map[uint32]int{}}
	for r := 0; r < isa.NumRegs; r++ {
		init.regs[r] = e.fresh()
	}
	init.regs[isa.SP] = SConst{V: fakeStackBase + fakeStackSize/2}

	e.found = map[uint32]*Resolution{}
	e.jumps = map[uint32][]uint32{}
	paths := 0
	var walk func(s *state, blockAddr uint32)
	walk = func(s *state, blockAddr uint32) {
		if paths >= maxPaths {
			return
		}
		for {
			blk, ok := e.fn.Blocks[blockAddr]
			if !ok {
				return
			}
			s.visits[blockAddr]++
			if s.visits[blockAddr] > maxBlockVisits {
				return
			}
			var branchTargets []uint32
			fellThrough := true
			for _, irb := range blk.IR {
				if s.steps++; s.steps > maxSteps {
					return
				}
				for _, st := range irb.Stmts {
					switch st := st.(type) {
					case *ir.WrTmp:
						s.temps[st.T] = e.eval(s, st.E)
					case *ir.Put:
						s.regs[st.R] = e.eval(s, st.E)
					case *ir.Store:
						addr := e.eval(s, st.Addr)
						val := e.eval(s, st.Val)
						if c, ok := addr.(SConst); ok {
							s.mem[c.V] = val
						}
					case *ir.Exit:
						// Under-constrained: both outcomes are feasible
						// unless the condition folded to a constant.
						switch c := e.eval(s, st.Cond).(type) {
						case SConst:
							if c.V != 0 {
								branchTargets = append(branchTargets, st.Target)
								fellThrough = false
							}
						default:
							branchTargets = append(branchTargets, st.Target)
						}
					case *ir.Jump:
						if st.Dyn == nil {
							branchTargets = append(branchTargets, st.Target)
						} else {
							e.observeJump(s, irb.Addr, st)
						}
						fellThrough = false
					case *ir.Call:
						e.observeCall(s, irb.Addr, st)
						// Havoc caller-saved registers after the call.
						for r := isa.Reg(0); r < 4; r++ {
							s.regs[r] = e.fresh()
						}
						s.regs[isa.LR] = e.fresh()
					case *ir.Ret:
						fellThrough = false
					case *ir.Sys:
						s.regs[isa.R0] = e.fresh()
					}
				}
				if !fellThrough && len(branchTargets) == 0 {
					// Terminal (ret or dynamic jump): path ends.
					break
				}
			}
			if fellThrough {
				// Conditional (or no) exits: fork on taken edges, continue
				// on the fall-through edge.
				for _, t := range branchTargets {
					paths++
					walk(s.clone(), t)
				}
				next := blk.End()
				if _, ok := e.fn.Blocks[next]; ok {
					blockAddr = next
					continue
				}
				return
			}
			switch len(branchTargets) {
			case 0:
				return
			case 1:
				blockAddr = branchTargets[0]
				continue
			default:
				for _, t := range branchTargets {
					paths++
					walk(s.clone(), t)
				}
				return
			}
		}
	}
	walk(init, e.fn.Entry)

	out := make([]Resolution, 0, len(e.found))
	for _, cs := range e.fn.Calls {
		if res, ok := e.found[cs.Addr]; ok {
			res.Site = cs
			out = append(out, *res)
		}
	}
	return out
}

func mergeTargets(a, b []uint32) []uint32 {
	seen := map[uint32]bool{}
	for _, t := range a {
		seen[t] = true
	}
	for _, t := range b {
		if !seen[t] {
			seen[t] = true
			a = append(a, t)
		}
	}
	return a
}

// JumpTargets returns the computed-jump resolutions gathered by Explore,
// keyed by jump instruction address.
func (e *Engine) JumpTargets() map[uint32][]uint32 {
	return e.jumps
}

// observeJump resolves a computed jump's table, the switch-dispatch pattern
// Load(table + index*4).
func (e *Engine) observeJump(s *state, addr uint32, j *ir.Jump) {
	target := e.eval(s, j.Dyn)
	var ts []uint32
	switch t := target.(type) {
	case SConst:
		if e.isCodePtr(t.V) {
			ts = []uint32{t.V}
		}
	case SLoad:
		base, hasSym := splitAddr(t.Addr)
		if base != 0 {
			if hasSym {
				ts = e.scanTable(base)
			} else if w, ok := e.bin.WordAt(base); ok && e.isCodePtr(w) {
				ts = []uint32{w}
			}
		}
	}
	if len(ts) > 0 {
		e.jumps[addr] = mergeTargets(e.jumps[addr], ts)
	}
}

// observeCall inspects indirect call targets at a call statement.
func (e *Engine) observeCall(s *state, addr uint32, c *ir.Call) {
	if c.Kind != ir.CallIndirect {
		return
	}
	target := e.eval(s, c.Dyn)
	res := &Resolution{}
	switch t := target.(type) {
	case SConst:
		if e.isCodePtr(t.V) {
			res.Targets = []uint32{t.V}
		}
	case SLoad:
		base, hasSym := splitAddr(t.Addr)
		if base != 0 {
			res.TableBase = base
			if hasSym {
				res.Targets = e.scanTable(base)
			} else if w, ok := e.bin.WordAt(base); ok && e.isCodePtr(w) {
				res.Targets = []uint32{w}
			}
		}
	}
	if len(res.Targets) > 0 {
		if prev, ok := e.found[addr]; ok {
			prev.Targets = mergeTargets(prev.Targets, res.Targets)
			if prev.TableBase == 0 {
				prev.TableBase = res.TableBase
			}
		} else {
			e.found[addr] = res
		}
	}
}

// splitAddr decomposes an address expression into its concrete component and
// reports whether a symbolic residue remains (the table-index pattern).
func splitAddr(v SVal) (base uint32, hasSym bool) {
	switch v := v.(type) {
	case SConst:
		return v.V, false
	case SBin:
		if v.Op == ir.Add {
			lb, ls := splitAddr(v.L)
			rb, rs := splitAddr(v.R)
			return lb + rb, ls || rs
		}
		return 0, true
	default:
		return 0, true
	}
}

// isCodePtr reports whether v is an instruction-aligned text address.
func (e *Engine) isCodePtr(v uint32) bool {
	return e.bin.Text.Contains(v) && (v-e.bin.Text.Addr)%isa.Width == 0
}

// scanTable enumerates consecutive code pointers stored at base, the
// over-approximate jump-table recovery used when the index is unconstrained.
func (e *Engine) scanTable(base uint32) []uint32 {
	var out []uint32
	for i := 0; i < maxTableEntries; i++ {
		addr := base + uint32(i*isa.WordSize)
		w, ok := e.bin.WordAt(addr)
		if !ok || !e.isCodePtr(w) {
			break
		}
		out = append(out, w)
	}
	return out
}
