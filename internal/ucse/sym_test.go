package ucse

import (
	"testing"

	"fits/internal/ir"
	"fits/internal/isa"
	"fits/internal/minic"
)

func symBin(t *testing.T) *SymState {
	t.Helper()
	bin, err := minic.Link(&minic.Program{
		Name:  "t",
		Funcs: []*minic.Func{{Name: "main", Body: []minic.Stmt{minic.Return{E: minic.Int(0)}}}},
	}, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewSymState(bin)
}

func TestSymStateTracksConcreteStores(t *testing.T) {
	st := symBin(t)
	addr := &ir.Const{V: int64(FakeSP - 8)}
	if st.Step(&ir.Store{Addr: addr, Val: &ir.Const{V: 42}, Size: 4}) {
		t.Fatal("concrete store reported as clobbering")
	}
	got := st.Eval(&ir.Load{Addr: addr, Size: 4})
	if c, ok := got.(SConst); !ok || c.V != 42 {
		t.Fatalf("load after tracked store = %v, want SConst{42}", got)
	}
	st.HavocMemory()
	u1 := st.Eval(&ir.Load{Addr: addr, Size: 4})
	if _, ok := u1.(SUnknown); !ok {
		t.Fatalf("load after havoc = %v, want fresh unknown", u1)
	}
	// Repeated loads of one address share an identity until the next
	// clobber — the property the interval solver depends on.
	u2 := st.Eval(&ir.Load{Addr: addr, Size: 4})
	if u1 != u2 {
		t.Errorf("two loads of one address got distinct identities: %v vs %v", u1, u2)
	}
	st.HavocMemory()
	if u3 := st.Eval(&ir.Load{Addr: addr, Size: 4}); u3 == u1 {
		t.Error("identity survived a memory havoc")
	}
}

func TestSymStateStepClobberReporting(t *testing.T) {
	st := symBin(t)
	if !st.Step(&ir.Call{}) {
		t.Error("call not reported as clobbering")
	}
	if !st.Step(&ir.Sys{}) {
		t.Error("syscall not reported as clobbering")
	}
	// A store through a symbolic address clobbers; the symbolic value here
	// is whatever an uninitialized register holds.
	if !st.Step(&ir.Store{Addr: &ir.Get{R: isa.R1}, Val: &ir.Const{V: 1}, Size: 4}) {
		t.Error("symbolic-address store not reported as clobbering")
	}
	if st.Step(&ir.WrTmp{T: 1, E: &ir.Const{V: 5}}) {
		t.Error("temp write reported as clobbering")
	}
}

func TestSymStateCallInvalidatesCallerSaved(t *testing.T) {
	st := symBin(t)
	st.Regs[isa.R0] = SConst{V: 7}
	st.Step(&ir.Call{})
	if _, ok := st.Regs[isa.R0].(SUnknown); !ok {
		t.Errorf("R0 after call = %v, want fresh unknown", st.Regs[isa.R0])
	}
}

func TestHavocAllKeepsSP(t *testing.T) {
	st := symBin(t)
	before := st.Regs[isa.R2]
	st.HavocAll()
	if sp, ok := st.Regs[isa.SP].(SConst); !ok || sp.V != FakeSP {
		t.Errorf("SP after HavocAll = %v, want FakeSP", st.Regs[isa.SP])
	}
	if st.Regs[isa.R2] == before {
		t.Error("register identity survived HavocAll")
	}
}

func TestRenderDeterministicAndDistinct(t *testing.T) {
	v := SBin{Op: ir.Add, L: SUnknown{ID: 1}, R: SConst{V: 4}}
	w := SBin{Op: ir.Add, L: SUnknown{ID: 1}, R: SConst{V: 4}}
	if Render(v) != Render(w) {
		t.Errorf("equal values render differently: %q vs %q", Render(v), Render(w))
	}
	if Render(SUnknown{ID: 1}) == Render(SUnknown{ID: 2}) {
		t.Error("distinct unknowns render identically")
	}
	if Render(SAlloc{Site: 0x100}) == Render(SAlloc{Site: 0x104}) {
		t.Error("distinct allocation sites render identically")
	}
}

func TestHasLoad(t *testing.T) {
	ld := SLoad{Addr: SUnknown{ID: 3}}
	if !HasLoad(ld) {
		t.Error("bare load not detected")
	}
	if !HasLoad(SBin{Op: ir.Add, L: SConst{V: 1}, R: ld}) {
		t.Error("nested load not detected")
	}
	if HasLoad(SBin{Op: ir.Add, L: SConst{V: 1}, R: SUnknown{ID: 9}}) {
		t.Error("load-free value flagged")
	}
}

func TestSimplifyExported(t *testing.T) {
	if got := Simplify(ir.Add, SConst{V: 2}, SConst{V: 3}); got != (SConst{V: 5}) {
		t.Errorf("2+3 = %v, want SConst{5}", got)
	}
	u := SUnknown{ID: 7}
	if got := Simplify(ir.Add, u, SConst{V: 0}); got != SVal(u) {
		t.Errorf("u+0 = %v, want u unchanged", got)
	}
}
