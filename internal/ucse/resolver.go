package ucse

import (
	"sync"

	"fits/internal/binimg"
	"fits/internal/cfg"
)

// Resolver caches are shared by every cfg.Build call made with the same
// resolver instance; the parallel loader builds several binary models at
// once, so the caches are mutex-guarded. Exploration itself runs outside the
// lock — two goroutines may race to explore the same function, but Explore
// is deterministic, so whichever result lands in the cache is identical.

// JumpResolver adapts the engine to the cfg package's jump-table resolution
// hook. The returned targets over-approximate (a table scan cannot know the
// bounds check's limit); cfg.Build clips them to the function's extent.
func JumpResolver() cfg.JumpTableResolver {
	type key struct {
		bin   string
		entry uint32
	}
	var mu sync.Mutex
	cache := map[key]map[uint32][]uint32{}
	return func(bin *binimg.Binary, f *cfg.Function, addr uint32) []uint32 {
		k := key{bin: bin.Name, entry: f.Entry}
		mu.Lock()
		jumps, ok := cache[k]
		mu.Unlock()
		if !ok {
			e := New(bin, f)
			e.Explore()
			jumps = e.JumpTargets()
			mu.Lock()
			cache[k] = jumps
			mu.Unlock()
		}
		return jumps[addr]
	}
}

// Resolver adapts the engine to the cfg package's indirect-call resolution
// hook. Results are cached per function entry since cfg.Build asks about
// every site of a function separately.
func Resolver() cfg.IndirectResolver {
	type key struct {
		bin   string
		entry uint32
	}
	var mu sync.Mutex
	cache := map[key][]Resolution{}
	return func(bin *binimg.Binary, f *cfg.Function, site cfg.CallSite) []uint32 {
		k := key{bin: bin.Name, entry: f.Entry}
		mu.Lock()
		rs, ok := cache[k]
		mu.Unlock()
		if !ok {
			rs = New(bin, f).Explore()
			mu.Lock()
			cache[k] = rs
			mu.Unlock()
		}
		for _, r := range rs {
			if r.Site.Addr == site.Addr {
				return r.Targets
			}
		}
		return nil
	}
}
