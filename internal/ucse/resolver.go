package ucse

import (
	"fits/internal/binimg"
	"fits/internal/cfg"
)

// JumpResolver adapts the engine to the cfg package's jump-table resolution
// hook. The returned targets over-approximate (a table scan cannot know the
// bounds check's limit); cfg.Build clips them to the function's extent.
func JumpResolver() cfg.JumpTableResolver {
	type key struct {
		bin   string
		entry uint32
	}
	cache := map[key]map[uint32][]uint32{}
	return func(bin *binimg.Binary, f *cfg.Function, addr uint32) []uint32 {
		k := key{bin: bin.Name, entry: f.Entry}
		jumps, ok := cache[k]
		if !ok {
			e := New(bin, f)
			e.Explore()
			jumps = e.JumpTargets()
			cache[k] = jumps
		}
		return jumps[addr]
	}
}

// Resolver adapts the engine to the cfg package's indirect-call resolution
// hook. Results are cached per function entry since cfg.Build asks about
// every site of a function separately.
func Resolver() cfg.IndirectResolver {
	type key struct {
		bin   string
		entry uint32
	}
	cache := map[key][]Resolution{}
	return func(bin *binimg.Binary, f *cfg.Function, site cfg.CallSite) []uint32 {
		k := key{bin: bin.Name, entry: f.Entry}
		rs, ok := cache[k]
		if !ok {
			rs = New(bin, f).Explore()
			cache[k] = rs
		}
		for _, r := range rs {
			if r.Site.Addr == site.Addr {
				return r.Targets
			}
		}
		return nil
	}
}
