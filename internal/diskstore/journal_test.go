package diskstore

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fits/internal/faultinj"
)

func openJournal(t *testing.T, path string, fp *faultinj.Set) (*Journal, []Record) {
	t.Helper()
	j, recs, err := OpenJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, recs := openJournal(t, path, nil)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		{Op: OpAccepted, ID: "j000001", Seq: 1, SHA: "aa", Size: 3, Spec: json.RawMessage(`{"scan":true}`), Key: "k1"},
		{Op: OpStarted, ID: "j000001"},
		{Op: OpFinished, ID: "j000001", State: "done"},
		{Op: OpAccepted, ID: "j000002", Seq: 2, Kind: "diff", SHA: "bb", SHA2: "cc", Key: "k2"},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	_, got := openJournal(t, path, nil)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Op != w.Op || g.ID != w.ID || g.Seq != w.Seq || g.Kind != w.Kind ||
			g.SHA != w.SHA || g.SHA2 != w.SHA2 || g.Key != w.Key || g.State != w.State {
			t.Fatalf("record %d: %+v, want %+v", i, g, w)
		}
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openJournal(t, path, nil)
	if err := j.Append(Record{Op: OpAccepted, ID: "j1"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	durable, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a frame of the next record.
	frame, err := EncodeRecord(Record{Op: OpAccepted, ID: "j2"})
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), durable...), frame[:len(frame)/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs := openJournal(t, path, nil)
	if len(recs) != 1 || recs[0].ID != "j1" {
		t.Fatalf("replay = %+v, want the one durable record", recs)
	}
	// The file was truncated back to the valid prefix, and appending
	// continues from there.
	if err := j2.Append(Record{Op: OpStarted, ID: "j1"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs = openJournal(t, path, nil)
	if len(recs) != 2 || recs[1].Op != OpStarted {
		t.Fatalf("post-truncate replay = %+v", recs)
	}
}

func TestJournalRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openJournal(t, path, nil)
	for i := 0; i < 10; i++ {
		if err := j.Append(Record{Op: OpAccepted, ID: fmt.Sprintf("j%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	keep := []Record{{Op: OpAccepted, ID: "j9", Seq: 9}}
	if err := j.Rewrite(keep); err != nil {
		t.Fatal(err)
	}
	// Appends continue against the compacted file.
	if err := j.Append(Record{Op: OpStarted, ID: "j9"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs := openJournal(t, path, nil)
	if len(recs) != 2 || recs[0].ID != "j9" || recs[1].Op != OpStarted {
		t.Fatalf("compacted replay = %+v", recs)
	}
}

func TestJournalAppendFailpointsKeepPrefixValid(t *testing.T) {
	for _, point := range []string{PointJournalAppend, PointJournalFsync} {
		path := filepath.Join(t.TempDir(), "journal.wal")
		fp := faultinj.NewSet()
		j, _ := openJournal(t, path, fp)
		if err := j.Append(Record{Op: OpAccepted, ID: "j1"}); err != nil {
			t.Fatal(err)
		}
		fp.FailOnce(point, faultinj.Crash(point))
		if err := j.Append(Record{Op: OpAccepted, ID: "j2"}); err == nil {
			t.Fatalf("%s: append succeeded through crash point", point)
		}
		j.Close()
		_, recs := openJournal(t, path, nil)
		// j1 must survive; j2 may or may not be present depending on where
		// the crash landed, but the log must replay without error and
		// never contain a third record.
		if len(recs) == 0 || recs[0].ID != "j1" || len(recs) > 2 {
			t.Fatalf("%s: replay = %+v", point, recs)
		}
	}
}

// TestJournalRandomKillPoints is the journal half of the crash-recovery
// property: across many randomized crash offsets, every record whose
// append was acknowledged (fully framed and fsynced before the kill
// point) survives replay, and the torn remainder never corrupts the log.
func TestJournalRandomKillPoints(t *testing.T) {
	const rounds = 40
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round) + 1))
		path := filepath.Join(t.TempDir(), "journal.wal")
		j, _ := openJournal(t, path, nil)

		// Build a random job history; record the durable length after
		// each acknowledged append.
		nRecs := 1 + rng.Intn(12)
		var ackLens []int64
		var acked []Record
		for i := 0; i < nRecs; i++ {
			rec := Record{
				Op:  []string{OpAccepted, OpStarted, OpFinished}[rng.Intn(3)],
				ID:  fmt.Sprintf("j%06d", rng.Intn(5)+1),
				SHA: fmt.Sprintf("%064x", rng.Int63()),
			}
			if err := j.Append(rec); err != nil {
				t.Fatal(err)
			}
			n, err := j.Size()
			if err != nil {
				t.Fatal(err)
			}
			ackLens = append(ackLens, n)
			acked = append(acked, rec)
		}
		j.Close()
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		// Kill point: pick how many records were acknowledged before the
		// crash, then a random byte offset into the unacknowledged
		// remainder (the torn tail), optionally garbling the torn bytes.
		ackedCount := rng.Intn(len(ackLens) + 1)
		var durable int64
		if ackedCount > 0 {
			durable = ackLens[ackedCount-1]
		}
		cut := durable
		if int64(len(full)) > durable {
			cut = durable + rng.Int63n(int64(len(full))-durable+1)
		}
		crash := append([]byte(nil), full[:cut]...)
		if len(crash) > int(durable) && rng.Intn(2) == 0 {
			crash[int(durable)+rng.Intn(len(crash)-int(durable))] ^= 0xff
		}
		if err := os.WriteFile(path, crash, 0o644); err != nil {
			t.Fatal(err)
		}

		j2, recs, err := OpenJournal(path, nil)
		if err != nil {
			t.Fatalf("round %d: replay errored: %v", round, err)
		}
		j2.Close()
		if len(recs) < ackedCount {
			t.Fatalf("round %d: lost acknowledged records: replayed %d, acked %d",
				round, len(recs), ackedCount)
		}
		for i := 0; i < ackedCount; i++ {
			if recs[i].Op != acked[i].Op || recs[i].ID != acked[i].ID || recs[i].SHA != acked[i].SHA {
				t.Fatalf("round %d: record %d mutated: %+v, want %+v", round, i, recs[i], acked[i])
			}
		}
		// Anything past the acked prefix must be a record we actually
		// wrote (a complete-but-unacked frame), never invented data.
		for i := ackedCount; i < len(recs); i++ {
			if i >= len(acked) || recs[i].ID != acked[i].ID {
				t.Fatalf("round %d: replay invented record %d: %+v", round, i, recs[i])
			}
		}
	}
}
