// Package diskstore is fitsd's durability layer: a content-addressed
// on-disk result store, a blob store for submitted firmware bytes, and a
// write-ahead journal for the job queue (journal.go).
//
// The result store lives beneath the server's in-memory LRU+TTL store and
// shares the model cache's identity scheme — SHA-256 of the input bytes
// plus the analysis-config epoch — so a resubmission of known bytes under
// the same options resolves to the same on-disk entry across restarts.
//
// Durability rules, applied uniformly:
//
//   - Every write is atomic: encode to a temp file in <dir>/tmp, fsync,
//     rename into place, fsync the parent directory. Readers therefore
//     see either the previous entry or the complete new one, never a
//     partial write; a crash mid-write leaves only a temp file, which the
//     next Open sweeps away.
//   - Every entry carries a checksum footer over its full contents. A
//     corrupt or truncated entry is detected on read, moved into
//     <dir>/quarantine for post-mortem, and reported as a miss — corrupt
//     bytes are never served.
//
// All fault-sensitive steps cross faultinj failpoints (PointWrite,
// PointFsync, PointRename, ...) so the crash-recovery tests can kill an
// operation at any stage and assert the invariants above.
package diskstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"

	"fits/internal/faultinj"
)

// Failpoint names crossed by the store's write and read paths.
const (
	PointWrite     = "diskstore.write"      // payload write into the temp file
	PointFsync     = "diskstore.fsync"      // fsync of the temp file
	PointRename    = "diskstore.rename"     // rename of temp → final ("crash after write, before rename")
	PointBlobWrite = "diskstore.blob.write" // firmware blob write
	PointRead      = "diskstore.read"       // entry read
)

// ErrCorrupt marks an on-disk entry whose checksum, framing, or identity
// failed verification; the entry has been quarantined.
var ErrCorrupt = errors.New("diskstore: corrupt entry")

// entryMagic and entryVersion frame one result entry on disk.
var entryMagic = []byte("FDSE1")

const (
	entryVersion  = 1
	maxKeyLen     = 1 << 16
	maxPayloadLen = 1 << 30
	footerLen     = sha256.Size
)

// Store is the on-disk result and blob store rooted at one directory.
// Store methods are safe for concurrent use.
type Store struct {
	dir string
	fp  *faultinj.Set

	mu      sync.Mutex
	entries int      // result entries on disk; guarded by mu
	lock    *os.File // held flock on <dir>/.lock; guarded by mu

	writes      atomic.Uint64
	hits        atomic.Uint64
	misses      atomic.Uint64
	quarantined atomic.Uint64
}

// Stats is a point-in-time snapshot of store activity since Open.
type Stats struct {
	Entries     int    // result entries currently on disk
	Writes      uint64 // successful Put calls
	Hits        uint64 // Get calls served from disk
	Misses      uint64 // Get calls with no (valid) entry
	Quarantined uint64 // corrupt entries moved aside instead of served
}

// Open prepares the directory layout (results/, blobs/, quarantine/,
// tmp/), sweeps temp files abandoned by a crash, and counts the surviving
// result entries. fp may be nil.
//
// The directory is single-owner: Open takes an exclusive flock on
// <dir>/.lock and fails if another live process holds it. Without the
// lock, a second daemon's boot compaction would silently orphan the
// journal file the first one is appending to — acknowledged jobs would
// vanish on the next restart.
func Open(dir string, fp *faultinj.Set) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("diskstore: %s is in use by another process: %w", dir, err)
	}
	for _, sub := range []string{"results", "blobs", "quarantine", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			lock.Close()
			return nil, fmt.Errorf("diskstore: %w", err)
		}
	}
	// A crash mid-Put leaves a temp file but never a partial entry; the
	// temp dir is ours alone, so everything in it is garbage.
	tmps, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	for _, e := range tmps {
		os.Remove(filepath.Join(dir, "tmp", e.Name()))
	}
	ents, err := os.ReadDir(filepath.Join(dir, "results"))
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	return &Store{dir: dir, fp: fp, entries: len(ents), lock: lock}, nil
}

// Close releases the directory lock so another process can take over the
// data dir. Safe to call more than once; the store's read/write methods
// must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lock == nil {
		return nil
	}
	err := s.lock.Close() // closing the fd releases the flock
	s.lock = nil
	return err
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n := s.entries
	s.mu.Unlock()
	return Stats{
		Entries:     n,
		Writes:      s.writes.Load(),
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Quarantined: s.quarantined.Load(),
	}
}

// entryName maps a key to its file name: the hex SHA-256 of the key, so
// arbitrary key strings (which embed config JSON) stay filesystem-safe.
func entryName(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:]) + ".fds"
}

// encodeEntry frames one result entry: magic, version, length-prefixed
// key and payload, and a SHA-256 footer over everything before it.
func encodeEntry(key string, payload []byte) []byte {
	b := make([]byte, 0, len(entryMagic)+1+8+len(key)+len(payload)+footerLen)
	b = append(b, entryMagic...)
	b = append(b, entryVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(key)))
	b = append(b, key...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	sum := sha256.Sum256(b)
	return append(b, sum[:]...)
}

// decodeEntry parses and verifies a framed entry, returning its key and
// payload. Any framing violation, length overrun, trailing garbage, or
// checksum mismatch yields ErrCorrupt.
func decodeEntry(b []byte) (key string, payload []byte, err error) {
	if len(b) < len(entryMagic)+1+8+footerLen {
		return "", nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if string(b[:len(entryMagic)]) != string(entryMagic) {
		return "", nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := len(entryMagic)
	if b[off] != entryVersion {
		return "", nil, fmt.Errorf("%w: unknown version %d", ErrCorrupt, b[off])
	}
	off++
	keyLen := binary.LittleEndian.Uint32(b[off:])
	off += 4
	if keyLen > maxKeyLen || off+int(keyLen)+4 > len(b) {
		return "", nil, fmt.Errorf("%w: key length %d out of range", ErrCorrupt, keyLen)
	}
	key = string(b[off : off+int(keyLen)])
	off += int(keyLen)
	payLen := binary.LittleEndian.Uint32(b[off:])
	off += 4
	if payLen > maxPayloadLen || off+int(payLen)+footerLen != len(b) {
		return "", nil, fmt.Errorf("%w: payload length %d out of range", ErrCorrupt, payLen)
	}
	payload = b[off : off+int(payLen)]
	off += int(payLen)
	sum := sha256.Sum256(b[:off])
	if string(sum[:]) != string(b[off:]) {
		return "", nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return key, payload, nil
}

// Put durably stores payload under key. Completed results are write-once
// per key; a re-Put of the same key atomically replaces the entry.
func (s *Store) Put(key string, payload []byte) error {
	dst := filepath.Join(s.dir, "results", entryName(key))
	fresh := true
	if _, err := os.Stat(dst); err == nil {
		fresh = false
	}
	if err := s.writeAtomic(dst, encodeEntry(key, payload), PointWrite, PointFsync, PointRename); err != nil {
		return err
	}
	s.writes.Add(1)
	if fresh {
		s.mu.Lock()
		s.entries++
		s.mu.Unlock()
	}
	return nil
}

// Get returns the payload stored under key, or (nil, nil) on a miss. A
// corrupt entry is quarantined and reported as a miss with ErrCorrupt, so
// callers can count it; it is never returned as data.
func (s *Store) Get(key string) ([]byte, error) {
	if err := s.fp.Hit(PointRead); err != nil {
		return nil, err
	}
	path := filepath.Join(s.dir, "results", entryName(key))
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		s.misses.Add(1)
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	gotKey, payload, err := decodeEntry(b)
	if err == nil && gotKey != key {
		err = fmt.Errorf("%w: key mismatch (hash collision or tamper)", ErrCorrupt)
	}
	if err != nil {
		s.quarantine(path)
		s.misses.Add(1)
		return nil, err
	}
	s.hits.Add(1)
	return payload, nil
}

// PutBlob durably stores raw firmware bytes content-addressed by their
// SHA-256, returning the hex digest. Existing blobs are not rewritten.
func (s *Store) PutBlob(raw []byte) (string, error) {
	sum := sha256.Sum256(raw)
	sha := hex.EncodeToString(sum[:])
	dst := filepath.Join(s.dir, "blobs", sha+".blob")
	if _, err := os.Stat(dst); err == nil {
		return sha, nil
	}
	if err := s.writeAtomic(dst, raw, PointBlobWrite, PointFsync, PointRename); err != nil {
		return "", err
	}
	return sha, nil
}

// GetBlob returns the firmware bytes for a hex SHA-256, or (nil, nil) when
// absent. A blob whose contents no longer hash to its name is quarantined
// and reported as a miss with ErrCorrupt.
func (s *Store) GetBlob(sha string) ([]byte, error) {
	path := filepath.Join(s.dir, "blobs", sha+".blob")
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	sum := sha256.Sum256(b)
	if hex.EncodeToString(sum[:]) != sha {
		s.quarantine(path)
		return nil, fmt.Errorf("%w: blob %s fails its content hash", ErrCorrupt, sha)
	}
	return b, nil
}

// quarantine moves a corrupt file out of the serving path, preserving it
// for post-mortem. Move failures fall back to removal: a corrupt entry
// must never remain where it could be read again.
func (s *Store) quarantine(path string) {
	s.quarantined.Add(1)
	dst := filepath.Join(s.dir, "quarantine",
		filepath.Base(path)+"."+strconv.FormatUint(s.quarantined.Load(), 10))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	s.mu.Lock()
	if s.entries > 0 && filepath.Dir(path) == filepath.Join(s.dir, "results") {
		s.entries--
	}
	s.mu.Unlock()
}

// writeAtomic writes data to dst via temp file + fsync + rename + parent
// fsync, crossing the three named failpoints in order. On any failure the
// temp file is abandoned in tmp/ — the same debris a real crash leaves —
// and the destination is untouched.
func (s *Store) writeAtomic(dst string, data []byte, writePoint, fsyncPoint, renamePoint string) error {
	f, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	tmp := f.Name()
	if err := s.fp.Hit(writePoint); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := s.fp.Hit(fsyncPoint); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := s.fp.Hit(renamePoint); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	syncDir(filepath.Dir(dst))
	return nil
}

// syncDir fsyncs a directory so a rename into it survives power loss.
// Best-effort: some filesystems refuse directory fsync; the rename itself
// is still atomic there.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
