package diskstore

import (
	"bytes"
	"testing"
)

// FuzzDiskStore fuzzes the on-disk entry codec from both sides:
//
//   - treat the input as a stored entry file (header, lengths, checksum
//     footer, truncation): decoding must never panic, and any accepted
//     entry must be the canonical encoding of what it decodes to — the
//     checksum footer leaves no room for mutated-but-accepted bytes;
//   - treat the input as (key, payload) parts: the round trip must be
//     exact, and no strict prefix of a valid entry may decode.
func FuzzDiskStore(f *testing.F) {
	f.Add([]byte("FDSE1"), []byte{})
	f.Add([]byte("not-an-entry"), []byte("payload"))
	f.Add(encodeEntry("k", []byte("v")), []byte("v"))
	f.Add(encodeEntry("", []byte{}), []byte{})
	f.Fuzz(func(t *testing.T, raw, payload []byte) {
		// Decode arbitrary bytes: no panic, and acceptance implies the
		// bytes are exactly a canonical entry.
		if key, got, err := decodeEntry(raw); err == nil {
			if !bytes.Equal(encodeEntry(key, got), raw) {
				t.Fatalf("accepted non-canonical entry: key %q payload %q", key, got)
			}
		}

		// Round trip bounded inputs.
		key := string(raw)
		if len(key) > maxKeyLen {
			key = key[:maxKeyLen]
		}
		enc := encodeEntry(key, payload)
		k, p, err := decodeEntry(enc)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if k != key || !bytes.Equal(p, payload) {
			t.Fatalf("round trip mutated: (%q, %q) -> (%q, %q)", key, payload, k, p)
		}
		// Truncations of a valid entry must all be rejected.
		for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
			if cut >= len(enc) {
				continue
			}
			if _, _, err := decodeEntry(enc[:cut]); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}

		// The journal record framing shares the torn-tail contract:
		// DecodeRecords must never panic and must report a prefix length
		// within bounds.
		if recs, n := DecodeRecords(raw); n > len(raw) || (n > 0 && len(recs) == 0) {
			t.Fatalf("DecodeRecords(%d bytes) = %d records, prefix %d", len(raw), len(recs), n)
		}
	})
}
