package diskstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"fits/internal/faultinj"
)

// journal.go is the write-ahead log of the fitsd job queue. One record is
// appended (and fsynced) per job transition *before* the transition is
// acknowledged to the outside world: Accepted before the 202 response,
// Started before the runner is invoked, Finished before the terminal
// state is served. On boot the server replays the surviving records and
// reconstructs every acknowledged job: accepted-but-never-started jobs
// are re-enqueued, started-but-never-finished jobs are marked
// interrupted (retryable), finished jobs reappear terminal.
//
// Framing is length + CRC32 + JSON per record. A crash can tear only the
// final record (appends are sequential and fsynced); replay verifies each
// frame and truncates the file at the first bad one, so a torn tail —
// which by construction was never acknowledged — is dropped cleanly
// rather than poisoning the log.

// Journal operation kinds.
const (
	OpAccepted = "accepted"
	OpStarted  = "started"
	OpFinished = "finished"
)

// Failpoint names crossed by the append path.
const (
	PointJournalAppend = "journal.append"
	PointJournalFsync  = "journal.fsync"
)

// maxRecordLen bounds one framed record; anything larger is treated as a
// torn or corrupt frame.
const maxRecordLen = 1 << 24

// Record is one journal entry. Accepted records carry the job identity
// and enough to re-run it (the spec plus blob hashes); Started and
// Finished records reference the job by ID.
type Record struct {
	Op   string `json:"op"`
	ID   string `json:"id"`
	Seq  uint64 `json:"seq,omitempty"`
	Kind string `json:"kind,omitempty"` // "" analysis, "diff" evolution diff
	// SHA and SHA2 name the firmware blobs (hex SHA-256); SHA2 is set for
	// diff jobs only.
	SHA  string          `json:"sha,omitempty"`
	SHA2 string          `json:"sha2,omitempty"`
	Size int             `json:"size,omitempty"`
	Spec json.RawMessage `json:"spec,omitempty"`
	// Key is the diskstore result key of the job, present on accepted
	// records so replay can serve recovered done jobs from disk.
	Key string `json:"key,omitempty"`
	// State and Error describe the terminal outcome on finished records.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// Journal is an append-only, fsync-per-record log.
type Journal struct {
	mu   sync.Mutex
	f    *os.File // guarded by mu
	path string
	fp   *faultinj.Set
}

// OpenJournal opens (creating if needed) the journal at path, replays the
// valid record prefix, truncates any torn tail, and returns the journal
// ready for appends together with the surviving records.
func OpenJournal(path string, fp *faultinj.Set) (*Journal, []Record, error) {
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("diskstore: journal: %w", err)
	}
	recs, valid := DecodeRecords(b)
	if valid < len(b) {
		// Torn tail from a crash mid-append: the bytes past the last valid
		// frame were never acknowledged, so dropping them loses nothing.
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, nil, fmt.Errorf("diskstore: journal truncate: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("diskstore: journal: %w", err)
	}
	return &Journal{f: f, path: path, fp: fp}, recs, nil
}

// Append frames, writes, and fsyncs one record. When Append returns nil
// the record is durable; callers acknowledge the transition only after.
func (j *Journal) Append(rec Record) error {
	frame, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("diskstore: journal: append after close")
	}
	if err := j.fp.Hit(PointJournalAppend); err != nil {
		return err
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("diskstore: journal: %w", err)
	}
	if err := j.fp.Hit(PointJournalFsync); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("diskstore: journal: %w", err)
	}
	return nil
}

// Rewrite compacts the journal to exactly recs, atomically: the new log is
// written and fsynced beside the old one and renamed over it, then the
// append handle moves to the new file. Used after boot replay so the log
// does not grow without bound across restarts.
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	tmp := j.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: journal rewrite: %w", err)
	}
	for _, rec := range recs {
		frame, err := EncodeRecord(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := f.Write(frame); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("diskstore: journal rewrite: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("diskstore: journal rewrite: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("diskstore: journal rewrite: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("diskstore: journal rewrite: %w", err)
	}
	syncDir(filepath.Dir(j.path))
	if j.f != nil {
		j.f.Close()
	}
	j.f, err = os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: journal rewrite: %w", err)
	}
	return nil
}

// Size reports the current journal length in bytes; tests use it to mark
// durable prefixes.
func (j *Journal) Size() (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st, err := os.Stat(j.path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close releases the append handle. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// EncodeRecord frames one record: u32 little-endian payload length, u32
// CRC-32 (IEEE) of the payload, then the JSON payload.
func EncodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("diskstore: journal: %w", err)
	}
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	return append(frame, payload...), nil
}

// DecodeRecords parses the longest valid record prefix of b, returning
// the records and the byte length of that prefix. Scanning stops at the
// first incomplete, oversized, CRC-failing, or unparsable frame — the
// torn tail a crash mid-append leaves.
func DecodeRecords(b []byte) ([]Record, int) {
	var recs []Record
	off := 0
	for {
		if off+8 > len(b) {
			return recs, off
		}
		n := binary.LittleEndian.Uint32(b[off:])
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if n > maxRecordLen || off+8+int(n) > len(b) {
			return recs, off
		}
		payload := b[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += 8 + int(n)
	}
}
