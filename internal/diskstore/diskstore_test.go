package diskstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fits/internal/faultinj"
)

func openStore(t *testing.T, fp *faultinj.Set) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), fp)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openStore(t, nil)
	key := "job|v1|{\"scan\":true}|deadbeef"
	payload := []byte(`{"targets":[]}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Writes != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetMiss(t *testing.T) {
	s := openStore(t, nil)
	got, err := s.Get("absent")
	if err != nil || got != nil {
		t.Fatalf("miss = (%q, %v), want (nil, nil)", got, err)
	}
	if s.Stats().Misses != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

// TestSurvivesReopen is the core durability property: results written by
// one Store are served by a fresh Store over the same directory.
func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("k")
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("reopened Get = (%q, %v)", got, err)
	}
	if s2.Stats().Entries != 1 {
		t.Fatalf("reopened stats = %+v", s2.Stats())
	}
}

// TestSingleOwnerLock: a data dir belongs to one Store at a time. A
// second Open while the lock is held fails loudly (two daemons sharing a
// dir would silently orphan each other's journal appends at compaction);
// Close releases the lock and the next Open succeeds.
func TestSingleOwnerLock(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("second Open on a locked dir succeeded")
	} else if !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second Open err = %v, want an in-use message", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	s2.Close()
}

// TestCorruptEntryQuarantined flips one byte in every position of a
// stored entry in turn and asserts the store never serves the damaged
// bytes — each corruption is either still checksum-valid (impossible for
// a single flip under SHA-256) or quarantined as a miss.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := "k"
	payload := []byte("result-bytes")
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "results", entryName(key))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A handful of representative positions: magic, version, key length,
	// payload body, checksum footer.
	for _, pos := range []int{0, len(entryMagic), len(entryMagic) + 1, len(orig) / 2, len(orig) - 1} {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0xff
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(key)
		if got != nil {
			t.Fatalf("pos %d: corrupt entry served: %q", pos, got)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("pos %d: err = %v, want ErrCorrupt", pos, err)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("pos %d: corrupt entry left in results/", pos)
		}
		// Restore for the next position.
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Quarantined == 0 {
		t.Fatal("no quarantines counted")
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) == 0 {
		t.Fatalf("quarantine dir: %v entries, %v", len(q), err)
	}
}

// TestTruncatedEntryQuarantined truncates the entry at every length and
// asserts no prefix is ever served.
func TestTruncatedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("result")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "results", entryName("k"))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(orig); cut += 7 {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("k")
		if got != nil {
			t.Fatalf("cut %d: truncated entry served: %q", cut, got)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: err = %v, want ErrCorrupt", cut, err)
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashBeforeRenameLeavesNoEntry arms the crash-after-write-before-
// rename failpoint: Put fails, the destination is untouched, and the next
// Open sweeps the abandoned temp file.
func TestCrashBeforeRenameLeavesNoEntry(t *testing.T) {
	dir := t.TempDir()
	fp := faultinj.NewSet()
	s, err := Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	fp.FailOnce(PointRename, faultinj.Crash(PointRename))
	if err := s.Put("k", []byte("v")); err == nil {
		t.Fatal("Put succeeded through a crash point")
	}
	if got, err := s.Get("k"); got != nil || err != nil {
		t.Fatalf("after crashed Put: Get = (%q, %v), want miss", got, err)
	}
	tmps, _ := os.ReadDir(filepath.Join(dir, "tmp"))
	if len(tmps) == 0 {
		t.Fatal("crash left no temp debris (crash point not crossed?)")
	}
	// Recovery: the crashed process's lock is released (a real crash
	// releases it with the process), then a fresh Open sweeps the debris
	// and the Put succeeds.
	s.Close()
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	tmps, _ = os.ReadDir(filepath.Join(dir, "tmp"))
	if len(tmps) != 0 {
		t.Fatalf("Open left %d temp files", len(tmps))
	}
	if err := s2.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get("k"); err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("post-recovery Get = (%q, %v)", got, err)
	}
}

func TestWriteAndFsyncFailpoints(t *testing.T) {
	for _, point := range []string{PointWrite, PointFsync} {
		fp := faultinj.NewSet()
		s := openStore(t, fp)
		fp.FailOnce(point, faultinj.Crash(point))
		if err := s.Put("k", []byte("v")); err == nil {
			t.Fatalf("%s: Put succeeded", point)
		}
		if got, _ := s.Get("k"); got != nil {
			t.Fatalf("%s: partial entry served", point)
		}
	}
}

func TestBlobRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte("firmware-image-bytes")
	sha, err := s.PutBlob(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent re-put.
	sha2, err := s.PutBlob(raw)
	if err != nil || sha2 != sha {
		t.Fatalf("re-put: (%s, %v), want %s", sha2, err, sha)
	}
	got, err := s.GetBlob(sha)
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("GetBlob = (%q, %v)", got, err)
	}
	if got, err := s.GetBlob("0000000000000000000000000000000000000000000000000000000000000000"); got != nil || err != nil {
		t.Fatalf("absent blob = (%q, %v), want miss", got, err)
	}
	// Corrupt the blob: must be quarantined, never served.
	path := filepath.Join(dir, "blobs", sha+".blob")
	if err := os.WriteFile(path, append(raw, 'x'), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = s.GetBlob(sha)
	if got != nil {
		t.Fatalf("corrupt blob served: %q", got)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestEncodeDecodeEntryProperties(t *testing.T) {
	for _, tc := range []struct {
		key     string
		payload string
	}{
		{"", ""},
		{"k", "v"},
		{"key with | separators | and {json}", `{"a":1}`},
	} {
		b := encodeEntry(tc.key, []byte(tc.payload))
		k, p, err := decodeEntry(b)
		if err != nil || k != tc.key || string(p) != tc.payload {
			t.Fatalf("round trip (%q,%q) = (%q,%q,%v)", tc.key, tc.payload, k, p, err)
		}
		// Trailing garbage must not be accepted silently.
		if _, _, err := decodeEntry(append(b, 0)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trailing garbage accepted for key %q", tc.key)
		}
	}
}
