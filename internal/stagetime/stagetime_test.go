package stagetime

import (
	"sync"
	"testing"
)

func TestNilTimerIsNoop(t *testing.T) {
	var tm *Timer
	tm.Add(Lift, 100)
	tm.AddAllocs(Lift, 100)
	tm.Span(Infer)()
	if tm.WallNanos(Lift) != 0 || tm.Allocs(Lift) != 0 {
		t.Error("nil timer accumulated")
	}
}

func TestAccumulation(t *testing.T) {
	var tm Timer
	tm.Add(Decode, 5)
	tm.Add(Decode, 7)
	tm.AddAllocs(Decode, 3)
	tm.AddAllocs(Decode, -1) // negative deltas (counter races) are dropped
	if got := tm.WallNanos(Decode); got != 12 {
		t.Errorf("wall = %d, want 12", got)
	}
	if got := tm.Allocs(Decode); got != 3 {
		t.Errorf("allocs = %d, want 3", got)
	}
	if tm.WallNanos(Taint) != 0 {
		t.Error("untouched stage nonzero")
	}
}

var sink []*[64]byte

func TestSpanRecordsWallAndAllocs(t *testing.T) {
	var tm Timer
	done := tm.Span(Infer)
	// Enough escaping allocations to overcome the per-P counter batching
	// the runtime applies before a metrics.Read flush.
	sink = sink[:0]
	for i := 0; i < 4096; i++ {
		sink = append(sink, new([64]byte))
	}
	done()
	if tm.WallNanos(Infer) <= 0 {
		t.Error("span recorded no wall time")
	}
	if tm.Allocs(Infer) <= 0 {
		t.Error("span recorded no allocations")
	}
}

func TestStageNames(t *testing.T) {
	want := []string{"decode", "lift", "cfg", "reachdef", "infer", "taint", "alias", "pathcheck"}
	stages := Stages()
	if len(stages) != len(want) {
		t.Fatalf("%d stages, want %d", len(stages), len(want))
	}
	for i, s := range stages {
		if s.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s, want[i])
		}
	}
	if NumStages.String() != "stage" {
		t.Errorf("out-of-range String() = %q", NumStages.String())
	}
}

func TestTimerConcurrent(t *testing.T) {
	var tm Timer
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tm.Add(Lift, 1)
				tm.AddAllocs(CFG, 1)
			}
		}()
	}
	wg.Wait()
	if tm.WallNanos(Lift) != 8000 || tm.Allocs(CFG) != 8000 {
		t.Errorf("lift=%d cfg=%d, want 8000 each", tm.WallNanos(Lift), tm.Allocs(CFG))
	}
}
