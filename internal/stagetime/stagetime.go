// Package stagetime accumulates per-stage wall-clock and heap-allocation
// costs across one analysis or a whole corpus batch. The pure analysis
// packages (cfg, bfv, ...) never read clocks themselves — the nondet lint
// bans that — so impure callers (loader, fits, eval, fitsd) sample a clock
// and an allocation counter around each stage and feed the deltas into a
// Timer; pure packages receive at most an injected `func() int64` pair.
//
// Wall times are accumulated atomically and are meaningful at any
// parallelism (they sum CPU-side stage time across workers, so overlapping
// stages can exceed the batch's wall clock). Allocation deltas read a
// process-global counter, so they attribute correctly only when the
// pipeline runs serially (Parallelism=1), which is how the benchmarks run;
// at higher parallelism they remain monotonic but mix stages.
package stagetime

import (
	"runtime/metrics"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage.
type Stage uint8

// The pipeline stages, in execution order. ReachDef is nested inside Infer
// (reaching-definition dataflow runs per function during vector
// extraction), so its time is also part of Infer's — per-stage numbers are
// spans, not a partition.
const (
	Decode Stage = iota // firmware unpack + binary container decode
	Lift                // instruction lifting & function recovery
	CFG                 // the rest of model building (resolution, loops, callers)
	ReachDef            // reaching-definition dataflow (inside Infer)
	Infer               // vector extraction, clustering, scoring, ranking
	Taint               // taint scans (static or symbolic engine)
	Alias               // bounded points-to facts (inside Taint)
	PathCheck           // alert path-feasibility filtering (inside Taint)
	NumStages
)

var stageNames = [NumStages]string{"decode", "lift", "cfg", "reachdef", "infer", "taint", "alias", "pathcheck"}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage"
}

// Stages lists all stages in order, for iteration by exporters.
func Stages() [NumStages]Stage {
	return [NumStages]Stage{Decode, Lift, CFG, ReachDef, Infer, Taint, Alias, PathCheck}
}

// Timer accumulates per-stage costs. The zero value is ready to use; a nil
// *Timer is a no-op sink, so instrumentation can be left in place unpaid.
type Timer struct {
	wall   [NumStages]atomic.Int64 // nanoseconds
	allocs [NumStages]atomic.Int64 // heap objects
}

// Add records ns nanoseconds of wall time against stage s.
func (t *Timer) Add(s Stage, ns int64) {
	if t == nil || s >= NumStages {
		return
	}
	t.wall[s].Add(ns)
}

// AddAllocs records n heap-object allocations against stage s.
func (t *Timer) AddAllocs(s Stage, n int64) {
	if t == nil || s >= NumStages || n <= 0 {
		return
	}
	t.allocs[s].Add(n)
}

// WallNanos returns the accumulated wall time of stage s in nanoseconds.
func (t *Timer) WallNanos(s Stage) int64 {
	if t == nil || s >= NumStages {
		return 0
	}
	return t.wall[s].Load()
}

// Allocs returns the accumulated heap-object count of stage s.
func (t *Timer) Allocs(s Stage) int64 {
	if t == nil || s >= NumStages {
		return 0
	}
	return t.allocs[s].Load()
}

// Clock returns monotonic nanoseconds since an arbitrary base — the value
// impure callers inject into pure packages as `func() int64`.
func Clock() int64 { return time.Since(base).Nanoseconds() }

var base = time.Now()

var allocSample = func() []metrics.Sample {
	s := make([]metrics.Sample, 1)
	s[0].Name = "/gc/heap/allocs:objects"
	return s
}()

// AllocCount returns the process-lifetime heap-object allocation count. It
// reads a runtime metric without stopping the world, so sampling it at
// stage boundaries is cheap. Callers diff two samples to charge a stage.
func AllocCount() int64 {
	// A fresh sample slice per call keeps this callable from concurrent
	// workers; one small slice per stage boundary is noise next to the
	// stages themselves.
	s := make([]metrics.Sample, 1)
	s[0].Name = allocSample[0].Name
	metrics.Read(s)
	return int64(s[0].Value.Uint64())
}

// Span measures one stage execution: call at the stage start, invoke the
// returned func at the end. On a nil timer it samples nothing.
func (t *Timer) Span(s Stage) func() {
	if t == nil {
		return func() {}
	}
	t0 := Clock()
	a0 := AllocCount()
	return func() {
		t.Add(s, Clock()-t0)
		t.AddAllocs(s, AllocCount()-a0)
	}
}
