package infer

import (
	"testing"

	"fits/internal/bfv"
	"fits/internal/loader"
	"fits/internal/score"
	"fits/internal/synth"
)

func loadSample(t *testing.T, idx int) (*synth.Sample, *loader.Target) {
	t.Helper()
	s, err := synth.Generate(synth.Dataset()[idx])
	if err != nil {
		t.Fatal(err)
	}
	res, err := loader.Load(s.Packed, loader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, res.Targets[0]
}

func itsRankIn(s *synth.Sample, r *Ranking) int {
	truth := map[uint32]bool{}
	for _, its := range s.Manifest.ITS {
		truth[its.Entry] = true
	}
	for i, e := range r.Ranked {
		if truth[e.Entry] {
			return i + 1
		}
	}
	return 0
}

func TestDefaultPipelineRanksITS(t *testing.T) {
	s, target := loadSample(t, 0)
	r := InferTarget(target, DefaultConfig())
	if r.NumFuncs < 100 || r.NumAnchors < 8 {
		t.Fatalf("funcs=%d anchors=%d", r.NumFuncs, r.NumAnchors)
	}
	if r.NumCandidates == 0 || r.NumCandidates >= r.NumFuncs {
		t.Errorf("clustering kept %d of %d candidates", r.NumCandidates, r.NumFuncs)
	}
	rank := itsRankIn(s, r)
	if rank == 0 || rank > 3 {
		t.Errorf("ITS rank = %d, want 1..3", rank)
	}
	// Scores must be descending.
	for i := 1; i < len(r.Ranked); i++ {
		if r.Ranked[i].Score > r.Ranked[i-1].Score {
			t.Fatal("ranking not descending")
		}
	}
}

func TestDeterministicInference(t *testing.T) {
	_, target := loadSample(t, 5)
	a := InferTarget(target, DefaultConfig())
	b := InferTarget(target, DefaultConfig())
	if len(a.Ranked) != len(b.Ranked) {
		t.Fatal("ranking lengths differ")
	}
	for i := range a.Ranked {
		if a.Ranked[i] != b.Ranked[i] {
			t.Fatal("inference not deterministic")
		}
	}
}

func TestStrategyNoneScoresAllFunctions(t *testing.T) {
	_, target := loadSample(t, 0)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyNone
	r := InferTarget(target, cfg)
	if r.NumCandidates != r.NumFuncs {
		t.Errorf("none strategy: candidates = %d, funcs = %d", r.NumCandidates, r.NumFuncs)
	}
}

func TestPreprocessingStrategiesRun(t *testing.T) {
	s, target := loadSample(t, 0)
	for _, st := range []Strategy{StrategyPCA, StrategyStandardize, StrategyNormalize} {
		cfg := DefaultConfig()
		cfg.Strategy = st
		r := InferTarget(target, cfg)
		if len(r.Ranked) == 0 {
			t.Errorf("%v: empty ranking", st)
		}
		_ = itsRankIn(s, r) // must not panic; precision checked corpus-wide
	}
}

func TestDropFeatureChangesRanking(t *testing.T) {
	_, target := loadSample(t, 0)
	base := InferTarget(target, DefaultConfig())
	cfg := DefaultConfig()
	cfg.DropFeature = bfv.FCallers
	dropped := InferTarget(target, cfg)
	same := len(base.Ranked) == len(dropped.Ranked)
	if same {
		for i := range base.Ranked {
			if base.Ranked[i].Entry != dropped.Ranked[i].Entry ||
				base.Ranked[i].Score != dropped.Ranked[i].Score {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("dropping the caller feature changed nothing")
	}
}

func TestAlternativeRepresentationsRun(t *testing.T) {
	_, target := loadSample(t, 0)
	for _, rep := range []Representation{RepAugmentedCFG, RepAttributedCFG} {
		cfg := DefaultConfig()
		cfg.Representation = rep
		r := InferTarget(target, cfg)
		if r.NumAnchors == 0 {
			t.Errorf("%v: no anchor vectors", rep)
		}
	}
}

func TestMetricsProduceDifferentScores(t *testing.T) {
	_, target := loadSample(t, 0)
	cos := InferTarget(target, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Metric = score.Euclidean
	euc := InferTarget(target, cfg)
	if len(cos.Ranked) > 0 && len(euc.Ranked) > 0 &&
		cos.Ranked[0].Score == euc.Ranked[0].Score {
		t.Error("cosine and euclidean top scores identical")
	}
}

func TestTopClamps(t *testing.T) {
	_, target := loadSample(t, 0)
	r := InferTarget(target, DefaultConfig())
	if got := len(r.Top(3)); got > 3 {
		t.Errorf("Top(3) = %d entries", got)
	}
	if got := len(r.Top(10_000)); got != len(r.Ranked) {
		t.Errorf("Top(huge) = %d, want %d", got, len(r.Ranked))
	}
}

func TestStringers(t *testing.T) {
	for _, r := range []Representation{RepBFV, RepAugmentedCFG, RepAttributedCFG, Representation(9)} {
		if r.String() == "" {
			t.Errorf("empty name for rep %d", r)
		}
	}
	for _, s := range []Strategy{StrategyCluster, StrategyNone, StrategyPCA, StrategyStandardize, StrategyNormalize, Strategy(9)} {
		if s.String() == "" {
			t.Errorf("empty name for strategy %d", s)
		}
	}
}

func TestInferAllCoversTargets(t *testing.T) {
	s, err := synth.Generate(synth.Dataset()[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := loader.Load(s.Packed, loader.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rankings := InferAll(res, DefaultConfig())
	if len(rankings) != len(res.Targets) {
		t.Errorf("rankings = %d, targets = %d", len(rankings), len(res.Targets))
	}
}
