// Package infer is the complete ITS inference pipeline of the paper's
// Algorithm 2: extract behavioral representations for the target's custom
// functions and the dependency libraries' anchor functions, select
// candidates by behavior clustering with the complexity filter, and rank
// candidates by similarity to the anchor matrix.
//
// Every stage is switchable to the paper's baselines (RQ3 representations,
// RQ4 strategies and metrics, feature ablations), so the evaluation harness
// drives one code path for all experiments.
package infer

import (
	"context"
	"fmt"
	"sort"

	"fits/internal/altrep"
	"fits/internal/bfv"
	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/cluster"
	"fits/internal/dataflow"
	"fits/internal/intern"
	"fits/internal/loader"
	"fits/internal/modelcache"
	"fits/internal/pool"
	"fits/internal/score"
)

// Representation selects the function representation.
type Representation uint8

// Representations: BFV is the paper's; the others are RQ3 baselines.
const (
	RepBFV Representation = iota
	RepAugmentedCFG
	RepAttributedCFG
)

func (r Representation) String() string {
	switch r {
	case RepBFV:
		return "BFV"
	case RepAugmentedCFG:
		return "Augmented-CFG"
	case RepAttributedCFG:
		return "Attributed-CFG"
	}
	return fmt.Sprintf("rep(%d)", uint8(r))
}

// Strategy selects the candidate-selection stage.
type Strategy uint8

// Strategies: clustering is the paper's; the others are RQ4 baselines that
// replace clustering with direct scoring after optional preprocessing.
const (
	StrategyCluster Strategy = iota
	StrategyNone
	StrategyPCA
	StrategyStandardize
	StrategyNormalize
)

func (s Strategy) String() string {
	switch s {
	case StrategyCluster:
		return "cluster"
	case StrategyNone:
		return "none"
	case StrategyPCA:
		return "pca"
	case StrategyStandardize:
		return "standardize"
	case StrategyNormalize:
		return "normalize"
	}
	return fmt.Sprintf("strategy(%d)", uint8(s))
}

// Config selects every pipeline variant.
type Config struct {
	Representation Representation
	Strategy       Strategy
	Metric         score.Metric
	// DropFeature removes one BFV dimension (ablation); -1 keeps all.
	DropFeature int
	DBSCAN      cluster.Params
	// PCAComponents for StrategyPCA.
	PCAComponents int
	// Parallelism bounds the goroutines extracting per-function vectors;
	// 0 means runtime.GOMAXPROCS(0). Output is deterministic at any value.
	Parallelism int
	// Sched, when non-nil, draws every fan-out from a shared corpus-level
	// worker budget instead of sizing a per-call pool from Parallelism.
	// Batched corpus runs hand one Scheduler to every image's pipeline.
	Sched *pool.Scheduler
	// Intern canonicalizes strings materialized during extraction (call-site
	// constants); nil disables interning. Rankings are byte-identical either
	// way.
	Intern *intern.Table
	// Clock, AllocCount and OnReachDef instrument the reaching-definition
	// sub-stage: when Clock and OnReachDef are both set, each per-function
	// dataflow pass reports its wall time (and heap-object count, with
	// AllocCount) through OnReachDef. Injected by impure callers; this
	// package reads no clocks itself.
	Clock      func() int64
	AllocCount func() int64
	OnReachDef func(wallNanos, allocObjs int64)
	// Cache memoizes the per-target base vectors (custom functions and
	// anchors) by binary content hash and representation. Variant sweeps
	// that only mask features (DropFeature) or change strategy/metric derive
	// from the cached base instead of re-extracting. Nil disables caching;
	// caching also requires targets loaded with a cache (content hashes set).
	Cache *modelcache.Cache
}

// DefaultConfig is the paper's configuration: BFV + clustering + cosine.
func DefaultConfig() Config {
	return Config{
		Representation: RepBFV,
		Strategy:       StrategyCluster,
		Metric:         score.Cosine,
		DropFeature:    -1,
		DBSCAN:         cluster.DefaultParams,
		PCAComponents:  4,
	}
}

// Ranking is the inference result for one target binary.
type Ranking struct {
	Path   string
	Binary string
	Ranked []score.Ranked
	// Diagnostics.
	NumFuncs      int
	NumCandidates int
	NumAnchors    int
}

// Top returns the first k ranked entries.
func (r *Ranking) Top(k int) []score.Ranked {
	if k > len(r.Ranked) {
		k = len(r.Ranked)
	}
	return r.Ranked[:k]
}

// forEach fans n items out on the shared scheduler when the config carries
// one, or on a per-call pool sized by Parallelism otherwise. Both paths have
// identical error semantics and item i writes only slot i, so results do not
// depend on which path (or worker count) ran.
func forEach(ctx context.Context, cfgn Config, n int, fn func(i int) error) error {
	if cfgn.Sched != nil {
		return cfgn.Sched.ForEach(ctx, n, fn)
	}
	return pool.ForEach(ctx, cfgn.Parallelism, n, fn)
}

// newExtractor builds a bfv extractor wired with the config's intern table
// and reaching-definition instrumentation.
func newExtractor(bin *binimg.Binary, m *cfg.Model, cfgn Config) *bfv.Extractor {
	ex := bfv.New(bin, m)
	ex.Intern = cfgn.Intern
	ex.Clock = cfgn.Clock
	ex.AllocCount = cfgn.AllocCount
	ex.OnReachDef = cfgn.OnReachDef
	return ex
}

// vectorFor computes one function's representation vector.
func vectorFor(rep Representation, ex *bfv.Extractor, bin *binimg.Binary, m *cfg.Model, f *cfg.Function) bfv.Vector {
	switch rep {
	case RepAugmentedCFG:
		return altrep.AugmentedCFG(bin, m, f)
	case RepAttributedCFG:
		return altrep.AttributedCFG(bin, m, f)
	default:
		return ex.FuncVector(f)
	}
}

// vectorCache returns the cache to consult for t's derived vectors, or nil:
// content-addressed keys need t's hashes, which only a cache-enabled load
// fills in (a zero hash would alias every unhashed target).
func vectorCache(t *loader.Target, cfgn Config) *modelcache.Cache {
	if cfgn.Cache == nil || t.Hash == (modelcache.Hash{}) {
		return nil
	}
	return cfgn.Cache
}

// cachedVectors memoizes a vector-slice computation under key, returning a
// copy so callers may transform elements in place (ablation masking,
// preprocessing) without corrupting the cached base.
func cachedVectors(c *modelcache.Cache, key string, compute func() ([]bfv.Vector, error)) ([]bfv.Vector, error) {
	if c == nil {
		return compute()
	}
	v, _, err := c.GetOrCompute(key, func() (any, int64, error) {
		vecs, err := compute()
		if err != nil {
			return nil, 0, err
		}
		return vecs, int64(len(vecs)*bfv.Dim*8) + 64, nil
	})
	if err != nil {
		return nil, err
	}
	base := v.([]bfv.Vector)
	return append(make([]bfv.Vector, 0, len(base)), base...), nil
}

// customVectors extracts the representation vector of every custom function,
// in CustomFuncs order, fanning out across the pool. With a cache the whole
// per-target slice is memoized on (content hash, representation): RQ3/RQ4
// and ablation sweeps re-rank the same base vectors many times and only the
// first pass pays for extraction.
func customVectors(ctx context.Context, t *loader.Target, cfgn Config, customs []*cfg.Function) ([]bfv.Vector, error) {
	compute := func() ([]bfv.Vector, error) {
		prevVecs, prevIdx, err := prevCustomVectors(ctx, t, cfgn)
		if err != nil {
			return nil, err
		}
		ex := newExtractor(t.Bin, t.Model, cfgn)
		out := make([]bfv.Vector, len(customs))
		err = forEach(ctx, cfgn, len(customs), func(i int) error {
			if j, ok := prevIdx[customs[i].Entry]; ok {
				out[i] = prevVecs[j]
				return nil
			}
			out[i] = vectorFor(cfgn.Representation, ex, t.Bin, t.Model, customs[i])
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	c := vectorCache(t, cfgn)
	key := ""
	if c != nil {
		key = modelcache.Key("bfv", vectorSig(t, cfgn), t.Hash)
	}
	return cachedVectors(c, key, compute)
}

// vectorSig is the configuration component of vector cache keys:
// representation plus the model configuration the vectors derive from. Two
// models of the same bytes built under different resolver settings have
// different call graphs and therefore different vectors.
func vectorSig(t *loader.Target, cfgn Config) string {
	return "rep=" + cfgn.Representation.String() + "|model=" + t.ModelConfig
}

// prevCustomVectors maps custom-function entries of t to vectors already
// extracted for its previous firmware version. Only functions the reuse plan
// proved BFV-safe — byte-identical body, data sections, call sites and
// callers — are mapped, and only for the paper's representation, which is
// what the safety check covers. Both versions must have been modeled under
// the same configuration. Returns nil maps when no reuse applies.
func prevCustomVectors(ctx context.Context, t *loader.Target, cfgn Config) ([]bfv.Vector, map[uint32]int, error) {
	if cfgn.Representation != RepBFV || t.Prev == nil {
		return nil, nil, nil
	}
	plan := t.Prev.Plan
	prev := t.Prev.Target
	if plan == nil || len(plan.BFVSafe) == 0 || t.ModelConfig != prev.ModelConfig {
		return nil, nil, nil
	}
	prevCustoms := prev.Model.CustomFuncs()
	vecs, err := customVectors(ctx, prev, cfgn, prevCustoms)
	if err != nil {
		return nil, nil, err
	}
	oldIdx := make(map[uint32]int, len(prevCustoms))
	for i, f := range prevCustoms {
		oldIdx[f.Entry] = i
	}
	idx := make(map[uint32]int, len(plan.BFVSafe))
	for entry := range plan.BFVSafe {
		if j, ok := oldIdx[plan.FuncMap[entry]]; ok {
			idx[entry] = j
		}
	}
	return vecs, idx, nil
}

// TargetVectors returns a target's custom functions in model order together
// with their base representation vectors (before any feature ablation). The
// evolve package uses it to align renamed functions across firmware versions
// by vector similarity.
func TargetVectors(ctx context.Context, t *loader.Target, cfgn Config) ([]*cfg.Function, []bfv.Vector, error) {
	customs := t.Model.CustomFuncs()
	vecs, err := customVectors(ctx, t, cfgn, customs)
	if err != nil {
		return nil, nil, err
	}
	return customs, vecs, nil
}

// anchorVectors extracts representation vectors for every anchor
// implementation in the target's dependency libraries. For BFV the anchor's
// caller count also includes call sites in the target binary reaching the
// anchor's PLT stub, since the library alone understates how busy an anchor
// is. Extraction fans out across the pool; the returned order is the serial
// one (libraries by name, exports in table order) at any parallelism. With a
// cache the slice is memoized on the target's and its libraries' content
// hashes plus the representation.
func anchorVectors(ctx context.Context, t *loader.Target, cfgn Config) ([]bfv.Vector, error) {
	c := vectorCache(t, cfgn)
	if c == nil {
		return extractAnchorVectors(ctx, t, cfgn)
	}
	libs := make([]string, 0, len(t.LibHashes))
	for name := range t.LibHashes {
		libs = append(libs, name)
	}
	sort.Strings(libs)
	hashes := make([]modelcache.Hash, 0, len(libs)+1)
	hashes = append(hashes, t.Hash)
	for _, name := range libs {
		hashes = append(hashes, t.LibHashes[name])
	}
	key := modelcache.Key("anchors", vectorSig(t, cfgn), hashes...)
	return cachedVectors(c, key, func() ([]bfv.Vector, error) {
		if prev, ok := prevAnchorsReusable(t, cfgn); ok {
			return anchorVectors(ctx, prev, cfgn)
		}
		return extractAnchorVectors(ctx, t, cfgn)
	})
}

// prevAnchorsReusable reports whether the previous version's anchor vectors
// are provably identical to what extraction would produce for t: same
// libraries byte-for-byte, same model configuration, and — for BFV, whose
// anchor features fold in target-side call sites — an unchanged import-site
// profile as established by the reuse plan.
func prevAnchorsReusable(t *loader.Target, cfgn Config) (*loader.Target, bool) {
	if t.Prev == nil {
		return nil, false
	}
	prev := t.Prev.Target
	if t.ModelConfig != prev.ModelConfig || len(t.LibHashes) != len(prev.LibHashes) {
		return nil, false
	}
	//fitslint:ignore maporder order-independent: returns false iff any entry mismatches, same verdict in every order
	for name, h := range t.LibHashes {
		if h == (modelcache.Hash{}) || prev.LibHashes[name] != h {
			return nil, false
		}
	}
	if cfgn.Representation == RepBFV && (t.Prev.Plan == nil || !t.Prev.Plan.AnchorsSafe) {
		return nil, false
	}
	return prev, true
}

func extractAnchorVectors(ctx context.Context, t *loader.Target, cfgn Config) ([]bfv.Vector, error) {
	// Count target-side callers per import name.
	stubCallers := map[string]int{}
	for _, f := range t.Model.FuncsInOrder() {
		for _, cs := range f.Calls {
			if cs.ImportName != "" {
				stubCallers[cs.ImportName]++
			}
		}
	}
	libs := make([]string, 0, len(t.Libs))
	for name := range t.Libs {
		libs = append(libs, name)
	}
	sort.Strings(libs)
	// Enumerate extraction jobs serially (cheap), then extract in parallel.
	type anchorJob struct {
		ex    *bfv.Extractor
		bin   *binimg.Binary
		m     *cfg.Model
		f     *cfg.Function
		name  string
		arity int
	}
	var jobs []anchorJob
	for _, lib := range libs {
		bin := t.Libs[lib]
		m := t.LibModels[lib]
		ex := newExtractor(bin, m, cfgn)
		ex.ExtraCallers = map[uint32]int{}
		for _, e := range bin.Exports {
			if _, ok := t.Anchors[e.Name]; ok {
				ex.ExtraCallers[e.Addr] = stubCallers[e.Name]
			}
		}
		for _, e := range bin.Exports {
			arity, ok := t.Anchors[e.Name]
			if !ok {
				continue
			}
			f, ok := m.FuncAt(e.Addr)
			if !ok {
				continue
			}
			jobs = append(jobs, anchorJob{ex: ex, bin: bin, m: m, f: f, name: e.Name, arity: arity})
		}
	}
	out := make([]bfv.Vector, len(jobs))
	err := forEach(ctx, cfgn, len(jobs), func(i int) error {
		j := jobs[i]
		vec := vectorFor(cfgn.Representation, j.ex, j.bin, j.m, j.f)
		if cfgn.Representation == RepBFV {
			mergeTargetStrings(t, j.name, j.arity, cfgn.Intern, &vec)
		}
		out[i] = vec
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// mergeTargetStrings folds the target binary's call sites of an anchor's PLT
// stub into the anchor's interprocedural string features: an anchor is
// called from the whole firmware, not only from inside its own library.
func mergeTargetStrings(t *loader.Target, name string, arity int, tab *intern.Table, vec *bfv.Vector) {
	stub, ok := findStub(t.Bin, name)
	if !ok {
		return
	}
	sf := dataflow.CallSiteStringsInterned(t.Bin, t.Model, stub, arity, tab)
	if sf.ArgsContainString {
		(*vec)[bfv.FArgStrings] = 1
	}
	(*vec)[bfv.FNumStrings] += float64(len(sf.Strings))
}

func findStub(bin *binimg.Binary, name string) (uint32, bool) {
	for _, im := range bin.Imports {
		if im.Name == name {
			return im.Stub, true
		}
	}
	return 0, false
}

// InferTarget runs the full inference pipeline on one target.
func InferTarget(t *loader.Target, cfgn Config) *Ranking {
	//fitslint:ignore ctxflow context-free compatibility wrapper; cancellation-aware callers use InferTargetContext
	r, _ := InferTargetContext(context.Background(), t, cfgn)
	return r
}

// InferTargetContext is InferTarget with cancellation and bounded
// parallelism: per-function representation extraction — the pipeline's hot
// loop — fans out across cfgn.Parallelism goroutines, the context is checked
// before each function, and results assemble in function order, so the
// ranking is byte-identical at every worker count. The only error returned
// is the context's. With a cache the whole ranking is memoized on the
// target's and its libraries' content hashes plus every variant knob, so
// re-analyzing unchanged binaries — the common case in evolution diffs —
// skips clustering and scoring entirely.
func InferTargetContext(ctx context.Context, t *loader.Target, cfgn Config) (*Ranking, error) {
	c := vectorCache(t, cfgn)
	if c == nil {
		return inferTarget(ctx, t, cfgn)
	}
	libs := make([]string, 0, len(t.LibHashes))
	for name := range t.LibHashes {
		libs = append(libs, name)
	}
	sort.Strings(libs)
	hashes := make([]modelcache.Hash, 0, len(libs)+1)
	hashes = append(hashes, t.Hash)
	for _, name := range libs {
		hashes = append(hashes, t.LibHashes[name])
	}
	sig := fmt.Sprintf("%s|strategy=%s|metric=%s|drop=%d|eps=%g|minpts=%d|pca=%d",
		vectorSig(t, cfgn), cfgn.Strategy, cfgn.Metric, cfgn.DropFeature,
		cfgn.DBSCAN.Eps, cfgn.DBSCAN.MinPts, cfgn.PCAComponents)
	v, _, err := c.GetOrCompute(modelcache.Key("ranking", sig, hashes...), func() (any, int64, error) {
		r, err := inferTarget(ctx, t, cfgn)
		if err != nil {
			return nil, 0, err
		}
		core := rankingCore{
			Ranked:        r.Ranked,
			NumFuncs:      r.NumFuncs,
			NumCandidates: r.NumCandidates,
			NumAnchors:    r.NumAnchors,
		}
		return core, int64(len(r.Ranked))*16 + 64, nil
	})
	if err != nil {
		return nil, err
	}
	core := v.(rankingCore)
	return &Ranking{
		Path:          t.Path,
		Binary:        t.Bin.Name,
		Ranked:        append(make([]score.Ranked, 0, len(core.Ranked)), core.Ranked...),
		NumFuncs:      core.NumFuncs,
		NumCandidates: core.NumCandidates,
		NumAnchors:    core.NumAnchors,
	}, nil
}

// rankingCore is the cacheable part of a Ranking: everything except the
// path, which is a property of the image layout rather than the binary's
// content and is filled in fresh on every cache hit.
type rankingCore struct {
	Ranked        []score.Ranked
	NumFuncs      int
	NumCandidates int
	NumAnchors    int
}

func inferTarget(ctx context.Context, t *loader.Target, cfgn Config) (*Ranking, error) {
	customs := t.Model.CustomFuncs()
	base, err := customVectors(ctx, t, cfgn, customs)
	if err != nil {
		return nil, err
	}
	points := make([]cluster.Point, len(customs))
	for i, f := range customs {
		points[i] = cluster.Point{Entry: f.Entry, Vec: base[i]}
	}
	anchors, err := anchorVectors(ctx, t, cfgn)
	if err != nil {
		return nil, err
	}

	if cfgn.DropFeature >= 0 && cfgn.DropFeature < bfv.Dim {
		for i := range points {
			points[i].Vec = points[i].Vec.Drop(cfgn.DropFeature)
		}
		for i := range anchors {
			anchors[i] = anchors[i].Drop(cfgn.DropFeature)
		}
	}

	rank := &Ranking{
		Path:       t.Path,
		Binary:     t.Bin.Name,
		NumFuncs:   len(customs),
		NumAnchors: len(anchors),
	}

	// Candidate selection.
	cands := map[uint32]bfv.Vector{}
	switch cfgn.Strategy {
	case StrategyCluster:
		for _, e := range cluster.Candidates(points, cfgn.DBSCAN) {
			for _, p := range points {
				if p.Entry == e {
					cands[e] = p.Vec
				}
			}
		}
	case StrategyPCA, StrategyStandardize, StrategyNormalize:
		// Fit the transform on candidates and anchors together so scores
		// remain comparable, then score everything (no filtering).
		all := make([]bfv.Vector, 0, len(points)+len(anchors))
		for _, p := range points {
			all = append(all, p.Vec)
		}
		all = append(all, anchors...)
		var tr []bfv.Vector
		switch cfgn.Strategy {
		case StrategyPCA:
			tr = cluster.PCA(all, cfgn.PCAComponents)
		case StrategyStandardize:
			tr = cluster.Standardize(all)
		default:
			tr = cluster.Normalize(all)
		}
		for i, p := range points {
			cands[p.Entry] = tr[i]
		}
		anchors = tr[len(points):]
	default: // StrategyNone
		for _, p := range points {
			cands[p.Entry] = p.Vec
		}
	}
	rank.NumCandidates = len(cands)
	rank.Ranked = score.Rank(cfgn.Metric, cands, anchors)
	return rank, nil
}

// InferAll runs inference on every target of a loaded firmware.
func InferAll(res *loader.Result, cfgn Config) []*Ranking {
	//fitslint:ignore ctxflow context-free compatibility wrapper; cancellation-aware callers use InferAllContext
	out, _ := InferAllContext(context.Background(), res, cfgn)
	return out
}

// InferAllContext runs inference on every target, fanning targets out across
// the pool on top of the per-function parallelism inside each target.
// Rankings are returned in target order regardless of completion order.
func InferAllContext(ctx context.Context, res *loader.Result, cfgn Config) ([]*Ranking, error) {
	out := make([]*Ranking, len(res.Targets))
	err := forEach(ctx, cfgn, len(res.Targets), func(i int) error {
		r, err := InferTargetContext(ctx, res.Targets[i], cfgn)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AnchorVectorsForTest exposes anchor vector extraction to corpus-tuning
// tests.
func AnchorVectorsForTest(t *loader.Target) []bfv.Vector {
	//fitslint:ignore ctxflow test-only helper; corpus-tuning tests need no cancellation
	out, _ := anchorVectors(context.Background(), t, DefaultConfig())
	return out
}
