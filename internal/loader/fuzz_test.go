package loader

// Fuzz coverage for the firmware entry point: Load must turn arbitrary
// bytes into an error, never a panic, no matter how mangled the container,
// filesystem, or embedded binaries are. Seeds come from real packed images
// produced by the synthetic firmware generator.

import (
	"testing"

	"fits/internal/synth"
)

func FuzzLoad(f *testing.F) {
	specs := synth.Dataset()
	for _, idx := range []int{0, 42} {
		if idx >= len(specs) {
			continue
		}
		s, err := synth.Generate(specs[idx])
		if err != nil {
			f.Fatalf("synth: %v", err)
		}
		f.Add(s.Packed)
		if len(s.Packed) > 256 {
			f.Add(s.Packed[:256]) // header plus a ragged tail
		}
	}
	f.Add([]byte{})
	f.Add([]byte("FWIMG"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// SkipResolver keeps per-input cost down; the parsing and CFG
		// recovery paths being hardened here run either way.
		res, err := Load(data, Options{SkipResolver: true})
		if err == nil && res == nil {
			t.Error("Load returned nil result and nil error")
		}
	})
}
