package loader

import (
	"errors"
	"testing"

	"fits/internal/firmware"
	"fits/internal/know"
	"fits/internal/synth"
)

func generate(t *testing.T, idx int) *synth.Sample {
	t.Helper()
	s, err := synth.Generate(synth.Dataset()[idx])
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadSelectsNetworkBinary(t *testing.T) {
	s := generate(t, 0) // NETGEAR
	res, err := Load(s.Packed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// NETGEAR samples carry two network binaries (httpd + netcgi).
	if len(res.Targets) != len(s.Manifest.NetBinaries) {
		t.Fatalf("targets = %d, want %d", len(res.Targets), len(s.Manifest.NetBinaries))
	}
	tg := res.Targets[0]
	if tg.Path != s.Manifest.NetBinaries[0] {
		t.Errorf("path = %q, want %q", tg.Path, s.Manifest.NetBinaries[0])
	}
	if tg.Model == nil || len(tg.Model.Funcs) < 100 {
		t.Error("model missing or too small")
	}
	if _, ok := tg.Libs["libc.so"]; !ok {
		t.Error("libc dependency not resolved")
	}
	if _, ok := tg.LibModels["libc.so"]; !ok {
		t.Error("libc model not built")
	}
}

func TestAnchorsIdentified(t *testing.T) {
	s := generate(t, 0)
	res, err := Load(s.Packed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tg := res.Targets[0]
	if len(tg.Anchors) < 8 {
		t.Errorf("anchors = %d, want >= 8", len(tg.Anchors))
	}
	for name, arity := range tg.Anchors {
		want, ok := know.Anchors[name]
		if !ok {
			t.Errorf("non-anchor %q identified", name)
		}
		if arity != want {
			t.Errorf("%s arity = %d, want %d", name, arity, want)
		}
	}
	entries := tg.AnchorEntries()
	if len(entries["libc.so"]) != len(tg.Anchors) {
		t.Errorf("anchor entries = %d, want %d", len(entries["libc.so"]), len(tg.Anchors))
	}
}

func TestPreprocessMissReturnsErrNoTargets(t *testing.T) {
	var spec synth.SampleSpec
	for _, s := range synth.Dataset() {
		if s.FailureMode == "preprocess-miss" {
			spec = s
			break
		}
	}
	sample, err := synth.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(sample.Packed, Options{})
	if !errors.Is(err, ErrNoTargets) {
		t.Errorf("err = %v, want ErrNoTargets", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load([]byte("not a firmware image"), Options{}); err == nil {
		t.Error("expected unpack error")
	}
}

func TestLoadImageDirect(t *testing.T) {
	s := generate(t, 20) // D-Link (XOR-encoded when packed)
	res, err := LoadImage(s.Image, Options{SkipResolver: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) != 1 {
		t.Fatalf("targets = %d", len(res.Targets))
	}
	if res.Scheme != firmware.SchemeNone {
		t.Errorf("scheme = %v", res.Scheme)
	}
}

func TestSchemeDetectionOnPacked(t *testing.T) {
	s := generate(t, 20) // D-Link uses XOR wrapping
	res, err := Load(s.Packed, Options{SkipResolver: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != s.Manifest.Scheme {
		t.Errorf("scheme = %v, want %v", res.Scheme, s.Manifest.Scheme)
	}
}

func TestResolverCompletesDispatch(t *testing.T) {
	s := generate(t, 0)
	with, err := Load(s.Packed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Load(s.Packed, Options{SkipResolver: true})
	if err != nil {
		t.Fatal(err)
	}
	count := func(r *Result) int {
		n := 0
		for _, f := range r.Targets[0].Model.FuncsInOrder() {
			for _, cs := range f.Calls {
				if cs.Indirect && cs.Target != 0 {
					n++
				}
			}
		}
		return n
	}
	if count(with) == 0 {
		t.Error("resolver resolved no indirect calls")
	}
	if count(without) != 0 {
		t.Error("indirect calls resolved without resolver")
	}
}

func TestExecutablePathClassification(t *testing.T) {
	cases := map[string]bool{
		"bin/httpd":      true,
		"usr/sbin/httpd": true,
		"usr/bin/prog":   true,
		"lib/libc.so":    false,
		"bin/libhack.so": false,
		"etc/version":    false,
		"www/index.html": false,
		"deep/bin/httpd": false,
	}
	for p, want := range cases {
		if got := isExecutablePath(p); got != want {
			t.Errorf("isExecutablePath(%q) = %v, want %v", p, got, want)
		}
	}
}

func TestTargetsDeterministicOrder(t *testing.T) {
	s := generate(t, 0)
	a, err := Load(s.Packed, Options{SkipResolver: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(s.Packed, Options{SkipResolver: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Targets) != len(b.Targets) {
		t.Fatal("target count differs")
	}
	for i := range a.Targets {
		if a.Targets[i].Path != b.Targets[i].Path {
			t.Error("target order not deterministic")
		}
	}
}
