// Package loader implements the pre-processing stage: it unpacks a firmware
// image, selects the binaries that export network services (by their
// interface-function imports, the PIE-style heuristic), resolves their
// dependency libraries, identifies anchor functions among the libraries'
// dynamic symbols, and builds whole-binary models with UCSE-backed indirect
// call resolution.
//
// Model building fans out across a bounded goroutine pool (Options.
// Parallelism) and deduplicates work: each dependency library's model is
// built once and shared read-only by every target that needs it. Output is
// deterministic regardless of worker count — targets are assembled in
// ascending path order.
package loader

import (
	"context"
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync/atomic"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/firmware"
	"fits/internal/intern"
	"fits/internal/know"
	"fits/internal/modelcache"
	"fits/internal/pool"
	"fits/internal/stagetime"
	"fits/internal/ucse"
)

// ErrNoTargets is returned when no binary in the image exports network
// services — the pre-processing failure mode behind four of the paper's six
// inference misses.
var ErrNoTargets = errors.New("loader: no network binaries found")

// Target is one selected network binary with its analysis context.
type Target struct {
	Path  string
	Bin   *binimg.Binary
	Model *cfg.Model
	// Libs maps needed library file names to their decoded binaries;
	// LibModels holds their whole-binary models. Library models are shared
	// between targets needing the same library and must be treated as
	// read-only.
	Libs      map[string]*binimg.Binary
	LibModels map[string]*cfg.Model
	// Anchors maps anchor function names exported by the dependency
	// libraries to their arity.
	Anchors map[string]int
	// Hash is the content hash of the target binary's bytes and LibHashes
	// the hashes of its resolved libraries, keyed by library name. Both are
	// populated only when loading ran with a cache; downstream stages use
	// them to address derived artifacts (feature vectors) by content.
	Hash      modelcache.Hash
	LibHashes map[string]modelcache.Hash
	// ModelConfig is the configuration label under which the model was built
	// ("ucse=1"/"ucse=0"); derived-artifact cache keys include it so that
	// models built with different resolver settings never share vectors.
	ModelConfig string
	// Prev links this target to its previous-version counterpart when the
	// load ran with Options.Prev; nil otherwise.
	Prev *PrevTarget
}

// PrevTarget is the previous-version context of a target: the old target
// (matched by path) plus what the incremental build learned about the pair.
type PrevTarget struct {
	// Target is the old-version target at the same filesystem path.
	Target *Target
	// Plan is the reuse plan that guided the incremental model build; nil
	// when the binaries are identical or the new model came from the cache.
	Plan *cfg.ReusePlan
	// Identical reports the two binaries are byte-identical (equal content
	// hashes), the strongest reuse tier.
	Identical bool
	// CachedModel reports the new model was served whole from the cache, so
	// no incremental build ran.
	CachedModel bool
}

// AnchorEntries returns (library name, export address) pairs for every
// anchor implementation available to this target.
func (t *Target) AnchorEntries() map[string][]uint32 {
	out := map[string][]uint32{}
	for lib, bin := range t.Libs {
		for _, e := range bin.Exports {
			if know.IsAnchor(e.Name) {
				out[lib] = append(out[lib], e.Addr)
			}
		}
	}
	return out
}

// Result is the outcome of pre-processing one firmware image.
type Result struct {
	Image   *firmware.Image
	Scheme  firmware.Scheme
	Targets []*Target
	// Lifted counts whole-binary models built fresh during this load;
	// Reused counts models served from the cache. Without a cache every
	// model is lifted.
	Lifted int
	Reused int
}

// Options configures loading.
type Options struct {
	// SkipResolver disables UCSE indirect-call resolution (faster, less
	// complete call graphs).
	SkipResolver bool
	// AllExecutables selects every executable-location binary as a target
	// instead of only those importing network interfaces. Corpus-wide
	// cross-binary analysis needs this: back-end readers (nvram consumers,
	// spawned helpers) typically have no network imports at all.
	AllExecutables bool
	// KeepUnstripped retains debug symbols if present (test corpora).
	KeepUnstripped bool
	// Parallelism bounds the goroutines building binary models;
	// 0 means runtime.GOMAXPROCS(0).
	Parallelism int
	// Cache memoizes decoded binaries and whole-binary models across loads,
	// addressed by the SHA-256 of the binary's bytes plus the resolver
	// configuration. Cached values are shared read-only; concurrent loads of
	// the same content deduplicate the build. Nil disables caching.
	Cache *modelcache.Cache
	// Prev supplies the targets of a previous firmware version. A target at
	// the same path guides the new model build: unchanged or uniformly
	// shifted functions are replayed from the old model instead of being
	// recovered from scratch, and the resulting Target.Prev records what was
	// reused so later stages can skip redundant work. Requires Cache (the
	// reuse bookkeeping rides on content hashes); ignored without one. The
	// output remains byte-identical to a cold load.
	Prev []*Target
	// Sched, when non-nil, draws the model-building fan-out from a shared
	// corpus-level worker budget instead of sizing a per-call pool from
	// Parallelism; batched corpus runs hand one scheduler to every load.
	Sched *pool.Scheduler
	// Intern canonicalizes strings materialized while decoding binaries
	// (symbol, import and library names repeated across binaries); nil
	// disables interning. With a cache, a binary decoded earlier keeps
	// whatever backing its first decode produced — contents are identical
	// either way.
	Intern *intern.Table
	// Stages, when non-nil, accumulates per-stage wall-clock and allocation
	// costs of this load: Decode (unpack + container decode), Lift (function
	// recovery) and CFG (the rest of model building). Allocation attribution
	// is only exact at Parallelism 1.
	Stages *stagetime.Timer
}

// executableDirs are filesystem locations treated as holding executables.
var executableDirs = map[string]bool{
	"bin": true, "sbin": true, "usr/bin": true, "usr/sbin": true, "www/cgi-bin": true,
}

// isExecutablePath reports whether the path denotes an executable location
// (libraries live elsewhere and are only analyzed as dependencies).
func isExecutablePath(p string) bool {
	dir := path.Dir(p)
	return executableDirs[dir] && !strings.HasSuffix(p, ".so")
}

// Load unpacks raw firmware bytes and prepares every network target.
func Load(raw []byte, opts Options) (*Result, error) {
	//fitslint:ignore ctxflow context-free compatibility wrapper; cancellation-aware callers use LoadContext
	return LoadContext(context.Background(), raw, opts)
}

// LoadContext is Load with cancellation: the context is checked between (and
// inside) per-binary model builds, so loading a large image can be aborted.
func LoadContext(ctx context.Context, raw []byte, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	unpackDone := opts.Stages.Span(stagetime.Decode)
	img, err := firmware.Unpack(raw)
	unpackDone()
	if err != nil {
		return nil, fmt.Errorf("loader: unpack: %w", err)
	}
	res := &Result{Image: img, Scheme: firmware.DetectScheme(raw)}
	if err := res.load(ctx, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// LoadImage prepares targets from an already unpacked image.
func LoadImage(img *firmware.Image, opts Options) (*Result, error) {
	//fitslint:ignore ctxflow context-free compatibility wrapper; cancellation-aware callers use LoadImageContext
	return LoadImageContext(context.Background(), img, opts)
}

// LoadImageContext is LoadImage with cancellation.
func LoadImageContext(ctx context.Context, img *firmware.Image, opts Options) (*Result, error) {
	res := &Result{Image: img, Scheme: firmware.SchemeNone}
	if err := res.load(ctx, opts); err != nil {
		return nil, err
	}
	return res, nil
}

func (res *Result) load(ctx context.Context, opts Options) error {
	img := res.Image
	// Decode every binary in the filesystem. With a cache, decoding is
	// memoized on the file's content hash: decoded binaries are immutable
	// downstream, so one decode serves every image embedding the same file.
	bins := map[string]*binimg.Binary{}
	hashes := map[string]modelcache.Hash{}
	decodeDone := opts.Stages.Span(stagetime.Decode)
	for _, f := range img.Files {
		if !binimg.IsBinary(f.Data) {
			continue
		}
		if opts.Cache == nil {
			b, err := binimg.DecodeIntern(f.Data, opts.Intern)
			if err != nil {
				continue // corrupt binaries are skipped, as binwalk-style tools do
			}
			bins[f.Path] = b
			continue
		}
		h := modelcache.HashBytes(f.Data)
		data := f.Data
		v, _, err := opts.Cache.GetOrCompute(modelcache.Key("bin", "", h), func() (any, int64, error) {
			b, err := binimg.DecodeIntern(data, opts.Intern)
			if err != nil {
				return nil, 0, err
			}
			return b, int64(len(data)), nil
		})
		if err != nil {
			continue
		}
		bins[f.Path] = v.(*binimg.Binary)
		hashes[f.Path] = h
	}
	decodeDone()

	// Index libraries by base name for dependency resolution.
	libByName := map[string]*binimg.Binary{}
	libHashByName := map[string]modelcache.Hash{}
	for p, b := range bins {
		base := path.Base(p)
		if strings.HasSuffix(base, ".so") {
			libByName[base] = b
			libHashByName[base] = hashes[p]
		}
	}

	resolver := cfg.IndirectResolver(nil)
	jumpResolver := cfg.JumpTableResolver(nil)
	if !opts.SkipResolver {
		resolver = ucse.Resolver()
		jumpResolver = ucse.JumpResolver()
	}
	cfgOpts := cfg.Options{Resolver: resolver, JumpResolver: jumpResolver}
	// With a stage timer, builds report how their cost splits between
	// lifting and the rest of model construction; the shared BuildStats is
	// folded into the timer once the fan-out below drains.
	var buildStats cfg.BuildStats
	if opts.Stages != nil {
		cfgOpts.Clock = stagetime.Clock
		cfgOpts.AllocCount = stagetime.AllocCount
		cfgOpts.Stats = &buildStats
	}

	// Select the network targets, in deterministic path order.
	var targetPaths []string
	for p, b := range bins {
		if isExecutablePath(p) && (opts.AllExecutables || importsNetwork(b)) {
			targetPaths = append(targetPaths, p)
		}
	}
	if len(targetPaths) == 0 {
		return ErrNoTargets
	}
	sort.Strings(targetPaths)

	// Collect the libraries any target needs; each is modeled exactly once
	// and shared read-only across targets.
	var libNames []string
	libSeen := map[string]bool{}
	for _, p := range targetPaths {
		for _, need := range bins[p].Needed {
			if libSeen[need] {
				continue
			}
			if _, ok := libByName[need]; !ok {
				continue // missing library; analysis proceeds without it
			}
			libSeen[need] = true
			libNames = append(libNames, need)
		}
	}
	sort.Strings(libNames)

	// Build every model in one fan-out: targets first, then libraries. Each
	// job writes only its own slot, so assembly below is order-independent.
	// With a cache, each build is memoized on the binary's content hash plus
	// the resolver configuration; the singleflight layer ensures one build
	// per distinct binary even when loads race.
	type job struct {
		name string // diagnostic label: path for targets, file name for libs
		bin  *binimg.Binary
		hash modelcache.Hash
		prev *Target // previous-version counterpart, targets only
	}
	prevByPath := map[string]*Target{}
	if opts.Cache != nil {
		for _, pt := range opts.Prev {
			if pt != nil && pt.Bin != nil && pt.Model != nil {
				prevByPath[pt.Path] = pt
			}
		}
	}
	jobs := make([]job, 0, len(targetPaths)+len(libNames))
	for _, p := range targetPaths {
		jobs = append(jobs, job{name: p, bin: bins[p], hash: hashes[p], prev: prevByPath[p]})
	}
	for _, name := range libNames {
		jobs = append(jobs, job{name: name, bin: libByName[name], hash: libHashByName[name]})
	}
	modelCfg := "ucse=1"
	if opts.SkipResolver {
		modelCfg = "ucse=0"
	}
	models := make([]*cfg.Model, len(jobs))
	plans := make([]*cfg.ReusePlan, len(jobs))
	cachedModel := make([]bool, len(jobs))
	var reused atomic.Int64
	buildJob := func(i int) error {
		if opts.Cache == nil {
			m, err := cfg.Build(jobs[i].bin, cfgOpts)
			if err != nil {
				return fmt.Errorf("loader: %s: %w", jobs[i].name, err)
			}
			models[i] = m
			return nil
		}
		v, hit, err := opts.Cache.GetOrCompute(
			modelcache.Key("model", modelCfg, jobs[i].hash),
			func() (any, int64, error) {
				buildOpts := cfgOpts
				// A changed previous version guides the build; an identical
				// one never reaches this closure (same hash, same key, so the
				// old model is already cached under it).
				if prev := jobs[i].prev; prev != nil && prev.Hash != jobs[i].hash {
					plan := cfg.NewReusePlan(prev.Bin, prev.Model, jobs[i].bin)
					buildOpts.FuncSource = plan.Source
					m, err := cfg.Build(jobs[i].bin, buildOpts)
					if err != nil {
						return nil, 0, err
					}
					plan.Finalize(m)
					plans[i] = plan
					return m, modelCost(jobs[i].bin), nil
				}
				m, err := cfg.Build(jobs[i].bin, buildOpts)
				if err != nil {
					return nil, 0, err
				}
				return m, modelCost(jobs[i].bin), nil
			})
		if err != nil {
			return fmt.Errorf("loader: %s: %w", jobs[i].name, err)
		}
		if hit {
			reused.Add(1)
			cachedModel[i] = true
			// The model came from the cache, so no plan guided its build;
			// align one against it anyway (validation only, no relift) so
			// function pairing and reuse accounting match what a cache-miss
			// load would have recorded.
			if prev := jobs[i].prev; prev != nil && prev.Hash != jobs[i].hash && plans[i] == nil {
				plan := cfg.NewReusePlan(prev.Bin, prev.Model, jobs[i].bin)
				plan.Align(v.(*cfg.Model))
				plan.Finalize(v.(*cfg.Model))
				plans[i] = plan
			}
		}
		models[i] = v.(*cfg.Model)
		return nil
	}
	var err error
	if opts.Sched != nil {
		err = opts.Sched.ForEach(ctx, len(jobs), buildJob)
	} else {
		err = pool.ForEach(ctx, opts.Parallelism, len(jobs), buildJob)
	}
	if opts.Stages != nil {
		opts.Stages.Add(stagetime.Lift, buildStats.LiftNanos.Load())
		opts.Stages.AddAllocs(stagetime.Lift, buildStats.LiftAllocs.Load())
		opts.Stages.Add(stagetime.CFG, buildStats.TotalNanos.Load()-buildStats.LiftNanos.Load())
		opts.Stages.AddAllocs(stagetime.CFG, buildStats.TotalAllocs.Load()-buildStats.LiftAllocs.Load())
	}
	if err != nil {
		return err
	}
	res.Reused = int(reused.Load())
	res.Lifted = len(jobs) - res.Reused

	libModels := map[string]*cfg.Model{}
	for i, name := range libNames {
		libModels[name] = models[len(targetPaths)+i]
	}
	for i, p := range targetPaths {
		b := bins[p]
		t := &Target{
			Path:        p,
			Bin:         b,
			Model:       models[i],
			Libs:        map[string]*binimg.Binary{},
			LibModels:   map[string]*cfg.Model{},
			Anchors:     map[string]int{},
			Hash:        hashes[p],
			LibHashes:   map[string]modelcache.Hash{},
			ModelConfig: modelCfg,
		}
		if pt := jobs[i].prev; pt != nil {
			t.Prev = &PrevTarget{
				Target:      pt,
				Plan:        plans[i],
				Identical:   pt.Hash == t.Hash,
				CachedModel: cachedModel[i],
			}
		}
		for _, need := range b.Needed {
			lib, ok := libByName[need]
			if !ok {
				continue
			}
			t.Libs[need] = lib
			t.LibModels[need] = libModels[need]
			t.LibHashes[need] = libHashByName[need]
			for _, e := range lib.Exports {
				if arity, ok := know.Anchors[e.Name]; ok {
					t.Anchors[e.Name] = arity
				}
			}
		}
		res.Targets = append(res.Targets, t)
	}
	return nil
}

// modelCost estimates the resident size of a whole-binary model for the
// cache's byte budget: models hold lifted IR and CFG metadata for the text
// section, which in practice runs about an order of magnitude larger than
// the section itself.
func modelCost(b *binimg.Binary) int64 {
	return 1024 + 10*int64(len(b.Text.Data))
}

// importsNetwork reports whether the binary imports any interface function.
func importsNetwork(b *binimg.Binary) bool {
	for _, im := range b.Imports {
		if know.NetworkImports[im.Name] {
			return true
		}
	}
	return false
}
