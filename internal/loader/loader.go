// Package loader implements the pre-processing stage: it unpacks a firmware
// image, selects the binaries that export network services (by their
// interface-function imports, the PIE-style heuristic), resolves their
// dependency libraries, identifies anchor functions among the libraries'
// dynamic symbols, and builds whole-binary models with UCSE-backed indirect
// call resolution.
package loader

import (
	"errors"
	"fmt"
	"path"
	"strings"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/firmware"
	"fits/internal/know"
	"fits/internal/ucse"
)

// ErrNoTargets is returned when no binary in the image exports network
// services — the pre-processing failure mode behind four of the paper's six
// inference misses.
var ErrNoTargets = errors.New("loader: no network binaries found")

// Target is one selected network binary with its analysis context.
type Target struct {
	Path  string
	Bin   *binimg.Binary
	Model *cfg.Model
	// Libs maps needed library file names to their decoded binaries;
	// LibModels holds their whole-binary models.
	Libs      map[string]*binimg.Binary
	LibModels map[string]*cfg.Model
	// Anchors maps anchor function names exported by the dependency
	// libraries to their arity.
	Anchors map[string]int
}

// AnchorEntries returns (library name, export address) pairs for every
// anchor implementation available to this target.
func (t *Target) AnchorEntries() map[string][]uint32 {
	out := map[string][]uint32{}
	for lib, bin := range t.Libs {
		for _, e := range bin.Exports {
			if know.IsAnchor(e.Name) {
				out[lib] = append(out[lib], e.Addr)
			}
		}
	}
	return out
}

// Result is the outcome of pre-processing one firmware image.
type Result struct {
	Image   *firmware.Image
	Scheme  firmware.Scheme
	Targets []*Target
}

// Options configures loading.
type Options struct {
	// SkipResolver disables UCSE indirect-call resolution (faster, less
	// complete call graphs).
	SkipResolver bool
	// KeepUnstripped retains debug symbols if present (test corpora).
	KeepUnstripped bool
}

// executableDirs are filesystem locations treated as holding executables.
var executableDirs = map[string]bool{
	"bin": true, "sbin": true, "usr/bin": true, "usr/sbin": true, "www/cgi-bin": true,
}

// isExecutablePath reports whether the path denotes an executable location
// (libraries live elsewhere and are only analyzed as dependencies).
func isExecutablePath(p string) bool {
	dir := path.Dir(p)
	return executableDirs[dir] && !strings.HasSuffix(p, ".so")
}

// Load unpacks raw firmware bytes and prepares every network target.
func Load(raw []byte, opts Options) (*Result, error) {
	img, err := firmware.Unpack(raw)
	if err != nil {
		return nil, fmt.Errorf("loader: unpack: %w", err)
	}
	res := &Result{Image: img, Scheme: firmware.DetectScheme(raw)}
	if err := res.load(opts); err != nil {
		return nil, err
	}
	return res, nil
}

// LoadImage prepares targets from an already unpacked image.
func LoadImage(img *firmware.Image, opts Options) (*Result, error) {
	res := &Result{Image: img, Scheme: firmware.SchemeNone}
	if err := res.load(opts); err != nil {
		return nil, err
	}
	return res, nil
}

func (res *Result) load(opts Options) error {
	img := res.Image
	// Decode every binary in the filesystem.
	bins := map[string]*binimg.Binary{}
	for _, f := range img.Files {
		if !binimg.IsBinary(f.Data) {
			continue
		}
		b, err := binimg.Decode(f.Data)
		if err != nil {
			continue // corrupt binaries are skipped, as binwalk-style tools do
		}
		bins[f.Path] = b
	}

	// Index libraries by base name for dependency resolution.
	libByName := map[string]*binimg.Binary{}
	for p, b := range bins {
		base := path.Base(p)
		if strings.HasSuffix(base, ".so") {
			libByName[base] = b
		}
	}

	resolver := cfg.IndirectResolver(nil)
	jumpResolver := cfg.JumpTableResolver(nil)
	if !opts.SkipResolver {
		resolver = ucse.Resolver()
		jumpResolver = ucse.JumpResolver()
	}

	for p, b := range bins {
		if !isExecutablePath(p) {
			continue
		}
		if !importsNetwork(b) {
			continue
		}
		t := &Target{
			Path:      p,
			Bin:       b,
			Libs:      map[string]*binimg.Binary{},
			LibModels: map[string]*cfg.Model{},
			Anchors:   map[string]int{},
		}
		model, err := cfg.Build(b, cfg.Options{Resolver: resolver, JumpResolver: jumpResolver})
		if err != nil {
			return fmt.Errorf("loader: %s: %w", p, err)
		}
		t.Model = model
		for _, need := range b.Needed {
			lib, ok := libByName[need]
			if !ok {
				continue // missing library; analysis proceeds without it
			}
			t.Libs[need] = lib
			lm, err := cfg.Build(lib, cfg.Options{Resolver: resolver, JumpResolver: jumpResolver})
			if err != nil {
				return fmt.Errorf("loader: %s: %w", need, err)
			}
			t.LibModels[need] = lm
			for _, e := range lib.Exports {
				if arity, ok := know.Anchors[e.Name]; ok {
					t.Anchors[e.Name] = arity
				}
			}
		}
		res.Targets = append(res.Targets, t)
	}
	if len(res.Targets) == 0 {
		return ErrNoTargets
	}
	// Deterministic target order.
	for i := 0; i < len(res.Targets); i++ {
		for j := i + 1; j < len(res.Targets); j++ {
			if res.Targets[j].Path < res.Targets[i].Path {
				res.Targets[i], res.Targets[j] = res.Targets[j], res.Targets[i]
			}
		}
	}
	return nil
}

// importsNetwork reports whether the binary imports any interface function.
func importsNetwork(b *binimg.Binary) bool {
	for _, im := range b.Imports {
		if know.NetworkImports[im.Name] {
			return true
		}
	}
	return false
}
