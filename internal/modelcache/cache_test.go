package modelcache

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func computeConst(v int, cost int64) func() (any, int64, error) {
	return func() (any, int64, error) { return v, cost, nil }
}

func TestHitMissAndStats(t *testing.T) {
	c := New(8, 1<<20)
	v, hit, err := c.GetOrCompute("a", computeConst(1, 10))
	if err != nil || hit || v.(int) != 1 {
		t.Fatalf("first get: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.GetOrCompute("a", computeConst(2, 10))
	if err != nil || !hit || v.(int) != 1 {
		t.Fatalf("second get must hit with original value: v=%v hit=%v err=%v", v, hit, err)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != 10 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry, 10 bytes", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
}

func TestLRUEvictionByEntryCount(t *testing.T) {
	c := New(3, 1<<20)
	for i := 0; i < 3; i++ {
		c.GetOrCompute(fmt.Sprintf("k%d", i), computeConst(i, 1))
	}
	// Touch k0 so k1 is the least recently used.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.GetOrCompute("k3", computeConst(3, 1))
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be resident", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Errorf("stats = %+v, want 1 eviction, 3 entries", s)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	c := New(100, 100)
	c.GetOrCompute("a", computeConst(1, 60))
	c.GetOrCompute("b", computeConst(2, 60)) // 120 bytes > 100: evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("a should have been evicted to meet the byte budget")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b should be resident")
	}
	if s := c.Stats(); s.Bytes != 60 {
		t.Errorf("bytes = %d, want 60", s.Bytes)
	}
	// An oversized entry is retained alone rather than thrashing.
	c.GetOrCompute("huge", computeConst(3, 500))
	if _, ok := c.Get("huge"); !ok {
		t.Error("oversized entry should be resident until displaced")
	}
}

func TestSingleflightUnderConcurrentLoad(t *testing.T) {
	c := New(8, 1<<20)
	var computes atomic.Int64
	var release = make(chan struct{})
	const workers = 32
	var wg sync.WaitGroup
	results := make([]int, workers)
	hits := make([]bool, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, hit, err := c.GetOrCompute("model", func() (any, int64, error) {
				computes.Add(1)
				<-release // hold every other caller in the join path
				return 42, 8, nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			results[w] = v.(int)
			hits[w] = hit
		}(w)
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want exactly 1 (singleflight)", n)
	}
	misses := 0
	for w := 0; w < workers; w++ {
		if results[w] != 42 {
			t.Errorf("worker %d got %d, want 42", w, results[w])
		}
		if !hits[w] {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d workers reported a miss, want exactly 1", misses)
	}
}

func TestErrorsPropagateAndAreNotCached(t *testing.T) {
	c := New(8, 1<<20)
	boom := errors.New("lift failed")
	_, _, err := c.GetOrCompute("bad", func() (any, int64, error) { return nil, 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want propagated compute error", err)
	}
	if c.Len() != 0 {
		t.Error("failed computation must not be cached")
	}
	v, hit, err := c.GetOrCompute("bad", computeConst(7, 1))
	if err != nil || hit || v.(int) != 7 {
		t.Errorf("retry after error: v=%v hit=%v err=%v, want fresh compute", v, hit, err)
	}
}

func TestKeyConfigVersionInvalidation(t *testing.T) {
	c := New(8, 1<<20)
	h := HashBytes([]byte("binary-bytes"))
	old := "model|v0|ucse=1|" + hex.EncodeToString(h[:]) // stale-epoch key
	cur := Key("model", "ucse=1", h)
	if old == cur {
		t.Fatal("stale and current keys must differ")
	}
	c.GetOrCompute(old, computeConst(1, 1))
	// A config-version bump changes every key, so the old entry is simply
	// never addressed again.
	if _, hit, _ := c.GetOrCompute(cur, computeConst(2, 1)); hit {
		t.Error("current-epoch key must miss entries written under another epoch")
	}
	v, _ := c.Get(cur)
	if v.(int) != 2 {
		t.Errorf("current epoch value = %v, want 2", v)
	}
}

func TestKeySeparatesKindsConfigsAndContent(t *testing.T) {
	h1 := HashBytes([]byte("a"))
	h2 := HashBytes([]byte("b"))
	keys := []string{
		Key("model", "ucse=1", h1),
		Key("model", "ucse=0", h1),
		Key("model", "ucse=1", h2),
		Key("bfv", "ucse=1", h1),
		Key("model", "ucse=1", h1, h2),
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Errorf("key collision: %s", k)
		}
		seen[k] = true
	}
	if Key("model", "ucse=1", h1) != keys[0] {
		t.Error("identical inputs must produce identical keys")
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	c := New(16, 1<<20)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w+i)%24) // more keys than capacity: forces eviction under load
				v, _, err := c.GetOrCompute(k, computeConst((w+i)%24, 64))
				if err != nil {
					t.Errorf("GetOrCompute: %v", err)
					return
				}
				if v.(int) != (w+i)%24 {
					t.Errorf("key %s: got %v", k, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("entries = %d, want <= 16", c.Len())
	}
}
