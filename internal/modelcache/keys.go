package modelcache

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"
)

// ConfigVersion is the analysis-config epoch baked into every key. Bump it
// whenever a change anywhere in the modeling or feature-extraction pipeline
// can alter results for the same input bytes (lifter semantics, CFG recovery,
// BFV features, dataflow lattice); stale entries from the previous epoch then
// simply stop being addressable and age out of the LRU.
const ConfigVersion = 1

// Hash is the content address of a byte string.
type Hash = [sha256.Size]byte

// HashBytes returns the SHA-256 content address of data.
func HashBytes(data []byte) Hash { return sha256.Sum256(data) }

// Key builds a cache key: kind and config identify what was computed and
// under which knobs, the hashes identify every input the computation read.
// The ConfigVersion is always included, so bumping it invalidates everything.
func Key(kind, config string, hashes ...Hash) string {
	var b strings.Builder
	b.Grow(len(kind) + len(config) + 8 + len(hashes)*(2*sha256.Size+1))
	b.WriteString(kind)
	b.WriteString("|v")
	b.WriteString(strconv.Itoa(ConfigVersion))
	b.WriteString("|")
	b.WriteString(config)
	for _, h := range hashes {
		b.WriteString("|")
		b.WriteString(hex.EncodeToString(h[:]))
	}
	return b.String()
}
