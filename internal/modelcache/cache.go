// Package modelcache is the content-addressed memoization layer of the
// analysis pipeline. Binary modeling (unpack → lift → CFG/CG/loops) and
// per-function BFV extraction dominate the pipeline's cost, and corpus-scale
// workloads pay that cost repeatedly: every eval experiment reloads the same
// firmware images, every ablation variant re-extracts the same base vectors,
// and multi-target firmware links the same libc into every daemon. The cache
// keys all of that work by the SHA-256 of the underlying binary bytes plus an
// analysis-config version, so identical inputs are modeled exactly once per
// process — across targets, across firmware samples, and across concurrent
// workers.
//
// The cache itself is value-agnostic (entries are `any` plus a byte-cost
// estimate), which keeps it free of dependencies on the packages it serves;
// loader and infer build their keys with the helpers in keys.go. Three
// properties the rest of the pipeline relies on:
//
//   - Determinism: a cached value is the value the compute function returned,
//     shared read-only. Results are byte-identical with the cache on or off.
//   - Singleflight: concurrent GetOrCompute calls for the same key run the
//     compute function once; everyone else blocks and shares the result, so
//     parallel workers never lift the same binary twice.
//   - Bounded memory: an LRU holds at most MaxEntries entries and MaxBytes
//     estimated bytes; Stats() exposes hit/miss/eviction counters.
package modelcache

import (
	"container/list"
	"sync"
)

// Stats are the cache's observability counters. Hits include calls that
// joined an in-flight computation (the work was deduplicated even though the
// value was not yet resident).
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// DefaultMaxEntries and DefaultMaxBytes bound New(0, 0) caches: generous
// enough for a full 59-sample corpus sweep, small enough to stay well under
// typical CI memory limits.
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 1 << 30 // 1 GiB of estimated model bytes
)

// entry is one resident cache value.
type entry struct {
	key  string
	val  any
	cost int64
}

// flight is one in-progress computation other callers can join.
type flight struct {
	done chan struct{}
	val  any
	cost int64
	err  error
}

// Cache is a concurrency-safe, content-addressed LRU with singleflight
// deduplication. The zero value is not usable; construct with New.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used; values are *entry
	items      map[string]*list.Element
	inflight   map[string]*flight
	bytes      int64
	hits       uint64
	misses     uint64
	evictions  uint64
}

// New returns a cache bounded by maxEntries entries and maxBytes estimated
// bytes; zero or negative values select the package defaults.
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[string]*list.Element{},
		inflight:   map[string]*flight{},
	}
}

// Get returns the cached value for key, if resident, and marks it recently
// used. It does not join in-flight computations.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// GetOrCompute returns the value for key, computing it at most once across
// concurrent callers. compute returns the value, its estimated cost in bytes,
// and an error; errors are propagated to every waiter and never cached, so a
// failed computation is retried by the next caller. The hit result reports
// whether the value was served without running compute in this call (either
// resident, or joined from another caller's in-flight computation).
func (c *Cache) GetOrCompute(key string, compute func() (val any, cost int64, err error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		// Join the in-flight computation: the lift happens once.
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.val, true, fl.err
	}
	c.misses++
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	fl.val, fl.cost, fl.err = compute()
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.insert(key, fl.val, fl.cost)
	}
	c.mu.Unlock()
	return fl.val, false, fl.err
}

// insert adds a value and evicts from the LRU tail while over budget. The
// just-inserted entry is never evicted, so oversized values are held until
// the next insertion displaces them. Callers must hold c.mu.
func (c *Cache) insert(key string, val any, cost int64) {
	if cost < 0 {
		cost = 0
	}
	if el, ok := c.items[key]; ok {
		// Lost a race with another non-singleflight writer; refresh in place.
		e := el.Value.(*entry)
		c.bytes += cost - e.cost
		e.val, e.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, cost: cost})
		c.bytes += cost
	}
	for (c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.ll.Len() > 1 {
		back := c.ll.Back()
		if back == c.items[key] {
			break
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= e.cost
		c.evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
