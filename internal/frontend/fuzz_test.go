package frontend

import "testing"

// FuzzFrontend feeds arbitrary bytes through every artifact parser.
// Invariants: extraction never panics, every keyword is a non-empty
// bounded identifier, and every reported location points at the keyword's
// bytes inside the file — malformed, truncated or binary input must
// degrade to fewer keywords, never to out-of-range provenance.
func FuzzFrontend(f *testing.F) {
	f.Add([]byte(`<form><input type="text" name="username"></form>`))
	f.Add([]byte(`fetch("/apply.cgi?wifi_pass=" + v); formData.append("tz", t)`))
	f.Add([]byte("ping_host=8.8.8.8\nntp_server = pool.ntp.org\n"))
	f.Add([]byte(`<input name="unterminated`))
	f.Add([]byte(`"a=&b=` + "\x00\xff"))
	f.Add([]byte(`<select name=`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, path := range []string{"w/x.html", "w/x.js", "e/x.conf"} {
			for _, k := range Extract(path, data) {
				if k.File != path {
					t.Fatalf("file %q, want %q", k.File, path)
				}
				checkLocation(t, data, k)
			}
		}
	})
}
