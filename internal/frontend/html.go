package frontend

// scanHTML extracts the name attributes of form-control tags (<input>,
// <select>, <textarea>, <button>): the parameter names a browser submits.
// It is a byte scanner over tag syntax — unbalanced quotes, truncated tags
// and stray '<' produce fewer matches, never a failure.
func scanHTML(path string, data []byte) []Keyword {
	li := newLineIndex(data)
	var out []Keyword
	i := 0
	for i < len(data) {
		if data[i] != '<' {
			i++
			continue
		}
		// Read the tag name.
		j := i + 1
		for j < len(data) && identByte(data[j]) {
			j++
		}
		tag := lowerASCII(data[i+1 : j])
		if !formTag(tag) {
			i = j
			continue
		}
		// Scan attributes up to '>' (or EOF), honoring quoted values.
		end, attrs := scanAttrs(data, j)
		for _, a := range attrs {
			if a.name != "name" {
				continue
			}
			name := identAt(data, a.valOff)
			// Only accept the attribute when the identifier spans the whole
			// value — "a b" or "x[]" are not back-end parameter names the
			// binary-side matcher could see as a single key.
			if name == "" || len(name) != a.valLen {
				continue
			}
			line, col := li.at(a.valOff)
			out = append(out, Keyword{Name: name, File: path, Line: line, Col: col})
		}
		i = end
	}
	return out
}

func formTag(tag string) bool {
	switch tag {
	case "input", "select", "textarea", "button":
		return true
	}
	return false
}

type attr struct {
	name   string
	valOff int // byte offset of the value's first byte
	valLen int
}

// scanAttrs parses attribute pairs from off until '>' or EOF, returning
// the position after the tag. Values may be single-quoted, double-quoted
// or bare.
func scanAttrs(data []byte, off int) (int, []attr) {
	var out []attr
	i := off
	for i < len(data) && data[i] != '>' {
		c := data[i]
		if !identStart(c) {
			i++
			continue
		}
		// Attribute name.
		j := i
		for j < len(data) && identByte(data[j]) {
			j++
		}
		name := lowerASCII(data[i:j])
		// Optional "= value".
		k := skipSpace(data, j)
		if k >= len(data) || data[k] != '=' {
			i = j
			continue
		}
		k = skipSpace(data, k+1)
		if k >= len(data) {
			break
		}
		var valOff, valEnd int
		if data[k] == '"' || data[k] == '\'' {
			q := data[k]
			valOff = k + 1
			valEnd = valOff
			for valEnd < len(data) && data[valEnd] != q && data[valEnd] != '>' && data[valEnd] != '\n' {
				valEnd++
			}
			i = valEnd
			if i < len(data) && data[i] == q {
				i++
			}
		} else {
			valOff = k
			valEnd = k
			for valEnd < len(data) && data[valEnd] != ' ' && data[valEnd] != '\t' &&
				data[valEnd] != '\n' && data[valEnd] != '\r' && data[valEnd] != '>' {
				valEnd++
			}
			i = valEnd
		}
		if valEnd > valOff {
			out = append(out, attr{name: name, valOff: valOff, valLen: valEnd - valOff})
		}
	}
	if i < len(data) && data[i] == '>' {
		i++
	}
	return i, out
}

func skipSpace(data []byte, i int) int {
	for i < len(data) && (data[i] == ' ' || data[i] == '\t' || data[i] == '\n' || data[i] == '\r') {
		i++
	}
	return i
}

func lowerASCII(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}
