package frontend

// scanJS extracts request parameter names from JavaScript: query-string
// keys inside string literals ("/apply.cgi?wifi_pass=" + v) and the first
// string argument of parameter-carrying calls (formData.append("timezone",
// tz), params.set("lang", l)). String literals are lexed with escape
// handling; everything else is pattern matching around them, robust to
// arbitrary garbage between matches.
func scanJS(path string, data []byte) []Keyword {
	li := newLineIndex(data)
	var out []Keyword
	i := 0
	for i < len(data) {
		c := data[i]
		if c != '"' && c != '\'' && c != '`' {
			i++
			continue
		}
		start := i + 1
		end := start
		for end < len(data) && data[end] != c && data[end] != '\n' {
			if data[end] == '\\' && end+1 < len(data) {
				end++
			}
			end++
		}
		// Keys inside the literal: an identifier directly before '=' at the
		// start of the literal or after '?' or '&'.
		for p := start; p < end; p++ {
			if p > start && data[p-1] != '?' && data[p-1] != '&' {
				continue
			}
			name := identAt(data, p)
			if name == "" {
				continue
			}
			eq := p + len(name)
			if eq >= end || data[eq] != '=' {
				continue
			}
			line, col := li.at(p)
			out = append(out, Keyword{Name: name, File: path, Line: line, Col: col})
		}
		// First string argument of .append( / .set( / .get( calls.
		if callee := callBefore(data, i); paramCall(callee) {
			name := identAt(data, start)
			if name != "" && start+len(name) == end {
				line, col := li.at(start)
				out = append(out, Keyword{Name: name, File: path, Line: line, Col: col})
			}
		}
		i = end
		if i < len(data) && data[i] == c {
			i++
		}
	}
	return out
}

// callBefore returns the method name when the literal at off is the first
// argument of a call: ident '(' [space] literal.
func callBefore(data []byte, off int) string {
	i := off - 1
	for i >= 0 && (data[i] == ' ' || data[i] == '\t') {
		i--
	}
	if i < 0 || data[i] != '(' {
		return ""
	}
	i--
	end := i + 1
	for i >= 0 && identByte(data[i]) {
		i--
	}
	if end == i+1 {
		return ""
	}
	// Keep the last dotted segment: formData.append -> append.
	seg := i + 1
	for p := seg; p < end; p++ {
		if data[p] == '.' {
			seg = p + 1
		}
	}
	return lowerASCII(data[seg:end])
}

func paramCall(name string) bool {
	switch name {
	case "append", "set", "get", "getparameter":
		return true
	}
	return false
}
