package frontend

// scanConfig extracts keys from key=value (or key: value) configuration
// files, the defaults web UIs round-trip back through request parameters.
// Comment lines (#, ;) and section headers ([...]) are skipped; a key must
// be a clean identifier spanning everything left of the separator.
func scanConfig(path string, data []byte) []Keyword {
	li := newLineIndex(data)
	var out []Keyword
	lineStart := 0
	for lineStart <= len(data) {
		lineEnd := lineStart
		for lineEnd < len(data) && data[lineEnd] != '\n' {
			lineEnd++
		}
		s := skipSpace(data, lineStart)
		if s < lineEnd && data[s] != '#' && data[s] != ';' && data[s] != '[' {
			name := identAt(data, s)
			if name != "" {
				sep := s + len(name)
				// Allow spaces between the key and the separator.
				for sep < lineEnd && (data[sep] == ' ' || data[sep] == '\t') {
					sep++
				}
				if sep < lineEnd && (data[sep] == '=' || data[sep] == ':') {
					line, col := li.at(s)
					out = append(out, Keyword{Name: name, File: path, Line: line, Col: col})
				}
			}
		}
		if lineEnd >= len(data) {
			break
		}
		lineStart = lineEnd + 1
	}
	return out
}
