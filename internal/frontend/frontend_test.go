package frontend

import (
	"reflect"
	"testing"
)

func names(kws []Keyword) []string {
	out := []string{}
	for _, k := range kws {
		out = append(out, k.Name)
	}
	return out
}

func TestExtractHTMLForms(t *testing.T) {
	doc := []byte(`<html><body>
<form action="/apply.cgi" method="post">
  <input type="text" name="username" value="admin">
  <input type='password' name='password'>
  <SELECT NAME="timezone"><option>UTC</option></SELECT>
  <textarea name=comment rows=4></textarea>
  <button name="apply" type="submit">Go</button>
  <div name="not_a_form_control"></div>
  <input type="text" name="a b">
  <img src="x.png">
</form></body></html>`)
	got := Extract("www/index.html", doc)
	want := []string{"apply", "comment", "password", "timezone", "username"}
	if !reflect.DeepEqual(names(got), want) {
		t.Fatalf("names = %v, want %v", names(got), want)
	}
	for _, k := range got {
		if k.File != "www/index.html" || k.Line < 1 || k.Col < 1 {
			t.Fatalf("bad location: %+v", k)
		}
	}
	// Spot-check one location: "username" starts at line 3.
	if got[len(got)-1].Name != "username" || got[len(got)-1].Line != 3 {
		t.Fatalf("username location = %+v", got[len(got)-1])
	}
}

func TestExtractJSParams(t *testing.T) {
	src := []byte(`function apply(v, tz) {
  fetch("/apply.cgi?wifi_pass=" + encodeURIComponent(v));
  var q = "a=1&ping_host=" + h + "&lang=en";
  formData.append("timezone", tz);
  params.set("dev_alias", alias);
  var notkey = "no params here";
  var url2 = 'x.cgi?single';
}`)
	got := Extract("www/app.js", src)
	want := []string{"a", "dev_alias", "lang", "ping_host", "timezone", "wifi_pass"}
	if !reflect.DeepEqual(names(got), want) {
		t.Fatalf("names = %v, want %v", names(got), want)
	}
}

func TestExtractConfigKeys(t *testing.T) {
	conf := []byte(`# defaults pushed to the web UI
ping_host=8.8.8.8
ntp_server = pool.ntp.org
log_level: debug
; comment
[section]
  indented_key=1
broken line without separator
=nokey
`)
	got := Extract("etc/webparams.conf", conf)
	want := []string{"indented_key", "log_level", "ntp_server", "ping_host"}
	if !reflect.DeepEqual(names(got), want) {
		t.Fatalf("names = %v, want %v", names(got), want)
	}
}

func TestExtractUnknownExtension(t *testing.T) {
	if got := Extract("bin/httpd", []byte("name=\"x\"")); got != nil {
		t.Fatalf("non-artifact extracted %v", got)
	}
	if !IsArtifact("www/a.HTML") || IsArtifact("bin/httpd") {
		t.Fatal("IsArtifact misclassified")
	}
}

func TestExtractDeterministicAndDeduped(t *testing.T) {
	doc := []byte(`<input name="dup"><input name="dup"><input name="aa">`)
	a := Extract("f.html", doc)
	b := Extract("f.html", doc)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("extraction not deterministic")
	}
	// Same name at distinct locations is kept; identical tuples collapse.
	if len(a) != 3 {
		t.Fatalf("got %d keywords, want 3: %v", len(a), a)
	}
	if a[0].Name != "aa" || a[1].Name != "dup" || a[2].Name != "dup" {
		t.Fatalf("order wrong: %v", a)
	}
}

func TestNames(t *testing.T) {
	kws := []Keyword{{Name: "b"}, {Name: "a"}, {Name: "b"}}
	if got := Names(kws); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Names = %v", got)
	}
}

func TestExtractMalformed(t *testing.T) {
	cases := [][]byte{
		[]byte(`<input name="unterminated`),
		[]byte(`<input name=`),
		[]byte(`<`),
		[]byte(`"`),
		[]byte("\"a=\\"),
		[]byte(`key=`),
		{0xff, 0xfe, '<', 'i', 'n', 'p', 'u', 't'},
		{},
	}
	for _, ext := range []string{"x.html", "x.js", "x.conf"} {
		for _, data := range cases {
			for _, k := range Extract(ext, data) {
				checkLocation(t, data, k)
			}
		}
	}
}

// checkLocation asserts a keyword's location points inside the file.
func checkLocation(t *testing.T, data []byte, k Keyword) {
	t.Helper()
	if k.Name == "" || len(k.Name) > 64 {
		t.Fatalf("bad name %q", k.Name)
	}
	if k.Line < 1 || k.Col < 1 {
		t.Fatalf("non-positive location %+v", k)
	}
	// Walk to the claimed location and require the name's bytes there.
	off := 0
	for l := 1; l < k.Line; l++ {
		for off < len(data) && data[off] != '\n' {
			off++
		}
		if off >= len(data) {
			t.Fatalf("line %d out of range for %d bytes", k.Line, len(data))
		}
		off++
	}
	off += k.Col - 1
	if off+len(k.Name) > len(data) {
		t.Fatalf("location %d:%d + %q overruns %d bytes", k.Line, k.Col, k.Name, len(data))
	}
	if string(data[off:off+len(k.Name)]) != k.Name {
		t.Fatalf("location %d:%d does not hold %q", k.Line, k.Col, k.Name)
	}
}
