// Package frontend extracts candidate parameter keywords from firmware
// front-end artifacts: HTML form fields, JavaScript request parameters and
// configuration key files. Shared keywords between these artifacts and the
// string constants of back-end binaries seed the corpus-level taint
// analysis at border binaries, the SaTC-style bridge from the web surface
// to compiled code.
//
// The parsers are deliberately structural scanners, not grammars: firmware
// web roots are full of truncated, hand-edited and template-mangled files,
// so extraction must never fail — malformed input yields fewer keywords,
// never an error or a panic. Every keyword carries its source location
// (1-based line and column of the name's first byte) for provenance
// reporting.
package frontend

import "sort"

// Keyword is one candidate parameter name found in a front-end artifact.
type Keyword struct {
	Name string
	File string
	// Line and Col locate the first byte of the name, 1-based. They always
	// point inside the file's bytes.
	Line int
	Col  int
}

// maxKeywordLen bounds accepted names; longer matches are noise (base64
// blobs, minified identifiers glued together).
const maxKeywordLen = 64

// Extract scans one artifact, dispatching on the path's extension. Files
// that are not front-end artifacts yield nil. The result is sorted by
// (Name, Line, Col) and deduplicated; it is empty, never nil, for
// recognized extensions with no keywords.
func Extract(path string, data []byte) []Keyword {
	var kws []Keyword
	switch ext(path) {
	case "html", "htm":
		kws = scanHTML(path, data)
	case "js":
		kws = scanJS(path, data)
	case "conf", "cfg":
		kws = scanConfig(path, data)
	default:
		return nil
	}
	return dedupe(kws)
}

// IsArtifact reports whether the path names a recognized front-end
// artifact type.
func IsArtifact(path string) bool {
	switch ext(path) {
	case "html", "htm", "js", "conf", "cfg":
		return true
	}
	return false
}

// Names returns the distinct keyword names of a set, sorted.
func Names(kws []Keyword) []string {
	seen := map[string]bool{}
	var out []string
	for _, k := range kws {
		if !seen[k.Name] {
			seen[k.Name] = true
			out = append(out, k.Name)
		}
	}
	sort.Strings(out)
	return out
}

func ext(path string) string {
	dot := -1
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			break
		}
		if path[i] == '.' {
			dot = i
			break
		}
	}
	if dot < 0 {
		return ""
	}
	e := path[dot+1:]
	b := make([]byte, len(e))
	for i := 0; i < len(e); i++ {
		c := e[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b[i] = c
	}
	return string(b)
}

func dedupe(kws []Keyword) []Keyword {
	sort.Slice(kws, func(i, j int) bool {
		a, b := kws[i], kws[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	out := kws[:0]
	for i, k := range kws {
		if i > 0 && k == kws[i-1] {
			continue
		}
		out = append(out, k)
	}
	if out == nil {
		out = []Keyword{}
	}
	return out
}

// lineIndex precomputes newline offsets so locations are O(log n) per
// keyword.
type lineIndex struct {
	starts []int // byte offset of each line's first byte
}

func newLineIndex(data []byte) *lineIndex {
	li := &lineIndex{starts: []int{0}}
	for i, c := range data {
		if c == '\n' {
			li.starts = append(li.starts, i+1)
		}
	}
	return li
}

// at converts a byte offset into a 1-based (line, col) pair.
func (li *lineIndex) at(off int) (line, col int) {
	i := sort.Search(len(li.starts), func(i int) bool { return li.starts[i] > off }) - 1
	if i < 0 {
		i = 0
	}
	return i + 1, off - li.starts[i] + 1
}

// identAt reads a parameter identifier starting at off: [A-Za-z_] then
// [A-Za-z0-9_.-]*. Returns "" when off does not start one.
func identAt(data []byte, off int) string {
	if off >= len(data) || !identStart(data[off]) {
		return ""
	}
	end := off
	for end < len(data) && identByte(data[end]) {
		end++
	}
	if end-off > maxKeywordLen {
		return ""
	}
	return string(data[off:end])
}

func identStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func identByte(c byte) bool {
	return identStart(c) || c == '.' || c == '-' || (c >= '0' && c <= '9')
}
