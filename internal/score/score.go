// Package score ranks candidate functions against the anchor matrix. The
// behavioral similarity of a candidate is its mean similarity to the anchor
// function vectors — equation (2) of the paper with cosine distance — and
// the package also provides the Euclidean, Manhattan and Pearson baselines
// used by RQ4.
package score

import (
	"fmt"
	"math"
	"sort"

	"fits/internal/bfv"
)

// Metric selects the similarity computation.
type Metric uint8

// Metrics. Cosine is the paper's choice; the rest are RQ4 baselines.
const (
	Cosine Metric = iota
	Euclidean
	Manhattan
	Pearson
)

func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Euclidean:
		return "euclidean"
	case Manhattan:
		return "manhattan"
	case Pearson:
		return "pearson"
	}
	return fmt.Sprintf("metric(%d)", uint8(m))
}

// Similarity computes the pairwise similarity of two vectors in [roughly]
// [0,1] for the distance-based metrics and [-1,1] for correlation ones.
func Similarity(m Metric, a, b bfv.Vector) float64 {
	switch m {
	case Cosine:
		return cosineSim(a, b)
	case Euclidean:
		d := 0.0
		for i := 0; i < bfv.Dim; i++ {
			diff := a[i] - b[i]
			d += diff * diff
		}
		return 1 / (1 + math.Sqrt(d))
	case Manhattan:
		d := 0.0
		for i := 0; i < bfv.Dim; i++ {
			d += math.Abs(a[i] - b[i])
		}
		return 1 / (1 + d)
	case Pearson:
		return pearson(a, b)
	}
	return 0
}

// cosineSim is 1 - cosine distance: the cosine of the angle between the
// vectors, prioritizing relative over absolute differences.
func cosineSim(a, b bfv.Vector) float64 {
	var dot, na, nb float64
	for i := 0; i < bfv.Dim; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func pearson(a, b bfv.Vector) float64 {
	var ma, mb float64
	for i := 0; i < bfv.Dim; i++ {
		ma += a[i]
		mb += b[i]
	}
	ma /= bfv.Dim
	mb /= bfv.Dim
	var cov, va, vb float64
	for i := 0; i < bfv.Dim; i++ {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / (math.Sqrt(va) * math.Sqrt(vb))
}

// Score is equation (2): the mean similarity of v to the anchor matrix.
func Score(m Metric, v bfv.Vector, anchors []bfv.Vector) float64 {
	if len(anchors) == 0 {
		return 0
	}
	s := 0.0
	for _, a := range anchors {
		s += Similarity(m, v, a)
	}
	return s / float64(len(anchors))
}

// Ranked is one candidate with its behavioral similarity score.
type Ranked struct {
	Entry uint32
	Score float64
}

// Rank scores every candidate against the anchors and returns them ordered
// by descending score; ties break on ascending entry address for
// determinism.
func Rank(m Metric, cands map[uint32]bfv.Vector, anchors []bfv.Vector) []Ranked {
	out := make([]Ranked, 0, len(cands))
	for entry, v := range cands {
		out = append(out, Ranked{Entry: entry, Score: Score(m, v, anchors)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entry < out[j].Entry
	})
	return out
}
