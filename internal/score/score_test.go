package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fits/internal/bfv"
)

func TestCosineBasics(t *testing.T) {
	a := bfv.Vector{1, 2, 3}
	if s := Similarity(Cosine, a, a); math.Abs(s-1) > 1e-9 {
		t.Errorf("self similarity = %g", s)
	}
	// Scaled vectors have cosine similarity 1: relative, not absolute.
	b := bfv.Vector{2, 4, 6}
	if s := Similarity(Cosine, a, b); math.Abs(s-1) > 1e-9 {
		t.Errorf("scaled similarity = %g", s)
	}
	// Orthogonal vectors score 0.
	x := bfv.Vector{1, 0}
	y := bfv.Vector{0, 1}
	if s := Similarity(Cosine, x, y); math.Abs(s) > 1e-9 {
		t.Errorf("orthogonal similarity = %g", s)
	}
	// Zero vector scores 0 without NaN.
	if s := Similarity(Cosine, bfv.Vector{}, a); s != 0 || math.IsNaN(s) {
		t.Errorf("zero similarity = %g", s)
	}
}

func TestEuclideanAndManhattan(t *testing.T) {
	a := bfv.Vector{1, 1}
	if s := Similarity(Euclidean, a, a); s != 1 {
		t.Errorf("euclidean self = %g", s)
	}
	if s := Similarity(Manhattan, a, a); s != 1 {
		t.Errorf("manhattan self = %g", s)
	}
	b := bfv.Vector{4, 5}
	// euclidean distance = 5 -> 1/6.
	if s := Similarity(Euclidean, a, b); math.Abs(s-1.0/6) > 1e-9 {
		t.Errorf("euclidean = %g", s)
	}
	// manhattan distance = 7 -> 1/8.
	if s := Similarity(Manhattan, a, b); math.Abs(s-1.0/8) > 1e-9 {
		t.Errorf("manhattan = %g", s)
	}
}

func TestPearson(t *testing.T) {
	a := bfv.Vector{1, 2, 3, 4}
	b := bfv.Vector{2, 4, 6, 8}
	if s := Similarity(Pearson, a, b); math.Abs(s-1) > 1e-9 {
		t.Errorf("correlated = %g", s)
	}
	var up, down bfv.Vector
	for i := 0; i < bfv.Dim; i++ {
		up[i] = float64(i)
		down[i] = float64(bfv.Dim - i)
	}
	if s := Similarity(Pearson, up, down); math.Abs(s+1) > 1e-9 {
		t.Errorf("anti-correlated = %g, want -1", s)
	}
	// Constant vector: zero variance -> 0.
	d := bfv.Vector{5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5}
	if s := Similarity(Pearson, a, d); s != 0 {
		t.Errorf("constant = %g", s)
	}
}

func TestScoreIsMeanOverAnchors(t *testing.T) {
	v := bfv.Vector{1, 0}
	anchors := []bfv.Vector{{1, 0}, {0, 1}}
	got := Score(Cosine, v, anchors)
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("score = %g, want 0.5", got)
	}
	if Score(Cosine, v, nil) != 0 {
		t.Error("empty anchors should score 0")
	}
}

func TestRankOrderingAndDeterminism(t *testing.T) {
	anchors := []bfv.Vector{{10, 1, 2, 3, 3, 5, 1, 1, 1, 1, 2}}
	cands := map[uint32]bfv.Vector{
		0x100: {10, 1, 2, 3, 3, 5, 1, 1, 1, 1, 2}, // identical to anchor
		0x200: {1, 0, 50, 1, 0, 0, 0, 0, 0, 0, 0}, // dissimilar
		0x300: {9, 1, 2, 3, 3, 4, 1, 1, 1, 1, 2},  // close
	}
	r := Rank(Cosine, cands, anchors)
	if len(r) != 3 {
		t.Fatalf("len = %d", len(r))
	}
	if r[0].Entry != 0x100 || r[2].Entry != 0x200 {
		t.Errorf("order = %+v", r)
	}
	if r[0].Score < r[1].Score || r[1].Score < r[2].Score {
		t.Error("scores not descending")
	}
	// Ties break by entry address.
	tie := map[uint32]bfv.Vector{0x500: {1, 1}, 0x400: {2, 2}}
	rt := Rank(Cosine, tie, []bfv.Vector{{3, 3}})
	if rt[0].Entry != 0x400 {
		t.Errorf("tie order = %+v", rt)
	}
}

func TestMetricStrings(t *testing.T) {
	for _, m := range []Metric{Cosine, Euclidean, Manhattan, Pearson} {
		if m.String() == "" {
			t.Errorf("empty name for %d", m)
		}
	}
	if Metric(99).String() == "" {
		t.Error("unknown metric stringer empty")
	}
}

// Properties: similarity is symmetric, self-similarity is maximal for
// distance metrics, and never NaN.
func TestQuickSimilarityProperties(t *testing.T) {
	metrics := []Metric{Cosine, Euclidean, Manhattan, Pearson}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var a, b bfv.Vector
		for i := 0; i < bfv.Dim; i++ {
			a[i] = float64(r.Intn(40))
			b[i] = float64(r.Intn(40))
		}
		for _, m := range metrics {
			ab := Similarity(m, a, b)
			ba := Similarity(m, b, a)
			if math.IsNaN(ab) || math.Abs(ab-ba) > 1e-9 {
				return false
			}
			if m == Euclidean || m == Manhattan {
				if Similarity(m, a, a) < ab-1e-9 {
					return false
				}
			}
			if m == Cosine && (ab < -1-1e-9 || ab > 1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
