// Crash-safety tests of the fitsd durability layer: disk-served
// resubmissions, journal replay across restarts, panic isolation,
// corrupt-image classification, and a randomized crash-recovery property
// test asserting that no acknowledged job is ever lost and no corrupt
// result is ever served.
package server_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"fits/client"
	"fits/internal/optbuild"
	"fits/internal/server"
)

// echoRunner completes instantly with a result that embeds the firmware
// payload, so tests can verify which bytes a result was computed from.
func echoRunner(ctx context.Context, raw []byte, spec optbuild.Spec, env server.RunEnv) (*server.RunOutput, error) {
	return &server.RunOutput{ResultJSON: []byte(`{"echo":` + strconv.Quote(string(raw)) + `}`)}, nil
}

func echoResult(payload string) string {
	return `{"echo":` + strconv.Quote(payload) + `}`
}

// holdRunner blocks jobs whose payload is "hold" until their context dies
// (signalling on started first) and echoes everything else instantly. It
// lets a test park one job mid-run and stack more behind it.
type holdRunner struct {
	started chan struct{}
}

func newHoldRunner() *holdRunner {
	return &holdRunner{started: make(chan struct{}, 64)}
}

func (r *holdRunner) run(ctx context.Context, raw []byte, spec optbuild.Spec, env server.RunEnv) (*server.RunOutput, error) {
	if string(raw) == "hold" {
		r.started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return echoRunner(ctx, raw, spec, env)
}

func (r *holdRunner) waitStarted(t *testing.T) {
	t.Helper()
	select {
	case <-r.started:
	case <-time.After(5 * time.Second):
		t.Fatal("hold job did not start within 5s")
	}
}

// startService brings up a server without registering any cleanup, so
// crash tests can abandon it mid-flight (the moral equivalent of SIGKILL:
// no drain, no journal close, workers parked forever).
func startService(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	srv := mustServer(t, cfg)
	ts := httptest.NewServer(srv)
	return srv, ts, client.New(ts.URL, ts.Client())
}

func submitAndWait(t *testing.T, c *client.Client, payload string) *server.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub, err := c.Submit(ctx, []byte(payload), optbuild.Spec{})
	if err != nil {
		t.Fatalf("submit %q: %v", payload, err)
	}
	st, err := c.Wait(ctx, sub.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait %q: %v", payload, err)
	}
	return st
}

// TestPersistResubmitServedFromDisk: once a job completes with DataDir
// set, resubmitting the identical bytes returns instantly from the disk
// store — in the same process and, more importantly, across a restart.
func TestPersistResubmitServedFromDisk(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv1, ts1, c1 := startService(t, server.Config{Workers: 1, DataDir: dir, Runner: echoRunner})
	st := submitAndWait(t, c1, "persist-me")
	if st.State != server.StateDone {
		t.Fatalf("first run: %s (%s)", st.State, st.Error)
	}
	res1, err := c1.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Same process: the second submit never reaches the runner.
	sub2, err := c1.Submit(ctx, []byte("persist-me"), optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if sub2.State != server.StateDone {
		t.Fatalf("resubmit state = %s, want done immediately", sub2.State)
	}
	res2, err := c1.Result(ctx, sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(res1) != string(res2) {
		t.Fatalf("disk-served result diverged: %s vs %s", res1, res2)
	}
	m, err := c1.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "fitsd_disk_hits_total 1") {
		t.Error("metrics missing fitsd_disk_hits_total 1")
	}
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	srv1.Shutdown(sctx)
	cancel()
	ts1.Close()

	// Restart on the same directory with a runner that must never fire.
	ran := false
	srv2, ts2, c2 := startService(t, server.Config{
		Workers: 1, DataDir: dir,
		Runner: func(ctx context.Context, raw []byte, spec optbuild.Spec, env server.RunEnv) (*server.RunOutput, error) {
			ran = true
			return echoRunner(ctx, raw, spec, env)
		},
	})
	defer func() {
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		srv2.Shutdown(sctx)
		ts2.Close()
	}()

	// The pre-restart job IDs survived, results lazily loaded from disk.
	old, err := c2.Job(ctx, st.ID)
	if err != nil {
		t.Fatalf("pre-restart job lost: %v", err)
	}
	if old.State != server.StateDone {
		t.Fatalf("recovered job state = %s", old.State)
	}
	resOld, err := c2.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(resOld) != string(res1) {
		t.Fatalf("recovered result diverged: %s vs %s", resOld, res1)
	}

	sub3, err := c2.Submit(ctx, []byte("persist-me"), optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if sub3.State != server.StateDone {
		t.Fatalf("post-restart resubmit state = %s, want done", sub3.State)
	}
	res3, err := c2.Result(ctx, sub3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(res3) != string(res1) {
		t.Fatalf("post-restart result diverged: %s vs %s", res3, res1)
	}
	if ran {
		t.Error("runner fired for bytes whose result was already on disk")
	}
}

// TestReplayRequeuesAndInterrupts: a crash with one job mid-run and one
// still queued must, after restart, report the first interrupted and run
// the second to completion from journaled state alone.
func TestReplayRequeuesAndInterrupts(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	r := newHoldRunner()
	srv1, ts1, c1 := startService(t, server.Config{Workers: 1, DataDir: dir, Runner: r.run})
	subHold, err := c1.Submit(ctx, []byte("hold"), optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	r.waitStarted(t)
	subQ, err := c1.Submit(ctx, []byte("queued-behind"), optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	// Crash: no Shutdown, no drain; the worker stays parked. Close only
	// releases the persistence handles so the restart can take the
	// data-dir lock — everything else is abandoned, as in a real crash.
	ts1.Close()
	srv1.Close()

	srv2, ts2, c2 := startService(t, server.Config{Workers: 1, DataDir: dir, Runner: echoRunner})
	defer func() {
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		srv2.Shutdown(sctx)
		ts2.Close()
	}()

	stHold, err := c2.Job(ctx, subHold.ID)
	if err != nil {
		t.Fatalf("mid-run job lost by replay: %v", err)
	}
	if stHold.State != server.StateInterrupted {
		t.Fatalf("mid-run job state = %s, want interrupted", stHold.State)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	stQ, err := c2.Wait(wctx, subQ.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("queued job lost by replay: %v", err)
	}
	if stQ.State != server.StateDone {
		t.Fatalf("requeued job state = %s (%s), want done", stQ.State, stQ.Error)
	}
	res, err := c2.Result(ctx, subQ.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != echoResult("queued-behind") {
		t.Fatalf("requeued job ran on wrong bytes: %s", res)
	}
	m, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "fitsd_jobs_interrupted_total 1") {
		t.Error("metrics missing fitsd_jobs_interrupted_total 1")
	}
}

// TestWorkerPanicIsolated: a panic in the analysis of one image fails
// only that job — with the reason and stack captured — and the worker
// keeps serving subsequent jobs.
func TestWorkerPanicIsolated(t *testing.T) {
	panicky := func(ctx context.Context, raw []byte, spec optbuild.Spec, env server.RunEnv) (*server.RunOutput, error) {
		if string(raw) == "boom" {
			panic("hostile image dereferenced a nil model")
		}
		return echoRunner(ctx, raw, spec, env)
	}
	_, c := newTestService(t, server.Config{Workers: 1, Runner: panicky})
	ctx := context.Background()

	st := submitAndWait(t, c, "boom")
	if st.State != server.StateFailed {
		t.Fatalf("panicked job state = %s, want failed", st.State)
	}
	if st.Reason != server.ReasonPanic {
		t.Fatalf("panicked job reason = %q, want %q", st.Reason, server.ReasonPanic)
	}
	if !strings.Contains(st.Error, "analysis panicked") ||
		!strings.Contains(st.Error, "hostile image dereferenced a nil model") {
		t.Fatalf("panic error lacks diagnosis: %q", st.Error)
	}
	if !strings.Contains(st.Error, "goroutine") {
		t.Errorf("panic error lacks a captured stack: %q", st.Error)
	}

	// The worker survived; the next job runs normally.
	st2 := submitAndWait(t, c, "fine")
	if st2.State != server.StateDone {
		t.Fatalf("job after panic: %s (%s)", st2.State, st2.Error)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "fitsd_job_panics_total 1") {
		t.Error("metrics missing fitsd_job_panics_total 1")
	}
}

// TestCorruptImage422: the default pipeline classifies malformed images
// via firmware.ErrCorrupt, and fetching the result of such a failure
// yields 422 rather than the generic 409.
func TestCorruptImage422(t *testing.T) {
	_, c := newTestService(t, server.Config{Workers: 1})
	ctx := context.Background()

	st := submitAndWait(t, c, "this is definitely not a firmware image")
	if st.State != server.StateFailed {
		t.Fatalf("garbage image state = %s, want failed", st.State)
	}
	if st.Reason != server.ReasonCorrupt {
		t.Fatalf("garbage image reason = %q, want %q", st.Reason, server.ReasonCorrupt)
	}
	_, err := c.Result(ctx, st.ID)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 422 {
		t.Fatalf("result of corrupt-image job: err = %v, want HTTP 422", err)
	}
}

// TestCrashRecoveryProperty is the randomized kill-point harness at the
// server level: each round builds a random mix of done, mid-run and
// queued jobs, crashes the daemon without ceremony, sometimes corrupts a
// random on-disk result, restarts on the same directory, and asserts the
// two invariants — every acknowledged job is still addressable with the
// right outcome, and corrupted bytes are never served as a result.
func TestCrashRecoveryProperty(t *testing.T) {
	const rounds = 30
	ctx := context.Background()
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("round%02d", round), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(round) * 7919))
			dir := t.TempDir()
			nDone := rnd.Intn(3)
			hold := rnd.Intn(2) == 1
			nQueued := 0
			if hold {
				// Queued jobs exist only while a worker is wedged.
				nQueued = rnd.Intn(3)
			}

			r := newHoldRunner()
			srv1, ts1, c1 := startService(t, server.Config{Workers: 1, DataDir: dir, Runner: r.run})
			type acked struct {
				id, payload string
				want        string // expected state after recovery
			}
			var jobs []acked
			for i := 0; i < nDone; i++ {
				payload := fmt.Sprintf("done-%d-%d", round, i)
				st := submitAndWait(t, c1, payload)
				if st.State != server.StateDone {
					t.Fatalf("setup job %s: %s", payload, st.Error)
				}
				jobs = append(jobs, acked{st.ID, payload, server.StateDone})
			}
			if hold {
				sub, err := c1.Submit(ctx, []byte("hold"), optbuild.Spec{})
				if err != nil {
					t.Fatal(err)
				}
				r.waitStarted(t)
				jobs = append(jobs, acked{sub.ID, "hold", server.StateInterrupted})
				for i := 0; i < nQueued; i++ {
					payload := fmt.Sprintf("q-%d-%d", round, i)
					sub, err := c1.Submit(ctx, []byte(payload), optbuild.Spec{})
					if err != nil {
						t.Fatal(err)
					}
					jobs = append(jobs, acked{sub.ID, payload, server.StateDone})
				}
			}

			// Crash (Close only releases the data-dir lock; nothing drains).
			// Then, half the time, scribble over one stored result.
			ts1.Close()
			srv1.Close()
			corrupted := false
			if nDone > 0 && rnd.Intn(2) == 1 {
				ents, err := os.ReadDir(filepath.Join(dir, "results"))
				if err != nil {
					t.Fatal(err)
				}
				if len(ents) > 0 {
					victim := filepath.Join(dir, "results", ents[rnd.Intn(len(ents))].Name())
					b, err := os.ReadFile(victim)
					if err != nil {
						t.Fatal(err)
					}
					if rnd.Intn(2) == 1 && len(b) > 2 {
						b = b[:len(b)/2] // torn write
					} else {
						b[len(b)/2] ^= 0xff // bit rot
					}
					if err := os.WriteFile(victim, b, 0o644); err != nil {
						t.Fatal(err)
					}
					corrupted = true
				}
			}

			srv2, ts2, c2 := startService(t, server.Config{Workers: 1, DataDir: dir, Runner: echoRunner})
			defer func() {
				sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
				defer cancel()
				srv2.Shutdown(sctx)
				ts2.Close()
			}()

			for _, j := range jobs {
				wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
				st, err := c2.Wait(wctx, j.id, 5*time.Millisecond)
				cancel()
				if err != nil {
					t.Fatalf("acknowledged job %s (%s) lost after crash: %v", j.id, j.payload, err)
				}
				if st.State != j.want {
					t.Fatalf("job %s (%s): state %s (%s), want %s", j.id, j.payload, st.State, st.Error, j.want)
				}
				if j.want != server.StateDone {
					continue
				}
				res, err := c2.Result(ctx, j.id)
				switch {
				case err == nil:
					if string(res) != echoResult(j.payload) {
						t.Fatalf("job %s served wrong bytes: %s", j.id, res)
					}
				case corrupted:
					// The unlucky entry: a clean 5xx, never garbage.
					var apiErr *client.APIError
					if !errors.As(err, &apiErr) || apiErr.StatusCode != 500 {
						t.Fatalf("job %s with corrupt entry: err = %v, want HTTP 500", j.id, err)
					}
				default:
					t.Fatalf("job %s result: %v", j.id, err)
				}
			}
		})
	}
}
