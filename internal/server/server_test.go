// End-to-end tests of the fitsd service: the full job lifecycle over
// httptest through the typed client, 429 backpressure, cancellation,
// graceful drain, and concurrent submissions sharing one model cache.
// They live in an external test package so they can use fits/client
// (which itself imports this package).
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fits"
	"fits/client"
	"fits/internal/optbuild"
	"fits/internal/server"
	"fits/internal/synth"
)

// sampleFirmware memoizes one synthetic firmware image for the pipeline
// tests.
var sampleFirmware = sync.OnceValue(func() []byte {
	sample, err := synth.Generate(synth.Dataset()[0])
	if err != nil {
		panic(err)
	}
	return sample.Packed
})

// stubRunner is a controllable pipeline: it signals when a job starts and
// blocks until released or canceled.
type stubRunner struct {
	started chan string
	release chan struct{}
}

func newStubRunner() *stubRunner {
	return &stubRunner{started: make(chan string, 64), release: make(chan struct{})}
}

func (r *stubRunner) run(ctx context.Context, raw []byte, spec optbuild.Spec, env server.RunEnv) (*server.RunOutput, error) {
	r.started <- string(raw)
	select {
	case <-r.release:
		return &server.RunOutput{ResultJSON: []byte(`{"stub":true}`)}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (r *stubRunner) waitStarted(t *testing.T) {
	t.Helper()
	select {
	case <-r.started:
	case <-time.After(5 * time.Second):
		t.Fatal("no job started within 5s")
	}
}

// mustServer builds a server or fails the test.
func mustServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func newTestService(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	srv := mustServer(t, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})
	return srv, client.New(ts.URL, ts.Client())
}

// TestJobLifecycle drives the real pipeline end to end twice and checks
// the acceptance bar: identical result JSON on resubmission, with the
// second run served from the shared model cache.
func TestJobLifecycle(t *testing.T) {
	cache := fits.NewCache(0, 0)
	_, c := newTestService(t, server.Config{Workers: 2, Cache: cache})
	ctx := context.Background()
	fw := sampleFirmware()

	spec := optbuild.Spec{Scan: true, SeedITS: true}
	sub, err := c.Submit(ctx, fw, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sub.State != server.StateQueued || sub.ID == "" {
		t.Fatalf("submit response: %+v", sub)
	}
	st, err := c.Wait(ctx, sub.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	res1, err := c.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var jr server.JobResult
	if err := json.Unmarshal(res1, &jr); err != nil {
		t.Fatalf("result not valid JSON: %v", err)
	}
	if len(jr.Targets) == 0 {
		t.Fatal("result has no targets")
	}
	for _, tr := range jr.Targets {
		if len(tr.Candidates) == 0 {
			t.Errorf("target %s has no candidates", tr.Path)
		}
	}

	// Resubmit the identical image: byte-identical result, cache reuse.
	sub2, err := c.Submit(ctx, fw, spec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Wait(ctx, sub2.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != server.StateDone {
		t.Fatalf("second job ended %s: %s", st2.State, st2.Error)
	}
	res2, err := c.Result(ctx, sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res1, res2) {
		t.Errorf("results diverged:\nfirst  %s\nsecond %s", res1, res2)
	}
	if st2.Cache == nil || st2.Cache.Reused == 0 {
		t.Errorf("second run reused no models: %+v", st2.Cache)
	}
	if cache.Stats().Hits == 0 {
		t.Error("shared cache recorded no hits")
	}

	// The job list shows both, oldest first.
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != sub.ID || jobs[1].ID != sub2.ID {
		t.Errorf("job list: %+v", jobs)
	}

	// Metrics report the completions and the cache hits.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fitsd_jobs_completed_total 2",
		"fitsd_jobs_accepted_total 2",
		"fitsd_model_cache_hits_total",
		"fitsd_job_duration_seconds_count 2",
		// Per-stage pipeline histograms, fed by each job's stage timer.
		// Both runs decode and infer; the cache-served rerun may skip
		// lifting, so only the first run is guaranteed to observe lift.
		"fitsd_stage_decode_seconds_count 2",
		"fitsd_stage_infer_seconds_count 2",
		"fitsd_stage_lift_seconds_count 1",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBackpressure fills the queue and expects 429 + Retry-After rather
// than unbounded buffering.
func TestBackpressure(t *testing.T) {
	r := newStubRunner()
	_, c := newTestService(t, server.Config{Workers: 1, QueueDepth: 1, Runner: r.run})
	ctx := context.Background()

	if _, err := c.Submit(ctx, []byte("fw-1"), optbuild.Spec{}); err != nil {
		t.Fatal(err)
	}
	r.waitStarted(t) // worker holds job 1; queue is empty
	if _, err := c.Submit(ctx, []byte("fw-2"), optbuild.Spec{}); err != nil {
		t.Fatal(err) // fills the queue
	}
	_, err := c.Submit(ctx, []byte("fw-3"), optbuild.Spec{})
	if !errors.Is(err, client.ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}

	// The raw response carries Retry-After for generic HTTP clients.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "fitsd_jobs_rejected_total 1") {
		t.Error("rejected counter not incremented")
	}
	close(r.release)
}

func TestBackpressureRetryAfterHeader(t *testing.T) {
	r := newStubRunner()
	srv := mustServer(t, server.Config{Workers: 1, QueueDepth: 1, Runner: r.run})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		close(r.release)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	post := func() *http.Response {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/octet-stream",
			strings.NewReader("firmware-bytes"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	post()
	r.waitStarted(t)
	post()
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
}

// TestCancelQueued cancels a job the worker has not picked up yet.
func TestCancelQueued(t *testing.T) {
	r := newStubRunner()
	_, c := newTestService(t, server.Config{Workers: 1, QueueDepth: 4, Runner: r.run})
	ctx := context.Background()

	if _, err := c.Submit(ctx, []byte("fw-run"), optbuild.Spec{}); err != nil {
		t.Fatal(err)
	}
	r.waitStarted(t)
	sub, err := c.Submit(ctx, []byte("fw-queued"), optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Cancel(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateCanceled {
		t.Errorf("state after cancel = %s", st.State)
	}
	// Result of a canceled job is a conflict.
	if _, err := c.Result(ctx, sub.ID); err == nil {
		t.Error("result of canceled job did not error")
	}
	close(r.release)
}

// TestCancelRunning cancels mid-flight via context propagation.
func TestCancelRunning(t *testing.T) {
	r := newStubRunner()
	_, c := newTestService(t, server.Config{Workers: 1, Runner: r.run})
	ctx := context.Background()

	sub, err := c.Submit(ctx, []byte("fw"), optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	r.waitStarted(t)
	if _, err := c.Cancel(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateCanceled {
		t.Errorf("state = %s, want canceled", st.State)
	}
	m, _ := c.Metrics(ctx)
	if !strings.Contains(m, "fitsd_jobs_canceled_total 1") {
		t.Error("canceled counter not incremented")
	}
}

// TestJobTimeout lets the server's per-job limit expire a stuck job.
func TestJobTimeout(t *testing.T) {
	r := newStubRunner()
	_, c := newTestService(t, server.Config{
		Workers: 1, JobTimeout: 30 * time.Millisecond, Runner: r.run,
	})
	ctx := context.Background()
	sub, err := c.Submit(ctx, []byte("fw"), optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateFailed || !strings.Contains(st.Error, "timeout") {
		t.Errorf("state = %s (%q), want failed with timeout", st.State, st.Error)
	}
}

// TestGracefulDrain submits one running and one queued job, shuts down,
// and expects: the in-flight job finishes, the queued one is canceled, and
// new submissions get 503.
func TestGracefulDrain(t *testing.T) {
	r := newStubRunner()
	srv := mustServer(t, server.Config{Workers: 1, QueueDepth: 4, Runner: r.run})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	running, err := c.Submit(ctx, []byte("fw-running"), optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	r.waitStarted(t)
	queued, err := c.Submit(ctx, []byte("fw-queued"), optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}

	drainDone := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- srv.Shutdown(sctx)
	}()

	// Intake must refuse while draining; let it flip first.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Submit(ctx, []byte("fw-late"), optbuild.Spec{}); err == nil {
		t.Error("submission accepted while draining")
	}

	// Release the in-flight job: the drain completes cleanly.
	close(r.release)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain returned %v", err)
	}
	if st, err := c.Job(ctx, running.ID); err != nil || st.State != server.StateDone {
		t.Errorf("in-flight job: %+v, %v (want done)", st, err)
	}
	if st, err := c.Job(ctx, queued.ID); err != nil || st.State != server.StateCanceled {
		t.Errorf("queued job: %+v, %v (want canceled)", st, err)
	}
}

// TestDrainDeadlineCancelsInFlight never releases the runner: the drain
// deadline must hard-cancel the job and still return.
func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	r := newStubRunner()
	srv := mustServer(t, server.Config{Workers: 1, Runner: r.run})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	sub, err := c.Submit(ctx, []byte("fw-stuck"), optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	r.waitStarted(t)
	sctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(sctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if st, err := c.Job(ctx, sub.ID); err != nil || st.State != server.StateCanceled {
		t.Errorf("stuck job: %+v, %v (want canceled)", st, err)
	}
}

// TestConcurrentSubmitsSharedCache hammers the real pipeline from many
// goroutines against one cache; under -race this is the data-race gate,
// and every result must be byte-identical.
func TestConcurrentSubmitsSharedCache(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short")
	}
	cache := fits.NewCache(0, 0)
	_, c := newTestService(t, server.Config{Workers: 4, QueueDepth: 32, Cache: cache})
	ctx := context.Background()
	fw := sampleFirmware()

	const n = 6
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, err := c.Submit(ctx, fw, optbuild.Spec{SeedITS: true, Scan: true})
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	var first []byte
	for i, id := range ids {
		st, err := c.Wait(ctx, id, 20*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != server.StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
		res, err := c.Result(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
		} else if !bytes.Equal(first, res) {
			t.Errorf("job %s result diverged from job %s", id, ids[0])
		}
	}
}

// TestBadRequests covers the 4xx surface.
func TestBadRequests(t *testing.T) {
	r := newStubRunner()
	close(r.release)
	srv := mustServer(t, server.Config{Workers: 1, Runner: r.run, MaxUploadBytes: 64})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	// Unknown engine name.
	_, err := c.Submit(ctx, []byte("fw"), optbuild.Spec{Engine: "quantum"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("bad engine: %v", err)
	}
	// Empty body.
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/octet-stream", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body: status %d", resp.StatusCode)
	}
	// Oversized upload.
	_, err = c.Submit(ctx, bytes.Repeat([]byte("x"), 4096), optbuild.Spec{})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: %v", err)
	}
	// Unknown job.
	if _, err := c.Job(ctx, "j999999"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %v", err)
	}
}
