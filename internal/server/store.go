package server

import (
	"container/list"
	"sort"
	"sync"
	"time"
)

// store indexes every job by ID and bounds the memory held by finished
// ones. Queued and running jobs are pinned — they are never evicted, so a
// submitted job can always be polled. Terminal jobs enter an LRU (touched
// by GET) with a TTL measured from completion; eviction triggers when the
// terminal population exceeds cap, and expiry is enforced lazily on every
// store operation plus periodically by the server's janitor.
type store struct {
	mu      sync.Mutex
	jobs    map[string]*Job          // guarded by mu
	lru     *list.List               // of *lruEntry; front = most recently touched; guarded by mu
	elem    map[string]*list.Element // guarded by mu
	cap     int
	ttl     time.Duration // 0 = no expiry
	now     func() time.Time
	evicted uint64 // guarded by mu
}

type lruEntry struct {
	job      *Job
	expireAt time.Time // zero = never
}

func newStore(capacity int, ttl time.Duration, now func() time.Time) *store {
	return &store{
		jobs: map[string]*Job{},
		lru:  list.New(),
		elem: map[string]*list.Element{},
		cap:  capacity,
		ttl:  ttl,
		now:  now,
	}
}

// add registers a freshly submitted job.
func (s *store) add(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
}

// remove forgets a job that never made it into the queue.
func (s *store) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	if e, ok := s.elem[id]; ok {
		s.lru.Remove(e)
		delete(s.elem, id)
	}
}

// markTerminal moves a job into the evictable LRU population. It is
// idempotent: a job canceled by DELETE and later re-reported by its worker
// is inserted once.
func (s *store) markTerminal(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[j.id]; !ok {
		s.jobs[j.id] = j // defensive: terminal before add is a bug upstream
	}
	if _, ok := s.elem[j.id]; ok {
		return
	}
	ent := &lruEntry{job: j}
	if s.ttl > 0 {
		ent.expireAt = s.now().Add(s.ttl)
	}
	s.elem[j.id] = s.lru.PushFront(ent)
	s.sweepLocked()
}

// get returns the job and touches its LRU position. Expired jobs are
// dropped and reported as absent.
func (s *store) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	if e, ok := s.elem[id]; ok {
		ent := e.Value.(*lruEntry)
		if !ent.expireAt.IsZero() && !s.now().Before(ent.expireAt) {
			s.dropLocked(e)
			return nil, false
		}
		s.lru.MoveToFront(e)
	}
	return j, true
}

// list snapshots every live job sorted by submission order.
func (s *store) list() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].seq < out[k].seq })
	return out
}

// sweep drops every expired terminal job; the server janitor calls it on a
// timer so memory is reclaimed even without traffic.
func (s *store) sweep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
}

// sweepLocked enforces TTL (from the LRU back, where the oldest live) and
// then the terminal-population cap.
func (s *store) sweepLocked() {
	if s.ttl > 0 {
		now := s.now()
		for e := s.lru.Back(); e != nil; {
			prev := e.Prev()
			ent := e.Value.(*lruEntry)
			// The LRU is ordered by recency of touch, not expiry, so scan
			// the whole list rather than stopping at the first survivor.
			if !ent.expireAt.IsZero() && !now.Before(ent.expireAt) {
				s.dropLocked(e)
			}
			e = prev
		}
	}
	for s.cap > 0 && s.lru.Len() > s.cap {
		s.dropLocked(s.lru.Back())
	}
}

func (s *store) dropLocked(e *list.Element) {
	ent := e.Value.(*lruEntry)
	s.lru.Remove(e)
	delete(s.elem, ent.job.id)
	delete(s.jobs, ent.job.id)
	s.evicted++
}

// counts reports (live jobs, terminal jobs, evictions) for the gauges.
func (s *store) counts() (jobs, terminal int, evicted uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs), s.lru.Len(), s.evicted
}
